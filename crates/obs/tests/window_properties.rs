//! Property pins for the sliding-window counters.
//!
//! The contract a windowed rate depends on: at any read instant the
//! window total equals the sum of events that landed in the last
//! `len` epoch buckets — no more (stale buckets are excluded the
//! moment the clock passes them) and no less (a freshly started
//! series is never penalised for not having existed earlier, which is
//! what makes a young canary's windowed rate comparable to a
//! long-lived stable arm's).

use std::time::Duration;

use irs_obs::WindowedCounter;
use proptest::prelude::*;

proptest! {
    /// The window total equals the model: the sum of all events whose
    /// epoch is still inside the last `len` buckets as seen from the
    /// read clock.  Events are replayed in epoch order (the production
    /// write pattern — a monotonic clock never goes backwards).
    #[test]
    fn window_total_matches_the_live_bucket_sum(
        len in 2usize..16,
        width_ms in 1u64..500,
        mut ops in proptest::collection::vec((0u64..2_000, 1u64..100), 1..64),
    ) {
        ops.sort_by_key(|&(epoch, _)| epoch);
        let w = WindowedCounter::new(len, Duration::from_millis(width_ms));
        for &(epoch, n) in &ops {
            w.add_at(n, epoch * width_ms);
        }
        let read_epoch = ops.last().unwrap().0;
        let expected: u64 = ops
            .iter()
            .filter(|&&(epoch, _)| epoch + len as u64 > read_epoch)
            .map(|&(_, n)| n)
            .sum();
        prop_assert_eq!(w.total_at(read_epoch * width_ms), expected);
    }

    /// Advancing the read clock alone expires buckets one by one until
    /// the window drains to zero; the counter itself is never written
    /// during the advance.
    #[test]
    fn buckets_expire_bucket_by_bucket_on_read(
        len in 2usize..16,
        width_ms in 1u64..500,
        per_bucket in 1u64..100,
    ) {
        let w = WindowedCounter::new(len, Duration::from_millis(width_ms));
        for epoch in 0..len as u64 {
            w.add_at(per_bucket, epoch * width_ms);
        }
        // Full window visible from the last written epoch.
        let last = (len as u64 - 1) * width_ms;
        prop_assert_eq!(w.total_at(last), per_bucket * len as u64);
        // Each whole bucket the clock advances drops exactly one bucket
        // of events, oldest first.
        for dropped in 1..=len as u64 {
            let now = last + dropped * width_ms;
            prop_assert_eq!(
                w.total_at(now),
                per_bucket * (len as u64 - dropped),
                "after advancing {} buckets", dropped
            );
        }
        // Far future: everything expired, nothing resurrects.
        prop_assert_eq!(w.total_at(last + 100 * len as u64 * width_ms), 0);
    }
}

/// The motivating scenario: a stable arm that has served traffic for a
/// thousand epochs and a canary that came up ten epochs ago.  Lifetime
/// totals differ by 100x, but the *windowed* totals — the apples-to-
/// apples figure the canary pipeline compares — are within the ratio
/// of their actual recent rates.
#[test]
fn young_canary_window_is_comparable_to_a_long_lived_stable_arm() {
    let width = Duration::from_secs(1);
    let (len, width_ms) = (12usize, 1_000u64);
    let stable = WindowedCounter::new(len, width);
    let canary = WindowedCounter::new(len, width);

    let mut stable_lifetime = 0u64;
    let mut canary_lifetime = 0u64;
    for epoch in 0..1_000u64 {
        stable.add_at(10, epoch * width_ms + 500);
        stable_lifetime += 10;
        if epoch >= 990 {
            canary.add_at(10, epoch * width_ms + 500);
            canary_lifetime += 10;
        }
    }

    let now = 999 * width_ms + 500;
    assert!(stable_lifetime >= 100 * canary_lifetime, "lifetime totals are incomparable");
    let stable_window = stable.total_at(now);
    let canary_window = canary.total_at(now);
    // Stable has all 12 buckets live (120 events); the canary has the
    // 10 buckets it existed for (100 events).  Same order of magnitude,
    // unlike the lifetime totals.
    assert_eq!(stable_window, 120);
    assert_eq!(canary_window, 100);
    let ratio = stable_window as f64 / canary_window as f64;
    assert!(ratio < 1.5, "windowed rates must be comparable, got ratio {ratio}");
}
