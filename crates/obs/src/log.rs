//! Leveled structured logger: text or JSON lines on stderr.
//!
//! One process-wide level and format (atomics, settable from CLI flags
//! before threads start), `log_error!`..`log_trace!` macros that
//! compile to a level check plus one locked stderr write.  Disabled
//! levels cost one relaxed atomic load and never format their
//! arguments.  This is deliberately not a `log`-crate workalike: the
//! serving stack needs exactly leveled stderr lines with timestamps,
//! nothing pluggable.
//!
//! Repeated lines are rate-limited: an identical `(level, target,
//! message)` within [`repeat_window_secs`] seconds of its first
//! occurrence is swallowed, and the next different line is preceded by
//! a single `last message repeated N times` summary — a tight error
//! loop (e.g. a peer resetting every accept) costs one line per window
//! instead of thousands.  Set the window to `0` to disable.

use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::Mutex;
use std::time::{SystemTime, UNIX_EPOCH};

/// Log severity, most severe first.  `Error` is always emitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    /// Unrecoverable or correctness-threatening conditions.
    Error = 1,
    /// Degraded but serving (e.g. trainer detached).
    Warn = 2,
    /// Lifecycle: startup, shutdown, progress summaries.
    Info = 3,
    /// Per-operation detail.
    Debug = 4,
    /// Everything.
    Trace = 5,
}

impl Level {
    /// Parse a CLI spelling (case-insensitive; `warning` ≡ `warn`).
    pub fn parse(s: &str) -> Option<Level> {
        match s.to_ascii_lowercase().as_str() {
            "error" => Some(Level::Error),
            "warn" | "warning" => Some(Level::Warn),
            "info" => Some(Level::Info),
            "debug" => Some(Level::Debug),
            "trace" => Some(Level::Trace),
            _ => None,
        }
    }

    /// Canonical upper-case name.
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Error => "ERROR",
            Level::Warn => "WARN",
            Level::Info => "INFO",
            Level::Debug => "DEBUG",
            Level::Trace => "TRACE",
        }
    }

    fn from_u8(v: u8) -> Level {
        match v {
            1 => Level::Error,
            2 => Level::Warn,
            4 => Level::Debug,
            5 => Level::Trace,
            _ => Level::Info,
        }
    }
}

/// Output shape for log lines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Format {
    /// `{unix_secs}.{ms} LEVEL target: message`
    Text,
    /// One JSON object per line: `{"ts":…,"level":…,"target":…,"msg":…}`
    Json,
}

impl Format {
    /// Parse a CLI spelling (case-insensitive).
    pub fn parse(s: &str) -> Option<Format> {
        match s.to_ascii_lowercase().as_str() {
            "text" => Some(Format::Text),
            "json" => Some(Format::Json),
            _ => None,
        }
    }
}

static MAX_LEVEL: AtomicU8 = AtomicU8::new(Level::Info as u8);
static FORMAT: AtomicU8 = AtomicU8::new(0); // 0 = Text, 1 = Json

/// Set the process-wide maximum level (default `Info`).
pub fn set_level(level: Level) {
    MAX_LEVEL.store(level as u8, Ordering::Relaxed);
}

/// The current maximum level.
pub fn level() -> Level {
    Level::from_u8(MAX_LEVEL.load(Ordering::Relaxed))
}

/// Set the process-wide output format (default `Text`).
pub fn set_format(format: Format) {
    FORMAT.store(matches!(format, Format::Json) as u8, Ordering::Relaxed);
}

/// The current output format.
pub fn format() -> Format {
    if FORMAT.load(Ordering::Relaxed) == 0 {
        Format::Text
    } else {
        Format::Json
    }
}

/// Whether a record at `level` would be emitted.
pub fn enabled(level: Level) -> bool {
    level as u8 <= MAX_LEVEL.load(Ordering::Relaxed)
}

/// Default repeat-suppression window (seconds).
pub const DEFAULT_REPEAT_WINDOW_SECS: u64 = 5;

static REPEAT_WINDOW_SECS: AtomicU64 = AtomicU64::new(DEFAULT_REPEAT_WINDOW_SECS);

/// Set the repeat-suppression window in seconds (`0` disables — every
/// line is written verbatim).
pub fn set_repeat_window_secs(secs: u64) {
    REPEAT_WINDOW_SECS.store(secs, Ordering::Relaxed);
}

/// The current repeat-suppression window in seconds.
pub fn repeat_window_secs() -> u64 {
    REPEAT_WINDOW_SECS.load(Ordering::Relaxed)
}

/// What [`RepeatGate::observe`] decided about one record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RepeatAction {
    /// Write the record.
    Emit,
    /// Write a `last message repeated N times` summary for the previous
    /// run of identical records (at that run's level and target), then
    /// the record itself.
    EmitAfterSummary {
        /// How many identical records were swallowed.
        count: u64,
        /// Level of the suppressed run.
        level: Level,
        /// Target of the suppressed run.
        target: String,
    },
    /// Swallow the record (identical to the previous one, inside the
    /// window).
    Suppress,
}

/// Pure repeat-suppression state machine: tracks the last emitted
/// `(level, target, message)` and the count of identical records
/// swallowed since.  Separated from the global logger so tests can
/// drive it with synthetic clocks; `write` owns one behind a mutex.
#[derive(Debug, Default)]
pub struct RepeatGate {
    level: u8,
    target: String,
    msg: String,
    window_start_ms: u64,
    suppressed: u64,
}

impl RepeatGate {
    /// Decide what to do with a record observed at `now_ms` under a
    /// suppression window of `window_ms` (`0` disables).  Identical
    /// records are suppressed only within `window_ms` of the *first*
    /// of the run, so a steady spam stream still surfaces one line (and
    /// a summary) per window rather than going silent forever.
    pub fn observe(
        &mut self,
        window_ms: u64,
        level: Level,
        target: &str,
        msg: &str,
        now_ms: u64,
    ) -> RepeatAction {
        let same = window_ms > 0
            && self.level == level as u8
            && self.target == target
            && self.msg == msg
            && now_ms.saturating_sub(self.window_start_ms) < window_ms;
        if same {
            self.suppressed += 1;
            return RepeatAction::Suppress;
        }
        let pending = self.suppressed;
        let prev_level = Level::from_u8(self.level);
        let prev_target = if pending > 0 { self.target.clone() } else { String::new() };
        self.suppressed = 0;
        self.window_start_ms = now_ms;
        if window_ms == 0 {
            // Disabled: forget state so re-enabling starts clean.
            self.level = 0;
            self.target.clear();
            self.msg.clear();
        } else {
            self.level = level as u8;
            self.target.clear();
            self.target.push_str(target);
            self.msg.clear();
            self.msg.push_str(msg);
        }
        if pending > 0 {
            RepeatAction::EmitAfterSummary {
                count: pending,
                level: prev_level,
                target: prev_target,
            }
        } else {
            RepeatAction::Emit
        }
    }
}

static REPEAT_GATE: Mutex<Option<RepeatGate>> = Mutex::new(None);

/// Emit one record.  Callers go through the `log_*!` macros, which
/// defer argument formatting behind the level check.
pub fn write(level: Level, target: &str, args: fmt::Arguments<'_>) {
    if !enabled(level) {
        return;
    }
    let now = SystemTime::now().duration_since(UNIX_EPOCH).unwrap_or_default();
    let now_ms = now.as_secs().saturating_mul(1000) + u64::from(now.subsec_millis());
    let window_ms = repeat_window_secs().saturating_mul(1000);

    let msg = fmt::format(args);
    let mut summary = None;
    if window_ms > 0 {
        let mut gate = REPEAT_GATE.lock().unwrap_or_else(|p| p.into_inner());
        match gate
            .get_or_insert_with(RepeatGate::default)
            .observe(window_ms, level, target, &msg, now_ms)
        {
            RepeatAction::Suppress => return,
            RepeatAction::EmitAfterSummary { count, level, target } => {
                summary = Some((count, level, target));
            }
            RepeatAction::Emit => {}
        }
    }

    let stderr = std::io::stderr();
    let mut out = stderr.lock();
    if let Some((n, slevel, starget)) = summary {
        let _ = write_line(
            &mut out,
            &now,
            slevel,
            &starget,
            &format!("last message repeated {n} time{}", if n == 1 { "" } else { "s" }),
        );
    }
    let _ = write_line(&mut out, &now, level, target, &msg);
}

fn write_line(
    out: &mut impl std::io::Write,
    now: &std::time::Duration,
    level: Level,
    target: &str,
    msg: &str,
) -> std::io::Result<()> {
    match format() {
        Format::Text => writeln!(
            out,
            "{}.{:03} {} {}: {}",
            now.as_secs(),
            now.subsec_millis(),
            level.as_str(),
            target,
            msg
        ),
        Format::Json => {
            let mut line = String::with_capacity(msg.len() + target.len() + 64);
            line.push_str("{\"ts\":");
            let _ =
                fmt::write(&mut line, format_args!("{}.{:03}", now.as_secs(), now.subsec_millis()));
            line.push_str(",\"level\":\"");
            line.push_str(level.as_str());
            line.push_str("\",\"target\":\"");
            escape_json_into(&mut line, target);
            line.push_str("\",\"msg\":\"");
            escape_json_into(&mut line, msg);
            line.push_str("\"}");
            writeln!(out, "{line}")
        }
    }
}

fn escape_json_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = fmt::write(out, format_args!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// Log at [`Level::Error`]: `log_error!("scheduler", "bad batch of {n}")`.
#[macro_export]
macro_rules! log_error {
    ($target:expr, $($arg:tt)*) => {
        $crate::log::write($crate::log::Level::Error, $target, ::core::format_args!($($arg)*))
    };
}

/// Log at [`Level::Warn`].
#[macro_export]
macro_rules! log_warn {
    ($target:expr, $($arg:tt)*) => {
        $crate::log::write($crate::log::Level::Warn, $target, ::core::format_args!($($arg)*))
    };
}

/// Log at [`Level::Info`].
#[macro_export]
macro_rules! log_info {
    ($target:expr, $($arg:tt)*) => {
        $crate::log::write($crate::log::Level::Info, $target, ::core::format_args!($($arg)*))
    };
}

/// Log at [`Level::Debug`].
#[macro_export]
macro_rules! log_debug {
    ($target:expr, $($arg:tt)*) => {
        $crate::log::write($crate::log::Level::Debug, $target, ::core::format_args!($($arg)*))
    };
}

/// Log at [`Level::Trace`].
#[macro_export]
macro_rules! log_trace {
    ($target:expr, $($arg:tt)*) => {
        $crate::log::write($crate::log::Level::Trace, $target, ::core::format_args!($($arg)*))
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_parse_and_order() {
        assert_eq!(Level::parse("WARN"), Some(Level::Warn));
        assert_eq!(Level::parse("warning"), Some(Level::Warn));
        assert_eq!(Level::parse("trace"), Some(Level::Trace));
        assert_eq!(Level::parse("loud"), None);
        assert!(Level::Error < Level::Trace);
        assert_eq!(Format::parse("JSON"), Some(Format::Json));
        assert_eq!(Format::parse("yaml"), None);
    }

    #[test]
    fn json_escaping_is_lossless_for_control_characters() {
        let mut out = String::new();
        escape_json_into(&mut out, "a\"b\\c\nd\te\u{1}");
        assert_eq!(out, "a\\\"b\\\\c\\nd\\te\\u0001");
    }

    // Level/format/repeat-window are process-global, so exercise them in
    // one test to avoid ordering races with the parallel test harness.
    #[test]
    fn global_level_gates_emission() {
        set_level(Level::Warn);
        assert!(enabled(Level::Error));
        assert!(enabled(Level::Warn));
        assert!(!enabled(Level::Info));
        set_level(Level::Info);
        assert!(enabled(Level::Info));
        assert!(!enabled(Level::Debug));
        set_format(Format::Json);
        assert_eq!(format(), Format::Json);
        set_format(Format::Text);
        assert_eq!(format(), Format::Text);
        assert_eq!(repeat_window_secs(), DEFAULT_REPEAT_WINDOW_SECS);
        set_repeat_window_secs(0);
        assert_eq!(repeat_window_secs(), 0);
        set_repeat_window_secs(DEFAULT_REPEAT_WINDOW_SECS);
    }

    const W: u64 = 5_000; // 5 s window, in ms

    #[test]
    fn repeat_gate_suppresses_identical_lines_inside_window() {
        let mut gate = RepeatGate::default();
        assert_eq!(gate.observe(W, Level::Error, "net", "peer reset", 0), RepeatAction::Emit);
        for t in [100, 2_000, 4_999] {
            assert_eq!(
                gate.observe(W, Level::Error, "net", "peer reset", t),
                RepeatAction::Suppress,
                "at t={t}"
            );
        }
    }

    #[test]
    fn repeat_gate_summarises_on_the_next_different_line() {
        let mut gate = RepeatGate::default();
        assert_eq!(gate.observe(W, Level::Error, "net", "peer reset", 0), RepeatAction::Emit);
        assert_eq!(gate.observe(W, Level::Error, "net", "peer reset", 10), RepeatAction::Suppress);
        assert_eq!(gate.observe(W, Level::Error, "net", "peer reset", 20), RepeatAction::Suppress);
        // A different message flushes the count at the suppressed run's
        // level/target even when its own target differs.
        assert_eq!(
            gate.observe(W, Level::Info, "serve", "listening", 30),
            RepeatAction::EmitAfterSummary { count: 2, level: Level::Error, target: "net".into() }
        );
        // ...and the new line starts a fresh run.
        assert_eq!(gate.observe(W, Level::Info, "serve", "listening", 40), RepeatAction::Suppress);
    }

    #[test]
    fn repeat_gate_reemits_once_per_window_under_steady_spam() {
        let mut gate = RepeatGate::default();
        assert_eq!(gate.observe(W, Level::Warn, "t", "spam", 0), RepeatAction::Emit);
        assert_eq!(gate.observe(W, Level::Warn, "t", "spam", 1_000), RepeatAction::Suppress);
        assert_eq!(gate.observe(W, Level::Warn, "t", "spam", 4_999), RepeatAction::Suppress);
        // The window is measured from the run's FIRST line, so spam keeps
        // surfacing one summarised line per window rather than never.
        assert_eq!(
            gate.observe(W, Level::Warn, "t", "spam", 5_000),
            RepeatAction::EmitAfterSummary { count: 2, level: Level::Warn, target: "t".into() }
        );
        assert_eq!(gate.observe(W, Level::Warn, "t", "spam", 5_001), RepeatAction::Suppress);
    }

    #[test]
    fn repeat_gate_distinguishes_level_target_and_message() {
        let mut gate = RepeatGate::default();
        assert_eq!(gate.observe(W, Level::Warn, "a", "m", 0), RepeatAction::Emit);
        assert_eq!(gate.observe(W, Level::Error, "a", "m", 1), RepeatAction::Emit);
        assert_eq!(gate.observe(W, Level::Error, "b", "m", 2), RepeatAction::Emit);
        assert_eq!(gate.observe(W, Level::Error, "b", "m2", 3), RepeatAction::Emit);
    }

    #[test]
    fn repeat_gate_disabled_window_emits_everything() {
        let mut gate = RepeatGate::default();
        assert_eq!(gate.observe(0, Level::Warn, "t", "m", 0), RepeatAction::Emit);
        assert_eq!(gate.observe(0, Level::Warn, "t", "m", 1), RepeatAction::Emit);
        assert_eq!(gate.observe(0, Level::Warn, "t", "m", 2), RepeatAction::Emit);
        // Re-enabling starts clean: the first line after is emitted.
        assert_eq!(gate.observe(W, Level::Warn, "t", "m", 3), RepeatAction::Emit);
        assert_eq!(gate.observe(W, Level::Warn, "t", "m", 4), RepeatAction::Suppress);
    }
}
