//! Leveled structured logger: text or JSON lines on stderr.
//!
//! One process-wide level and format (atomics, settable from CLI flags
//! before threads start), `log_error!`..`log_trace!` macros that
//! compile to a level check plus one locked stderr write.  Disabled
//! levels cost one relaxed atomic load and never format their
//! arguments.  This is deliberately not a `log`-crate workalike: the
//! serving stack needs exactly leveled stderr lines with timestamps,
//! nothing pluggable.

use std::fmt;
use std::io::Write as _;
use std::sync::atomic::{AtomicU8, Ordering};
use std::time::{SystemTime, UNIX_EPOCH};

/// Log severity, most severe first.  `Error` is always emitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    /// Unrecoverable or correctness-threatening conditions.
    Error = 1,
    /// Degraded but serving (e.g. trainer detached).
    Warn = 2,
    /// Lifecycle: startup, shutdown, progress summaries.
    Info = 3,
    /// Per-operation detail.
    Debug = 4,
    /// Everything.
    Trace = 5,
}

impl Level {
    /// Parse a CLI spelling (case-insensitive; `warning` ≡ `warn`).
    pub fn parse(s: &str) -> Option<Level> {
        match s.to_ascii_lowercase().as_str() {
            "error" => Some(Level::Error),
            "warn" | "warning" => Some(Level::Warn),
            "info" => Some(Level::Info),
            "debug" => Some(Level::Debug),
            "trace" => Some(Level::Trace),
            _ => None,
        }
    }

    /// Canonical upper-case name.
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Error => "ERROR",
            Level::Warn => "WARN",
            Level::Info => "INFO",
            Level::Debug => "DEBUG",
            Level::Trace => "TRACE",
        }
    }

    fn from_u8(v: u8) -> Level {
        match v {
            1 => Level::Error,
            2 => Level::Warn,
            4 => Level::Debug,
            5 => Level::Trace,
            _ => Level::Info,
        }
    }
}

/// Output shape for log lines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Format {
    /// `{unix_secs}.{ms} LEVEL target: message`
    Text,
    /// One JSON object per line: `{"ts":…,"level":…,"target":…,"msg":…}`
    Json,
}

impl Format {
    /// Parse a CLI spelling (case-insensitive).
    pub fn parse(s: &str) -> Option<Format> {
        match s.to_ascii_lowercase().as_str() {
            "text" => Some(Format::Text),
            "json" => Some(Format::Json),
            _ => None,
        }
    }
}

static MAX_LEVEL: AtomicU8 = AtomicU8::new(Level::Info as u8);
static FORMAT: AtomicU8 = AtomicU8::new(0); // 0 = Text, 1 = Json

/// Set the process-wide maximum level (default `Info`).
pub fn set_level(level: Level) {
    MAX_LEVEL.store(level as u8, Ordering::Relaxed);
}

/// The current maximum level.
pub fn level() -> Level {
    Level::from_u8(MAX_LEVEL.load(Ordering::Relaxed))
}

/// Set the process-wide output format (default `Text`).
pub fn set_format(format: Format) {
    FORMAT.store(matches!(format, Format::Json) as u8, Ordering::Relaxed);
}

/// The current output format.
pub fn format() -> Format {
    if FORMAT.load(Ordering::Relaxed) == 0 {
        Format::Text
    } else {
        Format::Json
    }
}

/// Whether a record at `level` would be emitted.
pub fn enabled(level: Level) -> bool {
    level as u8 <= MAX_LEVEL.load(Ordering::Relaxed)
}

/// Emit one record.  Callers go through the `log_*!` macros, which
/// defer argument formatting behind the level check.
pub fn write(level: Level, target: &str, args: fmt::Arguments<'_>) {
    if !enabled(level) {
        return;
    }
    let now = SystemTime::now().duration_since(UNIX_EPOCH).unwrap_or_default();
    let stderr = std::io::stderr();
    let mut out = stderr.lock();
    let _ = match format() {
        Format::Text => writeln!(
            out,
            "{}.{:03} {} {}: {}",
            now.as_secs(),
            now.subsec_millis(),
            level.as_str(),
            target,
            args
        ),
        Format::Json => {
            let msg = fmt::format(args);
            let mut line = String::with_capacity(msg.len() + target.len() + 64);
            line.push_str("{\"ts\":");
            let _ =
                fmt::write(&mut line, format_args!("{}.{:03}", now.as_secs(), now.subsec_millis()));
            line.push_str(",\"level\":\"");
            line.push_str(level.as_str());
            line.push_str("\",\"target\":\"");
            escape_json_into(&mut line, target);
            line.push_str("\",\"msg\":\"");
            escape_json_into(&mut line, &msg);
            line.push_str("\"}");
            writeln!(out, "{line}")
        }
    };
}

fn escape_json_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = fmt::write(out, format_args!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// Log at [`Level::Error`]: `log_error!("scheduler", "bad batch of {n}")`.
#[macro_export]
macro_rules! log_error {
    ($target:expr, $($arg:tt)*) => {
        $crate::log::write($crate::log::Level::Error, $target, ::core::format_args!($($arg)*))
    };
}

/// Log at [`Level::Warn`].
#[macro_export]
macro_rules! log_warn {
    ($target:expr, $($arg:tt)*) => {
        $crate::log::write($crate::log::Level::Warn, $target, ::core::format_args!($($arg)*))
    };
}

/// Log at [`Level::Info`].
#[macro_export]
macro_rules! log_info {
    ($target:expr, $($arg:tt)*) => {
        $crate::log::write($crate::log::Level::Info, $target, ::core::format_args!($($arg)*))
    };
}

/// Log at [`Level::Debug`].
#[macro_export]
macro_rules! log_debug {
    ($target:expr, $($arg:tt)*) => {
        $crate::log::write($crate::log::Level::Debug, $target, ::core::format_args!($($arg)*))
    };
}

/// Log at [`Level::Trace`].
#[macro_export]
macro_rules! log_trace {
    ($target:expr, $($arg:tt)*) => {
        $crate::log::write($crate::log::Level::Trace, $target, ::core::format_args!($($arg)*))
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_parse_and_order() {
        assert_eq!(Level::parse("WARN"), Some(Level::Warn));
        assert_eq!(Level::parse("warning"), Some(Level::Warn));
        assert_eq!(Level::parse("trace"), Some(Level::Trace));
        assert_eq!(Level::parse("loud"), None);
        assert!(Level::Error < Level::Trace);
        assert_eq!(Format::parse("JSON"), Some(Format::Json));
        assert_eq!(Format::parse("yaml"), None);
    }

    #[test]
    fn json_escaping_is_lossless_for_control_characters() {
        let mut out = String::new();
        escape_json_into(&mut out, "a\"b\\c\nd\te\u{1}");
        assert_eq!(out, "a\\\"b\\\\c\\nd\\te\\u0001");
    }

    // Level/format are process-global, so exercise them in one test to
    // avoid ordering races with the parallel test harness.
    #[test]
    fn global_level_gates_emission() {
        set_level(Level::Warn);
        assert!(enabled(Level::Error));
        assert!(enabled(Level::Warn));
        assert!(!enabled(Level::Info));
        set_level(Level::Info);
        assert!(enabled(Level::Info));
        assert!(!enabled(Level::Debug));
        set_format(Format::Json);
        assert_eq!(format(), Format::Json);
        set_format(Format::Text);
        assert_eq!(format(), Format::Text);
    }
}
