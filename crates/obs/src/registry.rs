//! The metrics registry: typed handles registered once at startup,
//! lock-free recording on the hot path, and two render targets
//! (Prometheus text exposition and a flat key/value visit) fed from the
//! same family list so no endpoint can drift from the other.
//!
//! Handles are thin `Arc`s around atomics; cloning one into a worker
//! thread costs a refcount bump and recording never touches the
//! registry lock.  Detached handles (`Counter::default()` etc.) work
//! without a registry, which keeps unit tests of instrumented
//! components free of registration boilerplate.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::time::Duration;

/// All metric names are exported under this prefix so a scrape of a
/// mixed fleet can be filtered to this process family.
const PREFIX: &str = "irs_";

/// Monotonic `u64` counter.  `store` exists for values sampled from an
/// external monotonic source (e.g. another subsystem's own counter).
#[derive(Clone, Default)]
pub struct Counter {
    value: Arc<AtomicU64>,
}

impl Counter {
    /// Add one.
    pub fn inc(&self) {
        self.value.fetch_add(1, Ordering::Relaxed);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Overwrite with a sampled value (must itself be monotonic).
    pub fn store(&self, v: u64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// `f64` gauge (bits in an `AtomicU64`).
#[derive(Clone, Default)]
pub struct Gauge {
    bits: Arc<AtomicU64>,
}

impl Gauge {
    /// Set the current value.
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// Boolean flag, exported as a 0/1 gauge and a JSON boolean.
#[derive(Clone, Default)]
pub struct Flag {
    value: Arc<AtomicBool>,
}

impl Flag {
    /// Set the flag.
    pub fn set(&self, v: bool) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> bool {
        self.value.load(Ordering::Relaxed)
    }
}

/// String annotation (snapshot label, layout name).  Exported as a
/// Prometheus info-style metric `irs_<name>_info{value="..."} 1` and a
/// JSON string.  `set_if_changed` makes steady-state sampling
/// allocation-free once the value has settled.
#[derive(Clone, Default)]
pub struct Text {
    value: Arc<RwLock<String>>,
}

impl Text {
    /// Replace the value, skipping the write (and its allocation) when
    /// it already matches.
    pub fn set_if_changed(&self, v: &str) {
        if *self.value.read().expect("text poisoned") == *v {
            return;
        }
        let mut slot = self.value.write().expect("text poisoned");
        slot.clear();
        slot.push_str(v);
    }

    /// Read the value through a borrow (no clone).
    pub fn with<R>(&self, f: impl FnOnce(&str) -> R) -> R {
        f(&self.value.read().expect("text poisoned"))
    }
}

/// Log-bucketed latency histogram: bucket index = bit width of the
/// duration in microseconds, so 64 buckets cover sub-microsecond to
/// ages.  Recording is two atomic adds; quantiles are estimated as the
/// geometric midpoint of the covering bucket (≤ √2 relative error).
#[derive(Clone)]
pub struct Histogram {
    inner: Arc<HistogramCore>,
}

struct HistogramCore {
    buckets: [AtomicU64; 64],
    sum_us: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            inner: Arc::new(HistogramCore {
                buckets: std::array::from_fn(|_| AtomicU64::new(0)),
                sum_us: AtomicU64::new(0),
            }),
        }
    }
}

impl Histogram {
    /// Record one observation (lock-free).
    pub fn record(&self, latency: Duration) {
        self.record_us(latency.as_micros().min(u64::MAX as u128) as u64);
    }

    /// Record one observation given in microseconds.
    pub fn record_us(&self, us: u64) {
        let bucket = (64 - us.leading_zeros() as usize).min(63);
        self.inner.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.inner.sum_us.fetch_add(us, Ordering::Relaxed);
    }

    /// Total observations recorded.
    pub fn count(&self) -> u64 {
        self.inner.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// Sum of all recorded observations in microseconds.
    pub fn sum_us(&self) -> u64 {
        self.inner.sum_us.load(Ordering::Relaxed)
    }

    /// Estimated `q`-quantile in microseconds (0 when empty).
    pub fn quantile_us(&self, q: f64) -> f64 {
        let total = self.count();
        if total == 0 {
            return 0.0;
        }
        let rank = (q.clamp(0.0, 1.0) * total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (bucket, counter) in self.inner.buckets.iter().enumerate() {
            seen += counter.load(Ordering::Relaxed);
            if seen >= rank {
                // Bucket b covers [2^(b-1), 2^b) µs (bucket 0 is
                // "< 1 µs"); report the geometric midpoint.
                if bucket == 0 {
                    return 0.5;
                }
                let lo = (1u64 << (bucket - 1)) as f64;
                return lo * std::f64::consts::SQRT_2;
            }
        }
        0.0
    }
}

/// A value handed to [`Registry::visit_flat`] callbacks.
#[derive(Debug, Clone, Copy)]
pub enum FlatValue<'a> {
    /// Counter value.
    Int(u64),
    /// Gauge value (may be non-finite; JSON writers map those to null).
    Num(f64),
    /// Flag value.
    Bool(bool),
    /// Text annotation.
    Text(&'a str),
}

enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Flag(Flag),
    Text(Text),
    Histogram(Histogram),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            // Flags and info-style text render as gauges in exposition.
            Metric::Gauge(_) | Metric::Flag(_) | Metric::Text(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

struct Series {
    /// Pre-rendered label set, e.g. `stage="queue",arm="0"` — empty for
    /// unlabeled series.  Built once at registration so exposition
    /// never formats labels on the scrape path.
    labels: String,
    metric: Metric,
}

struct Family {
    name: String,
    help: String,
    series: Vec<Series>,
}

/// Named metric families.  Registration takes the write lock once at
/// startup; rendering takes the read lock; recording through a handle
/// never touches the registry at all.
#[derive(Default)]
pub struct Registry {
    families: RwLock<Vec<Family>>,
}

impl Registry {
    /// Empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    fn register(&self, name: &str, help: &str, labels: String, metric: Metric) {
        debug_assert!(
            !name.is_empty()
                && name.bytes().all(|b| b.is_ascii_alphanumeric() || b == b'_')
                && !name.as_bytes()[0].is_ascii_digit(),
            "invalid metric name {name:?}"
        );
        let mut families = self.families.write().expect("registry poisoned");
        if let Some(family) = families.iter_mut().find(|f| f.name == name) {
            assert_eq!(
                family.series[0].metric.kind(),
                metric.kind(),
                "metric {name:?} registered with two kinds"
            );
            assert!(
                family.series.iter().all(|s| s.labels != labels),
                "metric {name:?} with labels {{{labels}}} registered twice"
            );
            family.series.push(Series { labels, metric });
        } else {
            families.push(Family {
                name: name.to_string(),
                help: help.to_string(),
                series: vec![Series { labels, metric }],
            });
        }
    }

    /// Register a counter and return its handle.
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        let handle = Counter::default();
        self.register(name, help, String::new(), Metric::Counter(handle.clone()));
        handle
    }

    /// Register a gauge and return its handle.
    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        let handle = Gauge::default();
        self.register(name, help, String::new(), Metric::Gauge(handle.clone()));
        handle
    }

    /// Register a boolean flag and return its handle.
    pub fn flag(&self, name: &str, help: &str) -> Flag {
        let handle = Flag::default();
        self.register(name, help, String::new(), Metric::Flag(handle.clone()));
        handle
    }

    /// Register a text annotation and return its handle.
    pub fn text(&self, name: &str, help: &str) -> Text {
        let handle = Text::default();
        self.register(name, help, String::new(), Metric::Text(handle.clone()));
        handle
    }

    /// Register an unlabeled histogram and return its handle.
    pub fn histogram(&self, name: &str, help: &str) -> Histogram {
        let handle = Histogram::default();
        self.register(name, help, String::new(), Metric::Histogram(handle.clone()));
        handle
    }

    /// Register one labeled series of a histogram family (the family is
    /// created on first call).  `labels` is the pre-rendered label set,
    /// e.g. `stage="queue",arm="0",cached="hot"`.
    pub fn histogram_with_labels(&self, name: &str, help: &str, labels: &str) -> Histogram {
        let handle = Histogram::default();
        self.register(name, help, labels.to_string(), Metric::Histogram(handle.clone()));
        handle
    }

    /// Visit every unlabeled scalar series as a flat `(name, value)`
    /// pair, in registration order.  Histograms and labeled series are
    /// skipped — callers surface their quantiles through sampled
    /// gauges if they want them flat.
    pub fn visit_flat(&self, mut f: impl FnMut(&str, FlatValue<'_>)) {
        let families = self.families.read().expect("registry poisoned");
        for family in families.iter() {
            for series in &family.series {
                if !series.labels.is_empty() {
                    continue;
                }
                match &series.metric {
                    Metric::Counter(c) => f(&family.name, FlatValue::Int(c.get())),
                    Metric::Gauge(g) => f(&family.name, FlatValue::Num(g.get())),
                    Metric::Flag(b) => f(&family.name, FlatValue::Bool(b.get())),
                    Metric::Text(t) => t.with(|s| f(&family.name, FlatValue::Text(s))),
                    Metric::Histogram(_) => {}
                }
            }
        }
    }

    /// Render the whole registry in Prometheus text exposition format
    /// (version 0.0.4) into `out`.  Allocation-free once `out` has
    /// grown to capacity: numbers are formatted straight into the
    /// buffer and label sets were pre-rendered at registration.
    pub fn render_prometheus(&self, out: &mut Vec<u8>) {
        let families = self.families.read().expect("registry poisoned");
        for family in families.iter() {
            let name = &family.name;
            let info = matches!(family.series[0].metric, Metric::Text(_));
            let suffix = if info { "_info" } else { "" };
            let _ = writeln!(BufWriter(out), "# HELP {PREFIX}{name}{suffix} {}", family.help);
            let _ = writeln!(
                BufWriter(out),
                "# TYPE {PREFIX}{name}{suffix} {}",
                family.series[0].metric.kind()
            );
            for series in &family.series {
                render_series(out, name, &series.labels, &series.metric);
            }
        }
    }
}

/// `fmt::Write` adapter over a byte buffer so `write!` formats numbers
/// without intermediate `String`s.
struct BufWriter<'a>(&'a mut Vec<u8>);

impl std::fmt::Write for BufWriter<'_> {
    fn write_str(&mut self, s: &str) -> std::fmt::Result {
        self.0.extend_from_slice(s.as_bytes());
        Ok(())
    }
}

fn render_series(out: &mut Vec<u8>, name: &str, labels: &str, metric: &Metric) {
    match metric {
        Metric::Counter(c) => render_sample(out, name, "", labels, Rendered::Int(c.get())),
        Metric::Gauge(g) => render_sample(out, name, "", labels, Rendered::Num(g.get())),
        Metric::Flag(b) => render_sample(out, name, "", labels, Rendered::Int(u64::from(b.get()))),
        Metric::Text(t) => t.with(|s| {
            out.extend_from_slice(PREFIX.as_bytes());
            out.extend_from_slice(name.as_bytes());
            out.extend_from_slice(b"_info{value=\"");
            for &byte in s.as_bytes() {
                match byte {
                    b'\\' => out.extend_from_slice(b"\\\\"),
                    b'"' => out.extend_from_slice(b"\\\""),
                    b'\n' => out.extend_from_slice(b"\\n"),
                    _ => out.push(byte),
                }
            }
            out.extend_from_slice(b"\"} 1\n");
        }),
        Metric::Histogram(h) => {
            // One consistent load of the buckets drives `_bucket`,
            // `_sum` and `_count` so the triple agrees with itself.
            let counts: [u64; 64] =
                std::array::from_fn(|b| h.inner.buckets[b].load(Ordering::Relaxed));
            let mut cumulative = 0u64;
            for (bucket, &n) in counts.iter().enumerate() {
                cumulative += n;
                // Bucket b holds durations whose bit width is b, i.e.
                // us ∈ [2^(b-1), 2^b − 1]; the inclusive upper bound is
                // the exact `le` value (bucket 0 is "0 µs").
                let le = if bucket == 0 { 0 } else { (1u128 << bucket) as u64 - 1 };
                render_bucket(out, name, labels, Le::Finite(le), cumulative);
            }
            render_bucket(out, name, labels, Le::Inf, cumulative);
            render_sample(out, name, "_sum", labels, Rendered::Int(h.sum_us()));
            render_sample(out, name, "_count", labels, Rendered::Int(cumulative));
        }
    }
}

enum Rendered {
    Int(u64),
    Num(f64),
}

enum Le {
    Finite(u64),
    Inf,
}

fn render_sample(out: &mut Vec<u8>, name: &str, suffix: &str, labels: &str, value: Rendered) {
    out.extend_from_slice(PREFIX.as_bytes());
    out.extend_from_slice(name.as_bytes());
    out.extend_from_slice(suffix.as_bytes());
    if !labels.is_empty() {
        out.push(b'{');
        out.extend_from_slice(labels.as_bytes());
        out.push(b'}');
    }
    out.push(b' ');
    let _ = match value {
        Rendered::Int(v) => write!(BufWriter(out), "{v}"),
        Rendered::Num(v) if v.is_nan() => write!(BufWriter(out), "NaN"),
        Rendered::Num(v) => write!(BufWriter(out), "{v}"),
    };
    out.push(b'\n');
}

fn render_bucket(out: &mut Vec<u8>, name: &str, labels: &str, le: Le, cumulative: u64) {
    out.extend_from_slice(PREFIX.as_bytes());
    out.extend_from_slice(name.as_bytes());
    out.extend_from_slice(b"_bucket{");
    if !labels.is_empty() {
        out.extend_from_slice(labels.as_bytes());
        out.push(b',');
    }
    out.extend_from_slice(b"le=\"");
    let _ = match le {
        Le::Finite(v) => write!(BufWriter(out), "{v}"),
        Le::Inf => write!(BufWriter(out), "+Inf"),
    };
    let _ = write!(BufWriter(out), "\"}} {cumulative}");
    out.push(b'\n');
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rendered(registry: &Registry) -> String {
        let mut out = Vec::new();
        registry.render_prometheus(&mut out);
        String::from_utf8(out).unwrap()
    }

    #[test]
    fn counters_gauges_flags_and_text_round_trip_both_renderings() {
        let registry = Registry::new();
        let c = registry.counter("requests", "Total requests");
        let g = registry.gauge("mean_batch", "Mean batch size");
        let b = registry.flag("online_enabled", "Online trainer attached");
        let t = registry.text("snapshot", "Active snapshot label");
        c.add(3);
        g.set(2.5);
        b.set(true);
        t.set_if_changed("prod \"v2\"");

        let text = rendered(&registry);
        assert!(text.contains("# TYPE irs_requests counter\n"), "{text}");
        assert!(text.contains("irs_requests 3\n"), "{text}");
        assert!(text.contains("# TYPE irs_mean_batch gauge\n"), "{text}");
        assert!(text.contains("irs_mean_batch 2.5\n"), "{text}");
        assert!(text.contains("irs_online_enabled 1\n"), "{text}");
        assert!(text.contains("irs_snapshot_info{value=\"prod \\\"v2\\\"\"} 1\n"), "{text}");

        let mut flat = Vec::new();
        registry.visit_flat(|name, value| flat.push((name.to_string(), format!("{value:?}"))));
        let names: Vec<&str> = flat.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["requests", "mean_batch", "online_enabled", "snapshot"]);
        assert_eq!(flat[0].1, "Int(3)");
        assert_eq!(flat[2].1, "Bool(true)");
    }

    #[test]
    fn histogram_exposition_is_cumulative_and_self_consistent() {
        let registry = Registry::new();
        let h = registry.histogram("latency_us", "Latency");
        h.record_us(0); // bucket 0
        h.record_us(1); // bucket 1
        h.record_us(3); // bucket 2
        h.record_us(1_000_000);
        let text = rendered(&registry);
        assert!(text.contains("# TYPE irs_latency_us histogram\n"), "{text}");
        assert!(text.contains("irs_latency_us_bucket{le=\"0\"} 1\n"), "{text}");
        assert!(text.contains("irs_latency_us_bucket{le=\"1\"} 2\n"), "{text}");
        assert!(text.contains("irs_latency_us_bucket{le=\"3\"} 3\n"), "{text}");
        assert!(text.contains("irs_latency_us_bucket{le=\"+Inf\"} 4\n"), "{text}");
        assert!(text.contains("irs_latency_us_sum 1000004\n"), "{text}");
        assert!(text.contains("irs_latency_us_count 4\n"), "{text}");
        // A value exactly at a power of two lands strictly above the
        // previous bound: 2 µs has bit width 2, so le="1" excludes it.
        assert_eq!(h.count(), 4);
    }

    #[test]
    fn labeled_histogram_series_share_one_family_header() {
        let registry = Registry::new();
        let hot = registry.histogram_with_labels("stage_us", "Stage latency", "cached=\"hot\"");
        let cold = registry.histogram_with_labels("stage_us", "Stage latency", "cached=\"cold\"");
        hot.record(Duration::from_micros(10));
        cold.record(Duration::from_micros(100));
        let text = rendered(&registry);
        assert_eq!(text.matches("# TYPE irs_stage_us histogram").count(), 1, "{text}");
        assert!(text.contains("irs_stage_us_count{cached=\"hot\"} 1\n"), "{text}");
        assert!(text.contains("irs_stage_us_count{cached=\"cold\"} 1\n"), "{text}");
        assert!(text.contains("cached=\"hot\",le=\"+Inf\"} 1\n"), "{text}");

        // Labeled series stay out of the flat visit.
        let mut flat = Vec::new();
        registry.visit_flat(|name, _| flat.push(name.to_string()));
        assert!(flat.is_empty(), "{flat:?}");
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn duplicate_registration_panics() {
        let registry = Registry::new();
        let _ = registry.counter("requests", "Total requests");
        let _ = registry.counter("requests", "Total requests");
    }

    #[test]
    fn histogram_quantiles_bracket_the_observations() {
        let h = Histogram::default();
        assert_eq!(h.quantile_us(0.5), 0.0, "empty histogram");
        for _ in 0..90 {
            h.record(Duration::from_micros(100));
        }
        for _ in 0..10 {
            h.record(Duration::from_micros(10_000));
        }
        assert_eq!(h.count(), 100);
        let p50 = h.quantile_us(0.5);
        let p95 = h.quantile_us(0.95);
        // Log buckets: estimates land within a factor of √2 of the
        // bucket boundaries around the true values.
        assert!((50.0..200.0).contains(&p50), "p50 estimate {p50}");
        assert!((5_000.0..20_000.0).contains(&p95), "p95 estimate {p95}");
        assert!(p95 > p50);
    }

    #[test]
    fn detached_handles_work_without_a_registry() {
        let c = Counter::default();
        c.inc();
        c.add(2);
        assert_eq!(c.get(), 3);
        let g = Gauge::default();
        g.set(-1.5);
        assert_eq!(g.get(), -1.5);
    }
}
