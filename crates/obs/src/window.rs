//! Sliding-window counter: a ring of epoch-tagged buckets,
//! time-advanced on read.
//!
//! Lifetime totals make a young canary arm look idle next to a
//! long-lived stable arm; a sliding window over the last N×width
//! milliseconds makes their rates comparable.  Writes tag the current
//! bucket with its epoch and reset it lazily when the ring wraps;
//! reads sum only buckets whose tag falls inside the window, so no
//! timer thread is needed and an idle counter decays to zero by
//! itself.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

struct Bucket {
    /// Epoch tag + 1 (0 = never written), so a zeroed ring is empty.
    tag: AtomicU64,
    count: AtomicU64,
}

struct WindowInner {
    bucket_ms: u64,
    start: Instant,
    buckets: Box<[Bucket]>,
}

/// A counter whose total covers only the last `len × width` of wall
/// time.  Cloning shares the ring; recording and reading are lock-free
/// atomics.  The `_at` variants take an explicit millisecond clock for
/// deterministic tests; production callers use [`add`](Self::add) /
/// [`total`](Self::total), which read a monotonic clock anchored at
/// construction.
#[derive(Clone)]
pub struct WindowedCounter {
    inner: Arc<WindowInner>,
}

impl WindowedCounter {
    /// A window of `len` buckets, each `width` wide.  `len ≥ 2` (one
    /// live bucket plus history) and `width ≥ 1 ms`.
    pub fn new(len: usize, width: Duration) -> Self {
        assert!(len >= 2, "window needs at least 2 buckets");
        let bucket_ms = width.as_millis().max(1) as u64;
        let buckets =
            (0..len).map(|_| Bucket { tag: AtomicU64::new(0), count: AtomicU64::new(0) }).collect();
        WindowedCounter {
            inner: Arc::new(WindowInner { bucket_ms, start: Instant::now(), buckets }),
        }
    }

    /// Width of the full window in milliseconds.
    pub fn window_ms(&self) -> u64 {
        self.inner.bucket_ms * self.inner.buckets.len() as u64
    }

    fn now_ms(&self) -> u64 {
        self.inner.start.elapsed().as_millis().min(u64::MAX as u128) as u64
    }

    /// Add `n` at the current time.
    pub fn add(&self, n: u64) {
        self.add_at(n, self.now_ms());
    }

    /// Sliding-window total at the current time.
    pub fn total(&self) -> u64 {
        self.total_at(self.now_ms())
    }

    /// Add `n` at an explicit millisecond clock (for tests with a
    /// simulated clock; `now_ms` must not move backwards).
    pub fn add_at(&self, n: u64, now_ms: u64) {
        let tag = now_ms / self.inner.bucket_ms + 1;
        let slot = (tag % self.inner.buckets.len() as u64) as usize;
        let bucket = &self.inner.buckets[slot];
        if bucket.tag.load(Ordering::Relaxed) != tag {
            // Lazy reset when the ring wraps onto a stale epoch.  Two
            // racing writers can both reset; at worst a handful of
            // counts from the first millisecond of a bucket are lost,
            // which is acceptable for a rate metric.
            bucket.count.store(0, Ordering::Relaxed);
            bucket.tag.store(tag, Ordering::Relaxed);
        }
        bucket.count.fetch_add(n, Ordering::Relaxed);
    }

    /// Sliding-window total at an explicit millisecond clock: the sum
    /// of every bucket whose epoch is within the window ending at
    /// `now_ms` (time advances on read — expired buckets are simply
    /// skipped, no writer needed).
    pub fn total_at(&self, now_ms: u64) -> u64 {
        let current = now_ms / self.inner.bucket_ms + 1;
        let len = self.inner.buckets.len() as u64;
        let mut sum = 0u64;
        for bucket in self.inner.buckets.iter() {
            let tag = bucket.tag.load(Ordering::Relaxed);
            if tag != 0 && tag <= current && current - tag < len {
                sum += bucket.count.load(Ordering::Relaxed);
            }
        }
        sum
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_accumulate_within_a_bucket_and_across_the_window() {
        let w = WindowedCounter::new(4, Duration::from_millis(100));
        w.add_at(1, 0);
        w.add_at(2, 50);
        assert_eq!(w.total_at(60), 3, "same bucket accumulates");
        w.add_at(5, 150);
        assert_eq!(w.total_at(160), 8, "adjacent buckets both live");
    }

    #[test]
    fn buckets_expire_as_the_read_clock_advances() {
        let w = WindowedCounter::new(4, Duration::from_millis(100));
        w.add_at(10, 0);
        // Epoch 0 stays live while the current epoch is < 4.
        assert_eq!(w.total_at(399), 10);
        assert_eq!(w.total_at(400), 0, "expiry happens on read, no writer needed");
    }

    #[test]
    fn ring_wrap_reclaims_stale_buckets() {
        let w = WindowedCounter::new(3, Duration::from_millis(10));
        w.add_at(7, 0); // epoch 0
        w.add_at(1, 30); // epoch 3 — same slot as epoch 0, must reset
        assert_eq!(w.total_at(30), 1);
    }

    #[test]
    fn production_clock_path_counts_immediately() {
        let w = WindowedCounter::new(12, Duration::from_secs(5));
        w.add(3);
        w.add(4);
        assert_eq!(w.total(), 7);
        assert_eq!(w.window_ms(), 60_000);
    }
}
