//! Process-wide observability primitives for the serving stack.
//!
//! Three pieces, all dependency-free and shim-style like the rest of
//! the workspace:
//!
//! - [`Registry`]: a metrics registry of named counters, gauges, flags,
//!   text annotations and 64-bucket log histograms.  Handles are
//!   registered once at startup and cloned into the hot path, where
//!   recording is a single lock-free atomic op — the zero-allocation
//!   steady-state contract of the serving layer extends through every
//!   handle here.  The registry renders itself two ways: Prometheus
//!   text exposition (for `GET /metrics`) and a flat key/value visit
//!   (for the JSON `/v1/stats` payload), so both endpoints share one
//!   vocabulary by construction.
//! - [`WindowedCounter`]: a sliding-window counter over a ring of
//!   epoch-tagged buckets, time-advanced on read.  Windowed per-arm
//!   rates make a young canary comparable to a long-lived stable arm,
//!   which lifetime totals structurally cannot.
//! - [`log`]: a leveled logger (`error`..`trace`, text or JSON lines on
//!   stderr) behind `log_error!`..`log_trace!` macros, replacing the
//!   scattered `eprintln!`s in the serving binaries.

pub mod log;
mod registry;
mod window;

pub use registry::{Counter, Flag, FlatValue, Gauge, Histogram, Registry, Text};
pub use window::WindowedCounter;
