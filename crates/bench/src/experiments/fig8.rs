//! Figure 8 — distribution of the learned Personalized Impressionability
//! Factor `r_u` across users.

use irs_eval::histogram;

use crate::render_bars;

/// Regenerate Figure 8.
pub fn run(standard: bool) -> String {
    run_at(super::Fidelity::from_standard(standard))
}

/// Regenerate Figure 8 at an explicit fidelity.
pub fn run_at(fidelity: super::Fidelity) -> String {
    let harnesses = super::both_harnesses(fidelity);
    let mut out = String::from("## Figure 8 — distribution of r_u\n\n");
    for h in &harnesses {
        let irn = h.train_irn();
        let rus = irn.all_ru();
        let bins = if fidelity.is_standard() { 15 } else { 8 };
        let hist = histogram(&rus, bins);
        let points: Vec<(String, f64)> =
            hist.iter().map(|&(center, count)| (format!("{center:+.3}"), count as f64)).collect();
        let mean = rus.iter().sum::<f32>() / rus.len().max(1) as f32;
        let var =
            rus.iter().map(|r| (r - mean) * (r - mean)).sum::<f32>() / rus.len().max(1) as f32;
        out.push_str(&format!(
            "### {} — {} users, mean {:.4}, std {:.4}\n\n{}\n",
            h.config.kind.label(),
            rus.len(),
            mean,
            var.sqrt(),
            render_bars("r_u histogram", &points, 40)
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn tiny_run_prints_histograms() {
        let out = super::run_at(crate::experiments::Fidelity::Tiny);
        assert!(out.contains("r_u histogram"));
        assert!(out.contains("mean"));
    }
}
