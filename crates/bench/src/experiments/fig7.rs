//! Figure 7 — performance under different aggressiveness degrees (AD):
//! the candidate-set size `k` for Rec2Inf baselines and the objective mask
//! weight `w_t` for IRN, reporting both `SR` and `log(PPL)`.

use irs_core::{InfluenceRecommender, Rec2Inf};
use irs_eval::{evaluate_paths, Evaluator};

use crate::render_table;

/// Regenerate Figure 7.
pub fn run(standard: bool) -> String {
    run_at(super::Fidelity::from_standard(standard))
}

/// Regenerate Figure 7 at an explicit fidelity.
pub fn run_at(fidelity: super::Fidelity) -> String {
    let harnesses = super::both_harnesses(fidelity);
    let mut out = String::from(
        "## Figure 7 — aggressiveness degree (AD) vs SR and log(PPL)\n\n\
         AD levels: Rec2Inf k ∈ 5 steps up to k_max; IRN w_t ∈ {0, 0.25, 0.5, 0.75, 1}.\n\n",
    );
    // Every w_t level retrains IRN; the unit-test preset sweeps a coarser
    // grid.
    let wt_levels: &[f32] = if fidelity == super::Fidelity::Tiny {
        &[0.0, 0.5, 1.0]
    } else {
        &[0.0, 0.25, 0.5, 0.75, 1.0]
    };
    for h in &harnesses {
        let m = h.config.m;
        let evaluator = Evaluator::new(h.train_bert4rec());
        let dist = h.distance();
        let k_max = super::default_k(h.dataset.num_items);
        let mut k_levels: Vec<usize> = (1..=5).map(|i| ((k_max * i) / 5).max(1)).collect();
        k_levels.dedup(); // tiny catalogues collapse adjacent levels

        let caser = h.train_caser();
        let sasrec = h.train_sasrec();

        let mut rows = Vec::new();
        let mut add = |name: String, rec: &(dyn InfluenceRecommender + Sync)| {
            let paths = h.generate_paths(rec, m);
            let met = evaluate_paths(&evaluator, &paths);
            rows.push(vec![
                name,
                format!("{:.3}", met.sr),
                if met.log_ppl.is_nan() { "n/a".into() } else { format!("{:.2}", met.log_ppl) },
            ]);
        };

        for &k in &k_levels {
            add(format!("Rec2Inf(Caser) k={k}"), &Rec2Inf::new(&caser, &dist, k));
        }
        for &k in &k_levels {
            add(format!("Rec2Inf(SASRec) k={k}"), &Rec2Inf::new(&sasrec, &dist, k));
        }
        for &wt in wt_levels {
            // The paper treats w_t as a training-time hyperparameter;
            // retrain IRN per level.
            let cfg = irs_core::IrnConfig { wt, ..h.irn_config() };
            let irn = h.train_irn_with(&cfg);
            add(format!("IRN wt={wt}"), &irn);
        }

        out.push_str(&format!(
            "### {}\n\n{}\n",
            h.config.kind.label(),
            render_table(&["AD level", &format!("SR{m}"), "log(PPL)"], &rows)
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn tiny_run_sweeps_k_and_wt() {
        let out = super::run_at(crate::experiments::Fidelity::Tiny);
        assert!(out.contains("k="));
        assert!(out.contains("wt=0.5"));
        assert!(out.contains("wt=1"));
    }
}
