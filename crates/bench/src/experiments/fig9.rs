//! Figure 9 — stepwise evolution of user interests along influence paths:
//! the objective probability `P(i_t | s_h ⊕ i_{<k})` and the path-item
//! probability `P(i_k | s_h ⊕ i_{<k})`, averaged per step with
//! early-success paths excluded.

use irs_core::{InfluenceRecommender, Rec2Inf};
use irs_eval::{stepwise_evolution, Evaluator};

use crate::render_table;

/// Regenerate Figure 9.
pub fn run(standard: bool) -> String {
    run_at(super::Fidelity::from_standard(standard))
}

/// Regenerate Figure 9 at an explicit fidelity.
pub fn run_at(fidelity: super::Fidelity) -> String {
    let harnesses = super::both_harnesses(fidelity);
    let mut out = String::from(
        "## Figure 9 — stepwise evolution of user interests (early-success paths excluded)\n\n",
    );
    for h in &harnesses {
        let m = h.config.m;
        let steps = m.min(10);
        let evaluator = Evaluator::new(h.train_bert4rec());
        let dist = h.distance();
        let k = super::default_k(h.dataset.num_items);

        let caser = h.train_caser();
        let irn = h.train_irn();

        let mut rows = Vec::new();
        let mut add = |name: &str, rec: &(dyn InfluenceRecommender + Sync)| {
            let paths = h.generate_paths(rec, m);
            let curves = stepwise_evolution(&evaluator, &paths, steps, true);
            let mut obj_row = vec![format!("{name} P(obj)")];
            obj_row.extend(curves.objective_prob.iter().map(|p| format!("{p:.4}")));
            rows.push(obj_row);
            let mut item_row = vec![format!("{name} P(item)")];
            item_row.extend(curves.item_prob.iter().map(|p| format!("{p:.4}")));
            rows.push(item_row);
        };
        add("Rec2Inf(Caser)", &Rec2Inf::new(&caser, &dist, k));
        add("IRN", &irn);

        let mut headers: Vec<String> = vec!["Curve".into()];
        headers.extend((1..=steps).map(|s| format!("k={s}")));
        let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
        out.push_str(&format!(
            "### {}\n\n{}\n",
            h.config.kind.label(),
            render_table(&header_refs, &rows)
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn tiny_run_emits_probability_curves() {
        let out = super::run_at(crate::experiments::Fidelity::Tiny);
        assert!(out.contains("P(obj)"));
        assert!(out.contains("P(item)"));
    }
}
