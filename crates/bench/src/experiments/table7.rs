//! Table VII — case study: a generated influence path with its genre
//! transitions, demonstrating a smooth genre shift from the user's last
//! watched item toward the objective's genre.

use irs_eval::PathRecord;

use crate::harness::{DatasetKind, Harness};

/// Pick the most illustrative path: prefers successful paths whose start
/// and objective genres differ, then longer paths.
fn pick_case<'a>(h: &Harness, paths: &'a [PathRecord]) -> Option<&'a PathRecord> {
    paths.iter().filter(|p| !p.path.is_empty() && !p.history.is_empty()).max_by_key(|p| {
        let start_genre = h.dataset.genres[*p.history.last().unwrap()].first().copied();
        let obj_genre = h.dataset.genres[p.objective].first().copied();
        let genre_shift = usize::from(start_genre != obj_genre);
        let success = usize::from(p.success());
        (success, genre_shift, p.path.len())
    })
}

/// Regenerate the Table VII case study on the Movielens-like dataset.
pub fn run(standard: bool) -> String {
    run_at(super::Fidelity::from_standard(standard))
}

/// Regenerate the Table VII case study at an explicit fidelity.
pub fn run_at(fidelity: super::Fidelity) -> String {
    let h = Harness::build(fidelity.config(DatasetKind::MovielensLike));
    let irn = h.train_irn();
    let paths = h.generate_paths(&irn, h.config.m);
    let Some(case) = pick_case(&h, &paths) else {
        return "## Table VII — case study\n\n(no non-empty path generated)\n".into();
    };

    let mut out =
        String::from("## Table VII — influence-path case study (IRN, Movielens-like)\n\n");
    let last = *case.history.last().expect("picked case has history");
    out.push_str(&format!(
        "Last item in viewing history:\n  {:<28}  [{}]\n\nInfluence path:\n",
        h.dataset.item_name(last),
        h.dataset.genre_label(last)
    ));
    for &item in &case.path {
        let marker = if item == case.objective { " *" } else { "" };
        out.push_str(&format!(
            "  {:<28}  [{}]{marker}\n",
            h.dataset.item_name(item),
            h.dataset.genre_label(item)
        ));
    }
    out.push_str(&format!(
        "\nObjective:\n  {:<28}  [{}]{}\n",
        h.dataset.item_name(case.objective),
        h.dataset.genre_label(case.objective),
        if case.success() { "  — reached" } else { "  — not reached within budget" }
    ));
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn tiny_case_study_prints_a_path() {
        let out = super::run_at(crate::experiments::Fidelity::Tiny);
        assert!(out.contains("Influence path"));
        assert!(out.contains("Objective:"));
    }
}
