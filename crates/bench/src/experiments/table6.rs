//! Table VI — hyperparameter study: a coordinate sweep around the default
//! IRN configuration reporting validation loss and SR (the paper reports
//! its grid-search ranges and chosen values; absolute ranges are scaled to
//! the synthetic substrate).

use irs_eval::{evaluate_paths, Evaluator};

use crate::harness::{DatasetKind, Harness};
use crate::render_table;

/// Regenerate the Table VI sweep on the Lastfm-like dataset.
pub fn run(standard: bool) -> String {
    run_at(super::Fidelity::from_standard(standard))
}

/// Regenerate the Table VI sweep at an explicit fidelity.
pub fn run_at(fidelity: super::Fidelity) -> String {
    use super::Fidelity;
    let standard = fidelity.is_standard();
    let h = Harness::build(fidelity.config(DatasetKind::LastfmLike));
    let evaluator = Evaluator::new(h.train_bert4rec());
    let m = h.config.m;
    let base = h.irn_config();

    // Coordinate sweep: vary one hyperparameter at a time.
    let mut variants: Vec<(String, irs_core::IrnConfig)> = Vec::new();
    let dims: &[usize] = match fidelity {
        Fidelity::Standard => &[16, 32, 48],
        Fidelity::Quick => &[16],
        Fidelity::Tiny => &[8],
    };
    for &d in dims {
        variants.push((format!("d = {d}"), irs_core::IrnConfig { dim: d, ..base.clone() }));
    }
    let layer_counts: &[usize] = if standard { &[1, 2, 3] } else { &[1, 2] };
    for &l in layer_counts {
        variants.push((format!("L = {l}"), irs_core::IrnConfig { layers: l, ..base.clone() }));
    }
    let head_counts: &[usize] = if standard { &[1, 2, 4] } else { &[2] };
    for &hh in head_counts {
        variants.push((format!("h = {hh}"), irs_core::IrnConfig { heads: hh, ..base.clone() }));
    }
    let user_dims: &[usize] = if standard { &[4, 8, 12] } else { &[8] };
    for &ud in user_dims {
        variants.push((format!("d' = {ud}"), irs_core::IrnConfig { user_dim: ud, ..base.clone() }));
    }

    let mut rows = Vec::new();
    let mut best: (f32, String) = (f32::INFINITY, String::new());
    for (label, cfg) in variants {
        // item2vec init only applies when dims match; train_irn_with
        // handles the fallback.
        let irn = h.train_irn_with(&cfg);
        let val = if h.split.val.is_empty() {
            irn.dataset_loss(&h.split.train)
        } else {
            irn.dataset_loss(&h.split.val)
        };
        let paths = h.generate_paths(&irn, m);
        let met = evaluate_paths(&evaluator, &paths);
        if val < best.0 {
            best = (val, label.clone());
        }
        rows.push(vec![label, format!("{val:.4}"), format!("{:.3}", met.sr)]);
    }

    format!(
        "## Table VI — hyperparameter sweep (Lastfm-like)\n\nDefaults: d={}, d'={}, L={}, h={}, w_t={}, lr={:.0e}, batch={}\n\n{}\nBest validation loss: {} ({:.4})\n",
        base.dim,
        base.user_dim,
        base.layers,
        base.heads,
        base.wt,
        base.train.lr,
        base.train.batch_size,
        render_table(&["Variant", "Val loss", &format!("SR{m}")], &rows),
        best.1,
        best.0
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn tiny_run_sweeps_at_least_three_variants() {
        let out = super::run_at(crate::experiments::Fidelity::Tiny);
        assert!(out.contains("d = 8"));
        assert!(out.contains("L = 1"));
        assert!(out.contains("Best validation loss"));
    }
}
