//! Table V — PIM ablation: Type 1 (no objective attention), Type 2
//! (uniform objective weight `w_t`), Type 3 (personalized `r_u · w_t`).

use irs_core::MaskType;
use irs_eval::{evaluate_paths, Evaluator};

use crate::render_table;

/// Regenerate Table V.
pub fn run(standard: bool) -> String {
    run_at(super::Fidelity::from_standard(standard))
}

/// Regenerate Table V at an explicit fidelity.
pub fn run_at(fidelity: super::Fidelity) -> String {
    let harnesses = super::both_harnesses(fidelity);
    let mut out = String::from("## Table V — comparison of PIM mask types\n\n");
    for h in &harnesses {
        let m = h.config.m;
        let evaluator = Evaluator::new(h.train_bert4rec());
        let mut rows = Vec::new();
        for (label, mask) in [
            ("Type 1 (causal)", MaskType::Causal),
            ("Type 2 (uniform wt)", MaskType::ObjectiveUniform),
            ("Type 3 (ru·wt, PIM)", MaskType::ObjectivePersonalized),
        ] {
            let cfg = irs_core::IrnConfig { mask_type: mask, ..h.irn_config() };
            let irn = h.train_irn_with(&cfg);
            let paths = h.generate_paths(&irn, m);
            let met = evaluate_paths(&evaluator, &paths);
            rows.push(vec![
                label.to_string(),
                if met.log_ppl.is_nan() { "n/a".into() } else { format!("{:.2}", met.log_ppl) },
                format!("{:.3}", met.sr),
                format!("{:+.3}", met.ioi),
            ]);
        }
        out.push_str(&format!(
            "### {}\n\n{}\n",
            h.config.kind.label(),
            render_table(&["Mask type", "log(PPL)", &format!("SR{m}"), &format!("IoI{m}")], &rows)
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn tiny_run_reports_three_mask_types() {
        let out = super::run_at(crate::experiments::Fidelity::Tiny);
        assert!(out.contains("Type 1"));
        assert!(out.contains("Type 2"));
        assert!(out.contains("Type 3"));
    }
}
