//! Extended analyses beyond the paper's evaluation section:
//!
//! * **Path quality** — genre diversity, intra-list distance and novelty
//!   of the influence paths each framework generates (production-facing
//!   metrics the paper does not report).
//! * **KG-enhanced Pf2Inf** (future work §V-1) — multi-relational
//!   path-finding vs. the plain co-occurrence Dijkstra.

use irs_core::{InfluenceRecommender, KgPf2Inf, PathAlgorithm, Pf2Inf, Rec2Inf, Vanilla};
use irs_eval::{evaluate_paths, path_quality, Evaluator};
use irs_graph::RelationCosts;

use crate::harness::{DatasetKind, Harness};
use crate::render_table;

/// Regenerate the extended analyses on the Movielens-like dataset (genre
/// metadata makes both analyses meaningful there).
pub fn run(standard: bool) -> String {
    run_at(super::Fidelity::from_standard(standard))
}

/// Regenerate the extended analyses at an explicit fidelity.
pub fn run_at(fidelity: super::Fidelity) -> String {
    let h = Harness::build(fidelity.config(DatasetKind::MovielensLike));
    let m = h.config.m;
    let evaluator = Evaluator::new(h.train_bert4rec());
    let dist = h.distance();
    let k = super::default_k(h.dataset.num_items);

    let sasrec = h.train_sasrec();
    let irn = h.train_irn();
    let pop = h.train_pop();

    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut add = |name: String, rec: &(dyn InfluenceRecommender + Sync)| {
        let paths = h.generate_paths(rec, m);
        let met = evaluate_paths(&evaluator, &paths);
        let q = path_quality(&h.dataset, &dist, &paths);
        rows.push(vec![
            name,
            format!("{:.3}", met.sr),
            if met.log_ppl.is_nan() { "n/a".into() } else { format!("{:.2}", met.log_ppl) },
            format!("{:.3}", q.genre_diversity),
            format!("{:.3}", q.intra_list_distance),
            format!("{:.2}", q.novelty),
        ]);
    };

    let dij = Pf2Inf::new(h.item_graph(), PathAlgorithm::Dijkstra);
    add("Pf2Inf(Dijkstra)".into(), &dij);
    let kg = KgPf2Inf::from_dataset(&h.dataset, RelationCosts::default());
    add(kg.name(), &kg);
    add("Vanilla(POP)".into(), &Vanilla::new(&pop));
    add(format!("Rec2Inf(SASRec) k={k}"), &Rec2Inf::new(&sasrec, &dist, k));
    add("IRN".into(), &irn);

    format!(
        "## Extended analyses (Movielens-like, M = {m})\n\n\
         Path quality: genre diversity (distinct genres / path length),\n\
         intra-list distance (mean pairwise item distance) and novelty\n\
         (−log₂ popularity share); KG = multi-relational path-finding.\n\n{}",
        render_table(
            &["Method", &format!("SR{m}"), "log(PPL)", "Diversity", "ILD", "Novelty"],
            &rows
        )
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn tiny_run_reports_quality_columns() {
        let out = super::run_at(crate::experiments::Fidelity::Tiny);
        for col in ["Diversity", "ILD", "Novelty", "Pf2Inf(KG)", "IRN"] {
            assert!(out.contains(col), "missing {col} in:\n{out}");
        }
    }
}
