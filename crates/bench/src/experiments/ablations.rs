//! Ablations of the design choices DESIGN.md calls out, beyond the paper's
//! own Table V mask ablation:
//!
//! 1. **Pre- vs post-padding** (§III-D5 argues pre-padding keeps the
//!    objective at a fixed position; post-padding is the counterfactual).
//! 2. **item2vec-initialised vs randomly initialised** item embeddings
//!    (§III-D1).
//! 3. **Greedy vs beam-search decoding** of the influence path (extension).
//! 4. **Unit vs inverse-co-occurrence edge weights** for Pf2Inf/Dijkstra.

use irs_core::{beam_search_path, BeamConfig, PathAlgorithm, Pf2Inf};
use irs_data::split::PaddingScheme;
use irs_eval::{evaluate_paths, Evaluator, PathRecord};

use crate::harness::{DatasetKind, Harness};
use crate::render_table;

/// Regenerate the ablation suite on the Lastfm-like dataset.
pub fn run(standard: bool) -> String {
    run_at(super::Fidelity::from_standard(standard))
}

/// Regenerate the ablation suite at an explicit fidelity.
pub fn run_at(fidelity: super::Fidelity) -> String {
    let h = Harness::build(fidelity.config(DatasetKind::LastfmLike));
    let m = h.config.m;
    let evaluator = Evaluator::new(h.train_bert4rec());
    let mut rows: Vec<Vec<String>> = Vec::new();

    let mut push = |group: &str, variant: &str, paths: &[PathRecord]| {
        let met = evaluate_paths(&evaluator, paths);
        let mut row = vec![group.to_string(), variant.to_string()];
        row.extend(super::metric_cells(&met));
        rows.push(row);
    };

    // 1. Padding scheme.
    for (label, scheme) in
        [("pre-padding", PaddingScheme::Pre), ("post-padding", PaddingScheme::Post)]
    {
        let cfg = irs_core::IrnConfig { padding: scheme, ..h.irn_config() };
        let irn = h.train_irn_with(&cfg);
        let paths = h.generate_paths(&irn, m);
        push("Padding", label, &paths);
    }

    // 2. Embedding initialisation.
    {
        let irn_pre = h.train_irn(); // item2vec-initialised by default
        push("Embedding init", "item2vec", &h.generate_paths(&irn_pre, m));
        let irn_rand = irs_core::Irn::fit(
            &h.split.train,
            &h.split.val,
            h.dataset.num_items,
            h.dataset.num_users,
            &h.irn_config(),
            None,
        );
        push("Embedding init", "random", &h.generate_paths(&irn_rand, m));
    }

    // 3. Decoding strategy.
    {
        let irn = h.train_irn();
        push("Decoding", "greedy", &h.generate_paths(&irn, m));
        let (test, objectives) = h.test_slice();
        let beam_cfg = BeamConfig { beam_width: 3, branch: 3, max_len: m, success_bonus: 2.0 };
        let beam_paths: Vec<PathRecord> = test
            .iter()
            .zip(&objectives)
            .map(|(tc, &obj)| PathRecord {
                user: tc.user,
                history: tc.history.clone(),
                objective: obj,
                path: beam_search_path(&irn, tc.user, &tc.history, obj, &beam_cfg),
            })
            .collect();
        push("Decoding", "beam (w=3)", &beam_paths);
    }

    // 4. Pf2Inf edge weighting.
    {
        let unit = Pf2Inf::new(h.item_graph(), PathAlgorithm::Dijkstra);
        push("Pf2Inf weights", "unit (paper)", &h.generate_paths(&unit, m));
        let mut graph = h.item_graph();
        graph.reweight(|c| 1.0 / c as f32);
        let inv = Pf2Inf::new(graph, PathAlgorithm::Dijkstra);
        push("Pf2Inf weights", "1/co-occurrence", &h.generate_paths(&inv, m));
    }

    format!(
        "## Ablations (Lastfm-like, M = {m})\n\n{}",
        render_table(
            &[
                "Dimension",
                "Variant",
                &format!("SR{m}"),
                &format!("IoI{m}"),
                &format!("IoR{m}"),
                "log(PPL)"
            ],
            &rows
        )
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn tiny_ablations_cover_all_dimensions() {
        let out = super::run_at(crate::experiments::Fidelity::Tiny);
        for dim in ["Padding", "Embedding init", "Decoding", "Pf2Inf weights"] {
            assert!(out.contains(dim), "missing {dim} in:\n{out}");
        }
    }
}
