//! One module per paper table/figure.  Every experiment exposes
//! `run(standard: bool) -> String`; `standard = false` selects the
//! seconds-scale quick preset used by integration tests.

pub mod ablations;
pub mod extended;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod table1;
pub mod table2;
pub mod table3;
pub mod table4;
pub mod table5;
pub mod table6;
pub mod table7;

use crate::harness::{DatasetKind, Harness, HarnessConfig};
use irs_eval::IrsMetrics;

/// Dataset scale and training budget of an experiment run.
///
/// Every experiment exposes `run_at(Fidelity)`; the legacy
/// `run(standard: bool)` wrappers map `true`/`false` onto
/// `Standard`/`Quick`.  `Tiny` exists for the unit-test suite: the tests
/// assert report structure, not metric values, so they ride the cheapest
/// preset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fidelity {
    /// Sub-second preset for unit tests ([`HarnessConfig::tiny`]).
    Tiny,
    /// Seconds-scale preset ([`HarnessConfig::quick`]).
    Quick,
    /// Minutes-scale preset ([`HarnessConfig::standard`]).
    Standard,
}

impl Fidelity {
    pub(crate) fn from_standard(standard: bool) -> Self {
        if standard {
            Fidelity::Standard
        } else {
            Fidelity::Quick
        }
    }

    pub(crate) fn is_standard(self) -> bool {
        self == Fidelity::Standard
    }

    /// The harness configuration of this fidelity for one dataset.
    pub(crate) fn config(self, kind: DatasetKind) -> HarnessConfig {
        match self {
            Fidelity::Tiny => HarnessConfig::tiny(kind),
            Fidelity::Quick => HarnessConfig::quick(kind),
            Fidelity::Standard => HarnessConfig::standard(kind),
        }
    }
}

/// Build the two dataset harnesses at the requested fidelity.
pub(crate) fn both_harnesses(fidelity: Fidelity) -> Vec<Harness> {
    [DatasetKind::LastfmLike, DatasetKind::MovielensLike]
        .into_iter()
        .map(|kind| Harness::build(fidelity.config(kind)))
        .collect()
}

/// Format an [`IrsMetrics`] into the Table III column layout.
pub(crate) fn metric_cells(m: &IrsMetrics) -> Vec<String> {
    vec![
        format!("{:.3}", m.sr),
        format!("{:+.3}", m.ioi),
        format!("{:+.1}", m.ior),
        if m.log_ppl.is_nan() { "n/a".into() } else { format!("{:.2}", m.log_ppl) },
    ]
}

/// Candidate-set size for Rec2Inf, scaled to the catalogue.  The paper
/// uses `k = 50` on catalogues of ~3 000 items (≈2%); keeping the ratio
/// rather than the absolute value preserves the aggressiveness semantics
/// at reduced scale.
pub(crate) fn default_k(num_items: usize) -> usize {
    (num_items / 50).clamp(3, 50)
}
