//! Table I — dataset statistics after preprocessing.

use irs_data::stats::dataset_stats;

use crate::render_table;

/// Regenerate Table I.
pub fn run(standard: bool) -> String {
    let harnesses = super::both_harnesses(standard);
    let rows: Vec<Vec<String>> = harnesses
        .iter()
        .map(|h| {
            let s = dataset_stats(&h.dataset);
            vec![
                s.name.clone(),
                s.users.to_string(),
                s.items.to_string(),
                s.interactions.to_string(),
                format!("{:.2}%", s.density_pct),
                format!("{:.0}", s.avg_items_per_user),
            ]
        })
        .collect();
    format!(
        "## Table I — dataset statistics after preprocessing\n\n{}",
        render_table(
            &["Dataset", "Users", "Items", "Interactions", "Density", "Avg items/user"],
            &rows
        )
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn quick_run_produces_two_rows() {
        let out = super::run(false);
        assert!(out.contains("lastfm-like"));
        assert!(out.contains("movielens-like"));
    }
}
