//! Table I — dataset statistics after preprocessing.

use irs_data::stats::dataset_stats;

use crate::render_table;

/// Regenerate Table I.
pub fn run(standard: bool) -> String {
    run_at(super::Fidelity::from_standard(standard))
}

/// Regenerate Table I at an explicit fidelity.
pub fn run_at(fidelity: super::Fidelity) -> String {
    let harnesses = super::both_harnesses(fidelity);
    let rows: Vec<Vec<String>> = harnesses
        .iter()
        .map(|h| {
            let s = dataset_stats(&h.dataset);
            vec![
                s.name.clone(),
                s.users.to_string(),
                s.items.to_string(),
                s.interactions.to_string(),
                format!("{:.2}%", s.density_pct),
                format!("{:.0}", s.avg_items_per_user),
            ]
        })
        .collect();
    format!(
        "## Table I — dataset statistics after preprocessing\n\n{}",
        render_table(
            &["Dataset", "Users", "Items", "Interactions", "Density", "Avg items/user"],
            &rows
        )
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn tiny_run_produces_two_rows() {
        let out = super::run_at(crate::experiments::Fidelity::Tiny);
        assert!(out.contains("lastfm-like"));
        assert!(out.contains("movielens-like"));
    }
}
