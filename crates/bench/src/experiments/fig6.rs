//! Figure 6 — success rate `SR_M` as a function of the maximum path
//! length `M`, for IRN and the strong Rec2Inf baselines.
//!
//! Paths are generated once with the largest budget; `SR_M` for smaller
//! `M` is the fraction of paths that reached the objective within the
//! first `M` steps (generation stops at the objective, so prefixes are
//! exactly what a smaller budget would have produced).

use irs_core::{InfluenceRecommender, Rec2Inf};
use irs_eval::PathRecord;

use crate::render_table;

/// `SR_M` from paths generated with budget `max_m ≥ m`.
pub fn sr_at(paths: &[PathRecord], m: usize) -> f64 {
    let hits = paths.iter().filter(|p| p.success() && p.path.len() <= m).count();
    hits as f64 / paths.len().max(1) as f64
}

/// Regenerate Figure 6.
pub fn run(standard: bool) -> String {
    run_at(super::Fidelity::from_standard(standard))
}

/// Regenerate Figure 6 at an explicit fidelity.
pub fn run_at(fidelity: super::Fidelity) -> String {
    let harnesses = super::both_harnesses(fidelity);
    let mut out = String::from("## Figure 6 — SR vs maximum path length M\n\n");
    for h in &harnesses {
        let max_m = if fidelity.is_standard() { 40 } else { h.config.m };
        let ms: Vec<usize> =
            [1, 2, 5, 10, 15, 20, 30, 40].into_iter().filter(|&m| m <= max_m).collect();
        let k = super::default_k(h.dataset.num_items);
        let dist = h.distance();

        let gru = h.train_gru4rec();
        let caser = h.train_caser();
        let sasrec = h.train_sasrec();
        let irn = h.train_irn();

        let mut rows = Vec::new();
        let mut add = |name: &str, rec: &(dyn InfluenceRecommender + Sync)| {
            let paths = h.generate_paths(rec, max_m);
            let mut row = vec![name.to_string()];
            row.extend(ms.iter().map(|&m| format!("{:.3}", sr_at(&paths, m))));
            rows.push(row);
        };
        add("Rec2Inf(GRU4Rec)", &Rec2Inf::new(&gru, &dist, k));
        add("Rec2Inf(Caser)", &Rec2Inf::new(&caser, &dist, k));
        add("Rec2Inf(SASRec)", &Rec2Inf::new(&sasrec, &dist, k));
        add("IRN", &irn);

        let mut headers: Vec<String> = vec!["Method".into()];
        headers.extend(ms.iter().map(|m| format!("M={m}")));
        let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
        out.push_str(&format!(
            "### {}\n\n{}\n",
            h.config.kind.label(),
            render_table(&header_refs, &rows)
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use irs_eval::PathRecord;

    fn rec(objective: usize, path: Vec<usize>) -> PathRecord {
        PathRecord { user: 0, history: vec![99], objective, path }
    }

    #[test]
    fn sr_at_is_monotone_in_m() {
        let paths = vec![
            rec(5, vec![1, 5]),       // success at 2
            rec(6, vec![1, 2, 3, 6]), // success at 4
            rec(7, vec![1, 2, 3]),    // failure
        ];
        assert_eq!(sr_at(&paths, 1), 0.0);
        assert!((sr_at(&paths, 2) - 1.0 / 3.0).abs() < 1e-9);
        assert!((sr_at(&paths, 4) - 2.0 / 3.0).abs() < 1e-9);
        assert!(sr_at(&paths, 2) <= sr_at(&paths, 4));
    }
}
