//! Table III — overall comparison of all IRS approaches at `M = 20`:
//! Pf2Inf (Dijkstra, MST), the six Vanilla baselines, the six Rec2Inf
//! adaptations and IRN, scored with SR / IoI / IoR / log(PPL).

use irs_core::{InfluenceRecommender, PathAlgorithm, Pf2Inf, Rec2Inf, Vanilla};
use irs_eval::{evaluate_paths, Evaluator};

use crate::harness::Harness;
use crate::render_table;

/// Regenerate Table III for one harness.
pub fn run_one(h: &Harness) -> String {
    let m = h.config.m;
    let evaluator = Evaluator::new(h.train_bert4rec());
    let dist = h.distance();
    let k = super::default_k(h.dataset.num_items);

    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut add = |group: &str, name: String, rec: &(dyn InfluenceRecommender + Sync)| {
        let paths = h.generate_paths(rec, m);
        let met = evaluate_paths(&evaluator, &paths);
        let mut row = vec![group.to_string(), name];
        row.extend(super::metric_cells(&met));
        rows.push(row);
    };

    // Pf2Inf.
    let graph = h.item_graph();
    let dij = Pf2Inf::new(graph.clone(), PathAlgorithm::Dijkstra);
    add("Pf2Inf", "Dijkstra".into(), &dij);
    let mst = Pf2Inf::new(graph, PathAlgorithm::Mst);
    add("Pf2Inf", "MST".into(), &mst);

    // Backbones (trained once, shared by Vanilla and Rec2Inf).
    let pop = h.train_pop();
    let bpr = h.train_bpr();
    let transrec = h.train_transrec();
    let gru = h.train_gru4rec();
    let caser = h.train_caser();
    let sasrec = h.train_sasrec();

    add("Vanilla", "POP".into(), &Vanilla::new(&pop));
    add("Vanilla", "BPR".into(), &Vanilla::new(&bpr));
    add("Vanilla", "TransRec".into(), &Vanilla::new(&transrec));
    add("Vanilla", "GRU4Rec".into(), &Vanilla::new(&gru));
    add("Vanilla", "Caser".into(), &Vanilla::new(&caser));
    add("Vanilla", "SASRec".into(), &Vanilla::new(&sasrec));

    add("Rec2Inf", "POP".into(), &Rec2Inf::new(&pop, &dist, k));
    add("Rec2Inf", "BPR".into(), &Rec2Inf::new(&bpr, &dist, k));
    add("Rec2Inf", "TransRec".into(), &Rec2Inf::new(&transrec, &dist, k));
    add("Rec2Inf", "GRU4Rec".into(), &Rec2Inf::new(&gru, &dist, k));
    add("Rec2Inf", "Caser".into(), &Rec2Inf::new(&caser, &dist, k));
    add("Rec2Inf", "SASRec".into(), &Rec2Inf::new(&sasrec, &dist, k));

    // IRN.
    let irn = h.train_irn();
    add("IRN", "IRN".into(), &irn);

    format!(
        "### {} (M = {m}, k = {k})\n\n{}",
        h.config.kind.label(),
        render_table(
            &[
                "Framework",
                "Method",
                &format!("SR{m}"),
                &format!("IoI{m}"),
                &format!("IoR{m}"),
                "log(PPL)"
            ],
            &rows
        )
    )
}

/// Regenerate Table III for both datasets.
pub fn run(standard: bool) -> String {
    run_at(super::Fidelity::from_standard(standard))
}

/// Regenerate Table III at an explicit fidelity.
pub fn run_at(fidelity: super::Fidelity) -> String {
    let harnesses = super::both_harnesses(fidelity);
    let mut out = String::from("## Table III — overall comparison of IRS approaches\n\n");
    for h in &harnesses {
        out.push_str(&run_one(h));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use crate::harness::{DatasetKind, Harness, HarnessConfig};

    #[test]
    fn tiny_table3_contains_all_frameworks() {
        let h = Harness::build(HarnessConfig::tiny(DatasetKind::LastfmLike));
        let out = super::run_one(&h);
        for name in ["Dijkstra", "MST", "Vanilla", "Rec2Inf", "IRN"] {
            assert!(out.contains(name), "missing {name} in:\n{out}");
        }
    }
}
