//! Table IV — next-item recommendation quality (HR@20 / MRR) of the plain
//! recommenders vs. their IRS-adapted counterparts and IRN.
//!
//! The IRS-adapted ranking: the backbone's top-k candidates are promoted
//! to the head of the ranking, re-sorted by distance to the objective
//! (exactly the order Rec2Inf would recommend them in); the remaining
//! items keep their score order.  IRN ranks by `score_next` with the
//! sampled objective pinned at the final position.

use irs_baselines::{rank_of, SequentialScorer};
use irs_data::split::TestCase;
use irs_data::ItemId;
use irs_embed::ItemDistance;
use irs_eval::next_item_metrics;

use crate::render_table;

/// Ranking induced by the Rec2Inf greedy step: returns pseudo-scores where
/// higher = earlier in the adapted ranking.
fn rec2inf_pseudo_scores<D: ItemDistance>(
    scores: &[f32],
    k: usize,
    dist: &D,
    objective: ItemId,
) -> Vec<f32> {
    let n = scores.len();
    let mut order: Vec<ItemId> = (0..n).collect();
    order.sort_unstable_by(|&a, &b| {
        scores[b].partial_cmp(&scores[a]).unwrap_or(std::cmp::Ordering::Equal)
    });
    let (top, rest) = order.split_at(k.min(n));
    let mut top: Vec<ItemId> = top.to_vec();
    top.sort_by(|&a, &b| {
        dist.distance(a, objective)
            .partial_cmp(&dist.distance(b, objective))
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut pseudo = vec![0.0f32; n];
    for (pos, &item) in top.iter().chain(rest.iter()).enumerate() {
        pseudo[item] = -(pos as f32);
    }
    pseudo
}

/// HR@K / MRR of an adapted ranking over the test cases.
fn adapted_metrics<S: SequentialScorer, D: ItemDistance>(
    scorer: &S,
    dist: &D,
    k_candidates: usize,
    test: &[TestCase],
    objectives: &[ItemId],
    k_eval: usize,
) -> (f64, f64) {
    let users: Vec<_> = test.iter().map(|tc| tc.user).collect();
    let histories: Vec<&[ItemId]> = test.iter().map(|tc| tc.history.as_slice()).collect();
    let all_scores = scorer.score_batch(&users, &histories);
    let mut hr = 0.0;
    let mut mrr = 0.0;
    for ((tc, &obj), scores) in test.iter().zip(objectives).zip(&all_scores) {
        let pseudo = rec2inf_pseudo_scores(scores, k_candidates, dist, obj);
        let rank = rank_of(&pseudo, tc.next_item);
        if rank <= k_eval {
            hr += 1.0;
        }
        mrr += 1.0 / rank as f64;
    }
    let n = test.len() as f64;
    (hr / n, mrr / n)
}

/// Regenerate Table IV.
pub fn run(standard: bool) -> String {
    run_at(super::Fidelity::from_standard(standard))
}

/// Regenerate Table IV at an explicit fidelity.
pub fn run_at(fidelity: super::Fidelity) -> String {
    let harnesses = super::both_harnesses(fidelity);
    let mut out = String::from("## Table IV — next-item performance, vanilla vs IRS-adapted\n\n");
    for h in &harnesses {
        let (test, objectives) = h.test_slice();
        let k = super::default_k(h.dataset.num_items);
        let dist = h.distance();

        let gru = h.train_gru4rec();
        let caser = h.train_caser();
        let sasrec = h.train_sasrec();
        let bert = h.train_bert4rec();
        let irn = h.train_irn();

        let mut rows: Vec<Vec<String>> = Vec::new();
        for (name, scorer) in [
            ("GRU4Rec", &gru as &dyn SequentialScorer),
            ("Caser", &caser),
            ("SASRec", &sasrec),
            ("Bert4Rec", &bert),
        ] {
            let m = next_item_metrics(&scorer, &test, 20);
            rows.push(vec![
                "Next-item RS".into(),
                name.into(),
                format!("{:.4}", m.hr),
                format!("{:.4}", m.mrr),
            ]);
        }
        for (name, scorer) in
            [("GRU4Rec", &gru as &dyn SequentialScorer), ("Caser", &caser), ("SASRec", &sasrec)]
        {
            let (hr, mrr) = adapted_metrics(&scorer, &dist, k, &test, &objectives, 20);
            rows.push(vec!["IRS".into(), name.into(), format!("{hr:.4}"), format!("{mrr:.4}")]);
        }
        // IRN ranks with the objective pinned at the final input position;
        // all test users share one batched forward.
        {
            let users: Vec<_> = test.iter().map(|tc| tc.user).collect();
            let histories: Vec<&[ItemId]> = test.iter().map(|tc| tc.history.as_slice()).collect();
            let all_scores = irn.score_next_batch(&users, &histories, &objectives);
            let mut hr = 0.0;
            let mut mrr = 0.0;
            for (tc, scores) in test.iter().zip(&all_scores) {
                let rank = rank_of(scores, tc.next_item);
                if rank <= 20 {
                    hr += 1.0;
                }
                mrr += 1.0 / rank as f64;
            }
            let n = test.len() as f64;
            rows.push(vec![
                "IRS".into(),
                "IRN".into(),
                format!("{:.4}", hr / n),
                format!("{:.4}", mrr / n),
            ]);
        }

        out.push_str(&format!(
            "### {}\n\n{}\n",
            h.config.kind.label(),
            render_table(&["Group", "Method", "HR@20", "MRR"], &rows)
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    struct UnitDist;
    impl ItemDistance for UnitDist {
        fn distance(&self, a: ItemId, b: ItemId) -> f32 {
            (a as f32 - b as f32).abs()
        }
    }

    #[test]
    fn pseudo_scores_put_objective_near_candidates_first() {
        // scores favour items 4,3,2,1,0; with k=3 and objective 0, the
        // top-3 {4,3,2} are re-sorted by |i−0| => 2,3,4, then 1,0.
        let scores = vec![0.0, 1.0, 2.0, 3.0, 4.0];
        let pseudo = rec2inf_pseudo_scores(&scores, 3, &UnitDist, 0);
        assert_eq!(rank_of(&pseudo, 2), 1);
        assert_eq!(rank_of(&pseudo, 3), 2);
        assert_eq!(rank_of(&pseudo, 4), 3);
        assert_eq!(rank_of(&pseudo, 1), 4);
    }
}
