//! Table II — performance of the IRS evaluator candidates (HR@20, MRR).
//!
//! Trains GRU4Rec, Caser, SASRec and Bert4Rec on each dataset and ranks
//! them on the held-out next-item task; the best model (Bert4Rec in the
//! paper) becomes the evaluator used by every other experiment.

use irs_baselines::SequentialScorer;
use irs_eval::next_item_metrics;

use crate::render_table;

/// Regenerate Table II.  Returns the report; the winner per dataset is
/// stated below the table.
pub fn run(standard: bool) -> String {
    run_at(super::Fidelity::from_standard(standard))
}

/// Regenerate Table II at an explicit fidelity.
pub fn run_at(fidelity: super::Fidelity) -> String {
    let harnesses = super::both_harnesses(fidelity);
    let mut headers: Vec<String> = vec!["Method".into()];
    for h in &harnesses {
        headers.push(format!("{} HR@20", h.config.kind.label()));
        headers.push("MRR".into());
    }
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();

    // rows[model][dataset] = (hr, mrr)
    let model_names = ["GRU4Rec", "Caser", "SASRec", "Bert4Rec"];
    let mut cells: Vec<Vec<String>> = model_names.iter().map(|n| vec![n.to_string()]).collect();
    let mut winners = Vec::new();

    for h in &harnesses {
        let (test, _) = h.test_slice();
        let gru = h.train_gru4rec();
        let caser = h.train_caser();
        let sasrec = h.train_sasrec();
        let bert = h.train_bert4rec();
        let scorers: Vec<&dyn SequentialScorer> = vec![&gru, &caser, &sasrec, &bert];
        let mut best = (f64::MIN, "");
        for (row, scorer) in cells.iter_mut().zip(&scorers) {
            let m = next_item_metrics(scorer, &test, 20);
            row.push(format!("{:.4}", m.hr));
            row.push(format!("{:.4}", m.mrr));
            if m.hr > best.0 {
                best = (m.hr, scorer.name());
            }
        }
        winners.push(format!("{}: {}", h.config.kind.label(), best.1));
    }

    format!(
        "## Table II — IRS evaluator candidates (HR@20 / MRR)\n\n{}\nSelected evaluator — {}\n",
        render_table(&header_refs, &cells),
        winners.join("; ")
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn tiny_run_reports_all_candidates() {
        let out = super::run_at(crate::experiments::Fidelity::Tiny);
        for name in ["GRU4Rec", "Caser", "SASRec", "Bert4Rec", "Selected evaluator"] {
            assert!(out.contains(name), "missing {name} in:\n{out}");
        }
    }
}
