//! Shared experiment infrastructure: dataset construction, model training
//! and influence-path generation.

use irs_baselines::{
    Bert4Rec, Bert4RecConfig, BprConfig, BprMf, Caser, CaserConfig, Gru4Rec, Gru4RecConfig,
    NeuralTrainConfig, Pop, SasRec, SasRecConfig, TransRec, TransRecConfig,
};
use irs_core::{generate_influence_paths, InfluenceRecommender, Irn, IrnConfig, PathRequest};
use irs_data::preprocess::{preprocess_dataset, PreprocessConfig};
use irs_data::split::{sample_objectives, split_dataset, DataSplit, SplitConfig, TestCase};
use irs_data::synth::{generate, SynthConfig};
use irs_data::{Dataset, ItemId};
use irs_embed::{
    train_item2vec, EmbeddingDistance, GenreDistance, Item2VecConfig, ItemDistance, ItemEmbeddings,
};
use irs_eval::PathRecord;

/// Which of the two paper datasets the harness emulates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DatasetKind {
    /// Lastfm-like synthetic data (item2vec distances in Rec2Inf).
    LastfmLike,
    /// MovieLens-1M-like synthetic data (genre-vector distances).
    MovielensLike,
}

impl DatasetKind {
    /// Display name matching the paper's column headers.
    pub fn label(self) -> &'static str {
        match self {
            DatasetKind::LastfmLike => "Lastfm-like",
            DatasetKind::MovielensLike => "Movielens-like",
        }
    }
}

/// Harness configuration: dataset scale, split bounds and training budget.
#[derive(Debug, Clone)]
pub struct HarnessConfig {
    /// Which dataset to emulate.
    pub kind: DatasetKind,
    /// Synthetic-generator scale (fraction of the paper's user/item count).
    pub scale: f32,
    /// Subsequence split bounds.
    pub l_min: usize,
    /// Maximum subsequence length.
    pub l_max: usize,
    /// Model input length (`l_max` is clipped to this at batch time).
    pub max_len: usize,
    /// Influence-path budget `M` (paper tables use 20).
    pub m: usize,
    /// Cap on evaluated test users (0 = all) — path generation is the
    /// dominant cost of the big tables.
    pub test_users: usize,
    /// Training epochs for all neural models.
    pub epochs: usize,
    /// Model width used by the neural models.
    pub dim: usize,
    /// Master seed.
    pub seed: u64,
}

impl HarnessConfig {
    /// Sub-second-scale configuration for unit tests: the synthetic
    /// generators bottom out at their minimum user/item floors, so the
    /// savings come from the training budget (1 epoch, width 8, length 8)
    /// and the evaluation span (8 users, M = 6).  Experiment unit tests
    /// assert report *structure*, not metric values, so this preset trades
    /// model quality for wall-clock without losing coverage.
    pub fn tiny(kind: DatasetKind) -> Self {
        HarnessConfig {
            kind,
            scale: 0.01,
            l_min: 4,
            l_max: 8,
            max_len: 8,
            m: 6,
            test_users: 8,
            epochs: 1,
            dim: 8,
            seed: 0x9e2,
        }
    }

    /// Seconds-scale configuration for tests.
    pub fn quick(kind: DatasetKind) -> Self {
        HarnessConfig {
            kind,
            scale: 0.03,
            l_min: 6,
            l_max: 14,
            max_len: 14,
            m: 10,
            test_users: 20,
            epochs: 2,
            dim: 16,
            seed: 0x9e2,
        }
    }

    /// The minutes-scale preset (the target configuration for a future
    /// standard-preset `EXPERIMENTS.md` run; the current report uses
    /// `quick`).  `IRS_SCALE` multiplies the dataset scale.
    pub fn standard(kind: DatasetKind) -> Self {
        let mult: f32 = std::env::var("IRS_SCALE").ok().and_then(|v| v.parse().ok()).unwrap_or(1.0);
        let base_scale = match kind {
            DatasetKind::LastfmLike => 0.15,
            DatasetKind::MovielensLike => 0.05,
        };
        HarnessConfig {
            kind,
            scale: (base_scale * mult).clamp(0.005, 1.0),
            l_min: 8,
            l_max: 20,
            max_len: 20,
            m: 20,
            test_users: 80,
            epochs: 6,
            dim: 32,
            seed: 0x9e1,
        }
    }

    fn train_cfg(&self) -> NeuralTrainConfig {
        NeuralTrainConfig {
            epochs: self.epochs,
            batch_size: 16,
            lr: 2e-3,
            clip: 5.0,
            seed: self.seed ^ 0x7777,
            verbose: false,
        }
    }

    /// IRN configuration derived from the harness configuration alone —
    /// also the architecture key for loading saved `IRSP` models (e.g.
    /// `irs serve` rebuilds it without training anything).  IRN gets a
    /// larger training budget and learning rate than the baselines: it
    /// must learn the objective conditioning on top of the next-item
    /// signal (the paper trains IRN for 1–2 GPU-hours with lr 8e-3 and
    /// plateau decay).
    pub fn irn_config(&self) -> IrnConfig {
        let mut train = self.train_cfg();
        train.epochs += self.epochs;
        train.lr = 3e-3;
        IrnConfig {
            dim: self.dim,
            user_dim: 8,
            layers: 2,
            heads: 2,
            max_len: self.max_len,
            dropout: 0.1,
            wt: 1.0,
            mask_type: irs_core::MaskType::ObjectivePersonalized,
            padding: irs_data::split::PaddingScheme::Pre,
            layout: irs_core::EncodingLayout::PrePadded,
            train,
        }
    }
}

/// Item distance dispatch (the paper uses genre vectors on MovieLens and
/// item2vec embeddings on Lastfm).
pub enum AnyDistance {
    /// Genre-feature cosine distance.
    Genre(GenreDistance),
    /// item2vec cosine distance.
    Embedding(EmbeddingDistance),
}

impl ItemDistance for AnyDistance {
    fn distance(&self, a: ItemId, b: ItemId) -> f32 {
        match self {
            AnyDistance::Genre(d) => d.distance(a, b),
            AnyDistance::Embedding(d) => d.distance(a, b),
        }
    }
}

/// A fully prepared experiment environment.
pub struct Harness {
    /// The configuration that built this harness.
    pub config: HarnessConfig,
    /// The preprocessed dataset.
    pub dataset: Dataset,
    /// Train/validation/test split.
    pub split: DataSplit,
    /// One sampled objective per test case (§IV-B1).
    pub objectives: Vec<ItemId>,
    /// Trained item2vec embeddings.
    pub embeddings: ItemEmbeddings,
}

impl Harness {
    /// Generate and preprocess the synthetic dataset a configuration
    /// describes — public so `irs serve` can rebuild the exact catalogue
    /// (item/user counts are part of the snapshot architecture check)
    /// without paying for the split and item2vec training.
    pub fn synth_dataset(config: &HarnessConfig) -> Dataset {
        let synth_cfg = match config.kind {
            DatasetKind::LastfmLike => SynthConfig::lastfm_like(config.scale),
            DatasetKind::MovielensLike => SynthConfig::movielens_like(config.scale),
        };
        let out = generate(&synth_cfg);
        let pre_cfg = PreprocessConfig { min_count: 5, dedup_consecutive: true };
        preprocess_dataset(&out.dataset, &out.interactions, &pre_cfg)
    }

    /// Generate, preprocess, split and embed one synthetic dataset.
    pub fn build(config: HarnessConfig) -> Self {
        let dataset = Self::synth_dataset(&config);
        Self::build_with_dataset(config, dataset)
    }

    /// Build the harness around an already-assembled dataset — the entry
    /// point for real MovieLens/Lastfm dumps loaded through
    /// `irs_data::loaders` (`irs train --ratings …`).  Splitting,
    /// objective sampling and item2vec run exactly as for synthetic data;
    /// `config.scale` is ignored (the dataset is whatever was loaded).
    pub fn build_with_dataset(config: HarnessConfig, dataset: Dataset) -> Self {
        let split_cfg = SplitConfig {
            l_min: config.l_min,
            l_max: config.l_max,
            val_fraction: 0.1,
            seed: config.seed,
        };
        let split = split_dataset(&dataset, &split_cfg);
        let objectives = sample_objectives(&dataset, &split.test, 5, config.seed ^ 0xabc);

        let embeddings = train_item2vec(
            &dataset.sequences,
            dataset.num_items,
            &Item2VecConfig { dim: config.dim, epochs: 3, ..Default::default() },
        );
        Harness { config, dataset, split, objectives, embeddings }
    }

    /// The evaluated test cases with their objectives (capped at
    /// `config.test_users`).
    pub fn test_slice(&self) -> (Vec<TestCase>, Vec<ItemId>) {
        let cap = if self.config.test_users == 0 {
            self.split.test.len()
        } else {
            self.config.test_users.min(self.split.test.len())
        };
        (self.split.test[..cap].to_vec(), self.objectives[..cap].to_vec())
    }

    /// The item-distance function matching the paper's per-dataset choice.
    pub fn distance(&self) -> AnyDistance {
        match self.config.kind {
            DatasetKind::MovielensLike => {
                AnyDistance::Genre(GenreDistance::from_dataset(&self.dataset))
            }
            DatasetKind::LastfmLike => {
                AnyDistance::Embedding(EmbeddingDistance::new(self.embeddings.clone()))
            }
        }
    }

    // ------------------------------------------------------------------
    // Model training
    // ------------------------------------------------------------------

    /// Popularity baseline.
    pub fn train_pop(&self) -> Pop {
        Pop::fit(&self.dataset)
    }

    /// BPR matrix factorisation.
    pub fn train_bpr(&self) -> BprMf {
        BprMf::fit(
            &self.dataset,
            &BprConfig {
                dim: self.config.dim.min(24),
                epochs: 6,
                seed: self.config.seed,
                ..Default::default()
            },
        )
    }

    /// TransRec.
    pub fn train_transrec(&self) -> TransRec {
        TransRec::fit(
            &self.dataset,
            &TransRecConfig {
                dim: self.config.dim.min(24),
                epochs: 6,
                seed: self.config.seed,
                ..Default::default()
            },
        )
    }

    /// GRU4Rec.
    pub fn train_gru4rec(&self) -> Gru4Rec {
        Gru4Rec::fit(
            &self.split.train,
            self.dataset.num_items,
            &Gru4RecConfig {
                dim: self.config.dim,
                hidden: self.config.dim,
                max_len: self.config.max_len,
                train: self.config.train_cfg(),
            },
        )
    }

    /// Caser.
    pub fn train_caser(&self) -> Caser {
        Caser::fit(
            &self.split.train,
            self.dataset.num_items,
            self.dataset.num_users,
            &CaserConfig {
                dim: self.config.dim,
                l_window: 5,
                heights: vec![2, 3],
                n_h: 8,
                n_v: 4,
                dropout: 0.1,
                train: self.config.train_cfg(),
            },
        )
    }

    /// SASRec.
    pub fn train_sasrec(&self) -> SasRec {
        SasRec::fit(
            &self.split.train,
            self.dataset.num_items,
            &SasRecConfig {
                dim: self.config.dim,
                layers: 2,
                heads: 2,
                max_len: self.config.max_len,
                dropout: 0.1,
                layout: Default::default(),
                train: self.config.train_cfg(),
            },
        )
    }

    /// Bert4Rec (the paper's evaluator).
    pub fn train_bert4rec(&self) -> Bert4Rec {
        Bert4Rec::fit(
            &self.split.train,
            self.dataset.num_items,
            &Bert4RecConfig {
                dim: self.config.dim,
                layers: 2,
                heads: 2,
                max_len: self.config.max_len,
                dropout: 0.1,
                mask_prob: 0.3,
                train: self.config.train_cfg(),
            },
        )
    }

    /// IRN configuration derived from the harness (see
    /// [`HarnessConfig::irn_config`]).
    pub fn irn_config(&self) -> IrnConfig {
        self.config.irn_config()
    }

    /// Train IRN with optional config overrides (item2vec-initialised).
    pub fn train_irn_with(&self, cfg: &IrnConfig) -> Irn {
        Irn::fit(
            &self.split.train,
            &self.split.val,
            self.dataset.num_items,
            self.dataset.num_users,
            cfg,
            Some(&self.embeddings),
        )
    }

    /// Train IRN with the default harness configuration.
    pub fn train_irn(&self) -> Irn {
        self.train_irn_with(&self.irn_config())
    }

    // ------------------------------------------------------------------
    // Path generation
    // ------------------------------------------------------------------

    /// Generate one influence path per evaluated test case.
    ///
    /// All users advance in lockstep through the batched Algorithm 1
    /// ([`generate_influence_paths`]): model-backed recommenders pay one
    /// batched forward per path step instead of one forward per user per
    /// step.  On multi-core hosts the test users are additionally fanned
    /// out over threads (one lockstep batch per thread — trained models
    /// are `Sync`; gradient accumulators sit behind a `Mutex`).
    pub fn generate_paths<R: InfluenceRecommender + Sync + ?Sized>(
        &self,
        rec: &R,
        m: usize,
    ) -> Vec<PathRecord> {
        let (test, objectives) = self.test_slice();
        let requests: Vec<PathRequest<'_>> = test
            .iter()
            .zip(&objectives)
            .map(|(tc, &obj)| PathRequest { user: tc.user, history: &tc.history, objective: obj })
            .collect();
        // Cap the outer fan-out so each worker keeps a lockstep batch of
        // at least MIN_LOCKSTEP_BATCH users — the batched forward (itself
        // thread-parallel for large shapes) is where the throughput comes
        // from, and tiny per-worker batches would forfeit it while
        // oversubscribing cores with nested kernel threads.
        const MIN_LOCKSTEP_BATCH: usize = 16;
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(requests.len().div_ceil(MIN_LOCKSTEP_BATCH));
        let paths: Vec<Vec<ItemId>> = if threads <= 1 || requests.len() < 4 {
            generate_influence_paths(rec, &requests, m)
        } else {
            let chunk = requests.len().div_ceil(threads);
            let mut results: Vec<Vec<Vec<ItemId>>> = Vec::new();
            std::thread::scope(|scope| {
                let mut handles = Vec::new();
                for reqs in requests.chunks(chunk) {
                    handles.push(scope.spawn(move || generate_influence_paths(rec, reqs, m)));
                }
                for h in handles {
                    results.push(h.join().expect("path-generation worker panicked"));
                }
            });
            results.into_iter().flatten().collect()
        };
        test.iter()
            .zip(&objectives)
            .zip(paths)
            .map(|((tc, &obj), path)| PathRecord {
                user: tc.user,
                history: tc.history.clone(),
                objective: obj,
                path,
            })
            .collect()
    }

    /// The item co-occurrence graph built from the *training* sequences.
    pub fn item_graph(&self) -> irs_graph::ItemGraph {
        let train_seqs: Vec<Vec<ItemId>> =
            self.split.train.iter().map(|s| s.items.clone()).collect();
        irs_graph::ItemGraph::from_sequences(self.dataset.num_items, &train_seqs)
    }
}

/// Blanket scorer adapter so `&Harness`-owned models plug into frameworks
/// without cloning (re-exported for binaries).
pub use irs_baselines::rank_of;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_harness_builds_consistently() {
        let h = Harness::build(HarnessConfig::quick(DatasetKind::LastfmLike));
        h.dataset.check_invariants().unwrap();
        let (test, obj) = h.test_slice();
        assert_eq!(test.len(), obj.len());
        assert!(!test.is_empty());
        assert!(h.embeddings.num_items() == h.dataset.num_items);
    }

    #[test]
    fn paths_are_generated_for_every_test_user() {
        let h = Harness::build(HarnessConfig::quick(DatasetKind::MovielensLike));
        let pop = h.train_pop();
        let rec = irs_core::Vanilla::new(&pop);
        let paths = h.generate_paths(&rec, 5);
        let (test, _) = h.test_slice();
        assert_eq!(paths.len(), test.len());
        for p in &paths {
            assert!(p.path.len() <= 5);
        }
    }
}
