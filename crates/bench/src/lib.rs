//! # irs_bench — the experiment harness
//!
//! Regenerates every table and figure of the paper's evaluation section on
//! the synthetic stand-in datasets (see `DESIGN.md` for the substitution
//! rationale and `EXPERIMENTS.md` for recorded results).
//!
//! Each experiment lives in [`experiments`] as a pure function returning a
//! formatted report string; the `src/bin/exp_*.rs` binaries are thin
//! wrappers, and `src/bin/run_all.rs` regenerates the full set.
//!
//! Scale is controlled by [`harness::HarnessConfig`]: `quick()` finishes in
//! seconds (used by integration tests and the current `EXPERIMENTS.md`
//! report), `standard()` is the minutes-scale preset.  The `IRS_SCALE`
//! environment variable multiplies the dataset scale of the standard
//! preset.  Regenerate the report with
//! `cargo run --release -p irs_bench --bin run_all -- --quick --out EXPERIMENTS.md`.

pub mod experiments;
pub mod harness;

/// Render a Markdown-style table: header row + aligned data rows.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::from("|");
        for (c, w) in cells.iter().zip(widths) {
            line.push_str(&format!(" {c:<w$} |"));
        }
        line
    };
    let header_cells: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('\n');
    out.push('|');
    for w in &widths {
        out.push_str(&format!("{}|", "-".repeat(w + 2)));
    }
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Render an ASCII bar chart (one row per labelled value).
pub fn render_bars(title: &str, points: &[(String, f64)], width: usize) -> String {
    let mut out = format!("{title}\n");
    let max = points.iter().map(|&(_, v)| v).fold(f64::MIN_POSITIVE, f64::max);
    let label_w = points.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
    for (label, v) in points {
        let n = ((v / max) * width as f64).round().max(0.0) as usize;
        out.push_str(&format!("{label:>label_w$} | {} {v:.4}\n", "#".repeat(n)));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let t = render_table(
            &["Method", "SR"],
            &[vec!["IRN".into(), "0.25".into()], vec!["Dijkstra".into(), "0.06".into()]],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("Method"));
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    fn bars_scale_to_width() {
        let b = render_bars("t", &[("a".into(), 1.0), ("b".into(), 0.5)], 10);
        assert!(b.contains("##########"));
        assert!(b.contains("#####"));
    }
}
