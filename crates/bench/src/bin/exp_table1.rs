//! Regenerate the paper's table1 on the synthetic stand-in datasets.
//! Pass `--quick` for the seconds-scale preset.

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    println!("{}", irs_bench::experiments::table1::run(!quick));
}
