//! Regenerate the ablation suite (padding, embedding init, decoding,
//! graph weighting).  Pass `--quick` for the seconds-scale preset.

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    println!("{}", irs_bench::experiments::ablations::run(!quick));
}
