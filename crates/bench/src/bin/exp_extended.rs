//! Regenerate the extended analyses (path quality, KG-enhanced Pf2Inf).
//! Pass `--quick` for the seconds-scale preset.

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    println!("{}", irs_bench::experiments::extended::run(!quick));
}
