//! Calibration probe: verify IRN's objective conditioning is learned at
//! the standard preset before committing a full report run.  Trains IRN at
//! two aggressiveness extremes per dataset and prints SR / log(PPL), plus
//! the objective-blind Type-1 control.

use irs_core::{IrnConfig, MaskType};
use irs_eval::{evaluate_paths, Evaluator};

use irs_bench::harness::{DatasetKind, Harness, HarnessConfig};

fn main() {
    for kind in [DatasetKind::LastfmLike, DatasetKind::MovielensLike] {
        let h = Harness::build(HarnessConfig::standard(kind));
        println!(
            "== {} ({} users, {} items, {} train subseqs)",
            h.config.kind.label(),
            h.dataset.num_users,
            h.dataset.num_items,
            h.split.train.len()
        );
        let evaluator = Evaluator::new(h.train_bert4rec());
        for (label, cfg) in [
            ("Type1 wt=0", IrnConfig { mask_type: MaskType::Causal, ..h.irn_config() }),
            ("PIM wt=0.5", IrnConfig { wt: 0.5, ..h.irn_config() }),
            ("PIM wt=1.0", h.irn_config()),
        ] {
            let irn = h.train_irn_with(&cfg);
            let paths = h.generate_paths(&irn, h.config.m);
            let met = evaluate_paths(&evaluator, &paths);
            println!("  {label:<12} {met}");
        }
    }
}
