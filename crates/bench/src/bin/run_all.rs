//! Regenerate every table and figure of the paper in one run.
//!
//! Usage:
//! ```text
//! cargo run --release -p irs_bench --bin run_all [--quick] [--out FILE]
//! ```
//!
//! `--quick` uses the seconds-scale preset; by default the standard preset
//! is used (scale with the `IRS_SCALE` environment variable).  With
//! `--out FILE` the report is also written to a file (used to refresh
//! `EXPERIMENTS.md`).

use std::io::Write;
use std::time::Instant;

/// An experiment entry point: takes the quick-mode flag, returns the
/// rendered report section.
type ExperimentFn = fn(bool) -> String;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let standard = !quick;
    let out_file = args.iter().position(|a| a == "--out").and_then(|i| args.get(i + 1)).cloned();

    let experiments: Vec<(&str, ExperimentFn)> = vec![
        ("Table I", irs_bench::experiments::table1::run),
        ("Table II", irs_bench::experiments::table2::run),
        ("Table III", irs_bench::experiments::table3::run),
        ("Table IV", irs_bench::experiments::table4::run),
        ("Table V", irs_bench::experiments::table5::run),
        ("Table VI", irs_bench::experiments::table6::run),
        ("Table VII", irs_bench::experiments::table7::run),
        ("Figure 6", irs_bench::experiments::fig6::run),
        ("Figure 7", irs_bench::experiments::fig7::run),
        ("Figure 8", irs_bench::experiments::fig8::run),
        ("Figure 9", irs_bench::experiments::fig9::run),
        ("Ablations", irs_bench::experiments::ablations::run),
        ("Extended", irs_bench::experiments::extended::run),
    ];

    let mut report = String::new();
    report.push_str(&format!(
        "# IRS reproduction report ({} preset)\n\n",
        if quick { "quick" } else { "standard" }
    ));
    let total = Instant::now();
    for (name, f) in experiments {
        eprintln!("running {name} ...");
        let t = Instant::now();
        let section = f(standard);
        report.push_str(&section);
        report.push_str(&format!("\n_{name} regenerated in {:.1?}_\n\n", t.elapsed()));
        eprintln!("  done in {:.1?}", t.elapsed());
    }
    report.push_str(&format!("\nTotal wall-clock: {:.1?}\n", total.elapsed()));

    println!("{report}");
    if let Some(path) = out_file {
        let mut f = std::fs::File::create(&path).expect("create output file");
        f.write_all(report.as_bytes()).expect("write report");
        eprintln!("report written to {path}");
    }
}
