//! Regenerate the paper's table3 on the synthetic stand-in datasets.
//! Pass `--quick` for the seconds-scale preset.

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    println!("{}", irs_bench::experiments::table3::run(!quick));
}
