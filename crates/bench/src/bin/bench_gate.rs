//! CI perf-regression gate over the benchmark artifacts.
//!
//! Usage:
//!
//! ```text
//! cargo run -p irs_bench --bin bench_gate -- [--update] [--baseline PATH] \
//!     [--threshold PREFIX=RATIO]... [FRESH...]
//! ```
//!
//! Every positional argument is a fresh-results file (the artifacts the
//! CI bench steps write via `CRITERION_JSON`); they are merged before
//! the diff, so one checked-in baseline can cover several bench targets
//! (currently `inference`, `tensor_ops` and `serving`; `path_generation`
//! and `training` stay out until their CI medians prove stable — their
//! fresh entries are reported as `NEW` without gating).  `FRESH` defaults
//! to `BENCH_inference.json`, the baseline to `tests/bench_baseline.json`.
//! The gate fails (exit 1) when any benchmark's fresh median regresses
//! more than its threshold against the baseline *after host-speed
//! normalisation*; `--update` instead rewrites the baseline from the
//! merged fresh files.
//!
//! `--threshold PREFIX=RATIO` (repeatable) widens the gate for every
//! benchmark whose name starts with `PREFIX` (longest matching prefix
//! wins; the default for unmatched names is [`THRESHOLD`]).  CI passes
//! `--threshold serving/=1.50`: the serving suite replays concurrent
//! sessions through the scheduler, and its 5-sample medians on shared
//! runners move far more than the single-threaded inference/tensor
//! medians, so it rides the gate with a 50% margin instead of 25%.
//!
//! ## Threshold choice
//!
//! Two noise sources dominate, and the gate is sized to both:
//!
//! * **Smoke-mode jitter.** CI runs the bench with `CRITERION_SAMPLES=5`;
//!   5-sample medians on shared runners move ±10–15% run to run, so any
//!   margin below ~20% would flake.
//! * **Host speed.** The baseline is recorded on whatever machine last
//!   ran `--update`, which is not the CI runner.  Absolute nanoseconds
//!   are therefore meaningless across the diff; the gate first divides
//!   every per-benchmark ratio by the suite-wide geometric-mean ratio
//!   (the host-speed factor), leaving only *relative* movement — a
//!   benchmark that got slower than its peers.
//!
//! A normalised regression above 25% is far outside observed jitter and
//! far below the signal of a real regression (losing a batched path is
//! 2–8x), so `1.25` catches the failures worth catching without flaking.

use std::process::ExitCode;

/// Maximum tolerated normalised fresh/baseline median ratio.
const THRESHOLD: f64 = 1.25;

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let update = args.iter().any(|a| a == "--update");
    args.retain(|a| a != "--update");
    let base_path = match args.iter().position(|a| a == "--baseline") {
        Some(at) => {
            if at + 1 >= args.len() {
                eprintln!("bench_gate: --baseline requires a path");
                return ExitCode::FAILURE;
            }
            let path = args[at + 1].clone();
            args.drain(at..=at + 1);
            path
        }
        None => "tests/bench_baseline.json".to_string(),
    };
    let mut suite_thresholds: Vec<(String, f64)> = Vec::new();
    while let Some(at) = args.iter().position(|a| a == "--threshold") {
        if at + 1 >= args.len() {
            eprintln!("bench_gate: --threshold requires PREFIX=RATIO");
            return ExitCode::FAILURE;
        }
        let spec = args[at + 1].clone();
        args.drain(at..=at + 1);
        match parse_threshold_spec(&spec) {
            Some(pair) => suite_thresholds.push(pair),
            None => {
                eprintln!("bench_gate: bad --threshold spec '{spec}' (want PREFIX=RATIO > 1.0)");
                return ExitCode::FAILURE;
            }
        }
    }
    if args.is_empty() {
        if update {
            // The baseline spans several bench targets; a defaulted
            // `--update` would silently shrink it to the inference
            // entries and the gate would stop covering the rest.
            eprintln!(
                "bench_gate: --update requires explicit fresh files so the merged \
                 baseline keeps covering every gated bench target, e.g.\n\
                 bench_gate: --update BENCH_inference.json BENCH_tensor_ops.json"
            );
            return ExitCode::FAILURE;
        }
        args.push("BENCH_inference.json".to_string());
    }

    // Merge all fresh files; duplicate names across files are a config
    // error (each bench target owns its label prefix).
    let mut fresh: Vec<(String, f64)> = Vec::new();
    for path in &args {
        let parsed = match parse_medians(path) {
            Ok(v) => v,
            Err(e) => {
                eprintln!("bench_gate: cannot read fresh results {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        if parsed.is_empty() {
            eprintln!("bench_gate: no benchmarks found in {path}");
            return ExitCode::FAILURE;
        }
        for (name, ns) in parsed {
            if fresh.iter().any(|(n, _)| *n == name) {
                eprintln!("bench_gate: benchmark '{name}' appears in more than one fresh file");
                return ExitCode::FAILURE;
            }
            fresh.push((name, ns));
        }
    }

    if update {
        return match write_medians(&base_path, &fresh) {
            Ok(()) => {
                println!(
                    "bench_gate: baseline {base_path} updated from {} ({} benchmarks)",
                    args.join(", "),
                    fresh.len()
                );
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("bench_gate: failed to update {base_path}: {e}");
                ExitCode::FAILURE
            }
        };
    }
    let base_path = base_path.as_str();

    let baseline = match parse_medians(base_path) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("bench_gate: cannot read baseline {base_path}: {e}");
            eprintln!("bench_gate: record one with `--update` after a bench run");
            return ExitCode::FAILURE;
        }
    };

    // Pair up benchmarks present in both files.
    let mut pairs: Vec<(&str, f64, f64)> = Vec::new();
    let mut missing: Vec<&str> = Vec::new();
    for (name, base_ns) in &baseline {
        match fresh.iter().find(|(n, _)| n == name) {
            Some((_, fresh_ns)) if fresh_ns.is_finite() && *base_ns > 0.0 => {
                pairs.push((name, *base_ns, *fresh_ns));
            }
            _ => missing.push(name),
        }
    }
    for (name, _) in &fresh {
        if !baseline.iter().any(|(n, _)| n == name) {
            println!("bench_gate: NEW  {name} (not in baseline; run --update to track it)");
        }
    }
    if !missing.is_empty() {
        eprintln!("bench_gate: benchmarks missing from fresh results: {missing:?}");
        eprintln!("bench_gate: a renamed or dropped benchmark must be re-baselined (--update)");
        return ExitCode::FAILURE;
    }
    if pairs.is_empty() {
        eprintln!(
            "bench_gate: no comparable benchmarks between {} and {base_path}",
            args.join(", ")
        );
        return ExitCode::FAILURE;
    }

    // Host-speed factor: geometric mean of the fresh/baseline ratios,
    // computed over the default-threshold pairs only — suites granted a
    // widened threshold are noisy by definition, and letting their swing
    // into the mean would eat the tighter suites' margins.  (If every
    // pair has a widened threshold, fall back to all of them.)
    let all_pairs: Vec<&(&str, f64, f64)> = pairs.iter().collect();
    let default_pairs: Vec<&(&str, f64, f64)> = pairs
        .iter()
        .filter(|(name, _, _)| threshold_for(name, &suite_thresholds) == THRESHOLD)
        .collect();
    let host_pairs: &[&(&str, f64, f64)] =
        if default_pairs.is_empty() { &all_pairs } else { &default_pairs };
    let host = (host_pairs.iter().map(|(_, b, f)| (f / b).ln()).sum::<f64>()
        / host_pairs.len() as f64)
        .exp();
    println!(
        "bench_gate: host-speed factor {host:.3} over {} default-threshold benchmarks",
        host_pairs.len()
    );

    let mut failed = false;
    for (name, base_ns, fresh_ns) in &pairs {
        let threshold = threshold_for(name, &suite_thresholds);
        let norm = (fresh_ns / base_ns) / host;
        let verdict = if norm > threshold {
            failed = true;
            "REGRESSED"
        } else {
            "ok"
        };
        println!(
            "bench_gate: {verdict:<9} {name:<42} baseline {:>12.0} ns, fresh {:>12.0} ns, normalised ratio {norm:.2} (max {threshold:.2})",
            base_ns, fresh_ns
        );
    }
    if failed {
        eprintln!(
            "bench_gate: FAILED — at least one benchmark regressed past its threshold after host normalisation"
        );
        ExitCode::FAILURE
    } else {
        println!("bench_gate: all benchmarks within their thresholds (default {THRESHOLD}x)");
        ExitCode::SUCCESS
    }
}

/// Parse a `PREFIX=RATIO` suite-threshold spec.
fn parse_threshold_spec(spec: &str) -> Option<(String, f64)> {
    let (prefix, ratio) = spec.split_once('=')?;
    let ratio: f64 = ratio.trim().parse().ok()?;
    if prefix.is_empty() || !ratio.is_finite() || ratio <= 1.0 {
        return None;
    }
    Some((prefix.to_string(), ratio))
}

/// The threshold for `name`: the longest matching `--threshold` prefix
/// wins, falling back to the suite-wide default.
fn threshold_for(name: &str, suites: &[(String, f64)]) -> f64 {
    suites
        .iter()
        .filter(|(prefix, _)| name.starts_with(prefix.as_str()))
        .max_by_key(|(prefix, _)| prefix.len())
        .map_or(THRESHOLD, |(_, ratio)| *ratio)
}

/// Write medians in the criterion shim's artifact format (the merged
/// baseline `--update` produces).
fn write_medians(path: &str, medians: &[(String, f64)]) -> std::io::Result<()> {
    let mut out = String::from("{\n  \"benchmarks\": [\n");
    for (i, (name, ns)) in medians.iter().enumerate() {
        out.push_str(&format!(
            "    {{ \"name\": \"{name}\", \"median_ns\": {ns:.1} }}{}\n",
            if i + 1 < medians.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    std::fs::write(path, out)
}

/// Parse the criterion shim's JSON artifact: one
/// `{ "name": "...", "median_ns": ... }` object per line.  Hand-rolled
/// because the offline dependency set has no JSON crate — the format is
/// produced by `criterion::write_json_if_requested` and is line-regular
/// by construction.
fn parse_medians(path: &str) -> Result<Vec<(String, f64)>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    let mut out = Vec::new();
    for line in text.lines() {
        let Some(name_at) = line.find("\"name\":") else { continue };
        let rest = &line[name_at + "\"name\":".len()..];
        let Some(open) = rest.find('"') else { continue };
        let Some(close) = rest[open + 1..].find('"') else { continue };
        let name = &rest[open + 1..open + 1 + close];
        let Some(med_at) = line.find("\"median_ns\":") else { continue };
        let num = line[med_at + "\"median_ns\":".len()..]
            .trim_start()
            .trim_end_matches(['}', ',', ' '])
            .trim();
        let ns: f64 = num.parse().map_err(|e| format!("bad median for {name}: {num:?} ({e})"))?;
        out.push((name.to_string(), ns));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::{parse_medians, parse_threshold_spec, threshold_for, write_medians, THRESHOLD};

    #[test]
    fn threshold_specs_parse_and_reject_garbage() {
        assert_eq!(parse_threshold_spec("serving/=1.5"), Some(("serving/".to_string(), 1.5)));
        assert_eq!(parse_threshold_spec("a=2"), Some(("a".to_string(), 2.0)));
        assert_eq!(parse_threshold_spec("=1.5"), None, "empty prefix");
        assert_eq!(parse_threshold_spec("a=0.9"), None, "a threshold below 1 always fails");
        assert_eq!(parse_threshold_spec("a=nope"), None);
        assert_eq!(parse_threshold_spec("noequals"), None);
    }

    #[test]
    fn longest_matching_prefix_wins() {
        let suites = vec![("serving/".to_string(), 1.5), ("serving/micro".to_string(), 2.0)];
        assert_eq!(threshold_for("serving/scalar_b1_32sessions", &suites), 1.5);
        assert_eq!(threshold_for("serving/microbatch_16_32sessions", &suites), 2.0);
        assert_eq!(threshold_for("irn/score_next_batch_16", &suites), THRESHOLD);
    }

    #[test]
    fn write_then_parse_round_trips() {
        let dir = std::env::temp_dir().join("bench_gate_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("merged.json");
        let medians = vec![
            ("irn/score_next_batch_16".to_string(), 504866.0),
            ("matmul/64".to_string(), 12345.5),
        ];
        write_medians(path.to_str().unwrap(), &medians).unwrap();
        let parsed = parse_medians(path.to_str().unwrap()).unwrap();
        assert_eq!(parsed, medians);
    }

    #[test]
    fn parses_shim_artifact_format() {
        let dir = std::env::temp_dir().join("bench_gate_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sample.json");
        std::fs::write(
            &path,
            "{\n  \"benchmarks\": [\n    { \"name\": \"irn/a\", \"median_ns\": 120.5 },\n    { \"name\": \"irn/b\", \"median_ns\": 99 }\n  ]\n}\n",
        )
        .unwrap();
        let parsed = parse_medians(path.to_str().unwrap()).unwrap();
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].0, "irn/a");
        assert!((parsed[0].1 - 120.5).abs() < 1e-9);
        assert_eq!(parsed[1].0, "irn/b");
    }
}
