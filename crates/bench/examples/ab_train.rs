//! Interleaved A/B probe for transformer training-step throughput.
//!
//! Prints one line per model family: the median *steady-state* per-epoch
//! wall-clock nanoseconds over `REPS` measurements on the same fixed
//! workload as the `training` bench (8 minibatches × batch 16, dim 32,
//! T 16).  Each measurement times a 1-epoch and a 5-epoch `fit` and
//! reports `(t_5 − t_1) / 4`: the difference cancels the model-init and
//! batch-building cost common to both engines *and* the first
//! (recording) epoch, leaving exactly the steady-state training step —
//! the thing the record-once/replay-per-minibatch tape optimises.  The
//! A/B driver builds this example in two worktrees (this tree and the
//! pre-PR-5 baseline, which carries an API-adapted copy), runs the
//! binaries alternately ≥12 times each, and takes the median of the
//! per-pair old/new ratios so host-speed drift cancels out of the
//! comparison.  Output format: `<family> <median_ns>`.

use irs_baselines::{Bert4Rec, Bert4RecConfig, NeuralTrainConfig, SasRec, SasRecConfig};
use irs_core::{Irn, IrnConfig};
use irs_data::split::SubSeq;
use std::hint::black_box;
use std::time::Instant;

const REPS: usize = 5;

fn seqs() -> Vec<SubSeq> {
    (0..128)
        .map(|s| SubSeq {
            user: s % 32,
            items: (0..16).map(|k| (s * 7 + k * (1 + s % 3)) % 64).collect(),
        })
        .collect()
}

fn train_cfg(epochs: usize) -> NeuralTrainConfig {
    NeuralTrainConfig { epochs, batch_size: 16, lr: 1e-3, clip: 5.0, seed: 0x7ea1, verbose: false }
}

/// Median of `REPS` steady-state per-epoch times for one `fit` entry
/// point: each rep times `fit(1 epoch)` and `fit(5 epochs)` and scores
/// `(t_5 − t_1) / 4`.
fn steady_state_ns(mut fit: impl FnMut(usize) -> u128) -> u128 {
    let mut times: Vec<u128> = (0..REPS)
        .map(|_| {
            let t1 = fit(1);
            let t5 = fit(5);
            t5.saturating_sub(t1) / 4
        })
        .collect();
    times.sort_unstable();
    times[times.len() / 2]
}

fn main() {
    let data = seqs();

    let sasrec = steady_state_ns(|epochs| {
        let cfg = SasRecConfig {
            dim: 32,
            layers: 2,
            heads: 2,
            max_len: 16,
            dropout: 0.1,
            layout: Default::default(),
            train: train_cfg(epochs),
        };
        let t0 = Instant::now();
        black_box(SasRec::fit(&data, 64, &cfg));
        t0.elapsed().as_nanos()
    });
    println!("sasrec {sasrec}");

    let bert = steady_state_ns(|epochs| {
        let cfg = Bert4RecConfig {
            dim: 32,
            layers: 2,
            heads: 2,
            max_len: 16,
            dropout: 0.1,
            mask_prob: 0.3,
            train: train_cfg(epochs),
        };
        let t0 = Instant::now();
        black_box(Bert4Rec::fit(&data, 64, &cfg));
        t0.elapsed().as_nanos()
    });
    println!("bert4rec {bert}");

    let irn = steady_state_ns(|epochs| {
        let cfg = IrnConfig {
            dim: 32,
            user_dim: 8,
            layers: 2,
            heads: 2,
            max_len: 16,
            dropout: 0.1,
            wt: 1.0,
            mask_type: irs_core::MaskType::ObjectivePersonalized,
            padding: irs_data::split::PaddingScheme::Pre,
            layout: irs_core::EncodingLayout::PrePadded,
            train: train_cfg(epochs),
        };
        let t0 = Instant::now();
        black_box(Irn::fit(&data, &[], 64, 32, &cfg, None));
        t0.elapsed().as_nanos()
    });
    println!("irn {irn}");
}
