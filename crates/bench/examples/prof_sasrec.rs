//! Scratch profiling driver for the training engine (run under
//! `gprofng collect app`); mirrors the `training/sasrec_epoch` bench.
use irs_baselines::{NeuralTrainConfig, SasRec, SasRecConfig};
use irs_data::split::SubSeq;

fn main() {
    let data: Vec<SubSeq> = (0..128)
        .map(|s| SubSeq {
            user: s % 32,
            items: (0..16).map(|k| (s * 7 + k * (1 + s % 3)) % 64).collect(),
        })
        .collect();
    let cfg = SasRecConfig {
        dim: 32,
        layers: 2,
        heads: 2,
        max_len: 16,
        dropout: 0.1,
        layout: Default::default(),
        train: NeuralTrainConfig {
            epochs: 60,
            batch_size: 16,
            lr: 1e-3,
            clip: 5.0,
            seed: 1,
            verbose: false,
        },
    };
    let m = SasRec::fit(&data, 64, &cfg);
    std::hint::black_box(m);
}
