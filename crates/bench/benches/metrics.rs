//! Benchmark the full IRS metric pipeline (Eq. 11–14) on a batch of paths
//! — this is what each Table III row costs.

use criterion::{criterion_group, criterion_main, Criterion};
use irs_bench::harness::{DatasetKind, Harness, HarnessConfig};
use irs_core::Vanilla;
use irs_eval::{evaluate_paths, next_item_metrics, stepwise_evolution, Evaluator};
use std::hint::black_box;

fn bench_metrics(c: &mut Criterion) {
    let h = Harness::build(HarnessConfig::quick(DatasetKind::LastfmLike));
    let (test, _) = h.test_slice();
    let pop = h.train_pop();
    let evaluator = Evaluator::new(h.train_bert4rec());
    let paths = h.generate_paths(&Vanilla::new(&pop), h.config.m);

    let mut group = c.benchmark_group("metrics");
    group.sample_size(10);
    group.bench_function("evaluate_paths", |b| {
        b.iter(|| black_box(evaluate_paths(&evaluator, &paths)))
    });
    group.bench_function("stepwise_evolution", |b| {
        b.iter(|| black_box(stepwise_evolution(&evaluator, &paths, 5, true)))
    });
    group.bench_function("next_item_metrics_pop", |b| {
        b.iter(|| black_box(next_item_metrics(&pop, &test, 20)))
    });
    group.finish();
}

criterion_group!(benches, bench_metrics);
criterion_main!(benches);
