//! Benchmark the Pf2Inf substrate: item-graph construction, Dijkstra and
//! MST path extraction at realistic catalogue sizes.

use criterion::{criterion_group, criterion_main, Criterion};
use irs_data::synth::{generate, SynthConfig};
use irs_graph::{dijkstra_path, ItemGraph, MstPaths};
use std::hint::black_box;

fn bench_graph(c: &mut Criterion) {
    let out = generate(&SynthConfig::lastfm_like(0.2));
    let d = &out.dataset;

    let mut group = c.benchmark_group("graph");
    group.sample_size(20);
    group.bench_function("build_item_graph", |b| {
        b.iter(|| black_box(ItemGraph::from_sequences(d.num_items, &d.sequences)))
    });

    let graph = ItemGraph::from_sequences(d.num_items, &d.sequences);
    let target = d.num_items - 1;
    group.bench_function("dijkstra", |b| b.iter(|| black_box(dijkstra_path(&graph, 0, target))));
    group.bench_function("mst_build", |b| b.iter(|| black_box(MstPaths::build(&graph))));

    let mst = MstPaths::build(&graph);
    group.bench_function("mst_tree_path", |b| b.iter(|| black_box(mst.tree_path(0, target))));
    group.finish();
}

criterion_group!(benches, bench_graph);
criterion_main!(benches);
