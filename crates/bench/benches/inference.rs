//! Batched vs scalar inference throughput — the headline measurement of
//! the batched inference engine.
//!
//! `irn/score_next_scalar_x16` runs 16 independent scalar forwards (the
//! pre-batching hot path of every experiment table: one forward per user
//! per path step); `irn/score_next_batch_16` answers the same 16 queries
//! in one `[16, T]` forward.  The ratio of the two medians is printed as
//! `speedup`, and `IRS_BENCH_ASSERT=1` turns the ≥3× acceptance threshold
//! into a hard failure for local verification.
//!
//! CI runs this in smoke mode (`CRITERION_SAMPLES` capped) with
//! `CRITERION_JSON=BENCH_inference.json` so the perf trajectory
//! accumulates as a build artifact.

use criterion::{criterion_group, criterion_main, Criterion};
use irs_baselines::SequentialScorer;
use irs_bench::harness::{DatasetKind, Harness, HarnessConfig};
use irs_data::ItemId;
use std::hint::black_box;

const BATCH: usize = 16;

fn bench_irn_inference(c: &mut Criterion) {
    let h = Harness::build(HarnessConfig::quick(DatasetKind::LastfmLike));
    // Timing is weight-independent; one epoch keeps setup short.
    let mut cfg = h.irn_config();
    cfg.train.epochs = 1;
    let irn = h.train_irn_with(&cfg);

    let (test, objectives) = h.test_slice();
    assert!(test.len() >= BATCH, "quick preset must provide ≥{BATCH} test users");
    let users: Vec<usize> = test[..BATCH].iter().map(|tc| tc.user).collect();
    let contexts: Vec<&[ItemId]> = test[..BATCH].iter().map(|tc| tc.history.as_slice()).collect();
    let objs: Vec<ItemId> = objectives[..BATCH].to_vec();

    let mut group = c.benchmark_group("irn");
    group.sample_size(10);
    group.bench_function(format!("score_next_scalar_x{BATCH}"), |b| {
        b.iter(|| {
            for i in 0..BATCH {
                black_box(irn.score_next(users[i], contexts[i], objs[i]));
            }
        })
    });
    group.bench_function(format!("score_next_batch_{BATCH}"), |b| {
        b.iter(|| black_box(irn.score_next_batch(&users, &contexts, &objs)))
    });
    group.finish();

    report_speedup(
        &format!("irn/score_next_scalar_x{BATCH}"),
        &format!("irn/score_next_batch_{BATCH}"),
        3.0,
    );
}

/// Scalar-x16 vs batch-16 for one evaluator/baseline model.
fn bench_scorer<S: SequentialScorer>(
    c: &mut Criterion,
    name: &str,
    scorer: &S,
    users: &[usize],
    contexts: &[&[ItemId]],
    min_speedup: f64,
) {
    let mut group = c.benchmark_group(name);
    group.sample_size(10);
    group.bench_function(format!("score_scalar_x{BATCH}"), |b| {
        b.iter(|| {
            for i in 0..BATCH {
                black_box(scorer.score(users[i], contexts[i]));
            }
        })
    });
    group.bench_function(format!("score_batch_{BATCH}"), |b| {
        b.iter(|| black_box(scorer.score_batch(users, contexts)))
    });
    group.finish();

    report_speedup(
        &format!("{name}/score_scalar_x{BATCH}"),
        &format!("{name}/score_batch_{BATCH}"),
        min_speedup,
    );
}

fn bench_evaluator_inference(c: &mut Criterion) {
    let h = Harness::build(HarnessConfig::quick(DatasetKind::LastfmLike));
    let (test, _) = h.test_slice();
    let users: Vec<usize> = test[..BATCH].iter().map(|tc| tc.user).collect();
    let contexts: Vec<&[ItemId]> = test[..BATCH].iter().map(|tc| tc.history.as_slice()).collect();

    // Transformer family: batched tape-free engine vs scalar graph path.
    let bert = h.train_bert4rec();
    bench_scorer(c, "bert4rec", &bert, &users, &contexts, 3.0);
    // RNN family: fused-gate tape-free recurrence vs scalar graph path.
    let gru = h.train_gru4rec();
    bench_scorer(c, "gru4rec", &gru, &users, &contexts, 1.5);
    // CNN family: value-level convolutional pass vs scalar graph path.
    let caser = h.train_caser();
    bench_scorer(c, "caser", &caser, &users, &contexts, 1.5);
}

/// Print (and optionally assert) the scalar/batched throughput ratio from
/// the recorded medians.
fn report_speedup(scalar_label: &str, batched_label: &str, min_speedup: f64) {
    let results = criterion::recorded_results();
    let find = |label: &str| {
        results.iter().find(|(l, _)| l == label).map(|&(_, ns)| ns).unwrap_or(f64::NAN)
    };
    let scalar = find(scalar_label);
    let batched = find(batched_label);
    let speedup = scalar / batched;
    println!("bench: {batched_label:<40} speedup {speedup:.2}x over scalar");
    if std::env::var("IRS_BENCH_ASSERT").as_deref() == Ok("1") {
        assert!(
            speedup >= min_speedup,
            "batched inference must be ≥{min_speedup}x scalar at batch {BATCH}, got {speedup:.2}x"
        );
    }
}

criterion_group!(benches, bench_irn_inference, bench_evaluator_inference);
criterion_main!(benches);
