//! Micro-benchmarks for the tensor substrate: the kernels that dominate
//! IRN training time (matmul, batched matmul, softmax, full attention
//! forward/backward).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use irs_nn::{causal_mask, AttnBias, FwdCtx, MultiHeadAttention, ParamStore};
use irs_tensor::{matmul_into_packed, matmul_into_plain, Graph, Tensor};
use rand::SeedableRng;
use std::hint::black_box;

fn bench_matmul(c: &mut Criterion) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let mut group = c.benchmark_group("matmul");
    for &n in &[32usize, 64, 128] {
        let a = Tensor::randn(&[n, n], 1.0, &mut rng);
        let b = Tensor::randn(&[n, n], 1.0, &mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bch, _| {
            bch.iter(|| black_box(a.matmul(&b)));
        });
    }
    group.finish();
}

/// Packed-B vs plain kernel head-to-head on the shapes the inference
/// engine actually hits: fused GRU gate matmuls ([T·B, D] @ [D, 3H]) and
/// output projections ([B, D] @ [D, vocab]).
fn bench_matmul_packed(c: &mut Criterion) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    let mut group = c.benchmark_group("matmul_kernel");
    for &(label, m, k, n) in &[
        ("gru_gates_384x32x96", 384usize, 32usize, 96usize),
        ("out_proj_16x32x512", 16, 32, 512),
        ("wide_64x256x512", 64, 256, 512),
        ("wide_128x512x512", 128, 512, 512),
    ] {
        let a = Tensor::randn(&[m, k], 1.0, &mut rng);
        let b = Tensor::randn(&[k, n], 1.0, &mut rng);
        let mut out = vec![0.0f32; m * n];
        group.bench_function(format!("plain_{label}"), |bch| {
            bch.iter(|| {
                out.iter_mut().for_each(|v| *v = 0.0);
                matmul_into_plain(a.data(), b.data(), &mut out, m, k, n);
                black_box(out[0])
            });
        });
        group.bench_function(format!("packed_{label}"), |bch| {
            bch.iter(|| {
                out.iter_mut().for_each(|v| *v = 0.0);
                matmul_into_packed(a.data(), b.data(), &mut out, m, k, n);
                black_box(out[0])
            });
        });
    }
    group.finish();
}

fn bench_bmm(c: &mut Criterion) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(2);
    let a = Tensor::randn(&[16, 24, 32], 1.0, &mut rng);
    let b = Tensor::randn(&[16, 32, 24], 1.0, &mut rng);
    c.bench_function("bmm_16x24x32", |bch| bch.iter(|| black_box(a.bmm(&b))));
}

fn bench_softmax(c: &mut Criterion) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    let x = Tensor::randn(&[64, 512], 1.0, &mut rng);
    c.bench_function("softmax_64x512", |bch| bch.iter(|| black_box(x.softmax_last())));
}

fn bench_attention_fwd_bwd(c: &mut Criterion) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(4);
    let mut store = ParamStore::new();
    let mha = MultiHeadAttention::new(&mut store, "a", 32, 2, 0.0, &mut rng);
    let input = Tensor::randn(&[8, 20, 32], 1.0, &mut rng);
    let mask = causal_mask(20);
    c.bench_function("attention_fwd_bwd_8x20x32", |bch| {
        bch.iter(|| {
            let g = Graph::new();
            let ctx = FwdCtx::new(&g, &store, true, 0);
            let x = g.constant(input.clone());
            let y = mha.forward(&ctx, x, &AttnBias::Base(mask.clone()));
            let loss = y.mul(y).mean_all();
            store.zero_grad();
            ctx.backprop(loss);
            black_box(loss.item())
        });
    });
}

/// Metadata-only views vs the materialising paths they replaced: layout
/// changes (transpose / reshape / head split+merge) as pure
/// `(shape, strides, offset)` rewrites against the same buffer, next to
/// the explicit copies the pre-view engine paid for the same result.
/// The `attn_bwd_nt_*` pair isolates the transpose-staging elimination:
/// an attention-score NT matmul (forward + backward) over head-split
/// *copies* (dense operands → the kernel stages a transpose into
/// scratch) vs head-split *views* (strided layout consumed directly).
fn bench_view_ops(c: &mut Criterion) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(6);
    let mut group = c.benchmark_group("view_ops");

    // Transpose: O(1) metadata rewrite vs O(mn) copy.
    let a = Tensor::randn(&[256, 256], 1.0, &mut rng);
    group.bench_function("transpose_view_256x256", |bch| {
        bch.iter(|| black_box(a.transpose2d_view()));
    });
    group.bench_function("transpose_copy_256x256", |bch| {
        bch.iter(|| black_box(a.transpose2d()));
    });

    // Reshape: zero-copy buffer share vs the old clone-into-new-shape.
    let x = Tensor::randn(&[8, 64, 32], 1.0, &mut rng);
    group.bench_function("reshape_view_8x64x32", |bch| {
        bch.iter(|| black_box(x.reshaped(&[512, 32])));
    });
    group.bench_function("reshape_copy_8x64x32", |bch| {
        bch.iter(|| black_box(Tensor::from_vec(x.data().to_vec(), &[512, 32])));
    });

    // Head split [B, T, D] -> [B*H, T, dk]: strided view vs materialised
    // copy (`contiguous()` walks exactly the gather the old op ran).
    let h = 4usize;
    group.bench_function("split_heads_view_8x64x32h4", |bch| {
        bch.iter(|| black_box(x.split_heads_view(h)));
    });
    group.bench_function("split_heads_copy_8x64x32h4", |bch| {
        bch.iter(|| black_box(x.split_heads_view(h).contiguous()));
    });

    // Attention-score NT (fwd + bwd) with and without transpose staging.
    // Both paths produce bitwise-identical values and gradients (the
    // property suites pin this); only the layout plumbing differs.
    let (b, t, d, heads) = (8usize, 20usize, 32usize, 2usize);
    let input = Tensor::randn(&[b, t, d], 1.0, &mut rng);
    let run_nt = |split_view: bool| {
        let g = Graph::new();
        let v = g.var(input.clone(), true);
        let (q, k) = if split_view {
            (v.split_heads_view(heads), v.split_heads_view(heads))
        } else {
            (v.split_heads(heads), v.split_heads(heads))
        };
        let loss = q.bmm_nt(k).sum_all();
        g.backward(loss);
        loss.item()
    };
    group.bench_function("attn_bwd_nt_staged_8x20x32h2", |bch| {
        bch.iter(|| black_box(run_nt(false)));
    });
    group.bench_function("attn_bwd_nt_direct_8x20x32h2", |bch| {
        bch.iter(|| black_box(run_nt(true)));
    });

    // Head merge after attention: fused view-consuming bmm+merge vs the
    // copying bmm-then-merge_heads pipeline.
    let run_merge = |fused: bool| {
        let g = Graph::new();
        let xv = g.var(input.clone(), true);
        let attn = g.constant(Tensor::randn(
            &[b * heads, t, t],
            1.0,
            &mut rand::rngs::StdRng::seed_from_u64(7),
        ));
        let out = if fused {
            attn.attn_bmm_merge(xv.split_heads_view(heads), heads)
        } else {
            attn.bmm(xv.split_heads(heads)).merge_heads(heads)
        };
        let loss = out.sum_all();
        g.backward(loss);
        loss.item()
    };
    group.bench_function("head_merge_copy_8x20x32h2", |bch| {
        bch.iter(|| black_box(run_merge(false)));
    });
    group.bench_function("head_merge_fused_8x20x32h2", |bch| {
        bch.iter(|| black_box(run_merge(true)));
    });

    group.finish();
}

criterion_group!(
    benches,
    bench_matmul,
    bench_matmul_packed,
    bench_bmm,
    bench_softmax,
    bench_attention_fwd_bwd,
    bench_view_ops
);
criterion_main!(benches);
