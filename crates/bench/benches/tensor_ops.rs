//! Micro-benchmarks for the tensor substrate: the kernels that dominate
//! IRN training time (matmul, batched matmul, softmax, full attention
//! forward/backward).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use irs_nn::{causal_mask, AttnBias, FwdCtx, MultiHeadAttention, ParamStore};
use irs_tensor::{matmul_into_packed, matmul_into_plain, Graph, Tensor};
use rand::SeedableRng;
use std::hint::black_box;

fn bench_matmul(c: &mut Criterion) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let mut group = c.benchmark_group("matmul");
    for &n in &[32usize, 64, 128] {
        let a = Tensor::randn(&[n, n], 1.0, &mut rng);
        let b = Tensor::randn(&[n, n], 1.0, &mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bch, _| {
            bch.iter(|| black_box(a.matmul(&b)));
        });
    }
    group.finish();
}

/// Packed-B vs plain kernel head-to-head on the shapes the inference
/// engine actually hits: fused GRU gate matmuls ([T·B, D] @ [D, 3H]) and
/// output projections ([B, D] @ [D, vocab]).
fn bench_matmul_packed(c: &mut Criterion) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    let mut group = c.benchmark_group("matmul_kernel");
    for &(label, m, k, n) in &[
        ("gru_gates_384x32x96", 384usize, 32usize, 96usize),
        ("out_proj_16x32x512", 16, 32, 512),
        ("wide_64x256x512", 64, 256, 512),
        ("wide_128x512x512", 128, 512, 512),
    ] {
        let a = Tensor::randn(&[m, k], 1.0, &mut rng);
        let b = Tensor::randn(&[k, n], 1.0, &mut rng);
        let mut out = vec![0.0f32; m * n];
        group.bench_function(format!("plain_{label}"), |bch| {
            bch.iter(|| {
                out.iter_mut().for_each(|v| *v = 0.0);
                matmul_into_plain(a.data(), b.data(), &mut out, m, k, n);
                black_box(out[0])
            });
        });
        group.bench_function(format!("packed_{label}"), |bch| {
            bch.iter(|| {
                out.iter_mut().for_each(|v| *v = 0.0);
                matmul_into_packed(a.data(), b.data(), &mut out, m, k, n);
                black_box(out[0])
            });
        });
    }
    group.finish();
}

fn bench_bmm(c: &mut Criterion) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(2);
    let a = Tensor::randn(&[16, 24, 32], 1.0, &mut rng);
    let b = Tensor::randn(&[16, 32, 24], 1.0, &mut rng);
    c.bench_function("bmm_16x24x32", |bch| bch.iter(|| black_box(a.bmm(&b))));
}

fn bench_softmax(c: &mut Criterion) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    let x = Tensor::randn(&[64, 512], 1.0, &mut rng);
    c.bench_function("softmax_64x512", |bch| bch.iter(|| black_box(x.softmax_last())));
}

fn bench_attention_fwd_bwd(c: &mut Criterion) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(4);
    let mut store = ParamStore::new();
    let mha = MultiHeadAttention::new(&mut store, "a", 32, 2, 0.0, &mut rng);
    let input = Tensor::randn(&[8, 20, 32], 1.0, &mut rng);
    let mask = causal_mask(20);
    c.bench_function("attention_fwd_bwd_8x20x32", |bch| {
        bch.iter(|| {
            let g = Graph::new();
            let ctx = FwdCtx::new(&g, &store, true, 0);
            let x = g.constant(input.clone());
            let y = mha.forward(&ctx, x, &AttnBias::Base(mask.clone()));
            let loss = y.mul(y).mean_all();
            store.zero_grad();
            ctx.backprop(loss);
            black_box(loss.item())
        });
    });
}

criterion_group!(
    benches,
    bench_matmul,
    bench_matmul_packed,
    bench_bmm,
    bench_softmax,
    bench_attention_fwd_bwd
);
criterion_main!(benches);
