//! Serving-subsystem throughput: concurrent interactive sessions driven
//! through the `irs_serve` micro-batching engine vs the batch-size-1
//! configuration (per-session scalar `next_item` calls).
//!
//! One iteration replays a fixed script of concurrent sessions (passive
//! user, every proposal accepted) to completion; the ratio of the two
//! medians is the serving speedup `serve_load --compare` demonstrates at
//! load-test scale.  CI runs this in smoke mode with
//! `CRITERION_JSON=BENCH_serving.json` so the serving-perf trajectory
//! accumulates as a build artifact next to the inference bench.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use irs_bench::harness::{DatasetKind, Harness, HarnessConfig};
use irs_core::{EncodingLayout, InteractiveSession, Irn, IrnConfig, NeuralTrainConfig};
use irs_data::split::{split_dataset, SplitConfig};
use irs_data::synth::{generate, SynthConfig};
use irs_data::ItemId;
use irs_serve::{
    BatchPolicy, Engine, FeedbackEvent, HttpServer, IrnOnlineLearner, JsonValue, ModelSnapshot,
    OnlineConfig, OnlineHandle, OnlineLearner, ServerConfig, SnapshotRegistry,
};
use std::hint::black_box;

const SESSIONS: usize = 32;
const STEPS: usize = 3;

struct Script {
    user: usize,
    history: Vec<ItemId>,
    objective: ItemId,
}

/// Drive every script to completion; `engine` chooses scheduled vs
/// scalar scoring.  Returns total proposals (consumed by `black_box`).
fn replay(
    scripts: &[Script],
    registry: &Arc<SnapshotRegistry>,
    engine: Option<&Arc<Engine>>,
) -> usize {
    let snapshot = registry.current();
    std::thread::scope(|scope| {
        let handles: Vec<_> = scripts
            .iter()
            .map(|script| {
                let engine = engine.cloned();
                let snapshot = &snapshot;
                scope.spawn(move || {
                    let mut session = InteractiveSession::new(
                        script.user,
                        script.history.clone(),
                        script.objective,
                        STEPS,
                        2,
                    );
                    let mut proposals = 0usize;
                    while !session.is_done() {
                        let answer = match &engine {
                            Some(engine) => engine.propose(&session),
                            None => {
                                let q = session.query();
                                snapshot.model.next_item(q.user, q.history, q.objective, q.path)
                            }
                        };
                        proposals += 1;
                        match answer {
                            Some(item) => session.record(item, true),
                            None => session.record_give_up(),
                        }
                    }
                    proposals
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("session thread")).sum()
    })
}

/// Minimal HTTP/1.1 client for the socket-level benches.  `keep_alive:
/// false` reconnects for every request (`Connection: close`) — the v1
/// thread-per-socket cost model; `keep_alive: true` reuses one
/// connection for the client's whole traffic, exercising the v2
/// keep-alive pool's warm path.
struct HttpConn {
    addr: SocketAddr,
    keep_alive: bool,
    stream: Option<TcpStream>,
    buf: Vec<u8>,
}

impl HttpConn {
    fn new(addr: SocketAddr, keep_alive: bool) -> Self {
        HttpConn { addr, keep_alive, stream: None, buf: Vec::new() }
    }

    fn request(&mut self, method: &str, path: &str, body: &str) -> JsonValue {
        let mut stream = self.stream.take().unwrap_or_else(|| {
            let s = TcpStream::connect(self.addr).expect("connect");
            s.set_nodelay(true).expect("nodelay");
            s
        });
        let connection = if self.keep_alive { "keep-alive" } else { "close" };
        write!(
            stream,
            "{method} {path} HTTP/1.1\r\nHost: bench\r\nContent-Length: {}\r\n\
             Connection: {connection}\r\n\r\n{body}",
            body.len()
        )
        .expect("write request");
        self.buf.clear();
        let mut chunk = [0u8; 4096];
        let head_end = loop {
            if let Some(pos) = self.buf.windows(4).position(|w| w == b"\r\n\r\n") {
                break pos + 4;
            }
            let n = stream.read(&mut chunk).expect("read head");
            assert!(n > 0, "server closed before the response head completed");
            self.buf.extend_from_slice(&chunk[..n]);
        };
        let head = std::str::from_utf8(&self.buf[..head_end]).expect("response head");
        assert!(head.starts_with("HTTP/1.1 200"), "request failed: {head:?}");
        let content_length: usize = head
            .lines()
            .find_map(|line| {
                let (name, value) = line.split_once(':')?;
                name.trim().eq_ignore_ascii_case("content-length").then(|| value.trim())
            })
            .and_then(|v| v.parse().ok())
            .expect("Content-Length");
        while self.buf.len() < head_end + content_length {
            let n = stream.read(&mut chunk).expect("read body");
            assert!(n > 0, "server closed mid-body");
            self.buf.extend_from_slice(&chunk[..n]);
        }
        let payload = std::str::from_utf8(&self.buf[head_end..head_end + content_length])
            .expect("response body");
        let value = JsonValue::parse(payload).expect("response JSON");
        if self.keep_alive {
            self.stream = Some(stream);
        }
        value
    }
}

/// Drive every script to completion over real sockets, one client
/// thread per script.  Returns total requests issued.
fn http_replay(addr: SocketAddr, scripts: &[Script], keep_alive: bool) -> usize {
    std::thread::scope(|scope| {
        let handles: Vec<_> = scripts
            .iter()
            .map(|script| {
                scope.spawn(move || {
                    let mut conn = HttpConn::new(addr, keep_alive);
                    let history: Vec<String> =
                        script.history.iter().map(ToString::to_string).collect();
                    let body = format!(
                        "{{\"user\": {}, \"history\": [{}], \"objective\": {}}}",
                        script.user,
                        history.join(","),
                        script.objective
                    );
                    let mut requests = 1usize;
                    let created = conn.request("POST", "/v1/session", &body);
                    let sid = created
                        .get("session_id")
                        .and_then(JsonValue::as_usize)
                        .expect("session id");
                    loop {
                        let next = conn.request("POST", &format!("/v1/session/{sid}/next"), "");
                        requests += 1;
                        if next.get("done").and_then(JsonValue::as_bool) == Some(true) {
                            break;
                        }
                        let item = next.get("item").and_then(JsonValue::as_usize).expect("item");
                        let fb = conn.request(
                            "POST",
                            &format!("/v1/session/{sid}/feedback"),
                            &format!("{{\"item\": {item}, \"accepted\": true}}"),
                        );
                        requests += 1;
                        if fb.get("done").and_then(JsonValue::as_bool) == Some(true) {
                            break;
                        }
                    }
                    conn.request("DELETE", &format!("/v1/session/{sid}"), "");
                    requests + 1
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client thread")).sum()
    })
}

fn bench_serving(c: &mut Criterion) {
    let h = Harness::build(HarnessConfig::quick(DatasetKind::MovielensLike));
    // Timing is weight-independent; one epoch keeps setup short.
    let mut cfg = h.irn_config();
    cfg.train.epochs = 1;
    let irn = h.train_irn_with(&cfg);
    let (test, objectives) = h.test_slice();
    let scripts: Vec<Script> = (0..SESSIONS)
        .map(|s| {
            let tc = &test[s % test.len()];
            Script {
                user: tc.user,
                history: tc.history.clone(),
                objective: objectives[s % objectives.len()],
            }
        })
        .collect();
    let registry = Arc::new(SnapshotRegistry::new(ModelSnapshot::in_memory_with_catalogue(
        "bench",
        Box::new(irn),
        h.dataset.num_items,
    )));

    let mut group = c.benchmark_group("serving");
    group.sample_size(10);
    group.bench_function(format!("scalar_b1_{SESSIONS}sessions"), |b| {
        b.iter(|| black_box(replay(&scripts, &registry, None)))
    });
    // The engine persists across iterations (a server outlives requests);
    // each iteration replays the same concurrent session mix through it.
    let engine = Arc::new(Engine::start(
        registry.clone(),
        BatchPolicy {
            max_batch: 16,
            max_wait: Duration::from_micros(500),
            workers: 2,
            queue_capacity: 256,
        },
    ));
    group.bench_function(format!("microbatch_16_{SESSIONS}sessions"), |b| {
        b.iter(|| black_box(replay(&scripts, &registry, Some(&engine))))
    });

    // The same traffic over real sockets: close-per-request vs one
    // keep-alive connection per client, both through the v2 worker
    // pool.  The ratio is the connection-reuse win `serve_load
    // --keep-alive` demonstrates at load-test scale.
    let server = HttpServer::bind(
        "127.0.0.1:0",
        engine.clone(),
        None,
        ServerConfig { max_len: STEPS, patience: 2, ..Default::default() },
    )
    .expect("bind HTTP frontend");
    let addr = server.local_addr().expect("local addr");
    let server_thread = std::thread::spawn(move || server.run());
    group.bench_function(format!("http_close_{SESSIONS}sessions"), |b| {
        b.iter(|| black_box(http_replay(addr, &scripts, false)))
    });
    group.bench_function(format!("http_keepalive_{SESSIONS}sessions"), |b| {
        b.iter(|| black_box(http_replay(addr, &scripts, true)))
    });
    group.finish();
    HttpConn::new(addr, false).request("POST", "/v1/admin/shutdown", "");
    server_thread.join().expect("server thread").expect("server run");
    engine.shutdown();

    let results = criterion::recorded_results();
    let median = |name: &str| -> Option<f64> {
        results.iter().find(|(n, _)| n.contains(name)).map(|(_, ns)| *ns)
    };
    if let (Some(scalar), Some(batched)) = (median("scalar_b1"), median("microbatch_16")) {
        let speedup = scalar / batched;
        println!(
            "serving speedup at {SESSIONS} concurrent sessions: {speedup:.2}x \
             (micro-batched over batch-size-1)"
        );
        if std::env::var("IRS_BENCH_ASSERT").as_deref() == Ok("1") {
            assert!(
                speedup >= 2.0,
                "micro-batched serving speedup {speedup:.2}x below the 2x acceptance threshold"
            );
        }
    }
    if let (Some(close), Some(keep)) = (median("http_close"), median("http_keepalive")) {
        println!(
            "keep-alive win at {SESSIONS} concurrent HTTP clients: {:.2}x \
             (connection reuse over close-per-request)",
            close / keep
        );
    }
}

/// Session lengths for the long-session latency sweep.
const LONG_SESSION_LENGTHS: [usize; 3] = [8, 64, 256];

/// Per-step serve latency as a session grows: the incremental
/// per-session cache vs the cold full re-encode, at context lengths 8,
/// 64 and 256.
///
/// `cached_step_T{len}` measures the steady-state *hit*: the parked
/// cache's stored prefix already covers the append window, so a step is
/// prefix validation plus the output projection — no re-encoding.  (The
/// append-a-token variant adds one `infer_append_row`; the hit is the
/// dominant shape because every repeated `next` without feedback replays
/// the same context.)  `cold_step_T{len}` is what the same step cost
/// before the cache existed: a full `O(len)`-token re-encode with
/// `O(len²)` attention.  The cached curve must stay ~flat in `len`
/// (that is the O(1)-step claim) while the cold curve grows
/// quadratically, which is the win the `--context-cache-mb` budget buys
/// at serve time.
fn bench_long_session(c: &mut Criterion) {
    // Timing is weight-independent; a tiny synthetic catalogue with one
    // training epoch keeps setup short.  `max_len` must cover the
    // longest context plus the objective slot, otherwise the append
    // window slides mid-measurement and every step degrades to a
    // bounded replay instead of a hit.
    let dataset = generate(&SynthConfig::tiny(0x10f6)).dataset;
    let split = split_dataset(&dataset, &SplitConfig::small());
    let n = dataset.num_items;
    let max = LONG_SESSION_LENGTHS[LONG_SESSION_LENGTHS.len() - 1];
    let config = IrnConfig {
        dim: 16,
        user_dim: 4,
        layers: 1,
        heads: 2,
        max_len: max + 4,
        layout: EncodingLayout::AppendOnly,
        train: NeuralTrainConfig { epochs: 1, ..Default::default() },
        ..Default::default()
    };
    let irn = Irn::fit(&split.train, &[], n, dataset.num_users, &config, None);
    let user = 3usize;
    let objective = 7usize;
    let session: Vec<ItemId> = (0..max).map(|i| (i * 7 + 1) % n).collect();

    let mut group = c.benchmark_group("long_session");
    group.sample_size(10);
    for &len in &LONG_SESSION_LENGTHS {
        let ctx = &session[..len];
        let mut cache = irn.new_append_cache();
        // Prime outside the timing loop, then pin that the measured
        // calls really take the hit path.
        irn.score_next_cached(user, ctx, objective, &mut cache);
        let (_, hit) = irn.score_next_cached(user, ctx, objective, &mut cache);
        assert!(hit, "primed cache must hit at T{len}");
        group.bench_function(format!("cached_step_T{len}"), |b| {
            b.iter(|| black_box(irn.score_next_cached(user, black_box(ctx), objective, &mut cache)))
        });
        group.bench_function(format!("cold_step_T{len}"), |b| {
            b.iter(|| black_box(irn.score_next(user, black_box(ctx), objective)))
        });
    }
    group.finish();

    let results = criterion::recorded_results();
    let median = |name: &str| -> Option<f64> {
        results.iter().find(|(n, _)| n.contains(name)).map(|(_, ns)| *ns)
    };
    for &len in &LONG_SESSION_LENGTHS {
        if let (Some(cached), Some(cold)) =
            (median(&format!("cached_step_T{len}")), median(&format!("cold_step_T{len}")))
        {
            println!(
                "long-session step at T{len}: cached {cached:.0} ns, cold {cold:.0} ns \
                 ({:.2}x cold over cached)",
                cold / cached
            );
        }
    }
    if let (Some(c8), Some(c256), Some(cold256)) =
        (median("cached_step_T8"), median("cached_step_T256"), median("cold_step_T256"))
    {
        let flatness = c256 / c8;
        let win = cold256 / c256;
        println!(
            "long-session cached-step flatness T256/T8: {flatness:.2}x; \
             cold-over-cached at T256: {win:.2}x"
        );
        if std::env::var("IRS_SERVE_ASSERT").as_deref() == Ok("1") {
            assert!(
                flatness <= 1.5,
                "cached step latency must stay ~flat in session length: \
                 T256/T8 {flatness:.2}x exceeds 1.5x"
            );
            assert!(
                win >= 2.0,
                "cold re-encode must cost at least 2x a cached step at T256: got {win:.2}x"
            );
        }
    }
}

/// Cost model of the online-learning loop: how much trainer work one
/// batch of feedback buys (`fold_64_events`), what a canary publish
/// costs end to end — serialize the student to IRSP, reload it as a
/// fresh serving snapshot (`publish_snapshot`) — and the full
/// replay → fold → publish round-trip through the trainer thread's
/// ticket protocol (`force_publish_e2e`).  All of it runs off the
/// request path (the trainer owns a cloned student), so these numbers
/// bound *publish cadence*, not serve latency.
fn bench_online_loop(c: &mut Criterion) {
    let dataset = generate(&SynthConfig::tiny(0x0011)).dataset;
    let split = split_dataset(&dataset, &SplitConfig::small());
    let n = dataset.num_items;
    let config = IrnConfig {
        dim: 16,
        user_dim: 4,
        layers: 1,
        heads: 2,
        max_len: 12,
        train: NeuralTrainConfig { epochs: 1, ..Default::default() },
        ..Default::default()
    };
    let irn = Irn::fit(&split.train, &[], n, dataset.num_users, &config, None);
    // The trainer owns its own student copies (IRSP round-trip — the
    // same path `irs serve --online-train` boots the student through).
    let mut bytes = Vec::new();
    irn.save(&mut bytes).expect("serialize student");
    let reload = |bytes: &[u8]| Irn::load(bytes, n, dataset.num_users, &config).expect("reload");

    // A replay batch of accepted feedback shaped like live traffic:
    // short contexts, one accepted item each.
    let events: Vec<FeedbackEvent> = (0..64)
        .map(|i| {
            let tc = &split.test[i % split.test.len()];
            FeedbackEvent {
                user: tc.user,
                context: tc.history.clone(),
                item: (tc.history.last().copied().unwrap_or(0) + 1) % n,
                accepted: true,
            }
        })
        .collect();

    let mut group = c.benchmark_group("online_loop");
    group.sample_size(10);
    let mut learner = IrnOnlineLearner::new(reload(&bytes));
    group.bench_function("fold_64_events", |b| {
        b.iter(|| black_box(learner.fold(black_box(&events))))
    });
    group.bench_function("publish_snapshot", |b| {
        b.iter(|| black_box(learner.publish().expect("publish")))
    });

    // The full loop: push a replay batch, ring the trainer, wait for
    // the canary snapshot to land on arm 1.
    let student = reload(&bytes);
    let registry = Arc::new(SnapshotRegistry::new(ModelSnapshot::in_memory_with_catalogue(
        "bench",
        Box::new(irn),
        n,
    )));
    let handle = OnlineHandle::start(
        registry,
        OnlineConfig { publish_every: Duration::from_secs(3600), replay_cap: 1024 },
        move || Box::new(IrnOnlineLearner::new(student)) as Box<dyn OnlineLearner>,
    );
    group.bench_function("force_publish_e2e", |b| {
        b.iter(|| {
            for e in &events {
                handle.replay().push(e.clone());
            }
            black_box(handle.force_publish(Duration::from_secs(60)).expect("force publish"))
        })
    });
    group.finish();
    handle.stop();

    let results = criterion::recorded_results();
    let median = |name: &str| -> Option<f64> {
        results.iter().find(|(n, _)| n.contains(name)).map(|(_, ns)| *ns)
    };
    if let (Some(fold), Some(publish), Some(e2e)) =
        (median("fold_64_events"), median("publish_snapshot"), median("force_publish_e2e"))
    {
        println!(
            "online loop: fold 64 events {:.0} µs, publish {:.0} µs, e2e round-trip {:.0} µs",
            fold / 1e3,
            publish / 1e3,
            e2e / 1e3
        );
    }
}

criterion_group!(benches, bench_serving, bench_long_session, bench_online_loop);
criterion_main!(benches);
