//! Serving-subsystem throughput: concurrent interactive sessions driven
//! through the `irs_serve` micro-batching engine vs the batch-size-1
//! configuration (per-session scalar `next_item` calls).
//!
//! One iteration replays a fixed script of concurrent sessions (passive
//! user, every proposal accepted) to completion; the ratio of the two
//! medians is the serving speedup `serve_load --compare` demonstrates at
//! load-test scale.  CI runs this in smoke mode with
//! `CRITERION_JSON=BENCH_serving.json` so the serving-perf trajectory
//! accumulates as a build artifact next to the inference bench.

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use irs_bench::harness::{DatasetKind, Harness, HarnessConfig};
use irs_core::InteractiveSession;
use irs_data::ItemId;
use irs_serve::{BatchPolicy, Engine, ModelSnapshot, SnapshotRegistry};
use std::hint::black_box;

const SESSIONS: usize = 32;
const STEPS: usize = 3;

struct Script {
    user: usize,
    history: Vec<ItemId>,
    objective: ItemId,
}

/// Drive every script to completion; `engine` chooses scheduled vs
/// scalar scoring.  Returns total proposals (consumed by `black_box`).
fn replay(
    scripts: &[Script],
    registry: &Arc<SnapshotRegistry>,
    engine: Option<&Arc<Engine>>,
) -> usize {
    let snapshot = registry.current();
    std::thread::scope(|scope| {
        let handles: Vec<_> = scripts
            .iter()
            .map(|script| {
                let engine = engine.cloned();
                let snapshot = &snapshot;
                scope.spawn(move || {
                    let mut session = InteractiveSession::new(
                        script.user,
                        script.history.clone(),
                        script.objective,
                        STEPS,
                        2,
                    );
                    let mut proposals = 0usize;
                    while !session.is_done() {
                        let answer = match &engine {
                            Some(engine) => engine.propose(&session),
                            None => {
                                let q = session.query();
                                snapshot.model.next_item(q.user, q.history, q.objective, q.path)
                            }
                        };
                        proposals += 1;
                        match answer {
                            Some(item) => session.record(item, true),
                            None => session.record_give_up(),
                        }
                    }
                    proposals
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("session thread")).sum()
    })
}

fn bench_serving(c: &mut Criterion) {
    let h = Harness::build(HarnessConfig::quick(DatasetKind::MovielensLike));
    // Timing is weight-independent; one epoch keeps setup short.
    let mut cfg = h.irn_config();
    cfg.train.epochs = 1;
    let irn = h.train_irn_with(&cfg);
    let (test, objectives) = h.test_slice();
    let scripts: Vec<Script> = (0..SESSIONS)
        .map(|s| {
            let tc = &test[s % test.len()];
            Script {
                user: tc.user,
                history: tc.history.clone(),
                objective: objectives[s % objectives.len()],
            }
        })
        .collect();
    let registry = Arc::new(SnapshotRegistry::new(ModelSnapshot::in_memory_with_catalogue(
        "bench",
        Box::new(irn),
        h.dataset.num_items,
    )));

    let mut group = c.benchmark_group("serving");
    group.sample_size(10);
    group.bench_function(format!("scalar_b1_{SESSIONS}sessions"), |b| {
        b.iter(|| black_box(replay(&scripts, &registry, None)))
    });
    // The engine persists across iterations (a server outlives requests);
    // each iteration replays the same concurrent session mix through it.
    let engine = Arc::new(Engine::start(
        registry.clone(),
        BatchPolicy {
            max_batch: 16,
            max_wait: Duration::from_micros(500),
            workers: 2,
            queue_capacity: 256,
        },
    ));
    group.bench_function(format!("microbatch_16_{SESSIONS}sessions"), |b| {
        b.iter(|| black_box(replay(&scripts, &registry, Some(&engine))))
    });
    group.finish();
    engine.shutdown();

    let results = criterion::recorded_results();
    let median = |name: &str| -> Option<f64> {
        results.iter().find(|(n, _)| n.contains(name)).map(|(_, ns)| *ns)
    };
    if let (Some(scalar), Some(batched)) = (median("scalar_b1"), median("microbatch_16")) {
        let speedup = scalar / batched;
        println!(
            "serving speedup at {SESSIONS} concurrent sessions: {speedup:.2}x \
             (micro-batched over batch-size-1)"
        );
        if std::env::var("IRS_BENCH_ASSERT").as_deref() == Ok("1") {
            assert!(
                speedup >= 2.0,
                "micro-batched serving speedup {speedup:.2}x below the 2x acceptance threshold"
            );
        }
    }
}

criterion_group!(benches, bench_serving);
criterion_main!(benches);
