//! Benchmark full quick-scale training for each neural model — the cost
//! driver behind every table.

use criterion::{criterion_group, criterion_main, Criterion};
use irs_bench::harness::{DatasetKind, Harness, HarnessConfig};
use std::hint::black_box;

fn bench_model_training(c: &mut Criterion) {
    let h = Harness::build(HarnessConfig::quick(DatasetKind::LastfmLike));
    let mut group = c.benchmark_group("train_quick");
    group.sample_size(10);
    group.bench_function("irn", |b| b.iter(|| black_box(h.train_irn())));
    group.bench_function("sasrec", |b| b.iter(|| black_box(h.train_sasrec())));
    group.bench_function("gru4rec", |b| b.iter(|| black_box(h.train_gru4rec())));
    group.bench_function("caser", |b| b.iter(|| black_box(h.train_caser())));
    group.bench_function("bert4rec", |b| b.iter(|| black_box(h.train_bert4rec())));
    group.bench_function("bpr", |b| b.iter(|| black_box(h.train_bpr())));
    group.finish();
}

criterion_group!(benches, bench_model_training);
criterion_main!(benches);
