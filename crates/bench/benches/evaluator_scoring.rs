//! Benchmark evaluator probability queries `P(i | s)` — the inner loop of
//! every IRS metric (IoI, IoR, log-PPL, Fig. 9 curves).

use criterion::{criterion_group, criterion_main, Criterion};
use irs_bench::harness::{DatasetKind, Harness, HarnessConfig};
use irs_eval::Evaluator;
use std::hint::black_box;

fn bench_evaluator(c: &mut Criterion) {
    let h = Harness::build(HarnessConfig::quick(DatasetKind::LastfmLike));
    let (test, objectives) = h.test_slice();
    let tc = &test[0];
    let obj = objectives[0];
    let evaluator = Evaluator::new(h.train_bert4rec());

    let mut group = c.benchmark_group("evaluator");
    group.sample_size(30);
    group.bench_function("log_prob", |b| {
        b.iter(|| black_box(evaluator.log_prob(tc.user, &tc.history, obj)))
    });
    group.bench_function("rank", |b| {
        b.iter(|| black_box(evaluator.rank(tc.user, &tc.history, obj)))
    });
    group.finish();
}

criterion_group!(benches, bench_evaluator);
criterion_main!(benches);
