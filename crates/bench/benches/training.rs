//! Training-step throughput per model family.
//!
//! Each benchmark runs one full training epoch — a fixed 8 minibatches of
//! 16 sequences — through `fit` on a deterministic synthetic workload, so
//! the reported median is 8× the per-family step time (model construction
//! is amortised into the measurement but is a small, fixed cost next to
//! the forward/backward/update work).  CI runs this in smoke mode with
//! `CRITERION_JSON=BENCH_training.json`; the artifact tracks the
//! training-engine perf trajectory across commits (graph reuse, backward
//! kernel routing).

use criterion::{criterion_group, criterion_main, Criterion};
use irs_baselines::{
    Bert4Rec, Bert4RecConfig, Caser, CaserConfig, Gru4Rec, Gru4RecConfig, NeuralTrainConfig,
    SasRec, SasRecConfig,
};
use irs_core::{Irn, IrnConfig};
use irs_data::split::SubSeq;
use std::hint::black_box;

const NUM_ITEMS: usize = 64;
const NUM_USERS: usize = 32;
const NUM_SEQS: usize = 128;
const SEQ_LEN: usize = 16;
const MAX_LEN: usize = 16;
const DIM: usize = 32;

/// Deterministic training corpus: interleaved item cycles with per-user
/// offsets — enough structure that the losses move, fixed so every run
/// (and every commit) trains on identical batches.
fn seqs() -> Vec<SubSeq> {
    (0..NUM_SEQS)
        .map(|s| SubSeq {
            user: s % NUM_USERS,
            items: (0..SEQ_LEN).map(|k| (s * 7 + k * (1 + s % 3)) % NUM_ITEMS).collect(),
        })
        .collect()
}

fn train_cfg() -> NeuralTrainConfig {
    NeuralTrainConfig {
        epochs: 1,
        batch_size: 16,
        lr: 1e-3,
        clip: 5.0,
        seed: 0x7ea1,
        verbose: false,
    }
}

fn bench_training(c: &mut Criterion) {
    let data = seqs();
    let mut group = c.benchmark_group("training");
    group.sample_size(10);

    group.bench_function("sasrec_epoch", |b| {
        let cfg = SasRecConfig {
            dim: DIM,
            layers: 2,
            heads: 2,
            max_len: MAX_LEN,
            dropout: 0.1,
            layout: Default::default(),
            train: train_cfg(),
        };
        b.iter(|| black_box(SasRec::fit(&data, NUM_ITEMS, &cfg)))
    });

    group.bench_function("sasrec_epoch_nodrop", |b| {
        let cfg = SasRecConfig {
            dim: DIM,
            layers: 2,
            heads: 2,
            max_len: MAX_LEN,
            dropout: 0.0,
            layout: Default::default(),
            train: train_cfg(),
        };
        b.iter(|| black_box(SasRec::fit(&data, NUM_ITEMS, &cfg)))
    });

    group.bench_function("bert4rec_epoch", |b| {
        let cfg = Bert4RecConfig {
            dim: DIM,
            layers: 2,
            heads: 2,
            max_len: MAX_LEN,
            dropout: 0.1,
            mask_prob: 0.3,
            train: train_cfg(),
        };
        b.iter(|| black_box(Bert4Rec::fit(&data, NUM_ITEMS, &cfg)))
    });

    group.bench_function("gru4rec_epoch", |b| {
        let cfg = Gru4RecConfig { dim: DIM, hidden: DIM, max_len: MAX_LEN, train: train_cfg() };
        b.iter(|| black_box(Gru4Rec::fit(&data, NUM_ITEMS, &cfg)))
    });

    group.bench_function("caser_epoch", |b| {
        let cfg = CaserConfig {
            dim: DIM,
            l_window: 5,
            heights: vec![2, 3],
            n_h: 8,
            n_v: 4,
            dropout: 0.1,
            train: train_cfg(),
        };
        b.iter(|| black_box(Caser::fit(&data, NUM_ITEMS, NUM_USERS, &cfg)))
    });

    group.bench_function("irn_epoch", |b| {
        let cfg = IrnConfig {
            dim: DIM,
            user_dim: 8,
            layers: 2,
            heads: 2,
            max_len: MAX_LEN,
            dropout: 0.1,
            wt: 1.0,
            mask_type: irs_core::MaskType::ObjectivePersonalized,
            padding: irs_data::split::PaddingScheme::Pre,
            layout: irs_core::EncodingLayout::PrePadded,
            train: train_cfg(),
        };
        b.iter(|| black_box(Irn::fit(&data, &[], NUM_ITEMS, NUM_USERS, &cfg, None)))
    });

    group.finish();
}

criterion_group!(benches, bench_training);
criterion_main!(benches);
