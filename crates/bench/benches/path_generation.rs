//! Benchmark influence-path generation (Algorithm 1) for each framework —
//! the serving-time cost of the system.

use criterion::{criterion_group, criterion_main, Criterion};
use irs_bench::harness::{DatasetKind, Harness, HarnessConfig};
use irs_core::{generate_influence_path, PathAlgorithm, Pf2Inf, Rec2Inf, Vanilla};
use std::hint::black_box;

fn bench_path_generation(c: &mut Criterion) {
    let h = Harness::build(HarnessConfig::quick(DatasetKind::LastfmLike));
    let (test, objectives) = h.test_slice();
    let tc = &test[0];
    let obj = objectives[0];
    let m = h.config.m;

    let pop = h.train_pop();
    let dist = h.distance();
    let irn = h.train_irn();
    let sasrec = h.train_sasrec();
    let graph = h.item_graph();

    let mut group = c.benchmark_group("path_generation");
    group.sample_size(20);
    let dij = Pf2Inf::new(graph, PathAlgorithm::Dijkstra);
    group.bench_function("pf2inf_dijkstra", |b| {
        b.iter(|| black_box(generate_influence_path(&dij, tc.user, &tc.history, obj, m)))
    });
    let vanilla = Vanilla::new(&pop);
    group.bench_function("vanilla_pop", |b| {
        b.iter(|| black_box(generate_influence_path(&vanilla, tc.user, &tc.history, obj, m)))
    });
    let rec2inf = Rec2Inf::new(&pop, &dist, 10);
    group.bench_function("rec2inf_pop", |b| {
        b.iter(|| black_box(generate_influence_path(&rec2inf, tc.user, &tc.history, obj, m)))
    });
    let rec2inf_neural = Rec2Inf::new(&sasrec, &dist, 10);
    group.bench_function("rec2inf_sasrec", |b| {
        b.iter(|| black_box(generate_influence_path(&rec2inf_neural, tc.user, &tc.history, obj, m)))
    });
    group.bench_function("irn", |b| {
        b.iter(|| black_box(generate_influence_path(&irn, tc.user, &tc.history, obj, m)))
    });
    group.finish();
}

criterion_group!(benches, bench_path_generation);
criterion_main!(benches);
