//! Fully connected layers and the transformer feed-forward block.

use irs_tensor::{Tensor, Var};

use crate::params::{xavier_uniform, FwdCtx, ParamId, ParamStore};
use crate::Activation;

/// An affine layer `y = x W + b`.
#[derive(Debug, Clone)]
pub struct Linear {
    w: ParamId,
    b: Option<ParamId>,
    in_dim: usize,
    out_dim: usize,
}

impl Linear {
    /// Register a new layer in `store`.
    pub fn new<R: rand::Rng + ?Sized>(
        store: &mut ParamStore,
        name: &str,
        in_dim: usize,
        out_dim: usize,
        bias: bool,
        rng: &mut R,
    ) -> Self {
        let w = store.add(format!("{name}.w"), xavier_uniform(in_dim, out_dim, rng));
        let b = bias.then(|| store.add(format!("{name}.b"), Tensor::zeros(&[out_dim])));
        Linear { w, b, in_dim, out_dim }
    }

    /// Input feature dimension.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output feature dimension.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// The weight parameter id (for weight tying, e.g. output projections
    /// that share the item-embedding table).
    pub fn weight_id(&self) -> ParamId {
        self.w
    }

    /// The bias parameter id, when the layer has one (used by fused
    /// inference paths that pack several layers' parameters together).
    pub fn bias_id(&self) -> Option<ParamId> {
        self.b
    }

    /// Apply to a 2-D input `[n, in] -> [n, out]` — one fused affine tape
    /// node (matmul + bias), bitwise equal to the historical
    /// matmul-then-add_bias pair.
    pub fn forward2d<'g>(&self, ctx: &FwdCtx<'g, '_>, x: Var<'g>) -> Var<'g> {
        let shape = x.shape();
        assert_eq!(shape.len(), 2, "forward2d expects 2-D input, got {shape:?}");
        assert_eq!(shape[1], self.in_dim, "input dim {} != layer in_dim {}", shape[1], self.in_dim);
        x.affine(ctx.param(self.w), self.b.map(|b| ctx.param(b)))
    }

    /// Apply to a 3-D input `[b, t, in] -> [b, t, out]` — one fused affine
    /// tape node (the historical reshape → matmul → reshape → add_bias
    /// chain, minus its two full-tensor copies).
    pub fn forward3d<'g>(&self, ctx: &FwdCtx<'g, '_>, x: Var<'g>) -> Var<'g> {
        let shape = x.shape();
        assert_eq!(shape.len(), 3, "forward3d expects 3-D input, got {shape:?}");
        assert_eq!(shape[2], self.in_dim, "input dim {} != layer in_dim {}", shape[2], self.in_dim);
        x.affine(ctx.param(self.w), self.b.map(|b| ctx.param(b)))
    }

    /// Tape-free apply: the last axis is the feature axis, all leading
    /// axes are flattened through the shared matmul kernel — identical
    /// arithmetic to `forward2d`/`forward3d` on the same rows.
    pub fn infer(&self, store: &ParamStore, x: &Tensor) -> Tensor {
        let shape = x.shape();
        let in_dim = *shape.last().expect("Linear::infer on 0-d tensor");
        assert_eq!(in_dim, self.in_dim, "input dim {in_dim} != layer in_dim {}", self.in_dim);
        let rows = x.len() / in_dim;
        let w = store.value(self.w);
        let mut out = vec![0.0f32; rows * self.out_dim];
        irs_tensor::matmul_into(x.data(), w.data(), &mut out, rows, in_dim, self.out_dim);
        if let Some(b) = self.b {
            let bias = store.value(b);
            for row in out.chunks_mut(self.out_dim) {
                for (o, &bb) in row.iter_mut().zip(bias.data()) {
                    *o += bb;
                }
            }
        }
        let mut out_shape = shape.to_vec();
        *out_shape.last_mut().expect("non-empty shape") = self.out_dim;
        Tensor::from_vec(out, &out_shape)
    }
}

/// Position-wise feed-forward block: `Linear -> activation -> Linear`,
/// with dropout after the activation (as in the Transformer).
#[derive(Debug, Clone)]
pub struct FeedForward {
    fc1: Linear,
    fc2: Linear,
    activation: Activation,
    dropout: f32,
}

impl FeedForward {
    /// Register a feed-forward block expanding `d` to `hidden` and back.
    pub fn new<R: rand::Rng + ?Sized>(
        store: &mut ParamStore,
        name: &str,
        d: usize,
        hidden: usize,
        activation: Activation,
        dropout: f32,
        rng: &mut R,
    ) -> Self {
        FeedForward {
            fc1: Linear::new(store, &format!("{name}.fc1"), d, hidden, true, rng),
            fc2: Linear::new(store, &format!("{name}.fc2"), hidden, d, true, rng),
            activation,
            dropout,
        }
    }

    /// Apply to `[b, t, d]`.
    pub fn forward<'g>(&self, ctx: &FwdCtx<'g, '_>, x: Var<'g>) -> Var<'g> {
        let h = self.activation.apply(self.fc1.forward3d(ctx, x));
        let h = ctx.dropout(h, self.dropout);
        self.fc2.forward3d(ctx, h)
    }

    /// Tape-free eval-mode apply (dropout is the identity).
    pub fn infer(&self, store: &ParamStore, x: &Tensor) -> Tensor {
        let mut h = self.fc1.infer(store, x);
        self.activation.apply_in_place(&mut h);
        self.fc2.infer(store, &h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Adam, Optimizer};
    use irs_tensor::Graph;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(11)
    }

    #[test]
    fn linear_shapes() {
        let mut store = ParamStore::new();
        let l = Linear::new(&mut store, "l", 4, 3, true, &mut rng());
        let g = Graph::new();
        let ctx = FwdCtx::new(&g, &store, false, 0);
        let x2 = g.constant(Tensor::ones(&[5, 4]));
        assert_eq!(l.forward2d(&ctx, x2).shape(), vec![5, 3]);
        let x3 = g.constant(Tensor::ones(&[2, 5, 4]));
        assert_eq!(l.forward3d(&ctx, x3).shape(), vec![2, 5, 3]);
    }

    #[test]
    fn linear_without_bias_is_pure_matmul() {
        let mut store = ParamStore::new();
        let l = Linear::new(&mut store, "l", 3, 2, false, &mut rng());
        let g = Graph::new();
        let ctx = FwdCtx::new(&g, &store, false, 0);
        let x = g.constant(Tensor::zeros(&[4, 3]));
        let y = l.forward2d(&ctx, x);
        assert!(y.value().data().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn linear_regression_converges() {
        // Fit y = 2x₀ − x₁ + 0.5 with Adam; sanity-checks the whole
        // param/ctx/optimizer loop.
        let mut r = rng();
        let mut store = ParamStore::new();
        let l = Linear::new(&mut store, "l", 2, 1, true, &mut r);
        let mut opt = Adam::new(5e-2);

        let xs = Tensor::randn(&[64, 2], 1.0, &mut r);
        let ys: Vec<f32> = xs.data().chunks(2).map(|p| 2.0 * p[0] - p[1] + 0.5).collect();
        let y_t = Tensor::from_vec(ys, &[64, 1]);

        let mut last = f32::INFINITY;
        for step in 0..300 {
            let g = Graph::new();
            let ctx = FwdCtx::new(&g, &store, true, step);
            let x = g.constant(xs.clone());
            let y = g.constant(y_t.clone());
            let pred = l.forward2d(&ctx, x);
            let diff = pred.sub(y);
            let loss = diff.mul(diff).mean_all();
            last = loss.item();
            store.zero_grad();
            ctx.backprop(loss);
            drop(ctx);
            opt.step(&mut store);
        }
        assert!(last < 1e-3, "regression did not converge: {last}");
    }

    #[test]
    fn feed_forward_preserves_shape() {
        let mut store = ParamStore::new();
        let ff = FeedForward::new(&mut store, "ff", 6, 12, Activation::Gelu, 0.1, &mut rng());
        let g = Graph::new();
        let ctx = FwdCtx::new(&g, &store, false, 0);
        let x = g.constant(Tensor::randn(&[2, 3, 6], 1.0, &mut rng()));
        assert_eq!(ff.forward(&ctx, x).shape(), vec![2, 3, 6]);
    }
}
