//! Trainable-parameter storage and per-forward-pass graph binding.

use std::cell::RefCell;
use std::collections::HashMap;

use parking_lot::Mutex;

use irs_tensor::{Graph, Tensor, Var};
use rand::SeedableRng;

/// Identifier of a parameter inside a [`ParamStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ParamId(usize);

/// Storage for named trainable parameters and their gradient accumulators.
///
/// Values are updated by optimizers (`&mut` access); gradients live behind a
/// `Mutex` so a [`FwdCtx`] can deposit them while the store is otherwise
/// shared immutably — which also makes trained models `Sync`, so influence
/// paths for different users can be generated on parallel threads.
#[derive(Default)]
pub struct ParamStore {
    names: Vec<String>,
    values: Vec<Tensor>,
    grads: Mutex<Vec<Tensor>>,
}

impl ParamStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a parameter; the name is used for debugging and summaries.
    pub fn add(&mut self, name: impl Into<String>, value: Tensor) -> ParamId {
        let id = self.values.len();
        self.grads.get_mut().push(Tensor::zeros(value.shape()));
        self.values.push(value);
        self.names.push(name.into());
        ParamId(id)
    }

    /// Number of registered parameter tensors.
    pub fn num_tensors(&self) -> usize {
        self.values.len()
    }

    /// Total number of scalar parameters.
    pub fn num_scalars(&self) -> usize {
        self.values.iter().map(Tensor::len).sum()
    }

    /// Immutable access to a parameter value.
    pub fn value(&self, id: ParamId) -> &Tensor {
        &self.values[id.0]
    }

    /// Mutable access to a parameter value (optimizers, manual updates).
    pub fn value_mut(&mut self, id: ParamId) -> &mut Tensor {
        &mut self.values[id.0]
    }

    /// Name of a parameter.
    pub fn name(&self, id: ParamId) -> &str {
        &self.names[id.0]
    }

    /// Clone of the accumulated gradient of a parameter.
    pub fn grad(&self, id: ParamId) -> Tensor {
        self.grads.lock()[id.0].clone()
    }

    /// Add `delta` into a parameter's gradient accumulator.
    pub fn accumulate_grad(&self, id: ParamId, delta: &Tensor) {
        self.grads.lock()[id.0].add_assign(delta);
    }

    /// Reset every gradient accumulator to zero.
    pub fn zero_grad(&self) {
        for g in self.grads.lock().iter_mut() {
            g.zero_();
        }
    }

    /// Iterate over `(id, name)` pairs.
    pub fn ids(&self) -> impl Iterator<Item = ParamId> + '_ {
        (0..self.values.len()).map(ParamId)
    }

    /// Run `f` over every `(value, grad)` pair mutably — optimizer hook.
    pub(crate) fn for_each_mut(&mut self, mut f: impl FnMut(usize, &mut Tensor, &Tensor)) {
        let grads = self.grads.lock();
        for (i, v) in self.values.iter_mut().enumerate() {
            f(i, v, &grads[i]);
        }
    }

    /// Global L2 norm of all gradients.
    pub fn grad_norm(&self) -> f32 {
        self.grads.lock().iter().map(Tensor::sq_norm).sum::<f32>().sqrt()
    }

    /// Scale every gradient by `c` (used by gradient clipping).
    pub fn scale_grads(&self, c: f32) {
        for g in self.grads.lock().iter_mut() {
            for x in g.data_mut() {
                *x *= c;
            }
        }
    }
}

/// Forward-pass context: binds [`ParamStore`] parameters into a graph
/// (each parameter becomes one leaf `Var`, shared across uses), carries the
/// training flag and a dropout RNG, and collects parameter gradients after
/// `backward`.
pub struct FwdCtx<'g, 's> {
    /// The tape for this forward pass.
    pub graph: &'g Graph,
    /// The parameter store being bound.
    pub store: &'s ParamStore,
    /// Whether dropout & co. are active.
    pub training: bool,
    bound: RefCell<HashMap<ParamId, Var<'g>>>,
    rng: RefCell<rand::rngs::StdRng>,
}

impl<'g, 's> FwdCtx<'g, 's> {
    /// Create a context; `seed` drives dropout masks (vary it per step).
    pub fn new(graph: &'g Graph, store: &'s ParamStore, training: bool, seed: u64) -> Self {
        FwdCtx {
            graph,
            store,
            training,
            bound: RefCell::new(HashMap::new()),
            rng: RefCell::new(rand::rngs::StdRng::seed_from_u64(seed)),
        }
    }

    /// Bind a parameter into the graph (cached: repeated calls return the
    /// same `Var`, so gradient contributions accumulate correctly).  The
    /// binding copies the parameter into a pooled graph buffer, so a reset
    /// graph re-binds without allocating.
    pub fn param(&self, id: ParamId) -> Var<'g> {
        if let Some(v) = self.bound.borrow().get(&id) {
            return *v;
        }
        let v = self.graph.var_from(self.store.value(id), true);
        self.bound.borrow_mut().insert(id, v);
        v
    }

    /// Apply inverted dropout using the context RNG when training.
    pub fn dropout(&self, x: Var<'g>, p: f32) -> Var<'g> {
        x.dropout(p, self.training, &mut *self.rng.borrow_mut())
    }

    /// Run `graph.backward(loss)` and deposit parameter gradients into the
    /// store's accumulators (borrowed straight off the tape, no clones).
    pub fn backprop(&self, loss: Var<'g>) {
        self.graph.backward(loss);
        for (&id, &var) in self.bound.borrow().iter() {
            self.graph.with_grad(var, |g| self.store.accumulate_grad(id, g));
        }
    }
}

// ---------------------------------------------------------------------
// Initialisation helpers
// ---------------------------------------------------------------------

/// Xavier/Glorot uniform initialisation for a `[fan_in, fan_out]` matrix.
pub fn xavier_uniform<R: rand::Rng + ?Sized>(fan_in: usize, fan_out: usize, rng: &mut R) -> Tensor {
    let limit = (6.0 / (fan_in + fan_out) as f32).sqrt();
    Tensor::rand_uniform(&[fan_in, fan_out], -limit, limit, rng)
}

/// Truncated-free normal initialisation with std `1/sqrt(dim)` — the usual
/// embedding-table init.
pub fn embedding_init<R: rand::Rng + ?Sized>(rows: usize, dim: usize, rng: &mut R) -> Tensor {
    Tensor::randn(&[rows, dim], 1.0 / (dim as f32).sqrt(), rng)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_registers_and_reports_sizes() {
        let mut store = ParamStore::new();
        let a = store.add("w", Tensor::zeros(&[3, 4]));
        let b = store.add("b", Tensor::zeros(&[4]));
        assert_eq!(store.num_tensors(), 2);
        assert_eq!(store.num_scalars(), 16);
        assert_eq!(store.name(a), "w");
        assert_eq!(store.value(b).shape(), &[4]);
    }

    #[test]
    fn ctx_binds_each_param_once() {
        let mut store = ParamStore::new();
        let id = store.add("w", Tensor::ones(&[2]));
        let g = Graph::new();
        let ctx = FwdCtx::new(&g, &store, false, 0);
        let v1 = ctx.param(id);
        let v2 = ctx.param(id);
        assert_eq!(v1.id(), v2.id(), "same param must bind to same var");
    }

    #[test]
    fn backprop_deposits_grads_and_accumulates_across_uses() {
        let mut store = ParamStore::new();
        let id = store.add("w", Tensor::from_vec(vec![2.0, 3.0], &[2]));
        let g = Graph::new();
        let ctx = FwdCtx::new(&g, &store, true, 0);
        let w = ctx.param(id);
        // loss = Σ (w*w + w) => d/dw = 2w + 1 = [5, 7]
        let loss = w.mul(w).add(w).sum_all();
        ctx.backprop(loss);
        assert_eq!(store.grad(id).data(), &[5.0, 7.0]);
        // Second pass accumulates on top.
        let g2 = Graph::new();
        let ctx2 = FwdCtx::new(&g2, &store, true, 1);
        let w2 = ctx2.param(id);
        ctx2.backprop(w2.sum_all());
        assert_eq!(store.grad(id).data(), &[6.0, 8.0]);
        store.zero_grad();
        assert_eq!(store.grad(id).data(), &[0.0, 0.0]);
    }

    #[test]
    fn grad_norm_and_scaling() {
        let mut store = ParamStore::new();
        let id = store.add("w", Tensor::zeros(&[2]));
        store.accumulate_grad(id, &Tensor::from_vec(vec![3.0, 4.0], &[2]));
        assert!((store.grad_norm() - 5.0).abs() < 1e-6);
        store.scale_grads(0.5);
        assert_eq!(store.grad(id).data(), &[1.5, 2.0]);
    }

    #[test]
    fn xavier_respects_limits() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let w = xavier_uniform(10, 20, &mut rng);
        let limit = (6.0f32 / 30.0).sqrt();
        assert!(w.data().iter().all(|&x| x.abs() <= limit));
    }
}
