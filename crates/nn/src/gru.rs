//! Gated recurrent unit (GRU) cell and sequence wrapper — the backbone of
//! the GRU4Rec baseline.

use irs_tensor::{Tensor, Var};

use crate::linear::Linear;
use crate::params::{FwdCtx, ParamStore};

/// A single GRU cell.
///
/// Update equations (Cho et al., 2014):
/// ```text
/// z = σ(x·Wz + h·Uz + bz)
/// r = σ(x·Wr + h·Ur + br)
/// h̃ = tanh(x·Wh + (r ⊙ h)·Uh + bh)
/// h' = (1 − z) ⊙ h + z ⊙ h̃
/// ```
#[derive(Debug, Clone)]
pub struct GruCell {
    wz: Linear,
    uz: Linear,
    wr: Linear,
    ur: Linear,
    wh: Linear,
    uh: Linear,
    input_dim: usize,
    hidden_dim: usize,
}

impl GruCell {
    /// Register a cell mapping `input_dim` inputs to `hidden_dim` state.
    pub fn new<R: rand::Rng + ?Sized>(
        store: &mut ParamStore,
        name: &str,
        input_dim: usize,
        hidden_dim: usize,
        rng: &mut R,
    ) -> Self {
        GruCell {
            wz: Linear::new(store, &format!("{name}.wz"), input_dim, hidden_dim, true, rng),
            uz: Linear::new(store, &format!("{name}.uz"), hidden_dim, hidden_dim, false, rng),
            wr: Linear::new(store, &format!("{name}.wr"), input_dim, hidden_dim, true, rng),
            ur: Linear::new(store, &format!("{name}.ur"), hidden_dim, hidden_dim, false, rng),
            wh: Linear::new(store, &format!("{name}.wh"), input_dim, hidden_dim, true, rng),
            uh: Linear::new(store, &format!("{name}.uh"), hidden_dim, hidden_dim, false, rng),
            input_dim,
            hidden_dim,
        }
    }

    /// Hidden-state dimension.
    pub fn hidden_dim(&self) -> usize {
        self.hidden_dim
    }

    /// Input dimension.
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// One step: `x [B, input_dim]`, `h [B, hidden_dim]` -> new hidden.
    pub fn step<'g>(&self, ctx: &FwdCtx<'g, '_>, x: Var<'g>, h: Var<'g>) -> Var<'g> {
        let z = self.wz.forward2d(ctx, x).add(self.uz.forward2d(ctx, h)).sigmoid();
        let r = self.wr.forward2d(ctx, x).add(self.ur.forward2d(ctx, h)).sigmoid();
        let h_cand = self.wh.forward2d(ctx, x).add(self.uh.forward2d(ctx, r.mul(h))).tanh();
        // h' = (1-z)⊙h + z⊙h̃  =  h + z⊙(h̃ − h)
        h.add(z.mul(h_cand.sub(h)))
    }
}

/// A GRU unrolled over a sequence.
#[derive(Debug, Clone)]
pub struct Gru {
    cell: GruCell,
}

impl Gru {
    /// Register a GRU layer.
    pub fn new<R: rand::Rng + ?Sized>(
        store: &mut ParamStore,
        name: &str,
        input_dim: usize,
        hidden_dim: usize,
        rng: &mut R,
    ) -> Self {
        Gru { cell: GruCell::new(store, name, input_dim, hidden_dim, rng) }
    }

    /// Hidden dimension.
    pub fn hidden_dim(&self) -> usize {
        self.cell.hidden_dim()
    }

    /// Run over `x: [B, T, D]` from a zero initial state, returning all
    /// hidden states `[B, T, H]`.
    pub fn forward_seq<'g>(&self, ctx: &FwdCtx<'g, '_>, x: Var<'g>) -> Var<'g> {
        let shape = x.shape();
        assert_eq!(shape.len(), 3, "gru expects 3-D input, got {shape:?}");
        let (b, t, _d) = (shape[0], shape[1], shape[2]);
        assert!(t > 0, "gru over empty sequence");
        let mut h = ctx.graph.constant(Tensor::zeros(&[b, self.cell.hidden_dim()]));
        let mut steps = Vec::with_capacity(t);
        for ti in 0..t {
            let xt = x.select_step(ti);
            h = self.cell.step(ctx, xt, h);
            steps.push(h);
        }
        Var::stack_axis1(&steps)
    }

    /// Run over `x: [B, T, D]` and return only the final hidden state
    /// `[B, H]`.
    pub fn forward_last<'g>(&self, ctx: &FwdCtx<'g, '_>, x: Var<'g>) -> Var<'g> {
        let shape = x.shape();
        let t = shape[1];
        self.forward_seq(ctx, x).select_step(t - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Adam, Optimizer};
    use irs_tensor::Graph;
    use rand::{Rng, SeedableRng};

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(61)
    }

    #[test]
    fn gru_shapes() {
        let mut store = ParamStore::new();
        let gru = Gru::new(&mut store, "g", 3, 5, &mut rng());
        let g = Graph::new();
        let ctx = FwdCtx::new(&g, &store, false, 0);
        let x = g.constant(Tensor::randn(&[2, 4, 3], 1.0, &mut rng()));
        assert_eq!(gru.forward_seq(&ctx, x).shape(), vec![2, 4, 5]);
        assert_eq!(gru.forward_last(&ctx, x).shape(), vec![2, 5]);
    }

    #[test]
    fn gru_state_stays_bounded() {
        // tanh/sigmoid gating keeps hidden values in (-1, 1).
        let mut store = ParamStore::new();
        let gru = Gru::new(&mut store, "g", 2, 4, &mut rng());
        let g = Graph::new();
        let ctx = FwdCtx::new(&g, &store, false, 0);
        let x = g.constant(Tensor::randn(&[1, 32, 2], 5.0, &mut rng()));
        let h = gru.forward_last(&ctx, x).value();
        assert!(h.data().iter().all(|&v| v.abs() <= 1.0 + 1e-5));
    }

    #[test]
    fn gru_learns_to_remember_first_input() {
        // Task: output the sign of the first timestep's first feature.
        // A GRU must carry information across time to solve it.
        let mut r = rng();
        let mut store = ParamStore::new();
        let gru = Gru::new(&mut store, "g", 1, 8, &mut r);
        let head = Linear::new(&mut store, "head", 8, 1, true, &mut r);
        let mut opt = Adam::new(2e-2);

        let b = 16;
        let t = 6;
        let make_batch = |r: &mut rand::rngs::StdRng| {
            let mut xs = Tensor::randn(&[b, t, 1], 0.2, r);
            let mut ys = Vec::with_capacity(b);
            for bi in 0..b {
                let sign = if r.random::<bool>() { 1.0 } else { -1.0 };
                *xs.at_mut(&[bi, 0, 0]) = sign;
                ys.push(sign);
            }
            (xs, Tensor::from_vec(ys, &[b, 1]))
        };

        let mut last = f32::INFINITY;
        for step in 0..250 {
            let (xs, ys) = make_batch(&mut r);
            let g = Graph::new();
            let ctx = FwdCtx::new(&g, &store, true, step);
            let x = g.constant(xs);
            let y = g.constant(ys);
            let hidden = gru.forward_last(&ctx, x);
            let pred = head.forward2d(&ctx, hidden).tanh();
            let diff = pred.sub(y);
            let loss = diff.mul(diff).mean_all();
            last = loss.item();
            store.zero_grad();
            ctx.backprop(loss);
            drop(ctx);
            opt.step(&mut store);
        }
        assert!(last < 0.1, "GRU failed to learn long-range signal: {last}");
    }
}
