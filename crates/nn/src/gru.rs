//! Gated recurrent unit (GRU) cell and sequence wrapper — the backbone of
//! the GRU4Rec baseline.
//!
//! Besides the autograd path ([`GruCell::step`] / [`Gru::forward_seq`]),
//! the cell has a tape-free inference path: [`GruCell::infer_weights`]
//! packs the three input-side gate matrices into one fused `[D, 3H]`
//! matmul operand (and the two hidden-side matrices into `[H, 2H]`), and
//! [`Gru::infer_last`] runs the recurrence with reused scratch buffers —
//! one big fused matmul for every `x`-side gate of every timestep, two
//! small matmuls per step for the hidden side, zero tape nodes.  Outputs
//! are bitwise equal to the graph path (see the equivalence contract in
//! [`crate::infer`]).

use irs_tensor::{matmul_into, Tensor, Var};

use crate::linear::Linear;
use crate::params::{FwdCtx, ParamStore};

/// A single GRU cell.
///
/// Update equations (Cho et al., 2014):
/// ```text
/// z = σ(x·Wz + h·Uz + bz)
/// r = σ(x·Wr + h·Ur + br)
/// h̃ = tanh(x·Wh + (r ⊙ h)·Uh + bh)
/// h' = (1 − z) ⊙ h + z ⊙ h̃
/// ```
#[derive(Debug, Clone)]
pub struct GruCell {
    wz: Linear,
    uz: Linear,
    wr: Linear,
    ur: Linear,
    wh: Linear,
    uh: Linear,
    input_dim: usize,
    hidden_dim: usize,
}

impl GruCell {
    /// Register a cell mapping `input_dim` inputs to `hidden_dim` state.
    pub fn new<R: rand::Rng + ?Sized>(
        store: &mut ParamStore,
        name: &str,
        input_dim: usize,
        hidden_dim: usize,
        rng: &mut R,
    ) -> Self {
        GruCell {
            wz: Linear::new(store, &format!("{name}.wz"), input_dim, hidden_dim, true, rng),
            uz: Linear::new(store, &format!("{name}.uz"), hidden_dim, hidden_dim, false, rng),
            wr: Linear::new(store, &format!("{name}.wr"), input_dim, hidden_dim, true, rng),
            ur: Linear::new(store, &format!("{name}.ur"), hidden_dim, hidden_dim, false, rng),
            wh: Linear::new(store, &format!("{name}.wh"), input_dim, hidden_dim, true, rng),
            uh: Linear::new(store, &format!("{name}.uh"), hidden_dim, hidden_dim, false, rng),
            input_dim,
            hidden_dim,
        }
    }

    /// Hidden-state dimension.
    pub fn hidden_dim(&self) -> usize {
        self.hidden_dim
    }

    /// Input dimension.
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// One step: `x [B, input_dim]`, `h [B, hidden_dim]` -> new hidden.
    pub fn step<'g>(&self, ctx: &FwdCtx<'g, '_>, x: Var<'g>, h: Var<'g>) -> Var<'g> {
        let z = self.wz.forward2d(ctx, x).add(self.uz.forward2d(ctx, h)).sigmoid();
        let r = self.wr.forward2d(ctx, x).add(self.ur.forward2d(ctx, h)).sigmoid();
        let h_cand = self.wh.forward2d(ctx, x).add(self.uh.forward2d(ctx, r.mul(h))).tanh();
        // h' = (1-z)⊙h + z⊙h̃  =  h + z⊙(h̃ − h)
        h.add(z.mul(h_cand.sub(h)))
    }

    /// Pack the input-side gate weights `[Wz | Wr | Wh]` into one fused
    /// `[D, 3H]` matmul operand (with the matching `[3H]` bias row) and
    /// the hidden-side `[Uz | Ur]` into `[H, 2H]`.  Column-concatenation
    /// leaves every output element's dot product untouched, so the fused
    /// matmuls are bitwise equal to three (resp. two) separate ones.
    pub fn infer_weights(&self, store: &ParamStore) -> GruInferWeights {
        let (d, hd) = (self.input_dim, self.hidden_dim);
        let wz = store.value(self.wz.weight_id());
        let wr = store.value(self.wr.weight_id());
        let wh = store.value(self.wh.weight_id());
        let mut w_all = vec![0.0f32; d * 3 * hd];
        for p in 0..d {
            w_all[p * 3 * hd..p * 3 * hd + hd].copy_from_slice(&wz.data()[p * hd..(p + 1) * hd]);
            w_all[p * 3 * hd + hd..p * 3 * hd + 2 * hd]
                .copy_from_slice(&wr.data()[p * hd..(p + 1) * hd]);
            w_all[p * 3 * hd + 2 * hd..(p + 1) * 3 * hd]
                .copy_from_slice(&wh.data()[p * hd..(p + 1) * hd]);
        }
        let mut b_all = vec![0.0f32; 3 * hd];
        for (slot, lin) in [&self.wz, &self.wr, &self.wh].into_iter().enumerate() {
            let bias = store.value(lin.bias_id().expect("gate projections carry biases"));
            b_all[slot * hd..(slot + 1) * hd].copy_from_slice(bias.data());
        }
        let uz = store.value(self.uz.weight_id());
        let ur = store.value(self.ur.weight_id());
        let mut u_zr = vec![0.0f32; hd * 2 * hd];
        for p in 0..hd {
            u_zr[p * 2 * hd..p * 2 * hd + hd].copy_from_slice(&uz.data()[p * hd..(p + 1) * hd]);
            u_zr[p * 2 * hd + hd..(p + 1) * 2 * hd]
                .copy_from_slice(&ur.data()[p * hd..(p + 1) * hd]);
        }
        GruInferWeights {
            w_all: Tensor::from_vec(w_all, &[d, 3 * hd]),
            b_all,
            u_zr: Tensor::from_vec(u_zr, &[hd, 2 * hd]),
        }
    }

    /// Scratch buffers for [`GruCell::infer_step_in_place`], sized for a
    /// batch of `b` rows and reused across every timestep.
    pub fn infer_scratch(&self, b: usize) -> GruInferScratch {
        let hd = self.hidden_dim;
        GruInferScratch {
            gates_h: vec![0.0; b * 2 * hd],
            z: vec![0.0; b * hd],
            rh: vec![0.0; b * hd],
            uh_out: vec![0.0; b * hd],
        }
    }

    /// One tape-free step: consume this timestep's precomputed input-side
    /// gate pre-activations `gx_t` (`[B, 3H]`: columns `[z|r|h̃]`, biases
    /// already added) and update `h` (`[B, H]`) in place.
    ///
    /// Identical arithmetic in identical order as [`GruCell::step`]:
    /// `z = σ(gxᶻ + h·Uz)`, `r = σ(gxʳ + h·Ur)`,
    /// `h̃ = tanh(gxʰ + (r⊙h)·Uh)`, `h ← h + z⊙(h̃ − h)`.
    pub fn infer_step_in_place(
        &self,
        store: &ParamStore,
        iw: &GruInferWeights,
        gx_t: &[f32],
        h: &mut [f32],
        scratch: &mut GruInferScratch,
    ) {
        let hd = self.hidden_dim;
        let b = h.len() / hd;
        debug_assert_eq!(h.len(), b * hd);
        debug_assert_eq!(gx_t.len(), b * 3 * hd);
        scratch.gates_h.iter_mut().for_each(|v| *v = 0.0);
        matmul_into(h, iw.u_zr.data(), &mut scratch.gates_h, b, hd, 2 * hd);
        for bi in 0..b {
            let gx = &gx_t[bi * 3 * hd..bi * 3 * hd + 2 * hd];
            let gh = &scratch.gates_h[bi * 2 * hd..(bi + 1) * 2 * hd];
            let hrow = &h[bi * hd..(bi + 1) * hd];
            let zrow = &mut scratch.z[bi * hd..(bi + 1) * hd];
            let rhrow = &mut scratch.rh[bi * hd..(bi + 1) * hd];
            for j in 0..hd {
                zrow[j] = sigmoid(gx[j] + gh[j]);
                rhrow[j] = sigmoid(gx[hd + j] + gh[hd + j]) * hrow[j];
            }
        }
        scratch.uh_out.iter_mut().for_each(|v| *v = 0.0);
        let u_h = store.value(self.uh.weight_id());
        matmul_into(&scratch.rh, u_h.data(), &mut scratch.uh_out, b, hd, hd);
        for bi in 0..b {
            for j in 0..hd {
                let idx = bi * hd + j;
                let h_cand = (gx_t[bi * 3 * hd + 2 * hd + j] + scratch.uh_out[idx]).tanh();
                h[idx] += scratch.z[idx] * (h_cand - h[idx]);
            }
        }
    }
}

/// Logistic sigmoid with the identical expression the graph op uses
/// (`Var::sigmoid`), so infer and graph paths agree bitwise.
#[inline]
fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

/// Fused tape-free GRU gate weights — see [`GruCell::infer_weights`].
pub struct GruInferWeights {
    /// `[D, 3H]`: columns `[Wz | Wr | Wh]`.
    w_all: Tensor,
    /// `[3H]`: `[bz | br | bh]`.
    b_all: Vec<f32>,
    /// `[H, 2H]`: columns `[Uz | Ur]`.
    u_zr: Tensor,
}

/// Reusable per-batch scratch for the tape-free GRU recurrence — see
/// [`GruCell::infer_scratch`].
pub struct GruInferScratch {
    gates_h: Vec<f32>,
    z: Vec<f32>,
    rh: Vec<f32>,
    uh_out: Vec<f32>,
}

/// A GRU unrolled over a sequence.
#[derive(Debug, Clone)]
pub struct Gru {
    cell: GruCell,
}

impl Gru {
    /// Register a GRU layer.
    pub fn new<R: rand::Rng + ?Sized>(
        store: &mut ParamStore,
        name: &str,
        input_dim: usize,
        hidden_dim: usize,
        rng: &mut R,
    ) -> Self {
        Gru { cell: GruCell::new(store, name, input_dim, hidden_dim, rng) }
    }

    /// Hidden dimension.
    pub fn hidden_dim(&self) -> usize {
        self.cell.hidden_dim()
    }

    /// Run over `x: [B, T, D]` from a zero initial state, returning all
    /// hidden states `[B, T, H]`.
    pub fn forward_seq<'g>(&self, ctx: &FwdCtx<'g, '_>, x: Var<'g>) -> Var<'g> {
        let shape = x.shape();
        assert_eq!(shape.len(), 3, "gru expects 3-D input, got {shape:?}");
        let (b, t, _d) = (shape[0], shape[1], shape[2]);
        assert!(t > 0, "gru over empty sequence");
        let mut h = ctx.graph.constant(ctx.graph.alloc_zeroed(&[b, self.cell.hidden_dim()]));
        let mut steps = Vec::with_capacity(t);
        for ti in 0..t {
            let xt = x.select_step(ti);
            h = self.cell.step(ctx, xt, h);
            steps.push(h);
        }
        Var::stack_axis1(&steps)
    }

    /// Run over `x: [B, T, D]` and return only the final hidden state
    /// `[B, H]`.
    pub fn forward_last<'g>(&self, ctx: &FwdCtx<'g, '_>, x: Var<'g>) -> Var<'g> {
        let shape = x.shape();
        let t = shape[1];
        self.forward_seq(ctx, x).select_step(t - 1)
    }

    /// Tape-free batched inference over `x: [B, T, D]`: returns each row's
    /// hidden state at its own last real timestep `lens[r] − 1`, `[B, H]`.
    ///
    /// The input-side gate pre-activations of *every* timestep are
    /// produced by one fused `[T·B, D] @ [D, 3H]` matmul up front (one
    /// kernel invocation and one weight pack instead of `3·T`); the
    /// recurrence then runs with two small matmuls per step into scratch
    /// buffers reused across steps.  Row `r`'s result is
    /// bitwise equal to `forward_seq` read at step `lens[r] − 1`, and — as
    /// a GRU state only depends on steps `≤ t` — to running row `r` alone
    /// truncated to `lens[r]` (the scalar graph path).
    pub fn infer_last(&self, store: &ParamStore, x: &Tensor, lens: &[usize]) -> Tensor {
        let shape = x.shape();
        assert_eq!(shape.len(), 3, "gru expects 3-D input, got {shape:?}");
        let (b, t, d) = (shape[0], shape[1], shape[2]);
        assert!(t > 0, "gru over empty sequence");
        assert_eq!(lens.len(), b, "one length per batch row");
        assert!(lens.iter().all(|&l| l >= 1 && l <= t), "lens must be in 1..=T");
        let hd = self.cell.hidden_dim();
        let iw = self.cell.infer_weights(store);

        // Step-major copy of the input ([T, B, D]) so each timestep's gate
        // block is one contiguous slice of the fused matmul output.
        let mut x_steps = vec![0.0f32; t * b * d];
        for bi in 0..b {
            for ti in 0..t {
                x_steps[(ti * b + bi) * d..(ti * b + bi) * d + d]
                    .copy_from_slice(&x.data()[(bi * t + ti) * d..(bi * t + ti) * d + d]);
            }
        }
        let mut gx = vec![0.0f32; t * b * 3 * hd];
        matmul_into(&x_steps, iw.w_all.data(), &mut gx, t * b, d, 3 * hd);
        for row in gx.chunks_mut(3 * hd) {
            for (o, &bb) in row.iter_mut().zip(&iw.b_all) {
                *o += bb;
            }
        }

        let mut h = vec![0.0f32; b * hd];
        let mut out = vec![0.0f32; b * hd];
        let mut scratch = self.cell.infer_scratch(b);
        for ti in 0..t {
            let gx_t = &gx[ti * b * 3 * hd..(ti + 1) * b * 3 * hd];
            self.cell.infer_step_in_place(store, &iw, gx_t, &mut h, &mut scratch);
            for (r, &len) in lens.iter().enumerate() {
                if len == ti + 1 {
                    out[r * hd..(r + 1) * hd].copy_from_slice(&h[r * hd..(r + 1) * hd]);
                }
            }
        }
        Tensor::from_vec(out, &[b, hd])
    }

    /// A fresh per-session streaming state (zero hidden vector, packed
    /// weights, reusable scratch) for [`Gru::stream_step`].
    pub fn stream_state(&self, store: &ParamStore) -> GruStreamState {
        GruStreamState {
            iw: self.cell.infer_weights(store),
            h: vec![0.0; self.cell.hidden_dim()],
            scratch: self.cell.infer_scratch(1),
            gx: vec![0.0; 3 * self.cell.hidden_dim()],
        }
    }

    /// Advance the carried hidden state by one timestep (`x_row: [D]`,
    /// batch of one).  Bitwise equal to the matching step of
    /// [`Gru::infer_last`]: the fused `[T·B, D] @ [D, 3H]` matmul there
    /// computes each row's gate pre-activations independently with the
    /// same `k`-ascending accumulation as this single-row matmul, the
    /// per-row bias add is the same loop, and the recurrence shares
    /// [`GruCell::infer_step_in_place`].
    pub fn stream_step(&self, store: &ParamStore, state: &mut GruStreamState, x_row: &[f32]) {
        let d = self.cell.input_dim();
        let hd = self.cell.hidden_dim();
        assert_eq!(x_row.len(), d, "input row width mismatch");
        state.gx.iter_mut().for_each(|v| *v = 0.0);
        matmul_into(x_row, state.iw.w_all.data(), &mut state.gx, 1, d, 3 * hd);
        for (o, &bb) in state.gx.iter_mut().zip(&state.iw.b_all) {
            *o += bb;
        }
        self.cell.infer_step_in_place(
            store,
            &state.iw,
            &state.gx,
            &mut state.h,
            &mut state.scratch,
        );
    }
}

/// Carried per-session GRU state for incremental serving: the hidden
/// vector plus everything needed to step it without touching the
/// allocator (packed gate weights, scratch, a one-row gate buffer).
pub struct GruStreamState {
    iw: GruInferWeights,
    h: Vec<f32>,
    scratch: GruInferScratch,
    gx: Vec<f32>,
}

impl GruStreamState {
    /// Reset the hidden state to zero (a fresh session) while keeping the
    /// packed weights and scratch.
    pub fn reset(&mut self) {
        self.h.iter_mut().for_each(|v| *v = 0.0);
    }

    /// The carried hidden state `[H]`.
    pub fn hidden(&self) -> &[f32] {
        &self.h
    }

    /// Heap bytes held by this state, packed weights included (each
    /// stream state owns its own copy of the fused gate weights).
    pub fn resident_bytes(&self) -> usize {
        (self.iw.w_all.data().len()
            + self.iw.b_all.len()
            + self.iw.u_zr.data().len()
            + self.h.len()
            + self.gx.len()
            + self.scratch.gates_h.len()
            + self.scratch.z.len()
            + self.scratch.rh.len()
            + self.scratch.uh_out.len())
            * std::mem::size_of::<f32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Adam, Optimizer};
    use irs_tensor::Graph;
    use rand::{Rng, SeedableRng};

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(61)
    }

    #[test]
    fn gru_shapes() {
        let mut store = ParamStore::new();
        let gru = Gru::new(&mut store, "g", 3, 5, &mut rng());
        let g = Graph::new();
        let ctx = FwdCtx::new(&g, &store, false, 0);
        let x = g.constant(Tensor::randn(&[2, 4, 3], 1.0, &mut rng()));
        assert_eq!(gru.forward_seq(&ctx, x).shape(), vec![2, 4, 5]);
        assert_eq!(gru.forward_last(&ctx, x).shape(), vec![2, 5]);
    }

    #[test]
    fn gru_state_stays_bounded() {
        // tanh/sigmoid gating keeps hidden values in (-1, 1).
        let mut store = ParamStore::new();
        let gru = Gru::new(&mut store, "g", 2, 4, &mut rng());
        let g = Graph::new();
        let ctx = FwdCtx::new(&g, &store, false, 0);
        let x = g.constant(Tensor::randn(&[1, 32, 2], 5.0, &mut rng()));
        let h = gru.forward_last(&ctx, x).value();
        assert!(h.data().iter().all(|&v| v.abs() <= 1.0 + 1e-5));
    }

    #[test]
    fn infer_last_is_bitwise_equal_to_graph_forward() {
        let mut r = rng();
        let mut store = ParamStore::new();
        let gru = Gru::new(&mut store, "g", 3, 5, &mut r);
        let x = Tensor::randn(&[4, 6, 3], 1.0, &mut r);
        let lens = [6usize, 1, 3, 5];

        let g = Graph::new();
        let ctx = FwdCtx::new(&g, &store, false, 0);
        let states = gru.forward_seq(&ctx, g.constant(x.clone())).value();
        let fast = gru.infer_last(&store, &x, &lens);
        for (r, &len) in lens.iter().enumerate() {
            for j in 0..5 {
                let want = states.at(&[r, len - 1, j]);
                let got = fast.at(&[r, j]);
                assert_eq!(want.to_bits(), got.to_bits(), "row {r} dim {j}: {want} vs {got}");
            }
        }
    }

    #[test]
    fn stream_step_is_bitwise_equal_to_infer_last() {
        let mut r = rng();
        let mut store = ParamStore::new();
        let gru = Gru::new(&mut store, "g", 3, 5, &mut r);
        let x = Tensor::randn(&[1, 6, 3], 1.0, &mut r);
        let mut state = gru.stream_state(&store);
        for t in 1..=6usize {
            state.reset();
            for ti in 0..t {
                gru.stream_step(&store, &mut state, &x.data()[ti * 3..(ti + 1) * 3]);
            }
            let want = gru.infer_last(&store, &x, &[t]);
            for (j, (&w, &g)) in want.data().iter().zip(state.hidden()).enumerate() {
                assert_eq!(w.to_bits(), g.to_bits(), "t={t} dim {j}: {w} vs {g}");
            }
        }
        assert!(state.resident_bytes() > 0);
    }

    #[test]
    fn gru_learns_to_remember_first_input() {
        // Task: output the sign of the first timestep's first feature.
        // A GRU must carry information across time to solve it.
        let mut r = rng();
        let mut store = ParamStore::new();
        let gru = Gru::new(&mut store, "g", 1, 8, &mut r);
        let head = Linear::new(&mut store, "head", 8, 1, true, &mut r);
        let mut opt = Adam::new(2e-2);

        let b = 16;
        let t = 6;
        let make_batch = |r: &mut rand::rngs::StdRng| {
            let mut xs = Tensor::randn(&[b, t, 1], 0.2, r);
            let mut ys = Vec::with_capacity(b);
            for bi in 0..b {
                let sign = if r.random::<bool>() { 1.0 } else { -1.0 };
                *xs.at_mut(&[bi, 0, 0]) = sign;
                ys.push(sign);
            }
            (xs, Tensor::from_vec(ys, &[b, 1]))
        };

        let mut last = f32::INFINITY;
        for step in 0..250 {
            let (xs, ys) = make_batch(&mut r);
            let g = Graph::new();
            let ctx = FwdCtx::new(&g, &store, true, step);
            let x = g.constant(xs);
            let y = g.constant(ys);
            let hidden = gru.forward_last(&ctx, x);
            let pred = head.forward2d(&ctx, hidden).tanh();
            let diff = pred.sub(y);
            let loss = diff.mul(diff).mean_all();
            last = loss.item();
            store.zero_grad();
            ctx.backprop(loss);
            drop(ctx);
            opt.step(&mut store);
        }
        assert!(last < 0.1, "GRU failed to learn long-range signal: {last}");
    }
}
