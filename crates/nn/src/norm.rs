//! Layer normalisation.

use irs_tensor::{Tensor, Var};

use crate::params::{FwdCtx, ParamId, ParamStore};

/// Layer normalisation over the last axis with learned scale and shift.
#[derive(Debug, Clone)]
pub struct LayerNorm {
    gamma: ParamId,
    beta: ParamId,
    dim: usize,
    eps: f32,
}

impl LayerNorm {
    /// Register a layer-norm over feature dimension `dim`.
    pub fn new(store: &mut ParamStore, name: &str, dim: usize) -> Self {
        let gamma = store.add(format!("{name}.gamma"), Tensor::ones(&[dim]));
        let beta = store.add(format!("{name}.beta"), Tensor::zeros(&[dim]));
        LayerNorm { gamma, beta, dim, eps: 1e-5 }
    }

    /// Feature dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Apply to a tensor whose last axis has length `dim`.
    pub fn forward<'g>(&self, ctx: &FwdCtx<'g, '_>, x: Var<'g>) -> Var<'g> {
        x.layer_norm(ctx.param(self.gamma), ctx.param(self.beta), self.eps)
    }

    /// Tape-free in-place apply — the identical per-row kernel as the
    /// `layer_norm` graph op's forward.
    pub fn infer_in_place(&self, store: &ParamStore, x: &mut Tensor) {
        let d = *x.shape().last().expect("layer_norm on 0-d tensor");
        assert_eq!(d, self.dim, "layer_norm dim mismatch: {d} vs {}", self.dim);
        let gm = store.value(self.gamma);
        let bt = store.value(self.beta);
        let eps = self.eps;
        for row in x.data_mut().chunks_mut(d) {
            let mean = row.iter().sum::<f32>() / d as f32;
            let var = row.iter().map(|&x| (x - mean) * (x - mean)).sum::<f32>() / d as f32;
            let inv = 1.0 / (var + eps).sqrt();
            for (i, r) in row.iter_mut().enumerate() {
                *r = (*r - mean) * inv * gm.data()[i] + bt.data()[i];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use irs_tensor::Graph;
    use rand::SeedableRng;

    #[test]
    fn normalises_each_row() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(31);
        let mut store = ParamStore::new();
        let ln = LayerNorm::new(&mut store, "ln", 5);
        let g = Graph::new();
        let ctx = FwdCtx::new(&g, &store, false, 0);
        let x = g.constant(Tensor::randn(&[3, 5], 4.0, &mut rng));
        let y = ln.forward(&ctx, x).value();
        for row in y.data().chunks(5) {
            let mean: f32 = row.iter().sum::<f32>() / 5.0;
            assert!(mean.abs() < 1e-4);
        }
    }
}
