//! Tape-free batched inference.
//!
//! The autograd path ([`crate::FwdCtx`]) clones every parameter tensor
//! into the graph and records an op per kernel — negligible against a
//! training step, but the dominant cost of small per-step inference
//! forwards.  The `infer` methods on [`crate::Linear`],
//! [`crate::LayerNorm`], [`crate::MultiHeadAttention`],
//! [`crate::FeedForward`], [`crate::TransformerBlock`],
//! [`crate::Embedding`] and [`crate::PositionalEncoding`] evaluate the
//! same kernels directly on [`Tensor`] values: parameters are read in
//! place from the [`crate::ParamStore`], elementwise stages mutate their
//! operand, and nothing is taped.
//!
//! **Equivalence contract:** every `infer` method applies the identical
//! arithmetic in the identical order as its graph twin, so outputs are
//! bitwise equal to an eval-mode (`training = false`) forward.  The
//! scalar graph path stays the reference; `Irn::score_next_batch`
//! debug-asserts one row against it on every call, and the baseline
//! property tests pin `score_batch ≡ score` per model.

use irs_tensor::Tensor;

/// Additive attention bias for the inference path — the value-level
/// mirror of [`crate::AttnBias`].
pub struct InferBias {
    /// Constant part, `[T, T]` (shared) or `[B, T, T]` (per batch element).
    pub base: Tensor,
    /// PIM objective column: `(col, r_u per batch element, w_t)` adds
    /// `w_t · r_u[b]` to key column `col` of every query row.
    pub scaled_column: Option<(usize, Vec<f32>, f32)>,
}

/// `[B, T, D] -> [B*H, T, D/H]`, head-major — mirrors `Var::split_heads`.
pub(crate) fn split_heads_t(x: &Tensor, heads: usize) -> Tensor {
    let (b, t, d) = (x.shape()[0], x.shape()[1], x.shape()[2]);
    assert!(heads > 0 && d % heads == 0, "d={d} not divisible by heads={heads}");
    let dk = d / heads;
    let mut out = vec![0.0f32; b * t * d];
    for bi in 0..b {
        for ti in 0..t {
            for h in 0..heads {
                let src = bi * t * d + ti * d + h * dk;
                let dst = (bi * heads + h) * t * dk + ti * dk;
                out[dst..dst + dk].copy_from_slice(&x.data()[src..src + dk]);
            }
        }
    }
    Tensor::from_vec(out, &[b * heads, t, dk])
}

/// `[B*H, T, Dk] -> [B, T, H*Dk]` — mirrors `Var::merge_heads`.
pub(crate) fn merge_heads_t(x: &Tensor, heads: usize) -> Tensor {
    let (bh, t, dk) = (x.shape()[0], x.shape()[1], x.shape()[2]);
    assert!(heads > 0 && bh % heads == 0, "batch*heads={bh} not divisible by heads={heads}");
    let b = bh / heads;
    let d = heads * dk;
    let mut out = vec![0.0f32; b * t * d];
    for bi in 0..b {
        for ti in 0..t {
            for h in 0..heads {
                let src = (bi * heads + h) * t * dk + ti * dk;
                let dst = bi * t * d + ti * d + h * dk;
                out[dst..dst + dk].copy_from_slice(&x.data()[src..src + dk]);
            }
        }
    }
    Tensor::from_vec(out, &[b, t, d])
}

/// Add the bias to raw attention scores `[B*H, T, T]` in place — mirrors
/// the `add_base` / `add_scaled_column` graph ops.
pub(crate) fn add_bias_in_place(scores: &mut Tensor, bias: &InferBias, batch: usize, heads: usize) {
    let t = scores.shape()[1];
    let tt = t * t;
    match bias.base.ndim() {
        2 => {
            assert_eq!(bias.base.shape(), &[t, t], "base mask must be [T,T]");
            for bh in 0..batch * heads {
                let off = bh * tt;
                for (o, &m) in scores.data_mut()[off..off + tt].iter_mut().zip(bias.base.data()) {
                    *o += m;
                }
            }
        }
        3 => {
            assert_eq!(bias.base.shape(), &[batch, t, t], "base mask must be [B,T,T]");
            for b in 0..batch {
                let m = &bias.base.data()[b * tt..(b + 1) * tt];
                for h in 0..heads {
                    let off = (b * heads + h) * tt;
                    for (o, &mm) in scores.data_mut()[off..off + tt].iter_mut().zip(m) {
                        *o += mm;
                    }
                }
            }
        }
        n => panic!("base mask must be 2-D or 3-D, got {n}-D"),
    }
    if let Some((col, scale, weight)) = &bias.scaled_column {
        assert!(*col < t, "column {col} out of range T={t}");
        assert_eq!(scale.len(), batch, "scale must have one entry per batch element");
        for (b, &ru) in scale.iter().enumerate() {
            let add = weight * ru;
            for h in 0..heads {
                let off = (b * heads + h) * tt;
                for q in 0..t {
                    scores.data_mut()[off + q * t + col] += add;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_merge_heads_round_trip() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let x = Tensor::randn(&[2, 3, 8], 1.0, &mut rng);
        let merged = merge_heads_t(&split_heads_t(&x, 4), 4);
        assert_eq!(merged.data(), x.data());
    }

    #[test]
    fn scaled_column_adds_to_every_query_row() {
        let mut scores = Tensor::zeros(&[4, 2, 2]); // B=2, H=2
        let bias = InferBias {
            base: Tensor::zeros(&[2, 2]),
            scaled_column: Some((1, vec![0.5, -1.0], 2.0)),
        };
        add_bias_in_place(&mut scores, &bias, 2, 2);
        assert_eq!(scores.at(&[0, 0, 1]), 1.0);
        assert_eq!(scores.at(&[1, 1, 1]), 1.0);
        assert_eq!(scores.at(&[2, 0, 1]), -2.0);
        assert_eq!(scores.at(&[0, 0, 0]), 0.0);
    }
}
