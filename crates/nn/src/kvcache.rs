//! Incremental per-session inference state: append-only K/V row storage
//! and the erased cache-state handle the serving layer stores per
//! session.
//!
//! The transformer families (IRN, SASRec) cache one [`LayerKv`] per
//! block: the `wk`/`wv` projection rows of every already-encoded context
//! position.  Rows are kept in the *un-split* `[n, D]` layout — exactly
//! the rows `Linear::infer` produces, head-interleaved — so appending a
//! position is a pair of `extend_from_slice` calls and head `h` of key
//! `j` is the slice `k[j·D + h·dk .. j·D + (h+1)·dk]`.  Per-head dot
//! products over these slices walk the same elements in the same order
//! as the split-heads `[B·H, T, dk]` layout of the batched infer path,
//! so attention scores computed against the cache are bitwise identical
//! to a cold re-encode (see the equivalence contract in
//! [`crate::infer`]).
//!
//! Which concrete state a model keeps (K/V rows, a GRU hidden state, a
//! rolling embedded window) is the model's business; everything above
//! the model only needs byte accounting and downcasting, which is what
//! [`CacheState`] exposes.

use std::any::Any;

/// Type-erased per-session incremental state.
///
/// Implemented by each model family's concrete cache (IRN, SASRec,
/// GRU4Rec, Caser).  The serving layer owns these behind
/// `Box<dyn CacheState>`: it budgets them by [`CacheState::resident_bytes`]
/// and hands them back to the owning model, which downcasts via
/// [`CacheState::as_any_mut`].
pub trait CacheState: Any + Send {
    /// Approximate heap residency of this state in bytes (used for the
    /// serve-side cache budget, so it should count every owned buffer).
    fn resident_bytes(&self) -> usize;

    /// Upcast for downcasting to the concrete model state.
    fn as_any(&self) -> &dyn Any;

    /// Mutable upcast for downcasting to the concrete model state.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

/// How a model lays out the encoded sequence it scores.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EncodingLayout {
    /// Historical layout: the window is right-aligned by pre-padding, so
    /// the objective always sits at column `max_len − 1` and every past
    /// position shifts each step (cache-defeating, but the layout the
    /// paper's figures use).
    #[default]
    PrePadded,
    /// Append-only layout: context items at absolute positions `0..t`
    /// (no pad rows), the objective as a single appended query slot at
    /// its fixed positional index.  Encoded prefixes are stable across
    /// steps, which is what makes per-session K/V caching possible.
    AppendOnly,
}

/// Per-layer append-only K/V rows (un-split `[n, D]` layout, see the
/// module docs).
#[derive(Debug, Clone, Default)]
pub struct LayerKv {
    k: Vec<f32>,
    v: Vec<f32>,
    d: usize,
}

impl LayerKv {
    /// An empty cache for model width `d`.
    pub fn new(d: usize) -> Self {
        LayerKv { k: Vec::new(), v: Vec::new(), d }
    }

    /// Model width `D` of each stored row.
    pub fn dim(&self) -> usize {
        self.d
    }

    /// Number of cached positions.
    pub fn len(&self) -> usize {
        self.k.len().checked_div(self.d).unwrap_or(0)
    }

    /// Whether no positions are cached.
    pub fn is_empty(&self) -> bool {
        self.k.is_empty()
    }

    /// Drop every cached position.
    pub fn clear(&mut self) {
        self.k.clear();
        self.v.clear();
    }

    /// Keep only the first `n` positions (no-op when `n ≥ len`).
    pub fn truncate(&mut self, n: usize) {
        self.k.truncate(n * self.d);
        self.v.truncate(n * self.d);
    }

    /// Append one position's key and value rows (each `[D]`).
    pub fn push(&mut self, k_row: &[f32], v_row: &[f32]) {
        assert_eq!(k_row.len(), self.d, "key row width mismatch");
        assert_eq!(v_row.len(), self.d, "value row width mismatch");
        self.k.extend_from_slice(k_row);
        self.v.extend_from_slice(v_row);
    }

    /// Key row `[D]` of cached position `j`.
    pub fn key_row(&self, j: usize) -> &[f32] {
        &self.k[j * self.d..(j + 1) * self.d]
    }

    /// Value row `[D]` of cached position `j`.
    pub fn value_row(&self, j: usize) -> &[f32] {
        &self.v[j * self.d..(j + 1) * self.d]
    }

    /// Heap bytes held by this cache (capacity, not length — what the
    /// allocator actually charged us).
    pub fn bytes(&self) -> usize {
        (self.k.capacity() + self.v.capacity()) * std::mem::size_of::<f32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layer_kv_appends_and_truncates() {
        let mut kv = LayerKv::new(2);
        assert!(kv.is_empty());
        kv.push(&[1.0, 2.0], &[3.0, 4.0]);
        kv.push(&[5.0, 6.0], &[7.0, 8.0]);
        assert_eq!(kv.len(), 2);
        assert_eq!(kv.key_row(1), &[5.0, 6.0]);
        assert_eq!(kv.value_row(0), &[3.0, 4.0]);
        kv.truncate(1);
        assert_eq!(kv.len(), 1);
        assert_eq!(kv.key_row(0), &[1.0, 2.0]);
        kv.clear();
        assert!(kv.is_empty());
        assert!(kv.bytes() > 0, "capacity is retained after clear");
    }

    #[test]
    fn encoding_layout_defaults_to_pre_padded() {
        assert_eq!(EncodingLayout::default(), EncodingLayout::PrePadded);
    }
}
