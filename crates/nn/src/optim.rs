//! Optimizers and learning-rate scheduling.

use irs_tensor::Tensor;

use crate::params::ParamStore;

/// Common optimizer interface.
pub trait Optimizer {
    /// Apply one update using the gradients accumulated in `store`, then
    /// leave the gradients untouched (callers decide when to `zero_grad`).
    fn step(&mut self, store: &mut ParamStore);

    /// Clip gradients to a maximum global L2 norm and apply one update,
    /// fused into a single pass over the store where the optimizer
    /// supports it (the clip factor folds into the update instead of a
    /// separate rewrite-every-gradient pass).  Parameter updates are
    /// bitwise identical to [`clip_grad_norm`] followed by
    /// [`Optimizer::step`] — `c·g` is the same single rounding either
    /// way.  Post-step gradient state is unspecified: the fused
    /// overrides (Adam/Sgd) leave the stored gradients unscaled while
    /// this default, which falls back to the two-pass sequence, scales
    /// them in place — callers must zero gradients before the next
    /// backward rather than reading them after a step.  Returns the
    /// pre-clip norm.
    fn step_clipped(&mut self, store: &mut ParamStore, max_norm: f32) -> f32 {
        let norm = clip_grad_norm(store, max_norm);
        self.step(store);
        norm
    }

    /// Current learning rate.
    fn lr(&self) -> f32;

    /// Override the learning rate (used by schedulers).
    fn set_lr(&mut self, lr: f32);
}

/// The clip factor for a gradient norm: `max_norm / norm` when the norm
/// exceeds the cap, 1.0 otherwise (matching [`clip_grad_norm`]'s guard).
fn clip_factor(norm: f32, max_norm: f32) -> f32 {
    if norm > max_norm && norm > 0.0 {
        max_norm / norm
    } else {
        1.0
    }
}

/// Plain stochastic gradient descent with optional momentum.
pub struct Sgd {
    lr: f32,
    momentum: f32,
    velocity: Vec<Tensor>,
}

impl Sgd {
    /// SGD without momentum.
    pub fn new(lr: f32) -> Self {
        Self::with_momentum(lr, 0.0)
    }

    /// SGD with classical momentum.
    pub fn with_momentum(lr: f32, momentum: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        assert!((0.0..1.0).contains(&momentum), "momentum must be in [0,1)");
        Sgd { lr, momentum, velocity: Vec::new() }
    }
}

impl Sgd {
    /// One update pass with the gradient pre-scaled by `scale` (the fused
    /// clip factor; 1.0 leaves each gradient untouched bitwise).
    fn apply(&mut self, store: &mut ParamStore, scale: f32) {
        let lr = self.lr;
        let mom = self.momentum;
        let velocity = &mut self.velocity;
        store.for_each_mut(|i, value, grad| {
            if mom == 0.0 {
                if scale == 1.0 {
                    value.axpy(-lr, grad);
                } else {
                    for (w, &g) in value.data_mut().iter_mut().zip(grad.data()) {
                        *w += -lr * (scale * g);
                    }
                }
                return;
            }
            if velocity.len() <= i {
                velocity.resize_with(i + 1, || Tensor::zeros(&[0]));
            }
            if velocity[i].shape() != value.shape() {
                velocity[i] = Tensor::zeros(value.shape());
            }
            let v = &mut velocity[i];
            for (vk, &gk) in v.data_mut().iter_mut().zip(grad.data()) {
                let gs = if scale == 1.0 { gk } else { scale * gk };
                *vk = mom * *vk + gs;
            }
            value.axpy(-lr, v);
        });
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, store: &mut ParamStore) {
        self.apply(store, 1.0);
    }

    fn step_clipped(&mut self, store: &mut ParamStore, max_norm: f32) -> f32 {
        let norm = store.grad_norm();
        self.apply(store, clip_factor(norm, max_norm));
        norm
    }

    fn lr(&self) -> f32 {
        self.lr
    }

    fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Adam (Kingma & Ba, 2015) with optional decoupled weight decay.
///
/// The paper optimises IRN with Adam plus a reduce-on-plateau schedule
/// (§IV-D6); pair this with [`ReduceLrOnPlateau`].
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    weight_decay: f32,
    t: u64,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
}

impl Adam {
    /// Adam with standard betas `(0.9, 0.999)`.
    pub fn new(lr: f32) -> Self {
        Self::with_config(lr, 0.9, 0.999, 1e-8, 0.0)
    }

    /// Fully configurable constructor.
    pub fn with_config(lr: f32, beta1: f32, beta2: f32, eps: f32, weight_decay: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        Adam { lr, beta1, beta2, eps, weight_decay, t: 0, m: Vec::new(), v: Vec::new() }
    }
}

impl Adam {
    /// One update pass with the gradient pre-scaled by `scale` (the fused
    /// clip factor; 1.0 leaves each gradient untouched bitwise).
    fn apply(&mut self, store: &mut ParamStore, scale: f32) {
        self.t += 1;
        let (b1, b2, eps, lr, wd) = (self.beta1, self.beta2, self.eps, self.lr, self.weight_decay);
        let bc1 = 1.0 - b1.powi(self.t as i32);
        let bc2 = 1.0 - b2.powi(self.t as i32);
        let m = &mut self.m;
        let v = &mut self.v;
        store.for_each_mut(|i, value, grad| {
            if m.len() <= i {
                m.resize_with(i + 1, || Tensor::zeros(&[0]));
                v.resize_with(i + 1, || Tensor::zeros(&[0]));
            }
            if m[i].shape() != value.shape() {
                m[i] = Tensor::zeros(value.shape());
                v[i] = Tensor::zeros(value.shape());
            }
            let (mi, vi) = (&mut m[i], &mut v[i]);
            for (((w, &g), mk), vk) in
                value.data_mut().iter_mut().zip(grad.data()).zip(mi.data_mut()).zip(vi.data_mut())
            {
                let gs = if scale == 1.0 { g } else { scale * g };
                *mk = b1 * *mk + (1.0 - b1) * gs;
                *vk = b2 * *vk + (1.0 - b2) * gs * gs;
                let mhat = *mk / bc1;
                let vhat = *vk / bc2;
                let mut upd = mhat / (vhat.sqrt() + eps);
                if wd > 0.0 {
                    upd += wd * *w;
                }
                *w -= lr * upd;
            }
        });
    }
}

impl Optimizer for Adam {
    fn step(&mut self, store: &mut ParamStore) {
        self.apply(store, 1.0);
    }

    fn step_clipped(&mut self, store: &mut ParamStore, max_norm: f32) -> f32 {
        let norm = store.grad_norm();
        self.apply(store, clip_factor(norm, max_norm));
        norm
    }

    fn lr(&self) -> f32 {
        self.lr
    }

    fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Halve-on-stagnation learning-rate scheduler.
///
/// Matches the paper: "a dynamic learning rate scheduler which reduces the
/// learning rate by a factor of 2 once the learning stagnates" (§IV-D6).
pub struct ReduceLrOnPlateau {
    factor: f32,
    patience: usize,
    min_lr: f32,
    best: f32,
    wait: usize,
}

impl ReduceLrOnPlateau {
    /// Factor-of-2 reduction after `patience` non-improving observations.
    pub fn new(patience: usize) -> Self {
        Self::with_config(0.5, patience, 1e-6)
    }

    /// Fully configurable constructor.
    pub fn with_config(factor: f32, patience: usize, min_lr: f32) -> Self {
        assert!((0.0..1.0).contains(&factor), "factor must be in (0,1)");
        ReduceLrOnPlateau { factor, patience, min_lr, best: f32::INFINITY, wait: 0 }
    }

    /// Observe a validation metric (lower is better); reduces the optimizer
    /// LR when no improvement was seen for `patience` observations.
    /// Returns `true` if the LR was reduced.
    pub fn observe(&mut self, metric: f32, opt: &mut dyn Optimizer) -> bool {
        if metric < self.best - 1e-6 {
            self.best = metric;
            self.wait = 0;
            return false;
        }
        self.wait += 1;
        if self.wait > self.patience {
            self.wait = 0;
            let new_lr = (opt.lr() * self.factor).max(self.min_lr);
            opt.set_lr(new_lr);
            return true;
        }
        false
    }
}

/// Clip gradients to a maximum global L2 norm; returns the pre-clip norm.
pub fn clip_grad_norm(store: &ParamStore, max_norm: f32) -> f32 {
    let norm = store.grad_norm();
    if norm > max_norm && norm > 0.0 {
        store.scale_grads(max_norm / norm);
    }
    norm
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::ParamStore;

    fn quadratic_store() -> (ParamStore, crate::params::ParamId) {
        let mut store = ParamStore::new();
        let id = store.add("x", Tensor::from_vec(vec![5.0, -3.0], &[2]));
        (store, id)
    }

    /// Minimise f(x) = ½‖x‖² whose gradient is x itself.
    fn converges_with(opt: &mut dyn Optimizer, steps: usize) -> f32 {
        let (mut store, id) = quadratic_store();
        for _ in 0..steps {
            store.zero_grad();
            let x = store.value(id).clone();
            store.accumulate_grad(id, &x);
            opt.step(&mut store);
        }
        store.value(id).sq_norm()
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut opt = Sgd::new(0.1);
        assert!(converges_with(&mut opt, 200) < 1e-6);
    }

    #[test]
    fn sgd_momentum_converges_on_quadratic() {
        let mut opt = Sgd::with_momentum(0.05, 0.9);
        assert!(converges_with(&mut opt, 300) < 1e-4);
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut opt = Adam::new(0.1);
        assert!(converges_with(&mut opt, 400) < 1e-4);
    }

    #[test]
    fn adam_weight_decay_shrinks_unused_params() {
        let mut store = ParamStore::new();
        let id = store.add("w", Tensor::from_vec(vec![1.0], &[1]));
        let mut opt = Adam::with_config(0.01, 0.9, 0.999, 1e-8, 0.1);
        for _ in 0..50 {
            store.zero_grad(); // gradient stays zero; only decay acts
            opt.step(&mut store);
        }
        assert!(store.value(id).data()[0] < 1.0);
    }

    #[test]
    fn plateau_scheduler_halves_lr() {
        let mut opt = Sgd::new(1.0);
        let mut sched = ReduceLrOnPlateau::new(2);
        assert!(!sched.observe(1.0, &mut opt)); // improvement (vs inf)
        assert!(!sched.observe(1.0, &mut opt)); // wait 1
        assert!(!sched.observe(1.0, &mut opt)); // wait 2
        assert!(sched.observe(1.0, &mut opt)); // wait 3 > patience => reduce
        assert!((opt.lr() - 0.5).abs() < 1e-6);
        assert!(!sched.observe(0.5, &mut opt)); // improvement resets wait
        assert!((opt.lr() - 0.5).abs() < 1e-6);
    }

    #[test]
    fn plateau_scheduler_respects_min_lr() {
        let mut opt = Sgd::new(1e-6);
        let mut sched = ReduceLrOnPlateau::with_config(0.5, 0, 1e-6);
        sched.observe(1.0, &mut opt);
        sched.observe(1.0, &mut opt);
        assert!(opt.lr() >= 1e-6);
    }

    #[test]
    fn step_clipped_is_bitwise_equal_to_clip_then_step() {
        use irs_tensor::Tensor;
        // Same gradients through both paths, for both optimizers, both
        // above and below the clip threshold.
        for max_norm in [0.5f32, 100.0] {
            let grads =
                [Tensor::from_vec(vec![3.0, -4.0], &[2]), Tensor::from_vec(vec![0.25], &[1])];
            let build = || {
                let mut store = ParamStore::new();
                let a = store.add("a", Tensor::from_vec(vec![1.0, -2.0], &[2]));
                let b = store.add("b", Tensor::from_vec(vec![0.5], &[1]));
                (store, a, b)
            };
            {
                let run_adam = |fused: bool| {
                    let (mut store, a, b) = build();
                    let mut opt = Adam::new(0.05);
                    for _ in 0..3 {
                        store.zero_grad();
                        store.accumulate_grad(a, &grads[0]);
                        store.accumulate_grad(b, &grads[1]);
                        if fused {
                            opt.step_clipped(&mut store, max_norm);
                        } else {
                            clip_grad_norm(&store, max_norm);
                            opt.step(&mut store);
                        }
                    }
                    (store.value(a).clone(), store.value(b).clone())
                };
                let run_sgd = |fused: bool| {
                    let (mut store, a, b) = build();
                    let mut opt = Sgd::with_momentum(0.05, 0.9);
                    for _ in 0..3 {
                        store.zero_grad();
                        store.accumulate_grad(a, &grads[0]);
                        store.accumulate_grad(b, &grads[1]);
                        if fused {
                            opt.step_clipped(&mut store, max_norm);
                        } else {
                            clip_grad_norm(&store, max_norm);
                            opt.step(&mut store);
                        }
                    }
                    (store.value(a).clone(), store.value(b).clone())
                };
                let (af, bf) = run_adam(true);
                let (ar, br) = run_adam(false);
                assert_eq!(af.data(), ar.data(), "adam fused clip drifted (max {max_norm})");
                assert_eq!(bf.data(), br.data());
                let (af, bf) = run_sgd(true);
                let (ar, br) = run_sgd(false);
                assert_eq!(af.data(), ar.data(), "sgd fused clip drifted (max {max_norm})");
                assert_eq!(bf.data(), br.data());
            }
        }
    }

    #[test]
    fn clip_grad_norm_scales_down_only_when_needed() {
        let mut store = ParamStore::new();
        let id = store.add("w", Tensor::zeros(&[2]));
        store.accumulate_grad(id, &Tensor::from_vec(vec![3.0, 4.0], &[2]));
        let pre = clip_grad_norm(&store, 1.0);
        assert!((pre - 5.0).abs() < 1e-6);
        assert!((store.grad_norm() - 1.0).abs() < 1e-5);
        let pre2 = clip_grad_norm(&store, 10.0);
        assert!((pre2 - 1.0).abs() < 1e-5, "no further scaling expected");
    }
}
