//! Binary (de)serialisation of trained parameters.
//!
//! Format (`IRSP` v1, little-endian):
//!
//! ```text
//! magic   [u8; 4] = b"IRSP"
//! version u32     = 1
//! count   u32                         number of parameter tensors
//! per parameter:
//!   name_len u16, name bytes (UTF-8)
//!   ndim     u8,  dims u32 × ndim
//!   data     f32 × Π dims
//! ```
//!
//! Loading is *architecture-checked*: [`ParamStore::load_parameters`]
//! matches records by name against the already-registered parameters and
//! refuses shape or coverage mismatches, so a file can only be loaded into
//! the model architecture that produced it.

use bytes::{Buf, BufMut, BytesMut};
use std::io::{self, Read, Write};

use irs_tensor::Tensor;

use crate::params::ParamStore;

const MAGIC: &[u8; 4] = b"IRSP";
const VERSION: u32 = 1;

fn err(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

impl ParamStore {
    /// Serialise every parameter tensor (names, shapes, values).
    pub fn save_parameters<W: Write>(&self, mut writer: W) -> io::Result<()> {
        let mut buf = BytesMut::new();
        buf.put_slice(MAGIC);
        buf.put_u32_le(VERSION);
        buf.put_u32_le(self.num_tensors() as u32);
        for id in self.ids() {
            let name = self.name(id).as_bytes();
            if name.len() > u16::MAX as usize {
                return Err(err("parameter name too long"));
            }
            buf.put_u16_le(name.len() as u16);
            buf.put_slice(name);
            let value = self.value(id);
            let shape = value.shape();
            if shape.len() > u8::MAX as usize {
                return Err(err("parameter rank too large"));
            }
            buf.put_u8(shape.len() as u8);
            for &d in shape {
                buf.put_u32_le(d as u32);
            }
            for &x in value.data() {
                buf.put_f32_le(x);
            }
        }
        writer.write_all(&buf)
    }

    /// Load parameters into this (already constructed) store, matching
    /// records by name.  Every registered parameter must be covered and
    /// every record must match an existing parameter with the same shape.
    pub fn load_parameters<R: Read>(&mut self, mut reader: R) -> io::Result<()> {
        let mut raw = Vec::new();
        reader.read_to_end(&mut raw)?;
        let mut buf = &raw[..];

        let need = |buf: &&[u8], n: usize| -> io::Result<()> {
            if buf.remaining() < n {
                Err(err("truncated parameter file"))
            } else {
                Ok(())
            }
        };

        need(&buf, 8)?;
        let mut magic = [0u8; 4];
        buf.copy_to_slice(&mut magic);
        if &magic != MAGIC {
            return Err(err("not an IRSP parameter file"));
        }
        let version = buf.get_u32_le();
        if version != VERSION {
            return Err(err(format!("unsupported IRSP version {version}")));
        }
        need(&buf, 4)?;
        let count = buf.get_u32_le() as usize;
        if count != self.num_tensors() {
            return Err(err(format!(
                "parameter count mismatch: file has {count}, model has {}",
                self.num_tensors()
            )));
        }

        let mut loaded = vec![false; count];
        for _ in 0..count {
            need(&buf, 2)?;
            let name_len = buf.get_u16_le() as usize;
            need(&buf, name_len)?;
            let mut name_bytes = vec![0u8; name_len];
            buf.copy_to_slice(&mut name_bytes);
            let name = String::from_utf8(name_bytes).map_err(|_| err("invalid UTF-8 name"))?;

            need(&buf, 1)?;
            let ndim = buf.get_u8() as usize;
            need(&buf, 4 * ndim)?;
            let shape: Vec<usize> = (0..ndim).map(|_| buf.get_u32_le() as usize).collect();
            let numel: usize = shape.iter().product();
            need(&buf, 4 * numel)?;
            let data: Vec<f32> = (0..numel).map(|_| buf.get_f32_le()).collect();

            let id = self
                .ids()
                .find(|&id| self.name(id) == name)
                .ok_or_else(|| err(format!("unknown parameter '{name}' in file")))?;
            let idx = self.ids().position(|i| i == id).expect("id exists");
            if loaded[idx] {
                return Err(err(format!("duplicate parameter '{name}'")));
            }
            if self.value(id).shape() != shape.as_slice() {
                return Err(err(format!(
                    "shape mismatch for '{name}': file {:?}, model {:?}",
                    shape,
                    self.value(id).shape()
                )));
            }
            *self.value_mut(id) = Tensor::from_vec(data, &shape);
            loaded[idx] = true;
        }
        if !loaded.iter().all(|&l| l) {
            return Err(err("file does not cover every model parameter"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn sample_store(seed: u64) -> ParamStore {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut store = ParamStore::new();
        store.add("layer.w", Tensor::randn(&[3, 4], 1.0, &mut rng));
        store.add("layer.b", Tensor::randn(&[4], 1.0, &mut rng));
        store.add("emb.table", Tensor::randn(&[10, 4], 1.0, &mut rng));
        store
    }

    #[test]
    fn round_trip_preserves_all_values() {
        let src = sample_store(1);
        let mut bytes = Vec::new();
        src.save_parameters(&mut bytes).unwrap();

        let mut dst = sample_store(2); // different values, same architecture
        dst.load_parameters(&bytes[..]).unwrap();
        for (a, b) in src.ids().zip(dst.ids()) {
            assert_eq!(src.value(a), dst.value(b));
        }
    }

    #[test]
    fn rejects_wrong_magic_and_truncation() {
        let src = sample_store(1);
        let mut bytes = Vec::new();
        src.save_parameters(&mut bytes).unwrap();

        let mut dst = sample_store(2);
        let mut corrupted = bytes.clone();
        corrupted[0] = b'X';
        assert!(dst.load_parameters(&corrupted[..]).is_err());

        let truncated = &bytes[..bytes.len() / 2];
        assert!(dst.load_parameters(truncated).is_err());
    }

    #[test]
    fn rejects_architecture_mismatch() {
        let src = sample_store(1);
        let mut bytes = Vec::new();
        src.save_parameters(&mut bytes).unwrap();

        // Different shape.
        let mut wrong_shape = ParamStore::new();
        wrong_shape.add("layer.w", Tensor::zeros(&[3, 5]));
        wrong_shape.add("layer.b", Tensor::zeros(&[4]));
        wrong_shape.add("emb.table", Tensor::zeros(&[10, 4]));
        assert!(wrong_shape.load_parameters(&bytes[..]).is_err());

        // Different names.
        let mut wrong_names = ParamStore::new();
        wrong_names.add("other.w", Tensor::zeros(&[3, 4]));
        wrong_names.add("layer.b", Tensor::zeros(&[4]));
        wrong_names.add("emb.table", Tensor::zeros(&[10, 4]));
        assert!(wrong_names.load_parameters(&bytes[..]).is_err());

        // Different count.
        let mut wrong_count = ParamStore::new();
        wrong_count.add("layer.w", Tensor::zeros(&[3, 4]));
        assert!(wrong_count.load_parameters(&bytes[..]).is_err());
    }
}
