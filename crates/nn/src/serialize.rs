//! Binary (de)serialisation of trained parameters.
//!
//! Format (`IRSP` v1, little-endian):
//!
//! ```text
//! magic   [u8; 4] = b"IRSP"
//! version u32     = 1
//! count   u32                         number of parameter tensors
//! per parameter:
//!   name_len u16, name bytes (UTF-8)
//!   ndim     u8,  dims u32 × ndim
//!   data     f32 × Π dims
//! ```
//!
//! Loading is *architecture-checked*: [`ParamStore::load_parameters`]
//! matches records by name against the already-registered parameters and
//! refuses shape or coverage mismatches, so a file can only be loaded into
//! the model architecture that produced it.

use bytes::{Buf, BufMut, BytesMut};
use std::io::{self, Read, Write};

use irs_tensor::Tensor;

use crate::params::ParamStore;

const MAGIC: &[u8; 4] = b"IRSP";
const VERSION: u32 = 1;

fn err(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

impl ParamStore {
    /// Serialise every parameter tensor (names, shapes, values).
    pub fn save_parameters<W: Write>(&self, mut writer: W) -> io::Result<()> {
        let mut buf = BytesMut::new();
        buf.put_slice(MAGIC);
        buf.put_u32_le(VERSION);
        buf.put_u32_le(self.num_tensors() as u32);
        for id in self.ids() {
            let name = self.name(id).as_bytes();
            if name.len() > u16::MAX as usize {
                return Err(err("parameter name too long"));
            }
            buf.put_u16_le(name.len() as u16);
            buf.put_slice(name);
            let value = self.value(id);
            let shape = value.shape();
            if shape.len() > u8::MAX as usize {
                return Err(err("parameter rank too large"));
            }
            buf.put_u8(shape.len() as u8);
            for &d in shape {
                buf.put_u32_le(d as u32);
            }
            for &x in value.data() {
                buf.put_f32_le(x);
            }
        }
        writer.write_all(&buf)
    }

    /// Load parameters into this (already constructed) store, matching
    /// records by name.  Every registered parameter must be covered and
    /// every record must match an existing parameter with the same shape.
    pub fn load_parameters<R: Read>(&mut self, mut reader: R) -> io::Result<()> {
        let mut raw = Vec::new();
        reader.read_to_end(&mut raw)?;
        let mut records = IrspReader::new(&raw)?;
        if records.count() != self.num_tensors() {
            return Err(err(format!(
                "parameter count mismatch: file has {}, model has {}",
                records.count(),
                self.num_tensors()
            )));
        }

        let mut loaded = vec![false; records.count()];
        while let Some((name, shape, payload)) = records.next_record()? {
            let data: Vec<f32> = payload
                .chunks_exact(4)
                .map(|b| f32::from_le_bytes([b[0], b[1], b[2], b[3]]))
                .collect();

            let id = self
                .ids()
                .find(|&id| self.name(id) == name)
                .ok_or_else(|| err(format!("unknown parameter '{name}' in file")))?;
            let idx = self.ids().position(|i| i == id).expect("id exists");
            if loaded[idx] {
                return Err(err(format!("duplicate parameter '{name}'")));
            }
            if self.value(id).shape() != shape.as_slice() {
                return Err(err(format!(
                    "shape mismatch for '{name}': file {:?}, model {:?}",
                    shape,
                    self.value(id).shape()
                )));
            }
            *self.value_mut(id) = Tensor::from_vec(data, &shape);
            loaded[idx] = true;
        }
        if !loaded.iter().all(|&l| l) {
            return Err(err("file does not cover every model parameter"));
        }
        Ok(())
    }
}

/// Streaming reader over an IRSP byte buffer — the single copy of the
/// format grammar shared by [`ParamStore::load_parameters`] (which reads
/// the weight payloads) and [`irsp_summary`] (which skips them).
struct IrspReader<'a> {
    buf: &'a [u8],
    remaining: usize,
    count: usize,
}

impl<'a> IrspReader<'a> {
    /// Validate magic + version and read the record count.
    fn new(raw: &'a [u8]) -> io::Result<IrspReader<'a>> {
        let mut buf = raw;
        Self::need(&buf, 12)?;
        let mut magic = [0u8; 4];
        buf.copy_to_slice(&mut magic);
        if &magic != MAGIC {
            return Err(err("not an IRSP parameter file"));
        }
        let version = buf.get_u32_le();
        if version != VERSION {
            return Err(err(format!("unsupported IRSP version {version}")));
        }
        let count = buf.get_u32_le() as usize;
        Ok(IrspReader { buf, remaining: count, count })
    }

    fn need(buf: &&[u8], n: usize) -> io::Result<()> {
        if buf.remaining() < n {
            Err(err("truncated parameter file"))
        } else {
            Ok(())
        }
    }

    /// Number of records the header declares.
    fn count(&self) -> usize {
        self.count
    }

    /// The next `(name, shape, raw little-endian f32 payload)` record, or
    /// `None` after the last one.
    #[allow(clippy::type_complexity)]
    fn next_record(&mut self) -> io::Result<Option<(String, Vec<usize>, &'a [u8])>> {
        if self.remaining == 0 {
            return Ok(None);
        }
        self.remaining -= 1;
        let buf = &mut self.buf;
        Self::need(buf, 2)?;
        let name_len = buf.get_u16_le() as usize;
        Self::need(buf, name_len)?;
        let mut name_bytes = vec![0u8; name_len];
        buf.copy_to_slice(&mut name_bytes);
        let name = String::from_utf8(name_bytes).map_err(|_| err("invalid UTF-8 name"))?;

        Self::need(buf, 1)?;
        let ndim = buf.get_u8() as usize;
        Self::need(buf, 4 * ndim)?;
        let shape: Vec<usize> = (0..ndim).map(|_| buf.get_u32_le() as usize).collect();
        let numel: usize = shape.iter().product();
        Self::need(buf, 4 * numel)?;
        let payload = &buf[..4 * numel];
        buf.advance(4 * numel);
        Ok(Some((name, shape, payload)))
    }
}

/// Summary of one parameter record in an IRSP file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IrspRecord {
    /// Parameter name.
    pub name: String,
    /// Tensor shape.
    pub shape: Vec<usize>,
}

impl IrspRecord {
    /// Number of scalars in this record.
    pub fn numel(&self) -> usize {
        self.shape.iter().product()
    }
}

/// Read the header and per-parameter metadata of an IRSP file without
/// materialising the weights — what a serving frontend reports about a
/// snapshot before (or instead of) loading it into a model.
pub fn irsp_summary<R: Read>(mut reader: R) -> io::Result<Vec<IrspRecord>> {
    let mut raw = Vec::new();
    reader.read_to_end(&mut raw)?;
    let mut records = IrspReader::new(&raw)?;
    let mut out = Vec::with_capacity(records.count());
    while let Some((name, shape, _payload)) = records.next_record()? {
        out.push(IrspRecord { name, shape });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn sample_store(seed: u64) -> ParamStore {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut store = ParamStore::new();
        store.add("layer.w", Tensor::randn(&[3, 4], 1.0, &mut rng));
        store.add("layer.b", Tensor::randn(&[4], 1.0, &mut rng));
        store.add("emb.table", Tensor::randn(&[10, 4], 1.0, &mut rng));
        store
    }

    #[test]
    fn round_trip_preserves_all_values() {
        let src = sample_store(1);
        let mut bytes = Vec::new();
        src.save_parameters(&mut bytes).unwrap();

        let mut dst = sample_store(2); // different values, same architecture
        dst.load_parameters(&bytes[..]).unwrap();
        for (a, b) in src.ids().zip(dst.ids()) {
            assert_eq!(src.value(a), dst.value(b));
        }
    }

    #[test]
    fn summary_reports_names_and_shapes_without_loading() {
        let src = sample_store(1);
        let mut bytes = Vec::new();
        src.save_parameters(&mut bytes).unwrap();
        let records = irsp_summary(&bytes[..]).unwrap();
        assert_eq!(records.len(), 3);
        assert_eq!(records[0], IrspRecord { name: "layer.w".into(), shape: vec![3, 4] });
        assert_eq!(records[0].numel(), 12);
        assert_eq!(records[2].name, "emb.table");

        let truncated = &bytes[..bytes.len() - 3];
        assert!(irsp_summary(truncated).is_err());
    }

    #[test]
    fn rejects_wrong_magic_and_truncation() {
        let src = sample_store(1);
        let mut bytes = Vec::new();
        src.save_parameters(&mut bytes).unwrap();

        let mut dst = sample_store(2);
        let mut corrupted = bytes.clone();
        corrupted[0] = b'X';
        assert!(dst.load_parameters(&corrupted[..]).is_err());

        let truncated = &bytes[..bytes.len() / 2];
        assert!(dst.load_parameters(truncated).is_err());
    }

    #[test]
    fn rejects_architecture_mismatch() {
        let src = sample_store(1);
        let mut bytes = Vec::new();
        src.save_parameters(&mut bytes).unwrap();

        // Different shape.
        let mut wrong_shape = ParamStore::new();
        wrong_shape.add("layer.w", Tensor::zeros(&[3, 5]));
        wrong_shape.add("layer.b", Tensor::zeros(&[4]));
        wrong_shape.add("emb.table", Tensor::zeros(&[10, 4]));
        assert!(wrong_shape.load_parameters(&bytes[..]).is_err());

        // Different names.
        let mut wrong_names = ParamStore::new();
        wrong_names.add("other.w", Tensor::zeros(&[3, 4]));
        wrong_names.add("layer.b", Tensor::zeros(&[4]));
        wrong_names.add("emb.table", Tensor::zeros(&[10, 4]));
        assert!(wrong_names.load_parameters(&bytes[..]).is_err());

        // Different count.
        let mut wrong_count = ParamStore::new();
        wrong_count.add("layer.w", Tensor::zeros(&[3, 4]));
        assert!(wrong_count.load_parameters(&bytes[..]).is_err());
    }
}
