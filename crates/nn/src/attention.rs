//! Multi-head self-attention with pluggable additive attention biases.
//!
//! The bias hook is the extension point used by IRN's **Personalized
//! Impressionability Mask (PIM)**: the paper (§III-D3/4) adds, on top of the
//! causal mask, an attention-weight column for the objective item whose
//! magnitude is `w_t · r_u` where `r_u` is a learned per-user scalar.  The
//! [`AttnBias::BaseWithScaledColumn`] variant implements exactly that and is
//! differentiable with respect to `r_u`.

use irs_tensor::{Tensor, Var};

use crate::kvcache::LayerKv;
use crate::linear::Linear;
use crate::params::{FwdCtx, ParamStore};

/// Additive bias applied to raw attention scores `[B*H, T, T]`.
pub enum AttnBias<'g> {
    /// No bias (full bidirectional attention, e.g. Bert4Rec).
    None,
    /// A constant bias tensor of shape `[T, T]` (shared by every batch
    /// element and head) or `[B, T, T]` (per batch element, shared across
    /// heads).  Use `-1e9` entries to mask positions.
    Base(Tensor),
    /// Constant base plus a per-batch-element scaled column:
    /// `scores[b·H+h, q, col] += weight · scale[b]` for every head `h` and
    /// query `q`.  `scale` has shape `[B]` and receives gradients — this is
    /// the PIM objective column with learned impressionability.
    BaseWithScaledColumn {
        /// Constant part, `[T, T]` or `[B, T, T]`.
        base: Tensor,
        /// Key index of the objective item (usually `T−1` with pre-padding).
        col: usize,
        /// Per-batch-element learned scale `r_u`, shape `[B]`.
        scale: Var<'g>,
        /// The objective mask weight `w_t`.
        weight: f32,
    },
}

/// Add a constant `[T,T]` or `[B,T,T]` bias to `[B*H, T, T]` scores.
fn add_base<'g>(scores: Var<'g>, base: &Tensor, batch: usize, heads: usize) -> Var<'g> {
    let sshape = scores.shape();
    let (bh, t) = (sshape[0], sshape[1]);
    assert_eq!(bh, batch * heads, "scores leading dim mismatch");
    match base.ndim() {
        2 => {
            assert_eq!(base.shape(), &[t, t], "base mask must be [T,T]");
            scores.add_mask_bcast(base)
        }
        3 => {
            assert_eq!(base.shape(), &[batch, t, t], "base mask must be [B,T,T]");
            let g = scores.graph();
            let v = g.with_value(scores, |s| {
                let mut out = g.alloc_out(s.shape());
                let tt = t * t;
                for b in 0..batch {
                    let m = &base.data()[b * tt..(b + 1) * tt];
                    for h in 0..heads {
                        let off = (b * heads + h) * tt;
                        for ((o, &sv), &mm) in out.data_mut()[off..off + tt]
                            .iter_mut()
                            .zip(&s.data()[off..off + tt])
                            .zip(m)
                        {
                            *o = sv + mm;
                        }
                    }
                }
                out
            });
            g.custom_op(&[scores], v, |ctx| {
                ctx.accumulate_grad_out(0);
            })
        }
        n => panic!("base mask must be 2-D or 3-D, got {n}-D"),
    }
}

/// Add `weight * scale[b]` to column `col` of every row: the differentiable
/// PIM objective column.
fn add_scaled_column<'g>(
    scores: Var<'g>,
    col: usize,
    scale: Var<'g>,
    weight: f32,
    batch: usize,
    heads: usize,
) -> Var<'g> {
    let sshape = scores.shape();
    let (bh, t) = (sshape[0], sshape[1]);
    assert_eq!(bh, batch * heads, "scores leading dim mismatch");
    assert!(col < t, "column {col} out of range T={t}");
    assert_eq!(scale.shape(), vec![batch], "scale must be [B]");
    let g = scores.graph();
    let v = g.with_value(scores, |s| {
        g.with_value(scale, |ru| {
            let mut out = g.alloc_out(s.shape());
            out.data_mut().copy_from_slice(s.data());
            let tt = t * t;
            for b in 0..batch {
                let add = weight * ru.data()[b];
                for h in 0..heads {
                    let off = (b * heads + h) * tt;
                    for q in 0..t {
                        out.data_mut()[off + q * t + col] += add;
                    }
                }
            }
            out
        })
    });
    g.custom_op(&[scores, scale], v, move |ctx| {
        ctx.accumulate_grad_out(0);
        let go = ctx.grad_out();
        let tt = t * t;
        let dscale = ctx.grad_mut(1);
        for b in 0..batch {
            let mut acc = 0.0f32;
            for h in 0..heads {
                let off = (b * heads + h) * tt;
                for q in 0..t {
                    acc += go.data()[off + q * t + col];
                }
            }
            dscale.data_mut()[b] += weight * acc;
        }
    })
}

/// Multi-head scaled-dot-product self-attention.
#[derive(Debug, Clone)]
pub struct MultiHeadAttention {
    wq: Linear,
    wk: Linear,
    wv: Linear,
    wo: Linear,
    heads: usize,
    d: usize,
    dropout: f32,
}

impl MultiHeadAttention {
    /// Register the four projection matrices.
    pub fn new<R: rand::Rng + ?Sized>(
        store: &mut ParamStore,
        name: &str,
        d: usize,
        heads: usize,
        dropout: f32,
        rng: &mut R,
    ) -> Self {
        assert!(heads > 0 && d.is_multiple_of(heads), "d={d} must be divisible by heads={heads}");
        MultiHeadAttention {
            wq: Linear::new(store, &format!("{name}.wq"), d, d, true, rng),
            wk: Linear::new(store, &format!("{name}.wk"), d, d, true, rng),
            wv: Linear::new(store, &format!("{name}.wv"), d, d, true, rng),
            wo: Linear::new(store, &format!("{name}.wo"), d, d, true, rng),
            heads,
            d,
            dropout,
        }
    }

    /// Number of heads.
    pub fn heads(&self) -> usize {
        self.heads
    }

    /// Self-attention over `x: [B, T, D]` with the given bias.
    pub fn forward<'g>(&self, ctx: &FwdCtx<'g, '_>, x: Var<'g>, bias: &AttnBias<'g>) -> Var<'g> {
        let shape = x.shape();
        assert_eq!(shape.len(), 3, "attention expects 3-D input, got {shape:?}");
        let (b, _t, d) = (shape[0], shape[1], shape[2]);
        assert_eq!(d, self.d, "model dim mismatch");
        let dk = self.d / self.heads;

        // Head splits are zero-copy strided views; the NT score kernel and
        // the fused context op walk the view layouts directly and their
        // backward passes scatter into the projection outputs' root
        // gradient buffers — bitwise identical to the historical
        // split-copy → bmm → merge-copy chain, without the copies.
        let q = self.wq.forward3d(ctx, x).split_heads_view(self.heads);
        let k = self.wk.forward3d(ctx, x).split_heads_view(self.heads);
        let v = self.wv.forward3d(ctx, x).split_heads_view(self.heads);

        let mut scores = q.bmm_nt(k).mul_scalar(1.0 / (dk as f32).sqrt());
        scores = match bias {
            AttnBias::None => scores,
            AttnBias::Base(base) => add_base(scores, base, b, self.heads),
            AttnBias::BaseWithScaledColumn { base, col, scale, weight } => {
                let with_base = add_base(scores, base, b, self.heads);
                add_scaled_column(with_base, *col, *scale, *weight, b, self.heads)
            }
        };
        let attn = scores.softmax_last();
        let attn = ctx.dropout(attn, self.dropout);
        let out = attn.attn_bmm_merge(v, self.heads);
        self.wo.forward3d(ctx, out)
    }

    /// Tape-free eval-mode self-attention over `x: [B, T, D]` — the same
    /// kernel sequence as [`MultiHeadAttention::forward`] with dropout as
    /// the identity and the bias applied in place.
    pub fn infer(&self, store: &ParamStore, x: &Tensor, bias: &crate::infer::InferBias) -> Tensor {
        let shape = x.shape();
        assert_eq!(shape.len(), 3, "attention expects 3-D input, got {shape:?}");
        let (b, _t, d) = (shape[0], shape[1], shape[2]);
        assert_eq!(d, self.d, "model dim mismatch");
        let dk = self.d / self.heads;

        let q = crate::infer::split_heads_t(&self.wq.infer(store, x), self.heads);
        let k = crate::infer::split_heads_t(&self.wk.infer(store, x), self.heads);
        let v = crate::infer::split_heads_t(&self.wv.infer(store, x), self.heads);

        let mut scores = q.bmm(&k.transpose_last2()).scale(1.0 / (dk as f32).sqrt());
        crate::infer::add_bias_in_place(&mut scores, bias, b, self.heads);
        scores.softmax_last_in_place();
        let out = crate::infer::merge_heads_t(&scores.bmm(&v), self.heads);
        self.wo.infer(store, &out)
    }

    /// [`MultiHeadAttention::infer`] restricted to a single query position:
    /// keys/values cover the full sequence but only query row `q_pos` is
    /// projected, scored and contracted, returning `[B, D]`.
    ///
    /// Row `q_pos` of the full forward is reproduced exactly — each kernel
    /// touches the same operands in the same order, the other query rows
    /// simply never influence it.
    pub fn infer_single_query(
        &self,
        store: &ParamStore,
        x: &Tensor,
        bias: &crate::infer::InferBias,
        q_pos: usize,
    ) -> Tensor {
        let shape = x.shape();
        assert_eq!(shape.len(), 3, "attention expects 3-D input, got {shape:?}");
        let (b, t, d) = (shape[0], shape[1], shape[2]);
        assert_eq!(d, self.d, "model dim mismatch");
        assert!(q_pos < t, "query position {q_pos} out of range T={t}");
        let heads = self.heads;
        let dk = d / heads;
        let scale = 1.0 / (dk as f32).sqrt();

        let k = crate::infer::split_heads_t(&self.wk.infer(store, x), heads); // [B*H, T, dk]
        let v = crate::infer::split_heads_t(&self.wv.infer(store, x), heads);

        // Project only the query row.
        let mut xq = Vec::with_capacity(b * d);
        for bi in 0..b {
            let off = bi * t * d + q_pos * d;
            xq.extend_from_slice(&x.data()[off..off + d]);
        }
        let q = self.wq.infer(store, &Tensor::from_vec(xq, &[b, d])); // [B, D]

        // scores[b·H+h][j] = (q_row · k_j) / sqrt(dk), then bias row q_pos.
        let mut scores = Tensor::zeros(&[b * heads, t]);
        for bi in 0..b {
            for h in 0..heads {
                let q_row = &q.data()[bi * d + h * dk..bi * d + (h + 1) * dk];
                let k_mat = &k.data()[(bi * heads + h) * t * dk..(bi * heads + h + 1) * t * dk];
                let out_row =
                    &mut scores.data_mut()[(bi * heads + h) * t..(bi * heads + h + 1) * t];
                for (j, o) in out_row.iter_mut().enumerate() {
                    let mut acc = 0.0f32;
                    for (p, &qv) in q_row.iter().enumerate() {
                        acc += qv * k_mat[j * dk + p];
                    }
                    *o = acc * scale;
                }
            }
        }
        match bias.base.ndim() {
            2 => {
                for bh in 0..b * heads {
                    let row = &mut scores.data_mut()[bh * t..(bh + 1) * t];
                    for (o, j) in row.iter_mut().zip(0..t) {
                        *o += bias.base.at(&[q_pos, j]);
                    }
                }
            }
            3 => {
                for bi in 0..b {
                    for h in 0..heads {
                        let off = (bi * heads + h) * t;
                        for j in 0..t {
                            scores.data_mut()[off + j] += bias.base.at(&[bi, q_pos, j]);
                        }
                    }
                }
            }
            n => panic!("base mask must be 2-D or 3-D, got {n}-D"),
        }
        if let Some((col, ru, weight)) = &bias.scaled_column {
            for (bi, &r) in ru.iter().enumerate() {
                for h in 0..heads {
                    scores.data_mut()[(bi * heads + h) * t + col] += weight * r;
                }
            }
        }
        scores.softmax_last_in_place();

        // attn · V, merged back to [B, D].
        let mut out = vec![0.0f32; b * d];
        for bi in 0..b {
            for h in 0..heads {
                let attn = &scores.data()[(bi * heads + h) * t..(bi * heads + h + 1) * t];
                let v_mat = &v.data()[(bi * heads + h) * t * dk..(bi * heads + h + 1) * t * dk];
                let dst = &mut out[bi * d + h * dk..bi * d + (h + 1) * dk];
                for (j, &a) in attn.iter().enumerate() {
                    if a == 0.0 {
                        continue;
                    }
                    for (o, &vv) in dst.iter_mut().zip(&v_mat[j * dk..(j + 1) * dk]) {
                        *o += a * vv;
                    }
                }
            }
        }
        self.wo.infer(store, &Tensor::from_vec(out, &[b, d]))
    }

    /// Incremental attention step against a per-session K/V cache: score
    /// query row `x_row` (`[D]`, batch of one) against the cached context
    /// keys (ascending), its own key, and an optional trailing objective
    /// key, returning the projected attention output plus this row's own
    /// `wk`/`wv` rows for the caller to append to the cache.
    ///
    /// This reproduces [`MultiHeadAttention::infer_single_query`] under an
    /// append-only mask ([`append_only_objective_mask`]) exactly: scores
    /// accumulate per head in the same key order with the same `p`-ascending
    /// dot products, the bias is applied base-entries-first then
    /// scaled-column (mirroring `add_bias_in_place`), masked keys are never
    /// visited — their softmax weight is exactly `0.0` (the `exp` of a
    /// `-1e9` bias underflows) and the contraction skips zero weights, so
    /// omitting them leaves every float untouched.
    pub fn infer_append_row(
        &self,
        store: &ParamStore,
        x_row: &[f32],
        cached: &LayerKv,
        own_base: f32,
        own_scaled: Option<f32>,
        objective: Option<AppendKey<'_>>,
    ) -> AppendRowOut {
        let d = self.d;
        assert_eq!(x_row.len(), d, "query row width mismatch");
        let n = cached.len();
        if n > 0 {
            assert_eq!(cached.dim(), d, "cache width mismatch");
        }
        let heads = self.heads;
        let dk = d / heads;
        let scale = 1.0 / (dk as f32).sqrt();

        let x_t = Tensor::from_vec(x_row.to_vec(), &[1, d]);
        let q = self.wq.infer(store, &x_t);
        let own_k = self.wk.infer(store, &x_t);
        let own_v = self.wv.infer(store, &x_t);

        // Key order: cached context ascending, own row, objective last —
        // the column order of the append-only layout.
        let total = n + 1 + usize::from(objective.is_some());
        let mut scores = Tensor::zeros(&[heads, total]);
        for h in 0..heads {
            let q_row = &q.data()[h * dk..(h + 1) * dk];
            let row = &mut scores.data_mut()[h * total..(h + 1) * total];
            for (j, o) in row[..n].iter_mut().enumerate() {
                let k_row = &cached.key_row(j)[h * dk..(h + 1) * dk];
                let mut acc = 0.0f32;
                for (p, &qv) in q_row.iter().enumerate() {
                    acc += qv * k_row[p];
                }
                *o = acc * scale;
            }
            let mut acc = 0.0f32;
            for (p, &qv) in q_row.iter().enumerate() {
                acc += qv * own_k.data()[h * dk + p];
            }
            row[n] = acc * scale;
            if let Some(obj) = &objective {
                let mut acc = 0.0f32;
                for (p, &qv) in q_row.iter().enumerate() {
                    acc += qv * obj.k[h * dk + p];
                }
                row[n + 1] = acc * scale;
            }
        }

        // Bias, mirroring `add_bias_in_place`: every base entry first
        // (visible context/self keys carry a base of 0.0 in the
        // append-only mask; in IEEE this is an exact no-op on the
        // positive scores the softmax sees), then the scaled objective
        // column as a separate add.
        let ctx_base = 0.0f32;
        for h in 0..heads {
            let row = &mut scores.data_mut()[h * total..(h + 1) * total];
            for o in row[..n].iter_mut() {
                *o += ctx_base;
            }
            row[n] += own_base;
            if let Some(obj) = &objective {
                row[n + 1] += obj.base;
            }
        }
        if let Some(s) = own_scaled {
            for h in 0..heads {
                scores.data_mut()[h * total + n] += s;
            }
        }
        if let Some(obj) = &objective {
            if let Some(s) = obj.scaled {
                for h in 0..heads {
                    scores.data_mut()[h * total + n + 1] += s;
                }
            }
        }
        scores.softmax_last_in_place();

        // attn · V with the same skip-zero contraction as the batched path.
        let mut out = vec![0.0f32; d];
        for h in 0..heads {
            let attn = &scores.data()[h * total..(h + 1) * total];
            let dst = &mut out[h * dk..(h + 1) * dk];
            for (j, &a) in attn[..n].iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let v_row = &cached.value_row(j)[h * dk..(h + 1) * dk];
                for (o, &vv) in dst.iter_mut().zip(v_row) {
                    *o += a * vv;
                }
            }
            let a = attn[n];
            if a != 0.0 {
                for (o, &vv) in dst.iter_mut().zip(&own_v.data()[h * dk..(h + 1) * dk]) {
                    *o += a * vv;
                }
            }
            if let Some(obj) = &objective {
                let a = attn[n + 1];
                if a != 0.0 {
                    for (o, &vv) in dst.iter_mut().zip(&obj.v[h * dk..(h + 1) * dk]) {
                        *o += a * vv;
                    }
                }
            }
        }
        AppendRowOut {
            out: self.wo.infer(store, &Tensor::from_vec(out, &[1, d])),
            k: own_k.data().to_vec(),
            v: own_v.data().to_vec(),
        }
    }
}

/// The fixed objective key slot fed to
/// [`MultiHeadAttention::infer_append_row`]: its cached `wk`/`wv` rows
/// (un-split `[D]`) plus the attention-bias this query applies to the
/// objective column (`base` mirrors the mask entry, `scaled` the
/// personalized `w_t · r_u` column add).
pub struct AppendKey<'a> {
    /// Objective key row `[D]`.
    pub k: &'a [f32],
    /// Objective value row `[D]`.
    pub v: &'a [f32],
    /// Constant mask entry for the objective column (`w_t`, `0.0`, or
    /// `-1e9` when the objective is hidden).
    pub base: f32,
    /// Personalized column add `w_t · r_u`, applied after `base`.
    pub scaled: Option<f32>,
}

/// Result of one incremental attention (or block) step: the output row
/// and the query's own projection rows for the K/V cache.
pub struct AppendRowOut {
    /// Attention (or block) output, `[1, D]`.
    pub out: Tensor,
    /// This position's key row `[D]` (un-split).
    pub k: Vec<f32>,
    /// This position's value row `[D]` (un-split).
    pub v: Vec<f32>,
}

/// Build a causal (lower-triangular) `[t, t]` mask: `0` where key ≤ query,
/// `-1e9` where key > query.
pub fn causal_mask(t: usize) -> Tensor {
    Tensor::from_fn(&[t, t], |i| {
        let (q, k) = (i / t, i % t);
        if k <= q {
            0.0
        } else {
            -1e9
        }
    })
}

/// Causal mask that additionally reveals column `col` to every query (the
/// PIM "perceiving objective" mask, Fig. 5(b)), with `extra` added to that
/// column (the uniform objective weight `w_t`, mask Type 2).
pub fn causal_mask_with_objective(t: usize, col: usize, extra: f32) -> Tensor {
    let mut m = causal_mask(t);
    for q in 0..t {
        *m.at_mut(&[q, col]) = extra;
    }
    m
}

/// The append-only layout's mask: rows `0..t−1` are context positions
/// (causal among themselves, objective column `t−1` revealed with
/// `extra`, exactly as [`causal_mask_with_objective`]); row `t−1` is the
/// appended objective query slot and attends **only to itself** — its
/// context columns are re-masked with `-1e9`.
///
/// Self-only objective attention is what keeps deeper layers cacheable:
/// the objective row's output is a per-session constant instead of a
/// function of the growing context, so its K/V rows at every layer are
/// computed once.  (At one transformer layer the objective row never
/// feeds the logits and the two masks score identically; with more
/// layers this is a deliberate modeling change of the append-only
/// layout.)
pub fn append_only_objective_mask(t: usize, extra: f32) -> Tensor {
    assert!(t >= 1, "mask needs at least the objective row");
    let mut m = causal_mask_with_objective(t, t - 1, extra);
    for k in 0..t - 1 {
        *m.at_mut(&[t - 1, k]) = -1e9;
    }
    // The objective row's self entry is pinned to 0.0 rather than `extra`:
    // with `extra = -1e9` (objective hidden from context rows) an all
    // -1e9 row would soften into *uniform* attention over every key —
    // the opposite of self-only.  A finite self entry keeps the row's
    // softmax at exactly 1.0 on itself whatever `extra` is.
    *m.at_mut(&[t - 1, t - 1]) = 0.0;
    m
}

/// Per-batch key-padding mask `[B, T, T]`: for batch element `b`, keys
/// `0..pad_len[b]` are masked with `-1e9` (except on the diagonal, which
/// stays visible so fully-padded queries keep a finite softmax).
pub fn key_padding_mask(t: usize, pad_lens: &[usize]) -> Tensor {
    let b = pad_lens.len();
    let mut m = Tensor::zeros(&[b, t, t]);
    for (bi, &p) in pad_lens.iter().enumerate() {
        assert!(p <= t, "pad length {p} exceeds T={t}");
        for q in 0..t {
            for k in 0..p.min(t) {
                if k != q {
                    *m.at_mut(&[bi, q, k]) = -1e9;
                }
            }
        }
    }
    m
}

/// Elementwise combination of two masks (sum of biases).
pub fn combine_masks(a: &Tensor, b_mask: &Tensor) -> Tensor {
    assert_eq!(a.shape(), b_mask.shape(), "mask shapes differ");
    a.add(b_mask)
}

/// Expand a `[T,T]` mask to `[B,T,T]` and add a per-batch mask.
pub fn broadcast_then_add(shared: &Tensor, per_batch: &Tensor) -> Tensor {
    assert_eq!(shared.ndim(), 2);
    assert_eq!(per_batch.ndim(), 3);
    let t = shared.shape()[0];
    let b = per_batch.shape()[0];
    assert_eq!(per_batch.shape(), &[b, t, t]);
    let mut out = per_batch.clone();
    let tt = t * t;
    for bi in 0..b {
        for (o, &s) in out.data_mut()[bi * tt..(bi + 1) * tt].iter_mut().zip(shared.data()) {
            *o += s;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use irs_tensor::gradcheck::check_gradients;
    use irs_tensor::Graph;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(41)
    }

    #[test]
    fn causal_mask_blocks_future() {
        let m = causal_mask(3);
        assert_eq!(m.at(&[0, 0]), 0.0);
        assert_eq!(m.at(&[0, 1]), -1e9);
        assert_eq!(m.at(&[2, 1]), 0.0);
    }

    #[test]
    fn objective_mask_reveals_last_column() {
        let m = causal_mask_with_objective(4, 3, 0.5);
        for q in 0..4 {
            assert_eq!(m.at(&[q, 3]), 0.5, "objective column must be visible at row {q}");
        }
        assert_eq!(m.at(&[0, 1]), -1e9);
    }

    #[test]
    fn append_only_mask_isolates_objective_row() {
        let m = append_only_objective_mask(4, 0.5);
        // Context rows: causal among themselves, objective column revealed.
        assert_eq!(m.at(&[0, 1]), -1e9);
        assert_eq!(m.at(&[2, 1]), 0.0);
        for q in 0..3 {
            assert_eq!(m.at(&[q, 3]), 0.5, "objective column visible at row {q}");
        }
        // Objective row: self-only, with a finite self entry even when the
        // objective column bias would be -1e9.
        for k in 0..3 {
            assert_eq!(m.at(&[3, k]), -1e9, "objective row must not see context col {k}");
        }
        assert_eq!(m.at(&[3, 3]), 0.0);
        assert_eq!(append_only_objective_mask(4, -1e9).at(&[3, 3]), 0.0);
    }

    #[test]
    fn append_row_step_matches_single_query_infer() {
        // Replaying a sequence through `infer_append_row` must reproduce
        // each row of the batched infer under the append-only mask
        // bitwise, including the objective column handled as a trailing
        // `AppendKey`.
        use crate::infer::InferBias;
        use crate::kvcache::LayerKv;

        let mut r = rng();
        let mut store = ParamStore::new();
        let (d, heads, t) = (8, 2, 5);
        let mha = MultiHeadAttention::new(&mut store, "a", d, heads, 0.0, &mut r);
        let x = Tensor::randn(&[1, t, d], 1.0, &mut r);
        let (wt, ru) = (0.7f32, 0.3f32);

        // Cold reference: full infer with the append-only mask plus the
        // personalized scaled column.
        let bias = InferBias {
            base: append_only_objective_mask(t, 0.0),
            scaled_column: Some((t - 1, vec![ru], wt)),
        };
        let cold = mha.infer(&store, &x, &bias);

        // Incremental: objective row first (self-only, its own bias is the
        // overwritten mask entry plus the scaled column), then each
        // context row against the growing cache.
        let obj_row = &x.data()[(t - 1) * d..t * d];
        let empty = LayerKv::new(d);
        let obj = mha.infer_append_row(&store, obj_row, &empty, 0.0, Some(wt * ru), None);
        let mut kv = LayerKv::new(d);
        for i in 0..t - 1 {
            let row = &x.data()[i * d..(i + 1) * d];
            let key = AppendKey { k: &obj.k, v: &obj.v, base: 0.0, scaled: Some(wt * ru) };
            let step = mha.infer_append_row(&store, row, &kv, 0.0, None, Some(key));
            for (p, (&want, &got)) in
                cold.data()[i * d..(i + 1) * d].iter().zip(step.out.data()).enumerate()
            {
                assert_eq!(want.to_bits(), got.to_bits(), "row {i} dim {p}: {want} vs {got}");
            }
            kv.push(&step.k, &step.v);
        }
        // The objective row itself also matches the cold pass.
        for (p, (&want, &got)) in
            cold.data()[(t - 1) * d..t * d].iter().zip(obj.out.data()).enumerate()
        {
            assert_eq!(want.to_bits(), got.to_bits(), "objective dim {p}: {want} vs {got}");
        }
    }

    #[test]
    fn key_padding_mask_masks_prefix_keys() {
        let m = key_padding_mask(4, &[2, 0]);
        assert_eq!(m.at(&[0, 3, 0]), -1e9);
        assert_eq!(m.at(&[0, 3, 1]), -1e9);
        assert_eq!(m.at(&[0, 3, 2]), 0.0);
        assert_eq!(m.at(&[0, 0, 0]), 0.0, "diagonal stays visible");
        assert_eq!(m.at(&[1, 3, 0]), 0.0, "unpadded batch element untouched");
    }

    #[test]
    fn attention_output_shape() {
        let mut store = ParamStore::new();
        let mha = MultiHeadAttention::new(&mut store, "a", 8, 2, 0.0, &mut rng());
        let g = Graph::new();
        let ctx = FwdCtx::new(&g, &store, false, 0);
        let x = g.constant(Tensor::randn(&[3, 5, 8], 1.0, &mut rng()));
        let y = mha.forward(&ctx, x, &AttnBias::None);
        assert_eq!(y.shape(), vec![3, 5, 8]);
    }

    #[test]
    fn causal_attention_first_position_ignores_rest() {
        // With a causal mask, position 0's output must be invariant to
        // changes in later positions.
        let mut store = ParamStore::new();
        let mha = MultiHeadAttention::new(&mut store, "a", 4, 2, 0.0, &mut rng());
        let t = 4;
        let base = Tensor::randn(&[1, t, 4], 1.0, &mut rng());
        let run = |input: &Tensor| {
            let g = Graph::new();
            let ctx = FwdCtx::new(&g, &store, false, 0);
            let x = g.constant(input.clone());
            let y = mha.forward(&ctx, x, &AttnBias::Base(causal_mask(t)));
            y.value()
        };
        let y1 = run(&base);
        let mut perturbed = base.clone();
        for k in 0..4 {
            *perturbed.at_mut(&[0, 3, k]) += 1.0;
        }
        let y2 = run(&perturbed);
        for k in 0..4 {
            assert!((y1.at(&[0, 0, k]) - y2.at(&[0, 0, k])).abs() < 1e-6);
        }
        // ...but the last position must change.
        let moved = (0..4).any(|k| (y1.at(&[0, 3, k]) - y2.at(&[0, 3, k])).abs() > 1e-6);
        assert!(moved);
    }

    #[test]
    fn scaled_column_gradients_flow_into_scale() {
        // Directly exercise the PIM column op with gradcheck.
        let mut r = rng();
        let scores = Tensor::randn(&[4, 3, 3], 0.5, &mut r); // B=2, H=2
        let scale = Tensor::from_vec(vec![0.3, -0.2], &[2]);
        check_gradients(&[scores, scale], |_g, vars| {
            let out = super::add_scaled_column(vars[0], 2, vars[1], 0.7, 2, 2);
            let sm = out.softmax_last();
            sm.mul(sm).sum_all()
        });
    }

    #[test]
    fn per_batch_base_mask_applies_per_element() {
        let g = Graph::new();
        let scores = g.var(Tensor::zeros(&[4, 2, 2]), true); // B=2,H=2
        let mut base = Tensor::zeros(&[2, 2, 2]);
        *base.at_mut(&[1, 0, 1]) = -5.0;
        let out = super::add_base(scores, &base, 2, 2);
        let v = out.value();
        // Batch 0 heads untouched, batch 1 heads get the bias.
        assert_eq!(v.at(&[0, 0, 1]), 0.0);
        assert_eq!(v.at(&[2, 0, 1]), -5.0);
        assert_eq!(v.at(&[3, 0, 1]), -5.0);
    }

    #[test]
    fn attention_gradients_reach_all_projections() {
        let mut store = ParamStore::new();
        let mha = MultiHeadAttention::new(&mut store, "a", 4, 2, 0.0, &mut rng());
        let g = Graph::new();
        let ctx = FwdCtx::new(&g, &store, true, 0);
        let x = g.constant(Tensor::randn(&[2, 3, 4], 1.0, &mut rng()));
        let y = mha.forward(&ctx, x, &AttnBias::Base(causal_mask(3)));
        let loss = y.mul(y).mean_all();
        store.zero_grad();
        ctx.backprop(loss);
        for id in store.ids() {
            let gn = store.grad(id).sq_norm();
            assert!(gn > 0.0, "parameter {} received no gradient", store.name(id));
        }
    }
}
