//! # irs_nn — neural-network layers, losses and optimizers
//!
//! Built on the [`irs_tensor`] autograd engine, this crate provides the
//! building blocks shared by every model in the `influential-rs` workspace
//! (IRN, SASRec, Bert4Rec, GRU4Rec, Caser, …):
//!
//! * [`ParamStore`] / [`FwdCtx`] — named trainable parameters and the
//!   per-forward-pass binding of parameters into a [`irs_tensor::Graph`].
//! * Layers: [`Linear`], [`Embedding`], [`PositionalEncoding`],
//!   [`LayerNorm`], [`MultiHeadAttention`] (with pluggable additive
//!   attention biases — the hook used by IRN's Personalized
//!   Impressionability Mask), [`FeedForward`], [`TransformerBlock`],
//!   [`Gru`].
//! * Optimizers: [`Sgd`], [`Adam`], plus [`ReduceLrOnPlateau`] (the paper
//!   trains IRN with Adam and a halve-on-stagnation schedule) and global
//!   gradient-norm clipping.
//!
//! ## Example: one optimisation step
//!
//! ```
//! use irs_nn::{Adam, FwdCtx, Linear, Optimizer, ParamStore};
//! use irs_tensor::{Graph, Tensor};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let mut store = ParamStore::new();
//! let layer = Linear::new(&mut store, "probe", 4, 1, true, &mut rng);
//! let mut opt = Adam::new(1e-2);
//!
//! let g = Graph::new();
//! let ctx = FwdCtx::new(&g, &store, true, 0);
//! let x = g.constant(Tensor::ones(&[8, 4]));
//! let y = layer.forward2d(&ctx, x);
//! let loss = y.mul(y).mean_all();
//! ctx.backprop(loss);
//! drop(ctx);
//! opt.step(&mut store);
//! ```

mod attention;
mod embedding;
mod gru;
mod infer;
mod kvcache;
mod linear;
mod norm;
mod optim;
mod params;
mod serialize;
mod transformer;

pub use attention::{
    append_only_objective_mask, broadcast_then_add, causal_mask, causal_mask_with_objective,
    combine_masks, key_padding_mask, AppendKey, AppendRowOut, AttnBias, MultiHeadAttention,
};
pub use embedding::{Embedding, PositionalEncoding};
pub use gru::{Gru, GruCell, GruInferScratch, GruInferWeights, GruStreamState};
pub use infer::InferBias;
pub use kvcache::{CacheState, EncodingLayout, LayerKv};
pub use linear::{FeedForward, Linear};
pub use norm::LayerNorm;
pub use optim::{clip_grad_norm, Adam, Optimizer, ReduceLrOnPlateau, Sgd};
pub use params::{FwdCtx, ParamId, ParamStore};
pub use serialize::{irsp_summary, IrspRecord};
pub use transformer::TransformerBlock;

use irs_tensor::Var;

/// Activation functions selectable by feed-forward blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activation {
    /// Rectified linear unit.
    Relu,
    /// Gaussian error linear unit (tanh approximation).
    Gelu,
    /// Hyperbolic tangent.
    Tanh,
}

impl Activation {
    /// Apply the activation to a graph variable.
    pub fn apply(self, x: Var<'_>) -> Var<'_> {
        match self {
            Activation::Relu => x.relu(),
            Activation::Gelu => x.gelu(),
            Activation::Tanh => x.tanh(),
        }
    }

    /// In-place value-level apply (inference path); identical formulas to
    /// the graph ops, including the tanh-approximated GELU constants.
    pub fn apply_in_place(self, x: &mut irs_tensor::Tensor) {
        const C: f32 = 0.797_884_6; // sqrt(2/pi), as in Var::gelu
        for v in x.data_mut() {
            *v = match self {
                Activation::Relu => v.max(0.0),
                Activation::Gelu => 0.5 * *v * (1.0 + (C * (*v + 0.044715 * *v * *v * *v)).tanh()),
                Activation::Tanh => v.tanh(),
            };
        }
    }
}

/// Pairwise BPR loss `-log σ(pos − neg)` averaged over a batch.
///
/// `pos` and `neg` are score tensors of identical shape.  Used by the BPR
/// and TransRec baselines.  Computed via the numerically stable softplus
/// form `softplus(−z) = relu(−z) + ln(1 + exp(−|z|))` with `z = pos − neg`.
pub fn bpr_loss<'g>(pos: Var<'g>, neg: Var<'g>) -> Var<'g> {
    let z = pos.sub(neg);
    let nz = z.neg();
    let relu_part = nz.relu();
    let absz = z.relu().add(nz.relu());
    let exp_term = absz.neg().exp_op();
    let log_term = exp_term.add_scalar(1.0).ln_op();
    relu_part.add(log_term).mean_all()
}

/// Extension ops used by [`bpr_loss`] that are generally useful.
pub trait VarExt<'g> {
    /// Elementwise exponential.
    fn exp_op(self) -> Var<'g>;
    /// Elementwise natural logarithm.
    fn ln_op(self) -> Var<'g>;
}

impl<'g> VarExt<'g> for Var<'g> {
    fn exp_op(self) -> Var<'g> {
        let g = self.graph();
        let v = g.with_value(self, |t| t.map(f32::exp));
        g.custom_op(&[self], v, |ctx| {
            let y = ctx.out_value().clone();
            let delta = ctx.grad_out().mul(&y);
            ctx.accumulate(0, &delta);
        })
    }

    fn ln_op(self) -> Var<'g> {
        let g = self.graph();
        let v = g.with_value(self, |t| t.map(f32::ln));
        g.custom_op(&[self], v, |ctx| {
            let x = ctx.value(0).clone();
            let go = ctx.grad_out().clone();
            let delta = go.zip_map(&x, |g, x| g / x);
            ctx.accumulate(0, &delta);
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use irs_tensor::gradcheck::check_gradients;
    use irs_tensor::{Graph, Tensor};
    use rand::SeedableRng;

    #[test]
    fn bpr_loss_decreases_with_margin() {
        let g = Graph::new();
        let pos_hi = g.constant(Tensor::full(&[4], 3.0));
        let pos_lo = g.constant(Tensor::full(&[4], 0.1));
        let neg = g.constant(Tensor::zeros(&[4]));
        let l_hi = bpr_loss(pos_hi, neg).item();
        let l_lo = bpr_loss(pos_lo, neg).item();
        assert!(l_hi < l_lo, "larger margin must mean smaller loss: {l_hi} vs {l_lo}");
        assert!(l_hi > 0.0);
    }

    #[test]
    fn bpr_loss_matches_reference_formula() {
        let g = Graph::new();
        let pos = g.constant(Tensor::from_vec(vec![1.2, -0.3], &[2]));
        let neg = g.constant(Tensor::from_vec(vec![0.2, 0.4], &[2]));
        let loss = bpr_loss(pos, neg).item();
        let refv = [(1.2f32 - 0.2), (-0.3f32 - 0.4)]
            .iter()
            .map(|&z| -(1.0 / (1.0 + (-z).exp())).ln())
            .sum::<f32>()
            / 2.0;
        assert!((loss - refv).abs() < 1e-5, "{loss} vs {refv}");
    }

    #[test]
    fn bpr_loss_gradcheck() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let pos = Tensor::randn(&[6], 1.0, &mut rng);
        let neg = Tensor::randn(&[6], 1.0, &mut rng);
        check_gradients(&[pos, neg], |_g, vars| bpr_loss(vars[0], vars[1]));
    }

    #[test]
    fn exp_ln_gradchecks() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        let x = Tensor::randn(&[5], 0.5, &mut rng);
        check_gradients(&[x], |_g, vars| vars[0].exp_op().sum_all());
        let y = Tensor::rand_uniform(&[5], 0.5, 2.0, &mut rng);
        check_gradients(&[y], |_g, vars| vars[0].ln_op().sum_all());
    }

    #[test]
    fn activation_apply_dispatches() {
        let g = Graph::new();
        let x = g.constant(Tensor::from_vec(vec![-1.0, 1.0], &[2]));
        assert_eq!(Activation::Relu.apply(x).value().data(), &[0.0, 1.0]);
        let t = Activation::Tanh.apply(x).value();
        assert!((t.data()[1] - 1f32.tanh()).abs() < 1e-6);
    }
}
