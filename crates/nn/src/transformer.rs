//! A post-LN transformer block: self-attention and feed-forward sublayers
//! with residual connections, as used by SASRec, Bert4Rec and IRN.

use irs_tensor::Var;

use crate::attention::{AttnBias, MultiHeadAttention};
use crate::linear::FeedForward;
use crate::norm::LayerNorm;
use crate::params::{FwdCtx, ParamStore};
use crate::Activation;

/// One decoder/encoder layer: `x = LN(x + Attn(x)); x = LN(x + FF(x))`.
#[derive(Debug, Clone)]
pub struct TransformerBlock {
    attn: MultiHeadAttention,
    ff: FeedForward,
    ln1: LayerNorm,
    ln2: LayerNorm,
    dropout: f32,
}

impl TransformerBlock {
    /// Register a block of width `d` with `heads` attention heads and a
    /// feed-forward hidden size of `4·d`.
    pub fn new<R: rand::Rng + ?Sized>(
        store: &mut ParamStore,
        name: &str,
        d: usize,
        heads: usize,
        dropout: f32,
        rng: &mut R,
    ) -> Self {
        TransformerBlock {
            attn: MultiHeadAttention::new(store, &format!("{name}.attn"), d, heads, dropout, rng),
            ff: FeedForward::new(
                store,
                &format!("{name}.ff"),
                d,
                4 * d,
                Activation::Gelu,
                dropout,
                rng,
            ),
            ln1: LayerNorm::new(store, &format!("{name}.ln1"), d),
            ln2: LayerNorm::new(store, &format!("{name}.ln2"), d),
            dropout,
        }
    }

    /// Apply the block to `x: [B, T, D]` under the given attention bias.
    pub fn forward<'g>(&self, ctx: &FwdCtx<'g, '_>, x: Var<'g>, bias: &AttnBias<'g>) -> Var<'g> {
        let a = self.attn.forward(ctx, x, bias);
        let a = ctx.dropout(a, self.dropout);
        let x = self.ln1.forward(ctx, x.add(a));
        let f = self.ff.forward(ctx, x);
        let f = ctx.dropout(f, self.dropout);
        self.ln2.forward(ctx, x.add(f))
    }

    /// Tape-free eval-mode apply: same sublayer order as
    /// [`TransformerBlock::forward`] with dropout as the identity;
    /// residual adds and layer norms mutate in place.
    pub fn infer(
        &self,
        store: &ParamStore,
        x: &irs_tensor::Tensor,
        bias: &crate::infer::InferBias,
    ) -> irs_tensor::Tensor {
        let a = self.attn.infer(store, x, bias);
        let mut h = x.add(&a);
        self.ln1.infer_in_place(store, &mut h);
        let f = self.ff.infer(store, &h);
        h.add_assign(&f);
        self.ln2.infer_in_place(store, &mut h);
        h
    }

    /// Final-layer shortcut: when only position `q_pos` feeds downstream
    /// consumers (next-item logits), attention keys/values still span the
    /// whole sequence but the query, residuals, norms and feed-forward run
    /// for that single row, returning `[B, D]` — exactly row `q_pos` of
    /// [`TransformerBlock::infer`].
    pub fn infer_last_query(
        &self,
        store: &ParamStore,
        x: &irs_tensor::Tensor,
        bias: &crate::infer::InferBias,
        q_pos: usize,
    ) -> irs_tensor::Tensor {
        let (b, t, d) = (x.shape()[0], x.shape()[1], x.shape()[2]);
        assert!(q_pos < t, "query position {q_pos} out of range T={t}");
        let a = self.attn.infer_single_query(store, x, bias, q_pos);
        let mut h = a; // reuse: h = x[., q_pos, :] + a
        for bi in 0..b {
            let src = bi * t * d + q_pos * d;
            for (o, &xv) in
                h.data_mut()[bi * d..(bi + 1) * d].iter_mut().zip(&x.data()[src..src + d])
            {
                *o += xv;
            }
        }
        self.ln1.infer_in_place(store, &mut h);
        let f = self.ff.infer(store, &h);
        h.add_assign(&f);
        self.ln2.infer_in_place(store, &mut h);
        h
    }

    /// Incremental single-row block step against a per-session K/V cache
    /// (see [`MultiHeadAttention::infer_append_row`]): attention over the
    /// cached keys plus this row and the optional objective slot, then the
    /// residual/norm/feed-forward sublayers in the same order as
    /// [`TransformerBlock::infer_last_query`].  `out` is this row's block
    /// output `[1, D]`; `k`/`v` are its projection rows for the caller to
    /// append to the cache.
    pub fn infer_append_row(
        &self,
        store: &ParamStore,
        x_row: &[f32],
        cached: &crate::kvcache::LayerKv,
        own_base: f32,
        own_scaled: Option<f32>,
        objective: Option<crate::attention::AppendKey<'_>>,
    ) -> crate::attention::AppendRowOut {
        let mut r =
            self.attn.infer_append_row(store, x_row, cached, own_base, own_scaled, objective);
        // h = a + x (residual), matching `infer_last_query`'s add order.
        for (o, &xv) in r.out.data_mut().iter_mut().zip(x_row) {
            *o += xv;
        }
        self.ln1.infer_in_place(store, &mut r.out);
        let f = self.ff.infer(store, &r.out);
        r.out.add_assign(&f);
        self.ln2.infer_in_place(store, &mut r.out);
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attention::causal_mask;
    use irs_tensor::{Graph, Tensor};
    use rand::SeedableRng;

    #[test]
    fn block_preserves_shape_and_trains() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(51);
        let mut store = ParamStore::new();
        let block = TransformerBlock::new(&mut store, "b", 8, 2, 0.0, &mut rng);
        let g = Graph::new();
        let ctx = FwdCtx::new(&g, &store, true, 0);
        let x = g.constant(Tensor::randn(&[2, 4, 8], 1.0, &mut rng));
        let y = block.forward(&ctx, x, &AttnBias::Base(causal_mask(4)));
        assert_eq!(y.shape(), vec![2, 4, 8]);
        let loss = y.mul(y).mean_all();
        store.zero_grad();
        ctx.backprop(loss);
        let any_grad = store.ids().any(|id| store.grad(id).sq_norm() > 0.0);
        assert!(any_grad);
    }
}
