//! Token embedding tables and sinusoidal / learned positional encodings.

use irs_tensor::{Tensor, Var};

use crate::params::{embedding_init, FwdCtx, ParamId, ParamStore};

/// A learned embedding table `[vocab, dim]`.
#[derive(Debug, Clone)]
pub struct Embedding {
    table: ParamId,
    vocab: usize,
    dim: usize,
}

impl Embedding {
    /// Register a randomly initialised table.
    pub fn new<R: rand::Rng + ?Sized>(
        store: &mut ParamStore,
        name: &str,
        vocab: usize,
        dim: usize,
        rng: &mut R,
    ) -> Self {
        let table = store.add(format!("{name}.table"), embedding_init(vocab, dim, rng));
        Embedding { table, vocab, dim }
    }

    /// Register a table initialised from pre-trained vectors (the paper
    /// initialises IRN's item embeddings from item2vec, §III-D1).
    pub fn from_pretrained(store: &mut ParamStore, name: &str, table: Tensor) -> Self {
        assert_eq!(table.ndim(), 2, "embedding table must be 2-D");
        let vocab = table.shape()[0];
        let dim = table.shape()[1];
        let table = store.add(format!("{name}.table"), table);
        Embedding { table, vocab, dim }
    }

    /// Vocabulary size.
    pub fn vocab(&self) -> usize {
        self.vocab
    }

    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The table parameter id (for weight tying).
    pub fn table_id(&self) -> ParamId {
        self.table
    }

    /// Look up a flat index list -> `[indices.len(), dim]`.
    pub fn lookup<'g>(&self, ctx: &FwdCtx<'g, '_>, indices: &[usize]) -> Var<'g> {
        for &i in indices {
            assert!(i < self.vocab, "embedding index {i} out of vocab {}", self.vocab);
        }
        ctx.param(self.table).gather_rows(indices)
    }

    /// Look up a `[b, t]` index matrix -> `[b, t, dim]`.
    pub fn lookup_seq<'g>(&self, ctx: &FwdCtx<'g, '_>, indices: &[Vec<usize>]) -> Var<'g> {
        let b = indices.len();
        assert!(b > 0, "lookup_seq of empty batch");
        let t = indices[0].len();
        let flat: Vec<usize> = indices
            .iter()
            .flat_map(|row| {
                assert_eq!(row.len(), t, "ragged batch in lookup_seq");
                row.iter().copied()
            })
            .collect();
        self.lookup(ctx, &flat).reshape(&[b, t, self.dim])
    }

    /// Tape-free flat lookup -> `[indices.len(), dim]`; gathers straight
    /// from the stored table without cloning it.
    pub fn infer_lookup(&self, store: &ParamStore, indices: &[usize]) -> Tensor {
        let table = store.value(self.table);
        let mut out = Vec::with_capacity(indices.len() * self.dim);
        for &i in indices {
            assert!(i < self.vocab, "embedding index {i} out of vocab {}", self.vocab);
            out.extend_from_slice(&table.data()[i * self.dim..(i + 1) * self.dim]);
        }
        Tensor::from_vec(out, &[indices.len(), self.dim])
    }

    /// Tape-free `[b, t]` lookup -> `[b, t, dim]`; gathers straight from
    /// the stored table without cloning it.
    pub fn infer_lookup_seq(&self, store: &ParamStore, indices: &[Vec<usize>]) -> Tensor {
        let b = indices.len();
        assert!(b > 0, "lookup_seq of empty batch");
        let t = indices[0].len();
        let table = store.value(self.table);
        let mut out = Vec::with_capacity(b * t * self.dim);
        for row in indices {
            assert_eq!(row.len(), t, "ragged batch in lookup_seq");
            for &i in row {
                assert!(i < self.vocab, "embedding index {i} out of vocab {}", self.vocab);
                out.extend_from_slice(&table.data()[i * self.dim..(i + 1) * self.dim]);
            }
        }
        Tensor::from_vec(out, &[b, t, self.dim])
    }
}

/// Learned positional encoding `[max_len, dim]`, added to token embeddings.
#[derive(Debug, Clone)]
pub struct PositionalEncoding {
    table: ParamId,
    max_len: usize,
    dim: usize,
}

impl PositionalEncoding {
    /// Register a learned positional table (SASRec/Bert4Rec style).
    pub fn new<R: rand::Rng + ?Sized>(
        store: &mut ParamStore,
        name: &str,
        max_len: usize,
        dim: usize,
        rng: &mut R,
    ) -> Self {
        let table = store.add(format!("{name}.pos"), embedding_init(max_len, dim, rng));
        PositionalEncoding { table, max_len, dim }
    }

    /// Maximum supported sequence length.
    pub fn max_len(&self) -> usize {
        self.max_len
    }

    /// Add positions `0..t` to a `[b, t, dim]` tensor.
    ///
    /// One fused op instead of the historical tile-indices → gather →
    /// reshape → add chain (no per-step index `Vec`, three fewer tape
    /// nodes): the forward broadcasts table rows over the batch and the
    /// backward passes the upstream gradient through to `x` while
    /// scatter-adding it into the table rows in the same batch-major
    /// order the gather op used — values and gradients are bitwise
    /// unchanged.
    pub fn add_to<'g>(&self, ctx: &FwdCtx<'g, '_>, x: Var<'g>) -> Var<'g> {
        let shape = x.shape();
        assert_eq!(shape.len(), 3, "positional encoding expects 3-D input");
        let (b, t, d) = (shape[0], shape[1], shape[2]);
        assert_eq!(d, self.dim, "dim mismatch");
        assert!(t <= self.max_len, "sequence length {t} exceeds max_len {}", self.max_len);
        let table = ctx.param(self.table);
        let g = ctx.graph;
        let v = g.with_value(x, |xv| {
            g.with_value(table, |tb| {
                let mut out = g.alloc_out(xv.shape());
                for (r, (o_row, x_row)) in
                    out.data_mut().chunks_mut(d).zip(xv.data().chunks(d)).enumerate()
                {
                    let ti = r % t;
                    let p_row = &tb.data()[ti * d..(ti + 1) * d];
                    for ((o, &xe), &pe) in o_row.iter_mut().zip(x_row).zip(p_row) {
                        *o = xe + pe;
                    }
                }
                out
            })
        });
        g.custom_op(&[x, table], v, move |bctx| {
            bctx.accumulate_grad_out(0);
            if bctx.parent_needs_grad(1) {
                let go = bctx.grad_out();
                let dt = bctx.grad_mut(1);
                for bi in 0..b {
                    for ti in 0..t {
                        let src = &go.data()[(bi * t + ti) * d..(bi * t + ti + 1) * d];
                        let dst = &mut dt.data_mut()[ti * d..(ti + 1) * d];
                        for (o, &gv) in dst.iter_mut().zip(src) {
                            *o += gv;
                        }
                    }
                }
            }
        })
    }

    /// Tape-free add of position `pos`'s row to a single `[dim]` slice —
    /// the per-row building block the incremental (append-only) encode
    /// uses, elementwise-identical to what
    /// [`PositionalEncoding::infer_add_in_place`] does to that row.
    pub fn infer_add_row_in_place(&self, store: &ParamStore, x: &mut [f32], pos: usize) {
        assert_eq!(x.len(), self.dim, "dim mismatch");
        assert!(pos < self.max_len, "position {pos} exceeds max_len {}", self.max_len);
        let table = store.value(self.table);
        for (o, &p) in x.iter_mut().zip(&table.data()[pos * self.dim..(pos + 1) * self.dim]) {
            *o += p;
        }
    }

    /// Tape-free in-place variant of [`PositionalEncoding::add_to`].
    pub fn infer_add_in_place(&self, store: &ParamStore, x: &mut Tensor) {
        let shape = x.shape().to_vec();
        assert_eq!(shape.len(), 3, "positional encoding expects 3-D input");
        let (b, t, d) = (shape[0], shape[1], shape[2]);
        assert_eq!(d, self.dim, "dim mismatch");
        assert!(t <= self.max_len, "sequence length {t} exceeds max_len {}", self.max_len);
        let table = store.value(self.table);
        for bi in 0..b {
            for ti in 0..t {
                let off = bi * t * d + ti * d;
                for (o, &p) in
                    x.data_mut()[off..off + d].iter_mut().zip(&table.data()[ti * d..(ti + 1) * d])
                {
                    *o += p;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use irs_tensor::Graph;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(21)
    }

    #[test]
    fn lookup_shapes_and_rows() {
        let mut store = ParamStore::new();
        let emb = Embedding::new(&mut store, "e", 10, 4, &mut rng());
        let g = Graph::new();
        let ctx = FwdCtx::new(&g, &store, false, 0);
        let v = emb.lookup(&ctx, &[2, 7, 2]);
        assert_eq!(v.shape(), vec![3, 4]);
        let table = store.value(emb.table_id()).clone();
        assert_eq!(&v.value().data()[..4], &table.data()[8..12]);
        assert_eq!(&v.value().data()[8..12], &table.data()[8..12]);
    }

    #[test]
    fn lookup_seq_reshapes() {
        let mut store = ParamStore::new();
        let emb = Embedding::new(&mut store, "e", 10, 3, &mut rng());
        let g = Graph::new();
        let ctx = FwdCtx::new(&g, &store, false, 0);
        let v = emb.lookup_seq(&ctx, &[vec![0, 1], vec![2, 3]]);
        assert_eq!(v.shape(), vec![2, 2, 3]);
    }

    #[test]
    fn from_pretrained_preserves_vectors() {
        let mut store = ParamStore::new();
        let table = Tensor::from_fn(&[4, 2], |i| i as f32);
        let emb = Embedding::from_pretrained(&mut store, "e", table.clone());
        assert_eq!(store.value(emb.table_id()), &table);
        assert_eq!(emb.vocab(), 4);
        assert_eq!(emb.dim(), 2);
    }

    #[test]
    fn positional_encoding_adds_same_offset_per_position() {
        let mut store = ParamStore::new();
        let pe = PositionalEncoding::new(&mut store, "p", 8, 3, &mut rng());
        let g = Graph::new();
        let ctx = FwdCtx::new(&g, &store, false, 0);
        let x = g.constant(Tensor::zeros(&[2, 4, 3]));
        let y = pe.add_to(&ctx, x);
        let v = y.value();
        // Batch elements receive identical positional rows.
        for t in 0..4 {
            for k in 0..3 {
                assert_eq!(v.at(&[0, t, k]), v.at(&[1, t, k]));
            }
        }
    }

    #[test]
    #[should_panic(expected = "exceeds max_len")]
    fn positional_encoding_rejects_long_sequences() {
        let mut store = ParamStore::new();
        let pe = PositionalEncoding::new(&mut store, "p", 2, 3, &mut rng());
        let g = Graph::new();
        let ctx = FwdCtx::new(&g, &store, false, 0);
        let x = g.constant(Tensor::zeros(&[1, 4, 3]));
        let _ = pe.add_to(&ctx, x);
    }
}
