//! Property-based tests for layers and optimizers.

use irs_nn::{
    causal_mask, causal_mask_with_objective, Adam, AttnBias, FwdCtx, Gru, LayerNorm, Linear,
    MultiHeadAttention, Optimizer, ParamStore, Sgd,
};
use irs_tensor::{Graph, Tensor};
use proptest::prelude::*;
use rand::SeedableRng;

fn rng(seed: u64) -> rand::rngs::StdRng {
    rand::rngs::StdRng::seed_from_u64(seed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Linear layers are affine: f(αx) − f(0) = α(f(x) − f(0)).
    #[test]
    fn linear_is_affine(seed in 0u64..1000, alpha in -2.0f32..2.0) {
        let mut r = rng(seed);
        let mut store = ParamStore::new();
        let l = Linear::new(&mut store, "l", 4, 3, true, &mut r);
        let x = Tensor::randn(&[2, 4], 1.0, &mut r);

        let f = |input: Tensor| -> Tensor {
            let g = Graph::new();
            let ctx = FwdCtx::new(&g, &store, false, 0);
            let v = g.constant(input);
            l.forward2d(&ctx, v).value()
        };
        let f0 = f(Tensor::zeros(&[2, 4]));
        let fx = f(x.clone());
        let fax = f(x.scale(alpha));
        for ((a, b), z) in fax.data().iter().zip(fx.data()).zip(f0.data()) {
            let lhs = a - z;
            let rhs = alpha * (b - z);
            prop_assert!((lhs - rhs).abs() < 1e-3 * (1.0 + lhs.abs().max(rhs.abs())));
        }
    }

    /// Causal attention: perturbing position j never changes outputs at
    /// positions < j.
    #[test]
    fn causal_attention_is_causal(seed in 0u64..1000, perturb_pos in 1usize..5) {
        let mut r = rng(seed);
        let mut store = ParamStore::new();
        let mha = MultiHeadAttention::new(&mut store, "a", 8, 2, 0.0, &mut r);
        let t = 5;
        let base = Tensor::randn(&[1, t, 8], 1.0, &mut r);
        let run = |input: &Tensor| {
            let g = Graph::new();
            let ctx = FwdCtx::new(&g, &store, false, 0);
            let x = g.constant(input.clone());
            mha.forward(&ctx, x, &AttnBias::Base(causal_mask(t))).value()
        };
        let y1 = run(&base);
        let mut perturbed = base.clone();
        for k in 0..8 {
            *perturbed.at_mut(&[0, perturb_pos, k]) += 1.5;
        }
        let y2 = run(&perturbed);
        for p in 0..perturb_pos {
            for k in 0..8 {
                prop_assert!(
                    (y1.at(&[0, p, k]) - y2.at(&[0, p, k])).abs() < 1e-5,
                    "position {p} changed when perturbing {perturb_pos}"
                );
            }
        }
    }

    /// The objective-revealing mask breaks causality exactly at the
    /// objective column: perturbing the LAST position now changes earlier
    /// outputs.
    #[test]
    fn objective_mask_reveals_objective(seed in 0u64..200) {
        let mut r = rng(seed);
        let mut store = ParamStore::new();
        let mha = MultiHeadAttention::new(&mut store, "a", 8, 2, 0.0, &mut r);
        let t = 5;
        let base = Tensor::randn(&[1, t, 8], 1.0, &mut r);
        let run = |input: &Tensor| {
            let g = Graph::new();
            let ctx = FwdCtx::new(&g, &store, false, 0);
            let x = g.constant(input.clone());
            mha.forward(&ctx, x, &AttnBias::Base(causal_mask_with_objective(t, t - 1, 1.0)))
                .value()
        };
        let y1 = run(&base);
        let mut perturbed = base.clone();
        for k in 0..8 {
            *perturbed.at_mut(&[0, t - 1, k]) += 2.0;
        }
        let y2 = run(&perturbed);
        let moved = (0..8).any(|k| (y1.at(&[0, 0, k]) - y2.at(&[0, 0, k])).abs() > 1e-6);
        prop_assert!(moved, "objective perturbation must reach position 0");
    }

    /// LayerNorm output row norms are bounded by ~sqrt(d) for unit gamma.
    #[test]
    fn layer_norm_output_is_bounded(seed in 0u64..1000, scale in 0.1f32..30.0) {
        let mut r = rng(seed);
        let mut store = ParamStore::new();
        let ln = LayerNorm::new(&mut store, "ln", 6);
        let g = Graph::new();
        let ctx = FwdCtx::new(&g, &store, false, 0);
        let x = g.constant(Tensor::randn(&[3, 6], scale, &mut r));
        let y = ln.forward(&ctx, x).value();
        for row in y.data().chunks(6) {
            let norm: f32 = row.iter().map(|v| v * v).sum::<f32>().sqrt();
            prop_assert!(norm < 6.0f32.sqrt() + 1e-3, "row norm {norm}");
        }
    }

    /// The fused tape-free GRU recurrence ([`Gru::infer_last`]) is bitwise
    /// equal to the autograd graph path at every row's own last timestep —
    /// the same contract `batch_properties.rs` pins end-to-end for
    /// GRU4Rec's `score_batch`.
    #[test]
    fn gru_infer_last_equals_graph_forward(
        seed in 0u64..500,
        lens in proptest::collection::vec(1usize..7, 1..5),
    ) {
        let mut r = rng(seed);
        let mut store = ParamStore::new();
        let gru = Gru::new(&mut store, "g", 4, 6, &mut r);
        let b = lens.len();
        let t_max = *lens.iter().max().unwrap();
        let x = Tensor::randn(&[b, t_max, 4], 1.0, &mut r);

        let g = Graph::new();
        let ctx = FwdCtx::new(&g, &store, false, 0);
        let states = gru.forward_seq(&ctx, g.constant(x.clone())).value();
        let fast = gru.infer_last(&store, &x, &lens);
        for (row, &len) in lens.iter().enumerate() {
            for j in 0..6 {
                let want = states.at(&[row, len - 1, j]);
                let got = fast.at(&[row, j]);
                prop_assert_eq!(
                    want.to_bits(),
                    got.to_bits(),
                    "row {} dim {}: {} vs {}",
                    row,
                    j,
                    want,
                    got
                );
            }
        }
    }

    /// SGD and Adam both strictly decrease a convex quadratic within a few
    /// steps from any start.
    #[test]
    fn optimizers_descend_quadratics(x0 in -5.0f32..5.0, y0 in -5.0f32..5.0) {
        for opt_kind in 0..2 {
            let mut store = ParamStore::new();
            let id = store.add("w", Tensor::from_vec(vec![x0, y0], &[2]));
            let mut sgd;
            let mut adam;
            let opt: &mut dyn Optimizer = if opt_kind == 0 {
                sgd = Sgd::new(0.05);
                &mut sgd
            } else {
                adam = Adam::new(0.05);
                &mut adam
            };
            let start = store.value(id).sq_norm();
            for _ in 0..25 {
                store.zero_grad();
                let w = store.value(id).clone();
                store.accumulate_grad(id, &w); // ∇(½‖w‖²) = w
                opt.step(&mut store);
            }
            let end = store.value(id).sq_norm();
            prop_assert!(end <= start + 1e-6, "opt {opt_kind}: {start} -> {end}");
        }
    }
}
