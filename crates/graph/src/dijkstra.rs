//! Shortest paths: binary-heap Dijkstra plus a Bellman–Ford oracle used by
//! the property tests.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use irs_data::ItemId;

use crate::item_graph::ItemGraph;

/// Max-heap entry ordered by reversed distance (so the heap pops minima).
#[derive(PartialEq)]
struct HeapEntry {
    dist: f32,
    node: ItemId,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse so BinaryHeap (a max-heap) yields the smallest distance.
        other
            .dist
            .partial_cmp(&self.dist)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.node.cmp(&self.node))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Dijkstra shortest path from `source` to `target`.
///
/// Returns the vertex path **including both endpoints**, or `None` when
/// `target` is unreachable (the paper notes Pf2Inf fails on disjoint
/// graphs — callers surface that as an empty influence path).
pub fn dijkstra_path(graph: &ItemGraph, source: ItemId, target: ItemId) -> Option<Vec<ItemId>> {
    let n = graph.num_items();
    assert!(source < n && target < n, "vertex out of range");
    if source == target {
        return Some(vec![source]);
    }
    let mut dist = vec![f32::INFINITY; n];
    let mut prev: Vec<Option<ItemId>> = vec![None; n];
    let mut heap = BinaryHeap::new();
    dist[source] = 0.0;
    heap.push(HeapEntry { dist: 0.0, node: source });

    while let Some(HeapEntry { dist: d, node }) = heap.pop() {
        if d > dist[node] {
            continue; // stale entry
        }
        if node == target {
            break;
        }
        for &(next, w, _) in graph.neighbours(node) {
            debug_assert!(w >= 0.0, "Dijkstra requires non-negative weights");
            let nd = d + w;
            if nd < dist[next] {
                dist[next] = nd;
                prev[next] = Some(node);
                heap.push(HeapEntry { dist: nd, node: next });
            }
        }
    }

    if dist[target].is_infinite() {
        return None;
    }
    let mut path = vec![target];
    let mut cur = target;
    while let Some(p) = prev[cur] {
        path.push(p);
        cur = p;
    }
    debug_assert_eq!(*path.last().unwrap(), source);
    path.reverse();
    Some(path)
}

/// Bellman–Ford distances from `source` — O(V·E) oracle for testing
/// Dijkstra's optimality.
pub fn bellman_ford(graph: &ItemGraph, source: ItemId) -> Vec<f32> {
    let n = graph.num_items();
    let mut dist = vec![f32::INFINITY; n];
    dist[source] = 0.0;
    for _ in 0..n {
        let mut changed = false;
        for u in 0..n {
            if dist[u].is_infinite() {
                continue;
            }
            for &(v, w, _) in graph.neighbours(u) {
                if dist[u] + w < dist[v] {
                    dist[v] = dist[u] + w;
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn line_graph(n: usize) -> ItemGraph {
        ItemGraph::from_sequences(n, &[(0..n).collect()])
    }

    #[test]
    fn path_on_line_graph() {
        let g = line_graph(5);
        let p = dijkstra_path(&g, 0, 4).unwrap();
        assert_eq!(p, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn same_source_target_is_trivial() {
        let g = line_graph(3);
        assert_eq!(dijkstra_path(&g, 1, 1).unwrap(), vec![1]);
    }

    #[test]
    fn unreachable_returns_none() {
        let g = ItemGraph::from_sequences(4, &[vec![0, 1], vec![2, 3]]);
        assert!(dijkstra_path(&g, 0, 3).is_none());
    }

    #[test]
    fn prefers_shortcut() {
        // 0-1-2-3 plus shortcut 0-3 via item 4: 0-4-3 (len 2) beats 0-1-2-3.
        let g = ItemGraph::from_sequences(5, &[vec![0, 1, 2, 3], vec![0, 4, 3]]);
        let p = dijkstra_path(&g, 0, 3).unwrap();
        assert_eq!(p.len(), 3);
        assert_eq!(p[0], 0);
        assert_eq!(p[2], 3);
    }

    #[test]
    fn respects_reweighted_edges() {
        // Make the direct edge expensive; the long way becomes optimal.
        let mut g = ItemGraph::from_sequences(4, &[vec![0, 3], vec![0, 1, 2, 3], vec![0, 1]]);
        g.reweight(|c| if c > 1 { 0.1 } else { 1.0 });
        // direct 0-3 weight 1.0; 0-1 has count 2 → 0.1, 1-2 and 2-3 → 1.0
        // path 0-1-2-3 = 2.1 > 1.0, so direct still wins.
        let p = dijkstra_path(&g, 0, 3).unwrap();
        assert_eq!(p, vec![0, 3]);
    }

    proptest! {
        /// Dijkstra distances match the Bellman–Ford oracle on random graphs.
        #[test]
        fn dijkstra_matches_bellman_ford(
            seqs in proptest::collection::vec(
                proptest::collection::vec(0usize..12, 2..8), 1..6),
        ) {
            let g = ItemGraph::from_sequences(12, &seqs);
            let oracle = bellman_ford(&g, 0);
            for (target, &oracle_dist) in oracle.iter().enumerate() {
                match dijkstra_path(&g, 0, target) {
                    Some(p) => {
                        prop_assert_eq!(p[0], 0);
                        prop_assert_eq!(*p.last().unwrap(), target);
                        // Unit weights: path length - 1 == distance.
                        prop_assert!((oracle_dist - (p.len() - 1) as f32).abs() < 1e-4);
                        // Path edges must exist.
                        for w in p.windows(2) {
                            prop_assert!(g.has_edge(w[0], w[1]));
                        }
                    }
                    None => prop_assert!(oracle_dist.is_infinite()),
                }
            }
        }

        /// Triangle inequality on the distance metric.
        #[test]
        fn distances_satisfy_triangle_inequality(
            seqs in proptest::collection::vec(
                proptest::collection::vec(0usize..10, 2..6), 1..5),
        ) {
            let g = ItemGraph::from_sequences(10, &seqs);
            let d0 = bellman_ford(&g, 0);
            for mid in 0..10 {
                if d0[mid].is_infinite() { continue; }
                let dm = bellman_ford(&g, mid);
                for t in 0..10 {
                    if dm[t].is_finite() && d0[t].is_finite() {
                        prop_assert!(d0[t] <= d0[mid] + dm[t] + 1e-4);
                    }
                }
            }
        }
    }
}
