//! Typed (knowledge-graph-flavoured) item graphs — the paper's future-work
//! direction §V-(1): "extend the path-finding baseline by incorporating
//! knowledge graphs".
//!
//! A [`TypedItemGraph`] carries multiple edge relations — behavioural
//! co-occurrence plus content relations such as shared genre — each with
//! its own traversal cost.  Shortest paths over the blended costs produce
//! influence paths that can cross between items that were never watched
//! consecutively but are semantically related, exactly the KG-subgraph
//! expansion sketched in the paper.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap};

use irs_data::{Dataset, ItemId};

/// Edge relation kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Relation {
    /// Items consumed consecutively by some user (behavioural).
    CoOccurrence,
    /// Items sharing at least one genre (content).
    SharedGenre,
}

/// Per-relation traversal costs.
#[derive(Debug, Clone)]
pub struct RelationCosts {
    /// Cost of a co-occurrence hop.
    pub co_occurrence: f32,
    /// Cost of a shared-genre hop.
    pub shared_genre: f32,
}

impl Default for RelationCosts {
    fn default() -> Self {
        // Behavioural evidence is stronger than mere genre overlap.
        RelationCosts { co_occurrence: 1.0, shared_genre: 2.5 }
    }
}

impl RelationCosts {
    fn cost(&self, r: Relation) -> f32 {
        match r {
            Relation::CoOccurrence => self.co_occurrence,
            Relation::SharedGenre => self.shared_genre,
        }
    }
}

/// An undirected multi-relational item graph.
#[derive(Debug, Clone)]
pub struct TypedItemGraph {
    num_items: usize,
    /// Adjacency: `(neighbour, relation)`, deduplicated per relation.
    adj: Vec<Vec<(ItemId, Relation)>>,
}

impl TypedItemGraph {
    /// Build from a dataset: co-occurrence edges from consecutive items in
    /// user sequences, shared-genre edges between items of a genre
    /// (capped per item to `genre_fanout` nearest ids to bound density).
    pub fn from_dataset(dataset: &Dataset, genre_fanout: usize) -> Self {
        let n = dataset.num_items;
        let mut edge_set: HashMap<(ItemId, ItemId), Relation> = HashMap::new();

        for seq in &dataset.sequences {
            for w in seq.windows(2) {
                let (a, b) = (w[0].min(w[1]), w[0].max(w[1]));
                if a != b {
                    // Behavioural edges dominate content edges.
                    edge_set.insert((a, b), Relation::CoOccurrence);
                }
            }
        }

        // Genre co-membership edges (bounded fanout to the next ids of the
        // same genre keeps the graph sparse while preserving reachability
        // within a genre).
        let mut per_genre: HashMap<usize, Vec<ItemId>> = HashMap::new();
        for (item, genres) in dataset.genres.iter().enumerate() {
            for &g in genres {
                per_genre.entry(g).or_default().push(item);
            }
        }
        for members in per_genre.values() {
            for (pos, &item) in members.iter().enumerate() {
                for &other in members.iter().skip(pos + 1).take(genre_fanout) {
                    let key = (item.min(other), item.max(other));
                    edge_set.entry(key).or_insert(Relation::SharedGenre);
                }
            }
        }

        let mut adj: Vec<Vec<(ItemId, Relation)>> = vec![Vec::new(); n];
        for (&(a, b), &r) in &edge_set {
            adj[a].push((b, r));
            adj[b].push((a, r));
        }
        for list in adj.iter_mut() {
            list.sort_unstable_by_key(|&(i, _)| i);
        }
        TypedItemGraph { num_items: n, adj }
    }

    /// Number of vertices.
    pub fn num_items(&self) -> usize {
        self.num_items
    }

    /// Number of undirected edges.
    pub fn num_edges(&self) -> usize {
        self.adj.iter().map(Vec::len).sum::<usize>() / 2
    }

    /// Neighbours with relations.
    pub fn neighbours(&self, item: ItemId) -> &[(ItemId, Relation)] {
        &self.adj[item]
    }

    /// Cheapest path from `source` to `target` under the given relation
    /// costs (Dijkstra).  Returns the vertex path including endpoints, or
    /// `None` when unreachable.
    pub fn cheapest_path(
        &self,
        source: ItemId,
        target: ItemId,
        costs: &RelationCosts,
    ) -> Option<Vec<ItemId>> {
        assert!(source < self.num_items && target < self.num_items, "vertex out of range");
        if source == target {
            return Some(vec![source]);
        }

        #[derive(PartialEq)]
        struct Entry {
            dist: f32,
            node: ItemId,
        }
        impl Eq for Entry {}
        impl Ord for Entry {
            fn cmp(&self, other: &Self) -> Ordering {
                other
                    .dist
                    .partial_cmp(&self.dist)
                    .unwrap_or(Ordering::Equal)
                    .then_with(|| other.node.cmp(&self.node))
            }
        }
        impl PartialOrd for Entry {
            fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
                Some(self.cmp(other))
            }
        }

        let mut dist = vec![f32::INFINITY; self.num_items];
        let mut prev: Vec<Option<ItemId>> = vec![None; self.num_items];
        let mut heap = BinaryHeap::new();
        dist[source] = 0.0;
        heap.push(Entry { dist: 0.0, node: source });
        while let Some(Entry { dist: d, node }) = heap.pop() {
            if d > dist[node] {
                continue;
            }
            if node == target {
                break;
            }
            for &(next, rel) in &self.adj[node] {
                let nd = d + costs.cost(rel);
                if nd < dist[next] {
                    dist[next] = nd;
                    prev[next] = Some(node);
                    heap.push(Entry { dist: nd, node: next });
                }
            }
        }
        if dist[target].is_infinite() {
            return None;
        }
        let mut path = vec![target];
        let mut cur = target;
        while let Some(p) = prev[cur] {
            path.push(p);
            cur = p;
        }
        path.reverse();
        Some(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dataset() -> Dataset {
        Dataset {
            name: "t".into(),
            num_users: 2,
            num_items: 6,
            // Behavioural chains: 0-1-2 and 3-4-5 (disconnected).
            sequences: vec![vec![0, 1, 2], vec![3, 4, 5]],
            // Genre A = {2, 3}: the only bridge between the components.
            genres: vec![vec![1], vec![1], vec![0], vec![0], vec![2], vec![2]],
            genre_names: vec!["A".into(), "B".into(), "C".into()],
            item_names: vec![],
        }
    }

    #[test]
    fn genre_edges_bridge_behavioural_components() {
        let g = TypedItemGraph::from_dataset(&dataset(), 4);
        // A plain co-occurrence graph cannot reach 5 from 0; the shared
        // genre edge 2–3 makes it possible.
        let p = g.cheapest_path(0, 5, &RelationCosts::default()).expect("reachable via genre");
        assert_eq!(p.first(), Some(&0));
        assert_eq!(p.last(), Some(&5));
        assert!(p.windows(2).any(|w| (w[0] == 2 && w[1] == 3) || (w[0] == 3 && w[1] == 2)));
    }

    #[test]
    fn expensive_genre_hops_are_avoided_when_possible() {
        let d = Dataset {
            // 0-1-2 chain behaviourally; 0 and 2 also share a genre.
            sequences: vec![vec![0, 1, 2]],
            genres: vec![vec![0], vec![1], vec![0]],
            genre_names: vec!["A".into(), "B".into()],
            item_names: vec![],
            name: "t2".into(),
            num_users: 1,
            num_items: 3,
        };
        let g = TypedItemGraph::from_dataset(&d, 4);
        // With default costs (genre hop = 2.5 > two co-occurrence hops = 2),
        // the behavioural route wins.
        let p = g.cheapest_path(0, 2, &RelationCosts::default()).unwrap();
        assert_eq!(p, vec![0, 1, 2]);
        // Cheap genre hops flip the preference.
        let cheap = RelationCosts { co_occurrence: 1.0, shared_genre: 0.5 };
        let p2 = g.cheapest_path(0, 2, &cheap).unwrap();
        assert_eq!(p2, vec![0, 2]);
    }

    #[test]
    fn unreachable_without_any_relation_returns_none() {
        let d = Dataset {
            sequences: vec![vec![0, 1]],
            genres: vec![vec![0], vec![0], vec![1]],
            genre_names: vec!["A".into(), "B".into()],
            item_names: vec![],
            name: "t3".into(),
            num_users: 1,
            num_items: 3,
        };
        let g = TypedItemGraph::from_dataset(&d, 4);
        assert!(g.cheapest_path(0, 2, &RelationCosts::default()).is_none());
    }

    #[test]
    fn behavioural_edges_take_priority_in_dedup() {
        // 0-1 both co-occur and share a genre: the edge must be recorded
        // as co-occurrence (cheaper by default).
        let d = Dataset {
            sequences: vec![vec![0, 1]],
            genres: vec![vec![0], vec![0]],
            genre_names: vec!["A".into()],
            item_names: vec![],
            name: "t4".into(),
            num_users: 1,
            num_items: 2,
        };
        let g = TypedItemGraph::from_dataset(&d, 4);
        assert_eq!(g.neighbours(0), &[(1, Relation::CoOccurrence)]);
    }
}
