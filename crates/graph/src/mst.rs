//! Minimum spanning tree (Prim) with tree-path extraction — the paper's
//! MST baseline selects influence paths along MST tree paths (§IV-C).

use irs_data::ItemId;

use crate::item_graph::ItemGraph;

/// A minimum spanning forest of an [`ItemGraph`] supporting tree-path
/// queries between vertices.
#[derive(Debug, Clone)]
pub struct MstPaths {
    /// Parent of each vertex in its tree (self for roots).
    parent: Vec<ItemId>,
    /// Depth from the tree root.
    depth: Vec<usize>,
    /// Component id per vertex.
    component: Vec<usize>,
}

impl MstPaths {
    /// Build a minimum spanning forest with Prim's algorithm (restarted per
    /// connected component).
    pub fn build(graph: &ItemGraph) -> Self {
        let n = graph.num_items();
        let mut parent: Vec<ItemId> = (0..n).collect();
        let mut depth = vec![0usize; n];
        let mut component = vec![usize::MAX; n];
        let mut in_tree = vec![false; n];
        let mut comp = 0;

        for start in 0..n {
            if in_tree[start] {
                continue;
            }
            // Prim from `start` over its component.
            let mut heap: std::collections::BinaryHeap<std::cmp::Reverse<(u32, ItemId, ItemId)>> =
                Default::default();
            in_tree[start] = true;
            component[start] = comp;
            for &(next, w, _) in graph.neighbours(start) {
                heap.push(std::cmp::Reverse((ordered_from(w), next, start)));
            }
            while let Some(std::cmp::Reverse((_, v, from))) = heap.pop() {
                if in_tree[v] {
                    continue;
                }
                in_tree[v] = true;
                parent[v] = from;
                depth[v] = depth[from] + 1;
                component[v] = comp;
                for &(next, w, _) in graph.neighbours(v) {
                    if !in_tree[next] {
                        heap.push(std::cmp::Reverse((ordered_from(w), next, v)));
                    }
                }
            }
            comp += 1;
        }
        MstPaths { parent, depth, component }
    }

    /// Unique tree path between two vertices, or `None` if they live in
    /// different components.
    pub fn tree_path(&self, a: ItemId, b: ItemId) -> Option<Vec<ItemId>> {
        if self.component[a] != self.component[b] {
            return None;
        }
        if a == b {
            return Some(vec![a]);
        }
        // Walk both vertices up to the lowest common ancestor.
        let (mut xa, mut xb) = (a, b);
        let mut left = vec![xa];
        let mut right = vec![xb];
        while self.depth[xa] > self.depth[xb] {
            xa = self.parent[xa];
            left.push(xa);
        }
        while self.depth[xb] > self.depth[xa] {
            xb = self.parent[xb];
            right.push(xb);
        }
        while xa != xb {
            xa = self.parent[xa];
            left.push(xa);
            xb = self.parent[xb];
            right.push(xb);
        }
        // left ends at the LCA; right also ends at the LCA — drop the
        // duplicate and reverse the right half.
        right.pop();
        right.reverse();
        left.extend(right);
        Some(left)
    }

    /// Component id of a vertex.
    pub fn component_of(&self, v: ItemId) -> usize {
        self.component[v]
    }
}

/// Total order for non-negative f32 edge weights (no NaNs are produced by
/// the graph builders); `to_bits` is monotone on non-negative floats.
fn ordered_from(w: f32) -> u32 {
    debug_assert!(!w.is_nan());
    // Monotone map from non-negative f32 to u32.
    w.to_bits()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dijkstra::dijkstra_path;
    use proptest::prelude::*;

    #[test]
    fn tree_path_on_line_graph() {
        let g = ItemGraph::from_sequences(5, &[(0..5).collect()]);
        let mst = MstPaths::build(&g);
        assert_eq!(mst.tree_path(0, 4).unwrap(), vec![0, 1, 2, 3, 4]);
        assert_eq!(mst.tree_path(4, 0).unwrap(), vec![4, 3, 2, 1, 0]);
    }

    #[test]
    fn different_components_return_none() {
        let g = ItemGraph::from_sequences(4, &[vec![0, 1], vec![2, 3]]);
        let mst = MstPaths::build(&g);
        assert!(mst.tree_path(0, 3).is_none());
        assert_eq!(mst.component_of(0), mst.component_of(1));
        assert_ne!(mst.component_of(0), mst.component_of(2));
    }

    #[test]
    fn tree_path_endpoints_and_edges() {
        let g =
            ItemGraph::from_sequences(6, &[vec![0, 1, 2, 3], vec![1, 4], vec![2, 5], vec![0, 3]]);
        let mst = MstPaths::build(&g);
        let p = mst.tree_path(4, 5).unwrap();
        assert_eq!(p[0], 4);
        assert_eq!(*p.last().unwrap(), 5);
        for w in p.windows(2) {
            assert!(g.has_edge(w[0], w[1]), "tree path must use graph edges");
        }
    }

    proptest! {
        /// Tree paths connect exactly the vertices Dijkstra can connect,
        /// and are at least as long (a tree path can't beat the shortest).
        #[test]
        fn tree_paths_are_valid_and_not_shorter_than_shortest(
            seqs in proptest::collection::vec(
                proptest::collection::vec(0usize..10, 2..6), 1..5),
        ) {
            let g = ItemGraph::from_sequences(10, &seqs);
            let mst = MstPaths::build(&g);
            for a in 0..10 {
                for b in 0..10 {
                    let tp = mst.tree_path(a, b);
                    let sp = dijkstra_path(&g, a, b);
                    prop_assert_eq!(tp.is_some(), sp.is_some());
                    if let (Some(tp), Some(sp)) = (tp, sp) {
                        prop_assert!(tp.len() >= sp.len());
                        // No repeated vertices on a tree path.
                        let mut seen = tp.clone();
                        seen.sort_unstable();
                        seen.dedup();
                        prop_assert_eq!(seen.len(), tp.len());
                        for w in tp.windows(2) {
                            prop_assert!(g.has_edge(w[0], w[1]));
                        }
                    }
                }
            }
        }
    }
}
