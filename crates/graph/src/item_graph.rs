//! The undirected item co-occurrence graph.

use irs_data::{Dataset, ItemId};
use std::collections::HashMap;

/// Undirected weighted graph over items.
///
/// Edge weights default to 1.0 (the paper assigns equal weight); the
/// co-occurrence count is retained so alternative weightings (e.g.
/// `1/count`) can be explored.
#[derive(Debug, Clone)]
pub struct ItemGraph {
    num_items: usize,
    /// Adjacency: for each item, sorted `(neighbour, weight, count)`.
    adj: Vec<Vec<(ItemId, f32, u32)>>,
    num_edges: usize,
}

impl ItemGraph {
    /// Build from per-user sequences: consecutive items become edges.
    pub fn from_sequences(num_items: usize, sequences: &[Vec<ItemId>]) -> Self {
        let mut counts: HashMap<(ItemId, ItemId), u32> = HashMap::new();
        for seq in sequences {
            for w in seq.windows(2) {
                let (a, b) = (w[0].min(w[1]), w[0].max(w[1]));
                if a == b {
                    continue;
                }
                *counts.entry((a, b)).or_default() += 1;
            }
        }
        let mut adj: Vec<Vec<(ItemId, f32, u32)>> = vec![Vec::new(); num_items];
        for (&(a, b), &c) in &counts {
            adj[a].push((b, 1.0, c));
            adj[b].push((a, 1.0, c));
        }
        for list in adj.iter_mut() {
            list.sort_unstable_by_key(|&(n, _, _)| n);
        }
        ItemGraph { num_items, adj, num_edges: counts.len() }
    }

    /// Build from a [`Dataset`].
    pub fn from_dataset(dataset: &Dataset) -> Self {
        Self::from_sequences(dataset.num_items, &dataset.sequences)
    }

    /// Number of vertices.
    pub fn num_items(&self) -> usize {
        self.num_items
    }

    /// Number of undirected edges.
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Neighbours of an item with weights.
    pub fn neighbours(&self, item: ItemId) -> &[(ItemId, f32, u32)] {
        &self.adj[item]
    }

    /// Degree of an item.
    pub fn degree(&self, item: ItemId) -> usize {
        self.adj[item].len()
    }

    /// True if `a`–`b` is an edge.
    pub fn has_edge(&self, a: ItemId, b: ItemId) -> bool {
        self.adj[a].binary_search_by_key(&b, |&(n, _, _)| n).is_ok()
    }

    /// Re-weight every edge with `f(co_occurrence_count) -> weight`.
    pub fn reweight(&mut self, f: impl Fn(u32) -> f32) {
        for list in self.adj.iter_mut() {
            for e in list.iter_mut() {
                e.1 = f(e.2);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_edges_from_consecutive_items() {
        let g = ItemGraph::from_sequences(4, &[vec![0, 1, 2], vec![2, 3]]);
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 2));
        assert!(g.has_edge(2, 3));
        assert!(!g.has_edge(0, 2));
        assert_eq!(g.num_edges(), 3);
    }

    #[test]
    fn repeated_co_occurrence_counts() {
        let g = ItemGraph::from_sequences(2, &[vec![0, 1, 0, 1]]);
        assert_eq!(g.num_edges(), 1);
        let (_, w, c) = g.neighbours(0)[0];
        assert_eq!(c, 3);
        assert_eq!(w, 1.0);
    }

    #[test]
    fn self_loops_are_ignored() {
        let g = ItemGraph::from_sequences(2, &[vec![0, 0, 1]]);
        assert!(!g.has_edge(0, 0));
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn reweight_applies_function() {
        let mut g = ItemGraph::from_sequences(2, &[vec![0, 1, 0, 1]]);
        g.reweight(|c| 1.0 / c as f32);
        let (_, w, _) = g.neighbours(0)[0];
        assert!((w - 1.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn degrees_are_symmetric() {
        let g = ItemGraph::from_sequences(5, &[vec![0, 1, 2, 3, 4, 0]]);
        let total: usize = (0..5).map(|i| g.degree(i)).sum();
        assert_eq!(total, 2 * g.num_edges());
    }
}
