//! # irs_graph — item co-occurrence graphs and path-finding
//!
//! Implements the substrate of the paper's **Pf2Inf** framework (§III-B):
//! an undirected item graph built from consecutive co-occurrence in user
//! sequences ("we assign an edge to two vertices if the corresponding items
//! appear consecutively in an interaction sequence and assign equal weight
//! to each edge"), plus Dijkstra shortest paths and a Prim minimum spanning
//! tree whose tree-paths serve as the MST baseline.

mod dijkstra;
mod item_graph;
mod mst;
pub mod typed;

pub use dijkstra::{bellman_ford, dijkstra_path};
pub use item_graph::ItemGraph;
pub use mst::MstPaths;
pub use typed::{Relation, RelationCosts, TypedItemGraph};
