//! Dataset statistics — reproduces the columns of the paper's Table I.

use crate::types::Dataset;

/// Summary statistics of a preprocessed dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetStats {
    /// Dataset label.
    pub name: String,
    /// Number of users.
    pub users: usize,
    /// Number of items.
    pub items: usize,
    /// Total interactions.
    pub interactions: usize,
    /// Interaction-matrix density in percent: `interactions / (users·items) · 100`.
    pub density_pct: f64,
    /// Average items per user.
    pub avg_items_per_user: f64,
}

/// Compute Table I statistics.
pub fn dataset_stats(d: &Dataset) -> DatasetStats {
    let interactions = d.num_interactions();
    let denom = (d.num_users * d.num_items).max(1);
    DatasetStats {
        name: d.name.clone(),
        users: d.num_users,
        items: d.num_items,
        interactions,
        density_pct: interactions as f64 / denom as f64 * 100.0,
        avg_items_per_user: interactions as f64 / d.num_users.max(1) as f64,
    }
}

impl std::fmt::Display for DatasetStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:<16} {:>7} {:>7} {:>12} {:>8.2}% {:>10.1}",
            self.name,
            self.users,
            self.items,
            self.interactions,
            self.density_pct,
            self.avg_items_per_user
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{generate, SynthConfig};

    #[test]
    fn stats_formulas() {
        let d = Dataset {
            name: "t".into(),
            num_users: 2,
            num_items: 4,
            sequences: vec![vec![0, 1], vec![2, 3, 0, 1]],
            genres: vec![vec![]; 4],
            genre_names: vec![],
            item_names: vec![],
        };
        let s = dataset_stats(&d);
        assert_eq!(s.interactions, 6);
        assert!((s.density_pct - 75.0).abs() < 1e-9);
        assert!((s.avg_items_per_user - 3.0).abs() < 1e-9);
    }

    #[test]
    fn display_renders_all_columns() {
        let s = DatasetStats {
            name: "demo".into(),
            users: 10,
            items: 20,
            interactions: 55,
            density_pct: 27.5,
            avg_items_per_user: 5.5,
        };
        let line = s.to_string();
        for needle in ["demo", "10", "20", "55", "27.50%", "5.5"] {
            assert!(line.contains(needle), "missing {needle} in {line}");
        }
    }

    #[test]
    fn synth_lastfm_stats_are_in_paper_ballpark() {
        let out = generate(&SynthConfig::lastfm_like(0.1));
        let s = dataset_stats(&out.dataset);
        // Average items per user should be near the configured 31.
        assert!(
            (15.0..60.0).contains(&s.avg_items_per_user),
            "avg items/user {} far from Lastfm's ≈31",
            s.avg_items_per_user
        );
    }
}
