//! Preprocessing per §IV-A1 of the paper: treat every logged event as
//! positive feedback, merge consecutive duplicates of the same user–item
//! pair (Lastfm), order by timestamp, and iteratively filter out users and
//! items with fewer than `min_count` interactions, re-indexing ids densely.

use std::collections::HashMap;

use crate::types::{Dataset, Interaction, ItemId, UserId};

/// Preprocessing options.
#[derive(Debug, Clone)]
pub struct PreprocessConfig {
    /// Drop users/items with fewer interactions than this (paper uses 5).
    pub min_count: usize,
    /// Merge consecutive repeats of the same user–item pair (paper applies
    /// this to Lastfm's listening logs).
    pub dedup_consecutive: bool,
}

impl Default for PreprocessConfig {
    fn default() -> Self {
        PreprocessConfig { min_count: 5, dedup_consecutive: true }
    }
}

/// Output of preprocessing: the dataset plus the id remappings (dense new
/// id -> original id), so metadata can be carried over.
#[derive(Debug, Clone)]
pub struct Preprocessed {
    /// Per-user chronological sequences with densely re-indexed ids.
    pub sequences: Vec<Vec<ItemId>>,
    /// Dense user id -> original user id.
    pub user_index: Vec<UserId>,
    /// Dense item id -> original item id.
    pub item_index: Vec<ItemId>,
}

/// Run the full preprocessing pipeline on a raw interaction log.
pub fn preprocess(interactions: &[Interaction], config: &PreprocessConfig) -> Preprocessed {
    // Group by user, sort chronologically (stable on ties).
    let mut by_user: HashMap<UserId, Vec<(i64, ItemId)>> = HashMap::new();
    for it in interactions {
        by_user.entry(it.user).or_default().push((it.timestamp, it.item));
    }
    let mut sequences: Vec<(UserId, Vec<ItemId>)> = by_user
        .into_iter()
        .map(|(u, mut evs)| {
            evs.sort_by_key(|&(ts, _)| ts);
            let mut items: Vec<ItemId> = evs.into_iter().map(|(_, i)| i).collect();
            if config.dedup_consecutive {
                items.dedup();
            }
            (u, items)
        })
        .collect();
    sequences.sort_by_key(|&(u, _)| u);

    // Iterative min-count filtering: removing sparse items can push users
    // below the threshold and vice versa, so repeat until a fixed point.
    loop {
        let mut item_counts: HashMap<ItemId, usize> = HashMap::new();
        for (_, seq) in &sequences {
            for &i in seq {
                *item_counts.entry(i).or_default() += 1;
            }
        }
        let mut changed = false;
        for (_, seq) in sequences.iter_mut() {
            let before = seq.len();
            seq.retain(|i| item_counts.get(i).copied().unwrap_or(0) >= config.min_count);
            if config.dedup_consecutive {
                seq.dedup();
            }
            if seq.len() != before {
                changed = true;
            }
        }
        let before_users = sequences.len();
        sequences.retain(|(_, seq)| seq.len() >= config.min_count);
        if sequences.len() != before_users {
            changed = true;
        }
        if !changed {
            break;
        }
    }

    // Dense re-indexing.
    let mut item_map: HashMap<ItemId, ItemId> = HashMap::new();
    let mut item_index: Vec<ItemId> = Vec::new();
    let mut user_index: Vec<UserId> = Vec::new();
    let mut out_sequences: Vec<Vec<ItemId>> = Vec::with_capacity(sequences.len());
    for (u, seq) in sequences {
        user_index.push(u);
        out_sequences.push(
            seq.into_iter()
                .map(|orig| {
                    *item_map.entry(orig).or_insert_with(|| {
                        item_index.push(orig);
                        item_index.len() - 1
                    })
                })
                .collect(),
        );
    }

    Preprocessed { sequences: out_sequences, user_index, item_index }
}

/// Convenience: preprocess a raw log and carry over metadata from an
/// original [`Dataset`] (genres/names follow the item re-indexing).
pub fn preprocess_dataset(
    original: &Dataset,
    interactions: &[Interaction],
    config: &PreprocessConfig,
) -> Dataset {
    let pre = preprocess(interactions, config);
    let genres = pre
        .item_index
        .iter()
        .map(|&orig| original.genres.get(orig).cloned().unwrap_or_default())
        .collect();
    let item_names = pre.item_index.iter().map(|&orig| original.item_name(orig)).collect();
    let d = Dataset {
        name: original.name.clone(),
        num_users: pre.sequences.len(),
        num_items: pre.item_index.len(),
        sequences: pre.sequences,
        genres,
        genre_names: original.genre_names.clone(),
        item_names,
    };
    debug_assert!(d.check_invariants().is_ok());
    d
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(user: UserId, item: ItemId, ts: i64) -> Interaction {
        Interaction { user, item, timestamp: ts }
    }

    #[test]
    fn groups_and_orders_chronologically() {
        let log = vec![ev(0, 3, 5), ev(0, 1, 1), ev(0, 2, 3)];
        let cfg = PreprocessConfig { min_count: 1, dedup_consecutive: false };
        let p = preprocess(&log, &cfg);
        assert_eq!(p.sequences.len(), 1);
        // Dense ids assigned in first-seen order after sorting: 1->0, 2->1, 3->2.
        assert_eq!(p.sequences[0], vec![0, 1, 2]);
        assert_eq!(p.item_index, vec![1, 2, 3]);
    }

    #[test]
    fn dedups_consecutive_repeats_only() {
        let log = vec![ev(0, 7, 0), ev(0, 7, 1), ev(0, 8, 2), ev(0, 7, 3)];
        let cfg = PreprocessConfig { min_count: 1, dedup_consecutive: true };
        let p = preprocess(&log, &cfg);
        // 7,7,8,7 -> 7,8,7 (non-consecutive repeat survives)
        assert_eq!(p.sequences[0].len(), 3);
        assert_eq!(p.sequences[0][0], p.sequences[0][2]);
    }

    #[test]
    fn min_count_filter_removes_sparse_users_and_items() {
        let mut log = Vec::new();
        // User 0: 6 interactions with item 0 and 1 alternating (each ≥5? item0:3, item1:3)
        for t in 0..6 {
            log.push(ev(0, t % 2, t as i64));
        }
        // User 1: single interaction -> dropped.
        log.push(ev(1, 0, 100));
        let cfg = PreprocessConfig { min_count: 3, dedup_consecutive: false };
        let p = preprocess(&log, &cfg);
        assert_eq!(p.user_index, vec![0, 1].into_iter().filter(|&u| u == 0).collect::<Vec<_>>());
        assert_eq!(p.sequences.len(), 1);
        assert_eq!(p.sequences[0].len(), 6);
    }

    #[test]
    fn filtering_reaches_fixed_point() {
        // Item 9 appears 5 times but only via user 2; dropping user 2 (too
        // short after item filtering) must also drop item 9.
        let mut log = Vec::new();
        for t in 0..8 {
            log.push(ev(0, 1 + (t % 2), t as i64)); // items 1,2 popular
        }
        for t in 0..8 {
            log.push(ev(1, 1 + (t % 2), 100 + t as i64));
        }
        // user 2: items 9 ×4 and 3 ×1 -> item 3 too rare -> user 2 left with 4 < 5 -> dropped
        for t in 0..4 {
            log.push(ev(2, 9, 200 + 2 * t as i64));
            log.push(ev(2, 3, 201 + 2 * t as i64));
        }
        let cfg = PreprocessConfig { min_count: 5, dedup_consecutive: false };
        let p = preprocess(&log, &cfg);
        for seq in &p.sequences {
            assert!(seq.len() >= 5);
        }
        // Item 9 no longer present anywhere.
        assert!(!p.item_index.contains(&9));
    }

    #[test]
    fn synth_pipeline_end_to_end() {
        let out = crate::synth::generate(&crate::synth::SynthConfig::tiny(11));
        let cfg = PreprocessConfig { min_count: 3, dedup_consecutive: true };
        let d = preprocess_dataset(&out.dataset, &out.interactions, &cfg);
        d.check_invariants().unwrap();
        assert!(d.num_users > 0);
        assert!(d.num_items > 0);
        let counts = d.item_counts();
        assert!(counts.iter().all(|&c| c >= 3), "min-count violated after preprocessing");
    }
}
