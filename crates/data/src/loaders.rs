//! Loaders for the paper's real dataset formats.
//!
//! The reproduction runs on synthetic data (the real dumps are not
//! available offline), but a downstream user with the actual files can
//! feed them straight into the same pipeline:
//!
//! * MovieLens-1M `ratings.dat` (`UserID::MovieID::Rating::Timestamp`) and
//!   `movies.dat` (`MovieID::Title::Genre|Genre|…`);
//! * HetRec-2011 Lastfm `user_taggedartists-timestamps.dat`
//!   (tab-separated `userID itemID tagID timestamp`, header line).
//!
//! All loaders are stream-based (`BufRead`), skip malformed lines with an
//! error count rather than aborting, and produce the raw types consumed by
//! [`crate::preprocess`].

use std::collections::HashMap;
use std::io::BufRead;

use crate::types::{Dataset, Interaction};

/// Result of a tolerant parse: the records plus how many lines were
/// skipped as malformed.
#[derive(Debug, Clone)]
pub struct Loaded<T> {
    /// Parsed records.
    pub records: T,
    /// Number of lines that failed to parse.
    pub skipped: usize,
}

/// Parse MovieLens `ratings.dat` into interactions.  Every rating is
/// treated as positive feedback (§IV-A1).
pub fn load_movielens_ratings<R: BufRead>(reader: R) -> std::io::Result<Loaded<Vec<Interaction>>> {
    let mut records = Vec::new();
    let mut skipped = 0usize;
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let mut parts = line.split("::");
        let parsed = (|| {
            let user: usize = parts.next()?.parse().ok()?;
            let item: usize = parts.next()?.parse().ok()?;
            let _rating = parts.next()?; // positive feedback regardless
            let timestamp: i64 = parts.next()?.trim().parse().ok()?;
            Some(Interaction { user, item, timestamp })
        })();
        match parsed {
            Some(i) => records.push(i),
            None => skipped += 1,
        }
    }
    Ok(Loaded { records, skipped })
}

/// One MovieLens movie record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MovieRecord {
    /// Original MovieLens movie id.
    pub id: usize,
    /// Title, e.g. `"Toy Story (1995)"`.
    pub title: String,
    /// Pipe-separated genre labels, split.
    pub genres: Vec<String>,
}

/// Parse MovieLens `movies.dat`.
pub fn load_movielens_movies<R: BufRead>(reader: R) -> std::io::Result<Loaded<Vec<MovieRecord>>> {
    let mut records = Vec::new();
    let mut skipped = 0usize;
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let mut parts = line.splitn(3, "::");
        let parsed = (|| {
            let id: usize = parts.next()?.parse().ok()?;
            let title = parts.next()?.to_string();
            let genres: Vec<String> = parts.next()?.trim().split('|').map(str::to_string).collect();
            Some(MovieRecord { id, title, genres })
        })();
        match parsed {
            Some(m) => records.push(m),
            None => skipped += 1,
        }
    }
    Ok(Loaded { records, skipped })
}

/// Parse the HetRec Lastfm tab-separated listening/tagging log.  Expects a
/// header line (skipped when non-numeric) and at least
/// `user<TAB>item<TAB>…<TAB>timestamp` columns.
pub fn load_lastfm_tsv<R: BufRead>(reader: R) -> std::io::Result<Loaded<Vec<Interaction>>> {
    let mut records = Vec::new();
    let mut skipped = 0usize;
    for (n, line) in reader.lines().enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let cols: Vec<&str> = line.split('\t').collect();
        let parsed = (|| {
            if cols.len() < 2 {
                return None;
            }
            let user: usize = cols[0].trim().parse().ok()?;
            let item: usize = cols[1].trim().parse().ok()?;
            let timestamp: i64 = cols.last()?.trim().parse().unwrap_or(0);
            Some(Interaction { user, item, timestamp })
        })();
        match parsed {
            Some(i) => records.push(i),
            None => {
                // Header lines are expected; don't count the first line.
                if n > 0 {
                    skipped += 1;
                }
            }
        }
    }
    Ok(Loaded { records, skipped })
}

/// Assemble a [`Dataset`] from loaded interactions and (optional) movie
/// metadata, applying the standard preprocessing.
pub fn assemble_dataset(
    name: &str,
    interactions: &[Interaction],
    movies: Option<&[MovieRecord]>,
    config: &crate::preprocess::PreprocessConfig,
) -> Dataset {
    let pre = crate::preprocess::preprocess(interactions, config);

    // Genre vocabulary from the metadata.
    let mut genre_names: Vec<String> = Vec::new();
    let mut genre_ids: HashMap<String, usize> = HashMap::new();
    let by_id: HashMap<usize, &MovieRecord> =
        movies.map(|ms| ms.iter().map(|m| (m.id, m)).collect()).unwrap_or_default();

    let mut genres = Vec::with_capacity(pre.item_index.len());
    let mut item_names = Vec::with_capacity(pre.item_index.len());
    for &orig in &pre.item_index {
        match by_id.get(&orig) {
            Some(m) => {
                item_names.push(m.title.clone());
                genres.push(
                    m.genres
                        .iter()
                        .map(|g| {
                            *genre_ids.entry(g.clone()).or_insert_with(|| {
                                genre_names.push(g.clone());
                                genre_names.len() - 1
                            })
                        })
                        .collect(),
                );
            }
            None => {
                item_names.push(format!("item-{orig}"));
                genres.push(Vec::new());
            }
        }
    }

    let d = Dataset {
        name: name.to_string(),
        num_users: pre.sequences.len(),
        num_items: pre.item_index.len(),
        sequences: pre.sequences,
        genres,
        genre_names,
        item_names,
    };
    debug_assert!(d.check_invariants().is_ok());
    d
}

/// On-disk dump formats the CLI accepts via `--ratings`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RatingsFormat {
    /// MovieLens-1M `ratings.dat` (`UserID::MovieID::Rating::Timestamp`),
    /// optionally with `movies.dat` metadata.
    MovielensDat,
    /// HetRec-2011 Lastfm tab-separated log (header line tolerated).
    LastfmTsv,
}

/// Load a real dataset dump from disk and assemble it with the standard
/// preprocessing — the one-call path behind `irs train --ratings FILE`.
/// `movies_path` attaches MovieLens metadata (titles + genres) and is
/// ignored for the Lastfm format.  `skipped` counts malformed lines
/// across all parsed files.
pub fn load_dataset_from_files(
    format: RatingsFormat,
    ratings_path: &std::path::Path,
    movies_path: Option<&std::path::Path>,
    config: &crate::preprocess::PreprocessConfig,
) -> std::io::Result<Loaded<Dataset>> {
    use std::io::BufReader;
    let ratings_file = BufReader::new(std::fs::File::open(ratings_path)?);
    let name = ratings_path.file_stem().and_then(|s| s.to_str()).unwrap_or("ratings").to_string();
    let (interactions, mut skipped) = match format {
        RatingsFormat::MovielensDat => {
            let loaded = load_movielens_ratings(ratings_file)?;
            (loaded.records, loaded.skipped)
        }
        RatingsFormat::LastfmTsv => {
            let loaded = load_lastfm_tsv(ratings_file)?;
            (loaded.records, loaded.skipped)
        }
    };
    let movies = match (format, movies_path) {
        (RatingsFormat::MovielensDat, Some(path)) => {
            let loaded = load_movielens_movies(BufReader::new(std::fs::File::open(path)?))?;
            skipped += loaded.skipped;
            Some(loaded.records)
        }
        _ => None,
    };
    if interactions.is_empty() {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("no parsable interactions in {}", ratings_path.display()),
        ));
    }
    let dataset = assemble_dataset(&name, &interactions, movies.as_deref(), config);
    Ok(Loaded { records: dataset, skipped })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::preprocess::PreprocessConfig;

    const RATINGS: &str = "\
1::10::5::978300760
1::11::3::978302109
1::10::4::978301968
2::10::4::978300275
not-a-line
2::11::5::978824291
";

    const MOVIES: &str = "\
10::Toy Story (1995)::Animation|Children|Comedy
11::GoldenEye (1995)::Action|Adventure|Thriller
";

    #[test]
    fn ratings_parse_and_skip_malformed() {
        let loaded = load_movielens_ratings(RATINGS.as_bytes()).unwrap();
        assert_eq!(loaded.records.len(), 5);
        assert_eq!(loaded.skipped, 1);
        assert_eq!(loaded.records[0], Interaction { user: 1, item: 10, timestamp: 978300760 });
    }

    #[test]
    fn movies_parse_titles_with_double_colon_safety() {
        let loaded = load_movielens_movies(MOVIES.as_bytes()).unwrap();
        assert_eq!(loaded.records.len(), 2);
        assert_eq!(loaded.records[0].title, "Toy Story (1995)");
        assert_eq!(loaded.records[0].genres, vec!["Animation", "Children", "Comedy"]);
    }

    #[test]
    fn lastfm_tsv_skips_header() {
        let tsv = "userID\tartistID\ttagID\ttimestamp\n2\t52\t13\t1238536800000\n2\t53\t13\t1238536800000\n";
        let loaded = load_lastfm_tsv(tsv.as_bytes()).unwrap();
        assert_eq!(loaded.records.len(), 2);
        assert_eq!(loaded.skipped, 0);
        assert_eq!(loaded.records[0].user, 2);
        assert_eq!(loaded.records[0].item, 52);
    }

    #[test]
    fn assemble_builds_dataset_with_metadata() {
        let ratings = load_movielens_ratings(RATINGS.as_bytes()).unwrap();
        let movies = load_movielens_movies(MOVIES.as_bytes()).unwrap();
        let cfg = PreprocessConfig { min_count: 1, dedup_consecutive: false };
        let d = assemble_dataset("ml-test", &ratings.records, Some(&movies.records), &cfg);
        d.check_invariants().unwrap();
        assert_eq!(d.num_users, 2);
        assert_eq!(d.num_items, 2);
        // Metadata carried over through re-indexing.
        let toy = (0..d.num_items).find(|&i| d.item_name(i).contains("Toy Story")).unwrap();
        assert_eq!(d.genre_label(toy), "Animation, Children, Comedy");
    }

    #[test]
    fn load_dataset_from_files_end_to_end() {
        let dir = std::env::temp_dir().join("irs_loaders_files_test");
        std::fs::create_dir_all(&dir).unwrap();
        let ratings = dir.join("ratings.dat");
        let movies = dir.join("movies.dat");
        std::fs::write(&ratings, RATINGS).unwrap();
        std::fs::write(&movies, MOVIES).unwrap();
        let cfg = PreprocessConfig { min_count: 1, dedup_consecutive: false };
        let loaded =
            load_dataset_from_files(RatingsFormat::MovielensDat, &ratings, Some(&movies), &cfg)
                .unwrap();
        assert_eq!(loaded.skipped, 1, "the malformed ratings line is counted");
        let d = loaded.records;
        d.check_invariants().unwrap();
        assert_eq!(d.num_users, 2);
        assert!(d.item_names.iter().any(|n| n.contains("Toy Story")));

        // Missing file surfaces as an io error, not a panic.
        assert!(load_dataset_from_files(
            RatingsFormat::LastfmTsv,
            &dir.join("missing.tsv"),
            None,
            &cfg
        )
        .is_err());
    }

    #[test]
    fn assemble_without_metadata_uses_fallback_names() {
        let ratings = load_movielens_ratings(RATINGS.as_bytes()).unwrap();
        let cfg = PreprocessConfig { min_count: 1, dedup_consecutive: false };
        let d = assemble_dataset("bare", &ratings.records, None, &cfg);
        assert!(d.item_name(0).starts_with("item-"));
        assert!(d.genre_names.is_empty());
    }
}
