//! Core data types shared across the workspace.

/// Dense item identifier in `0..num_items` (the padding token is
/// `num_items`, see [`crate::pad_token`]).
pub type ItemId = usize;

/// Dense user identifier in `0..num_users`.
pub type UserId = usize;

/// Genre/category identifier.
pub type GenreId = usize;

/// One user–item interaction event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interaction {
    /// The acting user.
    pub user: UserId,
    /// The consumed item.
    pub item: ItemId,
    /// Event time (monotonically comparable; synthetic data uses step
    /// counters).
    pub timestamp: i64,
}

/// A preprocessed interaction dataset: one chronologically ordered item
/// sequence per user, plus item metadata.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Dataset label (used in experiment printouts, e.g. `lastfm-like`).
    pub name: String,
    /// Number of distinct users (`sequences.len()`).
    pub num_users: usize,
    /// Number of distinct items.
    pub num_items: usize,
    /// Per-user chronological item sequences.
    pub sequences: Vec<Vec<ItemId>>,
    /// Genre labels per item (possibly several per item).
    pub genres: Vec<Vec<GenreId>>,
    /// Human-readable genre names.
    pub genre_names: Vec<String>,
    /// Human-readable item names (synthetic data fabricates these).
    pub item_names: Vec<String>,
}

impl Dataset {
    /// Total number of interactions.
    pub fn num_interactions(&self) -> usize {
        self.sequences.iter().map(Vec::len).sum()
    }

    /// Per-item interaction counts (popularity).
    pub fn item_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.num_items];
        for seq in &self.sequences {
            for &i in seq {
                counts[i] += 1;
            }
        }
        counts
    }

    /// Genre labels of an item as a display string, e.g. `"Action, Comedy"`.
    pub fn genre_label(&self, item: ItemId) -> String {
        self.genres
            .get(item)
            .map(|gs| {
                gs.iter().map(|&g| self.genre_names[g].clone()).collect::<Vec<_>>().join(", ")
            })
            .unwrap_or_default()
    }

    /// Display name of an item (falls back to `item-<id>`).
    pub fn item_name(&self, item: ItemId) -> String {
        self.item_names.get(item).cloned().unwrap_or_else(|| format!("item-{item}"))
    }

    /// Binary genre feature vectors `[num_items][num_genres]` — the paper
    /// computes item distances on Movielens from genre feature vectors.
    pub fn genre_feature_vectors(&self) -> Vec<Vec<f32>> {
        let g = self.genre_names.len();
        self.genres
            .iter()
            .map(|gs| {
                let mut v = vec![0.0f32; g];
                for &gi in gs {
                    v[gi] = 1.0;
                }
                v
            })
            .collect()
    }

    /// Validate internal invariants; used by tests and debug assertions.
    pub fn check_invariants(&self) -> Result<(), String> {
        if self.sequences.len() != self.num_users {
            return Err(format!(
                "num_users {} != sequences.len() {}",
                self.num_users,
                self.sequences.len()
            ));
        }
        if self.genres.len() != self.num_items {
            return Err(format!(
                "genres.len() {} != num_items {}",
                self.genres.len(),
                self.num_items
            ));
        }
        for (u, seq) in self.sequences.iter().enumerate() {
            for &i in seq {
                if i >= self.num_items {
                    return Err(format!("user {u} references out-of-range item {i}"));
                }
            }
        }
        for (i, gs) in self.genres.iter().enumerate() {
            for &g in gs {
                if g >= self.genre_names.len() {
                    return Err(format!("item {i} references out-of-range genre {g}"));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Dataset {
        Dataset {
            name: "tiny".into(),
            num_users: 2,
            num_items: 3,
            sequences: vec![vec![0, 1, 2], vec![2, 2, 1]],
            genres: vec![vec![0], vec![0, 1], vec![1]],
            genre_names: vec!["A".into(), "B".into()],
            item_names: vec!["x".into(), "y".into(), "z".into()],
        }
    }

    #[test]
    fn counts_and_interactions() {
        let d = tiny();
        assert_eq!(d.num_interactions(), 6);
        assert_eq!(d.item_counts(), vec![1, 2, 3]);
    }

    #[test]
    fn genre_labels_join_names() {
        let d = tiny();
        assert_eq!(d.genre_label(1), "A, B");
        assert_eq!(d.genre_label(0), "A");
    }

    #[test]
    fn genre_feature_vectors_are_binary_indicators() {
        let d = tiny();
        let f = d.genre_feature_vectors();
        assert_eq!(f[1], vec![1.0, 1.0]);
        assert_eq!(f[2], vec![0.0, 1.0]);
    }

    #[test]
    fn invariants_hold_and_detect_corruption() {
        let mut d = tiny();
        assert!(d.check_invariants().is_ok());
        d.sequences[0].push(99);
        assert!(d.check_invariants().is_err());
    }
}
