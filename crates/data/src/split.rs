//! Dataset splitting per §IV-A2 and objective-item sampling per §IV-B1.
//!
//! For each user with history `{i₁,…,i_q}`:
//! * `i_q` is held out to form the next-item **test case**;
//! * the remainder is cut into continuous non-overlapping subsequences with
//!   lengths drawn from `[l_min, l_max]`; each subsequence is a training
//!   (or validation) example whose **last item doubles as the objective**
//!   during IRN training.
//!
//! Pre-padding (`PAD…PAD, i₁,…,i_k`) keeps the objective at a fixed final
//! position (§III-D5); both padding schemes are provided so the ablation
//! bench can compare them.

use rand::{Rng, SeedableRng};

use crate::types::{Dataset, ItemId, UserId};

/// A training/validation example: one contiguous subsequence of a user's
/// history.  The last item is the objective item `i_t` during IRN training.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubSeq {
    /// Owning user.
    pub user: UserId,
    /// The items, in chronological order (length ≥ 2 after splitting).
    pub items: Vec<ItemId>,
}

/// A next-item test case: the user's full history minus the held-out last
/// item, plus that item as the label.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TestCase {
    /// Owning user.
    pub user: UserId,
    /// History `s_h` (everything but the held-out item).
    pub history: Vec<ItemId>,
    /// Held-out next item `i_q`.
    pub next_item: ItemId,
}

/// Split configuration.
#[derive(Debug, Clone)]
pub struct SplitConfig {
    /// Minimum subsequence length (paper: 20).
    pub l_min: usize,
    /// Maximum subsequence length (paper: 50 for Lastfm, 60 for ML-1M).
    pub l_max: usize,
    /// Fraction of subsequences held out for validation.
    pub val_fraction: f32,
    /// RNG seed for subsequence lengths and the validation split.
    pub seed: u64,
}

impl SplitConfig {
    /// The paper's Lastfm setting, with a 10% validation split.
    pub fn lastfm_paper() -> Self {
        SplitConfig { l_min: 20, l_max: 50, val_fraction: 0.1, seed: 0x5eed }
    }

    /// The paper's MovieLens-1M setting.
    pub fn movielens_paper() -> Self {
        SplitConfig { l_min: 20, l_max: 60, val_fraction: 0.1, seed: 0x5eed }
    }

    /// A small setting for scaled-down experiments and tests.
    pub fn small() -> Self {
        SplitConfig { l_min: 8, l_max: 20, val_fraction: 0.1, seed: 0x5eed }
    }
}

/// The complete split.
#[derive(Debug, Clone)]
pub struct DataSplit {
    /// Training subsequences.
    pub train: Vec<SubSeq>,
    /// Validation subsequences.
    pub val: Vec<SubSeq>,
    /// One next-item test case per surviving user.
    pub test: Vec<TestCase>,
}

/// Perform the §IV-A2 split.
pub fn split_dataset(dataset: &Dataset, config: &SplitConfig) -> DataSplit {
    assert!(config.l_min >= 2, "l_min must be at least 2");
    assert!(config.l_max >= config.l_min, "l_max must be ≥ l_min");
    let mut rng = rand::rngs::StdRng::seed_from_u64(config.seed);
    let mut subsequences = Vec::new();
    let mut test = Vec::new();

    for (u, seq) in dataset.sequences.iter().enumerate() {
        if seq.len() < 3 {
            continue; // not enough signal for history + label
        }
        let (body, last) = seq.split_at(seq.len() - 1);
        test.push(TestCase { user: u, history: body.to_vec(), next_item: last[0] });

        // Cut `body` into non-overlapping chunks with lengths in
        // [l_min, l_max]; a trailing remainder shorter than l_min is merged
        // into the previous chunk (or kept alone for short histories —
        // the model pre-pads to l_min at batch time, matching the paper's
        // "prolong through padding").
        let mut start = 0;
        while start < body.len() {
            let remaining = body.len() - start;
            let len = if remaining <= config.l_max {
                remaining
            } else {
                let take = rng.random_range(config.l_min..=config.l_max);
                // Never strand a remainder shorter than 2 items.
                if remaining - take < 2 {
                    remaining
                } else {
                    take
                }
            };
            let chunk = &body[start..start + len];
            if chunk.len() >= 2 {
                subsequences.push(SubSeq { user: u, items: chunk.to_vec() });
            }
            start += len;
        }
    }

    // Validation split.
    let mut train = Vec::new();
    let mut val = Vec::new();
    for s in subsequences {
        if rng.random::<f32>() < config.val_fraction {
            val.push(s);
        } else {
            train.push(s);
        }
    }
    DataSplit { train, val, test }
}

/// Sample one objective item per test case, per §IV-B1: the objective must
/// (1) not occur in the user's history and (2) have at least `min_count`
/// interactions overall.
pub fn sample_objectives(
    dataset: &Dataset,
    test: &[TestCase],
    min_count: usize,
    seed: u64,
) -> Vec<ItemId> {
    let counts = dataset.item_counts();
    let eligible: Vec<ItemId> =
        (0..dataset.num_items).filter(|&i| counts[i] >= min_count).collect();
    assert!(!eligible.is_empty(), "no item has ≥{min_count} interactions");
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    test.iter()
        .map(|tc| {
            // Rejection-sample an item outside the history.
            for _ in 0..10_000 {
                let cand = eligible[rng.random_range(0..eligible.len())];
                if !tc.history.contains(&cand) && cand != tc.next_item {
                    return cand;
                }
            }
            // Degenerate fallback (history covers almost the catalogue):
            // accept any eligible item.
            eligible[rng.random_range(0..eligible.len())]
        })
        .collect()
}

// ---------------------------------------------------------------------
// Padding
// ---------------------------------------------------------------------

/// Padding schemes (§III-D5 compares pre- against post-padding).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PaddingScheme {
    /// `PAD…PAD, i₁,…,i_k` — keeps the last element at a fixed position.
    Pre,
    /// `i₁,…,i_k, PAD…PAD`.
    Post,
}

/// Pad (or left-truncate, keeping the most recent items) to `target_len`.
pub fn pad_to(
    seq: &[ItemId],
    target_len: usize,
    pad: ItemId,
    scheme: PaddingScheme,
) -> Vec<ItemId> {
    if seq.len() >= target_len {
        return seq[seq.len() - target_len..].to_vec();
    }
    let mut out = Vec::with_capacity(target_len);
    match scheme {
        PaddingScheme::Pre => {
            out.resize(target_len - seq.len(), pad);
            out.extend_from_slice(seq);
        }
        PaddingScheme::Post => {
            out.extend_from_slice(seq);
            out.resize(target_len, pad);
        }
    }
    out
}

/// Number of leading PAD tokens in a pre-padded sequence.
pub fn leading_pad_len(seq: &[ItemId], pad: ItemId) -> usize {
    seq.iter().take_while(|&&i| i == pad).count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{generate, SynthConfig};

    fn dataset() -> Dataset {
        generate(&SynthConfig::tiny(21)).dataset
    }

    #[test]
    fn split_covers_history_without_overlap() {
        let d = dataset();
        let cfg = SplitConfig::small();
        let s = split_dataset(&d, &cfg);
        // Reassemble per-user: subsequences concatenated in order must be a
        // prefix partition of the body (history minus held-out item).
        for tc in &s.test {
            let mut rebuilt: Vec<ItemId> = Vec::new();
            for sub in s.train.iter().chain(&s.val).filter(|sub| sub.user == tc.user) {
                rebuilt.extend_from_slice(&sub.items);
            }
            // Order across train/val interleave can differ, so compare as
            // multisets of positions: the concatenation in original split
            // order equals history; verify multiset equality instead.
            let mut a = rebuilt.clone();
            let mut b = tc.history.clone();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "subsequences must partition the history for user {}", tc.user);
        }
    }

    #[test]
    fn chunks_respect_length_bounds() {
        let d = dataset();
        let cfg = SplitConfig { l_min: 5, l_max: 9, val_fraction: 0.0, seed: 1 };
        let s = split_dataset(&d, &cfg);
        for sub in &s.train {
            // Only the final chunk of a user (or a short user) may exceed
            // l_max by the merge rule... it cannot: merging only happens when
            // remaining ≤ l_max, or remainder < 2 which extends to `remaining`
            // ≤ l_max + 1. Verify the practical bound.
            assert!(sub.items.len() >= 2);
            assert!(
                sub.items.len() <= cfg.l_max + 2,
                "chunk length {} far exceeds l_max {}",
                sub.items.len(),
                cfg.l_max
            );
        }
    }

    #[test]
    fn test_cases_hold_out_exactly_last_item() {
        let d = dataset();
        let s = split_dataset(&d, &SplitConfig::small());
        for tc in &s.test {
            let orig = &d.sequences[tc.user];
            assert_eq!(tc.next_item, *orig.last().unwrap());
            assert_eq!(tc.history.as_slice(), &orig[..orig.len() - 1]);
        }
    }

    #[test]
    fn validation_fraction_is_roughly_respected() {
        let d = dataset();
        let cfg = SplitConfig { l_min: 4, l_max: 8, val_fraction: 0.3, seed: 9 };
        let s = split_dataset(&d, &cfg);
        let total = s.train.len() + s.val.len();
        let frac = s.val.len() as f32 / total as f32;
        assert!((0.1..0.5).contains(&frac), "val fraction {frac} out of expected band");
    }

    #[test]
    fn objectives_respect_constraints() {
        let d = dataset();
        let s = split_dataset(&d, &SplitConfig::small());
        let objectives = sample_objectives(&d, &s.test, 3, 77);
        let counts = d.item_counts();
        assert_eq!(objectives.len(), s.test.len());
        for (tc, &obj) in s.test.iter().zip(&objectives) {
            assert!(counts[obj] >= 3, "objective must be popular enough");
            assert!(!tc.history.contains(&obj), "objective must be unseen for user {}", tc.user);
        }
    }

    #[test]
    fn objective_sampling_is_deterministic() {
        let d = dataset();
        let s = split_dataset(&d, &SplitConfig::small());
        let a = sample_objectives(&d, &s.test, 3, 42);
        let b = sample_objectives(&d, &s.test, 3, 42);
        assert_eq!(a, b);
    }

    #[test]
    fn pre_padding_fixes_last_position() {
        let seq = vec![5, 6, 7];
        let padded = pad_to(&seq, 6, 99, PaddingScheme::Pre);
        assert_eq!(padded, vec![99, 99, 99, 5, 6, 7]);
        assert_eq!(leading_pad_len(&padded, 99), 3);
        let post = pad_to(&seq, 6, 99, PaddingScheme::Post);
        assert_eq!(post, vec![5, 6, 7, 99, 99, 99]);
    }

    #[test]
    fn padding_truncates_keeping_most_recent() {
        let seq = vec![1, 2, 3, 4, 5];
        let padded = pad_to(&seq, 3, 99, PaddingScheme::Pre);
        assert_eq!(padded, vec![3, 4, 5]);
    }
}
