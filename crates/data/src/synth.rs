//! Synthetic interaction-data generator.
//!
//! Stands in for the paper's MovieLens-1M and Lastfm datasets (see the
//! substitution table in `DESIGN.md`).  The generative process:
//!
//! * `num_genres` genres arranged on a **ring**; adjacent genres are
//!   "related" (Action↔Thriller↔Adventure…), which is what makes smooth
//!   cross-genre influence paths possible at all.
//! * Each item has a primary genre; ~30% of items additionally carry an
//!   adjacent genre and act as **bridge items**.
//! * Within each genre items form a progression: from item with
//!   within-genre index `k`, a session tends to continue at `k + step`
//!   (small geometric step).  This plants the *item-level sequential
//!   dependency* that sequential recommenders (and the IRS evaluator) must
//!   be able to learn.
//! * Item popularity is Zipf-distributed.
//! * Each user has an **openness** in `(0, 1)` (ground-truth
//!   impressionability): per step the user leaves the current genre for an
//!   adjacent one with probability proportional to their openness.
//!
//! Presets [`SynthConfig::lastfm_like`] and [`SynthConfig::movielens_like`]
//! match the Table I statistics shape; a `scale` knob shrinks them so unit
//! tests run in milliseconds and experiments in seconds.

use rand::{Rng, SeedableRng};

use crate::types::{Dataset, GenreId, ItemId, UserId};
use crate::Interaction;

/// Configuration of the synthetic generator.
#[derive(Debug, Clone)]
pub struct SynthConfig {
    /// Dataset label.
    pub name: String,
    /// Number of users to simulate.
    pub num_users: usize,
    /// Number of items.
    pub num_items: usize,
    /// Number of genres on the ring.
    pub num_genres: usize,
    /// Mean sequence length (actual lengths are ~lognormal around this).
    pub avg_seq_len: f32,
    /// Minimum sequence length emitted by the simulator.
    pub min_seq_len: usize,
    /// Zipf exponent for item popularity (larger = more skewed).
    pub zipf_exponent: f32,
    /// Probability that a session step follows the within-genre progression
    /// (vs. jumping to a popular item of the genre).
    pub sequential_prob: f32,
    /// Mean user openness (genre-drift propensity).
    pub openness_mean: f32,
    /// Standard deviation of user openness.
    pub openness_std: f32,
    /// Probability that an item carries a secondary (adjacent) genre.
    pub bridge_prob: f32,
    /// RNG seed — all generation is deterministic given the config.
    pub seed: u64,
}

impl SynthConfig {
    /// Lastfm-like preset (Table I: 896 users, 2 682 items, ≈31
    /// interactions/user).  `scale` in `(0, 1]` shrinks users and items.
    pub fn lastfm_like(scale: f32) -> Self {
        assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0,1]");
        SynthConfig {
            name: "lastfm-like".into(),
            num_users: ((896.0 * scale) as usize).max(24),
            num_items: ((2682.0 * scale) as usize).max(60),
            num_genres: 12,
            avg_seq_len: 31.0,
            min_seq_len: 8,
            zipf_exponent: 1.05,
            sequential_prob: 0.7,
            openness_mean: 0.25,
            openness_std: 0.12,
            bridge_prob: 0.3,
            seed: 0x1a5f,
        }
    }

    /// MovieLens-1M-like preset (Table I: 6 040 users, 3 415 items, ≈164
    /// interactions/user).  `scale` shrinks users and items; the average
    /// sequence length is also tempered below `scale = 0.25` so CPU
    /// training budgets stay reasonable.
    pub fn movielens_like(scale: f32) -> Self {
        assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0,1]");
        let avg = if scale < 0.25 { 60.0 } else { 164.0 };
        SynthConfig {
            name: "movielens-like".into(),
            num_users: ((6040.0 * scale) as usize).max(30),
            num_items: ((3415.0 * scale) as usize).max(80),
            num_genres: 18,
            avg_seq_len: avg,
            min_seq_len: 10,
            zipf_exponent: 0.9,
            sequential_prob: 0.65,
            openness_mean: 0.3,
            openness_std: 0.15,
            bridge_prob: 0.35,
            seed: 0x3a17,
        }
    }

    /// A deliberately tiny config for unit tests.
    pub fn tiny(seed: u64) -> Self {
        SynthConfig {
            name: "tiny-synth".into(),
            num_users: 40,
            num_items: 60,
            num_genres: 5,
            avg_seq_len: 18.0,
            min_seq_len: 6,
            zipf_exponent: 1.0,
            sequential_prob: 0.7,
            openness_mean: 0.3,
            openness_std: 0.15,
            bridge_prob: 0.3,
            seed,
        }
    }
}

/// Genre names used by the simulator (cycled if `num_genres` exceeds the
/// list).  Movie-flavoured to make the Table VII case study legible.
const GENRE_NAMES: &[&str] = &[
    "Action",
    "Thriller",
    "Adventure",
    "Sci-Fi",
    "Fantasy",
    "Animation",
    "Children",
    "Comedy",
    "Romance",
    "Drama",
    "Crime",
    "Mystery",
    "Horror",
    "War",
    "Western",
    "Musical",
    "Documentary",
    "Film-Noir",
];

/// Item metadata produced by the generator, used internally and exposed for
/// tests that need the ground truth.
#[derive(Debug, Clone)]
pub struct SynthItem {
    /// Primary genre.
    pub genre: GenreId,
    /// Optional secondary (adjacent) genre — bridge items.
    pub secondary: Option<GenreId>,
    /// Position in the within-genre progression.
    pub rank_in_genre: usize,
    /// Zipf popularity weight.
    pub weight: f32,
}

/// The generator's full output: the [`Dataset`] plus ground truth useful
/// for validation (per-user openness, raw interactions).
#[derive(Debug, Clone)]
pub struct SynthOutput {
    /// The generated dataset (already in per-user sequence form).
    pub dataset: Dataset,
    /// Ground-truth per-user openness (impressionability analogue).
    pub openness: Vec<f32>,
    /// Flat interaction log (for preprocessing tests).
    pub interactions: Vec<Interaction>,
    /// Per-item ground truth.
    pub items: Vec<SynthItem>,
}

/// Run the generator.
pub fn generate(config: &SynthConfig) -> SynthOutput {
    assert!(config.num_genres >= 3, "need at least 3 genres for a ring");
    assert!(config.num_items >= config.num_genres, "need at least one item per genre");
    let mut rng = rand::rngs::StdRng::seed_from_u64(config.seed);
    let g = config.num_genres;

    // ---- items -------------------------------------------------------
    let mut items: Vec<SynthItem> = Vec::with_capacity(config.num_items);
    let mut per_genre: Vec<Vec<ItemId>> = vec![Vec::new(); g];
    for i in 0..config.num_items {
        let genre = i % g; // round-robin keeps genres balanced
        let secondary = (rng.random::<f32>() < config.bridge_prob).then(|| {
            if rng.random::<bool>() {
                (genre + 1) % g
            } else {
                (genre + g - 1) % g
            }
        });
        let rank = per_genre[genre].len();
        per_genre[genre].push(i);
        items.push(SynthItem {
            genre,
            secondary,
            rank_in_genre: rank,
            weight: 1.0 / ((rank + 1) as f32).powf(config.zipf_exponent),
        });
    }

    // Cumulative popularity tables per genre for O(log n) sampling.
    let cumulative: Vec<Vec<f32>> = per_genre
        .iter()
        .map(|ids| {
            let mut acc = 0.0;
            ids.iter()
                .map(|&i| {
                    acc += items[i].weight;
                    acc
                })
                .collect()
        })
        .collect();

    let sample_popular = |genre: GenreId, rng: &mut rand::rngs::StdRng| -> ItemId {
        let cum = &cumulative[genre];
        let total = *cum.last().expect("genre with no items");
        let x = rng.random::<f32>() * total;
        let pos = cum.partition_point(|&c| c < x).min(cum.len() - 1);
        per_genre[genre][pos]
    };

    // ---- users -------------------------------------------------------
    let mut sequences: Vec<Vec<ItemId>> = Vec::with_capacity(config.num_users);
    let mut openness = Vec::with_capacity(config.num_users);
    let mut interactions = Vec::new();
    let mut ts: i64 = 0;

    for u in 0..config.num_users {
        let o =
            (config.openness_mean + config.openness_std * irs_gauss(&mut rng)).clamp(0.02, 0.95);
        openness.push(o);

        // Lognormal-ish length around the configured mean.
        let len_factor = (0.45 * irs_gauss(&mut rng)).exp();
        let len = ((config.avg_seq_len * len_factor) as usize).max(config.min_seq_len);

        let mut genre: GenreId = rng.random_range(0..g);
        let mut pos_in_genre: usize = rng.random_range(0..per_genre[genre].len());
        let mut seq: Vec<ItemId> = Vec::with_capacity(len);

        for _ in 0..len {
            // Genre drift: open users wander to adjacent genres more.
            if rng.random::<f32>() < o * 0.45 {
                genre = if rng.random::<bool>() { (genre + 1) % g } else { (genre + g - 1) % g };
                pos_in_genre = rng.random_range(0..per_genre[genre].len());
            }
            let item = if rng.random::<f32>() < config.sequential_prob {
                // Follow the within-genre progression with a small step.
                let n = per_genre[genre].len();
                let step = 1 + geometric(&mut rng, 0.6).min(3);
                pos_in_genre = (pos_in_genre + step) % n;
                per_genre[genre][pos_in_genre]
            } else {
                let it = sample_popular(genre, &mut rng);
                pos_in_genre = items[it].rank_in_genre;
                it
            };
            // Avoid immediate repeats (they are merged by preprocessing
            // anyway but a no-repeat stream is more realistic).
            if seq.last() == Some(&item) {
                continue;
            }
            // Bridge items may pull the session into their secondary genre.
            if let Some(sec) = items[item].secondary {
                if rng.random::<f32>() < 0.35 {
                    genre = sec;
                    pos_in_genre = rng.random_range(0..per_genre[genre].len());
                }
            }
            seq.push(item);
            interactions.push(Interaction { user: u as UserId, item, timestamp: ts });
            ts += 1;
        }
        sequences.push(seq);
    }

    let genre_names: Vec<String> = (0..g)
        .map(|i| {
            let base = GENRE_NAMES[i % GENRE_NAMES.len()].to_string();
            if i < GENRE_NAMES.len() {
                base
            } else {
                format!("{base}-{}", i / GENRE_NAMES.len() + 1)
            }
        })
        .collect();

    let item_names: Vec<String> = items
        .iter()
        .enumerate()
        .map(|(i, it)| format!("{} #{:03} ({})", genre_names[it.genre], it.rank_in_genre, i))
        .collect();

    let genres: Vec<Vec<GenreId>> = items
        .iter()
        .map(|it| {
            let mut gs = vec![it.genre];
            if let Some(s) = it.secondary {
                gs.push(s);
            }
            gs
        })
        .collect();

    let dataset = Dataset {
        name: config.name.clone(),
        num_users: config.num_users,
        num_items: config.num_items,
        sequences,
        genres,
        genre_names,
        item_names,
    };
    debug_assert!(dataset.check_invariants().is_ok());

    SynthOutput { dataset, openness, interactions, items }
}

/// Standard normal via Box–Muller (mirrors `irs_tensor::box_muller`, kept
/// local so `irs_data` has no tensor dependency).
fn irs_gauss<R: Rng + ?Sized>(rng: &mut R) -> f32 {
    loop {
        let u1: f32 = rng.random();
        if u1 <= f32::MIN_POSITIVE {
            continue;
        }
        let u2: f32 = rng.random();
        return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos();
    }
}

/// Geometric-distributed integer ≥ 0 with success probability `p`.
fn geometric<R: Rng + ?Sized>(rng: &mut R, p: f32) -> usize {
    let mut k = 0;
    while rng.random::<f32>() > p && k < 32 {
        k += 1;
    }
    k
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let cfg = SynthConfig::tiny(7);
        let a = generate(&cfg);
        let b = generate(&cfg);
        assert_eq!(a.dataset.sequences, b.dataset.sequences);
        assert_eq!(a.openness, b.openness);
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&SynthConfig::tiny(1));
        let b = generate(&SynthConfig::tiny(2));
        assert_ne!(a.dataset.sequences, b.dataset.sequences);
    }

    #[test]
    fn dataset_invariants_hold() {
        let out = generate(&SynthConfig::tiny(3));
        out.dataset.check_invariants().unwrap();
        assert_eq!(out.openness.len(), out.dataset.num_users);
        assert!(out.openness.iter().all(|&o| (0.0..=1.0).contains(&o)));
    }

    #[test]
    fn no_immediate_repeats() {
        let out = generate(&SynthConfig::tiny(4));
        for seq in &out.dataset.sequences {
            for w in seq.windows(2) {
                assert_ne!(w[0], w[1], "generator must not emit immediate repeats");
            }
        }
    }

    #[test]
    fn sequences_meet_min_length() {
        let cfg = SynthConfig::tiny(5);
        let out = generate(&cfg);
        // The generator may skip a step when it would repeat an item, so
        // allow a small shortfall below min_seq_len.
        for seq in &out.dataset.sequences {
            assert!(seq.len() >= cfg.min_seq_len / 2, "sequence too short: {}", seq.len());
        }
    }

    #[test]
    fn popularity_is_skewed() {
        let out = generate(&SynthConfig::lastfm_like(0.05));
        let mut counts = out.dataset.item_counts();
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let top_decile: usize = counts[..counts.len() / 10].iter().sum();
        let total: usize = counts.iter().sum();
        // Uniform popularity would put 10% of mass in the top decile; the
        // Zipf jumps push it well above that.
        assert!(
            top_decile as f64 > 0.15 * total as f64,
            "top-10% items should hold >15% of interactions (got {top_decile}/{total})"
        );
    }

    #[test]
    fn genre_coherence_dominates_transitions() {
        // Consecutive items share a genre much more often than chance.
        let out = generate(&SynthConfig::tiny(8));
        let d = &out.dataset;
        let mut same = 0usize;
        let mut all = 0usize;
        for seq in &d.sequences {
            for w in seq.windows(2) {
                let ga = &d.genres[w[0]];
                let gb = &d.genres[w[1]];
                if ga.iter().any(|g| gb.contains(g)) {
                    same += 1;
                }
                all += 1;
            }
        }
        let frac = same as f64 / all as f64;
        assert!(frac > 0.5, "genre coherence too weak: {frac}");
    }

    #[test]
    fn presets_track_table1_shape() {
        let cfg = SynthConfig::lastfm_like(1.0);
        assert_eq!(cfg.num_users, 896);
        assert_eq!(cfg.num_items, 2682);
        let cfg2 = SynthConfig::movielens_like(1.0);
        assert_eq!(cfg2.num_users, 6040);
        assert_eq!(cfg2.num_items, 3415);
        assert!((cfg2.avg_seq_len - 164.0).abs() < f32::EPSILON);
    }

    #[test]
    fn open_users_visit_more_genres() {
        // Ground-truth impressionability must be visible in behaviour:
        // correlate openness with the number of distinct genres visited.
        let out = generate(&SynthConfig::lastfm_like(0.05));
        let d = &out.dataset;
        let mut open_genres = Vec::new();
        let mut closed_genres = Vec::new();
        for (u, seq) in d.sequences.iter().enumerate() {
            let mut gs: Vec<GenreId> = seq.iter().map(|&i| d.genres[i][0]).collect();
            gs.sort_unstable();
            gs.dedup();
            let per_step = gs.len() as f32 / seq.len().max(1) as f32;
            if out.openness[u] > 0.4 {
                open_genres.push(per_step);
            } else if out.openness[u] < 0.15 {
                closed_genres.push(per_step);
            }
        }
        if !open_genres.is_empty() && !closed_genres.is_empty() {
            let mo: f32 = open_genres.iter().sum::<f32>() / open_genres.len() as f32;
            let mc: f32 = closed_genres.iter().sum::<f32>() / closed_genres.len() as f32;
            assert!(mo > mc, "open users should drift across more genres: {mo} vs {mc}");
        }
    }
}
