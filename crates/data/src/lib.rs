//! # irs_data — datasets, synthetic generators, preprocessing, splitting
//!
//! The paper evaluates on MovieLens-1M and Lastfm.  Those datasets are not
//! available in this offline environment, so this crate provides a
//! **synthetic interaction generator** ([`synth`]) engineered to reproduce
//! the structural properties the paper's phenomena depend on:
//!
//! 1. *Sequential dependency among items* — sessions follow a within-genre
//!    item progression plus popularity jumps, so next-item models have real
//!    signal to learn.
//! 2. *Genre/topic clustering with smooth cross-genre bridges* — genres sit
//!    on a ring; adjacent genres share "bridge" items (think *Avatar*
//!    bridging Fantasy and Romance in the paper's Fig. 1), so influence
//!    paths between genres exist.
//! 3. *Heterogeneous user impressionability* — each simulated user has an
//!    openness parameter governing how often they drift to a new genre,
//!    the ground-truth analogue of the paper's `r_u`.
//!
//! The rest of the crate implements the paper's §IV-A pipeline:
//! [`preprocess`] (positive-feedback flattening, consecutive dedup,
//! iterative min-5 filtering), [`split`] (hold-out of the last item,
//! subsequence splitting with lengths in `[l_min, l_max]`, pre-padding) and
//! [`stats`] (the Table I statistics).

pub mod loaders;
pub mod preprocess;
pub mod split;
pub mod stats;
pub mod synth;
mod types;

pub use types::{Dataset, GenreId, Interaction, ItemId, UserId};

/// Reserved padding token: one past the largest item id.
///
/// All models in the workspace size their item vocabulary as
/// `num_items + 1` and treat index `num_items` as `PAD`.
pub fn pad_token(num_items: usize) -> ItemId {
    num_items
}
