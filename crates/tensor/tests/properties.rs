//! Property-based tests for the tensor engine: algebraic identities of the
//! kernels and linearity/consistency of the autograd tape.

use irs_tensor::{Graph, Tensor};
use proptest::prelude::*;

/// Strategy: a tensor with the given shape and small finite entries.
fn tensor(shape: &'static [usize]) -> impl Strategy<Value = Tensor> {
    let n: usize = shape.iter().product();
    proptest::collection::vec(-3.0f32..3.0, n).prop_map(move |data| Tensor::from_vec(data, shape))
}

fn close(a: f32, b: f32, tol: f32) -> bool {
    (a - b).abs() <= tol * (1.0 + a.abs().max(b.abs()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Softmax is invariant under adding a constant to every logit.
    #[test]
    fn softmax_shift_invariance(x in tensor(&[4, 6]), c in -5.0f32..5.0) {
        let a = x.softmax_last();
        let b = x.map(|v| v + c).softmax_last();
        for (p, q) in a.data().iter().zip(b.data()) {
            prop_assert!(close(*p, *q, 1e-4), "{p} vs {q}");
        }
    }

    /// Softmax rows are probability distributions.
    #[test]
    fn softmax_rows_are_distributions(x in tensor(&[3, 8])) {
        let s = x.softmax_last();
        for row in s.data().chunks(8) {
            let sum: f32 = row.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            prop_assert!(row.iter().all(|&p| (0.0..=1.0).contains(&p)));
        }
    }

    /// Matmul distributes over addition: A(B + C) = AB + AC.
    #[test]
    fn matmul_distributes(
        a in tensor(&[3, 4]),
        b in tensor(&[4, 2]),
        c in tensor(&[4, 2]),
    ) {
        let lhs = a.matmul(&b.add(&c));
        let rhs = a.matmul(&b).add(&a.matmul(&c));
        for (x, y) in lhs.data().iter().zip(rhs.data()) {
            prop_assert!(close(*x, *y, 1e-4), "{x} vs {y}");
        }
    }

    /// (AB)ᵀ = BᵀAᵀ.
    #[test]
    fn matmul_transpose_identity(a in tensor(&[3, 4]), b in tensor(&[4, 5])) {
        let lhs = a.matmul(&b).transpose2d();
        let rhs = b.transpose2d().matmul(&a.transpose2d());
        for (x, y) in lhs.data().iter().zip(rhs.data()) {
            prop_assert!(close(*x, *y, 1e-4));
        }
    }

    /// The tape is linear: grad of (αf + βg) = α·grad f + β·grad g.
    #[test]
    fn autograd_linearity(x in tensor(&[5]), alpha in -2.0f32..2.0, beta in -2.0f32..2.0) {
        // f = Σ x², g = Σ sin-ish via tanh composition
        let grad_of = |coeff_a: f32, coeff_b: f32| -> Tensor {
            let g = Graph::new();
            let v = g.var(x.clone(), true);
            let f = v.mul(v).sum_all().mul_scalar(coeff_a);
            let h = v.tanh().sum_all().mul_scalar(coeff_b);
            let loss = f.add(h);
            g.backward(loss);
            g.grad(v).unwrap()
        };
        let combined = grad_of(alpha, beta);
        let fa = grad_of(alpha, 0.0);
        let gb = grad_of(0.0, beta);
        for ((c, a), b) in combined.data().iter().zip(fa.data()).zip(gb.data()) {
            prop_assert!(close(*c, a + b, 1e-4), "{c} vs {}", a + b);
        }
    }

    /// Gather followed by scatter-add backward conserves gradient mass:
    /// the total gradient into the table equals the total upstream
    /// gradient.
    #[test]
    fn gather_conserves_gradient_mass(
        w in tensor(&[6, 3]),
        idx in proptest::collection::vec(0usize..6, 1..10),
    ) {
        let g = Graph::new();
        let table = g.var(w, true);
        let gathered = table.gather_rows(&idx);
        let loss = gathered.sum_all();
        g.backward(loss);
        let dw = g.grad(table).unwrap();
        let mass: f32 = dw.data().iter().sum();
        prop_assert!(close(mass, (idx.len() * 3) as f32, 1e-4));
    }

    /// Reshape/transpose round-trips preserve gradients exactly.
    #[test]
    fn shape_ops_round_trip_gradients(x in tensor(&[2, 3, 4])) {
        let g = Graph::new();
        let v = g.var(x.clone(), true);
        let y = v.transpose_last2().transpose_last2().reshape(&[6, 4]).reshape(&[2, 3, 4]);
        let loss = y.mul(y).sum_all();
        g.backward(loss);
        let dv = g.grad(v).unwrap();
        for (d, xv) in dv.data().iter().zip(x.data()) {
            prop_assert!(close(*d, 2.0 * xv, 1e-4));
        }
    }

    /// Cross-entropy is minimised (≥ 0, and ≤ uniform loss) and its
    /// gradient rows sum to ~0 (softmax minus one-hot property).
    #[test]
    fn cross_entropy_gradient_rows_sum_to_zero(
        logits in tensor(&[4, 5]),
        targets in proptest::collection::vec(0usize..5, 4),
    ) {
        let g = Graph::new();
        let v = g.var(logits, true);
        let loss = v.cross_entropy(&targets, usize::MAX);
        prop_assert!(loss.item() >= 0.0);
        g.backward(loss);
        let dv = g.grad(v).unwrap();
        for row in dv.data().chunks(5) {
            let s: f32 = row.iter().sum();
            prop_assert!(s.abs() < 1e-4, "row gradient sum {s}");
        }
    }

    /// The packed-B register-tiled matmul kernel is bitwise equal to the
    /// plain blocked kernel on arbitrary (odd) shapes — the invariant that
    /// lets `matmul_into` dispatch by shape without batched and scalar
    /// forwards ever diverging.
    #[test]
    fn packed_matmul_equals_plain_matmul(
        m in 1usize..12,
        k in 1usize..40,
        n in 1usize..40,
        seed in 0u32..1000,
    ) {
        let numel_a = m * k;
        let numel_b = k * n;
        // Deterministic pseudo-random fill from the seed (keeps the
        // strategy space small while varying values).
        let val = |i: usize| ((i as f32 * 0.37 + seed as f32 * 0.11).sin()) * 2.0;
        let a: Vec<f32> = (0..numel_a).map(val).collect();
        let b: Vec<f32> = (numel_a..numel_a + numel_b).map(val).collect();
        let mut plain = vec![0.0f32; m * n];
        let mut packed = vec![0.0f32; m * n];
        irs_tensor::matmul_into_plain(&a, &b, &mut plain, m, k, n);
        irs_tensor::matmul_into_packed(&a, &b, &mut packed, m, k, n);
        for (p, q) in plain.iter().zip(&packed) {
            prop_assert_eq!(p.to_bits(), q.to_bits(), "{m}x{k}x{n}: {p} vs {q}");
        }
    }

    /// Metadata-only transpose views materialise to exactly the bits the
    /// copying transpose produces, for arbitrary (including degenerate)
    /// shapes.
    #[test]
    fn transpose_view_bitwise_equals_copy(m in 1usize..12, n in 1usize..12, seed in 0u32..1000) {
        let val = |i: usize| ((i as f32 * 0.41 + seed as f32 * 0.13).sin()) * 2.0;
        let x = Tensor::from_vec((0..m * n).map(val).collect(), &[m, n]);
        let view = x.transpose2d_view().contiguous();
        let copy = x.transpose2d();
        prop_assert_eq!(view.shape(), copy.shape());
        for (a, b) in view.data().iter().zip(copy.data()) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    /// Every rank-3 permutation view addresses exactly the element the
    /// naive index shuffle produces — the stride arithmetic is the whole
    /// claim, so the comparison is bitwise.
    #[test]
    fn permute_view_bitwise_equals_index_shuffle(
        a in 1usize..5, b in 1usize..5, c in 1usize..5,
        perm_idx in 0usize..6,
        seed in 0u32..1000,
    ) {
        const PERMS: [[usize; 3]; 6] =
            [[0, 1, 2], [0, 2, 1], [1, 0, 2], [1, 2, 0], [2, 0, 1], [2, 1, 0]];
        let perm = PERMS[perm_idx];
        let val = |i: usize| ((i as f32 * 0.23 + seed as f32 * 0.17).sin()) * 2.0;
        let x = Tensor::from_vec((0..a * b * c).map(val).collect(), &[a, b, c]);
        let p = x.permute_view(&perm);
        let shape = [a, b, c];
        prop_assert_eq!(p.shape(), &[shape[perm[0]], shape[perm[1]], shape[perm[2]]]);
        for i in 0..shape[perm[0]] {
            for j in 0..shape[perm[1]] {
                for k in 0..shape[perm[2]] {
                    let mut src = [0usize; 3];
                    src[perm[0]] = i;
                    src[perm[1]] = j;
                    src[perm[2]] = k;
                    prop_assert_eq!(p.at(&[i, j, k]).to_bits(), x.at(&src).to_bits());
                }
            }
        }
        // Materialising the view round-trips the exact bits too.
        let dense = p.contiguous();
        for i in 0..shape[perm[0]] {
            for j in 0..shape[perm[1]] {
                for k in 0..shape[perm[2]] {
                    prop_assert_eq!(dense.at(&[i, j, k]).to_bits(), p.at(&[i, j, k]).to_bits());
                }
            }
        }
    }

    /// The head-split view materialises to exactly the `[B,T,D] ->
    /// [B*H,T,D/H]` gather the copying op runs, over random widths and
    /// head counts.
    #[test]
    fn split_heads_view_bitwise_equals_materialized(
        b in 1usize..4, t in 1usize..5, heads in 1usize..4, dk in 1usize..4,
        seed in 0u32..1000,
    ) {
        let d = heads * dk;
        let val = |i: usize| ((i as f32 * 0.31 + seed as f32 * 0.07).sin()) * 2.0;
        let x = Tensor::from_vec((0..b * t * d).map(val).collect(), &[b, t, d]);
        let view = x.split_heads_view(heads);
        prop_assert_eq!(view.shape(), &[b * heads, t, dk]);
        let dense = view.contiguous();
        for bi in 0..b {
            for h in 0..heads {
                for ti in 0..t {
                    for f in 0..dk {
                        let expect = x.at(&[bi, ti, h * dk + f]);
                        prop_assert_eq!(
                            dense.at(&[bi * heads + h, ti, f]).to_bits(),
                            expect.to_bits()
                        );
                    }
                }
            }
        }
    }

    /// Attention-shaped NT matmul over head-split *views* is bitwise equal
    /// to the same computation over head-split *copies* — values and input
    /// gradients — across random shapes.  This is the invariant that lets
    /// `MultiHeadAttention` swap copies for views without moving a bit.
    #[test]
    fn bmm_nt_view_path_bitwise_equals_copy_path(
        b in 1usize..3, t in 1usize..5, heads in 1usize..3, dk in 1usize..4,
        seed in 0u32..1000,
    ) {
        let d = heads * dk;
        let val = |i: usize| ((i as f32 * 0.19 + seed as f32 * 0.23).sin()) * 2.0;
        let x = Tensor::from_vec((0..b * t * d).map(val).collect(), &[b, t, d]);
        let run = |use_view: bool| -> (Vec<u32>, Vec<u32>) {
            let g = Graph::new();
            let v = g.var(x.clone(), true);
            let (q, k) = if use_view {
                (v.split_heads_view(heads), v.split_heads_view(heads))
            } else {
                (v.split_heads(heads), v.split_heads(heads))
            };
            let scores = q.bmm_nt(k);
            let loss = scores.mul(scores).sum_all();
            g.backward(loss);
            let value: Vec<u32> = scores.value().data().iter().map(|f| f.to_bits()).collect();
            let grad: Vec<u32> =
                g.grad(v).unwrap().data().iter().map(|f| f.to_bits()).collect();
            (value, grad)
        };
        let (val_view, grad_view) = run(true);
        let (val_copy, grad_copy) = run(false);
        prop_assert_eq!(val_view, val_copy);
        prop_assert_eq!(grad_view, grad_copy);
    }

    /// Layer-norm output is invariant to input shift and scale (with unit
    /// gamma, zero beta).
    #[test]
    fn layer_norm_shift_scale_invariance(
        x in tensor(&[2, 6]),
        shift in -3.0f32..3.0,
        scale in 0.5f32..3.0,
    ) {
        let run = |input: Tensor| {
            let g = Graph::new();
            let v = g.var(input, false);
            let gamma = g.constant(Tensor::ones(&[6]));
            let beta = g.constant(Tensor::zeros(&[6]));
            v.layer_norm(gamma, beta, 1e-6).value()
        };
        let base = run(x.clone());
        let transformed = run(x.map(|v| v * scale + shift));
        for (a, b) in base.data().iter().zip(transformed.data()) {
            prop_assert!(close(*a, *b, 2e-2), "{a} vs {b}");
        }
    }
}

proptest! {
    // Heavier end-to-end cases: a full (gather -> view attention ->
    // cross-entropy) training step per case, so fewer cases.
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A replayed step is bitwise equal to recording the same step on a
    /// fresh graph, across random shapes, *changed per-step payloads*
    /// (gather indices and cross-entropy targets differ between the
    /// recorded step and the replayed one), and forced kernel thread
    /// counts.  This is the record-once/replay-per-minibatch contract:
    /// the tape caches the op plan, never the data.
    #[test]
    fn tape_replay_bitwise_equals_fresh_rerecord(
        b in 1usize..3, t in 1usize..4, heads in 1usize..3, dk in 1usize..3,
        threads in 1usize..4,
        seed in 0u32..1000,
    ) {
        let d = heads * dk;
        let vocab = 8usize;
        let val = |i: usize| ((i as f32 * 0.29 + seed as f32 * 0.19).sin()) * 2.0;
        let table = Tensor::from_vec((0..vocab * d).map(val).collect(), &[vocab, d]);
        let pick = |step: usize, j: usize, m: usize| {
            (seed as usize).wrapping_mul(31).wrapping_add(step * 17 + j * 7) % m
        };
        let idx = |step: usize| -> Vec<usize> {
            (0..b * t).map(|j| pick(step, j, vocab)).collect()
        };
        let targets = |step: usize| -> Vec<usize> {
            (0..b * t).map(|j| pick(step + 100, j, d)).collect()
        };
        // One full training step: embed -> view attention -> CE loss.
        let step = |g: &Graph, indices: &[usize], tg: &[usize]| -> (u32, Vec<u32>) {
            let w = g.var(table.clone(), true);
            let x = w.gather_rows(indices).reshape(&[b, t, d]);
            let q = x.split_heads_view(heads);
            let k = x.split_heads_view(heads);
            let v = x.split_heads_view(heads);
            let scores = q.bmm_nt(k).mul_scalar(1.0 / (dk as f32).sqrt());
            let attn = scores.softmax_last();
            let out = attn.attn_bmm_merge(v, heads);
            let loss = out.reshape(&[b * t, d]).cross_entropy(tg, usize::MAX);
            g.backward(loss);
            let dw: Vec<u32> = g.grad(w).unwrap().data().iter().map(|f| f.to_bits()).collect();
            (loss.item().to_bits(), dw)
        };
        // Bits must be invariant under the kernel fan width — assert the
        // whole contract under a forced thread count.  (The setting is
        // process-global, but every test in this binary asserts results
        // that are thread-count invariant, so concurrent mutation is
        // benign.)
        irs_tensor::set_kernel_threads(Some(threads));
        // Graph A records step 0, resets, then *replays* step 1 with
        // different gather indices and CE targets.
        let ga = Graph::new();
        let _ = step(&ga, &idx(0), &targets(0));
        let nodes_recorded = ga.num_nodes();
        ga.reset();
        let (loss_replay, grad_replay) = step(&ga, &idx(1), &targets(1));
        prop_assert_eq!(ga.num_nodes(), nodes_recorded, "replay must not grow the tape");
        // Graph B records step 1 from scratch.
        let gb = Graph::new();
        let (loss_fresh, grad_fresh) = step(&gb, &idx(1), &targets(1));
        irs_tensor::set_kernel_threads(None);
        prop_assert_eq!(loss_replay, loss_fresh);
        prop_assert_eq!(grad_replay, grad_fresh);
    }
}
