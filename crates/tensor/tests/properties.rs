//! Property-based tests for the tensor engine: algebraic identities of the
//! kernels and linearity/consistency of the autograd tape.

use irs_tensor::{Graph, Tensor};
use proptest::prelude::*;

/// Strategy: a tensor with the given shape and small finite entries.
fn tensor(shape: &'static [usize]) -> impl Strategy<Value = Tensor> {
    let n: usize = shape.iter().product();
    proptest::collection::vec(-3.0f32..3.0, n).prop_map(move |data| Tensor::from_vec(data, shape))
}

fn close(a: f32, b: f32, tol: f32) -> bool {
    (a - b).abs() <= tol * (1.0 + a.abs().max(b.abs()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Softmax is invariant under adding a constant to every logit.
    #[test]
    fn softmax_shift_invariance(x in tensor(&[4, 6]), c in -5.0f32..5.0) {
        let a = x.softmax_last();
        let b = x.map(|v| v + c).softmax_last();
        for (p, q) in a.data().iter().zip(b.data()) {
            prop_assert!(close(*p, *q, 1e-4), "{p} vs {q}");
        }
    }

    /// Softmax rows are probability distributions.
    #[test]
    fn softmax_rows_are_distributions(x in tensor(&[3, 8])) {
        let s = x.softmax_last();
        for row in s.data().chunks(8) {
            let sum: f32 = row.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            prop_assert!(row.iter().all(|&p| (0.0..=1.0).contains(&p)));
        }
    }

    /// Matmul distributes over addition: A(B + C) = AB + AC.
    #[test]
    fn matmul_distributes(
        a in tensor(&[3, 4]),
        b in tensor(&[4, 2]),
        c in tensor(&[4, 2]),
    ) {
        let lhs = a.matmul(&b.add(&c));
        let rhs = a.matmul(&b).add(&a.matmul(&c));
        for (x, y) in lhs.data().iter().zip(rhs.data()) {
            prop_assert!(close(*x, *y, 1e-4), "{x} vs {y}");
        }
    }

    /// (AB)ᵀ = BᵀAᵀ.
    #[test]
    fn matmul_transpose_identity(a in tensor(&[3, 4]), b in tensor(&[4, 5])) {
        let lhs = a.matmul(&b).transpose2d();
        let rhs = b.transpose2d().matmul(&a.transpose2d());
        for (x, y) in lhs.data().iter().zip(rhs.data()) {
            prop_assert!(close(*x, *y, 1e-4));
        }
    }

    /// The tape is linear: grad of (αf + βg) = α·grad f + β·grad g.
    #[test]
    fn autograd_linearity(x in tensor(&[5]), alpha in -2.0f32..2.0, beta in -2.0f32..2.0) {
        // f = Σ x², g = Σ sin-ish via tanh composition
        let grad_of = |coeff_a: f32, coeff_b: f32| -> Tensor {
            let g = Graph::new();
            let v = g.var(x.clone(), true);
            let f = v.mul(v).sum_all().mul_scalar(coeff_a);
            let h = v.tanh().sum_all().mul_scalar(coeff_b);
            let loss = f.add(h);
            g.backward(loss);
            g.grad(v).unwrap()
        };
        let combined = grad_of(alpha, beta);
        let fa = grad_of(alpha, 0.0);
        let gb = grad_of(0.0, beta);
        for ((c, a), b) in combined.data().iter().zip(fa.data()).zip(gb.data()) {
            prop_assert!(close(*c, a + b, 1e-4), "{c} vs {}", a + b);
        }
    }

    /// Gather followed by scatter-add backward conserves gradient mass:
    /// the total gradient into the table equals the total upstream
    /// gradient.
    #[test]
    fn gather_conserves_gradient_mass(
        w in tensor(&[6, 3]),
        idx in proptest::collection::vec(0usize..6, 1..10),
    ) {
        let g = Graph::new();
        let table = g.var(w, true);
        let gathered = table.gather_rows(&idx);
        let loss = gathered.sum_all();
        g.backward(loss);
        let dw = g.grad(table).unwrap();
        let mass: f32 = dw.data().iter().sum();
        prop_assert!(close(mass, (idx.len() * 3) as f32, 1e-4));
    }

    /// Reshape/transpose round-trips preserve gradients exactly.
    #[test]
    fn shape_ops_round_trip_gradients(x in tensor(&[2, 3, 4])) {
        let g = Graph::new();
        let v = g.var(x.clone(), true);
        let y = v.transpose_last2().transpose_last2().reshape(&[6, 4]).reshape(&[2, 3, 4]);
        let loss = y.mul(y).sum_all();
        g.backward(loss);
        let dv = g.grad(v).unwrap();
        for (d, xv) in dv.data().iter().zip(x.data()) {
            prop_assert!(close(*d, 2.0 * xv, 1e-4));
        }
    }

    /// Cross-entropy is minimised (≥ 0, and ≤ uniform loss) and its
    /// gradient rows sum to ~0 (softmax minus one-hot property).
    #[test]
    fn cross_entropy_gradient_rows_sum_to_zero(
        logits in tensor(&[4, 5]),
        targets in proptest::collection::vec(0usize..5, 4),
    ) {
        let g = Graph::new();
        let v = g.var(logits, true);
        let loss = v.cross_entropy(&targets, usize::MAX);
        prop_assert!(loss.item() >= 0.0);
        g.backward(loss);
        let dv = g.grad(v).unwrap();
        for row in dv.data().chunks(5) {
            let s: f32 = row.iter().sum();
            prop_assert!(s.abs() < 1e-4, "row gradient sum {s}");
        }
    }

    /// The packed-B register-tiled matmul kernel is bitwise equal to the
    /// plain blocked kernel on arbitrary (odd) shapes — the invariant that
    /// lets `matmul_into` dispatch by shape without batched and scalar
    /// forwards ever diverging.
    #[test]
    fn packed_matmul_equals_plain_matmul(
        m in 1usize..12,
        k in 1usize..40,
        n in 1usize..40,
        seed in 0u32..1000,
    ) {
        let numel_a = m * k;
        let numel_b = k * n;
        // Deterministic pseudo-random fill from the seed (keeps the
        // strategy space small while varying values).
        let val = |i: usize| ((i as f32 * 0.37 + seed as f32 * 0.11).sin()) * 2.0;
        let a: Vec<f32> = (0..numel_a).map(val).collect();
        let b: Vec<f32> = (numel_a..numel_a + numel_b).map(val).collect();
        let mut plain = vec![0.0f32; m * n];
        let mut packed = vec![0.0f32; m * n];
        irs_tensor::matmul_into_plain(&a, &b, &mut plain, m, k, n);
        irs_tensor::matmul_into_packed(&a, &b, &mut packed, m, k, n);
        for (p, q) in plain.iter().zip(&packed) {
            prop_assert_eq!(p.to_bits(), q.to_bits(), "{m}x{k}x{n}: {p} vs {q}");
        }
    }

    /// Layer-norm output is invariant to input shift and scale (with unit
    /// gamma, zero beta).
    #[test]
    fn layer_norm_shift_scale_invariance(
        x in tensor(&[2, 6]),
        shift in -3.0f32..3.0,
        scale in 0.5f32..3.0,
    ) {
        let run = |input: Tensor| {
            let g = Graph::new();
            let v = g.var(input, false);
            let gamma = g.constant(Tensor::ones(&[6]));
            let beta = g.constant(Tensor::zeros(&[6]));
            v.layer_norm(gamma, beta, 1e-6).value()
        };
        let base = run(x.clone());
        let transformed = run(x.map(|v| v * scale + shift));
        for (a, b) in base.data().iter().zip(transformed.data()) {
            prop_assert!(close(*a, *b, 2e-2), "{a} vs {b}");
        }
    }
}
