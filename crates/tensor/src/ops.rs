//! Differentiable arithmetic, linear algebra and activation operations.

use crate::graph::Var;
use crate::tensor::Tensor;

#[allow(clippy::should_implement_trait)] // add/sub/mul/neg mirror tensor-library convention
impl<'g> Var<'g> {
    // ------------------------------------------------------------------
    // Elementwise arithmetic
    // ------------------------------------------------------------------

    /// Elementwise `self + other` (identical shapes).
    pub fn add(self, other: Var<'g>) -> Var<'g> {
        let v = self.graph.with_value(self, |a| other.graph.with_value(other, |b| a.add(b)));
        self.graph.push_op(&[self, other], v, |ctx| {
            let g = ctx.grad_out().clone();
            ctx.accumulate(0, &g);
            ctx.accumulate(1, &g);
        })
    }

    /// Elementwise `self - other` (identical shapes).
    pub fn sub(self, other: Var<'g>) -> Var<'g> {
        let v = self.graph.with_value(self, |a| other.graph.with_value(other, |b| a.sub(b)));
        self.graph.push_op(&[self, other], v, |ctx| {
            let g = ctx.grad_out().clone();
            ctx.accumulate(0, &g);
            ctx.accumulate_scaled(1, -1.0, &g);
        })
    }

    /// Elementwise Hadamard product (identical shapes).
    pub fn mul(self, other: Var<'g>) -> Var<'g> {
        let v = self.graph.with_value(self, |a| other.graph.with_value(other, |b| a.mul(b)));
        self.graph.push_op(&[self, other], v, |ctx| {
            let da = ctx.grad_out().mul(ctx.value(1));
            let db = ctx.grad_out().mul(ctx.value(0));
            ctx.accumulate(0, &da);
            ctx.accumulate(1, &db);
        })
    }

    /// `self + c` for a scalar constant.
    pub fn add_scalar(self, c: f32) -> Var<'g> {
        let v = self.graph.with_value(self, |a| a.map(|x| x + c));
        self.graph.push_op(&[self], v, |ctx| {
            let g = ctx.grad_out().clone();
            ctx.accumulate(0, &g);
        })
    }

    /// `self * c` for a scalar constant.
    pub fn mul_scalar(self, c: f32) -> Var<'g> {
        let v = self.graph.with_value(self, |a| a.scale(c));
        self.graph.push_op(&[self], v, move |ctx| {
            let g = ctx.grad_out().clone();
            ctx.accumulate_scaled(0, c, &g);
        })
    }

    /// Negation.
    pub fn neg(self) -> Var<'g> {
        self.mul_scalar(-1.0)
    }

    /// Multiply by a scalar-valued `Var` (shape `[1]`), broadcasting it over
    /// every element.  The gradient flows into both operands; used e.g. for
    /// learned temperature / impressionability factors.
    pub fn scale_by(self, s: Var<'g>) -> Var<'g> {
        let sv = s.item();
        let v = self.graph.with_value(self, |a| a.scale(sv));
        self.graph.push_op(&[self, s], v, |ctx| {
            let s_val = ctx.value(1).item();
            let go = ctx.grad_out().clone();
            ctx.accumulate_scaled(0, s_val, &go);
            let ds: f32 =
                ctx.grad_out().data().iter().zip(ctx.value(0).data()).map(|(&g, &x)| g * x).sum();
            ctx.grad_mut(1).data_mut()[0] += ds;
        })
    }

    // ------------------------------------------------------------------
    // Broadcasting helpers
    // ------------------------------------------------------------------

    /// Add a 1-D bias of length `d` to a tensor whose last axis has length
    /// `d`, broadcasting over all leading axes.
    pub fn add_bias(self, bias: Var<'g>) -> Var<'g> {
        let v = self.graph.with_value(self, |a| {
            bias.graph.with_value(bias, |b| {
                assert_eq!(b.ndim(), 1, "add_bias needs 1-D bias, got {:?}", b.shape());
                let d = b.shape()[0];
                assert_eq!(
                    *a.shape().last().expect("add_bias on 0-d tensor"),
                    d,
                    "bias length {d} does not match last axis of {:?}",
                    a.shape()
                );
                let mut out = a.clone();
                for row in out.data_mut().chunks_mut(d) {
                    for (o, &bb) in row.iter_mut().zip(b.data()) {
                        *o += bb;
                    }
                }
                out
            })
        });
        self.graph.push_op(&[self, bias], v, |ctx| {
            let go = ctx.grad_out().clone();
            ctx.accumulate(0, &go);
            let d = ctx.value(1).shape()[0];
            let db = ctx.grad_mut(1);
            for row in go.data().chunks(d) {
                for (b, &g) in db.data_mut().iter_mut().zip(row) {
                    *b += g;
                }
            }
        })
    }

    // ------------------------------------------------------------------
    // Linear algebra
    // ------------------------------------------------------------------

    /// 2-D matrix multiply.
    pub fn matmul(self, other: Var<'g>) -> Var<'g> {
        let v = self.graph.with_value(self, |a| other.graph.with_value(other, |b| a.matmul(b)));
        self.graph.push_op(&[self, other], v, |ctx| {
            // dA = g @ Bᵀ ; dB = Aᵀ @ g
            let da = ctx.grad_out().matmul(&ctx.value(1).transpose2d());
            let db = ctx.value(0).transpose2d().matmul(ctx.grad_out());
            ctx.accumulate(0, &da);
            ctx.accumulate(1, &db);
        })
    }

    /// Batched 3-D matmul `[b,m,k] @ [b,k,n] -> [b,m,n]`.
    pub fn bmm(self, other: Var<'g>) -> Var<'g> {
        let v = self.graph.with_value(self, |a| other.graph.with_value(other, |b| a.bmm(b)));
        self.graph.push_op(&[self, other], v, |ctx| {
            let da = ctx.grad_out().bmm(&ctx.value(1).transpose_last2());
            let db = ctx.value(0).transpose_last2().bmm(ctx.grad_out());
            ctx.accumulate(0, &da);
            ctx.accumulate(1, &db);
        })
    }

    /// Multiply a 3-D tensor by a shared 2-D matrix on the right:
    /// `[b,m,k] @ [k,n] -> [b,m,n]`.  Implemented by flattening the leading
    /// axes (a reshape is free for contiguous tensors).
    pub fn matmul_rhs2d(self, w: Var<'g>) -> Var<'g> {
        let shape = self.shape();
        assert_eq!(shape.len(), 3, "matmul_rhs2d lhs must be 3-D, got {shape:?}");
        let (b, m, k) = (shape[0], shape[1], shape[2]);
        let n = w.shape()[1];
        self.reshape(&[b * m, k]).matmul(w).reshape(&[b, m, n])
    }

    /// Swap the last two axes of a 3-D tensor.
    pub fn transpose_last2(self) -> Var<'g> {
        let v = self.graph.with_value(self, |a| a.transpose_last2());
        self.graph.push_op(&[self], v, |ctx| {
            let da = ctx.grad_out().transpose_last2();
            ctx.accumulate(0, &da);
        })
    }

    // ------------------------------------------------------------------
    // Reductions
    // ------------------------------------------------------------------

    /// Sum of every element (scalar output).
    pub fn sum_all(self) -> Var<'g> {
        let v = self.graph.with_value(self, |a| Tensor::scalar(a.sum()));
        self.graph.push_op(&[self], v, |ctx| {
            let g = ctx.grad_out().item();
            let ones = Tensor::full(ctx.value(0).shape(), 1.0);
            ctx.accumulate_scaled(0, g, &ones);
        })
    }

    /// Mean of every element (scalar output).
    pub fn mean_all(self) -> Var<'g> {
        let n = self.graph.with_value(self, |a| a.len());
        assert!(n > 0, "mean_all of empty tensor");
        self.sum_all().mul_scalar(1.0 / n as f32)
    }

    // ------------------------------------------------------------------
    // Activations
    // ------------------------------------------------------------------

    /// Rectified linear unit.
    pub fn relu(self) -> Var<'g> {
        let v = self.graph.with_value(self, |a| a.map(|x| x.max(0.0)));
        self.graph.push_op(&[self], v, |ctx| {
            let x = ctx.value(0).clone();
            let go = ctx.grad_out();
            let mut delta = go.clone();
            for (d, &xi) in delta.data_mut().iter_mut().zip(x.data()) {
                if xi <= 0.0 {
                    *d = 0.0;
                }
            }
            ctx.accumulate(0, &delta);
        })
    }

    /// Logistic sigmoid.
    pub fn sigmoid(self) -> Var<'g> {
        let v = self.graph.with_value(self, |a| a.map(|x| 1.0 / (1.0 + (-x).exp())));
        self.graph.push_op(&[self], v, |ctx| {
            let y = ctx.out_value().clone();
            let mut delta = ctx.grad_out().clone();
            for (d, &yi) in delta.data_mut().iter_mut().zip(y.data()) {
                *d *= yi * (1.0 - yi);
            }
            ctx.accumulate(0, &delta);
        })
    }

    /// Hyperbolic tangent.
    pub fn tanh(self) -> Var<'g> {
        let v = self.graph.with_value(self, |a| a.map(f32::tanh));
        self.graph.push_op(&[self], v, |ctx| {
            let y = ctx.out_value().clone();
            let mut delta = ctx.grad_out().clone();
            for (d, &yi) in delta.data_mut().iter_mut().zip(y.data()) {
                *d *= 1.0 - yi * yi;
            }
            ctx.accumulate(0, &delta);
        })
    }

    /// Gaussian error linear unit (tanh approximation, as used by
    /// transformer implementations).
    pub fn gelu(self) -> Var<'g> {
        const C: f32 = 0.797_884_6; // sqrt(2/pi)
        let v = self.graph.with_value(self, |a| {
            a.map(|x| 0.5 * x * (1.0 + (C * (x + 0.044715 * x * x * x)).tanh()))
        });
        self.graph.push_op(&[self], v, |ctx| {
            let x = ctx.value(0).clone();
            let mut delta = ctx.grad_out().clone();
            for (d, &xi) in delta.data_mut().iter_mut().zip(x.data()) {
                let inner = C * (xi + 0.044715 * xi * xi * xi);
                let t = inner.tanh();
                let dinner = C * (1.0 + 3.0 * 0.044715 * xi * xi);
                let dgelu = 0.5 * (1.0 + t) + 0.5 * xi * (1.0 - t * t) * dinner;
                *d *= dgelu;
            }
            ctx.accumulate(0, &delta);
        })
    }
}

#[cfg(test)]
mod tests {
    use crate::gradcheck::check_gradients;
    use crate::graph::Graph;
    use crate::tensor::Tensor;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(1234)
    }

    #[test]
    fn add_sub_mul_values() {
        let g = Graph::new();
        let a = g.var(Tensor::from_vec(vec![1.0, 2.0], &[2]), true);
        let b = g.var(Tensor::from_vec(vec![3.0, 5.0], &[2]), true);
        assert_eq!(a.add(b).value().data(), &[4.0, 7.0]);
        assert_eq!(a.sub(b).value().data(), &[-2.0, -3.0]);
        assert_eq!(a.mul(b).value().data(), &[3.0, 10.0]);
    }

    #[test]
    fn grad_add() {
        let x = Tensor::randn(&[3, 2], 1.0, &mut rng());
        let y = Tensor::randn(&[3, 2], 1.0, &mut rng());
        check_gradients(&[x, y], |_g, vars| vars[0].add(vars[1]).mul(vars[1]).sum_all());
    }

    #[test]
    fn grad_mul_scalar_and_add_scalar() {
        let x = Tensor::randn(&[4], 1.0, &mut rng());
        check_gradients(&[x], |_g, vars| {
            vars[0].mul_scalar(2.5).add_scalar(-1.0).mul(vars[0]).sum_all()
        });
    }

    #[test]
    fn grad_matmul() {
        let a = Tensor::randn(&[3, 4], 1.0, &mut rng());
        let b = Tensor::randn(&[4, 2], 1.0, &mut rng());
        check_gradients(&[a, b], |_g, vars| vars[0].matmul(vars[1]).sum_all());
    }

    #[test]
    fn grad_bmm() {
        let a = Tensor::randn(&[2, 3, 4], 1.0, &mut rng());
        let b = Tensor::randn(&[2, 4, 2], 1.0, &mut rng());
        check_gradients(&[a, b], |_g, vars| {
            // Square to make the loss non-linear in both inputs.
            let c = vars[0].bmm(vars[1]);
            c.mul(c).sum_all()
        });
    }

    #[test]
    fn grad_transpose_last2() {
        let a = Tensor::randn(&[2, 3, 4], 1.0, &mut rng());
        check_gradients(&[a], |_g, vars| {
            let t = vars[0].transpose_last2();
            t.mul(t).sum_all()
        });
    }

    #[test]
    fn grad_add_bias() {
        let x = Tensor::randn(&[2, 3, 4], 1.0, &mut rng());
        let b = Tensor::randn(&[4], 1.0, &mut rng());
        check_gradients(&[x, b], |_g, vars| {
            let y = vars[0].add_bias(vars[1]);
            y.mul(y).sum_all()
        });
    }

    #[test]
    fn grad_scale_by() {
        let x = Tensor::randn(&[5], 1.0, &mut rng());
        let s = Tensor::scalar(0.7);
        check_gradients(&[x, s], |_g, vars| {
            let y = vars[0].scale_by(vars[1]);
            y.mul(y).sum_all()
        });
    }

    #[test]
    fn grad_activations() {
        for act in ["relu", "sigmoid", "tanh", "gelu"] {
            let x = Tensor::randn(&[6], 1.0, &mut rng()).map(|v| v + 0.05); // keep away from relu kink
            check_gradients(&[x], |_g, vars| {
                let y = match act {
                    "relu" => vars[0].relu(),
                    "sigmoid" => vars[0].sigmoid(),
                    "tanh" => vars[0].tanh(),
                    _ => vars[0].gelu(),
                };
                y.mul(y).sum_all()
            });
        }
    }

    #[test]
    fn grad_matmul_rhs2d_matches_flat_matmul() {
        let g = Graph::new();
        let x = g.var(Tensor::randn(&[2, 3, 4], 1.0, &mut rng()), true);
        let w = g.var(Tensor::randn(&[4, 5], 1.0, &mut rng()), true);
        let y = x.matmul_rhs2d(w);
        assert_eq!(y.shape(), vec![2, 3, 5]);
        let flat = x.reshape(&[6, 4]).matmul(w);
        assert_eq!(y.value().data(), flat.value().data());
    }

    #[test]
    fn sum_and_mean_grads() {
        let x = Tensor::randn(&[3, 3], 1.0, &mut rng());
        check_gradients(std::slice::from_ref(&x), |_g, vars| vars[0].mul(vars[0]).sum_all());
        check_gradients(&[x], |_g, vars| vars[0].mul(vars[0]).mean_all());
    }
}
