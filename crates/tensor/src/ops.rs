//! Differentiable arithmetic, linear algebra and activation operations.
//!
//! Every op draws its output from the graph's recycled-buffer pool
//! ([`crate::Graph::alloc_out`]) so repeated steps over a reset graph run
//! allocation-free, and every backward closure works directly against the
//! upstream gradient and parent values (no defensive clones).  The matmul
//! family routes its backward — matmuls against transposed operands —
//! through the blocked transposed-accumulate kernels
//! ([`crate::matmul_nt_into`] / [`crate::matmul_tn_into`]), preserving
//! per-element accumulation order and the skip-zero rule so gradients are
//! bitwise identical to the historical transpose-then-multiply path.

use crate::graph::Var;
use crate::tensor::{
    bmm_into, bmm_layout_into, bmm_nt_db_layout_into, bmm_nt_into, bmm_nt_layout_into, bmm_tn_into,
    bmm_tn_layout_into, matmul_into, matmul_nt_into, matmul_tn_into, BatchLayout, Tensor,
};

/// Resolve a batched operand for the stride-walking kernels: its raw
/// storage plus a [`BatchLayout`].  Dense tensors and layout-compatible
/// views are zero-copy; an incompatible view (non-contiguous rows, e.g. a
/// transpose view) falls back to a materialised contiguous copy parked in
/// `holder`.
fn as_batched<'t>(t: &'t Tensor, holder: &'t mut Option<Tensor>) -> (&'t [f32], BatchLayout) {
    match t.batch_layout() {
        Some(l) => (t.storage(), l),
        None => {
            let c = holder.insert(t.contiguous());
            let l = c.batch_layout().expect("contiguous 3-D tensor has a dense layout");
            (c.storage(), l)
        }
    }
}

/// Layout for writing a parent's gradient: a view parent's gradient
/// buffer is **root**-shaped and is addressed through the view's own
/// layout; a dense parent's buffer is parent-shaped `[s, rows, rowlen]`.
/// Gradients cannot be staged into a temporary like values can, so a
/// view parent here must be layout-compatible.
fn batched_grad_layout(t: &Tensor, s: usize, rows: usize, rowlen: usize) -> BatchLayout {
    if t.is_view() {
        t.batch_layout().expect("gradient of a strided view requires a row-contiguous layout")
    } else {
        BatchLayout::dense(s, rows, rowlen)
    }
}

/// The split-heads addressing of a dense merged `[b, m, h·dk]` buffer:
/// slice `s = b·h + h'` row `i` lives at the merged row's `h'`-th
/// `dk`-chunk.
fn merged_heads_layout(b: usize, heads: usize, m: usize, dk: usize) -> BatchLayout {
    BatchLayout {
        offset: 0,
        outer: b,
        inner: heads,
        outer_stride: m * heads * dk,
        inner_stride: dk,
        row_stride: heads * dk,
    }
}

#[allow(clippy::should_implement_trait)] // add/sub/mul/neg mirror tensor-library convention
impl<'g> Var<'g> {
    // ------------------------------------------------------------------
    // Elementwise arithmetic
    // ------------------------------------------------------------------

    /// Elementwise `self + other` (identical shapes).
    pub fn add(self, other: Var<'g>) -> Var<'g> {
        let v = self.graph.with_value(self, |a| {
            other.graph.with_value(other, |b| {
                assert_eq!(a.shape(), b.shape(), "add shape mismatch");
                let mut out = self.graph.alloc_out(a.shape());
                for ((o, &x), &y) in out.data_mut().iter_mut().zip(a.data()).zip(b.data()) {
                    *o = x + y;
                }
                out
            })
        });
        self.graph.push_op(&[self, other], v, |ctx| {
            ctx.accumulate_grad_out(0);
            ctx.accumulate_grad_out(1);
        })
    }

    /// Elementwise `self - other` (identical shapes).
    pub fn sub(self, other: Var<'g>) -> Var<'g> {
        let v = self.graph.with_value(self, |a| {
            other.graph.with_value(other, |b| {
                assert_eq!(a.shape(), b.shape(), "sub shape mismatch");
                let mut out = self.graph.alloc_out(a.shape());
                for ((o, &x), &y) in out.data_mut().iter_mut().zip(a.data()).zip(b.data()) {
                    *o = x - y;
                }
                out
            })
        });
        self.graph.push_op(&[self, other], v, |ctx| {
            ctx.accumulate_grad_out(0);
            ctx.accumulate_grad_out_scaled(1, -1.0);
        })
    }

    /// Elementwise Hadamard product (identical shapes).
    pub fn mul(self, other: Var<'g>) -> Var<'g> {
        let v = self.graph.with_value(self, |a| {
            other.graph.with_value(other, |b| {
                assert_eq!(a.shape(), b.shape(), "mul shape mismatch");
                let mut out = self.graph.alloc_out(a.shape());
                for ((o, &x), &y) in out.data_mut().iter_mut().zip(a.data()).zip(b.data()) {
                    *o = x * y;
                }
                out
            })
        });
        self.graph.push_op(&[self, other], v, |ctx| {
            let go = ctx.grad_out();
            let b = ctx.value(1);
            let a = ctx.value(0);
            if ctx.parent_needs_grad(0) {
                let da = ctx.grad_mut(0);
                for ((o, &g), &y) in da.data_mut().iter_mut().zip(go.data()).zip(b.data()) {
                    *o += g * y;
                }
            }
            if ctx.parent_needs_grad(1) {
                let db = ctx.grad_mut(1);
                for ((o, &g), &x) in db.data_mut().iter_mut().zip(go.data()).zip(a.data()) {
                    *o += g * x;
                }
            }
        })
    }

    /// `self + c` for a scalar constant.
    pub fn add_scalar(self, c: f32) -> Var<'g> {
        let v = self.graph.with_value(self, |a| {
            let mut out = self.graph.alloc_out(a.shape());
            for (o, &x) in out.data_mut().iter_mut().zip(a.data()) {
                *o = x + c;
            }
            out
        });
        self.graph.push_op(&[self], v, |ctx| {
            ctx.accumulate_grad_out(0);
        })
    }

    /// `self * c` for a scalar constant.
    pub fn mul_scalar(self, c: f32) -> Var<'g> {
        let v = self.graph.with_value(self, |a| {
            let mut out = self.graph.alloc_out(a.shape());
            for (o, &x) in out.data_mut().iter_mut().zip(a.data()) {
                *o = x * c;
            }
            out
        });
        // `c` travels as a per-step scalar payload so a replayed record
        // picks up the current step's constant, not the recorded one.
        self.graph.push_op_scaled(&[self], v, c, |ctx| {
            let c = ctx.payload_scalar();
            ctx.accumulate_grad_out_scaled(0, c);
        })
    }

    /// Negation.
    pub fn neg(self) -> Var<'g> {
        self.mul_scalar(-1.0)
    }

    /// Multiply by a scalar-valued `Var` (shape `[1]`), broadcasting it over
    /// every element.  The gradient flows into both operands; used e.g. for
    /// learned temperature / impressionability factors.
    pub fn scale_by(self, s: Var<'g>) -> Var<'g> {
        let sv = s.item();
        let v = self.graph.with_value(self, |a| {
            let mut out = self.graph.alloc_out(a.shape());
            for (o, &x) in out.data_mut().iter_mut().zip(a.data()) {
                *o = x * sv;
            }
            out
        });
        self.graph.push_op(&[self, s], v, |ctx| {
            let s_val = ctx.value(1).item();
            ctx.accumulate_grad_out_scaled(0, s_val);
            let ds: f32 =
                ctx.grad_out().data().iter().zip(ctx.value(0).data()).map(|(&g, &x)| g * x).sum();
            ctx.grad_mut(1).data_mut()[0] += ds;
        })
    }

    // ------------------------------------------------------------------
    // Broadcasting helpers
    // ------------------------------------------------------------------

    /// Add a 1-D bias of length `d` to a tensor whose last axis has length
    /// `d`, broadcasting over all leading axes.
    pub fn add_bias(self, bias: Var<'g>) -> Var<'g> {
        let v = self.graph.with_value(self, |a| {
            bias.graph.with_value(bias, |b| {
                assert_eq!(b.ndim(), 1, "add_bias needs 1-D bias, got {:?}", b.shape());
                let d = b.shape()[0];
                assert_eq!(
                    *a.shape().last().expect("add_bias on 0-d tensor"),
                    d,
                    "bias length {d} does not match last axis of {:?}",
                    a.shape()
                );
                let mut out = self.graph.alloc_out(a.shape());
                for (row, src) in out.data_mut().chunks_mut(d).zip(a.data().chunks(d)) {
                    for ((o, &x), &bb) in row.iter_mut().zip(src).zip(b.data()) {
                        *o = x + bb;
                    }
                }
                out
            })
        });
        self.graph.push_op(&[self, bias], v, |ctx| {
            ctx.accumulate_grad_out(0);
            let go = ctx.grad_out();
            let d = ctx.value(1).shape()[0];
            let db = ctx.grad_mut(1);
            for row in go.data().chunks(d) {
                for (b, &g) in db.data_mut().iter_mut().zip(row) {
                    *b += g;
                }
            }
        })
    }

    // ------------------------------------------------------------------
    // Linear algebra
    // ------------------------------------------------------------------

    /// 2-D matrix multiply.
    pub fn matmul(self, other: Var<'g>) -> Var<'g> {
        let v = self.graph.with_value(self, |a| {
            other.graph.with_value(other, |b| {
                assert_eq!(a.ndim(), 2, "matmul lhs must be 2-D, got {:?}", a.shape());
                assert_eq!(b.ndim(), 2, "matmul rhs must be 2-D, got {:?}", b.shape());
                let (m, k) = (a.shape()[0], a.shape()[1]);
                let (k2, n) = (b.shape()[0], b.shape()[1]);
                assert_eq!(k, k2, "matmul inner dims differ: {:?} vs {:?}", a.shape(), b.shape());
                let mut out = self.graph.alloc_zeroed(&[m, n]);
                matmul_into(a.data(), b.data(), out.data_mut(), m, k, n);
                out
            })
        });
        self.graph.push_op(&[self, other], v, |ctx| {
            // dA += g @ Bᵀ ; dB += Aᵀ @ g — transposed-accumulate kernels,
            // bitwise equal to materialising the transposes.
            let g = ctx.grad_out();
            let (m, n) = (g.shape()[0], g.shape()[1]);
            if ctx.parent_needs_grad(0) {
                let b = ctx.value(1);
                let k = b.shape()[0];
                ctx.accumulate_with(0, |out| matmul_nt_into(g.data(), b.data(), out, m, n, k));
            }
            if ctx.parent_needs_grad(1) {
                let a = ctx.value(0);
                let k = a.shape()[1];
                ctx.accumulate_with(1, |out| matmul_tn_into(a.data(), g.data(), out, m, k, n));
            }
        })
    }

    /// Batched 3-D matmul `[b,m,k] @ [b,k,n] -> [b,m,n]`.
    pub fn bmm(self, other: Var<'g>) -> Var<'g> {
        let v = self.graph.with_value(self, |a| {
            other.graph.with_value(other, |b| {
                assert_eq!(a.ndim(), 3, "bmm lhs must be 3-D, got {:?}", a.shape());
                assert_eq!(b.ndim(), 3, "bmm rhs must be 3-D, got {:?}", b.shape());
                let (bt, m, k) = (a.shape()[0], a.shape()[1], a.shape()[2]);
                let (b2, k2, n) = (b.shape()[0], b.shape()[1], b.shape()[2]);
                assert_eq!(bt, b2, "bmm batch dims differ");
                assert_eq!(k, k2, "bmm inner dims differ: {:?} vs {:?}", a.shape(), b.shape());
                let mut out = self.graph.alloc_zeroed(&[bt, m, n]);
                bmm_into(a.data(), b.data(), out.data_mut(), bt, m, k, n);
                out
            })
        });
        self.graph.push_op(&[self, other], v, |ctx| {
            let g = ctx.grad_out();
            let (bt, m, n) = (g.shape()[0], g.shape()[1], g.shape()[2]);
            if ctx.parent_needs_grad(0) {
                let b = ctx.value(1);
                let k = b.shape()[1];
                ctx.accumulate_with(0, |out| bmm_nt_into(g.data(), b.data(), out, bt, m, n, k));
            }
            if ctx.parent_needs_grad(1) {
                let a = ctx.value(0);
                let k = a.shape()[2];
                ctx.accumulate_with(1, |out| bmm_tn_into(a.data(), g.data(), out, bt, m, k, n));
            }
        })
    }

    /// Batched `self @ otherᵀ` over the last two axes:
    /// `[b,m,d] @ [b,n,d] -> [b,m,n]` — the attention score kernel, one
    /// tape node instead of `other.transpose_last2()` + `bmm`, with
    /// identical values and gradients (the forward stages the transpose
    /// in kernel scratch; the backward needs no transposes at all —
    /// `dA += G @ B` is a plain bmm, and `dB` scatters the same products
    /// the transpose-node chain accumulated, in the same order).
    ///
    /// Both operands may be zero-copy strided views (head-split layouts):
    /// the kernels then walk the view's [`BatchLayout`] directly instead
    /// of materialising, and gradients of view operands scatter straight
    /// into the root tensor's gradient buffer through the same layout —
    /// bitwise identical to the historical split-copy path because the
    /// per-element accumulation order never changes.
    pub fn bmm_nt(self, other: Var<'g>) -> Var<'g> {
        let v = self.graph.with_value(self, |a| {
            other.graph.with_value(other, |b| {
                assert_eq!(a.ndim(), 3, "bmm_nt lhs must be 3-D, got {:?}", a.shape());
                assert_eq!(b.ndim(), 3, "bmm_nt rhs must be 3-D, got {:?}", b.shape());
                let (bt, m, d) = (a.shape()[0], a.shape()[1], a.shape()[2]);
                let (b2, n, d2) = (b.shape()[0], b.shape()[1], b.shape()[2]);
                assert_eq!(bt, b2, "bmm_nt batch dims differ");
                assert_eq!(d, d2, "bmm_nt inner dims differ: {:?} vs {:?}", a.shape(), b.shape());
                let mut out = self.graph.alloc_zeroed(&[bt, m, n]);
                if a.is_view() || b.is_view() {
                    let (mut ha, mut hb) = (None, None);
                    let (asl, la) = as_batched(a, &mut ha);
                    let (bsl, lb) = as_batched(b, &mut hb);
                    let lo = BatchLayout::dense(bt, m, n);
                    bmm_nt_layout_into(asl, &la, bsl, &lb, out.data_mut(), &lo, m, d, n);
                } else {
                    bmm_nt_into(a.data(), b.data(), out.data_mut(), bt, m, d, n);
                }
                out
            })
        });
        self.graph.push_op(&[self, other], v, |ctx| {
            let g = ctx.grad_out();
            let (bt, m, n) = (g.shape()[0], g.shape()[1], g.shape()[2]);
            let view_operands = ctx.value(0).is_view() || ctx.value(1).is_view();
            if ctx.parent_needs_grad(0) {
                // dA += G @ B : [b,m,n] @ [b,n,d] — contraction ascending
                // over n with the skip-zero rule on G, exactly what the
                // transpose-node chain's NT kernel produced.
                let b = ctx.value(1);
                let d = b.shape()[2];
                if view_operands {
                    let lg = BatchLayout::dense(bt, m, n);
                    let mut hb = None;
                    let (bsl, lb) = as_batched(b, &mut hb);
                    let la = batched_grad_layout(ctx.value(0), bt, m, d);
                    ctx.accumulate_with(0, |out| {
                        bmm_layout_into(g.data(), &lg, bsl, &lb, out, &la, m, n, d)
                    });
                } else {
                    ctx.accumulate_with(0, |out| bmm_into(g.data(), b.data(), out, bt, m, n, d));
                }
            }
            if ctx.parent_needs_grad(1) {
                // dB[j,p] += Σ_i a[i,p]·g[i,j] per slice (ascending i,
                // skip-zero on a) — the old dBᵀ accumulation followed by
                // its transpose-node pass-through, fused.
                let a = ctx.value(0);
                let d = a.shape()[2];
                if view_operands {
                    let lg = BatchLayout::dense(bt, m, n);
                    let mut ha = None;
                    let (asl, la) = as_batched(a, &mut ha);
                    let lb = batched_grad_layout(ctx.value(1), bt, n, d);
                    ctx.accumulate_with(1, |out| {
                        bmm_nt_db_layout_into(asl, &la, g.data(), &lg, out, &lb, m, d, n)
                    });
                } else {
                    ctx.accumulate_with(1, |out| {
                        for s in 0..bt {
                            let a_s = &a.data()[s * m * d..(s + 1) * m * d];
                            let g_s = &g.data()[s * m * n..(s + 1) * m * n];
                            let o_s = &mut out[s * n * d..(s + 1) * n * d];
                            for i in 0..m {
                                for (p, &a_ip) in a_s[i * d..(i + 1) * d].iter().enumerate() {
                                    if a_ip == 0.0 {
                                        continue;
                                    }
                                    for (j, &g_ij) in g_s[i * n..(i + 1) * n].iter().enumerate() {
                                        o_s[j * d + p] += a_ip * g_ij;
                                    }
                                }
                            }
                        }
                    });
                }
            }
        })
    }

    /// Fused `attn @ v` + head merge: `[b·h, m, k] @ [b·h, k, dk] ->
    /// [b, m, h·dk]`, writing each head's product rows directly at their
    /// merged offsets — one tape node replacing `bmm` + `merge_heads`,
    /// with `v` allowed to be a zero-copy head-split view.  Values and
    /// gradients are bitwise identical to the historical chain: the
    /// merged write only relocates rows, and the backward runs the same
    /// NT/TN accumulations the `bmm` backward used, reading the merged
    /// upstream gradient through the split layout instead of scattering
    /// it into a copy first.
    pub fn attn_bmm_merge(self, v: Var<'g>, heads: usize) -> Var<'g> {
        let val = self.graph.with_value(self, |a| {
            v.graph.with_value(v, |vv| {
                assert_eq!(a.ndim(), 3, "attn_bmm_merge lhs must be 3-D, got {:?}", a.shape());
                assert_eq!(vv.ndim(), 3, "attn_bmm_merge rhs must be 3-D, got {:?}", vv.shape());
                let (bh, m, k) = (a.shape()[0], a.shape()[1], a.shape()[2]);
                let (b2, k2, dk) = (vv.shape()[0], vv.shape()[1], vv.shape()[2]);
                assert_eq!(bh, b2, "attn_bmm_merge batch dims differ");
                assert_eq!(k, k2, "attn_bmm_merge inner dims differ");
                assert_eq!(bh % heads, 0, "batch {bh} not divisible into {heads} heads");
                let b = bh / heads;
                let mut out = self.graph.alloc_zeroed(&[b, m, heads * dk]);
                let la = BatchLayout::dense(bh, m, k);
                let mut hv = None;
                let (vs, lv) = as_batched(vv, &mut hv);
                let lo = merged_heads_layout(b, heads, m, dk);
                bmm_layout_into(a.data(), &la, vs, &lv, out.data_mut(), &lo, m, k, dk);
                out
            })
        });
        self.graph.push_op(&[self, v], val, move |ctx| {
            let g = ctx.grad_out(); // dense [b, m, h·dk]
            let a = ctx.value(0);
            let (bh, m, k) = (a.shape()[0], a.shape()[1], a.shape()[2]);
            let (b, dk) = (g.shape()[0], g.shape()[2] / heads);
            // Read the merged upstream gradient through the split layout.
            let lg = merged_heads_layout(b, heads, m, dk);
            if ctx.parent_needs_grad(0) {
                // dAttn += G_split @ Vᵀ
                let vv = ctx.value(1);
                let mut hv = None;
                let (vs, lv) = as_batched(vv, &mut hv);
                let lo = BatchLayout::dense(bh, m, k);
                ctx.accumulate_with(0, |out| {
                    bmm_nt_layout_into(g.data(), &lg, vs, &lv, out, &lo, m, dk, k)
                });
            }
            if ctx.parent_needs_grad(1) {
                // dV += Attnᵀ @ G_split, scattered through v's own layout
                // into the root gradient when v is a view.
                let la = BatchLayout::dense(bh, m, k);
                let lo = batched_grad_layout(ctx.value(1), bh, k, dk);
                ctx.accumulate_with(1, |out| {
                    bmm_tn_layout_into(a.data(), &la, g.data(), &lg, out, &lo, m, k, dk)
                });
            }
        })
    }

    /// Fused affine transform over the last axis: flatten all leading axes
    /// to rows, multiply by `w: [k, n]` and (optionally) add a `[n]` bias —
    /// one tape node instead of the historical reshape → matmul → reshape
    /// (→ add_bias) chain, with identical values and gradients (the
    /// flattening is metadata-only for contiguous tensors, and the bias
    /// add happens after each output element's dot product completes,
    /// exactly as the separate `add_bias` node did).
    pub fn affine(self, w: Var<'g>, bias: Option<Var<'g>>) -> Var<'g> {
        let (out_shape, rows, k, n) = self.graph.with_value(self, |x| {
            w.graph.with_value(w, |wt| {
                assert_eq!(wt.ndim(), 2, "affine weight must be 2-D, got {:?}", wt.shape());
                let (k, n) = (wt.shape()[0], wt.shape()[1]);
                assert_eq!(
                    *x.shape().last().expect("affine on 0-d tensor"),
                    k,
                    "input last axis {:?} does not match weight rows {k}",
                    x.shape()
                );
                let rows = x.len() / k;
                let mut out_shape = x.shape().to_vec();
                *out_shape.last_mut().expect("non-empty shape") = n;
                (out_shape, rows, k, n)
            })
        });
        let v = self.graph.with_value(self, |x| {
            w.graph.with_value(w, |wt| {
                let mut out = self.graph.alloc_zeroed(&out_shape);
                matmul_into(x.data(), wt.data(), out.data_mut(), rows, k, n);
                if let Some(b) = bias {
                    b.graph.with_value(b, |bt| {
                        assert_eq!(bt.shape(), &[n], "affine bias must be [{n}]");
                        for row in out.data_mut().chunks_mut(n) {
                            for (o, &bb) in row.iter_mut().zip(bt.data()) {
                                *o += bb;
                            }
                        }
                    });
                }
                out
            })
        });
        let parents: Vec<Var<'g>> = match bias {
            Some(b) => vec![self, w, b],
            None => vec![self, w],
        };
        self.graph.push_op(&parents, v, move |ctx| {
            let g = ctx.grad_out();
            if ctx.parent_needs_grad(0) {
                let w = ctx.value(1);
                ctx.accumulate_with(0, |out| matmul_nt_into(g.data(), w.data(), out, rows, n, k));
            }
            if ctx.parent_needs_grad(1) {
                let x = ctx.value(0);
                ctx.accumulate_with(1, |out| matmul_tn_into(x.data(), g.data(), out, rows, k, n));
            }
            if ctx.num_parents() == 3 && ctx.parent_needs_grad(2) {
                let db = ctx.grad_mut(2);
                for row in g.data().chunks(n) {
                    for (b, &gv) in db.data_mut().iter_mut().zip(row) {
                        *b += gv;
                    }
                }
            }
        })
    }

    /// Multiply a 3-D tensor by a shared 2-D matrix on the right:
    /// `[b,m,k] @ [k,n] -> [b,m,n]` — [`Var::affine`] without a bias.
    pub fn matmul_rhs2d(self, w: Var<'g>) -> Var<'g> {
        let shape = self.shape();
        assert_eq!(shape.len(), 3, "matmul_rhs2d lhs must be 3-D, got {shape:?}");
        self.affine(w, None)
    }

    /// Swap the last two axes of a 3-D tensor.
    pub fn transpose_last2(self) -> Var<'g> {
        let v = self.graph.with_value(self, |a| {
            assert_eq!(a.ndim(), 3, "transpose_last2 needs 3-D, got {:?}", a.shape());
            let (b, m, n) = (a.shape()[0], a.shape()[1], a.shape()[2]);
            let mut out = self.graph.alloc_out(&[b, n, m]);
            transpose_last2_into(a.data(), out.data_mut(), b, m, n);
            out
        });
        self.graph.push_op(&[self], v, |ctx| {
            let go = ctx.grad_out();
            let (b, n, m) = (go.shape()[0], go.shape()[1], go.shape()[2]);
            let dx = ctx.grad_mut(0);
            // dx[., r, c] += go[., c, r]
            for bi in 0..b {
                let src = &go.data()[bi * m * n..(bi + 1) * m * n];
                let dst = &mut dx.data_mut()[bi * m * n..(bi + 1) * m * n];
                for c in 0..n {
                    for r in 0..m {
                        dst[r * n + c] += src[c * m + r];
                    }
                }
            }
        })
    }

    // ------------------------------------------------------------------
    // Reductions
    // ------------------------------------------------------------------

    /// Sum of every element (scalar output).
    pub fn sum_all(self) -> Var<'g> {
        let v = self.graph.with_value(self, |a| {
            let mut out = self.graph.alloc_out(&[1]);
            out.data_mut()[0] = a.sum();
            out
        });
        self.graph.push_op(&[self], v, |ctx| {
            let g = ctx.grad_out().item();
            let dx = ctx.grad_mut(0);
            for o in dx.data_mut() {
                *o += g;
            }
        })
    }

    /// Mean of every element (scalar output).
    pub fn mean_all(self) -> Var<'g> {
        let n = self.graph.with_value(self, |a| a.len());
        assert!(n > 0, "mean_all of empty tensor");
        self.sum_all().mul_scalar(1.0 / n as f32)
    }

    // ------------------------------------------------------------------
    // Activations
    // ------------------------------------------------------------------

    /// Rectified linear unit.
    pub fn relu(self) -> Var<'g> {
        let v = self.graph.with_value(self, |a| {
            let mut out = self.graph.alloc_out(a.shape());
            for (o, &x) in out.data_mut().iter_mut().zip(a.data()) {
                *o = x.max(0.0);
            }
            out
        });
        self.graph.push_op(&[self], v, |ctx| {
            let go = ctx.grad_out();
            let x = ctx.value(0);
            let dx = ctx.grad_mut(0);
            for ((o, &g), &xi) in dx.data_mut().iter_mut().zip(go.data()).zip(x.data()) {
                *o += if xi <= 0.0 { 0.0 } else { g };
            }
        })
    }

    /// Logistic sigmoid.
    pub fn sigmoid(self) -> Var<'g> {
        let v = self.graph.with_value(self, |a| {
            let mut out = self.graph.alloc_out(a.shape());
            for (o, &x) in out.data_mut().iter_mut().zip(a.data()) {
                *o = 1.0 / (1.0 + (-x).exp());
            }
            out
        });
        self.graph.push_op(&[self], v, |ctx| {
            let go = ctx.grad_out();
            let y = ctx.out_value();
            let dx = ctx.grad_mut(0);
            for ((o, &g), &yi) in dx.data_mut().iter_mut().zip(go.data()).zip(y.data()) {
                *o += g * (yi * (1.0 - yi));
            }
        })
    }

    /// Hyperbolic tangent.
    pub fn tanh(self) -> Var<'g> {
        let v = self.graph.with_value(self, |a| {
            let mut out = self.graph.alloc_out(a.shape());
            for (o, &x) in out.data_mut().iter_mut().zip(a.data()) {
                *o = x.tanh();
            }
            out
        });
        self.graph.push_op(&[self], v, |ctx| {
            let go = ctx.grad_out();
            let y = ctx.out_value();
            let dx = ctx.grad_mut(0);
            for ((o, &g), &yi) in dx.data_mut().iter_mut().zip(go.data()).zip(y.data()) {
                *o += g * (1.0 - yi * yi);
            }
        })
    }

    /// Gaussian error linear unit (tanh approximation, as used by
    /// transformer implementations).
    ///
    /// `tanh` dominates a transformer training step's elementwise cost
    /// (half the profile), so the forward caches its tanh values and the
    /// backward reuses them instead of recomputing — same values, half
    /// the `tanh` calls per step.
    pub fn gelu(self) -> Var<'g> {
        const C: f32 = 0.797_884_6; // sqrt(2/pi)
        let (v, tcache) = self.graph.with_value(self, |a| {
            let mut out = self.graph.alloc_out(a.shape());
            let mut tc = self.graph.alloc_out(a.shape());
            for ((o, t), &x) in
                out.data_mut().iter_mut().zip(tc.data_mut().iter_mut()).zip(a.data())
            {
                *t = (C * (x + 0.044715 * x * x * x)).tanh();
                *o = 0.5 * x * (1.0 + *t);
            }
            (out, tc)
        });
        // The tanh cache rides the tape as a constant parent: its buffer
        // recycles through the pool on reset, and the backward reads it
        // like any other parent value (it receives no gradient).
        let tcache = self.graph.constant(tcache);
        self.graph.push_op(&[self, tcache], v, move |ctx| {
            let go = ctx.grad_out();
            let x = ctx.value(0);
            let tc = ctx.value(1);
            let dx = ctx.grad_mut(0);
            for (((o, &g), &xi), &t) in
                dx.data_mut().iter_mut().zip(go.data()).zip(x.data()).zip(tc.data())
            {
                let dinner = C * (1.0 + 3.0 * 0.044715 * xi * xi);
                let dgelu = 0.5 * (1.0 + t) + 0.5 * xi * (1.0 - t * t) * dinner;
                *o += g * dgelu;
            }
        })
    }
}

/// `out[., n, m] = src[., m, n]` — the transpose copy used by the
/// `transpose_last2` op (full overwrite, so a stale pooled buffer is fine).
fn transpose_last2_into(src: &[f32], out: &mut [f32], b: usize, m: usize, n: usize) {
    for bi in 0..b {
        let s = &src[bi * m * n..(bi + 1) * m * n];
        let d = &mut out[bi * m * n..(bi + 1) * m * n];
        for r in 0..m {
            for c in 0..n {
                d[c * m + r] = s[r * n + c];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::gradcheck::check_gradients;
    use crate::graph::Graph;
    use crate::tensor::Tensor;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(1234)
    }

    #[test]
    fn add_sub_mul_values() {
        let g = Graph::new();
        let a = g.var(Tensor::from_vec(vec![1.0, 2.0], &[2]), true);
        let b = g.var(Tensor::from_vec(vec![3.0, 5.0], &[2]), true);
        assert_eq!(a.add(b).value().data(), &[4.0, 7.0]);
        assert_eq!(a.sub(b).value().data(), &[-2.0, -3.0]);
        assert_eq!(a.mul(b).value().data(), &[3.0, 10.0]);
    }

    #[test]
    fn grad_add() {
        let x = Tensor::randn(&[3, 2], 1.0, &mut rng());
        let y = Tensor::randn(&[3, 2], 1.0, &mut rng());
        check_gradients(&[x, y], |_g, vars| vars[0].add(vars[1]).mul(vars[1]).sum_all());
    }

    #[test]
    fn grad_mul_scalar_and_add_scalar() {
        let x = Tensor::randn(&[4], 1.0, &mut rng());
        check_gradients(&[x], |_g, vars| {
            vars[0].mul_scalar(2.5).add_scalar(-1.0).mul(vars[0]).sum_all()
        });
    }

    #[test]
    fn grad_matmul() {
        let a = Tensor::randn(&[3, 4], 1.0, &mut rng());
        let b = Tensor::randn(&[4, 2], 1.0, &mut rng());
        check_gradients(&[a, b], |_g, vars| vars[0].matmul(vars[1]).sum_all());
    }

    #[test]
    fn grad_bmm() {
        let a = Tensor::randn(&[2, 3, 4], 1.0, &mut rng());
        let b = Tensor::randn(&[2, 4, 2], 1.0, &mut rng());
        check_gradients(&[a, b], |_g, vars| {
            // Square to make the loss non-linear in both inputs.
            let c = vars[0].bmm(vars[1]);
            c.mul(c).sum_all()
        });
    }

    #[test]
    fn bmm_nt_matches_transpose_then_bmm_bitwise() {
        let mut r = rng();
        let a = Tensor::randn(&[2, 3, 4], 1.0, &mut r);
        let b = Tensor::randn(&[2, 5, 4], 1.0, &mut r);
        let run = |fused: bool| {
            let g = Graph::new();
            let av = g.var(a.clone(), true);
            let bv = g.var(b.clone(), true);
            let y = if fused { av.bmm_nt(bv) } else { av.bmm(bv.transpose_last2()) };
            let loss = y.mul(y).sum_all();
            g.backward(loss);
            (y.value(), g.grad(av).unwrap(), g.grad(bv).unwrap())
        };
        let (yf, daf, dbf) = run(true);
        let (yr, dar, dbr) = run(false);
        assert_eq!(yf.shape(), &[2, 3, 5]);
        assert_eq!(yf.data(), yr.data());
        assert_eq!(daf.data(), dar.data());
        assert_eq!(dbf.data(), dbr.data());
    }

    #[test]
    fn grad_transpose_last2() {
        let a = Tensor::randn(&[2, 3, 4], 1.0, &mut rng());
        check_gradients(&[a], |_g, vars| {
            let t = vars[0].transpose_last2();
            t.mul(t).sum_all()
        });
    }

    #[test]
    fn grad_add_bias() {
        let x = Tensor::randn(&[2, 3, 4], 1.0, &mut rng());
        let b = Tensor::randn(&[4], 1.0, &mut rng());
        check_gradients(&[x, b], |_g, vars| {
            let y = vars[0].add_bias(vars[1]);
            y.mul(y).sum_all()
        });
    }

    #[test]
    fn grad_scale_by() {
        let x = Tensor::randn(&[5], 1.0, &mut rng());
        let s = Tensor::scalar(0.7);
        check_gradients(&[x, s], |_g, vars| {
            let y = vars[0].scale_by(vars[1]);
            y.mul(y).sum_all()
        });
    }

    #[test]
    fn grad_activations() {
        for act in ["relu", "sigmoid", "tanh", "gelu"] {
            let x = Tensor::randn(&[6], 1.0, &mut rng()).map(|v| v + 0.05); // keep away from relu kink
            check_gradients(&[x], |_g, vars| {
                let y = match act {
                    "relu" => vars[0].relu(),
                    "sigmoid" => vars[0].sigmoid(),
                    "tanh" => vars[0].tanh(),
                    _ => vars[0].gelu(),
                };
                y.mul(y).sum_all()
            });
        }
    }

    #[test]
    fn grad_matmul_rhs2d_matches_flat_matmul() {
        let g = Graph::new();
        let x = g.var(Tensor::randn(&[2, 3, 4], 1.0, &mut rng()), true);
        let w = g.var(Tensor::randn(&[4, 5], 1.0, &mut rng()), true);
        let y = x.matmul_rhs2d(w);
        assert_eq!(y.shape(), vec![2, 3, 5]);
        let flat = x.reshape(&[6, 4]).matmul(w);
        assert_eq!(y.value().data(), flat.value().data());
    }

    #[test]
    fn affine_matches_matmul_plus_bias_bitwise() {
        // Values and gradients of the fused op must equal the historical
        // reshape → matmul → add_bias chain exactly.
        let mut r = rng();
        let x = Tensor::randn(&[2, 3, 4], 1.0, &mut r);
        let w = Tensor::randn(&[4, 5], 1.0, &mut r);
        let b = Tensor::randn(&[5], 0.5, &mut r);

        let run = |fused: bool| {
            let g = Graph::new();
            let xv = g.var(x.clone(), true);
            let wv = g.var(w.clone(), true);
            let bv = g.var(b.clone(), true);
            let y = if fused {
                xv.affine(wv, Some(bv))
            } else {
                xv.reshape(&[6, 4]).matmul(wv).reshape(&[2, 3, 5]).add_bias(bv)
            };
            let loss = y.mul(y).sum_all();
            g.backward(loss);
            (y.value(), g.grad(xv).unwrap(), g.grad(wv).unwrap(), g.grad(bv).unwrap())
        };
        let (yf, dxf, dwf, dbf) = run(true);
        let (yr, dxr, dwr, dbr) = run(false);
        assert_eq!(yf.data(), yr.data());
        assert_eq!(dxf.data(), dxr.data());
        assert_eq!(dwf.data(), dwr.data());
        assert_eq!(dbf.data(), dbr.data());
    }

    #[test]
    fn affine_gradcheck() {
        let x = Tensor::randn(&[3, 4], 1.0, &mut rng());
        let w = Tensor::randn(&[4, 2], 1.0, &mut rng());
        let b = Tensor::randn(&[2], 1.0, &mut rng());
        check_gradients(&[x, w, b], |_g, vars| {
            let y = vars[0].affine(vars[1], Some(vars[2]));
            y.mul(y).sum_all()
        });
    }

    #[test]
    fn sum_and_mean_grads() {
        let x = Tensor::randn(&[3, 3], 1.0, &mut rng());
        check_gradients(std::slice::from_ref(&x), |_g, vars| vars[0].mul(vars[0]).sum_all());
        check_gradients(&[x], |_g, vars| vars[0].mul(vars[0]).mean_all());
    }

    #[test]
    fn matmul_backward_survives_graph_reset() {
        // The same matmul forward/backward, re-run after reset, must draw
        // pooled buffers and still produce bitwise-identical gradients.
        let g = Graph::new();
        let run = |g: &Graph| {
            let a = g.var(Tensor::from_fn(&[3, 4], |i| (i as f32 * 0.37).sin()), true);
            let b = g.var(Tensor::from_fn(&[4, 5], |i| (i as f32 * 0.11).cos()), true);
            let y = a.matmul(b);
            let loss = y.mul(y).sum_all();
            g.backward(loss);
            (g.grad(a).unwrap(), g.grad(b).unwrap())
        };
        let (da1, db1) = run(&g);
        g.reset();
        let (da2, db2) = run(&g);
        assert_eq!(da1.data(), da2.data());
        assert_eq!(db1.data(), db2.data());
    }

    #[test]
    fn bmm_nt_on_split_head_views_matches_copying_path_bitwise() {
        // Attention scores through zero-copy head-split views must equal the
        // historical split-copy path exactly, values and input gradients.
        let mut r = rng();
        let (b, t, d, h) = (2usize, 3usize, 8usize, 4usize);
        let q0 = Tensor::randn(&[b, t, d], 1.0, &mut r);
        let k0 = Tensor::randn(&[b, t, d], 1.0, &mut r);
        let run = |views: bool| {
            let g = Graph::new();
            let qv = g.var(q0.clone(), true);
            let kv = g.var(k0.clone(), true);
            let (q, k) = if views {
                (qv.split_heads_view(h), kv.split_heads_view(h))
            } else {
                (qv.split_heads(h), kv.split_heads(h))
            };
            let s = q.bmm_nt(k);
            let loss = s.mul(s).sum_all();
            g.backward(loss);
            (s.value(), g.grad(qv).unwrap(), g.grad(kv).unwrap())
        };
        let (sv, dqv, dkv) = run(true);
        let (sc, dqc, dkc) = run(false);
        assert_eq!(sv.shape(), &[b * h, t, t]);
        assert_eq!(sv.data(), sc.data());
        assert_eq!(dqv.data(), dqc.data());
        assert_eq!(dkv.data(), dkc.data());
    }

    #[test]
    fn attn_bmm_merge_matches_bmm_then_merge_heads_bitwise() {
        // The fused context op (attn · V written straight into merged-head
        // layout) must equal bmm → merge_heads exactly, with V arriving as a
        // zero-copy view in the fused path.
        let mut r = rng();
        let (b, t, d, h) = (2usize, 4usize, 6usize, 3usize);
        let attn0 = Tensor::randn(&[b * h, t, t], 1.0, &mut r);
        let x0 = Tensor::randn(&[b, t, d], 1.0, &mut r);
        let run = |fused: bool| {
            let g = Graph::new();
            let av = g.var(attn0.clone(), true);
            let xv = g.var(x0.clone(), true);
            let y = if fused {
                av.attn_bmm_merge(xv.split_heads_view(h), h)
            } else {
                av.bmm(xv.split_heads(h)).merge_heads(h)
            };
            let loss = y.mul(y).sum_all();
            g.backward(loss);
            (y.value(), g.grad(av).unwrap(), g.grad(xv).unwrap())
        };
        let (yf, daf, dxf) = run(true);
        let (yr, dar, dxr) = run(false);
        assert_eq!(yf.shape(), &[b, t, d]);
        assert_eq!(yf.data(), yr.data());
        assert_eq!(daf.data(), dar.data());
        assert_eq!(dxf.data(), dxr.data());
    }

    #[test]
    fn view_attention_replays_bitwise_after_reset() {
        // A full view-based attention core (split views → NT scores →
        // softmax → fused context) replayed after reset must reuse the tape
        // (no node growth) and reproduce identical bits.
        let g = Graph::new();
        let run = |g: &Graph| {
            let (b, t, d, h) = (2usize, 3usize, 8usize, 2usize);
            let x = g.var(Tensor::from_fn(&[b, t, d], |i| (i as f32 * 0.23).sin()), true);
            let q = x.split_heads_view(h);
            let k = x.split_heads_view(h);
            let v = x.split_heads_view(h);
            let s = q.bmm_nt(k).mul_scalar(0.5).softmax_last();
            let y = s.attn_bmm_merge(v, h);
            let loss = y.mul(y).sum_all();
            g.backward(loss);
            (loss.item(), g.grad(x).unwrap())
        };
        let (l1, dx1) = run(&g);
        let nodes = g.num_nodes();
        g.reset();
        let (l2, dx2) = run(&g);
        assert_eq!(l1.to_bits(), l2.to_bits());
        assert_eq!(dx1.data(), dx2.data());
        assert_eq!(g.num_nodes(), nodes, "replay must not grow the tape");
    }
}
