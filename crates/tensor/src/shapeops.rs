//! Differentiable shape-manipulation operations: reshape, gather, concat,
//! stacking, step selection, window unfolding and attention head splitting.
//!
//! Outputs draw from the graph's buffer pool; each op fully overwrites its
//! buffer (or requests it zeroed where it accumulates), and backward
//! closures scatter upstream gradients in place without cloning them.

use crate::graph::Var;

impl<'g> Var<'g> {
    /// Reshape (element count must be preserved).  The forward pass is
    /// zero-copy: the output tensor shares the parent's storage via
    /// [`crate::Tensor::reshaped`] (strided views materialise first).
    ///
    /// Unlike pure view nodes this keeps its op record so that graphs with
    /// several consumers of the parent preserve the established gradient
    /// accumulation order bit-for-bit.
    pub fn reshape(self, shape: &[usize]) -> Var<'g> {
        let v = self.graph.with_value(self, |a| {
            let numel: usize = shape.iter().product();
            assert_eq!(
                numel,
                a.len(),
                "reshape from {:?} to {shape:?} changes element count",
                a.shape()
            );
            a.reshaped(shape)
        });
        self.graph.push_op(&[self], v, |ctx| {
            ctx.accumulate_grad_out_flat(0);
        })
    }

    /// Embedding lookup: treats `self` as a 2-D table `[rows, d]` and
    /// gathers `indices` into an `[indices.len(), d]` output.  The backward
    /// pass scatter-adds gradients into the gathered rows.
    pub fn gather_rows(self, indices: &[usize]) -> Var<'g> {
        let v = self.graph.with_value(self, |a| {
            assert_eq!(a.ndim(), 2, "gather_rows needs 2-D, got {:?}", a.shape());
            let (rows, d) = (a.shape()[0], a.shape()[1]);
            let mut out = self.graph.alloc_out(&[indices.len(), d]);
            for (n, &i) in indices.iter().enumerate() {
                assert!(i < rows, "gather_rows index {i} out of bounds ({rows} rows)");
                out.data_mut()[n * d..(n + 1) * d].copy_from_slice(&a.data()[i * d..(i + 1) * d]);
            }
            out
        });
        // The gathered rows change every minibatch, so they ride as an index
        // payload (refreshed in place on replay) instead of a closure capture.
        self.graph.push_op_indexed(&[self], v, indices, |ctx| {
            let d = ctx.value(0).shape()[1];
            let idx = ctx.payload_idx();
            let go = ctx.grad_out();
            let dw = ctx.grad_mut(0);
            for (n, &row) in idx.iter().enumerate() {
                let src = &go.data()[n * d..(n + 1) * d];
                let dst = &mut dw.data_mut()[row * d..(row + 1) * d];
                for (o, &g) in dst.iter_mut().zip(src) {
                    *o += g;
                }
            }
        })
    }

    /// Concatenate along the last axis.  All inputs must agree on the
    /// leading axes.
    pub fn concat_last(parts: &[Var<'g>]) -> Var<'g> {
        assert!(!parts.is_empty(), "concat_last of zero tensors");
        let graph = parts[0].graph;
        let shapes: Vec<Vec<usize>> = parts.iter().map(|p| p.shape()).collect();
        let lead = &shapes[0][..shapes[0].len() - 1];
        for s in &shapes {
            assert_eq!(&s[..s.len() - 1], lead, "concat_last leading axes differ: {shapes:?}");
        }
        let widths: Vec<usize> = shapes.iter().map(|s| *s.last().unwrap()).collect();
        let total_w: usize = widths.iter().sum();
        let rows: usize = lead.iter().product();
        let mut out_shape = lead.to_vec();
        out_shape.push(total_w);

        let mut out = graph.alloc_out(&out_shape);
        for r in 0..rows {
            let mut off = 0;
            for (p, &w) in parts.iter().zip(&widths) {
                p.graph.with_value(*p, |t| {
                    out.data_mut()[r * total_w + off..r * total_w + off + w]
                        .copy_from_slice(&t.data()[r * w..(r + 1) * w]);
                });
                off += w;
            }
        }
        let widths_c = widths.clone();
        graph.push_op(parts, out, move |ctx| {
            let go = ctx.grad_out();
            let total_w: usize = widths_c.iter().sum();
            let rows = go.len() / total_w;
            for r in 0..rows {
                let mut off = 0;
                for (i, &w) in widths_c.iter().enumerate() {
                    let src = &go.data()[r * total_w + off..r * total_w + off + w];
                    let dst = ctx.grad_mut(i);
                    for (o, &g) in dst.data_mut()[r * w..(r + 1) * w].iter_mut().zip(src) {
                        *o += g;
                    }
                    off += w;
                }
            }
        })
    }

    /// Stack `T` tensors of shape `[B, D]` into `[B, T, D]`.
    ///
    /// Used to assemble per-timestep RNN hidden states into a sequence
    /// tensor for batched output projection.
    pub fn stack_axis1(steps: &[Var<'g>]) -> Var<'g> {
        assert!(!steps.is_empty(), "stack_axis1 of zero tensors");
        let graph = steps[0].graph;
        let first = steps[0].shape();
        assert_eq!(first.len(), 2, "stack_axis1 expects 2-D inputs, got {first:?}");
        let (b, d) = (first[0], first[1]);
        for s in steps {
            assert_eq!(s.shape(), vec![b, d], "stack_axis1 inputs must share shape");
        }
        let t = steps.len();
        let mut out = graph.alloc_out(&[b, t, d]);
        for (k, s) in steps.iter().enumerate() {
            s.graph.with_value(*s, |v| {
                for bi in 0..b {
                    out.data_mut()[bi * t * d + k * d..bi * t * d + (k + 1) * d]
                        .copy_from_slice(&v.data()[bi * d..(bi + 1) * d]);
                }
            });
        }
        graph.push_op(steps, out, move |ctx| {
            let go = ctx.grad_out();
            for k in 0..t {
                let dst = ctx.grad_mut(k);
                for bi in 0..b {
                    let src = &go.data()[bi * t * d + k * d..bi * t * d + (k + 1) * d];
                    for (o, &g) in dst.data_mut()[bi * d..(bi + 1) * d].iter_mut().zip(src) {
                        *o += g;
                    }
                }
            }
        })
    }

    /// Select timestep `t` from a `[B, T, D]` tensor, producing `[B, D]`.
    pub fn select_step(self, t: usize) -> Var<'g> {
        let shape = self.shape();
        assert_eq!(shape.len(), 3, "select_step expects 3-D input, got {shape:?}");
        let (b, tt, d) = (shape[0], shape[1], shape[2]);
        assert!(t < tt, "select_step index {t} out of bounds for T={tt}");
        let v = self.graph.with_value(self, |x| {
            let mut out = self.graph.alloc_out(&[b, d]);
            for bi in 0..b {
                out.data_mut()[bi * d..(bi + 1) * d]
                    .copy_from_slice(&x.data()[bi * tt * d + t * d..bi * tt * d + (t + 1) * d]);
            }
            out
        });
        self.graph.push_op(&[self], v, move |ctx| {
            let go = ctx.grad_out();
            let dx = ctx.grad_mut(0);
            for bi in 0..b {
                let src = &go.data()[bi * d..(bi + 1) * d];
                let dst = &mut dx.data_mut()[bi * tt * d + t * d..bi * tt * d + (t + 1) * d];
                for (o, &g) in dst.iter_mut().zip(src) {
                    *o += g;
                }
            }
        })
    }

    /// Unfold sliding windows of width `w` along the time axis:
    /// `[B, T, D] -> [B, T-w+1, w*D]`.
    ///
    /// This is the im2col step used by Caser's horizontal convolutions: a
    /// convolution of height `w` becomes a matmul of the unfolded tensor
    /// with a `[w*D, filters]` weight matrix.
    pub fn unfold_windows(self, w: usize) -> Var<'g> {
        let shape = self.shape();
        assert_eq!(shape.len(), 3, "unfold_windows expects 3-D input, got {shape:?}");
        let (b, t, d) = (shape[0], shape[1], shape[2]);
        assert!(w >= 1 && w <= t, "window width {w} out of range for T={t}");
        let windows = t - w + 1;
        let v = self.graph.with_value(self, |x| {
            let mut out = self.graph.alloc_out(&[b, windows, w * d]);
            for bi in 0..b {
                for s in 0..windows {
                    let dst_base = bi * windows * w * d + s * w * d;
                    let src_base = bi * t * d + s * d;
                    out.data_mut()[dst_base..dst_base + w * d]
                        .copy_from_slice(&x.data()[src_base..src_base + w * d]);
                }
            }
            out
        });
        self.graph.push_op(&[self], v, move |ctx| {
            let go = ctx.grad_out();
            let dx = ctx.grad_mut(0);
            for bi in 0..b {
                for s in 0..windows {
                    let src_base = bi * windows * w * d + s * w * d;
                    let dst_base = bi * t * d + s * d;
                    for k in 0..w * d {
                        dx.data_mut()[dst_base + k] += go.data()[src_base + k];
                    }
                }
            }
        })
    }

    /// Max over axis 1 of a `[B, N, F]` tensor -> `[B, F]`, with argmax
    /// routing in the backward pass (max-pooling).
    pub fn max_axis1(self) -> Var<'g> {
        let shape = self.shape();
        assert_eq!(shape.len(), 3, "max_axis1 expects 3-D input, got {shape:?}");
        let (b, n, f) = (shape[0], shape[1], shape[2]);
        assert!(n > 0, "max_axis1 over empty axis");
        let mut argmax = vec![0usize; b * f];
        let v = self.graph.with_value(self, |x| {
            let mut out = self.graph.alloc_out(&[b, f]);
            out.data_mut().fill(f32::NEG_INFINITY);
            for bi in 0..b {
                for ni in 0..n {
                    for fi in 0..f {
                        let val = x.data()[bi * n * f + ni * f + fi];
                        if val > out.data()[bi * f + fi] {
                            out.data_mut()[bi * f + fi] = val;
                            argmax[bi * f + fi] = ni;
                        }
                    }
                }
            }
            out
        });
        // Argmax routing is data-dependent, so it travels as an index payload
        // that replay refreshes each step.
        self.graph.push_op_indexed(&[self], v, &argmax, |ctx| {
            let shape = ctx.value(0).shape();
            let (b, n, f) = (shape[0], shape[1], shape[2]);
            let argmax = ctx.payload_idx();
            let go = ctx.grad_out();
            let dx = ctx.grad_mut(0);
            for bi in 0..b {
                for fi in 0..f {
                    let ni = argmax[bi * f + fi];
                    dx.data_mut()[bi * n * f + ni * f + fi] += go.data()[bi * f + fi];
                }
            }
        })
    }

    /// Mean over axis 1 of a `[B, N, F]` tensor -> `[B, F]`.
    pub fn mean_axis1(self) -> Var<'g> {
        let shape = self.shape();
        assert_eq!(shape.len(), 3, "mean_axis1 expects 3-D input, got {shape:?}");
        let (b, n, f) = (shape[0], shape[1], shape[2]);
        assert!(n > 0, "mean_axis1 over empty axis");
        let inv = 1.0 / n as f32;
        let v = self.graph.with_value(self, |x| {
            let mut out = self.graph.alloc_zeroed(&[b, f]);
            for bi in 0..b {
                for ni in 0..n {
                    for fi in 0..f {
                        out.data_mut()[bi * f + fi] += x.data()[bi * n * f + ni * f + fi] * inv;
                    }
                }
            }
            out
        });
        self.graph.push_op(&[self], v, move |ctx| {
            let go = ctx.grad_out();
            let dx = ctx.grad_mut(0);
            for bi in 0..b {
                for ni in 0..n {
                    for fi in 0..f {
                        dx.data_mut()[bi * n * f + ni * f + fi] += go.data()[bi * f + fi] * inv;
                    }
                }
            }
        })
    }

    /// Split the model dimension into attention heads:
    /// `[B, T, D] -> [B*H, T, D/H]` with head-major batch layout.
    pub fn split_heads(self, heads: usize) -> Var<'g> {
        let shape = self.shape();
        assert_eq!(shape.len(), 3, "split_heads expects 3-D input, got {shape:?}");
        let (b, t, d) = (shape[0], shape[1], shape[2]);
        assert!(heads > 0 && d % heads == 0, "d={d} not divisible by heads={heads}");
        let dk = d / heads;
        let v = self.graph.with_value(self, |x| {
            let mut out = self.graph.alloc_out(&[b * heads, t, dk]);
            for bi in 0..b {
                for ti in 0..t {
                    for h in 0..heads {
                        let src = bi * t * d + ti * d + h * dk;
                        let dst = (bi * heads + h) * t * dk + ti * dk;
                        out.data_mut()[dst..dst + dk].copy_from_slice(&x.data()[src..src + dk]);
                    }
                }
            }
            out
        });
        self.graph.push_op(&[self], v, move |ctx| {
            let go = ctx.grad_out();
            let dx = ctx.grad_mut(0);
            for bi in 0..b {
                for ti in 0..t {
                    for h in 0..heads {
                        let dst = bi * t * d + ti * d + h * dk;
                        let src = (bi * heads + h) * t * dk + ti * dk;
                        for k in 0..dk {
                            dx.data_mut()[dst + k] += go.data()[src + k];
                        }
                    }
                }
            }
        })
    }

    /// Metadata-only variant of [`Var::split_heads`]: the output is a
    /// zero-copy strided view `[B, T, D] -> [B*H, T, D/H]` over the
    /// parent's buffer, registered as a view node (no op record, no
    /// backward closure).  Consumers must be view-aware kernels
    /// ([`Var::bmm_nt`], [`Var::attn_bmm_merge`]); their backward passes
    /// scatter gradients straight into the parent's root gradient buffer
    /// through the view layout, reproducing the old
    /// split-copy-then-accumulate path bit-for-bit.
    pub fn split_heads_view(self, heads: usize) -> Var<'g> {
        let v = self.graph.with_value(self, |x| x.split_heads_view(heads));
        self.graph.view_node(self, v)
    }

    /// Inverse of [`Var::split_heads`]: `[B*H, T, Dk] -> [B, T, H*Dk]`.
    pub fn merge_heads(self, heads: usize) -> Var<'g> {
        let shape = self.shape();
        assert_eq!(shape.len(), 3, "merge_heads expects 3-D input, got {shape:?}");
        let (bh, t, dk) = (shape[0], shape[1], shape[2]);
        assert!(heads > 0 && bh % heads == 0, "batch*heads={bh} not divisible by heads={heads}");
        let b = bh / heads;
        let d = heads * dk;
        let v = self.graph.with_value(self, |x| {
            let mut out = self.graph.alloc_out(&[b, t, d]);
            for bi in 0..b {
                for ti in 0..t {
                    for h in 0..heads {
                        let src = (bi * heads + h) * t * dk + ti * dk;
                        let dst = bi * t * d + ti * d + h * dk;
                        out.data_mut()[dst..dst + dk].copy_from_slice(&x.data()[src..src + dk]);
                    }
                }
            }
            out
        });
        self.graph.push_op(&[self], v, move |ctx| {
            let go = ctx.grad_out();
            let dx = ctx.grad_mut(0);
            for bi in 0..b {
                for ti in 0..t {
                    for h in 0..heads {
                        let dst = (bi * heads + h) * t * dk + ti * dk;
                        let src = bi * t * d + ti * d + h * dk;
                        for k in 0..dk {
                            dx.data_mut()[dst + k] += go.data()[src + k];
                        }
                    }
                }
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use crate::gradcheck::check_gradients;
    use crate::graph::{Graph, Var};
    use crate::tensor::Tensor;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(99)
    }

    #[test]
    fn reshape_grad_round_trips() {
        let x = Tensor::randn(&[2, 6], 1.0, &mut rng());
        check_gradients(&[x], |_g, vars| {
            let y = vars[0].reshape(&[3, 4]).reshape(&[12]);
            y.mul(y).sum_all()
        });
    }

    #[test]
    fn gather_rows_values_and_grad() {
        let g = Graph::new();
        let w = g.var(Tensor::from_vec((0..8).map(|x| x as f32).collect(), &[4, 2]), true);
        let e = w.gather_rows(&[1, 1, 3]);
        assert_eq!(e.value().data(), &[2.0, 3.0, 2.0, 3.0, 6.0, 7.0]);
        let loss = e.sum_all();
        g.backward(loss);
        let dw = g.grad(w).unwrap();
        // Row 1 gathered twice => gradient 2, row 3 once => 1.
        assert_eq!(dw.data(), &[0.0, 0.0, 2.0, 2.0, 0.0, 0.0, 1.0, 1.0]);
    }

    #[test]
    fn gather_rows_gradcheck() {
        let w = Tensor::randn(&[5, 3], 1.0, &mut rng());
        check_gradients(&[w], |_g, vars| {
            let e = vars[0].gather_rows(&[0, 2, 2, 4]);
            e.mul(e).sum_all()
        });
    }

    #[test]
    fn concat_last_values() {
        let g = Graph::new();
        let a = g.var(Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]), true);
        let b = g.var(Tensor::from_vec(vec![5.0, 6.0], &[2, 1]), true);
        let c = Var::concat_last(&[a, b]);
        assert_eq!(c.shape(), vec![2, 3]);
        assert_eq!(c.value().data(), &[1.0, 2.0, 5.0, 3.0, 4.0, 6.0]);
    }

    #[test]
    fn concat_last_gradcheck() {
        let a = Tensor::randn(&[2, 3], 1.0, &mut rng());
        let b = Tensor::randn(&[2, 2], 1.0, &mut rng());
        check_gradients(&[a, b], |_g, vars| {
            let c = Var::concat_last(&[vars[0], vars[1]]);
            c.mul(c).sum_all()
        });
    }

    #[test]
    fn stack_axis1_values_and_gradcheck() {
        let g = Graph::new();
        let a = g.var(Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]), true);
        let b = g.var(Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2]), true);
        let s = Var::stack_axis1(&[a, b]);
        assert_eq!(s.shape(), vec![2, 2, 2]);
        assert_eq!(s.value().data(), &[1.0, 2.0, 5.0, 6.0, 3.0, 4.0, 7.0, 8.0]);

        let x = Tensor::randn(&[3, 4], 1.0, &mut rng());
        let y = Tensor::randn(&[3, 4], 1.0, &mut rng());
        check_gradients(&[x, y], |_g, vars| {
            let s = Var::stack_axis1(&[vars[0], vars[1], vars[0]]);
            s.mul(s).sum_all()
        });
    }

    #[test]
    fn select_step_inverts_stack() {
        let g = Graph::new();
        let x = g.var(Tensor::randn(&[2, 5, 3], 1.0, &mut rng()), true);
        let s2 = x.select_step(2);
        assert_eq!(s2.shape(), vec![2, 3]);
        let full = x.value();
        for bi in 0..2 {
            for k in 0..3 {
                assert_eq!(s2.value().at(&[bi, k]), full.at(&[bi, 2, k]));
            }
        }
    }

    #[test]
    fn select_step_gradcheck() {
        let x = Tensor::randn(&[2, 4, 3], 1.0, &mut rng());
        check_gradients(&[x], |_g, vars| {
            let s = vars[0].select_step(1);
            s.mul(s).sum_all()
        });
    }

    #[test]
    fn unfold_windows_shapes_and_values() {
        let g = Graph::new();
        let x = g.var(Tensor::from_vec((0..12).map(|v| v as f32).collect(), &[1, 4, 3]), true);
        let u = x.unfold_windows(2);
        assert_eq!(u.shape(), vec![1, 3, 6]);
        // First window is rows 0..2 flattened.
        assert_eq!(&u.value().data()[..6], &[0.0, 1.0, 2.0, 3.0, 4.0, 5.0]);
    }

    #[test]
    fn unfold_windows_gradcheck() {
        let x = Tensor::randn(&[2, 5, 2], 1.0, &mut rng());
        check_gradients(&[x], |_g, vars| {
            let u = vars[0].unfold_windows(3);
            u.mul(u).sum_all()
        });
    }

    #[test]
    fn max_axis1_values_and_grad_routing() {
        let g = Graph::new();
        let x = g.var(Tensor::from_vec(vec![1.0, 5.0, 3.0, 2.0, 0.0, 4.0], &[1, 3, 2]), true);
        let m = x.max_axis1();
        assert_eq!(m.value().data(), &[3.0, 5.0]);
        let loss = m.sum_all();
        g.backward(loss);
        let dx = g.grad(x).unwrap();
        assert_eq!(dx.data(), &[0.0, 1.0, 1.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn max_axis1_survives_stale_pooled_buffers() {
        // A reset graph hands max_axis1 a stale buffer; the op must
        // re-initialise it (NEG_INFINITY fill) before the max scan.
        let g = Graph::new();
        let run = |g: &Graph| {
            let x = g.var(Tensor::from_vec(vec![-3.0, -5.0, -4.0, -2.0], &[1, 2, 2]), true);
            x.max_axis1().value()
        };
        let first = run(&g);
        g.reset();
        let second = run(&g);
        assert_eq!(first.data(), &[-3.0, -2.0]);
        assert_eq!(first.data(), second.data());
    }

    #[test]
    fn mean_axis1_gradcheck() {
        let x = Tensor::randn(&[2, 4, 3], 1.0, &mut rng());
        check_gradients(&[x], |_g, vars| {
            let m = vars[0].mean_axis1();
            m.mul(m).sum_all()
        });
    }

    #[test]
    fn split_merge_heads_round_trip() {
        let g = Graph::new();
        let x = g.var(Tensor::randn(&[2, 3, 8], 1.0, &mut rng()), true);
        let split = x.split_heads(4);
        assert_eq!(split.shape(), vec![8, 3, 2]);
        let merged = split.merge_heads(4);
        assert_eq!(merged.value().data(), x.value().data());
    }

    #[test]
    fn split_heads_gradcheck() {
        let x = Tensor::randn(&[2, 3, 4], 1.0, &mut rng());
        check_gradients(&[x], |_g, vars| {
            let s = vars[0].split_heads(2);
            s.mul(s).sum_all()
        });
    }
}
