//! Tape-based reverse-mode automatic differentiation with a
//! workspace-reusing arena.
//!
//! A [`Graph`] records every value produced during a forward pass together
//! with a backward closure per operation.  [`Var`] is a `Copy` handle
//! (graph reference + node id) used to compose operations; the actual op
//! implementations live in the sibling `ops`, `nnops` and `shapeops`
//! modules, all funnelling through [`Graph::push_op`].
//!
//! ## Buffer reuse across training steps
//!
//! Training runs the same step shape thousands of times, so instead of
//! dropping a graph per step the training loops call [`Graph::reset`]:
//! every node value and gradient buffer retires into a pool keyed by
//! element count, and the next step's ops draw their output buffers from
//! that pool via [`Graph::alloc_out`] / [`Graph::alloc_zeroed`] instead of
//! the allocator.  Reset invalidates all outstanding [`Var`] handles of
//! the previous step (using one panics on an out-of-bounds node id).
//! Buffer reuse never changes values: an op either fully overwrites its
//! pooled buffer or requests it zeroed, so results are bitwise identical
//! to a freshly allocated graph.
//!
//! ## Record-once / replay-per-minibatch
//!
//! Training steps run the *same program* every minibatch, so boxing a
//! fresh backward closure per op per step is pure overhead.  The tape is
//! therefore **replayable**: [`Graph::reset`] keeps the op records and
//! arms a replay cursor.  The next step's [`Graph::push_op`] calls are
//! matched against the recorded prefix — same output id, same parent
//! ids, same closure type (via `TypeId`), same operand shapes — and on a
//! hit the freshly-built closure is dropped *unboxed* while the recorded
//! one is reused; only data-dependent state (index lists, scalars)
//! travels through explicit per-record payloads updated in place.  Any
//! divergence truncates the stale suffix and falls back to recording, so
//! shape changes (the ragged final minibatch of an epoch) stay correct
//! at the cost of a one-step re-record.  Replay never changes values or
//! gradients: closures read everything through [`BackwardCtx`], whose
//! state is rebuilt from the current step's node values.
//!
//! ## Strided views on the tape
//!
//! [`Graph::view_node`] registers a zero-copy view (see
//! [`Tensor::transpose2d_view`] and friends) of an existing node without
//! an op record.  A view shares its **root**'s gradient slot: backward
//! closures that consume views accumulate through stride-aware kernels
//! directly into the root-shaped buffer, which keeps accumulation order
//! — and therefore bits — identical to the old materialise-then-scatter
//! path.
//!
//! Custom operations (e.g. the IRN Personalized Impressionability Mask in
//! `irs_nn`) can be defined outside this crate via [`Graph::custom_op`].

use std::any::TypeId;
use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::Arc;

use crate::tensor::{numel, Tensor};

/// Identifier of a node inside a [`Graph`].
pub type VarId = usize;

/// Retired storage buffers keyed by element count, ready for reuse by
/// the next step's nodes of identical shape (shapes repeat across
/// training steps; the ragged final minibatch of an epoch parks its odd
/// sizes here until the next ragged batch, bounding the pool at one
/// step's worth of buffers per distinct shape set).  Whole `Arc`s are
/// pooled so the reference-count block is recycled along with the float
/// storage — steady-state steps touch the allocator for neither.
#[derive(Default)]
struct Pool {
    by_len: HashMap<usize, Vec<Arc<Vec<f32>>>>,
}

impl Pool {
    fn put(&mut self, t: Tensor) {
        let arc = t.into_storage();
        // A buffer shared with a live view (or clone) retires when its
        // *last* holder is drained — reset drains nodes in id order, so
        // a root's storage is skipped here and pooled once its final
        // view node retires.
        if Arc::strong_count(&arc) == 1 && arc.capacity() > 0 {
            self.by_len.entry(arc.len()).or_default().push(arc);
        }
    }

    /// A buffer of exactly `len` elements with unspecified (stale)
    /// contents, or `None` when nothing of that size has retired.
    fn take(&mut self, len: usize) -> Option<Arc<Vec<f32>>> {
        self.by_len.get_mut(&len).and_then(Vec::pop)
    }
}

/// Backward context handed to every backward closure.
///
/// Provides read access to parent values and the upstream gradient, and
/// lazily-initialised mutable access to parent gradients.  Accessors
/// return references tied to the backward pass (`'a`), so closures can
/// hold a parent value or the upstream gradient while mutating a
/// gradient slot — no defensive clones needed.
pub struct BackwardCtx<'a> {
    parent_ids: &'a [VarId],
    values: &'a [Tensor],
    needs_grad: &'a [bool],
    /// Gradient-slot owner per node id (`roots[id] == id` except for
    /// view nodes, which share their root's slot).
    roots: &'a [VarId],
    out_id: VarId,
    grad_out: &'a Tensor,
    /// Gradient slots for ids `0..out_id` (parents are always earlier).
    grads: &'a mut [Option<Tensor>],
    pool: &'a RefCell<Pool>,
    payload_idx: &'a [usize],
    payload_scalar: f32,
}

impl<'a> BackwardCtx<'a> {
    /// Value of the `i`-th parent.
    pub fn value(&self, i: usize) -> &'a Tensor {
        &self.values[self.parent_ids[i]]
    }

    /// The op's index payload (e.g. gather indices, CE targets), as
    /// updated for the **current** step by the replay machinery.
    /// Replay-safe closures read data-dependent indices from here, never
    /// from their captures.
    pub fn payload_idx(&self) -> &'a [usize] {
        self.payload_idx
    }

    /// The op's scalar payload (e.g. the `mul_scalar` constant), as
    /// updated for the current step by the replay machinery.
    pub fn payload_scalar(&self) -> f32 {
        self.payload_scalar
    }

    /// Value of the `i`-th parent's gradient-slot owner (the root of a
    /// view chain; the parent itself for dense nodes).  Gradient buffers
    /// produced by [`BackwardCtx::grad_mut`] / `accumulate_with` have
    /// *this* tensor's shape.
    pub fn root_value(&self, i: usize) -> &'a Tensor {
        &self.values[self.roots[self.parent_ids[i]]]
    }

    /// Value of the op output.
    pub fn out_value(&self) -> &'a Tensor {
        &self.values[self.out_id]
    }

    /// Gradient flowing into the op output.
    pub fn grad_out(&self) -> &'a Tensor {
        self.grad_out
    }

    /// Number of parents.
    pub fn num_parents(&self) -> usize {
        self.parent_ids.len()
    }

    /// Whether the `i`-th parent requires a gradient.  Backward closures
    /// may skip computing contributions for parents that do not — their
    /// slots are never read by earlier ops or by parameter collection.
    pub fn parent_needs_grad(&self, i: usize) -> bool {
        self.needs_grad[self.parent_ids[i]]
    }

    /// A zeroed gradient tensor for the slot owner's shape, drawn from
    /// the graph's buffer pool.
    fn zeroed_like(&self, slot: VarId) -> Tensor {
        let shape = self.values[slot].shape();
        zeroed_from_pool(self.pool, shape)
    }

    /// Mutable gradient slot of the `i`-th parent, zero-initialised on
    /// first access.  View parents resolve to their **root** slot, so
    /// the buffer has the root's (dense) shape — stride-aware closures
    /// scatter into it through the view's layout.
    pub fn grad_mut(&mut self, i: usize) -> &mut Tensor {
        let pid = self.roots[self.parent_ids[i]];
        if self.grads[pid].is_none() {
            self.grads[pid] = Some(self.zeroed_like(pid));
        }
        self.grads[pid].as_mut().expect("just initialised")
    }

    /// Accumulate `c * delta` into the `i`-th parent gradient.
    pub fn accumulate_scaled(&mut self, i: usize, c: f32, delta: &Tensor) {
        self.grad_mut(i).axpy(c, delta);
    }

    /// Accumulate `delta` into the `i`-th parent gradient.
    pub fn accumulate(&mut self, i: usize, delta: &Tensor) {
        self.grad_mut(i).add_assign(delta);
    }

    /// Accumulate the upstream gradient into the `i`-th parent gradient
    /// (the pass-through of `add`-like ops), without cloning it.
    pub fn accumulate_grad_out(&mut self, i: usize) {
        let go = self.grad_out;
        self.grad_mut(i).add_assign(go);
    }

    /// Accumulate `c ·` upstream gradient into the `i`-th parent gradient.
    pub fn accumulate_grad_out_scaled(&mut self, i: usize, c: f32) {
        let go = self.grad_out;
        self.grad_mut(i).axpy(c, go);
    }

    /// Accumulate the upstream gradient elementwise, ignoring shape (the
    /// backward of `reshape`: same elements, different metadata).
    pub fn accumulate_grad_out_flat(&mut self, i: usize) {
        let go = self.grad_out;
        self.grad_mut(i).add_assign_flat(go);
    }

    /// Accumulate a multi-add contribution computed by `f` into the
    /// `i`-th parent gradient, preserving the historical accumulation
    /// order exactly.
    ///
    /// `f` receives a **zeroed** buffer of the parent's shape and must
    /// `+=` its full contribution into it (the `matmul_into`-family
    /// contract).  When the slot is fresh the buffer *becomes* the
    /// gradient; when a previous op already deposited a gradient, the
    /// contribution is computed separately and added tensor-wide — the
    /// same `grad += delta` rounding the compute-then-accumulate path
    /// produced, so kernels that add many products per element stay
    /// bitwise identical to the old two-pass code.
    pub fn accumulate_with(&mut self, i: usize, f: impl FnOnce(&mut [f32])) {
        let pid = self.roots[self.parent_ids[i]];
        let mut fresh = self.zeroed_like(pid);
        f(fresh.data_mut());
        match &mut self.grads[pid] {
            Some(live) => {
                live.add_assign(&fresh);
                self.pool.borrow_mut().put(fresh);
            }
            slot @ None => *slot = Some(fresh),
        }
    }
}

type BackFn = Box<dyn Fn(&mut BackwardCtx<'_>)>;

/// One recorded operation.  `tag` + `sig` + ids make the record safely
/// reusable across [`Graph::reset`] cycles: a replayed step must present
/// the same closure type (same callsite), the same node wiring and the
/// same operand shapes, which covers every shape-derived capture inside
/// `back`.  Data-dependent state lives in the payloads, refreshed each
/// step.
struct OpRecord {
    out: VarId,
    parents: Vec<VarId>,
    /// `TypeId` of the (unboxed) backward closure — unique per callsite.
    tag: TypeId,
    /// Len-prefixed dims of the output then each parent at record time.
    sig: Vec<usize>,
    /// Per-step index payload (gather indices, CE targets, argmaxes…).
    payload_idx: Vec<usize>,
    /// Per-step scalar payload (e.g. `mul_scalar`'s constant).
    payload_scalar: f32,
    back: BackFn,
}

/// Append `shape`, len-prefixed, to a signature vector.
fn sig_push(sig: &mut Vec<usize>, shape: &[usize]) {
    sig.push(shape.len());
    sig.extend_from_slice(shape);
}

/// Consume one len-prefixed shape from the front of `s`; true iff it
/// equals `shape`.  Allocation-free — replay hits must not touch the
/// allocator.
fn sig_eat(s: &mut &[usize], shape: &[usize]) -> bool {
    let Some((&nd, rest)) = s.split_first() else { return false };
    if nd != shape.len() || rest.len() < nd {
        return false;
    }
    let (dims, tail) = rest.split_at(nd);
    if dims != shape {
        return false;
    }
    *s = tail;
    true
}

#[derive(Default)]
struct GraphInner {
    values: Vec<Tensor>,
    grads: Vec<Option<Tensor>>,
    needs_grad: Vec<bool>,
    /// Gradient-slot owner per node (`roots[id] == id` except views).
    roots: Vec<VarId>,
    ops: Vec<OpRecord>,
    /// Ops of `ops` validated (replayed or recorded) this step; the
    /// replay cursor.  Only `ops[..ops_live]` may run in backward.
    ops_live: usize,
    /// Whether `push_op` is currently matching against retained records.
    replaying: bool,
}

impl GraphInner {
    /// Whether `ops[ops_live]` matches the op about to be pushed.
    fn replay_matches<'p>(
        &self,
        out_id: VarId,
        tag: TypeId,
        parents: impl ExactSizeIterator<Item = &'p VarId>,
        out_shape: &[usize],
    ) -> bool {
        let Some(rec) = self.ops.get(self.ops_live) else { return false };
        if rec.out != out_id || rec.tag != tag || rec.parents.len() != parents.len() {
            return false;
        }
        let mut sig = rec.sig.as_slice();
        if !sig_eat(&mut sig, out_shape) {
            return false;
        }
        for (&have, &want) in rec.parents.iter().zip(parents) {
            if have != want || !sig_eat(&mut sig, self.values[have].shape()) {
                return false;
            }
        }
        sig.is_empty()
    }
}

/// A computation tape.
///
/// One graph serves either a single forward/backward pass (drop it to
/// release all intermediates) or — via [`Graph::reset`] — a whole
/// training run, recycling its node and gradient buffers across steps.
/// Interior mutability keeps the builder API ergonomic (`Var` is `Copy`
/// and methods take `self` by value).
#[derive(Default)]
pub struct Graph {
    inner: RefCell<GraphInner>,
    pool: RefCell<Pool>,
}

/// Pop a pooled buffer of the right size and zero it, or allocate fresh.
fn zeroed_from_pool(pool: &RefCell<Pool>, shape: &[usize]) -> Tensor {
    let n = numel(shape);
    match pool.borrow_mut().take(n) {
        Some(mut arc) => {
            Arc::get_mut(&mut arc)
                .expect("pooled buffers are uniquely owned")
                .iter_mut()
                .for_each(|x| *x = 0.0);
            Tensor::from_shared(arc, shape)
        }
        None => Tensor::zeros(shape),
    }
}

impl Graph {
    /// An empty tape.
    pub fn new() -> Self {
        Self::default()
    }

    /// Retire every node value and gradient into the buffer pool and
    /// clear the node tape, keeping all allocations for the next step —
    /// **including the op records**, which the next step replays instead
    /// of re-recording (see the module docs).
    ///
    /// All `Var` handles created before the reset are invalidated (using
    /// one panics).  Call between training steps of identical shape; the
    /// subsequent forward pass then runs allocation-free and box-free.
    pub fn reset(&self) {
        let mut inner = self.inner.borrow_mut();
        let mut pool = self.pool.borrow_mut();
        for t in inner.values.drain(..) {
            pool.put(t);
        }
        for t in inner.grads.drain(..).flatten() {
            pool.put(t);
        }
        inner.needs_grad.clear();
        inner.roots.clear();
        inner.ops_live = 0;
        inner.replaying = !inner.ops.is_empty();
    }

    /// An output buffer for an op producing `shape`: recycled from the
    /// pool when a retired buffer of the same element count exists
    /// (contents then **unspecified** — the op must overwrite every
    /// element), freshly zero-allocated otherwise.
    pub fn alloc_out(&self, shape: &[usize]) -> Tensor {
        match self.pool.borrow_mut().take(numel(shape)) {
            Some(data) => Tensor::from_shared(data, shape),
            None => Tensor::zeros(shape),
        }
    }

    /// Like [`Graph::alloc_out`] but guaranteed zero-filled — for ops that
    /// accumulate into their output (`out += …` kernels).
    pub fn alloc_zeroed(&self, shape: &[usize]) -> Tensor {
        zeroed_from_pool(&self.pool, shape)
    }

    /// Insert a leaf value.  `needs_grad` leaves receive gradients during
    /// [`Graph::backward`]; constants do not.
    pub fn var(&self, value: Tensor, needs_grad: bool) -> Var<'_> {
        let mut inner = self.inner.borrow_mut();
        let id = inner.values.len();
        inner.values.push(value);
        inner.grads.push(None);
        inner.needs_grad.push(needs_grad);
        inner.roots.push(id);
        Var { graph: self, id }
    }

    /// Register a zero-copy view of `parent` as a new node **without an
    /// op record**.  The view shares the parent's gradient slot (its
    /// root's, for chained views): backward closures consuming this node
    /// receive a root-shaped gradient buffer from
    /// [`BackwardCtx::grad_mut`] / `accumulate_with` and scatter through
    /// the view's layout, which preserves the accumulation order of the
    /// old materialise-then-scatter path exactly.
    ///
    /// `value` must be a view (or zero-copy reshape) over the parent's
    /// storage; this is the caller's contract, not checked here.
    pub fn view_node(&self, parent: Var<'_>, value: Tensor) -> Var<'_> {
        assert!(std::ptr::eq(parent.graph, self), "Var from a different Graph");
        let mut inner = self.inner.borrow_mut();
        assert!(parent.id < inner.values.len(), "unknown parent var id {}", parent.id);
        let id = inner.values.len();
        let root = inner.roots[parent.id];
        let needs = inner.needs_grad[parent.id];
        inner.values.push(value);
        inner.grads.push(None);
        inner.needs_grad.push(needs);
        inner.roots.push(root);
        Var { graph: self, id }
    }

    /// Insert a leaf copied from `value` into a pooled buffer — the
    /// allocation-free way to bind parameters each step.
    pub fn var_from(&self, value: &Tensor, needs_grad: bool) -> Var<'_> {
        let mut buf = self.alloc_out(value.shape());
        buf.data_mut().copy_from_slice(value.data());
        self.var(buf, needs_grad)
    }

    /// Insert a constant leaf (no gradient).
    pub fn constant(&self, value: Tensor) -> Var<'_> {
        self.var(value, false)
    }

    /// Number of nodes on the tape.
    pub fn num_nodes(&self) -> usize {
        self.inner.borrow().values.len()
    }

    /// Core op-registration primitive used by every operation.
    ///
    /// `back` receives a [`BackwardCtx`]; it must add this op's contribution
    /// to each parent gradient.  The op record is skipped entirely when no
    /// parent requires gradients.
    ///
    /// After a [`Graph::reset`], matching records are **replayed**: the
    /// freshly-built `back` is dropped without boxing and the retained
    /// record runs instead.  Closures whose captures are data-dependent
    /// (not derivable from operand shapes) must pass that data through
    /// [`Graph::push_op_indexed`] / [`Graph::push_op_scaled`] and read it
    /// back via [`BackwardCtx::payload_idx`] / `payload_scalar`.
    pub fn push_op(
        &self,
        parents: &[Var<'_>],
        value: Tensor,
        back: impl Fn(&mut BackwardCtx<'_>) + 'static,
    ) -> Var<'_> {
        self.push_op_impl(parents, value, None, 0.0, back)
    }

    /// [`Graph::push_op`] with a per-step index payload (gather indices,
    /// targets, argmaxes): on replay the payload is refreshed in place
    /// while the boxed closure is reused.
    pub fn push_op_indexed(
        &self,
        parents: &[Var<'_>],
        value: Tensor,
        payload_idx: &[usize],
        back: impl Fn(&mut BackwardCtx<'_>) + 'static,
    ) -> Var<'_> {
        self.push_op_impl(parents, value, Some(payload_idx), 0.0, back)
    }

    /// [`Graph::push_op`] with a per-step scalar payload.
    pub fn push_op_scaled(
        &self,
        parents: &[Var<'_>],
        value: Tensor,
        payload_scalar: f32,
        back: impl Fn(&mut BackwardCtx<'_>) + 'static,
    ) -> Var<'_> {
        self.push_op_impl(parents, value, None, payload_scalar, back)
    }

    fn push_op_impl<F>(
        &self,
        parents: &[Var<'_>],
        value: Tensor,
        payload_idx: Option<&[usize]>,
        payload_scalar: f32,
        back: F,
    ) -> Var<'_>
    where
        F: Fn(&mut BackwardCtx<'_>) + 'static,
    {
        let mut inner = self.inner.borrow_mut();
        let inner = &mut *inner;
        for p in parents {
            assert!(std::ptr::eq(p.graph, self), "Var from a different Graph");
            assert!(p.id < inner.values.len(), "unknown parent var id {}", p.id);
        }
        let needs = parents.iter().any(|p| inner.needs_grad[p.id]);
        let id = inner.values.len();
        if needs {
            let tag = TypeId::of::<F>();
            let mut hit = false;
            if inner.replaying {
                if inner.replay_matches(id, tag, parents.iter().map(|p| &p.id), value.shape()) {
                    let rec = &mut inner.ops[inner.ops_live];
                    rec.payload_scalar = payload_scalar;
                    rec.payload_idx.clear();
                    if let Some(idx) = payload_idx {
                        rec.payload_idx.extend_from_slice(idx);
                    }
                    inner.ops_live += 1;
                    hit = true;
                    // `back` drops here, unboxed — the whole point.
                } else {
                    // The program diverged from the recording (shape
                    // change, different branch): drop the stale suffix
                    // and record from here on.
                    inner.ops.truncate(inner.ops_live);
                    inner.replaying = false;
                }
            }
            if !hit {
                let mut sig = Vec::with_capacity((parents.len() + 1) * 4);
                sig_push(&mut sig, value.shape());
                for p in parents {
                    sig_push(&mut sig, inner.values[p.id].shape());
                }
                inner.ops.push(OpRecord {
                    out: id,
                    parents: parents.iter().map(|p| p.id).collect(),
                    tag,
                    sig,
                    payload_idx: payload_idx.map(<[usize]>::to_vec).unwrap_or_default(),
                    payload_scalar,
                    back: Box::new(back),
                });
                inner.ops_live += 1;
            }
        }
        inner.values.push(value);
        inner.grads.push(None);
        inner.needs_grad.push(needs);
        inner.roots.push(id);
        Var { graph: self, id }
    }

    /// Public alias of [`Graph::push_op`] for defining operations outside
    /// this crate (used by `irs_nn` for the PIM attention mask).
    pub fn custom_op(
        &self,
        parents: &[Var<'_>],
        value: Tensor,
        back: impl Fn(&mut BackwardCtx<'_>) + 'static,
    ) -> Var<'_> {
        self.push_op(parents, value, back)
    }

    /// Run reverse-mode differentiation from `loss` (must be scalar).
    ///
    /// Gradients of all `needs_grad` leaves reachable from `loss` are
    /// afterwards available via [`Graph::grad`].  Backward may be called
    /// once per graph (once per [`Graph::reset`] cycle).
    pub fn backward(&self, loss: Var<'_>) {
        assert!(std::ptr::eq(loss.graph, self), "loss Var from a different Graph");
        let mut inner = self.inner.borrow_mut();
        let inner = &mut *inner;
        assert_eq!(
            inner.values[loss.id].len(),
            1,
            "backward requires a scalar loss, got shape {:?}",
            inner.values[loss.id].shape()
        );
        let mut seed = zeroed_from_pool(&self.pool, &[1]);
        seed.data_mut()[0] = 1.0;
        inner.grads[loss.id] = Some(seed);
        // Only records validated this step may run.  When this step's
        // program was a strict prefix of the recording, the stale tail
        // references nodes that no longer exist — drop it (it re-records
        // if a longer program returns).
        let live = inner.ops_live;
        inner.ops.truncate(live);
        for op in inner.ops.iter().rev() {
            // Split so the output gradient can be read while parent slots
            // are written; parents always precede their output on the tape.
            let (before, after) = inner.grads.split_at_mut(op.out);
            let grad_out = match &after[0] {
                Some(g) => g,
                None => continue, // node does not influence the loss
            };
            let mut ctx = BackwardCtx {
                parent_ids: &op.parents,
                values: &inner.values,
                needs_grad: &inner.needs_grad,
                roots: &inner.roots,
                out_id: op.out,
                grad_out,
                grads: before,
                pool: &self.pool,
                payload_idx: &op.payload_idx,
                payload_scalar: op.payload_scalar,
            };
            (op.back)(&mut ctx);
        }
    }

    /// Gradient accumulated at `var` (None if it never received one).
    /// For a view node this is the gradient of its root (root-shaped).
    pub fn grad(&self, var: Var<'_>) -> Option<Tensor> {
        let inner = self.inner.borrow();
        inner.grads[inner.roots[var.id]].clone()
    }

    /// Run `f` with a borrow of the gradient at `var` (avoids a clone);
    /// `None` when no gradient was accumulated.
    pub fn with_grad<R>(&self, var: Var<'_>, f: impl FnOnce(&Tensor) -> R) -> Option<R> {
        let inner = self.inner.borrow();
        inner.grads[inner.roots[var.id]].as_ref().map(f)
    }

    /// Clone of the value stored at `var`.
    pub fn value(&self, var: Var<'_>) -> Tensor {
        self.inner.borrow().values[var.id].clone()
    }

    /// Run `f` with a borrow of the value at `var` (avoids a clone).
    pub fn with_value<R>(&self, var: Var<'_>, f: impl FnOnce(&Tensor) -> R) -> R {
        f(&self.inner.borrow().values[var.id])
    }
}

/// Handle to a node in a [`Graph`].  Cheap to copy; all tensor operations
/// are methods on `Var` (see the `ops`, `nnops` and `shapeops` modules).
#[derive(Clone, Copy)]
pub struct Var<'g> {
    pub(crate) graph: &'g Graph,
    pub(crate) id: VarId,
}

impl<'g> Var<'g> {
    /// The owning graph.
    pub fn graph(&self) -> &'g Graph {
        self.graph
    }

    /// Tape id of this node.
    pub fn id(&self) -> VarId {
        self.id
    }

    /// Clone of the node value.
    pub fn value(&self) -> Tensor {
        self.graph.value(*self)
    }

    /// Shape of the node value.
    pub fn shape(&self) -> Vec<usize> {
        self.graph.with_value(*self, |t| t.shape().to_vec())
    }

    /// Scalar value of a 1-element node.
    pub fn item(&self) -> f32 {
        self.graph.with_value(*self, |t| t.item())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backward_through_mul_and_sum() {
        let g = Graph::new();
        let x = g.var(Tensor::from_vec(vec![1.0, -2.0, 3.0], &[3]), true);
        let y = x.mul(x).sum_all();
        assert!((y.item() - 14.0).abs() < 1e-6);
        g.backward(y);
        let dx = g.grad(x).unwrap();
        assert_eq!(dx.data(), &[2.0, -4.0, 6.0]);
    }

    #[test]
    fn constants_receive_no_gradient() {
        let g = Graph::new();
        let x = g.var(Tensor::scalar(2.0), true);
        let c = g.constant(Tensor::scalar(3.0));
        let y = x.mul(c).sum_all();
        g.backward(y);
        assert_eq!(g.grad(x).unwrap().item(), 3.0);
        // The op was recorded because x needs a gradient; c's slot is not
        // part of the contract, but x's gradient must be exact.
    }

    #[test]
    fn gradient_accumulates_across_multiple_uses() {
        let g = Graph::new();
        let x = g.var(Tensor::scalar(3.0), true);
        // y = x*x + x  => dy/dx = 2x + 1 = 7
        let y = x.mul(x).add(x).sum_all();
        g.backward(y);
        assert_eq!(g.grad(x).unwrap().item(), 7.0);
    }

    #[test]
    fn unused_branches_do_not_contribute() {
        let g = Graph::new();
        let x = g.var(Tensor::scalar(3.0), true);
        let _dead = x.mul(x); // never reaches the loss
        let y = x.add_scalar(1.0).sum_all();
        g.backward(y);
        assert_eq!(g.grad(x).unwrap().item(), 1.0);
    }

    #[test]
    #[should_panic(expected = "scalar loss")]
    fn backward_rejects_non_scalar_loss() {
        let g = Graph::new();
        let x = g.var(Tensor::zeros(&[2]), true);
        let y = x.add_scalar(1.0);
        g.backward(y);
    }

    #[test]
    fn ops_on_pure_constants_are_not_recorded() {
        let g = Graph::new();
        let a = g.constant(Tensor::scalar(1.0));
        let b = g.constant(Tensor::scalar(2.0));
        let _ = a.add(b);
        assert_eq!(g.inner.borrow().ops.len(), 0);
    }

    #[test]
    fn custom_op_backward_is_invoked() {
        let g = Graph::new();
        let x = g.var(Tensor::from_vec(vec![2.0, 3.0], &[2]), true);
        // out = 5 * x, custom implementation.
        let val = g.value(x).scale(5.0);
        let y = g.custom_op(&[x], val, |ctx| {
            ctx.accumulate_grad_out_scaled(0, 5.0);
        });
        let loss = y.sum_all();
        g.backward(loss);
        assert_eq!(g.grad(x).unwrap().data(), &[5.0, 5.0]);
    }

    #[test]
    fn reset_recycles_buffers_and_preserves_results() {
        // The same computation, once on a fresh graph and once on a graph
        // that has been through a reset cycle, must agree bitwise — and
        // the second pass must draw its buffers from the pool.
        let g = Graph::new();
        let run = |g: &Graph| {
            let x = g.var(Tensor::from_vec(vec![0.5, -1.5, 2.5, 3.5], &[2, 2]), true);
            let w = g.var(Tensor::from_vec(vec![1.0, 2.0, -0.5, 0.25], &[2, 2]), true);
            let y = x.matmul(w).relu().sum_all();
            g.backward(y);
            (y.item(), g.grad(x).unwrap(), g.grad(w).unwrap())
        };
        let (l1, dx1, dw1) = run(&g);
        let nodes = g.num_nodes();
        g.reset();
        assert_eq!(g.num_nodes(), 0);
        let (l2, dx2, dw2) = run(&g);
        assert_eq!(g.num_nodes(), nodes);
        assert_eq!(l1.to_bits(), l2.to_bits());
        assert_eq!(dx1.data(), dx2.data());
        assert_eq!(dw1.data(), dw2.data());

        let fresh = Graph::new();
        let (l3, dx3, dw3) = run(&fresh);
        assert_eq!(l1.to_bits(), l3.to_bits());
        assert_eq!(dx1.data(), dx3.data());
        assert_eq!(dw1.data(), dw3.data());
    }

    #[test]
    fn alloc_out_reuses_retired_buffers() {
        let g = Graph::new();
        let _ = g.var(Tensor::full(&[4, 4], 7.0), false);
        g.reset();
        // The retired 16-element buffer must come back from the pool
        // (contents stale), and alloc_zeroed must scrub it.
        let t = g.alloc_out(&[2, 8]);
        assert_eq!(t.len(), 16);
        let _ = g.var(t, false);
        g.reset();
        let t2 = g.alloc_zeroed(&[16]);
        assert!(t2.data().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn replay_reuses_recorded_closures_without_reboxing() {
        use std::cell::Cell;
        use std::rc::Rc;
        // The closure recorded on step 1 must be the one that runs on
        // step 2: each step passes a closure capturing its own counter,
        // and only the first step's counter may tick.
        let g = Graph::new();
        let calls_a = Rc::new(Cell::new(0));
        let calls_b = Rc::new(Cell::new(0));
        let step = |g: &Graph, calls: Rc<Cell<u32>>| {
            let x = g.var(Tensor::from_vec(vec![1.0, 2.0], &[2]), true);
            let y = g.push_op(&[x], g.value(x).scale(2.0), move |ctx| {
                calls.set(calls.get() + 1);
                ctx.accumulate_grad_out_scaled(0, 2.0);
            });
            g.backward(y.sum_all());
            g.grad(x).unwrap()
        };
        let d1 = step(&g, calls_a.clone());
        assert_eq!((calls_a.get(), calls_b.get()), (1, 0));
        let ops_after_record = g.inner.borrow().ops.len();
        g.reset();
        let d2 = step(&g, calls_b.clone());
        // Same callsite closure type, same wiring, same shapes: replayed.
        assert_eq!((calls_a.get(), calls_b.get()), (2, 0));
        assert_eq!(g.inner.borrow().ops.len(), ops_after_record);
        assert_eq!(d1.data(), d2.data());
    }

    #[test]
    fn replay_refreshes_index_and_scalar_payloads() {
        // Payload-carrying ops must read the *current* step's data on
        // replay, not their record-time captures.
        let g = Graph::new();
        let step = |g: &Graph, idx: &[usize], c: f32| {
            let x = g.var(Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]), true);
            // out[j] = x[idx[j]]
            let picked = Tensor::from_fn(&[2], |j| g.with_value(x, |t| t.data()[idx[j]]));
            let y = g.push_op_indexed(&[x], picked, idx, |ctx| {
                let go = ctx.grad_out().data().to_vec();
                let idx = ctx.payload_idx().to_vec();
                let gx = ctx.grad_mut(0);
                for (j, &i) in idx.iter().enumerate() {
                    gx.data_mut()[i] += go[j];
                }
            });
            // Smuggle the scalar through a second payload op so both
            // payload kinds are exercised.
            let y = g.push_op_scaled(&[y], y.value().scale(c), c, |ctx| {
                let c = ctx.payload_scalar();
                ctx.accumulate_grad_out_scaled(0, c);
            });
            g.backward(y.sum_all());
            g.grad(x).unwrap()
        };
        let d1 = step(&g, &[0, 1], 2.0);
        assert_eq!(d1.data(), &[2.0, 2.0, 0.0]);
        g.reset();
        // Same shapes and callsites (replay hits), different payloads.
        let d2 = step(&g, &[2, 2], 3.0);
        assert_eq!(d2.data(), &[0.0, 0.0, 6.0]);
    }

    #[test]
    fn replay_falls_back_to_recording_on_shape_change() {
        let g = Graph::new();
        let step = |g: &Graph, n: usize| {
            let x = g.var(Tensor::full(&[n], 2.0), true);
            let y = x.mul(x).sum_all();
            g.backward(y);
            g.grad(x).unwrap()
        };
        let d2 = step(&g, 2);
        g.reset();
        let d3 = step(&g, 3); // shape diverges at the first op: re-record
        assert_eq!(d2.data(), &[4.0, 4.0]);
        assert_eq!(d3.data(), &[4.0, 4.0, 4.0]);
        g.reset();
        let d3b = step(&g, 3); // and the new recording replays
        assert_eq!(d3b.data(), d3.data());
    }

    #[test]
    fn replayed_steps_are_bitwise_identical_across_many_resets() {
        let g = Graph::new();
        let run = |g: &Graph| {
            let x = g.var(Tensor::from_vec(vec![0.5, -1.5, 2.5, 3.5], &[2, 2]), true);
            let w = g.var(Tensor::from_vec(vec![1.0, 2.0, -0.5, 0.25], &[2, 2]), true);
            let y = x.matmul(w).relu().mul_scalar(0.5).sum_all();
            g.backward(y);
            (y.item(), g.grad(x).unwrap(), g.grad(w).unwrap())
        };
        let (l1, dx1, dw1) = run(&g);
        for _ in 0..4 {
            g.reset();
            let (l, dx, dw) = run(&g);
            assert_eq!(l1.to_bits(), l.to_bits());
            assert_eq!(dx1.data(), dx.data());
            assert_eq!(dw1.data(), dw.data());
        }
    }

    #[test]
    fn view_nodes_share_the_root_gradient_slot() {
        let g = Graph::new();
        let x = g.var(Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]), true);
        let xt = g.view_node(x, g.value(x).transpose2d_view());
        assert_eq!(xt.shape(), &[3, 2]);
        // Consume the view: loss = Σ_ij t[i,j] * (i*2+j+1)
        let w = Tensor::from_fn(&[3, 2], |i| (i + 1) as f32);
        let y = g.push_op(&[xt], g.constant(w.clone()).value().scale(0.0), move |ctx| {
            // d loss / d view[i,j] = w[i,j]; scatter through the view's
            // transposed addressing into the root-shaped buffer.
            let gx = ctx.grad_mut(0);
            assert_eq!(gx.shape(), &[2, 3]); // root shape, not view shape
            for i in 0..3 {
                for j in 0..2 {
                    gx.data_mut()[j * 3 + i] += (i * 2 + j + 1) as f32;
                }
            }
        });
        let w2 = g.constant(w);
        let _ = w2; // w participates only through the closure above
        g.backward(y.sum_all());
        let dx = g.grad(x).unwrap();
        // grad(view) resolves to the same root slot.
        assert_eq!(g.grad(xt).unwrap().data(), dx.data());
        assert_eq!(dx.data(), &[1.0, 3.0, 5.0, 2.0, 4.0, 6.0]);
    }

    #[test]
    fn view_storage_is_pooled_once_after_reset() {
        let g = Graph::new();
        let x = g.var(Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]), false);
        let base_ptr = g.with_value(x, |t| t.storage().as_ptr());
        let _view = g.view_node(x, g.value(x).transpose2d_view());
        g.reset();
        // Shared storage retires exactly once; the next 4-element node
        // gets the recycled buffer, and the pool is then empty.
        let t = g.alloc_out(&[4]);
        assert_eq!(t.storage().as_ptr(), base_ptr);
        assert!(g.pool.borrow_mut().take(4).is_none());
    }

    #[test]
    fn accumulate_with_matches_two_pass_accumulation() {
        // Fresh slot: contribution becomes the gradient. Live slot: the
        // contribution is computed apart and added whole, like the old
        // compute-then-add path.
        let g = Graph::new();
        let x = g.var(Tensor::from_vec(vec![1.0, 2.0], &[2]), true);
        let y = g.custom_op(&[x, x], g.value(x).scale(2.0), |ctx| {
            ctx.accumulate_with(0, |out| {
                for o in out.iter_mut() {
                    *o += 2.0;
                }
            });
            ctx.accumulate_with(1, |out| {
                for o in out.iter_mut() {
                    *o += 3.0;
                }
            });
        });
        g.backward(y.sum_all());
        assert_eq!(g.grad(x).unwrap().data(), &[5.0, 5.0]);
    }

    #[test]
    fn replayed_records_run_allocation_free_from_the_pool() {
        // Steady-state contract: once the recording step's working set
        // has retired into the pool, a replayed step — including
        // payload-carrying records (gather, mul_scalar) and
        // view-consuming kernels (split-head NT matmul) — must draw
        // every value and gradient buffer from the pool.  The set of
        // storage pointers cannot grow after step one.
        let g = Graph::new();
        let table = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[3, 2]);
        let step = |g: &Graph, idx: &[usize], c: f32| {
            let x = g.var_from(&table, true);
            let e = x.gather_rows(idx).mul_scalar(c);
            let q = e.reshape(&[2, 2, 2]).split_heads_view(2);
            let s = q.bmm_nt(q);
            g.backward(s.sum_all());
            let inner = g.inner.borrow();
            let mut ptrs: Vec<usize> =
                inner.values.iter().map(|t| t.storage().as_ptr() as usize).collect();
            ptrs.extend(inner.grads.iter().flatten().map(|t| t.storage().as_ptr() as usize));
            ptrs
        };
        let first = step(&g, &[0, 2, 1, 1], 2.0);
        g.reset();
        // Different payloads, same plan: a replay hit end to end.
        let second = step(&g, &[2, 0, 0, 1], 3.0);
        for p in &second {
            assert!(
                first.contains(p),
                "replayed step allocated a fresh buffer instead of reusing the pool"
            );
        }
    }
}
