//! Tape-based reverse-mode automatic differentiation.
//!
//! A [`Graph`] records every value produced during a forward pass together
//! with a backward closure per operation.  [`Var`] is a `Copy` handle
//! (graph reference + node id) used to compose operations; the actual op
//! implementations live in the sibling `ops`, `nnops` and `shapeops`
//! modules, all funnelling through [`Graph::push_op`].
//!
//! Custom operations (e.g. the IRN Personalized Impressionability Mask in
//! `irs_nn`) can be defined outside this crate via [`Graph::custom_op`].

use std::cell::RefCell;

use crate::tensor::Tensor;

/// Identifier of a node inside a [`Graph`].
pub type VarId = usize;

/// Backward context handed to every backward closure.
///
/// Provides read access to parent values and the upstream gradient, and
/// lazily-initialised mutable access to parent gradients.
pub struct BackwardCtx<'a> {
    parent_ids: &'a [VarId],
    values: &'a [Tensor],
    out_id: VarId,
    grad_out: &'a Tensor,
    /// Gradient slots for ids `0..out_id` (parents are always earlier).
    grads: &'a mut [Option<Tensor>],
}

impl<'a> BackwardCtx<'a> {
    /// Value of the `i`-th parent.
    pub fn value(&self, i: usize) -> &Tensor {
        &self.values[self.parent_ids[i]]
    }

    /// Value of the op output.
    pub fn out_value(&self) -> &Tensor {
        &self.values[self.out_id]
    }

    /// Gradient flowing into the op output.
    pub fn grad_out(&self) -> &Tensor {
        self.grad_out
    }

    /// Number of parents.
    pub fn num_parents(&self) -> usize {
        self.parent_ids.len()
    }

    /// Mutable gradient slot of the `i`-th parent, zero-initialised on first
    /// access with the parent's shape.
    pub fn grad_mut(&mut self, i: usize) -> &mut Tensor {
        let pid = self.parent_ids[i];
        let shape = self.values[pid].shape().to_vec();
        self.grads[pid].get_or_insert_with(|| Tensor::zeros(&shape))
    }

    /// Accumulate `c * delta` into the `i`-th parent gradient.
    pub fn accumulate_scaled(&mut self, i: usize, c: f32, delta: &Tensor) {
        self.grad_mut(i).axpy(c, delta);
    }

    /// Accumulate `delta` into the `i`-th parent gradient.
    pub fn accumulate(&mut self, i: usize, delta: &Tensor) {
        self.grad_mut(i).add_assign(delta);
    }
}

type BackFn = Box<dyn Fn(&mut BackwardCtx<'_>)>;

struct OpRecord {
    out: VarId,
    parents: Vec<VarId>,
    back: BackFn,
}

#[derive(Default)]
struct GraphInner {
    values: Vec<Tensor>,
    grads: Vec<Option<Tensor>>,
    needs_grad: Vec<bool>,
    ops: Vec<OpRecord>,
}

/// A computation tape.
///
/// A fresh graph is created per forward/backward pass; dropping it releases
/// all intermediates.  Interior mutability keeps the builder API ergonomic
/// (`Var` is `Copy` and methods take `self` by value).
#[derive(Default)]
pub struct Graph {
    inner: RefCell<GraphInner>,
}

impl Graph {
    /// An empty tape.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert a leaf value.  `needs_grad` leaves receive gradients during
    /// [`Graph::backward`]; constants do not.
    pub fn var(&self, value: Tensor, needs_grad: bool) -> Var<'_> {
        let mut inner = self.inner.borrow_mut();
        let id = inner.values.len();
        inner.values.push(value);
        inner.grads.push(None);
        inner.needs_grad.push(needs_grad);
        Var { graph: self, id }
    }

    /// Insert a constant leaf (no gradient).
    pub fn constant(&self, value: Tensor) -> Var<'_> {
        self.var(value, false)
    }

    /// Number of nodes on the tape.
    pub fn num_nodes(&self) -> usize {
        self.inner.borrow().values.len()
    }

    /// Core op-registration primitive used by every operation.
    ///
    /// `back` receives a [`BackwardCtx`]; it must add this op's contribution
    /// to each parent gradient.  The op record is skipped entirely when no
    /// parent requires gradients.
    pub fn push_op(
        &self,
        parents: &[Var<'_>],
        value: Tensor,
        back: impl Fn(&mut BackwardCtx<'_>) + 'static,
    ) -> Var<'_> {
        let parent_ids: Vec<VarId> = parents.iter().map(|p| p.id).collect();
        let mut inner = self.inner.borrow_mut();
        for (p, v) in parents.iter().zip(&parent_ids) {
            assert!(std::ptr::eq(p.graph, self), "Var from a different Graph");
            assert!(*v < inner.values.len(), "unknown parent var id {v}");
        }
        let needs = parent_ids.iter().any(|&p| inner.needs_grad[p]);
        let id = inner.values.len();
        inner.values.push(value);
        inner.grads.push(None);
        inner.needs_grad.push(needs);
        if needs {
            inner.ops.push(OpRecord { out: id, parents: parent_ids, back: Box::new(back) });
        }
        Var { graph: self, id }
    }

    /// Public alias of [`Graph::push_op`] for defining operations outside
    /// this crate (used by `irs_nn` for the PIM attention mask).
    pub fn custom_op(
        &self,
        parents: &[Var<'_>],
        value: Tensor,
        back: impl Fn(&mut BackwardCtx<'_>) + 'static,
    ) -> Var<'_> {
        self.push_op(parents, value, back)
    }

    /// Run reverse-mode differentiation from `loss` (must be scalar).
    ///
    /// Gradients of all `needs_grad` leaves reachable from `loss` are
    /// afterwards available via [`Graph::grad`].  Backward may be called
    /// once per graph.
    pub fn backward(&self, loss: Var<'_>) {
        assert!(std::ptr::eq(loss.graph, self), "loss Var from a different Graph");
        let mut inner = self.inner.borrow_mut();
        let inner = &mut *inner;
        assert_eq!(
            inner.values[loss.id].len(),
            1,
            "backward requires a scalar loss, got shape {:?}",
            inner.values[loss.id].shape()
        );
        inner.grads[loss.id] = Some(Tensor::scalar(1.0));
        for op in inner.ops.iter().rev() {
            // Split so the output gradient can be read while parent slots
            // are written; parents always precede their output on the tape.
            let (before, after) = inner.grads.split_at_mut(op.out);
            let grad_out = match &after[0] {
                Some(g) => g,
                None => continue, // node does not influence the loss
            };
            let mut ctx = BackwardCtx {
                parent_ids: &op.parents,
                values: &inner.values,
                out_id: op.out,
                grad_out,
                grads: before,
            };
            (op.back)(&mut ctx);
        }
    }

    /// Gradient accumulated at `var` (None if it never received one).
    pub fn grad(&self, var: Var<'_>) -> Option<Tensor> {
        self.inner.borrow().grads[var.id].clone()
    }

    /// Clone of the value stored at `var`.
    pub fn value(&self, var: Var<'_>) -> Tensor {
        self.inner.borrow().values[var.id].clone()
    }

    /// Run `f` with a borrow of the value at `var` (avoids a clone).
    pub fn with_value<R>(&self, var: Var<'_>, f: impl FnOnce(&Tensor) -> R) -> R {
        f(&self.inner.borrow().values[var.id])
    }
}

/// Handle to a node in a [`Graph`].  Cheap to copy; all tensor operations
/// are methods on `Var` (see the `ops`, `nnops` and `shapeops` modules).
#[derive(Clone, Copy)]
pub struct Var<'g> {
    pub(crate) graph: &'g Graph,
    pub(crate) id: VarId,
}

impl<'g> Var<'g> {
    /// The owning graph.
    pub fn graph(&self) -> &'g Graph {
        self.graph
    }

    /// Tape id of this node.
    pub fn id(&self) -> VarId {
        self.id
    }

    /// Clone of the node value.
    pub fn value(&self) -> Tensor {
        self.graph.value(*self)
    }

    /// Shape of the node value.
    pub fn shape(&self) -> Vec<usize> {
        self.graph.with_value(*self, |t| t.shape().to_vec())
    }

    /// Scalar value of a 1-element node.
    pub fn item(&self) -> f32 {
        self.graph.with_value(*self, |t| t.item())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backward_through_mul_and_sum() {
        let g = Graph::new();
        let x = g.var(Tensor::from_vec(vec![1.0, -2.0, 3.0], &[3]), true);
        let y = x.mul(x).sum_all();
        assert!((y.item() - 14.0).abs() < 1e-6);
        g.backward(y);
        let dx = g.grad(x).unwrap();
        assert_eq!(dx.data(), &[2.0, -4.0, 6.0]);
    }

    #[test]
    fn constants_receive_no_gradient() {
        let g = Graph::new();
        let x = g.var(Tensor::scalar(2.0), true);
        let c = g.constant(Tensor::scalar(3.0));
        let y = x.mul(c).sum_all();
        g.backward(y);
        assert_eq!(g.grad(x).unwrap().item(), 3.0);
        // Constant slot may hold a gradient internally but the leaf was
        // declared needs_grad=false so the op was recorded only because x
        // needs it; reading c's grad is not part of the contract, but x's
        // gradient must be exact.
    }

    #[test]
    fn gradient_accumulates_across_multiple_uses() {
        let g = Graph::new();
        let x = g.var(Tensor::scalar(3.0), true);
        // y = x*x + x  => dy/dx = 2x + 1 = 7
        let y = x.mul(x).add(x).sum_all();
        g.backward(y);
        assert_eq!(g.grad(x).unwrap().item(), 7.0);
    }

    #[test]
    fn unused_branches_do_not_contribute() {
        let g = Graph::new();
        let x = g.var(Tensor::scalar(3.0), true);
        let _dead = x.mul(x); // never reaches the loss
        let y = x.add_scalar(1.0).sum_all();
        g.backward(y);
        assert_eq!(g.grad(x).unwrap().item(), 1.0);
    }

    #[test]
    #[should_panic(expected = "scalar loss")]
    fn backward_rejects_non_scalar_loss() {
        let g = Graph::new();
        let x = g.var(Tensor::zeros(&[2]), true);
        let y = x.add_scalar(1.0);
        g.backward(y);
    }

    #[test]
    fn ops_on_pure_constants_are_not_recorded() {
        let g = Graph::new();
        let a = g.constant(Tensor::scalar(1.0));
        let b = g.constant(Tensor::scalar(2.0));
        let _ = a.add(b);
        assert_eq!(g.inner.borrow().ops.len(), 0);
    }

    #[test]
    fn custom_op_backward_is_invoked() {
        let g = Graph::new();
        let x = g.var(Tensor::from_vec(vec![2.0, 3.0], &[2]), true);
        // out = 5 * x, custom implementation.
        let val = g.value(x).scale(5.0);
        let y = g.custom_op(&[x], val, |ctx| {
            let go = ctx.grad_out().clone();
            ctx.accumulate_scaled(0, 5.0, &go);
        });
        let loss = y.sum_all();
        g.backward(loss);
        assert_eq!(g.grad(x).unwrap().data(), &[5.0, 5.0]);
    }
}
