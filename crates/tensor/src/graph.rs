//! Tape-based reverse-mode automatic differentiation with a
//! workspace-reusing arena.
//!
//! A [`Graph`] records every value produced during a forward pass together
//! with a backward closure per operation.  [`Var`] is a `Copy` handle
//! (graph reference + node id) used to compose operations; the actual op
//! implementations live in the sibling `ops`, `nnops` and `shapeops`
//! modules, all funnelling through [`Graph::push_op`].
//!
//! ## Buffer reuse across training steps
//!
//! Training runs the same step shape thousands of times, so instead of
//! dropping a graph per step the training loops call [`Graph::reset`]:
//! every node value and gradient buffer retires into a pool keyed by
//! element count, and the next step's ops draw their output buffers from
//! that pool via [`Graph::alloc_out`] / [`Graph::alloc_zeroed`] instead of
//! the allocator.  Reset invalidates all outstanding [`Var`] handles of
//! the previous step (using one panics on an out-of-bounds node id).
//! Buffer reuse never changes values: an op either fully overwrites its
//! pooled buffer or requests it zeroed, so results are bitwise identical
//! to a freshly allocated graph.
//!
//! Custom operations (e.g. the IRN Personalized Impressionability Mask in
//! `irs_nn`) can be defined outside this crate via [`Graph::custom_op`].

use std::cell::RefCell;
use std::collections::HashMap;

use crate::tensor::{numel, Tensor};

/// Identifier of a node inside a [`Graph`].
pub type VarId = usize;

/// Retired buffers keyed by element count, ready for reuse by the next
/// step's nodes of identical shape (shapes repeat across training steps;
/// the ragged final minibatch of an epoch parks its odd sizes here until
/// the next ragged batch, bounding the pool at one step's worth of
/// buffers per distinct shape set).
#[derive(Default)]
struct Pool {
    by_len: HashMap<usize, Vec<Vec<f32>>>,
}

impl Pool {
    fn put(&mut self, t: Tensor) {
        let data = t.into_vec();
        if data.capacity() > 0 {
            self.by_len.entry(data.len()).or_default().push(data);
        }
    }

    /// A buffer of exactly `len` elements with unspecified (stale)
    /// contents, or `None` when nothing of that size has retired.
    fn take(&mut self, len: usize) -> Option<Vec<f32>> {
        self.by_len.get_mut(&len).and_then(Vec::pop)
    }
}

/// Backward context handed to every backward closure.
///
/// Provides read access to parent values and the upstream gradient, and
/// lazily-initialised mutable access to parent gradients.  Accessors
/// return references tied to the backward pass (`'a`), so closures can
/// hold a parent value or the upstream gradient while mutating a
/// gradient slot — no defensive clones needed.
pub struct BackwardCtx<'a> {
    parent_ids: &'a [VarId],
    values: &'a [Tensor],
    needs_grad: &'a [bool],
    out_id: VarId,
    grad_out: &'a Tensor,
    /// Gradient slots for ids `0..out_id` (parents are always earlier).
    grads: &'a mut [Option<Tensor>],
    pool: &'a RefCell<Pool>,
}

impl<'a> BackwardCtx<'a> {
    /// Value of the `i`-th parent.
    pub fn value(&self, i: usize) -> &'a Tensor {
        &self.values[self.parent_ids[i]]
    }

    /// Value of the op output.
    pub fn out_value(&self) -> &'a Tensor {
        &self.values[self.out_id]
    }

    /// Gradient flowing into the op output.
    pub fn grad_out(&self) -> &'a Tensor {
        self.grad_out
    }

    /// Number of parents.
    pub fn num_parents(&self) -> usize {
        self.parent_ids.len()
    }

    /// Whether the `i`-th parent requires a gradient.  Backward closures
    /// may skip computing contributions for parents that do not — their
    /// slots are never read by earlier ops or by parameter collection.
    pub fn parent_needs_grad(&self, i: usize) -> bool {
        self.needs_grad[self.parent_ids[i]]
    }

    /// A zeroed gradient tensor for the parent's shape, drawn from the
    /// graph's buffer pool.
    fn zeroed_like(&self, pid: VarId) -> Tensor {
        let shape = self.values[pid].shape();
        zeroed_from_pool(self.pool, shape)
    }

    /// Mutable gradient slot of the `i`-th parent, zero-initialised on first
    /// access with the parent's shape.
    pub fn grad_mut(&mut self, i: usize) -> &mut Tensor {
        let pid = self.parent_ids[i];
        if self.grads[pid].is_none() {
            self.grads[pid] = Some(self.zeroed_like(pid));
        }
        self.grads[pid].as_mut().expect("just initialised")
    }

    /// Accumulate `c * delta` into the `i`-th parent gradient.
    pub fn accumulate_scaled(&mut self, i: usize, c: f32, delta: &Tensor) {
        self.grad_mut(i).axpy(c, delta);
    }

    /// Accumulate `delta` into the `i`-th parent gradient.
    pub fn accumulate(&mut self, i: usize, delta: &Tensor) {
        self.grad_mut(i).add_assign(delta);
    }

    /// Accumulate the upstream gradient into the `i`-th parent gradient
    /// (the pass-through of `add`-like ops), without cloning it.
    pub fn accumulate_grad_out(&mut self, i: usize) {
        let go = self.grad_out;
        self.grad_mut(i).add_assign(go);
    }

    /// Accumulate `c ·` upstream gradient into the `i`-th parent gradient.
    pub fn accumulate_grad_out_scaled(&mut self, i: usize, c: f32) {
        let go = self.grad_out;
        self.grad_mut(i).axpy(c, go);
    }

    /// Accumulate the upstream gradient elementwise, ignoring shape (the
    /// backward of `reshape`: same elements, different metadata).
    pub fn accumulate_grad_out_flat(&mut self, i: usize) {
        let go = self.grad_out;
        self.grad_mut(i).add_assign_flat(go);
    }

    /// Accumulate a multi-add contribution computed by `f` into the
    /// `i`-th parent gradient, preserving the historical accumulation
    /// order exactly.
    ///
    /// `f` receives a **zeroed** buffer of the parent's shape and must
    /// `+=` its full contribution into it (the `matmul_into`-family
    /// contract).  When the slot is fresh the buffer *becomes* the
    /// gradient; when a previous op already deposited a gradient, the
    /// contribution is computed separately and added tensor-wide — the
    /// same `grad += delta` rounding the compute-then-accumulate path
    /// produced, so kernels that add many products per element stay
    /// bitwise identical to the old two-pass code.
    pub fn accumulate_with(&mut self, i: usize, f: impl FnOnce(&mut [f32])) {
        let pid = self.parent_ids[i];
        let mut fresh = self.zeroed_like(pid);
        f(fresh.data_mut());
        match &mut self.grads[pid] {
            Some(live) => {
                live.add_assign(&fresh);
                self.pool.borrow_mut().put(fresh);
            }
            slot @ None => *slot = Some(fresh),
        }
    }
}

type BackFn = Box<dyn Fn(&mut BackwardCtx<'_>)>;

struct OpRecord {
    out: VarId,
    parents: Vec<VarId>,
    back: BackFn,
}

#[derive(Default)]
struct GraphInner {
    values: Vec<Tensor>,
    grads: Vec<Option<Tensor>>,
    needs_grad: Vec<bool>,
    ops: Vec<OpRecord>,
}

/// A computation tape.
///
/// One graph serves either a single forward/backward pass (drop it to
/// release all intermediates) or — via [`Graph::reset`] — a whole
/// training run, recycling its node and gradient buffers across steps.
/// Interior mutability keeps the builder API ergonomic (`Var` is `Copy`
/// and methods take `self` by value).
#[derive(Default)]
pub struct Graph {
    inner: RefCell<GraphInner>,
    pool: RefCell<Pool>,
}

/// Pop a pooled buffer of the right size and zero it, or allocate fresh.
fn zeroed_from_pool(pool: &RefCell<Pool>, shape: &[usize]) -> Tensor {
    let n = numel(shape);
    match pool.borrow_mut().take(n) {
        Some(mut data) => {
            data.iter_mut().for_each(|x| *x = 0.0);
            Tensor::from_vec(data, shape)
        }
        None => Tensor::zeros(shape),
    }
}

impl Graph {
    /// An empty tape.
    pub fn new() -> Self {
        Self::default()
    }

    /// Retire every node value and gradient into the buffer pool and
    /// clear the tape, keeping all allocations for the next step.
    ///
    /// All `Var` handles created before the reset are invalidated (using
    /// one panics).  Call between training steps of identical shape; the
    /// subsequent forward pass then runs allocation-free.
    pub fn reset(&self) {
        let mut inner = self.inner.borrow_mut();
        let mut pool = self.pool.borrow_mut();
        for t in inner.values.drain(..) {
            pool.put(t);
        }
        for t in inner.grads.drain(..).flatten() {
            pool.put(t);
        }
        inner.needs_grad.clear();
        inner.ops.clear();
    }

    /// An output buffer for an op producing `shape`: recycled from the
    /// pool when a retired buffer of the same element count exists
    /// (contents then **unspecified** — the op must overwrite every
    /// element), freshly zero-allocated otherwise.
    pub fn alloc_out(&self, shape: &[usize]) -> Tensor {
        match self.pool.borrow_mut().take(numel(shape)) {
            Some(data) => Tensor::from_vec(data, shape),
            None => Tensor::zeros(shape),
        }
    }

    /// Like [`Graph::alloc_out`] but guaranteed zero-filled — for ops that
    /// accumulate into their output (`out += …` kernels).
    pub fn alloc_zeroed(&self, shape: &[usize]) -> Tensor {
        zeroed_from_pool(&self.pool, shape)
    }

    /// Insert a leaf value.  `needs_grad` leaves receive gradients during
    /// [`Graph::backward`]; constants do not.
    pub fn var(&self, value: Tensor, needs_grad: bool) -> Var<'_> {
        let mut inner = self.inner.borrow_mut();
        let id = inner.values.len();
        inner.values.push(value);
        inner.grads.push(None);
        inner.needs_grad.push(needs_grad);
        Var { graph: self, id }
    }

    /// Insert a leaf copied from `value` into a pooled buffer — the
    /// allocation-free way to bind parameters each step.
    pub fn var_from(&self, value: &Tensor, needs_grad: bool) -> Var<'_> {
        let mut buf = self.alloc_out(value.shape());
        buf.data_mut().copy_from_slice(value.data());
        self.var(buf, needs_grad)
    }

    /// Insert a constant leaf (no gradient).
    pub fn constant(&self, value: Tensor) -> Var<'_> {
        self.var(value, false)
    }

    /// Number of nodes on the tape.
    pub fn num_nodes(&self) -> usize {
        self.inner.borrow().values.len()
    }

    /// Core op-registration primitive used by every operation.
    ///
    /// `back` receives a [`BackwardCtx`]; it must add this op's contribution
    /// to each parent gradient.  The op record is skipped entirely when no
    /// parent requires gradients.
    pub fn push_op(
        &self,
        parents: &[Var<'_>],
        value: Tensor,
        back: impl Fn(&mut BackwardCtx<'_>) + 'static,
    ) -> Var<'_> {
        let parent_ids: Vec<VarId> = parents.iter().map(|p| p.id).collect();
        let mut inner = self.inner.borrow_mut();
        for (p, v) in parents.iter().zip(&parent_ids) {
            assert!(std::ptr::eq(p.graph, self), "Var from a different Graph");
            assert!(*v < inner.values.len(), "unknown parent var id {v}");
        }
        let needs = parent_ids.iter().any(|&p| inner.needs_grad[p]);
        let id = inner.values.len();
        inner.values.push(value);
        inner.grads.push(None);
        inner.needs_grad.push(needs);
        if needs {
            inner.ops.push(OpRecord { out: id, parents: parent_ids, back: Box::new(back) });
        }
        Var { graph: self, id }
    }

    /// Public alias of [`Graph::push_op`] for defining operations outside
    /// this crate (used by `irs_nn` for the PIM attention mask).
    pub fn custom_op(
        &self,
        parents: &[Var<'_>],
        value: Tensor,
        back: impl Fn(&mut BackwardCtx<'_>) + 'static,
    ) -> Var<'_> {
        self.push_op(parents, value, back)
    }

    /// Run reverse-mode differentiation from `loss` (must be scalar).
    ///
    /// Gradients of all `needs_grad` leaves reachable from `loss` are
    /// afterwards available via [`Graph::grad`].  Backward may be called
    /// once per graph (once per [`Graph::reset`] cycle).
    pub fn backward(&self, loss: Var<'_>) {
        assert!(std::ptr::eq(loss.graph, self), "loss Var from a different Graph");
        let mut inner = self.inner.borrow_mut();
        let inner = &mut *inner;
        assert_eq!(
            inner.values[loss.id].len(),
            1,
            "backward requires a scalar loss, got shape {:?}",
            inner.values[loss.id].shape()
        );
        let mut seed = zeroed_from_pool(&self.pool, &[1]);
        seed.data_mut()[0] = 1.0;
        inner.grads[loss.id] = Some(seed);
        for op in inner.ops.iter().rev() {
            // Split so the output gradient can be read while parent slots
            // are written; parents always precede their output on the tape.
            let (before, after) = inner.grads.split_at_mut(op.out);
            let grad_out = match &after[0] {
                Some(g) => g,
                None => continue, // node does not influence the loss
            };
            let mut ctx = BackwardCtx {
                parent_ids: &op.parents,
                values: &inner.values,
                needs_grad: &inner.needs_grad,
                out_id: op.out,
                grad_out,
                grads: before,
                pool: &self.pool,
            };
            (op.back)(&mut ctx);
        }
    }

    /// Gradient accumulated at `var` (None if it never received one).
    pub fn grad(&self, var: Var<'_>) -> Option<Tensor> {
        self.inner.borrow().grads[var.id].clone()
    }

    /// Run `f` with a borrow of the gradient at `var` (avoids a clone);
    /// `None` when no gradient was accumulated.
    pub fn with_grad<R>(&self, var: Var<'_>, f: impl FnOnce(&Tensor) -> R) -> Option<R> {
        self.inner.borrow().grads[var.id].as_ref().map(f)
    }

    /// Clone of the value stored at `var`.
    pub fn value(&self, var: Var<'_>) -> Tensor {
        self.inner.borrow().values[var.id].clone()
    }

    /// Run `f` with a borrow of the value at `var` (avoids a clone).
    pub fn with_value<R>(&self, var: Var<'_>, f: impl FnOnce(&Tensor) -> R) -> R {
        f(&self.inner.borrow().values[var.id])
    }
}

/// Handle to a node in a [`Graph`].  Cheap to copy; all tensor operations
/// are methods on `Var` (see the `ops`, `nnops` and `shapeops` modules).
#[derive(Clone, Copy)]
pub struct Var<'g> {
    pub(crate) graph: &'g Graph,
    pub(crate) id: VarId,
}

impl<'g> Var<'g> {
    /// The owning graph.
    pub fn graph(&self) -> &'g Graph {
        self.graph
    }

    /// Tape id of this node.
    pub fn id(&self) -> VarId {
        self.id
    }

    /// Clone of the node value.
    pub fn value(&self) -> Tensor {
        self.graph.value(*self)
    }

    /// Shape of the node value.
    pub fn shape(&self) -> Vec<usize> {
        self.graph.with_value(*self, |t| t.shape().to_vec())
    }

    /// Scalar value of a 1-element node.
    pub fn item(&self) -> f32 {
        self.graph.with_value(*self, |t| t.item())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backward_through_mul_and_sum() {
        let g = Graph::new();
        let x = g.var(Tensor::from_vec(vec![1.0, -2.0, 3.0], &[3]), true);
        let y = x.mul(x).sum_all();
        assert!((y.item() - 14.0).abs() < 1e-6);
        g.backward(y);
        let dx = g.grad(x).unwrap();
        assert_eq!(dx.data(), &[2.0, -4.0, 6.0]);
    }

    #[test]
    fn constants_receive_no_gradient() {
        let g = Graph::new();
        let x = g.var(Tensor::scalar(2.0), true);
        let c = g.constant(Tensor::scalar(3.0));
        let y = x.mul(c).sum_all();
        g.backward(y);
        assert_eq!(g.grad(x).unwrap().item(), 3.0);
        // The op was recorded because x needs a gradient; c's slot is not
        // part of the contract, but x's gradient must be exact.
    }

    #[test]
    fn gradient_accumulates_across_multiple_uses() {
        let g = Graph::new();
        let x = g.var(Tensor::scalar(3.0), true);
        // y = x*x + x  => dy/dx = 2x + 1 = 7
        let y = x.mul(x).add(x).sum_all();
        g.backward(y);
        assert_eq!(g.grad(x).unwrap().item(), 7.0);
    }

    #[test]
    fn unused_branches_do_not_contribute() {
        let g = Graph::new();
        let x = g.var(Tensor::scalar(3.0), true);
        let _dead = x.mul(x); // never reaches the loss
        let y = x.add_scalar(1.0).sum_all();
        g.backward(y);
        assert_eq!(g.grad(x).unwrap().item(), 1.0);
    }

    #[test]
    #[should_panic(expected = "scalar loss")]
    fn backward_rejects_non_scalar_loss() {
        let g = Graph::new();
        let x = g.var(Tensor::zeros(&[2]), true);
        let y = x.add_scalar(1.0);
        g.backward(y);
    }

    #[test]
    fn ops_on_pure_constants_are_not_recorded() {
        let g = Graph::new();
        let a = g.constant(Tensor::scalar(1.0));
        let b = g.constant(Tensor::scalar(2.0));
        let _ = a.add(b);
        assert_eq!(g.inner.borrow().ops.len(), 0);
    }

    #[test]
    fn custom_op_backward_is_invoked() {
        let g = Graph::new();
        let x = g.var(Tensor::from_vec(vec![2.0, 3.0], &[2]), true);
        // out = 5 * x, custom implementation.
        let val = g.value(x).scale(5.0);
        let y = g.custom_op(&[x], val, |ctx| {
            ctx.accumulate_grad_out_scaled(0, 5.0);
        });
        let loss = y.sum_all();
        g.backward(loss);
        assert_eq!(g.grad(x).unwrap().data(), &[5.0, 5.0]);
    }

    #[test]
    fn reset_recycles_buffers_and_preserves_results() {
        // The same computation, once on a fresh graph and once on a graph
        // that has been through a reset cycle, must agree bitwise — and
        // the second pass must draw its buffers from the pool.
        let g = Graph::new();
        let run = |g: &Graph| {
            let x = g.var(Tensor::from_vec(vec![0.5, -1.5, 2.5, 3.5], &[2, 2]), true);
            let w = g.var(Tensor::from_vec(vec![1.0, 2.0, -0.5, 0.25], &[2, 2]), true);
            let y = x.matmul(w).relu().sum_all();
            g.backward(y);
            (y.item(), g.grad(x).unwrap(), g.grad(w).unwrap())
        };
        let (l1, dx1, dw1) = run(&g);
        let nodes = g.num_nodes();
        g.reset();
        assert_eq!(g.num_nodes(), 0);
        let (l2, dx2, dw2) = run(&g);
        assert_eq!(g.num_nodes(), nodes);
        assert_eq!(l1.to_bits(), l2.to_bits());
        assert_eq!(dx1.data(), dx2.data());
        assert_eq!(dw1.data(), dw2.data());

        let fresh = Graph::new();
        let (l3, dx3, dw3) = run(&fresh);
        assert_eq!(l1.to_bits(), l3.to_bits());
        assert_eq!(dx1.data(), dx3.data());
        assert_eq!(dw1.data(), dw3.data());
    }

    #[test]
    fn alloc_out_reuses_retired_buffers() {
        let g = Graph::new();
        let _ = g.var(Tensor::full(&[4, 4], 7.0), false);
        g.reset();
        // The retired 16-element buffer must come back from the pool
        // (contents stale), and alloc_zeroed must scrub it.
        let t = g.alloc_out(&[2, 8]);
        assert_eq!(t.len(), 16);
        let _ = g.var(t, false);
        g.reset();
        let t2 = g.alloc_zeroed(&[16]);
        assert!(t2.data().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn accumulate_with_matches_two_pass_accumulation() {
        // Fresh slot: contribution becomes the gradient. Live slot: the
        // contribution is computed apart and added whole, like the old
        // compute-then-add path.
        let g = Graph::new();
        let x = g.var(Tensor::from_vec(vec![1.0, 2.0], &[2]), true);
        let y = g.custom_op(&[x, x], g.value(x).scale(2.0), |ctx| {
            ctx.accumulate_with(0, |out| {
                for o in out.iter_mut() {
                    *o += 2.0;
                }
            });
            ctx.accumulate_with(1, |out| {
                for o in out.iter_mut() {
                    *o += 3.0;
                }
            });
        });
        g.backward(y.sum_all());
        assert_eq!(g.grad(x).unwrap().data(), &[5.0, 5.0]);
    }
}
