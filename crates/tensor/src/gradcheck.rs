//! Finite-difference gradient checking.
//!
//! Every backward implementation in this workspace is validated against a
//! central-difference approximation.  The checker builds a fresh graph per
//! perturbation, which also exercises graph construction determinism.

use crate::graph::{Graph, Var};
use crate::tensor::Tensor;

/// Relative tolerance used by [`check_gradients`].
pub const DEFAULT_TOL: f32 = 2e-2;

/// Step size for central differences (f32 arithmetic needs a fairly large
/// step; the comparison uses a relative error metric).
pub const DEFAULT_EPS: f32 = 1e-2;

/// Check analytic gradients of `f` against central differences at `inputs`.
///
/// `f` receives the graph and one `Var` per input tensor (all created with
/// `needs_grad = true`) and must return a scalar loss.  Panics with a
/// descriptive message if any partial derivative disagrees.
pub fn check_gradients<F>(inputs: &[Tensor], f: F)
where
    F: for<'g> Fn(&'g Graph, &[Var<'g>]) -> Var<'g>,
{
    check_gradients_tol(inputs, DEFAULT_EPS, DEFAULT_TOL, f);
}

/// [`check_gradients`] with explicit step size and tolerance.
pub fn check_gradients_tol<F>(inputs: &[Tensor], eps: f32, tol: f32, f: F)
where
    F: for<'g> Fn(&'g Graph, &[Var<'g>]) -> Var<'g>,
{
    // Analytic gradients.
    let analytic: Vec<Tensor> = {
        let g = Graph::new();
        let vars: Vec<Var<'_>> = inputs.iter().map(|t| g.var(t.clone(), true)).collect();
        let loss = f(&g, &vars);
        g.backward(loss);
        vars.iter().map(|&v| g.grad(v).unwrap_or_else(|| Tensor::zeros(&v.shape()))).collect()
    };

    let eval = |perturbed: &[Tensor]| -> f32 {
        let g = Graph::new();
        let vars: Vec<Var<'_>> = perturbed.iter().map(|t| g.var(t.clone(), true)).collect();
        f(&g, &vars).item()
    };

    for (ti, input) in inputs.iter().enumerate() {
        for ei in 0..input.len() {
            let mut plus = inputs.to_vec();
            plus[ti].data_mut()[ei] += eps;
            let mut minus = inputs.to_vec();
            minus[ti].data_mut()[ei] -= eps;
            let numeric = (eval(&plus) - eval(&minus)) / (2.0 * eps);
            let a = analytic[ti].data()[ei];
            let denom = a.abs().max(numeric.abs()).max(1.0);
            let rel = (a - numeric).abs() / denom;
            assert!(
                rel <= tol,
                "gradient mismatch: input {ti} element {ei}: analytic {a}, numeric {numeric} (rel err {rel})"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_correct_gradient() {
        let x = Tensor::from_vec(vec![0.4, -0.2, 0.9], &[3]);
        check_gradients(&[x], |_g, vars| vars[0].mul(vars[0]).sum_all());
    }

    #[test]
    #[should_panic(expected = "gradient mismatch")]
    fn rejects_wrong_gradient() {
        // Deliberately broken op: forward computes x², backward claims d/dx = 1.
        let inputs = [Tensor::from_vec(vec![1.0, 2.0], &[2])];
        check_gradients(&inputs, |g, vars| {
            let val = g.value(vars[0]).map(|v| v * v);
            let broken = g.custom_op(&[vars[0]], val, |ctx| {
                let go = ctx.grad_out().clone();
                ctx.accumulate(0, &go);
            });
            broken.sum_all()
        });
    }
}
