//! # irs_tensor — dense tensors and reverse-mode autograd
//!
//! This crate is the numerical substrate for the `influential-rs` workspace,
//! the Rust reproduction of *"Influential Recommender System"* (ICDE 2023).
//! The paper's models (IRN, SASRec, Bert4Rec, GRU4Rec, Caser, …) are small
//! transformer / RNN / CNN architectures; no deep-learning framework is
//! available in the sanctioned dependency set, so this crate implements the
//! required pieces from first principles:
//!
//! * [`Tensor`] — a contiguous, row-major `f32` tensor with the dense kernels
//!   the models need (elementwise arithmetic, 2-D and batched matmul,
//!   softmax, layer-norm statistics, gather/scatter, window unfolding, …).
//! * [`Graph`] / [`Var`] — a tape-based reverse-mode automatic
//!   differentiation engine.  A [`Graph`] owns every intermediate value of a
//!   forward pass; [`Var`] is a lightweight handle used to build the
//!   computation.  Calling [`Graph::backward`] replays the tape in reverse
//!   and accumulates gradients.
//! * [`gradcheck`] — a finite-difference gradient checker used throughout
//!   the test-suites to validate every backward implementation.
//!
//! ## Example
//!
//! ```
//! use irs_tensor::{Graph, Tensor};
//!
//! let g = Graph::new();
//! let x = g.var(Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]), true);
//! let y = x.mul(x).sum_all(); // y = Σ x²
//! g.backward(y);
//! let dx = g.grad(x).unwrap();
//! assert_eq!(dx.data(), &[2.0, 4.0, 6.0]); // dy/dx = 2x
//! ```
//!
//! The engine is deliberately eager: every model in the workspace trains in
//! seconds on CPU at the scales used by the experiment harness.  The dense
//! matmul kernels ([`matmul_into`]) are blocked and fan large shapes out
//! over `std::thread::scope` threads, but always accumulate each output
//! element in the same order — determinism (fixed seeds => bitwise
//! identical results, regardless of core count or batching) is a design
//! requirement for the paper-reproduction experiments.

pub mod gradcheck;
mod graph;
mod nnops;
mod ops;
mod shapeops;
mod tensor;

pub use graph::{BackwardCtx, Graph, Var, VarId};
pub use tensor::{
    bmm_into, bmm_layout_into, bmm_nt_db_layout_into, bmm_nt_into, bmm_nt_layout_into, bmm_tn_into,
    bmm_tn_layout_into, matmul_into, matmul_into_packed, matmul_into_plain, matmul_nt_into,
    matmul_tn_into, set_kernel_threads, BatchLayout, Tensor, TensorError, ViewMeta,
};

/// Numerically stable log-sum-exp over a slice.
///
/// Used by losses and by evaluation code that needs `log P` without building
/// a graph.  Returns `-inf` for an empty slice.
pub fn log_sum_exp(xs: &[f32]) -> f32 {
    let m = xs.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    if !m.is_finite() {
        return m;
    }
    let s: f32 = xs.iter().map(|&x| (x - m).exp()).sum();
    m + s.ln()
}

/// Standard normal sample via the Box–Muller transform.
///
/// `rand_distr` is not part of the sanctioned offline dependency set, so the
/// handful of places that need Gaussian initialisation use this helper.
pub fn box_muller<R: rand::Rng + ?Sized>(rng: &mut R) -> f32 {
    loop {
        let u1: f32 = rng.random::<f32>();
        if u1 <= f32::MIN_POSITIVE {
            continue;
        }
        let u2: f32 = rng.random::<f32>();
        let r = (-2.0 * u1.ln()).sqrt();
        return r * (2.0 * std::f32::consts::PI * u2).cos();
    }
}

#[cfg(test)]
mod lib_tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn log_sum_exp_matches_naive() {
        let xs = [0.5f32, -1.0, 2.0, 0.0];
        let naive = xs.iter().map(|x| x.exp()).sum::<f32>().ln();
        assert!((log_sum_exp(&xs) - naive).abs() < 1e-5);
    }

    #[test]
    fn log_sum_exp_is_stable_for_large_inputs() {
        let xs = [1000.0f32, 999.0, 998.0];
        let v = log_sum_exp(&xs);
        assert!(v.is_finite());
        assert!((v - (1000.0 + (1.0f32 + (-1.0f32).exp() + (-2.0f32).exp()).ln())).abs() < 1e-3);
    }

    #[test]
    fn log_sum_exp_empty_is_neg_inf() {
        assert_eq!(log_sum_exp(&[]), f32::NEG_INFINITY);
    }

    #[test]
    fn box_muller_has_roughly_standard_moments() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let n = 20_000;
        let samples: Vec<f32> = (0..n).map(|_| box_muller(&mut rng)).collect();
        let mean = samples.iter().sum::<f32>() / n as f32;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / n as f32;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }
}
