//! Differentiable neural-network primitives: softmax, log-softmax, layer
//! normalisation, dropout, additive masks and the fused cross-entropy loss.
//!
//! Like the arithmetic ops, outputs come from the graph's buffer pool and
//! backward closures accumulate in place against borrowed values — no
//! per-op clones.  Accumulation order per gradient element is unchanged
//! from the historical implementations, keeping trajectories bitwise
//! stable.

use crate::graph::Var;
use crate::tensor::Tensor;

impl<'g> Var<'g> {
    /// Softmax along the last axis.
    ///
    /// Backward uses the standard Jacobian-vector product
    /// `dx = y ⊙ (g − ⟨g, y⟩)` computed row-wise.
    pub fn softmax_last(self) -> Var<'g> {
        let v = self.graph.with_value(self, |a| {
            let mut out = self.graph.alloc_out(a.shape());
            out.data_mut().copy_from_slice(a.data());
            out.softmax_last_in_place();
            out
        });
        self.graph.push_op(&[self], v, |ctx| {
            let y = ctx.out_value();
            let go = ctx.grad_out();
            let d = *y.shape().last().expect("softmax grad on 0-d tensor");
            let dx = ctx.grad_mut(0);
            for ((dx_row, y_row), g_row) in
                dx.data_mut().chunks_mut(d).zip(y.data().chunks(d)).zip(go.data().chunks(d))
            {
                let dot: f32 = y_row.iter().zip(g_row).map(|(&yi, &gi)| yi * gi).sum();
                for ((o, &yi), &gi) in dx_row.iter_mut().zip(y_row).zip(g_row) {
                    *o += yi * (gi - dot);
                }
            }
        })
    }

    /// Log-softmax along the last axis.
    ///
    /// Backward: `dx = g − softmax(x) · Σ g` computed row-wise.
    pub fn log_softmax_last(self) -> Var<'g> {
        let v = self.graph.with_value(self, |a| {
            let d = *a.shape().last().expect("log_softmax on 0-d tensor");
            assert!(d > 0, "log_softmax over empty last axis");
            let mut out = self.graph.alloc_out(a.shape());
            for (row, src) in out.data_mut().chunks_mut(d).zip(a.data().chunks(d)) {
                let m = src.iter().copied().fold(f32::NEG_INFINITY, f32::max);
                let lse = m + src.iter().map(|&x| (x - m).exp()).sum::<f32>().ln();
                for (o, &x) in row.iter_mut().zip(src) {
                    *o = x - lse;
                }
            }
            out
        });
        self.graph.push_op(&[self], v, |ctx| {
            let logp = ctx.out_value();
            let go = ctx.grad_out();
            let d = *logp.shape().last().expect("log_softmax grad on 0-d tensor");
            let dx = ctx.grad_mut(0);
            for ((dx_row, lp_row), g_row) in
                dx.data_mut().chunks_mut(d).zip(logp.data().chunks(d)).zip(go.data().chunks(d))
            {
                let gsum: f32 = g_row.iter().sum();
                for ((o, &lp), &gi) in dx_row.iter_mut().zip(lp_row).zip(g_row) {
                    *o += gi - lp.exp() * gsum;
                }
            }
        })
    }

    /// Layer normalisation over the last axis with learned `gamma`/`beta`
    /// (both 1-D of the last-axis length).
    pub fn layer_norm(self, gamma: Var<'g>, beta: Var<'g>, eps: f32) -> Var<'g> {
        let d = *self.shape().last().expect("layer_norm on 0-d tensor");
        assert_eq!(gamma.shape(), vec![d], "gamma must be [{d}]");
        assert_eq!(beta.shape(), vec![d], "beta must be [{d}]");
        // Per-row (mean, 1/σ) cached for the backward in a pooled buffer
        // (a constant tape parent, like gelu's tanh cache) — recomputing
        // them cost two extra passes over `x` per row.
        let rows = self.graph.with_value(self, |x| x.len() / d);
        let mut stats = self.graph.alloc_out(&[rows, 2]);
        let v = self.graph.with_value(self, |x| {
            gamma.graph.with_value(gamma, |gm| {
                beta.graph.with_value(beta, |bt| {
                    let mut out = self.graph.alloc_out(x.shape());
                    for ((row, src), st) in out
                        .data_mut()
                        .chunks_mut(d)
                        .zip(x.data().chunks(d))
                        .zip(stats.data_mut().chunks_mut(2))
                    {
                        let mean = src.iter().sum::<f32>() / d as f32;
                        let var =
                            src.iter().map(|&x| (x - mean) * (x - mean)).sum::<f32>() / d as f32;
                        let inv = 1.0 / (var + eps).sqrt();
                        st[0] = mean;
                        st[1] = inv;
                        for ((o, &x), i) in row.iter_mut().zip(src).zip(0..d) {
                            *o = (x - mean) * inv * gm.data()[i] + bt.data()[i];
                        }
                    }
                    out
                })
            })
        });
        let stats = self.graph.constant(stats);
        self.graph.push_op(&[self, gamma, beta, stats], v, move |ctx| {
            let x = ctx.value(0);
            let gm = ctx.value(1);
            let stats = ctx.value(3);
            let go = ctx.grad_out();
            let rows = x.len() / d;
            let mut dgamma = vec![0.0f32; d];
            let mut dbeta = vec![0.0f32; d];
            {
                let dx = ctx.grad_mut(0);
                for (r, st) in stats.data().chunks(2).enumerate().take(rows) {
                    let (mean, inv) = (st[0], st[1]);
                    let xr = &x.data()[r * d..(r + 1) * d];
                    let gr = &go.data()[r * d..(r + 1) * d];
                    // xhat_i = (x_i - mean) * inv
                    // dxhat_i = g_i * gamma_i
                    let mut sum_dxhat = 0.0f32;
                    let mut sum_dxhat_xhat = 0.0f32;
                    for i in 0..d {
                        let xhat = (xr[i] - mean) * inv;
                        let dxhat = gr[i] * gm.data()[i];
                        sum_dxhat += dxhat;
                        sum_dxhat_xhat += dxhat * xhat;
                        dgamma[i] += gr[i] * xhat;
                        dbeta[i] += gr[i];
                    }
                    let dxr = &mut dx.data_mut()[r * d..(r + 1) * d];
                    for i in 0..d {
                        let xhat = (xr[i] - mean) * inv;
                        let dxhat = gr[i] * gm.data()[i];
                        dxr[i] +=
                            inv * (dxhat - sum_dxhat / d as f32 - xhat * sum_dxhat_xhat / d as f32);
                    }
                }
            }
            for (o, g) in ctx.grad_mut(1).data_mut().iter_mut().zip(&dgamma) {
                *o += g;
            }
            for (o, g) in ctx.grad_mut(2).data_mut().iter_mut().zip(&dbeta) {
                *o += g;
            }
        })
    }

    /// Inverted dropout.  When `training` is false this is the identity.
    /// The Bernoulli mask is drawn from `rng` at op-construction time so the
    /// forward value and backward routing agree.
    ///
    /// The mask lives as a constant node (a pooled buffer, recycled on
    /// graph reset — masks are the largest per-step allocations after the
    /// activations) and the op is a plain Hadamard `mul`, whose backward
    /// `dx += g ⊙ mask` is the identical expression the dedicated
    /// dropout backward applied; the mask, as a constant, receives none.
    pub fn dropout<R: rand::Rng + ?Sized>(self, p: f32, training: bool, rng: &mut R) -> Var<'g> {
        assert!((0.0..1.0).contains(&p), "dropout p must be in [0,1), got {p}");
        if !training || p == 0.0 {
            return self;
        }
        let keep = 1.0 - p;
        let mut mask = self.graph.with_value(self, |t| self.graph.alloc_out(t.shape()));
        for m in mask.data_mut() {
            *m = if rng.random::<f32>() < keep { 1.0 / keep } else { 0.0 };
        }
        let mask = self.graph.constant(mask);
        self.mul(mask)
    }

    /// Add a constant bias tensor broadcast over the leading axis:
    /// `self: [B, ...rest]`, `mask: [...rest]`.  No gradient flows into the
    /// mask (it is plain data, e.g. a causal attention mask).
    pub fn add_mask_bcast(self, mask: &Tensor) -> Var<'g> {
        let rest: usize = mask.len();
        let v = self.graph.with_value(self, |t| {
            assert!(
                t.ndim() > 0 && t.shape().iter().skip(1).product::<usize>() == rest,
                "mask shape {:?} does not match trailing axes of {:?}",
                mask.shape(),
                t.shape()
            );
            let mut out = self.graph.alloc_out(t.shape());
            for (chunk, src) in out.data_mut().chunks_mut(rest).zip(t.data().chunks(rest)) {
                for ((o, &x), &m) in chunk.iter_mut().zip(src).zip(mask.data()) {
                    *o = x + m;
                }
            }
            out
        });
        self.graph.push_op(&[self], v, |ctx| {
            ctx.accumulate_grad_out(0);
        })
    }

    /// Fused softmax cross-entropy over the last axis of a logits tensor
    /// (any rank; leading axes flatten to rows of width `V`), with integer
    /// `targets` (one per row).  Positions whose target equals
    /// `ignore_index` contribute neither loss nor gradient.  Returns the
    /// mean loss over non-ignored rows (scalar).
    pub fn cross_entropy(self, targets: &[usize], ignore_index: usize) -> Var<'g> {
        let shape = self.shape();
        let v_dim = *shape.last().expect("cross_entropy on 0-d logits");
        let n: usize = shape[..shape.len() - 1].iter().product();
        assert_eq!(targets.len(), n, "targets length must equal logits rows");
        let count = targets.iter().filter(|&&t| t != ignore_index).count().max(1);

        // The softmax the backward needs is a byproduct of the forward's
        // log-sum-exp, so cache the per-row probabilities in a pooled
        // buffer: the exps are computed once, summed in the same
        // ascending order (the loss sees the identical `lse`), then
        // normalised exactly as `softmax_in_place` would — re-softmaxing
        // every row in the backward was the second-largest `exp` sink of
        // a training step.  Rows whose target is ignored are skipped on
        // both sides, so their (stale) cache contents are never read.
        let mut probs = self.graph.alloc_out(&[n, v_dim]);
        let value = self.graph.with_value(self, |logits| {
            let mut loss = 0.0f64;
            for ((row, p_row), &t) in
                logits.data().chunks(v_dim).zip(probs.data_mut().chunks_mut(v_dim)).zip(targets)
            {
                if t == ignore_index {
                    continue;
                }
                assert!(t < v_dim, "target {t} out of vocabulary {v_dim}");
                let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
                let mut sum = 0.0f32;
                for (p, &x) in p_row.iter_mut().zip(row) {
                    *p = (x - m).exp();
                    sum += *p;
                }
                let lse = m + sum.ln();
                loss += f64::from(lse - row[t]);
                if sum > 0.0 {
                    let inv = 1.0 / sum;
                    p_row.iter_mut().for_each(|p| *p *= inv);
                } else {
                    // Mirror `softmax_in_place`'s all-`-inf` fallback.
                    let u = 1.0 / v_dim as f32;
                    p_row.iter_mut().for_each(|p| *p = u);
                }
            }
            let mut out = self.graph.alloc_out(&[1]);
            out.data_mut()[0] = (loss / count as f64) as f32;
            out
        });

        // Like gelu's tanh cache: the probabilities ride the tape as a
        // constant parent so the buffer recycles on graph reset.  The
        // targets are fresh every minibatch, so they travel as an index
        // payload (refreshed in place on replay) and the non-ignored count
        // is recomputed from the payload; `ignore_index` is a call-site
        // constant, safe to capture.
        let probs = self.graph.constant(probs);
        self.graph.push_op_indexed(&[self, probs], value, targets, move |ctx| {
            let v_dim = *ctx.value(0).shape().last().expect("cross_entropy grad on 0-d logits");
            let tg = ctx.payload_idx();
            let count = tg.iter().filter(|&&t| t != ignore_index).count().max(1);
            let g = ctx.grad_out().item() / count as f32;
            let probs = ctx.value(1);
            let dx = ctx.grad_mut(0);
            for ((dx_row, p_row), &t) in
                dx.data_mut().chunks_mut(v_dim).zip(probs.data().chunks(v_dim)).zip(tg)
            {
                if t == ignore_index {
                    continue;
                }
                for (i, (o, &p)) in dx_row.iter_mut().zip(p_row).enumerate() {
                    let indicator = if i == t { 1.0 } else { 0.0 };
                    *o += g * (p - indicator);
                }
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use crate::gradcheck::check_gradients;
    use crate::graph::Graph;
    use crate::tensor::Tensor;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(2024)
    }

    #[test]
    fn softmax_grad() {
        let x = Tensor::randn(&[3, 5], 1.0, &mut rng());
        check_gradients(&[x], |_g, vars| {
            let y = vars[0].softmax_last();
            // Weighted sum to produce asymmetric upstream gradients.
            let w = Tensor::from_fn(&[3, 5], |i| (i as f32 * 0.37).sin());
            let wv = vars[0].graph().constant(w);
            y.mul(wv).sum_all()
        });
    }

    #[test]
    fn log_softmax_grad() {
        let x = Tensor::randn(&[2, 7], 1.0, &mut rng());
        check_gradients(&[x], |_g, vars| {
            let y = vars[0].log_softmax_last();
            let w = Tensor::from_fn(&[2, 7], |i| ((i * i) as f32 * 0.11).cos());
            let wv = vars[0].graph().constant(w);
            y.mul(wv).sum_all()
        });
    }

    #[test]
    fn log_softmax_matches_tensor_kernel() {
        let t = Tensor::from_vec(vec![0.3, -0.7, 1.9, 0.0, 5.0, -5.0], &[2, 3]);
        let g = Graph::new();
        let v = g.constant(t.clone()).log_softmax_last();
        assert_eq!(v.value().data(), t.log_softmax_last().data());
    }

    #[test]
    fn layer_norm_output_is_normalised() {
        let g = Graph::new();
        let x = g.var(Tensor::randn(&[4, 8], 3.0, &mut rng()), true);
        let gamma = g.var(Tensor::ones(&[8]), true);
        let beta = g.var(Tensor::zeros(&[8]), true);
        let y = x.layer_norm(gamma, beta, 1e-5);
        for row in y.value().data().chunks(8) {
            let mean: f32 = row.iter().sum::<f32>() / 8.0;
            let var: f32 = row.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / 8.0;
            assert!(mean.abs() < 1e-4, "mean {mean}");
            assert!((var - 1.0).abs() < 1e-2, "var {var}");
        }
    }

    #[test]
    fn layer_norm_grad() {
        let x = Tensor::randn(&[3, 6], 1.0, &mut rng());
        let gamma = Tensor::rand_uniform(&[6], 0.5, 1.5, &mut rng());
        let beta = Tensor::randn(&[6], 0.3, &mut rng());
        check_gradients(&[x, gamma, beta], |_g, vars| {
            let y = vars[0].layer_norm(vars[1], vars[2], 1e-5);
            let w = Tensor::from_fn(&[3, 6], |i| (i as f32 * 0.71).sin());
            let wv = vars[0].graph().constant(w);
            y.mul(wv).sum_all()
        });
    }

    #[test]
    fn dropout_eval_is_identity_and_train_scales() {
        let g = Graph::new();
        let x = g.var(Tensor::ones(&[1000]), true);
        let mut r = rng();
        let eval = x.dropout(0.5, false, &mut r);
        assert_eq!(eval.value().data(), x.value().data());

        let train = x.dropout(0.5, true, &mut r);
        let vals = train.value();
        let kept = vals.data().iter().filter(|&&v| v > 0.0).count();
        // Inverted dropout: kept values are scaled by 2.
        assert!(vals.data().iter().all(|&v| v == 0.0 || (v - 2.0).abs() < 1e-6));
        assert!((400..600).contains(&kept), "kept {kept}");
    }

    #[test]
    fn dropout_backward_respects_mask() {
        let g = Graph::new();
        let x = g.var(Tensor::ones(&[64]), true);
        let mut r = rng();
        let y = x.dropout(0.25, true, &mut r);
        let loss = y.sum_all();
        g.backward(loss);
        let dx = g.grad(x).unwrap();
        let fwd = y.value();
        for (gv, fv) in dx.data().iter().zip(fwd.data()) {
            assert_eq!(gv, fv, "grad must equal mask value for linear loss");
        }
    }

    #[test]
    fn add_mask_bcast_values() {
        let g = Graph::new();
        let x = g.var(Tensor::zeros(&[2, 2, 2]), true);
        let mask = Tensor::from_vec(vec![0.0, -1.0, 2.0, 0.5], &[2, 2]);
        let y = x.add_mask_bcast(&mask);
        assert_eq!(y.value().data(), &[0.0, -1.0, 2.0, 0.5, 0.0, -1.0, 2.0, 0.5]);
    }

    #[test]
    fn cross_entropy_matches_manual_nll() {
        let g = Graph::new();
        let logits = Tensor::from_vec(vec![1.0, 2.0, 0.5, -0.5, 0.0, 3.0], &[2, 3]);
        let x = g.var(logits.clone(), true);
        let loss = x.cross_entropy(&[1, 2], usize::MAX);
        let lp = logits.log_softmax_last();
        let manual = -(lp.at(&[0, 1]) + lp.at(&[1, 2])) / 2.0;
        assert!((loss.item() - manual).abs() < 1e-5);
    }

    #[test]
    fn cross_entropy_accepts_3d_logits() {
        // [B, T, V] logits flatten to B·T rows — the training loops feed
        // the projection output without an intermediate reshape node.
        let g = Graph::new();
        let logits = Tensor::randn(&[2, 3, 4], 1.0, &mut rng());
        let targets = [0usize, 3, 1, 2, 9, 0];
        let flat = g.var(logits.reshaped(&[6, 4]), true);
        let cube = g.var(logits, true);
        let l_flat = flat.cross_entropy(&targets, 9);
        let l_cube = cube.cross_entropy(&targets, 9);
        assert_eq!(l_flat.item().to_bits(), l_cube.item().to_bits());
        g.backward(l_flat.add(l_cube).sum_all());
        assert_eq!(g.grad(flat).unwrap().data(), g.grad(cube).unwrap().data());
    }

    #[test]
    fn cross_entropy_ignores_padding_rows() {
        let g = Graph::new();
        let logits = Tensor::from_vec(vec![1.0, 2.0, 0.5, 9.0, -3.0, 0.1], &[2, 3]);
        let x = g.var(logits.clone(), true);
        const PAD: usize = 7;
        let loss = x.cross_entropy(&[1, PAD], PAD);
        let lp = logits.log_softmax_last();
        assert!((loss.item() + lp.at(&[0, 1])).abs() < 1e-5);
        g.backward(loss);
        let dx = g.grad(x).unwrap();
        // Ignored row receives zero gradient.
        assert_eq!(&dx.data()[3..6], &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn cross_entropy_gradcheck() {
        let logits = Tensor::randn(&[4, 5], 1.0, &mut rng());
        check_gradients(&[logits], |_g, vars| vars[0].cross_entropy(&[0, 3, 2, 4], usize::MAX));
    }

    #[test]
    fn cross_entropy_gradcheck_with_ignore() {
        let logits = Tensor::randn(&[4, 5], 1.0, &mut rng());
        check_gradients(&[logits], |_g, vars| vars[0].cross_entropy(&[0, 9, 2, 9], 9));
    }
}
