//! Differentiable neural-network primitives: softmax, log-softmax, layer
//! normalisation, dropout, additive masks and the fused cross-entropy loss.

use crate::graph::Var;
use crate::tensor::{softmax_in_place, Tensor};

impl<'g> Var<'g> {
    /// Softmax along the last axis.
    ///
    /// Backward uses the standard Jacobian-vector product
    /// `dx = y ⊙ (g − ⟨g, y⟩)` computed row-wise.
    pub fn softmax_last(self) -> Var<'g> {
        let v = self.graph.with_value(self, |a| a.softmax_last());
        self.graph.push_op(&[self], v, |ctx| {
            let y = ctx.out_value().clone();
            let go = ctx.grad_out().clone();
            let d = *y.shape().last().expect("softmax grad on 0-d tensor");
            let dx = ctx.grad_mut(0);
            for ((dx_row, y_row), g_row) in
                dx.data_mut().chunks_mut(d).zip(y.data().chunks(d)).zip(go.data().chunks(d))
            {
                let dot: f32 = y_row.iter().zip(g_row).map(|(&yi, &gi)| yi * gi).sum();
                for ((o, &yi), &gi) in dx_row.iter_mut().zip(y_row).zip(g_row) {
                    *o += yi * (gi - dot);
                }
            }
        })
    }

    /// Log-softmax along the last axis.
    ///
    /// Backward: `dx = g − softmax(x) · Σ g` computed row-wise.
    pub fn log_softmax_last(self) -> Var<'g> {
        let v = self.graph.with_value(self, |a| a.log_softmax_last());
        self.graph.push_op(&[self], v, |ctx| {
            let logp = ctx.out_value().clone();
            let go = ctx.grad_out().clone();
            let d = *logp.shape().last().expect("log_softmax grad on 0-d tensor");
            let dx = ctx.grad_mut(0);
            for ((dx_row, lp_row), g_row) in
                dx.data_mut().chunks_mut(d).zip(logp.data().chunks(d)).zip(go.data().chunks(d))
            {
                let gsum: f32 = g_row.iter().sum();
                for ((o, &lp), &gi) in dx_row.iter_mut().zip(lp_row).zip(g_row) {
                    *o += gi - lp.exp() * gsum;
                }
            }
        })
    }

    /// Layer normalisation over the last axis with learned `gamma`/`beta`
    /// (both 1-D of the last-axis length).
    pub fn layer_norm(self, gamma: Var<'g>, beta: Var<'g>, eps: f32) -> Var<'g> {
        let d = *self.shape().last().expect("layer_norm on 0-d tensor");
        assert_eq!(gamma.shape(), vec![d], "gamma must be [{d}]");
        assert_eq!(beta.shape(), vec![d], "beta must be [{d}]");
        let v = self.graph.with_value(self, |x| {
            gamma.graph.with_value(gamma, |gm| {
                beta.graph.with_value(beta, |bt| {
                    let mut out = x.clone();
                    for row in out.data_mut().chunks_mut(d) {
                        let mean = row.iter().sum::<f32>() / d as f32;
                        let var =
                            row.iter().map(|&x| (x - mean) * (x - mean)).sum::<f32>() / d as f32;
                        let inv = 1.0 / (var + eps).sqrt();
                        for (i, r) in row.iter_mut().enumerate() {
                            *r = (*r - mean) * inv * gm.data()[i] + bt.data()[i];
                        }
                    }
                    out
                })
            })
        });
        self.graph.push_op(&[self, gamma, beta], v, move |ctx| {
            let x = ctx.value(0).clone();
            let gm = ctx.value(1).clone();
            let go = ctx.grad_out().clone();
            let rows = x.len() / d;
            // Recompute per-row statistics (cheaper than caching for the
            // small feature dims used in this workspace).
            let mut dgamma = vec![0.0f32; d];
            let mut dbeta = vec![0.0f32; d];
            {
                let dx = ctx.grad_mut(0);
                for r in 0..rows {
                    let xr = &x.data()[r * d..(r + 1) * d];
                    let gr = &go.data()[r * d..(r + 1) * d];
                    let mean = xr.iter().sum::<f32>() / d as f32;
                    let var = xr.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / d as f32;
                    let inv = 1.0 / (var + eps).sqrt();
                    // xhat_i = (x_i - mean) * inv
                    // dxhat_i = g_i * gamma_i
                    let mut sum_dxhat = 0.0f32;
                    let mut sum_dxhat_xhat = 0.0f32;
                    for i in 0..d {
                        let xhat = (xr[i] - mean) * inv;
                        let dxhat = gr[i] * gm.data()[i];
                        sum_dxhat += dxhat;
                        sum_dxhat_xhat += dxhat * xhat;
                        dgamma[i] += gr[i] * xhat;
                        dbeta[i] += gr[i];
                    }
                    let dxr = &mut dx.data_mut()[r * d..(r + 1) * d];
                    for i in 0..d {
                        let xhat = (xr[i] - mean) * inv;
                        let dxhat = gr[i] * gm.data()[i];
                        dxr[i] +=
                            inv * (dxhat - sum_dxhat / d as f32 - xhat * sum_dxhat_xhat / d as f32);
                    }
                }
            }
            for (o, g) in ctx.grad_mut(1).data_mut().iter_mut().zip(&dgamma) {
                *o += g;
            }
            for (o, g) in ctx.grad_mut(2).data_mut().iter_mut().zip(&dbeta) {
                *o += g;
            }
        })
    }

    /// Inverted dropout.  When `training` is false this is the identity.
    /// The Bernoulli mask is drawn from `rng` at op-construction time so the
    /// forward value and backward routing agree.
    pub fn dropout<R: rand::Rng + ?Sized>(self, p: f32, training: bool, rng: &mut R) -> Var<'g> {
        assert!((0.0..1.0).contains(&p), "dropout p must be in [0,1), got {p}");
        if !training || p == 0.0 {
            return self;
        }
        let keep = 1.0 - p;
        let n = self.graph.with_value(self, |t| t.len());
        let mask: Vec<f32> =
            (0..n).map(|_| if rng.random::<f32>() < keep { 1.0 / keep } else { 0.0 }).collect();
        let v = self.graph.with_value(self, |t| {
            let mut out = t.clone();
            for (o, &m) in out.data_mut().iter_mut().zip(&mask) {
                *o *= m;
            }
            out
        });
        self.graph.push_op(&[self], v, move |ctx| {
            let go = ctx.grad_out().clone();
            let dx = ctx.grad_mut(0);
            for ((o, &g), &m) in dx.data_mut().iter_mut().zip(go.data()).zip(&mask) {
                *o += g * m;
            }
        })
    }

    /// Add a constant bias tensor broadcast over the leading axis:
    /// `self: [B, ...rest]`, `mask: [...rest]`.  No gradient flows into the
    /// mask (it is plain data, e.g. a causal attention mask).
    pub fn add_mask_bcast(self, mask: &Tensor) -> Var<'g> {
        let shape = self.shape();
        let rest: usize = mask.len();
        assert!(
            !shape.is_empty() && shape.iter().skip(1).product::<usize>() == rest,
            "mask shape {:?} does not match trailing axes of {:?}",
            mask.shape(),
            shape
        );
        let mask_data = mask.data().to_vec();
        let v = self.graph.with_value(self, |t| {
            let mut out = t.clone();
            for chunk in out.data_mut().chunks_mut(rest) {
                for (o, &m) in chunk.iter_mut().zip(&mask_data) {
                    *o += m;
                }
            }
            out
        });
        self.graph.push_op(&[self], v, |ctx| {
            let go = ctx.grad_out().clone();
            ctx.accumulate(0, &go);
        })
    }

    /// Fused softmax cross-entropy over the last axis of a 2-D logits
    /// tensor `[N, V]`, with integer `targets` (length `N`).  Positions
    /// whose target equals `ignore_index` contribute neither loss nor
    /// gradient.  Returns the mean loss over non-ignored rows (scalar).
    pub fn cross_entropy(self, targets: &[usize], ignore_index: usize) -> Var<'g> {
        let shape = self.shape();
        assert_eq!(shape.len(), 2, "cross_entropy expects 2-D logits, got {shape:?}");
        let (n, v_dim) = (shape[0], shape[1]);
        assert_eq!(targets.len(), n, "targets length must equal logits rows");
        let tg: Vec<usize> = targets.to_vec();
        let count = tg.iter().filter(|&&t| t != ignore_index).count().max(1);

        let value = self.graph.with_value(self, |logits| {
            let mut loss = 0.0f64;
            for (row, &t) in logits.data().chunks(v_dim).zip(&tg) {
                if t == ignore_index {
                    continue;
                }
                assert!(t < v_dim, "target {t} out of vocabulary {v_dim}");
                let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
                let lse = m + row.iter().map(|&x| (x - m).exp()).sum::<f32>().ln();
                loss += f64::from(lse - row[t]);
            }
            Tensor::scalar((loss / count as f64) as f32)
        });

        self.graph.push_op(&[self], value, move |ctx| {
            let g = ctx.grad_out().item() / count as f32;
            let logits = ctx.value(0).clone();
            let dx = ctx.grad_mut(0);
            for ((dx_row, row), &t) in
                dx.data_mut().chunks_mut(v_dim).zip(logits.data().chunks(v_dim)).zip(&tg)
            {
                if t == ignore_index {
                    continue;
                }
                let mut probs = row.to_vec();
                softmax_in_place(&mut probs);
                for (i, (o, &p)) in dx_row.iter_mut().zip(&probs).enumerate() {
                    let indicator = if i == t { 1.0 } else { 0.0 };
                    *o += g * (p - indicator);
                }
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use crate::gradcheck::check_gradients;
    use crate::graph::Graph;
    use crate::tensor::Tensor;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(2024)
    }

    #[test]
    fn softmax_grad() {
        let x = Tensor::randn(&[3, 5], 1.0, &mut rng());
        check_gradients(&[x], |_g, vars| {
            let y = vars[0].softmax_last();
            // Weighted sum to produce asymmetric upstream gradients.
            let w = Tensor::from_fn(&[3, 5], |i| (i as f32 * 0.37).sin());
            let wv = vars[0].graph().constant(w);
            y.mul(wv).sum_all()
        });
    }

    #[test]
    fn log_softmax_grad() {
        let x = Tensor::randn(&[2, 7], 1.0, &mut rng());
        check_gradients(&[x], |_g, vars| {
            let y = vars[0].log_softmax_last();
            let w = Tensor::from_fn(&[2, 7], |i| ((i * i) as f32 * 0.11).cos());
            let wv = vars[0].graph().constant(w);
            y.mul(wv).sum_all()
        });
    }

    #[test]
    fn layer_norm_output_is_normalised() {
        let g = Graph::new();
        let x = g.var(Tensor::randn(&[4, 8], 3.0, &mut rng()), true);
        let gamma = g.var(Tensor::ones(&[8]), true);
        let beta = g.var(Tensor::zeros(&[8]), true);
        let y = x.layer_norm(gamma, beta, 1e-5);
        for row in y.value().data().chunks(8) {
            let mean: f32 = row.iter().sum::<f32>() / 8.0;
            let var: f32 = row.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / 8.0;
            assert!(mean.abs() < 1e-4, "mean {mean}");
            assert!((var - 1.0).abs() < 1e-2, "var {var}");
        }
    }

    #[test]
    fn layer_norm_grad() {
        let x = Tensor::randn(&[3, 6], 1.0, &mut rng());
        let gamma = Tensor::rand_uniform(&[6], 0.5, 1.5, &mut rng());
        let beta = Tensor::randn(&[6], 0.3, &mut rng());
        check_gradients(&[x, gamma, beta], |_g, vars| {
            let y = vars[0].layer_norm(vars[1], vars[2], 1e-5);
            let w = Tensor::from_fn(&[3, 6], |i| (i as f32 * 0.71).sin());
            let wv = vars[0].graph().constant(w);
            y.mul(wv).sum_all()
        });
    }

    #[test]
    fn dropout_eval_is_identity_and_train_scales() {
        let g = Graph::new();
        let x = g.var(Tensor::ones(&[1000]), true);
        let mut r = rng();
        let eval = x.dropout(0.5, false, &mut r);
        assert_eq!(eval.value().data(), x.value().data());

        let train = x.dropout(0.5, true, &mut r);
        let vals = train.value();
        let kept = vals.data().iter().filter(|&&v| v > 0.0).count();
        // Inverted dropout: kept values are scaled by 2.
        assert!(vals.data().iter().all(|&v| v == 0.0 || (v - 2.0).abs() < 1e-6));
        assert!((400..600).contains(&kept), "kept {kept}");
    }

    #[test]
    fn dropout_backward_respects_mask() {
        let g = Graph::new();
        let x = g.var(Tensor::ones(&[64]), true);
        let mut r = rng();
        let y = x.dropout(0.25, true, &mut r);
        let loss = y.sum_all();
        g.backward(loss);
        let dx = g.grad(x).unwrap();
        let fwd = y.value();
        for (gv, fv) in dx.data().iter().zip(fwd.data()) {
            assert_eq!(gv, fv, "grad must equal mask value for linear loss");
        }
    }

    #[test]
    fn add_mask_bcast_values() {
        let g = Graph::new();
        let x = g.var(Tensor::zeros(&[2, 2, 2]), true);
        let mask = Tensor::from_vec(vec![0.0, -1.0, 2.0, 0.5], &[2, 2]);
        let y = x.add_mask_bcast(&mask);
        assert_eq!(y.value().data(), &[0.0, -1.0, 2.0, 0.5, 0.0, -1.0, 2.0, 0.5]);
    }

    #[test]
    fn cross_entropy_matches_manual_nll() {
        let g = Graph::new();
        let logits = Tensor::from_vec(vec![1.0, 2.0, 0.5, -0.5, 0.0, 3.0], &[2, 3]);
        let x = g.var(logits.clone(), true);
        let loss = x.cross_entropy(&[1, 2], usize::MAX);
        let lp = logits.log_softmax_last();
        let manual = -(lp.at(&[0, 1]) + lp.at(&[1, 2])) / 2.0;
        assert!((loss.item() - manual).abs() < 1e-5);
    }

    #[test]
    fn cross_entropy_ignores_padding_rows() {
        let g = Graph::new();
        let logits = Tensor::from_vec(vec![1.0, 2.0, 0.5, 9.0, -3.0, 0.1], &[2, 3]);
        let x = g.var(logits.clone(), true);
        const PAD: usize = 7;
        let loss = x.cross_entropy(&[1, PAD], PAD);
        let lp = logits.log_softmax_last();
        assert!((loss.item() + lp.at(&[0, 1])).abs() < 1e-5);
        g.backward(loss);
        let dx = g.grad(x).unwrap();
        // Ignored row receives zero gradient.
        assert_eq!(&dx.data()[3..6], &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn cross_entropy_gradcheck() {
        let logits = Tensor::randn(&[4, 5], 1.0, &mut rng());
        check_gradients(&[logits], |_g, vars| vars[0].cross_entropy(&[0, 3, 2, 4], usize::MAX));
    }

    #[test]
    fn cross_entropy_gradcheck_with_ignore() {
        let logits = Tensor::randn(&[4, 5], 1.0, &mut rng());
        check_gradients(&[logits], |_g, vars| vars[0].cross_entropy(&[0, 9, 2, 9], 9));
    }
}
