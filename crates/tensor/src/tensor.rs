//! The dense tensor type, its strided zero-copy views and its
//! non-differentiable kernels.

use std::fmt;
use std::sync::Arc;

/// Error type for fallible tensor constructors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// Data length does not match the product of the shape dimensions.
    ShapeMismatch { expected: usize, got: usize },
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::ShapeMismatch { expected, got } => {
                write!(f, "shape requires {expected} elements but data has {got}")
            }
        }
    }
}

impl std::error::Error for TensorError {}

/// Maximum number of `(len, stride)` iteration dims a view carries.  Four
/// covers every layout the workspace produces (the head-split view factors
/// its fused `B*H` axis into two dims); the array is fixed-size so view
/// construction allocates nothing.
pub const VIEW_MAX_DIMS: usize = 4;

/// Strided-view metadata: the element at logical row-major position
/// `(i_0, …, i_{n-1})` of the *iteration space* lives at storage index
/// `offset + Σ i_k · stride_k`.
///
/// The iteration space is the logical shape with at most one axis
/// *factored*: `split_heads` views a `[B, T, D]` buffer as logical
/// `[B*H, T, D/H]`, whose leading axis is not expressible as one
/// `(len, stride)` pair — it factors into `(B, T·D)` × `(H, D/H)`.
/// Iterating the dims in order therefore always yields elements in the
/// logical row-major order of the view's shape.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct ViewMeta {
    /// Storage index of the first logical element.
    pub offset: usize,
    /// Number of live entries in `dims`.
    pub ndims: u8,
    /// `(len, stride)` per iteration dim, outermost first.
    pub dims: [(usize, usize); VIEW_MAX_DIMS],
}

impl ViewMeta {
    fn iter_dims(&self) -> &[(usize, usize)] {
        &self.dims[..self.ndims as usize]
    }

    /// True when iterating the dims visits storage indices
    /// `offset, offset+1, …` without gaps (a pure reshape).
    pub fn is_contiguous(&self) -> bool {
        let mut expected = 1usize;
        for &(len, stride) in self.iter_dims().iter().rev() {
            if len > 1 && stride != expected {
                return false;
            }
            expected *= len;
        }
        true
    }
}

/// A row-major `f32` tensor over shared storage, optionally viewed through
/// strides.
///
/// Most tensors are *dense*: the storage is exactly the logical elements in
/// row-major order.  A tensor carrying a [`ViewMeta`] is a zero-copy
/// *view* — transpose / permute / head-split reinterpretations of another
/// tensor's buffer.  Dense accessors ([`Tensor::data`],
/// [`Tensor::data_mut`]) panic on views so layout-unaware code fails loudly
/// instead of misreading storage order; view consumers go through
/// [`Tensor::storage`] + [`Tensor::view_meta`] (stride-walking kernels) or
/// [`Tensor::contiguous`] (explicit materialisation).
///
/// Storage is reference-counted, so `clone` is cheap and views alias their
/// parent; [`Tensor::data_mut`] is copy-on-write (`Arc::make_mut`), which
/// preserves value semantics exactly.
///
/// All kernels assert shape compatibility with descriptive messages; the
/// workspace treats shape errors as programming bugs (like `ndarray` and
/// most ML runtimes do) rather than recoverable conditions.
#[derive(Clone)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Arc<Vec<f32>>,
    view: Option<ViewMeta>,
}

impl PartialEq for Tensor {
    /// Logical equality: same shape and the same elements in logical
    /// row-major order (a view equals its materialised counterpart).
    fn eq(&self, other: &Tensor) -> bool {
        if self.shape != other.shape {
            return false;
        }
        match (&self.view, &other.view) {
            (None, None) => self.data == other.data,
            _ => self.iter_logical().eq(other.iter_logical()),
        }
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{:?}", self.shape)?;
        if self.view.is_some() {
            write!(f, " (view)")?;
        }
        let n = numel(&self.shape);
        if n <= 16 && self.view.is_none() {
            write!(f, " {:?}", &self.data[..])
        } else {
            write!(f, " [{n} elements]")
        }
    }
}

/// Internal dense constructor (storage length must already match).
fn dense(shape: Vec<usize>, data: Vec<f32>) -> Tensor {
    debug_assert_eq!(numel(&shape), data.len());
    Tensor { shape, data: Arc::new(data), view: None }
}

/// Iterator over a tensor's elements in logical row-major order, walking
/// the view strides (odometer over the iteration dims).
struct LogicalIter<'a> {
    data: &'a [f32],
    dims: [(usize, usize); VIEW_MAX_DIMS],
    ndims: usize,
    idx: [usize; VIEW_MAX_DIMS],
    pos: usize,
    remaining: usize,
}

impl<'a> LogicalIter<'a> {
    fn new(t: &'a Tensor) -> Self {
        let (dims, ndims, offset) = match &t.view {
            Some(m) => (m.dims, m.ndims as usize, m.offset),
            None => {
                // Dense: one flat run.
                let mut dims = [(0usize, 0usize); VIEW_MAX_DIMS];
                dims[0] = (t.data.len(), 1);
                (dims, 1, 0)
            }
        };
        let remaining = numel(&t.shape);
        LogicalIter { data: &t.data, dims, ndims, idx: [0; VIEW_MAX_DIMS], pos: offset, remaining }
    }
}

impl Iterator for LogicalIter<'_> {
    type Item = f32;

    fn next(&mut self) -> Option<f32> {
        if self.remaining == 0 {
            return None;
        }
        let v = self.data[self.pos];
        self.remaining -= 1;
        // Odometer increment, innermost dim first.
        for d in (0..self.ndims).rev() {
            let (len, stride) = self.dims[d];
            self.idx[d] += 1;
            self.pos += stride;
            if self.idx[d] < len {
                break;
            }
            self.idx[d] = 0;
            self.pos -= len * stride;
        }
        Some(v)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl Tensor {
    // ------------------------------------------------------------------
    // Construction
    // ------------------------------------------------------------------

    /// A tensor filled with zeros.
    pub fn zeros(shape: &[usize]) -> Self {
        dense(shape.to_vec(), vec![0.0; numel(shape)])
    }

    /// A tensor filled with ones.
    pub fn ones(shape: &[usize]) -> Self {
        Self::full(shape, 1.0)
    }

    /// A tensor filled with `value`.
    pub fn full(shape: &[usize], value: f32) -> Self {
        dense(shape.to_vec(), vec![value; numel(shape)])
    }

    /// A scalar tensor (shape `[1]`).
    pub fn scalar(value: f32) -> Self {
        dense(vec![1], vec![value])
    }

    /// Build from a data vector; panics if the length does not match.
    pub fn from_vec(data: Vec<f32>, shape: &[usize]) -> Self {
        Self::try_from_vec(data, shape).expect("Tensor::from_vec")
    }

    /// Fallible variant of [`Tensor::from_vec`].
    pub fn try_from_vec(data: Vec<f32>, shape: &[usize]) -> Result<Self, TensorError> {
        let expected = numel(shape);
        if data.len() != expected {
            return Err(TensorError::ShapeMismatch { expected, got: data.len() });
        }
        Ok(dense(shape.to_vec(), data))
    }

    /// Build over an already-shared storage buffer (the graph buffer pool
    /// recycles whole `Arc`s so steady-state steps allocate neither data
    /// nor reference-count blocks).  Panics if the length does not match.
    pub fn from_shared(data: Arc<Vec<f32>>, shape: &[usize]) -> Self {
        assert_eq!(
            data.len(),
            numel(shape),
            "shape {shape:?} requires {} elements but storage has {}",
            numel(shape),
            data.len()
        );
        Tensor { shape: shape.to_vec(), data, view: None }
    }

    /// Build by evaluating `f` at each flat index.
    pub fn from_fn(shape: &[usize], mut f: impl FnMut(usize) -> f32) -> Self {
        let n = numel(shape);
        dense(shape.to_vec(), (0..n).map(&mut f).collect())
    }

    /// I.i.d. normal entries `N(0, std²)`.
    pub fn randn<R: rand::Rng + ?Sized>(shape: &[usize], std: f32, rng: &mut R) -> Self {
        Self::from_fn(shape, |_| crate::box_muller(rng) * std)
    }

    /// I.i.d. uniform entries in `[lo, hi)`.
    pub fn rand_uniform<R: rand::Rng + ?Sized>(
        shape: &[usize],
        lo: f32,
        hi: f32,
        rng: &mut R,
    ) -> Self {
        Self::from_fn(shape, |_| lo + (hi - lo) * rng.random::<f32>())
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// The shape.
    #[inline]
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Number of dimensions.
    #[inline]
    pub fn ndim(&self) -> usize {
        self.shape.len()
    }

    /// Total element count (logical — for a view this is the view's size,
    /// not the storage size).
    #[inline]
    pub fn len(&self) -> usize {
        match &self.view {
            None => self.data.len(),
            Some(_) => numel(&self.shape),
        }
    }

    /// True if the tensor has zero elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True when this tensor is a strided view over another tensor's
    /// storage (logical order ≠ storage order, or a sub-range).
    #[inline]
    pub fn is_view(&self) -> bool {
        self.view.is_some()
    }

    /// The view metadata, when this tensor is a view.
    #[inline]
    pub fn view_meta(&self) -> Option<&ViewMeta> {
        self.view.as_ref()
    }

    /// The raw shared storage buffer (full buffer, storage order).  Pair
    /// with [`Tensor::view_meta`] in stride-walking kernels.
    #[inline]
    pub fn storage(&self) -> &[f32] {
        &self.data
    }

    /// Immutable flat data of a **dense** tensor.  Panics on views: code
    /// that is not stride-aware must materialise via
    /// [`Tensor::contiguous`] first instead of silently misreading
    /// storage order.
    #[inline]
    pub fn data(&self) -> &[f32] {
        assert!(self.view.is_none(), "Tensor::data on a strided view (shape {:?})", self.shape);
        &self.data
    }

    /// Mutable flat data of a **dense** tensor (copy-on-write when the
    /// storage is shared with views or clones).  Panics on views.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        assert!(self.view.is_none(), "Tensor::data_mut on a strided view (shape {:?})", self.shape);
        let v: &mut Vec<f32> = Arc::make_mut(&mut self.data);
        v
    }

    /// Consume into the flat data vector (logical order; copies only when
    /// the storage is shared or viewed).
    pub fn into_vec(self) -> Vec<f32> {
        match self.view {
            Some(_) => self.contiguous().into_vec(),
            None => Arc::try_unwrap(self.data).unwrap_or_else(|a| (*a).clone()),
        }
    }

    /// Consume into the shared storage buffer (the graph pool recycles
    /// these whole, keeping the reference-count block alive).
    pub fn into_storage(self) -> Arc<Vec<f32>> {
        self.data
    }

    /// Iterate the elements in logical row-major order (works for dense
    /// tensors and views alike).
    pub fn iter_logical(&self) -> impl Iterator<Item = f32> + '_ {
        LogicalIter::new(self)
    }

    /// A dense tensor with this tensor's logical contents.  For dense
    /// tensors this is a cheap storage-sharing clone; for views it gathers
    /// the strided elements into `out` order — the explicit fallback for
    /// layouts no kernel can walk.
    pub fn contiguous(&self) -> Tensor {
        match &self.view {
            None => self.clone(),
            Some(_) => {
                let data: Vec<f32> = self.iter_logical().collect();
                dense(self.shape.clone(), data)
            }
        }
    }

    /// Like [`Tensor::contiguous`], but gathering into a caller-provided
    /// dense buffer (the graph pool's allocation-free materialisation
    /// path).  `out` must have the view's logical element count.
    pub fn contiguous_into(&self, out: &mut [f32]) {
        assert_eq!(out.len(), self.len(), "contiguous_into length mismatch");
        match &self.view {
            None => out.copy_from_slice(&self.data),
            Some(_) => {
                for (o, v) in out.iter_mut().zip(self.iter_logical()) {
                    *o = v;
                }
            }
        }
    }

    /// The single value of a scalar tensor.
    pub fn item(&self) -> f32 {
        assert_eq!(self.len(), 1, "Tensor::item on non-scalar shape {:?}", self.shape);
        match &self.view {
            None => self.data[0],
            Some(m) => self.data[m.offset],
        }
    }

    /// Element at a multi-dimensional index (view-aware).
    pub fn at(&self, idx: &[usize]) -> f32 {
        let flat = self.flat_index(idx);
        match &self.view {
            None => self.data[flat],
            Some(m) => {
                // Decompose the logical flat index over the iteration dims
                // (they enumerate logical row-major order by construction).
                let mut rem = flat;
                let mut pos = m.offset;
                for d in (0..m.ndims as usize).rev() {
                    let (len, stride) = m.dims[d];
                    pos += (rem % len) * stride;
                    rem /= len;
                }
                self.data[pos]
            }
        }
    }

    /// Mutable element at a multi-dimensional index (dense tensors only).
    pub fn at_mut(&mut self, idx: &[usize]) -> &mut f32 {
        assert!(self.view.is_none(), "Tensor::at_mut on a strided view");
        let i = self.flat_index(idx);
        &mut Arc::make_mut(&mut self.data)[i]
    }

    fn flat_index(&self, idx: &[usize]) -> usize {
        assert_eq!(idx.len(), self.shape.len(), "index rank mismatch");
        let mut flat = 0;
        for (d, (&i, &s)) in idx.iter().zip(&self.shape).enumerate() {
            assert!(i < s, "index {i} out of bounds for dim {d} of size {s}");
            flat = flat * s + i;
        }
        flat
    }

    /// Reinterpret with a new shape of identical element count.  Dense
    /// tensors share storage (zero-copy); views materialise first.
    pub fn reshaped(&self, shape: &[usize]) -> Tensor {
        assert_eq!(
            numel(shape),
            self.len(),
            "reshape from {:?} to {:?} changes element count",
            self.shape,
            shape
        );
        match &self.view {
            None => Tensor { shape: shape.to_vec(), data: Arc::clone(&self.data), view: None },
            Some(_) => {
                let mut t = self.contiguous();
                t.shape = shape.to_vec();
                t
            }
        }
    }

    /// In-place reshape (no data movement; dense tensors only).
    pub fn reshape_in_place(&mut self, shape: &[usize]) {
        assert!(self.view.is_none(), "reshape_in_place on a strided view");
        assert_eq!(
            numel(shape),
            self.data.len(),
            "reshape from {:?} to {:?} changes element count",
            self.shape,
            shape
        );
        self.shape = shape.to_vec();
    }

    // ------------------------------------------------------------------
    // Zero-copy strided views
    // ------------------------------------------------------------------

    /// Zero-copy 2-D transpose view: `[m, n] -> [n, m]` over the same
    /// storage.  No kernel walks this layout directly (the last axis is
    /// strided); consumers call [`Tensor::contiguous`].
    pub fn transpose2d_view(&self) -> Tensor {
        assert_eq!(self.ndim(), 2, "transpose2d_view needs 2-D, got {:?}", self.shape);
        assert!(self.view.is_none(), "transpose2d_view of a view: materialise first");
        let (m, n) = (self.shape[0], self.shape[1]);
        let mut dims = [(0usize, 0usize); VIEW_MAX_DIMS];
        dims[0] = (n, 1);
        dims[1] = (m, n);
        Tensor {
            shape: vec![n, m],
            data: Arc::clone(&self.data),
            view: Some(ViewMeta { offset: 0, ndims: 2, dims }),
        }
    }

    /// Zero-copy swap of the last two axes of a 3-D tensor:
    /// `[b, m, n] -> [b, n, m]` over the same storage.
    pub fn transpose_last2_view(&self) -> Tensor {
        assert_eq!(self.ndim(), 3, "transpose_last2_view needs 3-D, got {:?}", self.shape);
        assert!(self.view.is_none(), "transpose_last2_view of a view: materialise first");
        let (b, m, n) = (self.shape[0], self.shape[1], self.shape[2]);
        let mut dims = [(0usize, 0usize); VIEW_MAX_DIMS];
        dims[0] = (b, m * n);
        dims[1] = (n, 1);
        dims[2] = (m, n);
        Tensor {
            shape: vec![b, n, m],
            data: Arc::clone(&self.data),
            view: Some(ViewMeta { offset: 0, ndims: 3, dims }),
        }
    }

    /// Zero-copy axis permutation of a dense tensor (generalises the
    /// transpose views; up to `VIEW_MAX_DIMS` axes).
    pub fn permute_view(&self, perm: &[usize]) -> Tensor {
        assert!(self.view.is_none(), "permute_view of a view: materialise first");
        let nd = self.ndim();
        assert!(nd <= VIEW_MAX_DIMS, "permute_view supports up to {VIEW_MAX_DIMS} dims");
        assert_eq!(perm.len(), nd, "permutation rank mismatch");
        let mut seen = [false; VIEW_MAX_DIMS];
        for &p in perm {
            assert!(p < nd && !seen[p], "invalid permutation {perm:?}");
            seen[p] = true;
        }
        // Row-major strides of the source shape.
        let mut src_strides = [0usize; VIEW_MAX_DIMS];
        let mut acc = 1;
        for d in (0..nd).rev() {
            src_strides[d] = acc;
            acc *= self.shape[d];
        }
        let mut dims = [(0usize, 0usize); VIEW_MAX_DIMS];
        let mut shape = Vec::with_capacity(nd);
        for (d, &p) in perm.iter().enumerate() {
            dims[d] = (self.shape[p], src_strides[p]);
            shape.push(self.shape[p]);
        }
        Tensor {
            shape,
            data: Arc::clone(&self.data),
            view: Some(ViewMeta { offset: 0, ndims: nd as u8, dims }),
        }
    }

    /// Zero-copy attention head split: view a dense `[B, T, D]` tensor as
    /// `[B*H, T, D/H]` with head-major batch layout — the same logical
    /// contents `Var::split_heads` materialises, without the copy.  The
    /// leading logical axis factors into `(B, T·D) × (H, D/H)` iteration
    /// dims; rows of the view stay contiguous (`D/H` floats), which is
    /// what lets the attention kernels walk it directly.
    pub fn split_heads_view(&self, heads: usize) -> Tensor {
        assert_eq!(self.ndim(), 3, "split_heads_view needs 3-D, got {:?}", self.shape);
        assert!(self.view.is_none(), "split_heads_view of a view: materialise first");
        let (b, t, d) = (self.shape[0], self.shape[1], self.shape[2]);
        assert!(heads > 0 && d % heads == 0, "d={d} not divisible by heads={heads}");
        let dk = d / heads;
        let mut dims = [(0usize, 0usize); VIEW_MAX_DIMS];
        dims[0] = (b, t * d);
        dims[1] = (heads, dk);
        dims[2] = (t, d);
        dims[3] = (dk, 1);
        Tensor {
            shape: vec![b * heads, t, dk],
            data: Arc::clone(&self.data),
            view: Some(ViewMeta { offset: 0, ndims: 4, dims }),
        }
    }

    /// The batched-row layout of this tensor when a stride-walking kernel
    /// can consume it: a 3-D `[S, rows, rowlen]` iteration space whose
    /// rows are contiguous runs.  `None` for layouts with a strided last
    /// axis (transpose views) — callers fall back to
    /// [`Tensor::contiguous`].
    pub fn batch_layout(&self) -> Option<BatchLayout> {
        if self.ndim() != 3 {
            return None;
        }
        let (s, rows, rowlen) = (self.shape[0], self.shape[1], self.shape[2]);
        match &self.view {
            None => Some(BatchLayout {
                offset: 0,
                outer: s,
                inner: 1,
                outer_stride: rows * rowlen,
                inner_stride: 0,
                row_stride: rowlen,
            }),
            Some(m) => {
                let d = m.iter_dims();
                match d {
                    // Head-split form: (B, os) (H, is) (rows, rs) (rowlen, 1).
                    [(b, os), (h, is), (r, rs), (w, 1)]
                        if *b * *h == s && *r == rows && *w == rowlen =>
                    {
                        Some(BatchLayout {
                            offset: m.offset,
                            outer: *b,
                            inner: *h,
                            outer_stride: *os,
                            inner_stride: *is,
                            row_stride: *rs,
                        })
                    }
                    // Plain strided 3-D form with contiguous rows.
                    [(b, os), (r, rs), (w, 1)] if *b == s && *r == rows && *w == rowlen => {
                        Some(BatchLayout {
                            offset: m.offset,
                            outer: *b,
                            inner: 1,
                            outer_stride: *os,
                            inner_stride: 0,
                            row_stride: *rs,
                        })
                    }
                    _ => None,
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Elementwise kernels
    // ------------------------------------------------------------------

    /// Elementwise map into a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        dense(self.shape.clone(), self.data().iter().map(|&x| f(x)).collect())
    }

    /// Elementwise combine with another tensor of identical shape.
    pub fn zip_map(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
        assert_eq!(self.shape, other.shape, "zip_map shape mismatch");
        dense(
            self.shape.clone(),
            self.data().iter().zip(other.data()).map(|(&a, &b)| f(a, b)).collect(),
        )
    }

    /// `self + other`.
    pub fn add(&self, other: &Tensor) -> Tensor {
        self.zip_map(other, |a, b| a + b)
    }

    /// `self - other`.
    pub fn sub(&self, other: &Tensor) -> Tensor {
        self.zip_map(other, |a, b| a - b)
    }

    /// Hadamard product.
    pub fn mul(&self, other: &Tensor) -> Tensor {
        self.zip_map(other, |a, b| a * b)
    }

    /// `self * c`.
    pub fn scale(&self, c: f32) -> Tensor {
        self.map(|x| x * c)
    }

    /// `self += other` in place.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "add_assign shape mismatch");
        for (a, &b) in self.data_mut().iter_mut().zip(other.data()) {
            *a += b;
        }
    }

    /// `self += other` elementwise, ignoring shape metadata (element
    /// counts must match) — the backward of reshape-like ops.
    pub fn add_assign_flat(&mut self, other: &Tensor) {
        assert_eq!(self.len(), other.len(), "add_assign_flat length mismatch");
        for (a, &b) in self.data_mut().iter_mut().zip(other.data()) {
            *a += b;
        }
    }

    /// `self += c * other` in place (axpy).
    pub fn axpy(&mut self, c: f32, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "axpy shape mismatch");
        for (a, &b) in self.data_mut().iter_mut().zip(other.data()) {
            *a += c * b;
        }
    }

    /// Fill with zeros in place.
    pub fn zero_(&mut self) {
        self.data_mut().iter_mut().for_each(|x| *x = 0.0);
    }

    /// Sum of all entries.
    pub fn sum(&self) -> f32 {
        self.data().iter().sum()
    }

    /// Mean of all entries (0 for an empty tensor).
    pub fn mean(&self) -> f32 {
        if self.is_empty() {
            0.0
        } else {
            self.sum() / self.len() as f32
        }
    }

    /// Squared L2 norm.
    pub fn sq_norm(&self) -> f32 {
        self.data().iter().map(|x| x * x).sum()
    }

    // ------------------------------------------------------------------
    // Linear algebra
    // ------------------------------------------------------------------

    /// 2-D matrix multiply: `[m,k] @ [k,n] -> [m,n]`.
    ///
    /// Delegates to [`matmul_into`]: blocked `i-k-j` order (inner loop is an
    /// axpy over the output row which LLVM auto-vectorises), thread-parallel
    /// over row blocks for large shapes.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.ndim(), 2, "matmul lhs must be 2-D, got {:?}", self.shape);
        assert_eq!(other.ndim(), 2, "matmul rhs must be 2-D, got {:?}", other.shape);
        let (m, k) = (self.shape[0], self.shape[1]);
        let (k2, n) = (other.shape[0], other.shape[1]);
        assert_eq!(k, k2, "matmul inner dims differ: {:?} vs {:?}", self.shape, other.shape);
        let mut out = vec![0.0f32; m * n];
        matmul_into(self.data(), other.data(), &mut out, m, k, n);
        dense(vec![m, n], out)
    }

    /// Batched 3-D matmul: `[b,m,k] @ [b,k,n] -> [b,m,n]`.
    ///
    /// Independent batch slices fan out over threads when the total work is
    /// large enough to amortise the spawn cost (batched inference across
    /// many users); each slice runs the same serial kernel, so results are
    /// identical to the sequential loop.
    pub fn bmm(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.ndim(), 3, "bmm lhs must be 3-D, got {:?}", self.shape);
        assert_eq!(other.ndim(), 3, "bmm rhs must be 3-D, got {:?}", other.shape);
        let (b, m, k) = (self.shape[0], self.shape[1], self.shape[2]);
        let (b2, k2, n) = (other.shape[0], other.shape[1], other.shape[2]);
        assert_eq!(b, b2, "bmm batch dims differ");
        assert_eq!(k, k2, "bmm inner dims differ: {:?} vs {:?}", self.shape, other.shape);
        let mut out = vec![0.0f32; b * m * n];
        bmm_into(self.data(), other.data(), &mut out, b, m, k, n);
        dense(vec![b, m, n], out)
    }

    /// 2-D transpose.
    pub fn transpose2d(&self) -> Tensor {
        assert_eq!(self.ndim(), 2, "transpose2d needs 2-D, got {:?}", self.shape);
        let (m, n) = (self.shape[0], self.shape[1]);
        let mut out = vec![0.0f32; m * n];
        let data = self.data();
        for i in 0..m {
            for j in 0..n {
                out[j * m + i] = data[i * n + j];
            }
        }
        dense(vec![n, m], out)
    }

    /// Swap the last two axes of a 3-D tensor: `[b,m,n] -> [b,n,m]`.
    pub fn transpose_last2(&self) -> Tensor {
        assert_eq!(self.ndim(), 3, "transpose_last2 needs 3-D, got {:?}", self.shape);
        let (b, m, n) = (self.shape[0], self.shape[1], self.shape[2]);
        let mut out = vec![0.0f32; b * m * n];
        let data = self.data();
        for i in 0..b {
            let src = &data[i * m * n..(i + 1) * m * n];
            let dst = &mut out[i * m * n..(i + 1) * m * n];
            for r in 0..m {
                for c in 0..n {
                    dst[c * m + r] = src[r * n + c];
                }
            }
        }
        dense(vec![b, n, m], out)
    }

    // ------------------------------------------------------------------
    // Softmax-family kernels (forward only; differentiable wrappers live
    // in the autograd ops modules)
    // ------------------------------------------------------------------

    /// Softmax along the last axis (numerically stable).
    pub fn softmax_last(&self) -> Tensor {
        let mut out = self.clone();
        out.softmax_last_in_place();
        out
    }

    /// In-place variant of [`Tensor::softmax_last`] — the inference path
    /// normalises attention rows without an intermediate allocation, using
    /// the identical per-row kernel.
    pub fn softmax_last_in_place(&mut self) {
        let d = *self.shape.last().expect("softmax on 0-d tensor");
        assert!(d > 0, "softmax over empty last axis");
        for row in self.data_mut().chunks_mut(d) {
            softmax_in_place(row);
        }
    }

    /// Log-softmax along the last axis (numerically stable).
    pub fn log_softmax_last(&self) -> Tensor {
        let d = *self.shape.last().expect("log_softmax on 0-d tensor");
        assert!(d > 0, "log_softmax over empty last axis");
        let mut out = self.data().to_vec();
        for row in out.chunks_mut(d) {
            let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let lse = m + row.iter().map(|&x| (x - m).exp()).sum::<f32>().ln();
            row.iter_mut().for_each(|x| *x -= lse);
        }
        dense(self.shape.clone(), out)
    }

    /// Select timestep `t` from a `[B, T, D]` tensor -> `[B, D]` (the
    /// value-level mirror of `Var::select_step`).
    pub fn select_step(&self, t: usize) -> Tensor {
        assert_eq!(self.ndim(), 3, "select_step needs 3-D, got {:?}", self.shape);
        let (b, tt, d) = (self.shape[0], self.shape[1], self.shape[2]);
        assert!(t < tt, "select_step index {t} out of bounds for T={tt}");
        let data = self.data();
        let mut out = Vec::with_capacity(b * d);
        for bi in 0..b {
            out.extend_from_slice(&data[bi * tt * d + t * d..bi * tt * d + (t + 1) * d]);
        }
        dense(vec![b, d], out)
    }

    /// Gather rows of a 2-D tensor: `self[indices, :]`.
    pub fn gather_rows(&self, indices: &[usize]) -> Tensor {
        assert_eq!(self.ndim(), 2, "gather_rows needs 2-D, got {:?}", self.shape);
        let (rows, d) = (self.shape[0], self.shape[1]);
        let data = self.data();
        let mut out = Vec::with_capacity(indices.len() * d);
        for &i in indices {
            assert!(i < rows, "gather_rows index {i} out of bounds ({rows} rows)");
            out.extend_from_slice(&data[i * d..(i + 1) * d]);
        }
        dense(vec![indices.len(), d], out)
    }

    /// Unfold sliding windows of width `w` along the time axis:
    /// `[B, T, D] -> [B, T-w+1, w*D]` — the value-level mirror of
    /// `Var::unfold_windows` (Caser's im2col step).
    pub fn unfold_windows(&self, w: usize) -> Tensor {
        assert_eq!(self.ndim(), 3, "unfold_windows needs 3-D, got {:?}", self.shape);
        let (b, t, d) = (self.shape[0], self.shape[1], self.shape[2]);
        assert!(w >= 1 && w <= t, "window width {w} out of range for T={t}");
        let windows = t - w + 1;
        let data = self.data();
        let mut out = vec![0.0f32; b * windows * w * d];
        for bi in 0..b {
            for s in 0..windows {
                let dst = bi * windows * w * d + s * w * d;
                let src = bi * t * d + s * d;
                out[dst..dst + w * d].copy_from_slice(&data[src..src + w * d]);
            }
        }
        dense(vec![b, windows, w * d], out)
    }

    /// Concatenate along the last axis — the value-level mirror of
    /// `Var::concat_last`.  All inputs must agree on the leading axes.
    pub fn concat_last(parts: &[&Tensor]) -> Tensor {
        assert!(!parts.is_empty(), "concat_last of zero tensors");
        let lead = &parts[0].shape[..parts[0].shape.len() - 1];
        for p in parts {
            assert_eq!(
                &p.shape[..p.shape.len() - 1],
                lead,
                "concat_last leading axes differ: {:?}",
                parts.iter().map(|p| &p.shape).collect::<Vec<_>>()
            );
        }
        let widths: Vec<usize> = parts.iter().map(|p| *p.shape.last().unwrap()).collect();
        let total_w: usize = widths.iter().sum();
        let rows: usize = lead.iter().product();
        let mut out_shape = lead.to_vec();
        out_shape.push(total_w);
        let mut data = vec![0.0f32; rows * total_w];
        for r in 0..rows {
            let mut off = 0;
            for (p, &w) in parts.iter().zip(&widths) {
                data[r * total_w + off..r * total_w + off + w]
                    .copy_from_slice(&p.data()[r * w..(r + 1) * w]);
                off += w;
            }
        }
        dense(out_shape, data)
    }
}

/// Softmax of one row, in place and numerically stable.
pub(crate) fn softmax_in_place(row: &mut [f32]) {
    let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0;
    for x in row.iter_mut() {
        *x = (*x - m).exp();
        sum += *x;
    }
    if sum > 0.0 {
        let inv = 1.0 / sum;
        row.iter_mut().for_each(|x| *x *= inv);
    } else {
        // All entries were -inf; fall back to uniform to avoid NaN.
        let u = 1.0 / row.len() as f32;
        row.iter_mut().for_each(|x| *x = u);
    }
}

/// Tile height over the inner (`k`) axis: one tile of `b` (`K_BLOCK × n`
/// floats) stays cache-resident while it is streamed against every row of
/// `a`.
const K_BLOCK: usize = 64;

/// Panel width of the packed-B kernel: 8 `f32`s — two baseline-SSE2
/// registers (rustc's default x86-64 target) or one AVX2 register, a
/// width LLVM reliably vectorises without spilling.
const NR: usize = 8;

/// Row-tile height of the packed-B kernel: accumulators for `MR × NR`
/// outputs live in registers across the whole `k` loop (`MR·NR/4 = 8`
/// SSE2 registers, leaving half the file for the B panel row and the
/// broadcast A element).
const MR: usize = 4;

/// Minimum B-operand element count (`k·n`) before the packed kernel wins:
/// once B outgrows the fast cache levels (2¹⁷ `f32`s = 512 KiB), the
/// plain kernel's repeated `K_BLOCK × n` tile streaming pays per row of A
/// while the packed panels stay L1-resident per `MR` rows.  Below this
/// the plain kernel runs at SIMD peak and the repack is pure overhead
/// (measured: `cargo bench -p irs_bench --bench tensor_ops`,
/// `matmul_kernel/*`).
const PACK_MIN_KN: usize = 1 << 17;

/// Minimum multiply-accumulate count before a matmul fans out over threads;
/// below this the spawn/join overhead outweighs the parallel speed-up.
const PAR_MIN_WORK: usize = 1 << 19;

/// Kernel worker-thread override: 0 = automatic (work- and core-based).
/// Settable via [`set_kernel_threads`] or the `IRS_KERNEL_THREADS`
/// environment variable; every kernel is bitwise-deterministic at any
/// thread count, so the override only affects scheduling — determinism
/// tests use it to exercise the parallel code paths on any host.
static KERNEL_THREADS: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);
static KERNEL_THREADS_INIT: std::sync::Once = std::sync::Once::new();

/// Force every tensor kernel to fan out over exactly `n` worker threads
/// (`None` restores automatic selection).  Results are bitwise identical
/// either way; this is a scheduling knob, not a numerics knob.
pub fn set_kernel_threads(n: Option<usize>) {
    // Mark the env default as consumed so an explicit call always wins.
    KERNEL_THREADS_INIT.call_once(|| {});
    KERNEL_THREADS.store(n.unwrap_or(0), std::sync::atomic::Ordering::Relaxed);
}

fn kernel_threads_override() -> usize {
    KERNEL_THREADS_INIT.call_once(|| {
        if let Some(n) =
            std::env::var("IRS_KERNEL_THREADS").ok().and_then(|v| v.parse::<usize>().ok())
        {
            KERNEL_THREADS.store(n, std::sync::atomic::Ordering::Relaxed);
        }
    });
    KERNEL_THREADS.load(std::sync::atomic::Ordering::Relaxed)
}

/// Worker-thread count for a kernel of `work` multiply-accumulates: 1 when
/// the problem is small or the host is single-core, otherwise capped so
/// every thread keeps at least `PAR_MIN_WORK` MACs.
fn parallelism_for(work: usize) -> usize {
    let forced = kernel_threads_override();
    if forced > 0 {
        return forced.min(16);
    }
    if work < 2 * PAR_MIN_WORK {
        return 1;
    }
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    cores.min(work / PAR_MIN_WORK).min(16)
}

/// `out += a @ b` where `a` is `m×k`, `b` is `k×n`, `out` is `m×n` (zeroed
/// by the caller).
///
/// Dispatch layer over two serial kernels, both thread-parallel over row
/// blocks for large shapes (`std::thread::scope`, no dependencies):
///
/// * [`matmul_into_plain`] — `K_BLOCK`-tiled `i-k-j` loop, no setup cost;
///   runs at SIMD peak while its B tiles stay cache-resident, so it is
///   chosen for every model-sized shape.
/// * [`matmul_into_packed`] — A and B repacked once per call (B into
///   contiguous `NR`-wide block-major panels, A row blocks transposed to
///   step-major), then an `MR × NR` register-tiled kernel streams the
///   panels; chosen when the B operand outgrows the fast caches and the
///   plain kernel turns memory-bound.
///
/// Every output element accumulates its `k` products in increasing-`k`
/// order regardless of kernel, blocking or threading, so results are
/// bitwise identical to the naive `i-k-j` loop — batched forwards
/// reproduce scalar forwards exactly even when dispatch picks different
/// kernels for the batched and scalar shapes.
pub fn matmul_into(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    if should_pack(m, k, n) {
        matmul_into_packed(a, b, out, m, k, n);
    } else {
        matmul_into_plain(a, b, out, m, k, n);
    }
}

/// True when the packed-B kernel's repack pass (`k·n` copies plus panel
/// zero-padding) is amortised: enough rows to reuse each panel, at least
/// one full panel of columns, and a B operand big enough that the plain
/// kernel's tile streaming falls out of cache.
fn should_pack(m: usize, k: usize, n: usize) -> bool {
    m >= 2 * MR && n >= NR && k * n >= PACK_MIN_KN
}

/// Plain blocked `out += a @ b`: `K_BLOCK`-tiled serial kernel, rows fanned
/// out over threads for large shapes.
pub fn matmul_into_plain(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    let threads = parallelism_for(m * k * n).min(m);
    if threads > 1 {
        let rows_per = m.div_ceil(threads);
        std::thread::scope(|scope| {
            for (chunk_idx, out_chunk) in out.chunks_mut(rows_per * n).enumerate() {
                let row0 = chunk_idx * rows_per;
                let rows = out_chunk.len() / n;
                let a_chunk = &a[row0 * k..(row0 + rows) * k];
                scope.spawn(move || matmul_block(a_chunk, b, out_chunk, rows, k, n));
            }
        });
    } else {
        matmul_block(a, b, out, m, k, n);
    }
}

/// Packed-B `out += a @ b`: B is repacked once into block-major panels,
/// then every row block streams the packed buffer with the register-tiled
/// kernel.  Threads share the one packed copy.
pub fn matmul_into_packed(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    let packed = pack_b(b, k, n);
    let threads = parallelism_for(m * k * n).min(m);
    if threads > 1 {
        let rows_per = m.div_ceil(threads);
        let packed = &packed;
        std::thread::scope(|scope| {
            for (chunk_idx, out_chunk) in out.chunks_mut(rows_per * n).enumerate() {
                let row0 = chunk_idx * rows_per;
                let rows = out_chunk.len() / n;
                let a_chunk = &a[row0 * k..(row0 + rows) * k];
                scope.spawn(move || matmul_block_packed(a_chunk, packed, out_chunk, rows, k, n));
            }
        });
    } else {
        matmul_block_packed(a, &packed, out, m, k, n);
    }
}

/// Repack `b` (`k×n`, row-major) into `NR`-wide block-major panels: panel
/// `pi` holds columns `pi·NR .. pi·NR+NR` contiguously per `k` row, so the
/// packed kernel's inner loop reads `NR` consecutive floats instead of
/// striding by `n`.  The ragged last panel is zero-padded — padding lanes
/// multiply into accumulators that are never written back.
fn pack_b(b: &[f32], k: usize, n: usize) -> Vec<f32> {
    let panels = n.div_ceil(NR);
    let mut packed = vec![0.0f32; panels * k * NR];
    for pi in 0..panels {
        let j0 = pi * NR;
        let w = NR.min(n - j0);
        let base = pi * k * NR;
        for p in 0..k {
            packed[base + p * NR..base + p * NR + w]
                .copy_from_slice(&b[p * n + j0..p * n + j0 + w]);
        }
    }
    packed
}

/// Register-tiled serial kernel over packed panels: for each `MR × NR`
/// output tile the accumulators stay in registers across the whole `k`
/// loop.  Per output element the `k` products are added in increasing
/// order with the same skip-zero-`a` rule as [`matmul_block`], so results
/// are bitwise identical to the plain kernel.
///
/// Full tiles and ragged remainder rows run through separate helpers with
/// compile-time loop bounds — a runtime row count would stop LLVM from
/// unrolling the row loop and keeping the accumulators in registers.
fn matmul_block_packed(a: &[f32], packed: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    let panels = n.div_ceil(NR);
    // A row blocks transposed once to [k, MR] so each step's multipliers
    // are contiguous; reused across every panel.
    let full_tiles = m / MR;
    let mut at = vec![0.0f32; full_tiles * k * MR];
    for ti in 0..full_tiles {
        let block = &mut at[ti * k * MR..(ti + 1) * k * MR];
        for r in 0..MR {
            for (p, chunk) in block.chunks_exact_mut(MR).enumerate() {
                chunk[r] = a[(ti * MR + r) * k + p];
            }
        }
    }
    for pi in 0..panels {
        let j0 = pi * NR;
        let w = NR.min(n - j0);
        let bp = &packed[pi * k * NR..(pi + 1) * k * NR];
        let mut i = 0;
        for ti in 0..full_tiles {
            let g = TileGeom { i, k, n, j0, w };
            packed_tile_full(&at[ti * k * MR..(ti + 1) * k * MR], bp, out, g);
            i += MR;
        }
        while i < m {
            packed_tile_row(a, bp, out, TileGeom { i, k, n, j0, w });
            i += 1;
        }
    }
}

/// Geometry of one packed-kernel tile: first output row `i`, operand
/// dims `k`/`n`, panel column origin `j0` and live panel width `w`.
#[derive(Clone, Copy)]
struct TileGeom {
    i: usize,
    k: usize,
    n: usize,
    j0: usize,
    w: usize,
}

/// One full `MR × NR` tile of the packed kernel (fixed loop bounds).
///
/// `at` is the row block's A transposed to `[k, MR]` (see
/// [`matmul_block_packed`]) so the `MR` multipliers of step `p` sit in one
/// cache line.  The common all-multipliers-nonzero case runs one branch
/// per `p` followed by straight-line `MR × NR` updates; the rare path
/// applies the per-element skip-zero rule exactly like [`matmul_block`].
#[inline]
fn packed_tile_full(at: &[f32], bp: &[f32], out: &mut [f32], g: TileGeom) {
    let TileGeom { i, k, n, j0, w } = g;
    let mut acc = [[0.0f32; NR]; MR];
    for (r, acc_row) in acc.iter_mut().enumerate() {
        acc_row[..w].copy_from_slice(&out[(i + r) * n + j0..(i + r) * n + j0 + w]);
    }
    for p in 0..k {
        let brow: &[f32; NR] = bp[p * NR..(p + 1) * NR].try_into().expect("panel row");
        let arow: &[f32; MR] = at[p * MR..(p + 1) * MR].try_into().expect("a tile row");
        if arow.iter().all(|&v| v != 0.0) {
            for (acc_row, &a_ip) in acc.iter_mut().zip(arow) {
                for (o, &b_pj) in acc_row.iter_mut().zip(brow) {
                    *o += a_ip * b_pj;
                }
            }
        } else {
            for (acc_row, &a_ip) in acc.iter_mut().zip(arow) {
                if a_ip == 0.0 {
                    continue;
                }
                for (o, &b_pj) in acc_row.iter_mut().zip(brow) {
                    *o += a_ip * b_pj;
                }
            }
        }
    }
    for (r, acc_row) in acc.iter().enumerate() {
        out[(i + r) * n + j0..(i + r) * n + j0 + w].copy_from_slice(&acc_row[..w]);
    }
}

/// One remainder row of the packed kernel (`m % MR` trailing rows).
#[inline]
fn packed_tile_row(a: &[f32], bp: &[f32], out: &mut [f32], g: TileGeom) {
    let TileGeom { i, k, n, j0, w } = g;
    let mut acc = [0.0f32; NR];
    acc[..w].copy_from_slice(&out[i * n + j0..i * n + j0 + w]);
    for p in 0..k {
        let a_ip = a[i * k + p];
        if a_ip == 0.0 {
            continue;
        }
        let brow: &[f32; NR] = bp[p * NR..(p + 1) * NR].try_into().expect("panel row");
        for (o, &b_pj) in acc.iter_mut().zip(brow) {
            *o += a_ip * b_pj;
        }
    }
    out[i * n + j0..i * n + j0 + w].copy_from_slice(&acc[..w]);
}

/// Serial per-slice dispatch used by [`Tensor::bmm`]: each batch slice has
/// its own `b`, so the packed kernel repacks per slice — worth it only
/// when that slice's `m` rows amortise the pass.
fn matmul_slice(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    if should_pack(m, k, n) {
        let packed = pack_b(b, k, n);
        matmul_block_packed(a, &packed, out, m, k, n);
    } else {
        matmul_block(a, b, out, m, k, n);
    }
}

/// Serial blocked kernel: `out += a @ b` with `K_BLOCK`-tall tiles of `b`
/// reused across all rows of `a`.  Per output element the `k` loop still
/// runs in increasing order (tiles are visited in order, rows within a tile
/// in order), preserving bitwise results.
fn matmul_block(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    let mut kb = 0;
    while kb < k {
        let kend = (kb + K_BLOCK).min(k);
        for i in 0..m {
            let a_row = &a[i * k..(i + 1) * k];
            let out_row = &mut out[i * n..(i + 1) * n];
            for p in kb..kend {
                let a_ip = a_row[p];
                if a_ip == 0.0 {
                    continue;
                }
                let b_row = &b[p * n..(p + 1) * n];
                for (o, &b_pj) in out_row.iter_mut().zip(b_row) {
                    *o += a_ip * b_pj;
                }
            }
        }
        kb = kend;
    }
}

/// Batched `out += a @ b` over `bt` independent `[m,k] @ [k,n]` slices —
/// the kernel behind [`Tensor::bmm`], exposed so graph ops can run it
/// into pooled buffers.  Slices fan out over threads when the total work
/// amortises the spawn cost; each slice runs the same serial dispatch, so
/// results are identical to the sequential loop.
pub fn bmm_into(a: &[f32], b: &[f32], out: &mut [f32], bt: usize, m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), bt * m * k);
    debug_assert_eq!(b.len(), bt * k * n);
    debug_assert_eq!(out.len(), bt * m * n);
    let threads = parallelism_for(bt * m * k * n).min(bt.max(1));
    if threads > 1 {
        let per = bt.div_ceil(threads);
        std::thread::scope(|scope| {
            for (chunk_idx, out_chunk) in out.chunks_mut(per * m * n).enumerate() {
                let b0 = chunk_idx * per;
                scope.spawn(move || {
                    for (j, o) in out_chunk.chunks_mut(m * n).enumerate() {
                        let i = b0 + j;
                        matmul_slice(
                            &a[i * m * k..(i + 1) * m * k],
                            &b[i * k * n..(i + 1) * k * n],
                            o,
                            m,
                            k,
                            n,
                        );
                    }
                });
            }
        });
    } else {
        for i in 0..bt {
            matmul_slice(
                &a[i * m * k..(i + 1) * m * k],
                &b[i * k * n..(i + 1) * k * n],
                &mut out[i * m * n..(i + 1) * m * n],
                m,
                k,
                n,
            );
        }
    }
}

// ---------------------------------------------------------------------
// Transposed-operand accumulate kernels (autograd backward paths)
// ---------------------------------------------------------------------
//
// The backward of `C = A @ B` is a pair of matmuls against transposed
// operands: `dA += G @ Bᵀ` and `dB += Aᵀ @ G`.  The historical path
// materialised the transpose and called `matmul_into`; these kernels
// read the untransposed operand directly (`B` rows are contiguous in the
// NT case, `G` rows in the TN case), with **identical per-element
// accumulation order** (the contraction index ascends) and the identical
// skip-zero rule on the left-operand element — so gradients are bitwise
// equal to the transpose-then-multiply path, which is itself bitwise
// equal to the naive loop (see [`matmul_into`]).

/// `out += g @ bᵀ`: `g` is `[m,n]`, `b` is `[k,n]`, `out` is `[m,k]` —
/// the `dA` of a matmul.
///
/// `bᵀ` is materialised into a scratch buffer (an `O(nk)` copy next to
/// the `O(mnk)` multiply) and the product runs through the blocked/packed
/// [`matmul_into`] dispatch — keeping the SIMD-friendly contiguous-axpy
/// inner loop; a transpose-free dot kernel measured ~20% slower per
/// training step.  Products for each output element accumulate in
/// ascending `n` with the skip-zero rule on `g[i,j]`, exactly like the
/// historical transpose-then-multiply path.
pub fn matmul_nt_into(g: &[f32], b: &[f32], out: &mut [f32], m: usize, n: usize, k: usize) {
    debug_assert_eq!(g.len(), m * n);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * k);
    with_transposed(b, k, n, |bt| matmul_into(g, bt, out, m, n, k));
}

thread_local! {
    /// Reusable per-thread transpose scratch for the NT/TN backward
    /// kernels: a training step runs hundreds of backward matmuls at
    /// model-sized shapes, and a fresh alloc+memset per transpose
    /// measurably drags the small-shape families (GRU cells).
    static TRANSPOSE_SCRATCH: std::cell::RefCell<Vec<f32>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

/// Run `f` on the `[cols, rows]` transpose of `src` (`[rows, cols]`),
/// staged in the thread-local scratch buffer.
fn with_transposed<R>(src: &[f32], rows: usize, cols: usize, f: impl FnOnce(&[f32]) -> R) -> R {
    TRANSPOSE_SCRATCH.with(|cell| {
        let mut buf = cell.borrow_mut();
        let len = rows * cols;
        if buf.len() < len {
            buf.resize(len, 0.0);
        }
        for r in 0..rows {
            for c in 0..cols {
                buf[c * rows + r] = src[r * cols + c];
            }
        }
        f(&buf[..len])
    })
}

/// `out += aᵀ @ g`: `a` is `[m,k]`, `g` is `[m,n]`, `out` is `[k,n]` —
/// the `dB` of a matmul.
///
/// Like [`matmul_nt_into`], `aᵀ` is materialised (an `O(mk)` copy next
/// to the `O(mkn)` multiply) and the product runs through the
/// blocked/packed [`matmul_into`] dispatch — a transpose-free variant
/// reading `a` columns with stride `k` profiled at ~25% of the whole
/// training step on cache misses alone.  Products for each output
/// element accumulate in ascending `m` with the skip-zero rule on
/// `a[i,p]`, exactly like the historical transpose-then-multiply path.
pub fn matmul_tn_into(a: &[f32], g: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(g.len(), m * n);
    debug_assert_eq!(out.len(), k * n);
    if a.len() <= TN_DIRECT_MAX_A {
        matmul_tn_direct(a, g, out, m, k, n);
    } else {
        with_transposed(a, m, k, |at| matmul_into(at, g, out, k, m, n));
    }
}

/// Largest `a` operand (elements) the direct TN kernel handles: while
/// `a` stays L1-resident its strided column reads are free, and skipping
/// the transpose pass wins — the regime of the GRU cell's per-timestep
/// `[B, D]ᵀ @ [B, H]` gradients.  Above this the strided reads start
/// missing and the transpose-then-dispatch path takes over.
const TN_DIRECT_MAX_A: usize = 64 * 1024;

/// Transpose-free TN kernel: `out[p, :] += a[i, p] · g[i, :]` with `i`
/// ascending per output element (K_BLOCK-tiled) and the skip-zero rule
/// on `a[i, p]` — bitwise identical to the transposed dispatch.
fn matmul_tn_direct(a: &[f32], g: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    let mut ib = 0;
    while ib < m {
        let iend = (ib + K_BLOCK).min(m);
        for (p, out_row) in out.chunks_mut(n).enumerate() {
            for i in ib..iend {
                let a_ip = a[i * k + p];
                if a_ip == 0.0 {
                    continue;
                }
                let g_row = &g[i * n..(i + 1) * n];
                for (o, &gj) in out_row.iter_mut().zip(g_row) {
                    *o += a_ip * gj;
                }
            }
        }
        ib = iend;
    }
}

/// Batched [`matmul_nt_into`]: `out[s] += g[s] @ b[s]ᵀ` per slice — the
/// `dA` of a bmm.  The batched transpose is materialised once and the
/// product runs through [`bmm_into`]'s slice dispatch, matching the
/// historical `transpose_last2` + `bmm` path kernel for kernel.
pub fn bmm_nt_into(g: &[f32], b: &[f32], out: &mut [f32], bt: usize, m: usize, n: usize, k: usize) {
    debug_assert_eq!(g.len(), bt * m * n);
    debug_assert_eq!(b.len(), bt * k * n);
    debug_assert_eq!(out.len(), bt * m * k);
    with_transposed_batch(b, bt, k, n, |btr| bmm_into(g, btr, out, bt, m, n, k));
}

/// Run `f` on the per-slice `[bt, cols, rows]` transpose of `src`
/// (`[bt, rows, cols]`), staged in the thread-local scratch buffer.
fn with_transposed_batch<R>(
    src: &[f32],
    bt: usize,
    rows: usize,
    cols: usize,
    f: impl FnOnce(&[f32]) -> R,
) -> R {
    TRANSPOSE_SCRATCH.with(|cell| {
        let mut buf = cell.borrow_mut();
        let len = bt * rows * cols;
        if buf.len() < len {
            buf.resize(len, 0.0);
        }
        for (s, slice) in buf[..len].chunks_mut(rows * cols).enumerate() {
            let sl = &src[s * rows * cols..(s + 1) * rows * cols];
            for r in 0..rows {
                for c in 0..cols {
                    slice[c * rows + r] = sl[r * cols + c];
                }
            }
        }
        f(&buf[..len])
    })
}

/// Batched [`matmul_tn_into`]: `out[s] += a[s]ᵀ @ g[s]` per slice — the
/// `dB` of a bmm.  The batched transpose is materialised once and the
/// product runs through [`bmm_into`]'s slice dispatch, matching the
/// historical `transpose_last2` + `bmm` path kernel for kernel.
pub fn bmm_tn_into(a: &[f32], g: &[f32], out: &mut [f32], bt: usize, m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), bt * m * k);
    debug_assert_eq!(g.len(), bt * m * n);
    debug_assert_eq!(out.len(), bt * k * n);
    if m * k <= TN_DIRECT_MAX_A {
        // Small per-slice operands (attention-head shapes): the direct
        // kernel per slice beats a batched transpose pass.
        for (s, o) in out.chunks_mut(k * n).enumerate() {
            matmul_tn_direct(
                &a[s * m * k..(s + 1) * m * k],
                &g[s * m * n..(s + 1) * m * n],
                o,
                m,
                k,
                n,
            );
        }
    } else {
        with_transposed_batch(a, bt, m, k, |atr| bmm_into(atr, g, out, bt, k, m, n));
    }
}

// ---------------------------------------------------------------------
// Stride-walking batched kernels (zero-copy view consumers)
// ---------------------------------------------------------------------
//
// The attention path views its `[B, T, D]` projections as `[B*H, T, D/H]`
// without copying ([`Tensor::split_heads_view`]).  These kernels consume
// that layout — and the dense layout, and the merged-output layout —
// through a [`BatchLayout`] descriptor whose rows are contiguous runs.
// Each kernel mirrors its dense counterpart loop for loop (`K_BLOCK`
// tiling, ascending contraction index, skip-zero on the left operand
// element), so results are **bitwise identical** to materialising the
// view and calling the dense kernel.  Layouts only relocate rows; they
// never reorder the per-element accumulation.

/// Address map of a batched `[S, rows, rowlen]` operand whose rows are
/// contiguous `rowlen`-float runs: row `i` of slice `s` starts at
/// `offset + (s/inner)·outer_stride + (s%inner)·inner_stride + i·row_stride`.
///
/// * dense `[S, m, k]`: `inner = 1`, `outer_stride = m·k`, `row_stride = k`
/// * head-split view of `[B, T, D]` as `[B·H, T, D/H]`: `outer = B`,
///   `inner = H`, `outer_stride = T·D`, `inner_stride = D/H`,
///   `row_stride = D` — slice `s = b·H + h`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BatchLayout {
    /// Storage offset of slice 0, row 0.
    pub offset: usize,
    /// Outer slice-group count (`B` for head-split views, `S` for dense).
    pub outer: usize,
    /// Slices per outer group (`H` for head-split views, 1 for dense).
    pub inner: usize,
    /// Stride between outer groups.
    pub outer_stride: usize,
    /// Stride between inner slices of one group.
    pub inner_stride: usize,
    /// Stride between consecutive rows of a slice.
    pub row_stride: usize,
}

impl BatchLayout {
    /// The layout of a dense `[s, rows, rowlen]` tensor.
    pub fn dense(s: usize, rows: usize, rowlen: usize) -> BatchLayout {
        BatchLayout {
            offset: 0,
            outer: s,
            inner: 1,
            outer_stride: rows * rowlen,
            inner_stride: 0,
            row_stride: rowlen,
        }
    }

    /// Total slice count.
    #[inline]
    pub fn slices(&self) -> usize {
        self.outer * self.inner
    }

    /// Storage offset of row 0 of slice `s`.
    #[inline]
    fn slice_base(&self, s: usize) -> usize {
        self.offset + (s / self.inner) * self.outer_stride + (s % self.inner) * self.inner_stride
    }

    /// True when outer groups tile `len` storage exactly from offset 0 —
    /// the precondition for fanning worker threads over disjoint
    /// `chunks_mut(outer_stride)` groups.
    fn tiles_exactly(&self, len: usize) -> bool {
        self.offset == 0 && self.outer * self.outer_stride == len
    }
}

/// Fan `work(s_global, out_chunk, o_base)` over the outer groups of `lo`,
/// in parallel when the total multiply-accumulate count warrants it and
/// the output layout tiles the buffer exactly; serial otherwise.  Slices
/// are independent, so the fan never changes results.
fn fan_slices(
    out: &mut [f32],
    lo: &BatchLayout,
    work_per_slice: usize,
    run: impl Fn(usize, &mut [f32], usize) + Sync,
) {
    let slices = lo.slices();
    let threads = parallelism_for(work_per_slice * slices).min(lo.outer);
    if threads > 1 && lo.tiles_exactly(out.len()) {
        let groups_per = lo.outer.div_ceil(threads);
        let run = &run;
        std::thread::scope(|scope| {
            for (ci, chunk) in out.chunks_mut(groups_per * lo.outer_stride).enumerate() {
                let g0 = ci * groups_per;
                let groups = chunk.len() / lo.outer_stride;
                scope.spawn(move || {
                    for sl in 0..groups * lo.inner {
                        let s = g0 * lo.inner + sl;
                        let base =
                            (sl / lo.inner) * lo.outer_stride + (sl % lo.inner) * lo.inner_stride;
                        run(s, chunk, base);
                    }
                });
            }
        });
    } else {
        for s in 0..slices {
            let base = lo.slice_base(s);
            run(s, out, base);
        }
    }
}

/// One slice of a layout-addressed `out += a @ b`: rows of every operand
/// are contiguous runs located by `(base, row_stride)`.  Loop structure is
/// [`matmul_block`] verbatim — `K_BLOCK` tiles visited in order, `k`
/// ascending per output element, skip-zero on `a[i,p]`.
#[allow(clippy::too_many_arguments)]
fn matmul_block_l(
    a: &[f32],
    a0: usize,
    ars: usize,
    b: &[f32],
    b0: usize,
    brs: usize,
    out: &mut [f32],
    o0: usize,
    ors: usize,
    m: usize,
    k: usize,
    n: usize,
) {
    let mut kb = 0;
    while kb < k {
        let kend = (kb + K_BLOCK).min(k);
        for i in 0..m {
            let a_row = &a[a0 + i * ars..a0 + i * ars + k];
            let out_row = &mut out[o0 + i * ors..o0 + i * ors + n];
            for p in kb..kend {
                let a_ip = a_row[p];
                if a_ip == 0.0 {
                    continue;
                }
                let b_row = &b[b0 + p * brs..b0 + p * brs + n];
                for (o, &b_pj) in out_row.iter_mut().zip(b_row) {
                    *o += a_ip * b_pj;
                }
            }
        }
        kb = kend;
    }
}

/// Layout-addressed batched `out += a @ b` over `[m,k] @ [k,n]` slices.
/// The plain blocked kernel runs per slice (packed dispatch is bitwise
/// identical by design, and view-fed shapes never reach the packed
/// regime), so results match [`bmm_into`] exactly.
#[allow(clippy::too_many_arguments)]
pub fn bmm_layout_into(
    a: &[f32],
    la: &BatchLayout,
    b: &[f32],
    lb: &BatchLayout,
    out: &mut [f32],
    lo: &BatchLayout,
    m: usize,
    k: usize,
    n: usize,
) {
    let bt = la.slices();
    assert_eq!(lb.slices(), bt, "bmm_layout_into batch dims differ");
    assert_eq!(lo.slices(), bt, "bmm_layout_into output batch differs");
    fan_slices(out, lo, m * k * n, |s, o, o_base| {
        matmul_block_l(
            a,
            la.slice_base(s),
            la.row_stride,
            b,
            lb.slice_base(s),
            lb.row_stride,
            o,
            o_base,
            lo.row_stride,
            m,
            k,
            n,
        );
    });
}

/// Layout-addressed batched `out += a @ bᵀ`: `a` slices are `[m, d]`, `b`
/// slices `[n, d]`, `out` slices `[m, n]`.  Each slice's `bᵀ` is staged
/// into the thread-local transpose scratch (reading rows through the
/// layout) and the product runs through `matmul_block_l` — the same
/// stage-then-multiply the dense [`bmm_nt_into`] performs, so per-element
/// accumulation (ascending `d`, skip-zero on `a[i,p]`) is unchanged.
#[allow(clippy::too_many_arguments)]
pub fn bmm_nt_layout_into(
    a: &[f32],
    la: &BatchLayout,
    b: &[f32],
    lb: &BatchLayout,
    out: &mut [f32],
    lo: &BatchLayout,
    m: usize,
    d: usize,
    n: usize,
) {
    let bt = la.slices();
    assert_eq!(lb.slices(), bt, "bmm_nt_layout_into batch dims differ");
    assert_eq!(lo.slices(), bt, "bmm_nt_layout_into output batch differs");
    fan_slices(out, lo, m * d * n, |s, o, o_base| {
        TRANSPOSE_SCRATCH.with(|cell| {
            let mut buf = cell.borrow_mut();
            let len = d * n;
            if buf.len() < len {
                buf.resize(len, 0.0);
            }
            let b0 = lb.slice_base(s);
            for j in 0..n {
                let b_row = &b[b0 + j * lb.row_stride..b0 + j * lb.row_stride + d];
                for (p, &v) in b_row.iter().enumerate() {
                    buf[p * n + j] = v;
                }
            }
            matmul_block_l(
                a,
                la.slice_base(s),
                la.row_stride,
                &buf[..len],
                0,
                n,
                o,
                o_base,
                lo.row_stride,
                m,
                d,
                n,
            );
        });
    });
}

/// Layout-addressed batched `out += aᵀ @ g`: `a` slices `[m, k]`, `g`
/// slices `[m, n]`, `out` slices `[k, n]` — the direct TN kernel
/// (`matmul_tn_direct`: `K_BLOCK`-tiled ascending `i`, skip-zero on
/// `a[i,p]`), which is bitwise identical to the transposed dispatch.
#[allow(clippy::too_many_arguments)]
pub fn bmm_tn_layout_into(
    a: &[f32],
    la: &BatchLayout,
    g: &[f32],
    lg: &BatchLayout,
    out: &mut [f32],
    lo: &BatchLayout,
    m: usize,
    k: usize,
    n: usize,
) {
    let bt = la.slices();
    assert_eq!(lg.slices(), bt, "bmm_tn_layout_into batch dims differ");
    assert_eq!(lo.slices(), bt, "bmm_tn_layout_into output batch differs");
    fan_slices(out, lo, m * k * n, |s, o, o_base| {
        let a0 = la.slice_base(s);
        let g0 = lg.slice_base(s);
        let mut ib = 0;
        while ib < m {
            let iend = (ib + K_BLOCK).min(m);
            for p in 0..k {
                let out_row = &mut o[o_base + p * lo.row_stride..o_base + p * lo.row_stride + n];
                for i in ib..iend {
                    let a_ip = a[a0 + i * la.row_stride + p];
                    if a_ip == 0.0 {
                        continue;
                    }
                    let g_row = &g[g0 + i * lg.row_stride..g0 + i * lg.row_stride + n];
                    for (o, &gj) in out_row.iter_mut().zip(g_row) {
                        *o += a_ip * gj;
                    }
                }
            }
            ib = iend;
        }
    });
}

/// Layout-addressed `dB` of a batched `a @ bᵀ` product:
/// `out[s][j, p] += a[s][i, p] · g[s][i, j]` with `i` ascending per output
/// element and skip-zero on `a[i, p]` — the scatter the fused `bmm_nt`
/// backward performs, relocated through layouts.  `a` slices are `[m, d]`,
/// `g` slices `[m, n]`, `out` slices `[n, d]`.
#[allow(clippy::too_many_arguments)]
pub fn bmm_nt_db_layout_into(
    a: &[f32],
    la: &BatchLayout,
    g: &[f32],
    lg: &BatchLayout,
    out: &mut [f32],
    lo: &BatchLayout,
    m: usize,
    d: usize,
    n: usize,
) {
    let bt = la.slices();
    assert_eq!(lg.slices(), bt, "bmm_nt_db_layout_into batch dims differ");
    assert_eq!(lo.slices(), bt, "bmm_nt_db_layout_into output batch differs");
    fan_slices(out, lo, m * d * n, |s, o, o_base| {
        let a0 = la.slice_base(s);
        let g0 = lg.slice_base(s);
        for i in 0..m {
            let a_row = &a[a0 + i * la.row_stride..a0 + i * la.row_stride + d];
            let g_row = &g[g0 + i * lg.row_stride..g0 + i * lg.row_stride + n];
            for (p, &a_ip) in a_row.iter().enumerate() {
                if a_ip == 0.0 {
                    continue;
                }
                for (j, &g_ij) in g_row.iter().enumerate() {
                    o[o_base + j * lo.row_stride + p] += a_ip * g_ij;
                }
            }
        }
    });
}

/// Product of a shape's dimensions.
pub(crate) fn numel(shape: &[usize]) -> usize {
    shape.iter().product()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        assert_eq!(t.shape(), &[2, 3]);
        assert_eq!(t.ndim(), 2);
        assert_eq!(t.len(), 6);
        assert_eq!(t.at(&[1, 2]), 6.0);
        assert_eq!(t.at(&[0, 0]), 1.0);
    }

    #[test]
    fn try_from_vec_rejects_bad_shapes() {
        let err = Tensor::try_from_vec(vec![1.0; 5], &[2, 3]).unwrap_err();
        assert_eq!(err, TensorError::ShapeMismatch { expected: 6, got: 5 });
    }

    #[test]
    #[should_panic(expected = "matmul inner dims differ")]
    fn matmul_rejects_mismatched_inner_dims() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[4, 2]);
        let _ = a.matmul(&b);
    }

    #[test]
    fn matmul_matches_hand_computed() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = Tensor::from_vec((0..12).map(|x| x as f32).collect(), &[3, 4]);
        let id = Tensor::from_fn(&[4, 4], |i| if i / 4 == i % 4 { 1.0 } else { 0.0 });
        assert_eq!(a.matmul(&id), a);
    }

    #[test]
    fn bmm_matches_per_batch_matmul() {
        let a = Tensor::from_vec((0..12).map(|x| x as f32).collect(), &[2, 2, 3]);
        let b = Tensor::from_vec((0..12).map(|x| (x as f32) * 0.5).collect(), &[2, 3, 2]);
        let c = a.bmm(&b);
        for i in 0..2 {
            let ai = Tensor::from_vec(a.data()[i * 6..(i + 1) * 6].to_vec(), &[2, 3]);
            let bi = Tensor::from_vec(b.data()[i * 6..(i + 1) * 6].to_vec(), &[3, 2]);
            let ci = ai.matmul(&bi);
            assert_eq!(&c.data()[i * 4..(i + 1) * 4], ci.data());
        }
    }

    #[test]
    fn transpose2d_round_trips() {
        let a = Tensor::from_vec((0..6).map(|x| x as f32).collect(), &[2, 3]);
        let t = a.transpose2d();
        assert_eq!(t.shape(), &[3, 2]);
        assert_eq!(t.at(&[2, 1]), a.at(&[1, 2]));
        assert_eq!(t.transpose2d(), a);
    }

    #[test]
    fn transpose_last2_round_trips() {
        let a = Tensor::from_vec((0..24).map(|x| x as f32).collect(), &[2, 3, 4]);
        let t = a.transpose_last2();
        assert_eq!(t.shape(), &[2, 4, 3]);
        assert_eq!(t.at(&[1, 3, 2]), a.at(&[1, 2, 3]));
        assert_eq!(t.transpose_last2(), a);
    }

    #[test]
    fn softmax_rows_sum_to_one_and_order_preserved() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0], &[2, 3]);
        let s = t.softmax_last();
        for row in s.data().chunks(3) {
            let sum: f32 = row.iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
            assert!(row[0] < row[1] && row[1] < row[2]);
        }
    }

    #[test]
    fn softmax_handles_all_neg_inf_row() {
        let t = Tensor::from_vec(vec![f32::NEG_INFINITY; 4], &[1, 4]);
        let s = t.softmax_last();
        for &p in s.data() {
            assert!((p - 0.25).abs() < 1e-6);
        }
    }

    #[test]
    fn log_softmax_is_log_of_softmax() {
        let t = Tensor::from_vec(vec![0.3, -0.7, 1.9, 0.0, 5.0, -5.0], &[2, 3]);
        let a = t.log_softmax_last();
        let b = t.softmax_last().map(f32::ln);
        for (x, y) in a.data().iter().zip(b.data()) {
            assert!((x - y).abs() < 1e-4, "{x} vs {y}");
        }
    }

    #[test]
    fn gather_rows_picks_expected_rows() {
        let t = Tensor::from_vec((0..8).map(|x| x as f32).collect(), &[4, 2]);
        let g = t.gather_rows(&[3, 0, 3]);
        assert_eq!(g.shape(), &[3, 2]);
        assert_eq!(g.data(), &[6.0, 7.0, 0.0, 1.0, 6.0, 7.0]);
    }

    #[test]
    fn axpy_and_add_assign() {
        let mut a = Tensor::from_vec(vec![1.0, 2.0], &[2]);
        let b = Tensor::from_vec(vec![10.0, 20.0], &[2]);
        a.axpy(0.5, &b);
        assert_eq!(a.data(), &[6.0, 12.0]);
        a.add_assign(&b);
        assert_eq!(a.data(), &[16.0, 32.0]);
    }

    #[test]
    fn reshape_preserves_data() {
        let a = Tensor::from_vec((0..6).map(|x| x as f32).collect(), &[2, 3]);
        let b = a.reshaped(&[3, 2]);
        assert_eq!(b.shape(), &[3, 2]);
        assert_eq!(b.data(), a.data());
    }

    #[test]
    fn stats_helpers() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]);
        assert_eq!(t.sum(), 6.0);
        assert_eq!(t.mean(), 2.0);
        assert_eq!(t.sq_norm(), 14.0);
    }

    /// Reference i-k-j matmul, no blocking or threading.
    fn naive_matmul(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = (a.shape()[0], a.shape()[1]);
        let n = b.shape()[1];
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for p in 0..k {
                let a_ip = a.data()[i * k + p];
                for j in 0..n {
                    out[i * n + j] += a_ip * b.data()[p * n + j];
                }
            }
        }
        Tensor::from_vec(out, &[m, n])
    }

    #[test]
    fn blocked_matmul_is_bitwise_equal_to_naive_across_tile_boundaries() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        // Inner dims straddling the K_BLOCK=64 tile edge, plus odd sizes.
        for &(m, k, n) in &[(3, 63, 5), (4, 64, 7), (5, 65, 3), (2, 130, 9), (1, 1, 1)] {
            let a = Tensor::randn(&[m, k], 1.0, &mut rng);
            let b = Tensor::randn(&[k, n], 1.0, &mut rng);
            assert_eq!(a.matmul(&b).data(), naive_matmul(&a, &b).data(), "{m}x{k}x{n}");
        }
    }

    #[test]
    fn parallel_matmul_is_bitwise_equal_to_naive() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(8);
        // Large enough to cross PAR_MIN_WORK on multi-core hosts; on a
        // single-core host this still exercises the blocked serial path.
        let a = Tensor::randn(&[128, 96], 1.0, &mut rng);
        let b = Tensor::randn(&[96, 128], 1.0, &mut rng);
        assert_eq!(a.matmul(&b).data(), naive_matmul(&a, &b).data());
    }

    #[test]
    fn parallel_bmm_matches_sequential_per_batch_matmul() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let (b, m, k, n) = (24, 17, 32, 33);
        let x = Tensor::randn(&[b, m, k], 1.0, &mut rng);
        let y = Tensor::randn(&[b, k, n], 1.0, &mut rng);
        let z = x.bmm(&y);
        for i in 0..b {
            let xi = Tensor::from_vec(x.data()[i * m * k..(i + 1) * m * k].to_vec(), &[m, k]);
            let yi = Tensor::from_vec(y.data()[i * k * n..(i + 1) * k * n].to_vec(), &[k, n]);
            assert_eq!(&z.data()[i * m * n..(i + 1) * m * n], xi.matmul(&yi).data());
        }
    }

    #[test]
    fn packed_matmul_is_bitwise_equal_to_plain_across_odd_shapes() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(10);
        // Shapes straddling the NR=8 panel edge and MR=4 row tile, plus
        // ragged remainders in every dimension.
        for &(m, k, n) in &[
            (1, 7, 17),
            (3, 16, 15),
            (4, 33, 16),
            (5, 64, 31),
            (7, 65, 33),
            (9, 130, 47),
            (16, 8, 100),
        ] {
            let a = Tensor::randn(&[m, k], 1.0, &mut rng);
            let b = Tensor::randn(&[k, n], 1.0, &mut rng);
            let mut plain = vec![0.0f32; m * n];
            let mut packed = vec![0.0f32; m * n];
            matmul_into_plain(a.data(), b.data(), &mut plain, m, k, n);
            matmul_into_packed(a.data(), b.data(), &mut packed, m, k, n);
            assert_eq!(plain, packed, "{m}x{k}x{n}");
        }
    }

    #[test]
    fn packed_matmul_accumulates_into_nonzero_out() {
        // Both kernels share the `out += a @ b` contract.
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let (m, k, n) = (5, 9, 21);
        let a = Tensor::randn(&[m, k], 1.0, &mut rng);
        let b = Tensor::randn(&[k, n], 1.0, &mut rng);
        let seed: Vec<f32> = (0..m * n).map(|i| i as f32 * 0.25).collect();
        let mut plain = seed.clone();
        let mut packed = seed;
        matmul_into_plain(a.data(), b.data(), &mut plain, m, k, n);
        matmul_into_packed(a.data(), b.data(), &mut packed, m, k, n);
        assert_eq!(plain, packed);
    }

    #[test]
    fn packed_matmul_skips_zero_a_like_plain() {
        // The skip-zero rule must match or an inf/NaN in B would produce
        // NaN in one kernel and not the other.
        let a = Tensor::from_vec(vec![0.0, 1.0, 2.0, 0.0, 0.0, 3.0], &[2, 3]);
        let mut b = Tensor::zeros(&[3, 20]);
        b.data_mut()[0] = f32::INFINITY; // row 0 of B, only ever hit by a=0.0
        let (m, k, n) = (2, 3, 20);
        let mut plain = vec![0.0f32; m * n];
        let mut packed = vec![0.0f32; m * n];
        matmul_into_plain(a.data(), b.data(), &mut plain, m, k, n);
        matmul_into_packed(a.data(), b.data(), &mut packed, m, k, n);
        assert_eq!(plain, packed);
        assert!(plain.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn nt_kernel_is_bitwise_equal_to_transpose_then_matmul() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(13);
        // Shapes straddling the 4-column tile and K_BLOCK, plus zeros in g
        // to exercise the skip rule.
        for &(m, n, k) in &[(1, 1, 1), (3, 7, 5), (4, 65, 9), (8, 130, 3), (5, 16, 21)] {
            let mut g = Tensor::randn(&[m, n], 1.0, &mut rng);
            for (i, v) in g.data_mut().iter_mut().enumerate() {
                if i % 5 == 0 {
                    *v = 0.0;
                }
            }
            let b = Tensor::randn(&[k, n], 1.0, &mut rng);
            let reference = g.matmul(&b.transpose2d());
            let mut out = vec![0.0f32; m * k];
            matmul_nt_into(g.data(), b.data(), &mut out, m, n, k);
            assert_eq!(out, reference.data(), "nt {m}x{n}x{k}");
        }
    }

    #[test]
    fn tn_kernel_is_bitwise_equal_to_transpose_then_matmul() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(14);
        for &(m, k, n) in &[(1, 1, 1), (7, 3, 5), (65, 4, 9), (130, 8, 3), (16, 5, 21)] {
            let mut a = Tensor::randn(&[m, k], 1.0, &mut rng);
            for (i, v) in a.data_mut().iter_mut().enumerate() {
                if i % 4 == 0 {
                    *v = 0.0;
                }
            }
            let g = Tensor::randn(&[m, n], 1.0, &mut rng);
            let reference = a.transpose2d().matmul(&g);
            let mut out = vec![0.0f32; k * n];
            matmul_tn_into(a.data(), g.data(), &mut out, m, k, n);
            assert_eq!(out, reference.data(), "tn {m}x{k}x{n}");
        }
    }

    #[test]
    fn nt_tn_kernels_accumulate_into_nonzero_out() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(15);
        let (m, n, k) = (5, 9, 6);
        let g = Tensor::randn(&[m, n], 1.0, &mut rng);
        let b = Tensor::randn(&[k, n], 1.0, &mut rng);
        let seed: Vec<f32> = (0..m * k).map(|i| i as f32 * 0.5 - 3.0).collect();
        let mut out = seed.clone();
        matmul_nt_into(g.data(), b.data(), &mut out, m, n, k);
        let mut expected = Tensor::from_vec(seed, &[m, k]);
        expected.add_assign(&g.matmul(&b.transpose2d()));
        // Accumulation starts from the existing out value per element, so
        // tolerances — not bitwise — are the right comparison for the
        // seeded case (the bitwise contract is for fresh zero slots).
        for (a, e) in out.iter().zip(expected.data()) {
            assert!((a - e).abs() < 1e-4, "{a} vs {e}");
        }
    }

    #[test]
    fn batched_nt_tn_kernels_match_per_slice_2d_kernels() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(16);
        let (bt, m, k, n) = (3, 4, 5, 7);
        let a = Tensor::randn(&[bt, m, k], 1.0, &mut rng);
        let g = Tensor::randn(&[bt, m, n], 1.0, &mut rng);
        let b = Tensor::randn(&[bt, k, n], 1.0, &mut rng);

        let mut da = vec![0.0f32; bt * m * k];
        bmm_nt_into(g.data(), b.data(), &mut da, bt, m, n, k);
        let mut db = vec![0.0f32; bt * k * n];
        bmm_tn_into(a.data(), g.data(), &mut db, bt, m, k, n);

        for s in 0..bt {
            let mut da_ref = vec![0.0f32; m * k];
            matmul_nt_into(
                &g.data()[s * m * n..(s + 1) * m * n],
                &b.data()[s * k * n..(s + 1) * k * n],
                &mut da_ref,
                m,
                n,
                k,
            );
            assert_eq!(&da[s * m * k..(s + 1) * m * k], &da_ref[..]);
            let mut db_ref = vec![0.0f32; k * n];
            matmul_tn_into(
                &a.data()[s * m * k..(s + 1) * m * k],
                &g.data()[s * m * n..(s + 1) * m * n],
                &mut db_ref,
                m,
                k,
                n,
            );
            assert_eq!(&db[s * k * n..(s + 1) * k * n], &db_ref[..]);
        }
    }

    #[test]
    fn forced_kernel_threads_do_not_change_results() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(17);
        let a = Tensor::randn(&[33, 48], 1.0, &mut rng);
        let b = Tensor::randn(&[17, 48], 1.0, &mut rng);
        let g = Tensor::randn(&[33, 17], 1.0, &mut rng);
        let serial_mm = a.matmul(&b.transpose2d());
        let mut serial_nt = vec![0.0f32; 33 * 17];
        matmul_nt_into(a.data(), b.data(), &mut serial_nt, 33, 48, 17);
        let mut serial_tn = vec![0.0f32; 48 * 17];
        matmul_tn_into(a.data(), g.data(), &mut serial_tn, 33, 48, 17);
        set_kernel_threads(Some(3));
        let par_mm = a.matmul(&b.transpose2d());
        let mut par_nt = vec![0.0f32; 33 * 17];
        matmul_nt_into(a.data(), b.data(), &mut par_nt, 33, 48, 17);
        let mut par_tn = vec![0.0f32; 48 * 17];
        matmul_tn_into(a.data(), g.data(), &mut par_tn, 33, 48, 17);
        set_kernel_threads(None);
        assert_eq!(serial_mm.data(), par_mm.data());
        assert_eq!(serial_nt, par_nt);
        assert_eq!(serial_tn, par_tn);
    }

    #[test]
    fn unfold_and_concat_value_helpers_match_graph_ops() {
        use crate::graph::Graph;
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(12);
        let x = Tensor::randn(&[2, 5, 3], 1.0, &mut rng);
        let g = Graph::new();
        let xv = g.constant(x.clone());
        assert_eq!(x.unfold_windows(2).data(), xv.unfold_windows(2).value().data());
        let y = Tensor::randn(&[2, 5, 4], 1.0, &mut rng);
        let yv = g.constant(y.clone());
        let cat = Tensor::concat_last(&[&x, &y]);
        let cat_v = crate::graph::Var::concat_last(&[xv, yv]);
        assert_eq!(cat.shape(), &[2, 5, 7]);
        assert_eq!(cat.data(), cat_v.value().data());
    }

    #[test]
    fn randn_seeded_is_deterministic() {
        use rand::SeedableRng;
        let mut r1 = rand::rngs::StdRng::seed_from_u64(42);
        let mut r2 = rand::rngs::StdRng::seed_from_u64(42);
        let a = Tensor::randn(&[4, 4], 0.1, &mut r1);
        let b = Tensor::randn(&[4, 4], 0.1, &mut r2);
        assert_eq!(a, b);
    }

    // -- strided views ------------------------------------------------

    #[test]
    fn transpose_views_are_zero_copy_and_match_materialized() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let a = Tensor::randn(&[5, 7], 1.0, &mut rng);
        let v = a.transpose2d_view();
        assert!(v.is_view());
        assert_eq!(v.storage().as_ptr(), a.storage().as_ptr());
        assert_eq!(v.contiguous(), a.transpose2d());
        assert_eq!(v, a.transpose2d());
        let b = Tensor::randn(&[3, 4, 6], 1.0, &mut rng);
        let bv = b.transpose_last2_view();
        assert!(bv.is_view());
        assert_eq!(bv.contiguous(), b.transpose_last2());
    }

    #[test]
    fn permute_view_matches_index_shuffle() {
        let t = Tensor::from_vec((0..24).map(|x| x as f32).collect(), &[2, 3, 4]);
        let p = t.permute_view(&[2, 0, 1]);
        assert_eq!(p.shape(), &[4, 2, 3]);
        for i in 0..4 {
            for j in 0..2 {
                for k in 0..3 {
                    assert_eq!(p.at(&[i, j, k]), t.at(&[j, k, i]));
                }
            }
        }
        let back = p.contiguous().permute_view(&[1, 2, 0]).contiguous();
        assert_eq!(back, t);
    }

    #[test]
    fn split_heads_view_matches_copying_split() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let (b, t, d, h) = (2, 5, 8, 4);
        let x = Tensor::randn(&[b, t, d], 1.0, &mut rng);
        let v = x.split_heads_view(h);
        assert_eq!(v.shape(), &[b * h, t, d / h]);
        assert!(v.is_view());
        // Reference: the copying split used by the graph op.
        let dk = d / h;
        let mut want = vec![0.0f32; b * t * d];
        for bi in 0..b {
            for hh in 0..h {
                for ti in 0..t {
                    for p in 0..dk {
                        want[((bi * h + hh) * t + ti) * dk + p] =
                            x.data()[bi * t * d + ti * d + hh * dk + p];
                    }
                }
            }
        }
        assert_eq!(v.contiguous().data(), &want[..]);
    }

    #[test]
    fn view_into_vec_and_reshape_materialize() {
        let t = Tensor::from_vec((0..6).map(|x| x as f32).collect(), &[2, 3]);
        let v = t.transpose2d_view();
        assert_eq!(v.clone().into_vec(), vec![0.0, 3.0, 1.0, 4.0, 2.0, 5.0]);
        let r = v.reshaped(&[3, 2]);
        assert!(!r.is_view());
        assert_eq!(r.data(), &[0.0, 3.0, 1.0, 4.0, 2.0, 5.0]);
        // Dense reshape shares storage.
        let r2 = t.reshaped(&[3, 2]);
        assert_eq!(r2.storage().as_ptr(), t.storage().as_ptr());
    }

    #[test]
    #[should_panic(expected = "Tensor::data on a strided view")]
    fn data_on_view_panics() {
        let t = Tensor::zeros(&[2, 3]);
        let _ = t.transpose2d_view().data();
    }

    #[test]
    fn data_mut_copy_on_write_leaves_clones_untouched() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]);
        let mut b = a.clone();
        b.data_mut()[0] = 9.0;
        assert_eq!(a.data(), &[1.0, 2.0]);
        assert_eq!(b.data(), &[9.0, 2.0]);
    }

    #[test]
    fn batch_layout_derivation_covers_the_kernel_feeding_forms() {
        let x = Tensor::zeros(&[2, 6, 8]);
        let dense = x.batch_layout().unwrap();
        assert_eq!(dense, BatchLayout::dense(2, 6, 8));
        let split = x.split_heads_view(4).batch_layout().unwrap();
        assert_eq!(
            split,
            BatchLayout {
                offset: 0,
                outer: 2,
                inner: 4,
                outer_stride: 48,
                inner_stride: 2,
                row_stride: 8
            }
        );
        // Transposed rows are not contiguous: no layout, contiguous() fallback.
        assert!(x.transpose_last2_view().batch_layout().is_none());
    }

    // -- layout kernels ≡ dense kernels over materialized views -------

    fn layout_fixture() -> (Tensor, Tensor, usize, usize, usize, usize) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(23);
        let (b, h, t, d) = (2, 4, 5, 24);
        let q = Tensor::randn(&[b, t, d], 1.0, &mut rng);
        let k = Tensor::randn(&[b, t, d], 1.0, &mut rng);
        (q, k, b, h, t, d / h)
    }

    #[test]
    fn bmm_nt_layout_matches_dense_on_materialized_views() {
        let (q, k, b, h, t, dk) = layout_fixture();
        let qs = q.split_heads_view(h);
        let ks = k.split_heads_view(h);
        let (lq, lk) = (qs.batch_layout().unwrap(), ks.batch_layout().unwrap());
        let lo = BatchLayout::dense(b * h, t, t);
        let mut got = vec![0.0f32; b * h * t * t];
        bmm_nt_layout_into(q.storage(), &lq, k.storage(), &lk, &mut got, &lo, t, dk, t);
        let mut want = vec![0.0f32; b * h * t * t];
        bmm_nt_into(qs.contiguous().data(), ks.contiguous().data(), &mut want, b * h, t, dk, t);
        assert_eq!(got, want);
    }

    #[test]
    fn bmm_layout_matches_dense_when_writing_into_merged_rows() {
        use rand::SeedableRng;
        let (q, _k, b, h, t, dk) = layout_fixture();
        let mut rng = rand::rngs::StdRng::seed_from_u64(31);
        let attn = Tensor::randn(&[b * h, t, t], 1.0, &mut rng);
        let vs = q.split_heads_view(h);
        let la = BatchLayout::dense(b * h, t, t);
        let lv = vs.batch_layout().unwrap();
        // Write straight into merged [b, t, h*dk] row offsets.
        let lo = BatchLayout {
            offset: 0,
            outer: b,
            inner: h,
            outer_stride: t * h * dk,
            inner_stride: dk,
            row_stride: h * dk,
        };
        let mut got = vec![0.0f32; b * t * h * dk];
        bmm_layout_into(attn.data(), &la, q.storage(), &lv, &mut got, &lo, t, t, dk);
        // Reference: dense bmm then copying merge.
        let mut split_out = vec![0.0f32; b * h * t * dk];
        bmm_into(attn.data(), vs.contiguous().data(), &mut split_out, b * h, t, t, dk);
        let mut want = vec![0.0f32; b * t * h * dk];
        for bi in 0..b {
            for hh in 0..h {
                for ti in 0..t {
                    for p in 0..dk {
                        want[bi * t * h * dk + ti * h * dk + hh * dk + p] =
                            split_out[((bi * h + hh) * t + ti) * dk + p];
                    }
                }
            }
        }
        assert_eq!(got, want);
    }

    #[test]
    fn bmm_tn_layout_matches_dense_on_materialized_views() {
        use rand::SeedableRng;
        let (q, _k, b, h, t, dk) = layout_fixture();
        let mut rng = rand::rngs::StdRng::seed_from_u64(37);
        let attn = Tensor::randn(&[b * h, t, t], 1.0, &mut rng);
        let gs = q.split_heads_view(h); // stand-in for the out-grad view
        let la = BatchLayout::dense(b * h, t, t);
        let lg = gs.batch_layout().unwrap();
        let lo = BatchLayout::dense(b * h, t, dk);
        let mut got = vec![0.0f32; b * h * t * dk];
        bmm_tn_layout_into(attn.data(), &la, q.storage(), &lg, &mut got, &lo, t, t, dk);
        let mut want = vec![0.0f32; b * h * t * dk];
        bmm_tn_into(attn.data(), gs.contiguous().data(), &mut want, b * h, t, t, dk);
        assert_eq!(got, want);
    }

    #[test]
    fn bmm_nt_db_layout_matches_inline_scatter() {
        use rand::SeedableRng;
        let (q, _k, b, h, t, dk) = layout_fixture();
        let mut rng = rand::rngs::StdRng::seed_from_u64(41);
        let g = Tensor::randn(&[b * h, t, t], 1.0, &mut rng);
        let qs = q.split_heads_view(h);
        let la = qs.batch_layout().unwrap();
        let lg = BatchLayout::dense(b * h, t, t);
        let lo = BatchLayout::dense(b * h, t, dk);
        let mut got = vec![0.0f32; b * h * t * dk];
        bmm_nt_db_layout_into(q.storage(), &la, g.data(), &lg, &mut got, &lo, t, dk, t);
        // Reference: the fused bmm_nt backward's dB scatter on dense slices.
        let a_dense = qs.contiguous();
        let mut want = vec![0.0f32; b * h * t * dk];
        for s in 0..b * h {
            let a_s = &a_dense.data()[s * t * dk..(s + 1) * t * dk];
            let g_s = &g.data()[s * t * t..(s + 1) * t * t];
            let o_s = &mut want[s * t * dk..(s + 1) * t * dk];
            for i in 0..t {
                for p in 0..dk {
                    let a_ip = a_s[i * dk + p];
                    if a_ip == 0.0 {
                        continue;
                    }
                    for j in 0..t {
                        o_s[j * dk + p] += a_ip * g_s[i * t + j];
                    }
                }
            }
        }
        assert_eq!(got, want);
    }

    #[test]
    fn layout_kernels_are_thread_count_invariant() {
        let (q, k, b, h, t, dk) = layout_fixture();
        let qs = q.split_heads_view(h);
        let ks = k.split_heads_view(h);
        let (lq, lk) = (qs.batch_layout().unwrap(), ks.batch_layout().unwrap());
        let lo = BatchLayout::dense(b * h, t, t);
        let mut serial = vec![0.0f32; b * h * t * t];
        bmm_nt_layout_into(q.storage(), &lq, k.storage(), &lk, &mut serial, &lo, t, dk, t);
        set_kernel_threads(Some(3));
        let mut par = vec![0.0f32; b * h * t * t];
        bmm_nt_layout_into(q.storage(), &lq, k.storage(), &lk, &mut par, &lo, t, dk, t);
        set_kernel_threads(None);
        assert_eq!(serial, par);
    }
}
