//! The dense tensor type and its non-differentiable kernels.

use std::fmt;

/// Error type for fallible tensor constructors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// Data length does not match the product of the shape dimensions.
    ShapeMismatch { expected: usize, got: usize },
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::ShapeMismatch { expected, got } => {
                write!(f, "shape requires {expected} elements but data has {got}")
            }
        }
    }
}

impl std::error::Error for TensorError {}

/// A contiguous, row-major `f32` tensor.
///
/// All kernels assert shape compatibility with descriptive messages; the
/// workspace treats shape errors as programming bugs (like `ndarray` and
/// most ML runtimes do) rather than recoverable conditions.
#[derive(Clone, PartialEq)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{:?}", self.shape)?;
        if self.data.len() <= 16 {
            write!(f, " {:?}", self.data)
        } else {
            write!(f, " [{} elements]", self.data.len())
        }
    }
}

impl Tensor {
    // ------------------------------------------------------------------
    // Construction
    // ------------------------------------------------------------------

    /// A tensor filled with zeros.
    pub fn zeros(shape: &[usize]) -> Self {
        Tensor { shape: shape.to_vec(), data: vec![0.0; numel(shape)] }
    }

    /// A tensor filled with ones.
    pub fn ones(shape: &[usize]) -> Self {
        Self::full(shape, 1.0)
    }

    /// A tensor filled with `value`.
    pub fn full(shape: &[usize], value: f32) -> Self {
        Tensor { shape: shape.to_vec(), data: vec![value; numel(shape)] }
    }

    /// A scalar tensor (shape `[1]`).
    pub fn scalar(value: f32) -> Self {
        Tensor { shape: vec![1], data: vec![value] }
    }

    /// Build from a data vector; panics if the length does not match.
    pub fn from_vec(data: Vec<f32>, shape: &[usize]) -> Self {
        Self::try_from_vec(data, shape).expect("Tensor::from_vec")
    }

    /// Fallible variant of [`Tensor::from_vec`].
    pub fn try_from_vec(data: Vec<f32>, shape: &[usize]) -> Result<Self, TensorError> {
        let expected = numel(shape);
        if data.len() != expected {
            return Err(TensorError::ShapeMismatch { expected, got: data.len() });
        }
        Ok(Tensor { shape: shape.to_vec(), data })
    }

    /// Build by evaluating `f` at each flat index.
    pub fn from_fn(shape: &[usize], mut f: impl FnMut(usize) -> f32) -> Self {
        let n = numel(shape);
        Tensor { shape: shape.to_vec(), data: (0..n).map(&mut f).collect() }
    }

    /// I.i.d. normal entries `N(0, std²)`.
    pub fn randn<R: rand::Rng + ?Sized>(shape: &[usize], std: f32, rng: &mut R) -> Self {
        Self::from_fn(shape, |_| crate::box_muller(rng) * std)
    }

    /// I.i.d. uniform entries in `[lo, hi)`.
    pub fn rand_uniform<R: rand::Rng + ?Sized>(
        shape: &[usize],
        lo: f32,
        hi: f32,
        rng: &mut R,
    ) -> Self {
        Self::from_fn(shape, |_| lo + (hi - lo) * rng.random::<f32>())
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// The shape.
    #[inline]
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Number of dimensions.
    #[inline]
    pub fn ndim(&self) -> usize {
        self.shape.len()
    }

    /// Total element count.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the tensor has zero elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the flat data.
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the flat data.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consume into the flat data vector.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// The single value of a scalar tensor.
    pub fn item(&self) -> f32 {
        assert_eq!(self.data.len(), 1, "Tensor::item on non-scalar shape {:?}", self.shape);
        self.data[0]
    }

    /// Element at a multi-dimensional index.
    pub fn at(&self, idx: &[usize]) -> f32 {
        self.data[self.flat_index(idx)]
    }

    /// Mutable element at a multi-dimensional index.
    pub fn at_mut(&mut self, idx: &[usize]) -> &mut f32 {
        let i = self.flat_index(idx);
        &mut self.data[i]
    }

    fn flat_index(&self, idx: &[usize]) -> usize {
        assert_eq!(idx.len(), self.shape.len(), "index rank mismatch");
        let mut flat = 0;
        for (d, (&i, &s)) in idx.iter().zip(&self.shape).enumerate() {
            assert!(i < s, "index {i} out of bounds for dim {d} of size {s}");
            flat = flat * s + i;
        }
        flat
    }

    /// Reinterpret with a new shape of identical element count.
    pub fn reshaped(&self, shape: &[usize]) -> Tensor {
        assert_eq!(
            numel(shape),
            self.data.len(),
            "reshape from {:?} to {:?} changes element count",
            self.shape,
            shape
        );
        Tensor { shape: shape.to_vec(), data: self.data.clone() }
    }

    /// In-place reshape (no data movement).
    pub fn reshape_in_place(&mut self, shape: &[usize]) {
        assert_eq!(
            numel(shape),
            self.data.len(),
            "reshape from {:?} to {:?} changes element count",
            self.shape,
            shape
        );
        self.shape = shape.to_vec();
    }

    // ------------------------------------------------------------------
    // Elementwise kernels
    // ------------------------------------------------------------------

    /// Elementwise map into a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor { shape: self.shape.clone(), data: self.data.iter().map(|&x| f(x)).collect() }
    }

    /// Elementwise combine with another tensor of identical shape.
    pub fn zip_map(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
        assert_eq!(self.shape, other.shape, "zip_map shape mismatch");
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().zip(&other.data).map(|(&a, &b)| f(a, b)).collect(),
        }
    }

    /// `self + other`.
    pub fn add(&self, other: &Tensor) -> Tensor {
        self.zip_map(other, |a, b| a + b)
    }

    /// `self - other`.
    pub fn sub(&self, other: &Tensor) -> Tensor {
        self.zip_map(other, |a, b| a - b)
    }

    /// Hadamard product.
    pub fn mul(&self, other: &Tensor) -> Tensor {
        self.zip_map(other, |a, b| a * b)
    }

    /// `self * c`.
    pub fn scale(&self, c: f32) -> Tensor {
        self.map(|x| x * c)
    }

    /// `self += other` in place.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "add_assign shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// `self += c * other` in place (axpy).
    pub fn axpy(&mut self, c: f32, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "axpy shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += c * b;
        }
    }

    /// Fill with zeros in place.
    pub fn zero_(&mut self) {
        self.data.iter_mut().for_each(|x| *x = 0.0);
    }

    /// Sum of all entries.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all entries (0 for an empty tensor).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Squared L2 norm.
    pub fn sq_norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum()
    }

    // ------------------------------------------------------------------
    // Linear algebra
    // ------------------------------------------------------------------

    /// 2-D matrix multiply: `[m,k] @ [k,n] -> [m,n]`.
    ///
    /// Cache-friendly `i-k-j` loop order; inner loop is an axpy over the
    /// output row which LLVM auto-vectorises.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.ndim(), 2, "matmul lhs must be 2-D, got {:?}", self.shape);
        assert_eq!(other.ndim(), 2, "matmul rhs must be 2-D, got {:?}", other.shape);
        let (m, k) = (self.shape[0], self.shape[1]);
        let (k2, n) = (other.shape[0], other.shape[1]);
        assert_eq!(k, k2, "matmul inner dims differ: {:?} vs {:?}", self.shape, other.shape);
        let mut out = vec![0.0f32; m * n];
        matmul_into(&self.data, &other.data, &mut out, m, k, n);
        Tensor { shape: vec![m, n], data: out }
    }

    /// Batched 3-D matmul: `[b,m,k] @ [b,k,n] -> [b,m,n]`.
    pub fn bmm(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.ndim(), 3, "bmm lhs must be 3-D, got {:?}", self.shape);
        assert_eq!(other.ndim(), 3, "bmm rhs must be 3-D, got {:?}", other.shape);
        let (b, m, k) = (self.shape[0], self.shape[1], self.shape[2]);
        let (b2, k2, n) = (other.shape[0], other.shape[1], other.shape[2]);
        assert_eq!(b, b2, "bmm batch dims differ");
        assert_eq!(k, k2, "bmm inner dims differ: {:?} vs {:?}", self.shape, other.shape);
        let mut out = vec![0.0f32; b * m * n];
        for i in 0..b {
            matmul_into(
                &self.data[i * m * k..(i + 1) * m * k],
                &other.data[i * k * n..(i + 1) * k * n],
                &mut out[i * m * n..(i + 1) * m * n],
                m,
                k,
                n,
            );
        }
        Tensor { shape: vec![b, m, n], data: out }
    }

    /// 2-D transpose.
    pub fn transpose2d(&self) -> Tensor {
        assert_eq!(self.ndim(), 2, "transpose2d needs 2-D, got {:?}", self.shape);
        let (m, n) = (self.shape[0], self.shape[1]);
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                out[j * m + i] = self.data[i * n + j];
            }
        }
        Tensor { shape: vec![n, m], data: out }
    }

    /// Swap the last two axes of a 3-D tensor: `[b,m,n] -> [b,n,m]`.
    pub fn transpose_last2(&self) -> Tensor {
        assert_eq!(self.ndim(), 3, "transpose_last2 needs 3-D, got {:?}", self.shape);
        let (b, m, n) = (self.shape[0], self.shape[1], self.shape[2]);
        let mut out = vec![0.0f32; b * m * n];
        for i in 0..b {
            let src = &self.data[i * m * n..(i + 1) * m * n];
            let dst = &mut out[i * m * n..(i + 1) * m * n];
            for r in 0..m {
                for c in 0..n {
                    dst[c * m + r] = src[r * n + c];
                }
            }
        }
        Tensor { shape: vec![b, n, m], data: out }
    }

    // ------------------------------------------------------------------
    // Softmax-family kernels (forward only; differentiable wrappers live
    // in the autograd ops modules)
    // ------------------------------------------------------------------

    /// Softmax along the last axis (numerically stable).
    pub fn softmax_last(&self) -> Tensor {
        let d = *self.shape.last().expect("softmax on 0-d tensor");
        assert!(d > 0, "softmax over empty last axis");
        let mut out = self.data.clone();
        for row in out.chunks_mut(d) {
            softmax_in_place(row);
        }
        Tensor { shape: self.shape.clone(), data: out }
    }

    /// Log-softmax along the last axis (numerically stable).
    pub fn log_softmax_last(&self) -> Tensor {
        let d = *self.shape.last().expect("log_softmax on 0-d tensor");
        assert!(d > 0, "log_softmax over empty last axis");
        let mut out = self.data.clone();
        for row in out.chunks_mut(d) {
            let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let lse = m + row.iter().map(|&x| (x - m).exp()).sum::<f32>().ln();
            row.iter_mut().for_each(|x| *x -= lse);
        }
        Tensor { shape: self.shape.clone(), data: out }
    }

    /// Gather rows of a 2-D tensor: `self[indices, :]`.
    pub fn gather_rows(&self, indices: &[usize]) -> Tensor {
        assert_eq!(self.ndim(), 2, "gather_rows needs 2-D, got {:?}", self.shape);
        let (rows, d) = (self.shape[0], self.shape[1]);
        let mut out = Vec::with_capacity(indices.len() * d);
        for &i in indices {
            assert!(i < rows, "gather_rows index {i} out of bounds ({rows} rows)");
            out.extend_from_slice(&self.data[i * d..(i + 1) * d]);
        }
        Tensor { shape: vec![indices.len(), d], data: out }
    }
}

/// Softmax of one row, in place and numerically stable.
pub(crate) fn softmax_in_place(row: &mut [f32]) {
    let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0;
    for x in row.iter_mut() {
        *x = (*x - m).exp();
        sum += *x;
    }
    if sum > 0.0 {
        let inv = 1.0 / sum;
        row.iter_mut().for_each(|x| *x *= inv);
    } else {
        // All entries were -inf; fall back to uniform to avoid NaN.
        let u = 1.0 / row.len() as f32;
        row.iter_mut().for_each(|x| *x = u);
    }
}

/// `out += a @ b` where `a` is `m×k`, `b` is `k×n`, `out` is `m×n` (zeroed by caller).
pub(crate) fn matmul_into(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let out_row = &mut out[i * n..(i + 1) * n];
        for (p, &a_ip) in a_row.iter().enumerate() {
            if a_ip == 0.0 {
                continue;
            }
            let b_row = &b[p * n..(p + 1) * n];
            for (o, &b_pj) in out_row.iter_mut().zip(b_row) {
                *o += a_ip * b_pj;
            }
        }
    }
}

/// Product of a shape's dimensions.
pub(crate) fn numel(shape: &[usize]) -> usize {
    shape.iter().product()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        assert_eq!(t.shape(), &[2, 3]);
        assert_eq!(t.ndim(), 2);
        assert_eq!(t.len(), 6);
        assert_eq!(t.at(&[1, 2]), 6.0);
        assert_eq!(t.at(&[0, 0]), 1.0);
    }

    #[test]
    fn try_from_vec_rejects_bad_shapes() {
        let err = Tensor::try_from_vec(vec![1.0; 5], &[2, 3]).unwrap_err();
        assert_eq!(err, TensorError::ShapeMismatch { expected: 6, got: 5 });
    }

    #[test]
    #[should_panic(expected = "matmul inner dims differ")]
    fn matmul_rejects_mismatched_inner_dims() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[4, 2]);
        let _ = a.matmul(&b);
    }

    #[test]
    fn matmul_matches_hand_computed() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = Tensor::from_vec((0..12).map(|x| x as f32).collect(), &[3, 4]);
        let id = Tensor::from_fn(&[4, 4], |i| if i / 4 == i % 4 { 1.0 } else { 0.0 });
        assert_eq!(a.matmul(&id), a);
    }

    #[test]
    fn bmm_matches_per_batch_matmul() {
        let a = Tensor::from_vec((0..12).map(|x| x as f32).collect(), &[2, 2, 3]);
        let b = Tensor::from_vec((0..12).map(|x| (x as f32) * 0.5).collect(), &[2, 3, 2]);
        let c = a.bmm(&b);
        for i in 0..2 {
            let ai = Tensor::from_vec(a.data()[i * 6..(i + 1) * 6].to_vec(), &[2, 3]);
            let bi = Tensor::from_vec(b.data()[i * 6..(i + 1) * 6].to_vec(), &[3, 2]);
            let ci = ai.matmul(&bi);
            assert_eq!(&c.data()[i * 4..(i + 1) * 4], ci.data());
        }
    }

    #[test]
    fn transpose2d_round_trips() {
        let a = Tensor::from_vec((0..6).map(|x| x as f32).collect(), &[2, 3]);
        let t = a.transpose2d();
        assert_eq!(t.shape(), &[3, 2]);
        assert_eq!(t.at(&[2, 1]), a.at(&[1, 2]));
        assert_eq!(t.transpose2d(), a);
    }

    #[test]
    fn transpose_last2_round_trips() {
        let a = Tensor::from_vec((0..24).map(|x| x as f32).collect(), &[2, 3, 4]);
        let t = a.transpose_last2();
        assert_eq!(t.shape(), &[2, 4, 3]);
        assert_eq!(t.at(&[1, 3, 2]), a.at(&[1, 2, 3]));
        assert_eq!(t.transpose_last2(), a);
    }

    #[test]
    fn softmax_rows_sum_to_one_and_order_preserved() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0], &[2, 3]);
        let s = t.softmax_last();
        for row in s.data().chunks(3) {
            let sum: f32 = row.iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
            assert!(row[0] < row[1] && row[1] < row[2]);
        }
    }

    #[test]
    fn softmax_handles_all_neg_inf_row() {
        let t = Tensor::from_vec(vec![f32::NEG_INFINITY; 4], &[1, 4]);
        let s = t.softmax_last();
        for &p in s.data() {
            assert!((p - 0.25).abs() < 1e-6);
        }
    }

    #[test]
    fn log_softmax_is_log_of_softmax() {
        let t = Tensor::from_vec(vec![0.3, -0.7, 1.9, 0.0, 5.0, -5.0], &[2, 3]);
        let a = t.log_softmax_last();
        let b = t.softmax_last().map(f32::ln);
        for (x, y) in a.data().iter().zip(b.data()) {
            assert!((x - y).abs() < 1e-4, "{x} vs {y}");
        }
    }

    #[test]
    fn gather_rows_picks_expected_rows() {
        let t = Tensor::from_vec((0..8).map(|x| x as f32).collect(), &[4, 2]);
        let g = t.gather_rows(&[3, 0, 3]);
        assert_eq!(g.shape(), &[3, 2]);
        assert_eq!(g.data(), &[6.0, 7.0, 0.0, 1.0, 6.0, 7.0]);
    }

    #[test]
    fn axpy_and_add_assign() {
        let mut a = Tensor::from_vec(vec![1.0, 2.0], &[2]);
        let b = Tensor::from_vec(vec![10.0, 20.0], &[2]);
        a.axpy(0.5, &b);
        assert_eq!(a.data(), &[6.0, 12.0]);
        a.add_assign(&b);
        assert_eq!(a.data(), &[16.0, 32.0]);
    }

    #[test]
    fn reshape_preserves_data() {
        let a = Tensor::from_vec((0..6).map(|x| x as f32).collect(), &[2, 3]);
        let b = a.reshaped(&[3, 2]);
        assert_eq!(b.shape(), &[3, 2]);
        assert_eq!(b.data(), a.data());
    }

    #[test]
    fn stats_helpers() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]);
        assert_eq!(t.sum(), 6.0);
        assert_eq!(t.mean(), 2.0);
        assert_eq!(t.sq_norm(), 14.0);
    }

    #[test]
    fn randn_seeded_is_deterministic() {
        use rand::SeedableRng;
        let mut r1 = rand::rngs::StdRng::seed_from_u64(42);
        let mut r2 = rand::rngs::StdRng::seed_from_u64(42);
        let a = Tensor::randn(&[4, 4], 0.1, &mut r1);
        let b = Tensor::randn(&[4, 4], 0.1, &mut r2);
        assert_eq!(a, b);
    }
}
