//! The dense tensor type and its non-differentiable kernels.

use std::fmt;

/// Error type for fallible tensor constructors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// Data length does not match the product of the shape dimensions.
    ShapeMismatch { expected: usize, got: usize },
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::ShapeMismatch { expected, got } => {
                write!(f, "shape requires {expected} elements but data has {got}")
            }
        }
    }
}

impl std::error::Error for TensorError {}

/// A contiguous, row-major `f32` tensor.
///
/// All kernels assert shape compatibility with descriptive messages; the
/// workspace treats shape errors as programming bugs (like `ndarray` and
/// most ML runtimes do) rather than recoverable conditions.
#[derive(Clone, PartialEq)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{:?}", self.shape)?;
        if self.data.len() <= 16 {
            write!(f, " {:?}", self.data)
        } else {
            write!(f, " [{} elements]", self.data.len())
        }
    }
}

impl Tensor {
    // ------------------------------------------------------------------
    // Construction
    // ------------------------------------------------------------------

    /// A tensor filled with zeros.
    pub fn zeros(shape: &[usize]) -> Self {
        Tensor { shape: shape.to_vec(), data: vec![0.0; numel(shape)] }
    }

    /// A tensor filled with ones.
    pub fn ones(shape: &[usize]) -> Self {
        Self::full(shape, 1.0)
    }

    /// A tensor filled with `value`.
    pub fn full(shape: &[usize], value: f32) -> Self {
        Tensor { shape: shape.to_vec(), data: vec![value; numel(shape)] }
    }

    /// A scalar tensor (shape `[1]`).
    pub fn scalar(value: f32) -> Self {
        Tensor { shape: vec![1], data: vec![value] }
    }

    /// Build from a data vector; panics if the length does not match.
    pub fn from_vec(data: Vec<f32>, shape: &[usize]) -> Self {
        Self::try_from_vec(data, shape).expect("Tensor::from_vec")
    }

    /// Fallible variant of [`Tensor::from_vec`].
    pub fn try_from_vec(data: Vec<f32>, shape: &[usize]) -> Result<Self, TensorError> {
        let expected = numel(shape);
        if data.len() != expected {
            return Err(TensorError::ShapeMismatch { expected, got: data.len() });
        }
        Ok(Tensor { shape: shape.to_vec(), data })
    }

    /// Build by evaluating `f` at each flat index.
    pub fn from_fn(shape: &[usize], mut f: impl FnMut(usize) -> f32) -> Self {
        let n = numel(shape);
        Tensor { shape: shape.to_vec(), data: (0..n).map(&mut f).collect() }
    }

    /// I.i.d. normal entries `N(0, std²)`.
    pub fn randn<R: rand::Rng + ?Sized>(shape: &[usize], std: f32, rng: &mut R) -> Self {
        Self::from_fn(shape, |_| crate::box_muller(rng) * std)
    }

    /// I.i.d. uniform entries in `[lo, hi)`.
    pub fn rand_uniform<R: rand::Rng + ?Sized>(
        shape: &[usize],
        lo: f32,
        hi: f32,
        rng: &mut R,
    ) -> Self {
        Self::from_fn(shape, |_| lo + (hi - lo) * rng.random::<f32>())
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// The shape.
    #[inline]
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Number of dimensions.
    #[inline]
    pub fn ndim(&self) -> usize {
        self.shape.len()
    }

    /// Total element count.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the tensor has zero elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the flat data.
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the flat data.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consume into the flat data vector.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// The single value of a scalar tensor.
    pub fn item(&self) -> f32 {
        assert_eq!(self.data.len(), 1, "Tensor::item on non-scalar shape {:?}", self.shape);
        self.data[0]
    }

    /// Element at a multi-dimensional index.
    pub fn at(&self, idx: &[usize]) -> f32 {
        self.data[self.flat_index(idx)]
    }

    /// Mutable element at a multi-dimensional index.
    pub fn at_mut(&mut self, idx: &[usize]) -> &mut f32 {
        let i = self.flat_index(idx);
        &mut self.data[i]
    }

    fn flat_index(&self, idx: &[usize]) -> usize {
        assert_eq!(idx.len(), self.shape.len(), "index rank mismatch");
        let mut flat = 0;
        for (d, (&i, &s)) in idx.iter().zip(&self.shape).enumerate() {
            assert!(i < s, "index {i} out of bounds for dim {d} of size {s}");
            flat = flat * s + i;
        }
        flat
    }

    /// Reinterpret with a new shape of identical element count.
    pub fn reshaped(&self, shape: &[usize]) -> Tensor {
        assert_eq!(
            numel(shape),
            self.data.len(),
            "reshape from {:?} to {:?} changes element count",
            self.shape,
            shape
        );
        Tensor { shape: shape.to_vec(), data: self.data.clone() }
    }

    /// In-place reshape (no data movement).
    pub fn reshape_in_place(&mut self, shape: &[usize]) {
        assert_eq!(
            numel(shape),
            self.data.len(),
            "reshape from {:?} to {:?} changes element count",
            self.shape,
            shape
        );
        self.shape = shape.to_vec();
    }

    // ------------------------------------------------------------------
    // Elementwise kernels
    // ------------------------------------------------------------------

    /// Elementwise map into a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor { shape: self.shape.clone(), data: self.data.iter().map(|&x| f(x)).collect() }
    }

    /// Elementwise combine with another tensor of identical shape.
    pub fn zip_map(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
        assert_eq!(self.shape, other.shape, "zip_map shape mismatch");
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().zip(&other.data).map(|(&a, &b)| f(a, b)).collect(),
        }
    }

    /// `self + other`.
    pub fn add(&self, other: &Tensor) -> Tensor {
        self.zip_map(other, |a, b| a + b)
    }

    /// `self - other`.
    pub fn sub(&self, other: &Tensor) -> Tensor {
        self.zip_map(other, |a, b| a - b)
    }

    /// Hadamard product.
    pub fn mul(&self, other: &Tensor) -> Tensor {
        self.zip_map(other, |a, b| a * b)
    }

    /// `self * c`.
    pub fn scale(&self, c: f32) -> Tensor {
        self.map(|x| x * c)
    }

    /// `self += other` in place.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "add_assign shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// `self += other` elementwise, ignoring shape metadata (element
    /// counts must match) — the backward of reshape-like ops.
    pub fn add_assign_flat(&mut self, other: &Tensor) {
        assert_eq!(self.data.len(), other.data.len(), "add_assign_flat length mismatch");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// `self += c * other` in place (axpy).
    pub fn axpy(&mut self, c: f32, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "axpy shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += c * b;
        }
    }

    /// Fill with zeros in place.
    pub fn zero_(&mut self) {
        self.data.iter_mut().for_each(|x| *x = 0.0);
    }

    /// Sum of all entries.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all entries (0 for an empty tensor).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Squared L2 norm.
    pub fn sq_norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum()
    }

    // ------------------------------------------------------------------
    // Linear algebra
    // ------------------------------------------------------------------

    /// 2-D matrix multiply: `[m,k] @ [k,n] -> [m,n]`.
    ///
    /// Delegates to [`matmul_into`]: blocked `i-k-j` order (inner loop is an
    /// axpy over the output row which LLVM auto-vectorises), thread-parallel
    /// over row blocks for large shapes.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.ndim(), 2, "matmul lhs must be 2-D, got {:?}", self.shape);
        assert_eq!(other.ndim(), 2, "matmul rhs must be 2-D, got {:?}", other.shape);
        let (m, k) = (self.shape[0], self.shape[1]);
        let (k2, n) = (other.shape[0], other.shape[1]);
        assert_eq!(k, k2, "matmul inner dims differ: {:?} vs {:?}", self.shape, other.shape);
        let mut out = vec![0.0f32; m * n];
        matmul_into(&self.data, &other.data, &mut out, m, k, n);
        Tensor { shape: vec![m, n], data: out }
    }

    /// Batched 3-D matmul: `[b,m,k] @ [b,k,n] -> [b,m,n]`.
    ///
    /// Independent batch slices fan out over threads when the total work is
    /// large enough to amortise the spawn cost (batched inference across
    /// many users); each slice runs the same serial kernel, so results are
    /// identical to the sequential loop.
    pub fn bmm(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.ndim(), 3, "bmm lhs must be 3-D, got {:?}", self.shape);
        assert_eq!(other.ndim(), 3, "bmm rhs must be 3-D, got {:?}", other.shape);
        let (b, m, k) = (self.shape[0], self.shape[1], self.shape[2]);
        let (b2, k2, n) = (other.shape[0], other.shape[1], other.shape[2]);
        assert_eq!(b, b2, "bmm batch dims differ");
        assert_eq!(k, k2, "bmm inner dims differ: {:?} vs {:?}", self.shape, other.shape);
        let mut out = vec![0.0f32; b * m * n];
        bmm_into(&self.data, &other.data, &mut out, b, m, k, n);
        Tensor { shape: vec![b, m, n], data: out }
    }

    /// 2-D transpose.
    pub fn transpose2d(&self) -> Tensor {
        assert_eq!(self.ndim(), 2, "transpose2d needs 2-D, got {:?}", self.shape);
        let (m, n) = (self.shape[0], self.shape[1]);
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                out[j * m + i] = self.data[i * n + j];
            }
        }
        Tensor { shape: vec![n, m], data: out }
    }

    /// Swap the last two axes of a 3-D tensor: `[b,m,n] -> [b,n,m]`.
    pub fn transpose_last2(&self) -> Tensor {
        assert_eq!(self.ndim(), 3, "transpose_last2 needs 3-D, got {:?}", self.shape);
        let (b, m, n) = (self.shape[0], self.shape[1], self.shape[2]);
        let mut out = vec![0.0f32; b * m * n];
        for i in 0..b {
            let src = &self.data[i * m * n..(i + 1) * m * n];
            let dst = &mut out[i * m * n..(i + 1) * m * n];
            for r in 0..m {
                for c in 0..n {
                    dst[c * m + r] = src[r * n + c];
                }
            }
        }
        Tensor { shape: vec![b, n, m], data: out }
    }

    // ------------------------------------------------------------------
    // Softmax-family kernels (forward only; differentiable wrappers live
    // in the autograd ops modules)
    // ------------------------------------------------------------------

    /// Softmax along the last axis (numerically stable).
    pub fn softmax_last(&self) -> Tensor {
        let mut out = self.clone();
        out.softmax_last_in_place();
        out
    }

    /// In-place variant of [`Tensor::softmax_last`] — the inference path
    /// normalises attention rows without an intermediate allocation, using
    /// the identical per-row kernel.
    pub fn softmax_last_in_place(&mut self) {
        let d = *self.shape.last().expect("softmax on 0-d tensor");
        assert!(d > 0, "softmax over empty last axis");
        for row in self.data.chunks_mut(d) {
            softmax_in_place(row);
        }
    }

    /// Log-softmax along the last axis (numerically stable).
    pub fn log_softmax_last(&self) -> Tensor {
        let d = *self.shape.last().expect("log_softmax on 0-d tensor");
        assert!(d > 0, "log_softmax over empty last axis");
        let mut out = self.data.clone();
        for row in out.chunks_mut(d) {
            let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let lse = m + row.iter().map(|&x| (x - m).exp()).sum::<f32>().ln();
            row.iter_mut().for_each(|x| *x -= lse);
        }
        Tensor { shape: self.shape.clone(), data: out }
    }

    /// Select timestep `t` from a `[B, T, D]` tensor -> `[B, D]` (the
    /// value-level mirror of `Var::select_step`).
    pub fn select_step(&self, t: usize) -> Tensor {
        assert_eq!(self.ndim(), 3, "select_step needs 3-D, got {:?}", self.shape);
        let (b, tt, d) = (self.shape[0], self.shape[1], self.shape[2]);
        assert!(t < tt, "select_step index {t} out of bounds for T={tt}");
        let mut out = Vec::with_capacity(b * d);
        for bi in 0..b {
            out.extend_from_slice(&self.data[bi * tt * d + t * d..bi * tt * d + (t + 1) * d]);
        }
        Tensor { shape: vec![b, d], data: out }
    }

    /// Gather rows of a 2-D tensor: `self[indices, :]`.
    pub fn gather_rows(&self, indices: &[usize]) -> Tensor {
        assert_eq!(self.ndim(), 2, "gather_rows needs 2-D, got {:?}", self.shape);
        let (rows, d) = (self.shape[0], self.shape[1]);
        let mut out = Vec::with_capacity(indices.len() * d);
        for &i in indices {
            assert!(i < rows, "gather_rows index {i} out of bounds ({rows} rows)");
            out.extend_from_slice(&self.data[i * d..(i + 1) * d]);
        }
        Tensor { shape: vec![indices.len(), d], data: out }
    }

    /// Unfold sliding windows of width `w` along the time axis:
    /// `[B, T, D] -> [B, T-w+1, w*D]` — the value-level mirror of
    /// `Var::unfold_windows` (Caser's im2col step).
    pub fn unfold_windows(&self, w: usize) -> Tensor {
        assert_eq!(self.ndim(), 3, "unfold_windows needs 3-D, got {:?}", self.shape);
        let (b, t, d) = (self.shape[0], self.shape[1], self.shape[2]);
        assert!(w >= 1 && w <= t, "window width {w} out of range for T={t}");
        let windows = t - w + 1;
        let mut out = vec![0.0f32; b * windows * w * d];
        for bi in 0..b {
            for s in 0..windows {
                let dst = bi * windows * w * d + s * w * d;
                let src = bi * t * d + s * d;
                out[dst..dst + w * d].copy_from_slice(&self.data[src..src + w * d]);
            }
        }
        Tensor { shape: vec![b, windows, w * d], data: out }
    }

    /// Concatenate along the last axis — the value-level mirror of
    /// `Var::concat_last`.  All inputs must agree on the leading axes.
    pub fn concat_last(parts: &[&Tensor]) -> Tensor {
        assert!(!parts.is_empty(), "concat_last of zero tensors");
        let lead = &parts[0].shape[..parts[0].shape.len() - 1];
        for p in parts {
            assert_eq!(
                &p.shape[..p.shape.len() - 1],
                lead,
                "concat_last leading axes differ: {:?}",
                parts.iter().map(|p| &p.shape).collect::<Vec<_>>()
            );
        }
        let widths: Vec<usize> = parts.iter().map(|p| *p.shape.last().unwrap()).collect();
        let total_w: usize = widths.iter().sum();
        let rows: usize = lead.iter().product();
        let mut out_shape = lead.to_vec();
        out_shape.push(total_w);
        let mut data = vec![0.0f32; rows * total_w];
        for r in 0..rows {
            let mut off = 0;
            for (p, &w) in parts.iter().zip(&widths) {
                data[r * total_w + off..r * total_w + off + w]
                    .copy_from_slice(&p.data[r * w..(r + 1) * w]);
                off += w;
            }
        }
        Tensor { shape: out_shape, data }
    }
}

/// Softmax of one row, in place and numerically stable.
pub(crate) fn softmax_in_place(row: &mut [f32]) {
    let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0;
    for x in row.iter_mut() {
        *x = (*x - m).exp();
        sum += *x;
    }
    if sum > 0.0 {
        let inv = 1.0 / sum;
        row.iter_mut().for_each(|x| *x *= inv);
    } else {
        // All entries were -inf; fall back to uniform to avoid NaN.
        let u = 1.0 / row.len() as f32;
        row.iter_mut().for_each(|x| *x = u);
    }
}

/// Tile height over the inner (`k`) axis: one tile of `b` (`K_BLOCK × n`
/// floats) stays cache-resident while it is streamed against every row of
/// `a`.
const K_BLOCK: usize = 64;

/// Panel width of the packed-B kernel: 8 `f32`s — two baseline-SSE2
/// registers (rustc's default x86-64 target) or one AVX2 register, a
/// width LLVM reliably vectorises without spilling.
const NR: usize = 8;

/// Row-tile height of the packed-B kernel: accumulators for `MR × NR`
/// outputs live in registers across the whole `k` loop (`MR·NR/4 = 8`
/// SSE2 registers, leaving half the file for the B panel row and the
/// broadcast A element).
const MR: usize = 4;

/// Minimum B-operand element count (`k·n`) before the packed kernel wins:
/// once B outgrows the fast cache levels (2¹⁷ `f32`s = 512 KiB), the
/// plain kernel's repeated `K_BLOCK × n` tile streaming pays per row of A
/// while the packed panels stay L1-resident per `MR` rows.  Below this
/// the plain kernel runs at SIMD peak and the repack is pure overhead
/// (measured: `cargo bench -p irs_bench --bench tensor_ops`,
/// `matmul_kernel/*`).
const PACK_MIN_KN: usize = 1 << 17;

/// Minimum multiply-accumulate count before a matmul fans out over threads;
/// below this the spawn/join overhead outweighs the parallel speed-up.
const PAR_MIN_WORK: usize = 1 << 19;

/// Kernel worker-thread override: 0 = automatic (work- and core-based).
/// Settable via [`set_kernel_threads`] or the `IRS_KERNEL_THREADS`
/// environment variable; every kernel is bitwise-deterministic at any
/// thread count, so the override only affects scheduling — determinism
/// tests use it to exercise the parallel code paths on any host.
static KERNEL_THREADS: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);
static KERNEL_THREADS_INIT: std::sync::Once = std::sync::Once::new();

/// Force every tensor kernel to fan out over exactly `n` worker threads
/// (`None` restores automatic selection).  Results are bitwise identical
/// either way; this is a scheduling knob, not a numerics knob.
pub fn set_kernel_threads(n: Option<usize>) {
    // Mark the env default as consumed so an explicit call always wins.
    KERNEL_THREADS_INIT.call_once(|| {});
    KERNEL_THREADS.store(n.unwrap_or(0), std::sync::atomic::Ordering::Relaxed);
}

fn kernel_threads_override() -> usize {
    KERNEL_THREADS_INIT.call_once(|| {
        if let Some(n) =
            std::env::var("IRS_KERNEL_THREADS").ok().and_then(|v| v.parse::<usize>().ok())
        {
            KERNEL_THREADS.store(n, std::sync::atomic::Ordering::Relaxed);
        }
    });
    KERNEL_THREADS.load(std::sync::atomic::Ordering::Relaxed)
}

/// Worker-thread count for a kernel of `work` multiply-accumulates: 1 when
/// the problem is small or the host is single-core, otherwise capped so
/// every thread keeps at least `PAR_MIN_WORK` MACs.
fn parallelism_for(work: usize) -> usize {
    let forced = kernel_threads_override();
    if forced > 0 {
        return forced.min(16);
    }
    if work < 2 * PAR_MIN_WORK {
        return 1;
    }
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    cores.min(work / PAR_MIN_WORK).min(16)
}

/// `out += a @ b` where `a` is `m×k`, `b` is `k×n`, `out` is `m×n` (zeroed
/// by the caller).
///
/// Dispatch layer over two serial kernels, both thread-parallel over row
/// blocks for large shapes (`std::thread::scope`, no dependencies):
///
/// * [`matmul_into_plain`] — `K_BLOCK`-tiled `i-k-j` loop, no setup cost;
///   runs at SIMD peak while its B tiles stay cache-resident, so it is
///   chosen for every model-sized shape.
/// * [`matmul_into_packed`] — A and B repacked once per call (B into
///   contiguous `NR`-wide block-major panels, A row blocks transposed to
///   step-major), then an `MR × NR` register-tiled kernel streams the
///   panels; chosen when the B operand outgrows the fast caches and the
///   plain kernel turns memory-bound.
///
/// Every output element accumulates its `k` products in increasing-`k`
/// order regardless of kernel, blocking or threading, so results are
/// bitwise identical to the naive `i-k-j` loop — batched forwards
/// reproduce scalar forwards exactly even when dispatch picks different
/// kernels for the batched and scalar shapes.
pub fn matmul_into(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    if should_pack(m, k, n) {
        matmul_into_packed(a, b, out, m, k, n);
    } else {
        matmul_into_plain(a, b, out, m, k, n);
    }
}

/// True when the packed-B kernel's repack pass (`k·n` copies plus panel
/// zero-padding) is amortised: enough rows to reuse each panel, at least
/// one full panel of columns, and a B operand big enough that the plain
/// kernel's tile streaming falls out of cache.
fn should_pack(m: usize, k: usize, n: usize) -> bool {
    m >= 2 * MR && n >= NR && k * n >= PACK_MIN_KN
}

/// Plain blocked `out += a @ b`: `K_BLOCK`-tiled serial kernel, rows fanned
/// out over threads for large shapes.
pub fn matmul_into_plain(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    let threads = parallelism_for(m * k * n).min(m);
    if threads > 1 {
        let rows_per = m.div_ceil(threads);
        std::thread::scope(|scope| {
            for (chunk_idx, out_chunk) in out.chunks_mut(rows_per * n).enumerate() {
                let row0 = chunk_idx * rows_per;
                let rows = out_chunk.len() / n;
                let a_chunk = &a[row0 * k..(row0 + rows) * k];
                scope.spawn(move || matmul_block(a_chunk, b, out_chunk, rows, k, n));
            }
        });
    } else {
        matmul_block(a, b, out, m, k, n);
    }
}

/// Packed-B `out += a @ b`: B is repacked once into block-major panels,
/// then every row block streams the packed buffer with the register-tiled
/// kernel.  Threads share the one packed copy.
pub fn matmul_into_packed(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    let packed = pack_b(b, k, n);
    let threads = parallelism_for(m * k * n).min(m);
    if threads > 1 {
        let rows_per = m.div_ceil(threads);
        let packed = &packed;
        std::thread::scope(|scope| {
            for (chunk_idx, out_chunk) in out.chunks_mut(rows_per * n).enumerate() {
                let row0 = chunk_idx * rows_per;
                let rows = out_chunk.len() / n;
                let a_chunk = &a[row0 * k..(row0 + rows) * k];
                scope.spawn(move || matmul_block_packed(a_chunk, packed, out_chunk, rows, k, n));
            }
        });
    } else {
        matmul_block_packed(a, &packed, out, m, k, n);
    }
}

/// Repack `b` (`k×n`, row-major) into `NR`-wide block-major panels: panel
/// `pi` holds columns `pi·NR .. pi·NR+NR` contiguously per `k` row, so the
/// packed kernel's inner loop reads `NR` consecutive floats instead of
/// striding by `n`.  The ragged last panel is zero-padded — padding lanes
/// multiply into accumulators that are never written back.
fn pack_b(b: &[f32], k: usize, n: usize) -> Vec<f32> {
    let panels = n.div_ceil(NR);
    let mut packed = vec![0.0f32; panels * k * NR];
    for pi in 0..panels {
        let j0 = pi * NR;
        let w = NR.min(n - j0);
        let base = pi * k * NR;
        for p in 0..k {
            packed[base + p * NR..base + p * NR + w]
                .copy_from_slice(&b[p * n + j0..p * n + j0 + w]);
        }
    }
    packed
}

/// Register-tiled serial kernel over packed panels: for each `MR × NR`
/// output tile the accumulators stay in registers across the whole `k`
/// loop.  Per output element the `k` products are added in increasing
/// order with the same skip-zero-`a` rule as [`matmul_block`], so results
/// are bitwise identical to the plain kernel.
///
/// Full tiles and ragged remainder rows run through separate helpers with
/// compile-time loop bounds — a runtime row count would stop LLVM from
/// unrolling the row loop and keeping the accumulators in registers.
fn matmul_block_packed(a: &[f32], packed: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    let panels = n.div_ceil(NR);
    // A row blocks transposed once to [k, MR] so each step's multipliers
    // are contiguous; reused across every panel.
    let full_tiles = m / MR;
    let mut at = vec![0.0f32; full_tiles * k * MR];
    for ti in 0..full_tiles {
        let block = &mut at[ti * k * MR..(ti + 1) * k * MR];
        for r in 0..MR {
            for (p, chunk) in block.chunks_exact_mut(MR).enumerate() {
                chunk[r] = a[(ti * MR + r) * k + p];
            }
        }
    }
    for pi in 0..panels {
        let j0 = pi * NR;
        let w = NR.min(n - j0);
        let bp = &packed[pi * k * NR..(pi + 1) * k * NR];
        let mut i = 0;
        for ti in 0..full_tiles {
            let g = TileGeom { i, k, n, j0, w };
            packed_tile_full(&at[ti * k * MR..(ti + 1) * k * MR], bp, out, g);
            i += MR;
        }
        while i < m {
            packed_tile_row(a, bp, out, TileGeom { i, k, n, j0, w });
            i += 1;
        }
    }
}

/// Geometry of one packed-kernel tile: first output row `i`, operand
/// dims `k`/`n`, panel column origin `j0` and live panel width `w`.
#[derive(Clone, Copy)]
struct TileGeom {
    i: usize,
    k: usize,
    n: usize,
    j0: usize,
    w: usize,
}

/// One full `MR × NR` tile of the packed kernel (fixed loop bounds).
///
/// `at` is the row block's A transposed to `[k, MR]` (see
/// [`matmul_block_packed`]) so the `MR` multipliers of step `p` sit in one
/// cache line.  The common all-multipliers-nonzero case runs one branch
/// per `p` followed by straight-line `MR × NR` updates; the rare path
/// applies the per-element skip-zero rule exactly like [`matmul_block`].
#[inline]
fn packed_tile_full(at: &[f32], bp: &[f32], out: &mut [f32], g: TileGeom) {
    let TileGeom { i, k, n, j0, w } = g;
    let mut acc = [[0.0f32; NR]; MR];
    for (r, acc_row) in acc.iter_mut().enumerate() {
        acc_row[..w].copy_from_slice(&out[(i + r) * n + j0..(i + r) * n + j0 + w]);
    }
    for p in 0..k {
        let brow: &[f32; NR] = bp[p * NR..(p + 1) * NR].try_into().expect("panel row");
        let arow: &[f32; MR] = at[p * MR..(p + 1) * MR].try_into().expect("a tile row");
        if arow.iter().all(|&v| v != 0.0) {
            for (acc_row, &a_ip) in acc.iter_mut().zip(arow) {
                for (o, &b_pj) in acc_row.iter_mut().zip(brow) {
                    *o += a_ip * b_pj;
                }
            }
        } else {
            for (acc_row, &a_ip) in acc.iter_mut().zip(arow) {
                if a_ip == 0.0 {
                    continue;
                }
                for (o, &b_pj) in acc_row.iter_mut().zip(brow) {
                    *o += a_ip * b_pj;
                }
            }
        }
    }
    for (r, acc_row) in acc.iter().enumerate() {
        out[(i + r) * n + j0..(i + r) * n + j0 + w].copy_from_slice(&acc_row[..w]);
    }
}

/// One remainder row of the packed kernel (`m % MR` trailing rows).
#[inline]
fn packed_tile_row(a: &[f32], bp: &[f32], out: &mut [f32], g: TileGeom) {
    let TileGeom { i, k, n, j0, w } = g;
    let mut acc = [0.0f32; NR];
    acc[..w].copy_from_slice(&out[i * n + j0..i * n + j0 + w]);
    for p in 0..k {
        let a_ip = a[i * k + p];
        if a_ip == 0.0 {
            continue;
        }
        let brow: &[f32; NR] = bp[p * NR..(p + 1) * NR].try_into().expect("panel row");
        for (o, &b_pj) in acc.iter_mut().zip(brow) {
            *o += a_ip * b_pj;
        }
    }
    out[i * n + j0..i * n + j0 + w].copy_from_slice(&acc[..w]);
}

/// Serial per-slice dispatch used by [`Tensor::bmm`]: each batch slice has
/// its own `b`, so the packed kernel repacks per slice — worth it only
/// when that slice's `m` rows amortise the pass.
fn matmul_slice(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    if should_pack(m, k, n) {
        let packed = pack_b(b, k, n);
        matmul_block_packed(a, &packed, out, m, k, n);
    } else {
        matmul_block(a, b, out, m, k, n);
    }
}

/// Serial blocked kernel: `out += a @ b` with `K_BLOCK`-tall tiles of `b`
/// reused across all rows of `a`.  Per output element the `k` loop still
/// runs in increasing order (tiles are visited in order, rows within a tile
/// in order), preserving bitwise results.
fn matmul_block(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    let mut kb = 0;
    while kb < k {
        let kend = (kb + K_BLOCK).min(k);
        for i in 0..m {
            let a_row = &a[i * k..(i + 1) * k];
            let out_row = &mut out[i * n..(i + 1) * n];
            for p in kb..kend {
                let a_ip = a_row[p];
                if a_ip == 0.0 {
                    continue;
                }
                let b_row = &b[p * n..(p + 1) * n];
                for (o, &b_pj) in out_row.iter_mut().zip(b_row) {
                    *o += a_ip * b_pj;
                }
            }
        }
        kb = kend;
    }
}

/// Batched `out += a @ b` over `bt` independent `[m,k] @ [k,n]` slices —
/// the kernel behind [`Tensor::bmm`], exposed so graph ops can run it
/// into pooled buffers.  Slices fan out over threads when the total work
/// amortises the spawn cost; each slice runs the same serial dispatch, so
/// results are identical to the sequential loop.
pub fn bmm_into(a: &[f32], b: &[f32], out: &mut [f32], bt: usize, m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), bt * m * k);
    debug_assert_eq!(b.len(), bt * k * n);
    debug_assert_eq!(out.len(), bt * m * n);
    let threads = parallelism_for(bt * m * k * n).min(bt.max(1));
    if threads > 1 {
        let per = bt.div_ceil(threads);
        std::thread::scope(|scope| {
            for (chunk_idx, out_chunk) in out.chunks_mut(per * m * n).enumerate() {
                let b0 = chunk_idx * per;
                scope.spawn(move || {
                    for (j, o) in out_chunk.chunks_mut(m * n).enumerate() {
                        let i = b0 + j;
                        matmul_slice(
                            &a[i * m * k..(i + 1) * m * k],
                            &b[i * k * n..(i + 1) * k * n],
                            o,
                            m,
                            k,
                            n,
                        );
                    }
                });
            }
        });
    } else {
        for i in 0..bt {
            matmul_slice(
                &a[i * m * k..(i + 1) * m * k],
                &b[i * k * n..(i + 1) * k * n],
                &mut out[i * m * n..(i + 1) * m * n],
                m,
                k,
                n,
            );
        }
    }
}

// ---------------------------------------------------------------------
// Transposed-operand accumulate kernels (autograd backward paths)
// ---------------------------------------------------------------------
//
// The backward of `C = A @ B` is a pair of matmuls against transposed
// operands: `dA += G @ Bᵀ` and `dB += Aᵀ @ G`.  The historical path
// materialised the transpose and called `matmul_into`; these kernels
// read the untransposed operand directly (`B` rows are contiguous in the
// NT case, `G` rows in the TN case), with **identical per-element
// accumulation order** (the contraction index ascends) and the identical
// skip-zero rule on the left-operand element — so gradients are bitwise
// equal to the transpose-then-multiply path, which is itself bitwise
// equal to the naive loop (see [`matmul_into`]).

/// `out += g @ bᵀ`: `g` is `[m,n]`, `b` is `[k,n]`, `out` is `[m,k]` —
/// the `dA` of a matmul.
///
/// `bᵀ` is materialised into a scratch buffer (an `O(nk)` copy next to
/// the `O(mnk)` multiply) and the product runs through the blocked/packed
/// [`matmul_into`] dispatch — keeping the SIMD-friendly contiguous-axpy
/// inner loop; a transpose-free dot kernel measured ~20% slower per
/// training step.  Products for each output element accumulate in
/// ascending `n` with the skip-zero rule on `g[i,j]`, exactly like the
/// historical transpose-then-multiply path.
pub fn matmul_nt_into(g: &[f32], b: &[f32], out: &mut [f32], m: usize, n: usize, k: usize) {
    debug_assert_eq!(g.len(), m * n);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * k);
    with_transposed(b, k, n, |bt| matmul_into(g, bt, out, m, n, k));
}

thread_local! {
    /// Reusable per-thread transpose scratch for the NT/TN backward
    /// kernels: a training step runs hundreds of backward matmuls at
    /// model-sized shapes, and a fresh alloc+memset per transpose
    /// measurably drags the small-shape families (GRU cells).
    static TRANSPOSE_SCRATCH: std::cell::RefCell<Vec<f32>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

/// Run `f` on the `[cols, rows]` transpose of `src` (`[rows, cols]`),
/// staged in the thread-local scratch buffer.
fn with_transposed<R>(src: &[f32], rows: usize, cols: usize, f: impl FnOnce(&[f32]) -> R) -> R {
    TRANSPOSE_SCRATCH.with(|cell| {
        let mut buf = cell.borrow_mut();
        let len = rows * cols;
        if buf.len() < len {
            buf.resize(len, 0.0);
        }
        for r in 0..rows {
            for c in 0..cols {
                buf[c * rows + r] = src[r * cols + c];
            }
        }
        f(&buf[..len])
    })
}

/// `out += aᵀ @ g`: `a` is `[m,k]`, `g` is `[m,n]`, `out` is `[k,n]` —
/// the `dB` of a matmul.
///
/// Like [`matmul_nt_into`], `aᵀ` is materialised (an `O(mk)` copy next
/// to the `O(mkn)` multiply) and the product runs through the
/// blocked/packed [`matmul_into`] dispatch — a transpose-free variant
/// reading `a` columns with stride `k` profiled at ~25% of the whole
/// training step on cache misses alone.  Products for each output
/// element accumulate in ascending `m` with the skip-zero rule on
/// `a[i,p]`, exactly like the historical transpose-then-multiply path.
pub fn matmul_tn_into(a: &[f32], g: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(g.len(), m * n);
    debug_assert_eq!(out.len(), k * n);
    if a.len() <= TN_DIRECT_MAX_A {
        matmul_tn_direct(a, g, out, m, k, n);
    } else {
        with_transposed(a, m, k, |at| matmul_into(at, g, out, k, m, n));
    }
}

/// Largest `a` operand (elements) the direct TN kernel handles: while
/// `a` stays L1-resident its strided column reads are free, and skipping
/// the transpose pass wins — the regime of the GRU cell's per-timestep
/// `[B, D]ᵀ @ [B, H]` gradients.  Above this the strided reads start
/// missing and the transpose-then-dispatch path takes over.
const TN_DIRECT_MAX_A: usize = 64 * 1024;

/// Transpose-free TN kernel: `out[p, :] += a[i, p] · g[i, :]` with `i`
/// ascending per output element (K_BLOCK-tiled) and the skip-zero rule
/// on `a[i, p]` — bitwise identical to the transposed dispatch.
fn matmul_tn_direct(a: &[f32], g: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    let mut ib = 0;
    while ib < m {
        let iend = (ib + K_BLOCK).min(m);
        for (p, out_row) in out.chunks_mut(n).enumerate() {
            for i in ib..iend {
                let a_ip = a[i * k + p];
                if a_ip == 0.0 {
                    continue;
                }
                let g_row = &g[i * n..(i + 1) * n];
                for (o, &gj) in out_row.iter_mut().zip(g_row) {
                    *o += a_ip * gj;
                }
            }
        }
        ib = iend;
    }
}

/// Batched [`matmul_nt_into`]: `out[s] += g[s] @ b[s]ᵀ` per slice — the
/// `dA` of a bmm.  The batched transpose is materialised once and the
/// product runs through [`bmm_into`]'s slice dispatch, matching the
/// historical `transpose_last2` + `bmm` path kernel for kernel.
pub fn bmm_nt_into(g: &[f32], b: &[f32], out: &mut [f32], bt: usize, m: usize, n: usize, k: usize) {
    debug_assert_eq!(g.len(), bt * m * n);
    debug_assert_eq!(b.len(), bt * k * n);
    debug_assert_eq!(out.len(), bt * m * k);
    with_transposed_batch(b, bt, k, n, |btr| bmm_into(g, btr, out, bt, m, n, k));
}

/// Run `f` on the per-slice `[bt, cols, rows]` transpose of `src`
/// (`[bt, rows, cols]`), staged in the thread-local scratch buffer.
fn with_transposed_batch<R>(
    src: &[f32],
    bt: usize,
    rows: usize,
    cols: usize,
    f: impl FnOnce(&[f32]) -> R,
) -> R {
    TRANSPOSE_SCRATCH.with(|cell| {
        let mut buf = cell.borrow_mut();
        let len = bt * rows * cols;
        if buf.len() < len {
            buf.resize(len, 0.0);
        }
        for (s, slice) in buf[..len].chunks_mut(rows * cols).enumerate() {
            let sl = &src[s * rows * cols..(s + 1) * rows * cols];
            for r in 0..rows {
                for c in 0..cols {
                    slice[c * rows + r] = sl[r * cols + c];
                }
            }
        }
        f(&buf[..len])
    })
}

/// Batched [`matmul_tn_into`]: `out[s] += a[s]ᵀ @ g[s]` per slice — the
/// `dB` of a bmm.  The batched transpose is materialised once and the
/// product runs through [`bmm_into`]'s slice dispatch, matching the
/// historical `transpose_last2` + `bmm` path kernel for kernel.
pub fn bmm_tn_into(a: &[f32], g: &[f32], out: &mut [f32], bt: usize, m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), bt * m * k);
    debug_assert_eq!(g.len(), bt * m * n);
    debug_assert_eq!(out.len(), bt * k * n);
    if m * k <= TN_DIRECT_MAX_A {
        // Small per-slice operands (attention-head shapes): the direct
        // kernel per slice beats a batched transpose pass.
        for (s, o) in out.chunks_mut(k * n).enumerate() {
            matmul_tn_direct(
                &a[s * m * k..(s + 1) * m * k],
                &g[s * m * n..(s + 1) * m * n],
                o,
                m,
                k,
                n,
            );
        }
    } else {
        with_transposed_batch(a, bt, m, k, |atr| bmm_into(atr, g, out, bt, k, m, n));
    }
}

/// Product of a shape's dimensions.
pub(crate) fn numel(shape: &[usize]) -> usize {
    shape.iter().product()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        assert_eq!(t.shape(), &[2, 3]);
        assert_eq!(t.ndim(), 2);
        assert_eq!(t.len(), 6);
        assert_eq!(t.at(&[1, 2]), 6.0);
        assert_eq!(t.at(&[0, 0]), 1.0);
    }

    #[test]
    fn try_from_vec_rejects_bad_shapes() {
        let err = Tensor::try_from_vec(vec![1.0; 5], &[2, 3]).unwrap_err();
        assert_eq!(err, TensorError::ShapeMismatch { expected: 6, got: 5 });
    }

    #[test]
    #[should_panic(expected = "matmul inner dims differ")]
    fn matmul_rejects_mismatched_inner_dims() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[4, 2]);
        let _ = a.matmul(&b);
    }

    #[test]
    fn matmul_matches_hand_computed() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = Tensor::from_vec((0..12).map(|x| x as f32).collect(), &[3, 4]);
        let id = Tensor::from_fn(&[4, 4], |i| if i / 4 == i % 4 { 1.0 } else { 0.0 });
        assert_eq!(a.matmul(&id), a);
    }

    #[test]
    fn bmm_matches_per_batch_matmul() {
        let a = Tensor::from_vec((0..12).map(|x| x as f32).collect(), &[2, 2, 3]);
        let b = Tensor::from_vec((0..12).map(|x| (x as f32) * 0.5).collect(), &[2, 3, 2]);
        let c = a.bmm(&b);
        for i in 0..2 {
            let ai = Tensor::from_vec(a.data()[i * 6..(i + 1) * 6].to_vec(), &[2, 3]);
            let bi = Tensor::from_vec(b.data()[i * 6..(i + 1) * 6].to_vec(), &[3, 2]);
            let ci = ai.matmul(&bi);
            assert_eq!(&c.data()[i * 4..(i + 1) * 4], ci.data());
        }
    }

    #[test]
    fn transpose2d_round_trips() {
        let a = Tensor::from_vec((0..6).map(|x| x as f32).collect(), &[2, 3]);
        let t = a.transpose2d();
        assert_eq!(t.shape(), &[3, 2]);
        assert_eq!(t.at(&[2, 1]), a.at(&[1, 2]));
        assert_eq!(t.transpose2d(), a);
    }

    #[test]
    fn transpose_last2_round_trips() {
        let a = Tensor::from_vec((0..24).map(|x| x as f32).collect(), &[2, 3, 4]);
        let t = a.transpose_last2();
        assert_eq!(t.shape(), &[2, 4, 3]);
        assert_eq!(t.at(&[1, 3, 2]), a.at(&[1, 2, 3]));
        assert_eq!(t.transpose_last2(), a);
    }

    #[test]
    fn softmax_rows_sum_to_one_and_order_preserved() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0], &[2, 3]);
        let s = t.softmax_last();
        for row in s.data().chunks(3) {
            let sum: f32 = row.iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
            assert!(row[0] < row[1] && row[1] < row[2]);
        }
    }

    #[test]
    fn softmax_handles_all_neg_inf_row() {
        let t = Tensor::from_vec(vec![f32::NEG_INFINITY; 4], &[1, 4]);
        let s = t.softmax_last();
        for &p in s.data() {
            assert!((p - 0.25).abs() < 1e-6);
        }
    }

    #[test]
    fn log_softmax_is_log_of_softmax() {
        let t = Tensor::from_vec(vec![0.3, -0.7, 1.9, 0.0, 5.0, -5.0], &[2, 3]);
        let a = t.log_softmax_last();
        let b = t.softmax_last().map(f32::ln);
        for (x, y) in a.data().iter().zip(b.data()) {
            assert!((x - y).abs() < 1e-4, "{x} vs {y}");
        }
    }

    #[test]
    fn gather_rows_picks_expected_rows() {
        let t = Tensor::from_vec((0..8).map(|x| x as f32).collect(), &[4, 2]);
        let g = t.gather_rows(&[3, 0, 3]);
        assert_eq!(g.shape(), &[3, 2]);
        assert_eq!(g.data(), &[6.0, 7.0, 0.0, 1.0, 6.0, 7.0]);
    }

    #[test]
    fn axpy_and_add_assign() {
        let mut a = Tensor::from_vec(vec![1.0, 2.0], &[2]);
        let b = Tensor::from_vec(vec![10.0, 20.0], &[2]);
        a.axpy(0.5, &b);
        assert_eq!(a.data(), &[6.0, 12.0]);
        a.add_assign(&b);
        assert_eq!(a.data(), &[16.0, 32.0]);
    }

    #[test]
    fn reshape_preserves_data() {
        let a = Tensor::from_vec((0..6).map(|x| x as f32).collect(), &[2, 3]);
        let b = a.reshaped(&[3, 2]);
        assert_eq!(b.shape(), &[3, 2]);
        assert_eq!(b.data(), a.data());
    }

    #[test]
    fn stats_helpers() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]);
        assert_eq!(t.sum(), 6.0);
        assert_eq!(t.mean(), 2.0);
        assert_eq!(t.sq_norm(), 14.0);
    }

    /// Reference i-k-j matmul, no blocking or threading.
    fn naive_matmul(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = (a.shape()[0], a.shape()[1]);
        let n = b.shape()[1];
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for p in 0..k {
                let a_ip = a.data()[i * k + p];
                for j in 0..n {
                    out[i * n + j] += a_ip * b.data()[p * n + j];
                }
            }
        }
        Tensor::from_vec(out, &[m, n])
    }

    #[test]
    fn blocked_matmul_is_bitwise_equal_to_naive_across_tile_boundaries() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        // Inner dims straddling the K_BLOCK=64 tile edge, plus odd sizes.
        for &(m, k, n) in &[(3, 63, 5), (4, 64, 7), (5, 65, 3), (2, 130, 9), (1, 1, 1)] {
            let a = Tensor::randn(&[m, k], 1.0, &mut rng);
            let b = Tensor::randn(&[k, n], 1.0, &mut rng);
            assert_eq!(a.matmul(&b).data(), naive_matmul(&a, &b).data(), "{m}x{k}x{n}");
        }
    }

    #[test]
    fn parallel_matmul_is_bitwise_equal_to_naive() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(8);
        // Large enough to cross PAR_MIN_WORK on multi-core hosts; on a
        // single-core host this still exercises the blocked serial path.
        let a = Tensor::randn(&[128, 96], 1.0, &mut rng);
        let b = Tensor::randn(&[96, 128], 1.0, &mut rng);
        assert_eq!(a.matmul(&b).data(), naive_matmul(&a, &b).data());
    }

    #[test]
    fn parallel_bmm_matches_sequential_per_batch_matmul() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let (b, m, k, n) = (24, 17, 32, 33);
        let x = Tensor::randn(&[b, m, k], 1.0, &mut rng);
        let y = Tensor::randn(&[b, k, n], 1.0, &mut rng);
        let z = x.bmm(&y);
        for i in 0..b {
            let xi = Tensor::from_vec(x.data()[i * m * k..(i + 1) * m * k].to_vec(), &[m, k]);
            let yi = Tensor::from_vec(y.data()[i * k * n..(i + 1) * k * n].to_vec(), &[k, n]);
            assert_eq!(&z.data()[i * m * n..(i + 1) * m * n], xi.matmul(&yi).data());
        }
    }

    #[test]
    fn packed_matmul_is_bitwise_equal_to_plain_across_odd_shapes() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(10);
        // Shapes straddling the NR=8 panel edge and MR=4 row tile, plus
        // ragged remainders in every dimension.
        for &(m, k, n) in &[
            (1, 7, 17),
            (3, 16, 15),
            (4, 33, 16),
            (5, 64, 31),
            (7, 65, 33),
            (9, 130, 47),
            (16, 8, 100),
        ] {
            let a = Tensor::randn(&[m, k], 1.0, &mut rng);
            let b = Tensor::randn(&[k, n], 1.0, &mut rng);
            let mut plain = vec![0.0f32; m * n];
            let mut packed = vec![0.0f32; m * n];
            matmul_into_plain(a.data(), b.data(), &mut plain, m, k, n);
            matmul_into_packed(a.data(), b.data(), &mut packed, m, k, n);
            assert_eq!(plain, packed, "{m}x{k}x{n}");
        }
    }

    #[test]
    fn packed_matmul_accumulates_into_nonzero_out() {
        // Both kernels share the `out += a @ b` contract.
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let (m, k, n) = (5, 9, 21);
        let a = Tensor::randn(&[m, k], 1.0, &mut rng);
        let b = Tensor::randn(&[k, n], 1.0, &mut rng);
        let seed: Vec<f32> = (0..m * n).map(|i| i as f32 * 0.25).collect();
        let mut plain = seed.clone();
        let mut packed = seed;
        matmul_into_plain(a.data(), b.data(), &mut plain, m, k, n);
        matmul_into_packed(a.data(), b.data(), &mut packed, m, k, n);
        assert_eq!(plain, packed);
    }

    #[test]
    fn packed_matmul_skips_zero_a_like_plain() {
        // The skip-zero rule must match or an inf/NaN in B would produce
        // NaN in one kernel and not the other.
        let a = Tensor::from_vec(vec![0.0, 1.0, 2.0, 0.0, 0.0, 3.0], &[2, 3]);
        let mut b = Tensor::zeros(&[3, 20]);
        b.data_mut()[0] = f32::INFINITY; // row 0 of B, only ever hit by a=0.0
        let (m, k, n) = (2, 3, 20);
        let mut plain = vec![0.0f32; m * n];
        let mut packed = vec![0.0f32; m * n];
        matmul_into_plain(a.data(), b.data(), &mut plain, m, k, n);
        matmul_into_packed(a.data(), b.data(), &mut packed, m, k, n);
        assert_eq!(plain, packed);
        assert!(plain.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn nt_kernel_is_bitwise_equal_to_transpose_then_matmul() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(13);
        // Shapes straddling the 4-column tile and K_BLOCK, plus zeros in g
        // to exercise the skip rule.
        for &(m, n, k) in &[(1, 1, 1), (3, 7, 5), (4, 65, 9), (8, 130, 3), (5, 16, 21)] {
            let mut g = Tensor::randn(&[m, n], 1.0, &mut rng);
            for (i, v) in g.data_mut().iter_mut().enumerate() {
                if i % 5 == 0 {
                    *v = 0.0;
                }
            }
            let b = Tensor::randn(&[k, n], 1.0, &mut rng);
            let reference = g.matmul(&b.transpose2d());
            let mut out = vec![0.0f32; m * k];
            matmul_nt_into(g.data(), b.data(), &mut out, m, n, k);
            assert_eq!(out, reference.data(), "nt {m}x{n}x{k}");
        }
    }

    #[test]
    fn tn_kernel_is_bitwise_equal_to_transpose_then_matmul() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(14);
        for &(m, k, n) in &[(1, 1, 1), (7, 3, 5), (65, 4, 9), (130, 8, 3), (16, 5, 21)] {
            let mut a = Tensor::randn(&[m, k], 1.0, &mut rng);
            for (i, v) in a.data_mut().iter_mut().enumerate() {
                if i % 4 == 0 {
                    *v = 0.0;
                }
            }
            let g = Tensor::randn(&[m, n], 1.0, &mut rng);
            let reference = a.transpose2d().matmul(&g);
            let mut out = vec![0.0f32; k * n];
            matmul_tn_into(a.data(), g.data(), &mut out, m, k, n);
            assert_eq!(out, reference.data(), "tn {m}x{k}x{n}");
        }
    }

    #[test]
    fn nt_tn_kernels_accumulate_into_nonzero_out() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(15);
        let (m, n, k) = (5, 9, 6);
        let g = Tensor::randn(&[m, n], 1.0, &mut rng);
        let b = Tensor::randn(&[k, n], 1.0, &mut rng);
        let seed: Vec<f32> = (0..m * k).map(|i| i as f32 * 0.5 - 3.0).collect();
        let mut out = seed.clone();
        matmul_nt_into(g.data(), b.data(), &mut out, m, n, k);
        let mut expected = Tensor::from_vec(seed, &[m, k]);
        expected.add_assign(&g.matmul(&b.transpose2d()));
        // Accumulation starts from the existing out value per element, so
        // tolerances — not bitwise — are the right comparison for the
        // seeded case (the bitwise contract is for fresh zero slots).
        for (a, e) in out.iter().zip(expected.data()) {
            assert!((a - e).abs() < 1e-4, "{a} vs {e}");
        }
    }

    #[test]
    fn batched_nt_tn_kernels_match_per_slice_2d_kernels() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(16);
        let (bt, m, k, n) = (3, 4, 5, 7);
        let a = Tensor::randn(&[bt, m, k], 1.0, &mut rng);
        let g = Tensor::randn(&[bt, m, n], 1.0, &mut rng);
        let b = Tensor::randn(&[bt, k, n], 1.0, &mut rng);

        let mut da = vec![0.0f32; bt * m * k];
        bmm_nt_into(g.data(), b.data(), &mut da, bt, m, n, k);
        let mut db = vec![0.0f32; bt * k * n];
        bmm_tn_into(a.data(), g.data(), &mut db, bt, m, k, n);

        for s in 0..bt {
            let mut da_ref = vec![0.0f32; m * k];
            matmul_nt_into(
                &g.data()[s * m * n..(s + 1) * m * n],
                &b.data()[s * k * n..(s + 1) * k * n],
                &mut da_ref,
                m,
                n,
                k,
            );
            assert_eq!(&da[s * m * k..(s + 1) * m * k], &da_ref[..]);
            let mut db_ref = vec![0.0f32; k * n];
            matmul_tn_into(
                &a.data()[s * m * k..(s + 1) * m * k],
                &g.data()[s * m * n..(s + 1) * m * n],
                &mut db_ref,
                m,
                k,
                n,
            );
            assert_eq!(&db[s * k * n..(s + 1) * k * n], &db_ref[..]);
        }
    }

    #[test]
    fn forced_kernel_threads_do_not_change_results() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(17);
        let a = Tensor::randn(&[33, 48], 1.0, &mut rng);
        let b = Tensor::randn(&[17, 48], 1.0, &mut rng);
        let g = Tensor::randn(&[33, 17], 1.0, &mut rng);
        let serial_mm = a.matmul(&b.transpose2d());
        let mut serial_nt = vec![0.0f32; 33 * 17];
        matmul_nt_into(a.data(), b.data(), &mut serial_nt, 33, 48, 17);
        let mut serial_tn = vec![0.0f32; 48 * 17];
        matmul_tn_into(a.data(), g.data(), &mut serial_tn, 33, 48, 17);
        set_kernel_threads(Some(3));
        let par_mm = a.matmul(&b.transpose2d());
        let mut par_nt = vec![0.0f32; 33 * 17];
        matmul_nt_into(a.data(), b.data(), &mut par_nt, 33, 48, 17);
        let mut par_tn = vec![0.0f32; 48 * 17];
        matmul_tn_into(a.data(), g.data(), &mut par_tn, 33, 48, 17);
        set_kernel_threads(None);
        assert_eq!(serial_mm.data(), par_mm.data());
        assert_eq!(serial_nt, par_nt);
        assert_eq!(serial_tn, par_tn);
    }

    #[test]
    fn unfold_and_concat_value_helpers_match_graph_ops() {
        use crate::graph::Graph;
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(12);
        let x = Tensor::randn(&[2, 5, 3], 1.0, &mut rng);
        let g = Graph::new();
        let xv = g.constant(x.clone());
        assert_eq!(x.unfold_windows(2).data(), xv.unfold_windows(2).value().data());
        let y = Tensor::randn(&[2, 5, 4], 1.0, &mut rng);
        let yv = g.constant(y.clone());
        let cat = Tensor::concat_last(&[&x, &y]);
        let cat_v = crate::graph::Var::concat_last(&[xv, yv]);
        assert_eq!(cat.shape(), &[2, 5, 7]);
        assert_eq!(cat.data(), cat_v.value().data());
    }

    #[test]
    fn randn_seeded_is_deterministic() {
        use rand::SeedableRng;
        let mut r1 = rand::rngs::StdRng::seed_from_u64(42);
        let mut r2 = rand::rngs::StdRng::seed_from_u64(42);
        let a = Tensor::randn(&[4, 4], 0.1, &mut r1);
        let b = Tensor::randn(&[4, 4], 0.1, &mut r2);
        assert_eq!(a, b);
    }
}
