//! Skip-gram with negative sampling (SGNS) over interaction sequences.

use irs_data::ItemId;
use rand::{Rng, SeedableRng};

/// item2vec training configuration.
#[derive(Debug, Clone)]
pub struct Item2VecConfig {
    /// Embedding dimensionality.
    pub dim: usize,
    /// Context window radius.
    pub window: usize,
    /// Negative samples per positive pair.
    pub negatives: usize,
    /// Number of passes over the corpus.
    pub epochs: usize,
    /// Initial learning rate (linearly decayed to `lr_end`).
    pub lr_start: f32,
    /// Final learning rate.
    pub lr_end: f32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Item2VecConfig {
    fn default() -> Self {
        Item2VecConfig {
            dim: 32,
            window: 3,
            negatives: 5,
            epochs: 4,
            lr_start: 0.05,
            lr_end: 0.005,
            seed: 0xe2b,
        }
    }
}

/// Trained item embeddings (the SGNS input vectors).
#[derive(Debug, Clone)]
pub struct ItemEmbeddings {
    num_items: usize,
    dim: usize,
    /// Row-major `[num_items, dim]`.
    vectors: Vec<f32>,
}

impl ItemEmbeddings {
    /// Number of items.
    pub fn num_items(&self) -> usize {
        self.num_items
    }

    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The vector of one item.
    pub fn vector(&self, item: ItemId) -> &[f32] {
        &self.vectors[item * self.dim..(item + 1) * self.dim]
    }

    /// All vectors as a flat row-major slice.
    pub fn as_flat(&self) -> &[f32] {
        &self.vectors
    }

    /// Cosine similarity between two items (0 when either vector is 0).
    pub fn cosine_similarity(&self, a: ItemId, b: ItemId) -> f32 {
        cosine(self.vector(a), self.vector(b))
    }

    /// Cosine distance `1 − cos(a, b)` in `[0, 2]`.
    pub fn cosine_distance(&self, a: ItemId, b: ItemId) -> f32 {
        1.0 - self.cosine_similarity(a, b)
    }

    /// The `k` nearest items to `item` by cosine similarity (excluding
    /// itself).
    pub fn nearest(&self, item: ItemId, k: usize) -> Vec<(ItemId, f32)> {
        let mut sims: Vec<(ItemId, f32)> = (0..self.num_items)
            .filter(|&i| i != item)
            .map(|i| (i, self.cosine_similarity(item, i)))
            .collect();
        sims.sort_unstable_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        sims.truncate(k);
        sims
    }
}

/// Cosine similarity of two equal-length slices.
pub(crate) fn cosine(a: &[f32], b: &[f32]) -> f32 {
    let mut dot = 0.0;
    let mut na = 0.0;
    let mut nb = 0.0;
    for (&x, &y) in a.iter().zip(b) {
        dot += x * y;
        na += x * x;
        nb += y * y;
    }
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        // Clamp: rounding can push |cos| an ulp past 1, which would make
        // derived distances slightly negative.
        (dot / (na.sqrt() * nb.sqrt())).clamp(-1.0, 1.0)
    }
}

/// Train item2vec on user sequences.
pub fn train_item2vec(
    sequences: &[Vec<ItemId>],
    num_items: usize,
    config: &Item2VecConfig,
) -> ItemEmbeddings {
    assert!(config.dim > 0 && config.window > 0 && config.epochs > 0);
    let mut rng = rand::rngs::StdRng::seed_from_u64(config.seed);
    let dim = config.dim;
    let scale = 0.5 / dim as f32;
    let mut w_in: Vec<f32> =
        (0..num_items * dim).map(|_| (rng.random::<f32>() - 0.5) * scale).collect();
    let mut w_out: Vec<f32> = vec![0.0; num_items * dim];

    // Unigram^0.75 negative-sampling table.
    let mut counts = vec![0f64; num_items];
    for seq in sequences {
        for &i in seq {
            counts[i] += 1.0;
        }
    }
    let mut cum = Vec::with_capacity(num_items);
    let mut acc = 0.0f64;
    for &c in &counts {
        acc += c.powf(0.75);
        cum.push(acc);
    }
    let total = acc.max(f64::MIN_POSITIVE);
    let sample_negative = |rng: &mut rand::rngs::StdRng| -> ItemId {
        let x = rng.random::<f64>() * total;
        cum.partition_point(|&c| c < x).min(num_items - 1)
    };

    let total_pairs: usize =
        sequences.iter().map(|s| s.len()).sum::<usize>().max(1) * config.epochs;
    let mut seen_pairs = 0usize;
    let mut grad_in = vec![0.0f32; dim];

    for _epoch in 0..config.epochs {
        for seq in sequences {
            for (pos, &center) in seq.iter().enumerate() {
                seen_pairs += 1;
                let progress = seen_pairs as f32 / total_pairs as f32;
                let lr = config.lr_start + (config.lr_end - config.lr_start) * progress;
                let win = 1 + rng.random_range(0..config.window);
                let lo = pos.saturating_sub(win);
                let hi = (pos + win + 1).min(seq.len());
                for (ctx_pos, &context) in seq.iter().enumerate().take(hi).skip(lo) {
                    if ctx_pos == pos {
                        continue;
                    }
                    grad_in.iter_mut().for_each(|g| *g = 0.0);
                    // Positive pair + negatives; label 1 for the true pair.
                    for sample in 0..=config.negatives {
                        let (target, label) = if sample == 0 {
                            (context, 1.0)
                        } else {
                            let n = sample_negative(&mut rng);
                            if n == context {
                                continue;
                            }
                            (n, 0.0)
                        };
                        let vin = &w_in[center * dim..(center + 1) * dim];
                        let vout = &w_out[target * dim..(target + 1) * dim];
                        let dot: f32 = vin.iter().zip(vout).map(|(&a, &b)| a * b).sum();
                        let pred = 1.0 / (1.0 + (-dot).exp());
                        let g = (pred - label) * lr;
                        for k in 0..dim {
                            grad_in[k] += g * vout[k];
                        }
                        let vout_mut = &mut w_out[target * dim..(target + 1) * dim];
                        let vin_ro = &w_in[center * dim..(center + 1) * dim];
                        // Borrow juggling: copy the input row first.
                        let vin_copy: Vec<f32> = vin_ro.to_vec();
                        for k in 0..dim {
                            vout_mut[k] -= g * vin_copy[k];
                        }
                    }
                    let vin_mut = &mut w_in[center * dim..(center + 1) * dim];
                    for k in 0..dim {
                        vin_mut[k] -= grad_in[k];
                    }
                }
            }
        }
    }

    ItemEmbeddings { num_items, dim, vectors: w_in }
}

#[cfg(test)]
mod tests {
    use super::*;
    use irs_data::synth::{generate, SynthConfig};

    fn toy_sequences() -> Vec<Vec<ItemId>> {
        // Two disjoint "genres": items 0..4 co-occur, items 5..9 co-occur.
        let mut seqs = Vec::new();
        for r in 0..60 {
            let base = if r % 2 == 0 { 0 } else { 5 };
            seqs.push((0..5).map(|k| base + (k + r) % 5).collect());
        }
        seqs
    }

    #[test]
    fn cosine_helper_bounds() {
        assert!((cosine(&[1.0, 0.0], &[1.0, 0.0]) - 1.0).abs() < 1e-6);
        assert!((cosine(&[1.0, 0.0], &[0.0, 1.0])).abs() < 1e-6);
        assert_eq!(cosine(&[0.0, 0.0], &[1.0, 1.0]), 0.0);
    }

    #[test]
    fn cooccurring_items_end_up_closer() {
        let cfg = Item2VecConfig { dim: 16, epochs: 8, ..Default::default() };
        let emb = train_item2vec(&toy_sequences(), 10, &cfg);
        // Average within-cluster vs cross-cluster similarity.
        let mut within = 0.0;
        let mut cross = 0.0;
        let mut nw = 0;
        let mut nc = 0;
        for a in 0..10 {
            for b in 0..10 {
                if a == b {
                    continue;
                }
                let s = emb.cosine_similarity(a, b);
                if (a < 5) == (b < 5) {
                    within += s;
                    nw += 1;
                } else {
                    cross += s;
                    nc += 1;
                }
            }
        }
        let within = within / nw as f32;
        let cross = cross / nc as f32;
        assert!(
            within > cross + 0.2,
            "within-cluster similarity {within} must clearly exceed cross {cross}"
        );
    }

    #[test]
    fn nearest_neighbours_come_from_same_cluster() {
        let cfg = Item2VecConfig { dim: 16, epochs: 8, ..Default::default() };
        let emb = train_item2vec(&toy_sequences(), 10, &cfg);
        let nn = emb.nearest(0, 3);
        assert_eq!(nn.len(), 3);
        for (item, _) in nn {
            assert!(item < 5, "nearest neighbours of item 0 must be in its cluster");
        }
    }

    #[test]
    fn training_is_deterministic() {
        let seqs = toy_sequences();
        let cfg = Item2VecConfig::default();
        let a = train_item2vec(&seqs, 10, &cfg);
        let b = train_item2vec(&seqs, 10, &cfg);
        assert_eq!(a.as_flat(), b.as_flat());
    }

    #[test]
    fn works_on_synthetic_dataset() {
        let out = generate(&SynthConfig::tiny(33));
        let cfg = Item2VecConfig { dim: 12, epochs: 3, ..Default::default() };
        let emb = train_item2vec(&out.dataset.sequences, out.dataset.num_items, &cfg);
        assert_eq!(emb.num_items(), out.dataset.num_items);
        assert!(emb.as_flat().iter().all(|v| v.is_finite()));
        // Same-genre items should on average be more similar than
        // different-genre items.
        let d = &out.dataset;
        let mut same = Vec::new();
        let mut diff = Vec::new();
        for a in 0..d.num_items {
            for b in (a + 1)..d.num_items {
                let s = emb.cosine_similarity(a, b);
                if d.genres[a][0] == d.genres[b][0] {
                    same.push(s);
                } else {
                    diff.push(s);
                }
            }
        }
        let ms: f32 = same.iter().sum::<f32>() / same.len() as f32;
        let md: f32 = diff.iter().sum::<f32>() / diff.len() as f32;
        assert!(ms > md, "genre structure must be reflected in embeddings: {ms} vs {md}");
    }
}
