//! Item-distance abstractions used by the Rec2Inf greedy re-sort.

use irs_data::{Dataset, ItemId};

use crate::item2vec::{cosine, ItemEmbeddings};

/// A (pseudo-)distance between items: small means "similar / close to the
/// objective".  Implementations need not satisfy the triangle inequality;
/// Rec2Inf only ranks candidates by it.
pub trait ItemDistance {
    /// Distance between two items; non-negative, `0` for identical items.
    fn distance(&self, a: ItemId, b: ItemId) -> f32;
}

impl<D: ItemDistance + ?Sized> ItemDistance for &D {
    fn distance(&self, a: ItemId, b: ItemId) -> f32 {
        (**self).distance(a, b)
    }
}

/// Cosine distance on item2vec embeddings (Lastfm setting in the paper).
#[derive(Debug, Clone)]
pub struct EmbeddingDistance {
    embeddings: ItemEmbeddings,
}

impl EmbeddingDistance {
    /// Wrap trained embeddings.
    pub fn new(embeddings: ItemEmbeddings) -> Self {
        EmbeddingDistance { embeddings }
    }

    /// Access the wrapped embeddings.
    pub fn embeddings(&self) -> &ItemEmbeddings {
        &self.embeddings
    }
}

impl ItemDistance for EmbeddingDistance {
    fn distance(&self, a: ItemId, b: ItemId) -> f32 {
        if a == b {
            return 0.0;
        }
        self.embeddings.cosine_distance(a, b)
    }
}

/// Cosine distance on binary genre feature vectors (MovieLens setting in
/// the paper).  Items sharing all genres have distance 0; disjoint genre
/// sets have distance 1.
#[derive(Debug, Clone)]
pub struct GenreDistance {
    features: Vec<Vec<f32>>,
}

impl GenreDistance {
    /// Build from a dataset's genre labels.
    pub fn from_dataset(dataset: &Dataset) -> Self {
        GenreDistance { features: dataset.genre_feature_vectors() }
    }

    /// Build from explicit feature vectors.
    pub fn new(features: Vec<Vec<f32>>) -> Self {
        GenreDistance { features }
    }
}

impl ItemDistance for GenreDistance {
    fn distance(&self, a: ItemId, b: ItemId) -> f32 {
        if a == b {
            return 0.0;
        }
        1.0 - cosine(&self.features[a], &self.features[b])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::item2vec::{train_item2vec, Item2VecConfig};
    use proptest::prelude::*;

    #[test]
    fn genre_distance_reflects_overlap() {
        let gd = GenreDistance::new(vec![
            vec![1.0, 0.0, 0.0],
            vec![1.0, 0.0, 0.0],
            vec![1.0, 1.0, 0.0],
            vec![0.0, 0.0, 1.0],
        ]);
        assert_eq!(gd.distance(0, 1), 0.0);
        assert!(gd.distance(0, 2) > 0.0 && gd.distance(0, 2) < 1.0);
        assert!((gd.distance(0, 3) - 1.0).abs() < 1e-6);
        assert_eq!(gd.distance(2, 2), 0.0);
    }

    #[test]
    fn embedding_distance_is_zero_on_self() {
        let seqs = vec![vec![0, 1, 2], vec![2, 1, 0]];
        let emb =
            train_item2vec(&seqs, 3, &Item2VecConfig { dim: 8, epochs: 2, ..Default::default() });
        let ed = EmbeddingDistance::new(emb);
        assert_eq!(ed.distance(1, 1), 0.0);
        assert!(ed.distance(0, 2) >= 0.0);
    }

    proptest! {
        /// Symmetry and bounds of the genre distance.
        #[test]
        fn genre_distance_symmetric_and_bounded(
            feats in proptest::collection::vec(
                proptest::collection::vec(0u8..2, 4), 2..6),
        ) {
            let features: Vec<Vec<f32>> =
                feats.iter().map(|f| f.iter().map(|&b| b as f32).collect()).collect();
            let gd = GenreDistance::new(features.clone());
            for a in 0..features.len() {
                for b in 0..features.len() {
                    let d = gd.distance(a, b);
                    prop_assert!((0.0..=2.0).contains(&d));
                    prop_assert!((gd.distance(b, a) - d).abs() < 1e-6);
                }
                prop_assert_eq!(gd.distance(a, a), 0.0);
            }
        }
    }
}
