//! # irs_embed — item2vec embeddings and item distances
//!
//! The paper uses **item2vec** (Barkan & Koenigstein, 2016) in two places:
//!
//! 1. as pre-trained initial weights for IRN's item-embedding table
//!    (§III-D1), and
//! 2. as the item-distance function for the Rec2Inf greedy re-sort on
//!    Lastfm (§IV-C); on MovieLens the distance comes from genre feature
//!    vectors instead.
//!
//! item2vec is skip-gram with negative sampling over user interaction
//! sequences.  The gradients are hand-derived (word2vec style) rather than
//! routed through the autograd engine — SGNS updates touch only a handful
//! of rows per step, so the dense-tape engine would be wasteful.

mod distance;
mod item2vec;

pub use distance::{EmbeddingDistance, GenreDistance, ItemDistance};
pub use item2vec::{train_item2vec, Item2VecConfig, ItemEmbeddings};
