//! HTTP-level context-cache test: a session served through the full
//! stack (frontend → session store → scheduler → cached model path)
//! must hit its per-session cache on repeat steps, and a snapshot
//! hot-swap mid-session must *invalidate* the cache — the next answer
//! comes from the new weights, never from rows encoded under the old
//! ones.  Expected answers are computed against the in-process models'
//! cold scalar path, which the cached path is bitwise-pinned to.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use irs_core::{EncodingLayout, InfluenceRecommender, Irn, IrnConfig, NeuralTrainConfig};
use irs_data::split::{split_dataset, SplitConfig};
use irs_data::synth::{generate, SynthConfig};
use irs_serve::{
    BatchPolicy, Engine, HttpServer, IrnArchitecture, JsonValue, ServerConfig, SnapshotLoader,
    SnapshotRegistry,
};

fn request(addr: std::net::SocketAddr, method: &str, path: &str, body: &str) -> (u16, JsonValue) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: localhost\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
    .expect("write request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let status: u16 = response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("malformed response: {response:?}"));
    let payload = response.split("\r\n\r\n").nth(1).unwrap_or("");
    let json =
        JsonValue::parse(payload).unwrap_or_else(|e| panic!("bad JSON body {payload:?}: {e}"));
    (status, json)
}

fn stat(stats: &JsonValue, key: &str) -> usize {
    stats.get(key).and_then(JsonValue::as_usize).unwrap_or_else(|| panic!("missing stat {key}"))
}

#[test]
fn hot_swap_invalidates_session_caches() {
    let dataset = generate(&SynthConfig::tiny(0x5a1)).dataset;
    let split = split_dataset(&dataset, &SplitConfig::small());
    let n = dataset.num_items;
    let config = IrnConfig {
        dim: 8,
        user_dim: 4,
        layers: 1,
        heads: 2,
        max_len: 10,
        layout: EncodingLayout::AppendOnly,
        train: NeuralTrainConfig { epochs: 1, ..Default::default() },
        ..Default::default()
    };
    let model_a = Irn::fit(&split.train, &[], n, dataset.num_users, &config, None);
    // Same architecture, different training seed: genuinely different
    // weights behind the same loader.
    let config_b = IrnConfig {
        train: NeuralTrainConfig { epochs: 1, seed: 0x5eed, ..Default::default() },
        ..config.clone()
    };
    let model_b = Irn::fit(&split.train, &[], n, dataset.num_users, &config_b, None);

    let dir = std::env::temp_dir().join("irs_serve_cache_swap_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path_a = dir.join("a.irsp");
    let path_b = dir.join("b.irsp");
    model_a.save(std::fs::File::create(&path_a).unwrap()).unwrap();
    model_b.save(std::fs::File::create(&path_b).unwrap()).unwrap();

    // Pick an objective whose first three proposals (two on A with a
    // growing path, the third on B) stay distinct from the objective, so
    // the session is still open when the post-swap step runs.
    let user = 1usize;
    let history = [0usize, 5];
    let (objective, i1, i2, i3) = (0..n)
        .filter(|obj| !history.contains(obj))
        .find_map(|obj| {
            let i1 = model_a.next_item(user, &history, obj, &[]).filter(|&i| i != obj)?;
            let i2 = model_a.next_item(user, &history, obj, &[i1]).filter(|&i| i != obj)?;
            let i3 = model_b.next_item(user, &history, obj, &[i1, i2]).filter(|&i| i != obj)?;
            Some((obj, i1, i2, i3))
        })
        .expect("no objective keeps the session open for three steps");

    let arch =
        IrnArchitecture { num_items: n, num_users: dataset.num_users, config: config.clone() };
    let initial = arch.load_snapshot(path_a.to_str().unwrap()).unwrap();
    let registry = Arc::new(SnapshotRegistry::new(initial));
    let engine = Arc::new(Engine::start(
        registry,
        BatchPolicy {
            max_batch: 8,
            max_wait: Duration::from_micros(200),
            workers: 2,
            queue_capacity: 64,
        },
    ));
    let loader: SnapshotLoader = {
        let arch = arch.clone();
        Arc::new(move |path: &str| arch.load_snapshot(path))
    };
    let server = HttpServer::bind(
        "127.0.0.1:0",
        engine.clone(),
        Some(loader),
        ServerConfig { session_shards: 4, context_cache_mb: 8, ..Default::default() },
    )
    .expect("bind");
    let addr = server.local_addr().unwrap();
    let server_thread = std::thread::spawn(move || server.run());

    let body = format!(
        "{{\"user\": {user}, \"history\": [{}], \"objective\": {objective}}}",
        history.map(|i| i.to_string()).join(",")
    );
    let (status, created) = request(addr, "POST", "/v1/session", &body);
    assert_eq!(status, 200, "create failed: {created}");
    let sid = created.get("session_id").and_then(JsonValue::as_usize).expect("session id");
    let next_url = format!("/v1/session/{sid}/next");
    let feedback_url = format!("/v1/session/{sid}/feedback");

    // Step 1: a fresh cache is primed (miss) and parked.
    let (status, next) = request(addr, "POST", &next_url, "");
    assert_eq!(status, 200);
    assert_eq!(next.get("item").and_then(JsonValue::as_usize), Some(i1), "step 1 diverged from A");
    let (status, _) =
        request(addr, "POST", &feedback_url, &format!("{{\"item\": {i1}, \"accepted\": true}}"));
    assert_eq!(status, 200);

    // Step 2: the parked cache's prefix extends — a hit.
    let (status, next) = request(addr, "POST", &next_url, "");
    assert_eq!(status, 200);
    assert_eq!(next.get("item").and_then(JsonValue::as_usize), Some(i2), "step 2 diverged from A");
    let (_, stats) = request(addr, "GET", "/v1/stats", "");
    assert!(stat(&stats, "cache_hits") >= 1, "step 2 must hit the parked cache: {stats}");
    assert!(stat(&stats, "cache_misses") >= 1, "step 1 must have primed cold: {stats}");
    assert!(stat(&stats, "cache_resident_bytes") > 0, "a cache must be parked: {stats}");
    assert_eq!(stat(&stats, "cache_invalidations"), 0, "no swap has happened yet: {stats}");
    let (status, _) =
        request(addr, "POST", &feedback_url, &format!("{{\"item\": {i2}, \"accepted\": true}}"));
    assert_eq!(status, 200);

    // Hot-swap to B mid-session.
    let (status, swap) = request(
        addr,
        "POST",
        "/v1/admin/swap",
        &format!("{{\"path\": {}}}", JsonValue::from(path_b.to_str().unwrap())),
    );
    assert_eq!(status, 200, "swap failed: {swap}");
    assert_eq!(swap.get("version").and_then(JsonValue::as_usize), Some(2));

    // Step 3: the parked cache's generation is stale — it must be
    // discarded and the answer must come from B's weights.
    let (status, next) = request(addr, "POST", &next_url, "");
    assert_eq!(status, 200);
    assert_eq!(
        next.get("item").and_then(JsonValue::as_usize),
        Some(i3),
        "post-swap step must answer from the new snapshot, not stale cached rows"
    );
    let (_, stats) = request(addr, "GET", "/v1/stats", "");
    assert!(stat(&stats, "cache_invalidations") >= 1, "swap must invalidate the cache: {stats}");

    let (status, _) = request(addr, "POST", "/v1/admin/shutdown", "");
    assert_eq!(status, 200);
    server_thread.join().expect("server thread").expect("server run");
    engine.shutdown();
}
