//! Allocation-counter guard for the observability endpoints.
//!
//! Extends the PR 6 zero-allocation steady-state contract to the new
//! metrics surface: after warm-up, scraping `GET /metrics` and
//! `GET /v1/stats` on a keep-alive connection — interleaved with the
//! `next`/`healthz` traffic being observed — touches no allocator at
//! all.  Sampling copies values through atomics, text handles skip
//! unchanged writes, and both renderers format straight into the
//! worker's retained body buffer.
//!
//! Unlike `alloc_steady`, responses here *change between requests*
//! (counters advance, uptime ticks), so the client cannot byte-compare
//! against a learned response.  Instead it parses the response head
//! with a fixed-buffer, allocation-free scan for `Content-Length`.

// A `GlobalAlloc` impl is necessarily unsafe; it only delegates to
// `System`.
#![allow(unsafe_code)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use irs_core::{InfluenceRecommender, NextQuery};
use irs_data::ItemId;
use irs_serve::{
    BatchPolicy, Engine, HttpServer, JsonValue, ModelSnapshot, ServerConfig, SnapshotRegistry,
};

// ------------------------------------------------ counting allocator

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

struct CountingAllocator;

// SAFETY: delegates directly to `System`; the counter is a side effect.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

// ------------------------------------------------------- stub model

/// Allocation-free deterministic model: always proposes the objective.
struct EchoObjective;

impl InfluenceRecommender for EchoObjective {
    fn name(&self) -> String {
        "echo-objective".to_string()
    }

    fn next_item(
        &self,
        _user: usize,
        _history: &[ItemId],
        objective: ItemId,
        _path: &[ItemId],
    ) -> Option<ItemId> {
        Some(objective)
    }

    fn next_items_into(&self, queries: &[NextQuery<'_>], out: &mut Vec<Option<ItemId>>) {
        for q in queries {
            out.push(Some(q.objective));
        }
    }
}

// ---------------------------------------- allocation-free round trip

/// Send `req`, then read a full response into `buf` without touching
/// the allocator: scan for the end of head, extract `Content-Length`
/// with a bytewise digit scan, read exactly that much body.  Returns
/// the total response length.
fn roundtrip_dynamic(conn: &mut TcpStream, req: &[u8], buf: &mut [u8]) -> usize {
    conn.write_all(req).expect("write request");
    let mut len = 0usize;
    let head_end = loop {
        let n = conn.read(&mut buf[len..]).expect("read head");
        assert!(n > 0, "server closed before the response head completed");
        len += n;
        if let Some(pos) = buf[..len].windows(4).position(|w| w == b"\r\n\r\n") {
            break pos + 4;
        }
    };
    let content_length =
        content_length(&buf[..head_end]).expect("every response must carry Content-Length");
    let total = head_end + content_length;
    assert!(total <= buf.len(), "response larger than the fixed buffer");
    while len < total {
        let n = conn.read(&mut buf[len..total]).expect("read body");
        assert!(n > 0, "server closed mid-body");
        len += n;
    }
    assert_eq!(len, total, "unexpected trailing bytes");
    total
}

/// Find `Content-Length` in a response head without allocating.
fn content_length(head: &[u8]) -> Option<usize> {
    const NAME: &[u8] = b"content-length:";
    let mut start = 0usize;
    for (i, w) in head.windows(2).enumerate() {
        if w != b"\r\n" {
            continue;
        }
        let line = &head[start..i];
        start = i + 2;
        if line.len() > NAME.len() && line[..NAME.len()].eq_ignore_ascii_case(NAME) {
            let mut value = 0usize;
            let mut seen = false;
            for &b in &line[NAME.len()..] {
                match b {
                    b'0'..=b'9' => {
                        value = value * 10 + (b - b'0') as usize;
                        seen = true;
                    }
                    b' ' | b'\t' if !seen => {}
                    _ => return None,
                }
            }
            return seen.then_some(value);
        }
    }
    None
}

// ------------------------------------------------------------- test

#[test]
fn steady_state_metrics_scrapes_touch_no_allocator() {
    const WARMUP: usize = 100;
    const WINDOW: usize = 200;

    let registry = Arc::new(SnapshotRegistry::new(ModelSnapshot::in_memory_with_catalogue(
        "alloc-metrics",
        Box::new(EchoObjective),
        8,
    )));
    let engine = Arc::new(Engine::start(
        registry,
        BatchPolicy {
            max_batch: 4,
            max_wait: Duration::from_micros(100),
            workers: 1,
            queue_capacity: 64,
        },
    ));
    let server = HttpServer::bind(
        "127.0.0.1:0",
        engine.clone(),
        None,
        ServerConfig { http_workers: 2, ..Default::default() },
    )
    .expect("bind");
    let addr = server.local_addr().unwrap();
    let server_thread = std::thread::spawn(move || server.run());

    let mut conn = TcpStream::connect(addr).expect("connect");
    conn.set_nodelay(true).unwrap();
    conn.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    // Generous fixed buffer: the exposition of every family fits with
    // room to spare, and nothing here may reallocate mid-measurement.
    let mut buf = vec![0u8; 256 * 1024];

    // One live session so the scrape observes real per-arm traffic.
    let body = r#"{"user": 1, "history": [2], "objective": 3}"#;
    let create = format!(
        "POST /v1/session HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n{}",
        body.len(),
        body
    )
    .into_bytes();
    let total = roundtrip_dynamic(&mut conn, &create, &mut buf);
    let created = String::from_utf8_lossy(&buf[..total]);
    assert!(created.starts_with("HTTP/1.1 200"), "create failed: {created}");
    let payload = &created[created.find("\r\n\r\n").unwrap() + 4..];
    let sid = JsonValue::parse(payload)
        .unwrap()
        .get("session_id")
        .and_then(JsonValue::as_usize)
        .expect("session id");

    let next_req =
        format!("POST /v1/session/{sid}/next HTTP/1.1\r\nHost: x\r\nContent-Length: 0\r\n\r\n")
            .into_bytes();
    let healthz_req = b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n".to_vec();
    let metrics_req = b"GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n".to_vec();
    let stats_req = b"GET /v1/stats HTTP/1.1\r\nHost: x\r\n\r\n".to_vec();

    // Warm-up: size every buffer on the path — both workers' body
    // buffers must grow to exposition size, text annotations settle to
    // their final values, scheduler buffers fill in.
    for _ in 0..WARMUP {
        roundtrip_dynamic(&mut conn, &next_req, &mut buf);
        roundtrip_dynamic(&mut conn, &healthz_req, &mut buf);
        roundtrip_dynamic(&mut conn, &metrics_req, &mut buf);
        roundtrip_dynamic(&mut conn, &stats_req, &mut buf);
    }

    // Measurement: scrapes interleaved with the traffic they observe —
    // the whole process must not allocate once.
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    for _ in 0..WINDOW {
        roundtrip_dynamic(&mut conn, &next_req, &mut buf);
        roundtrip_dynamic(&mut conn, &metrics_req, &mut buf);
        roundtrip_dynamic(&mut conn, &healthz_req, &mut buf);
        roundtrip_dynamic(&mut conn, &stats_req, &mut buf);
    }
    let delta = ALLOCATIONS.load(Ordering::SeqCst) - before;
    assert_eq!(
        delta, 0,
        "steady-state next + /metrics + healthz + /v1/stats allocated {delta} times \
         over {WINDOW} rounds"
    );

    // Sanity: the scrape measured above really was the exposition.
    let total = roundtrip_dynamic(&mut conn, &metrics_req, &mut buf);
    let text = String::from_utf8_lossy(&buf[..total]);
    assert!(text.contains("# TYPE irs_requests counter"), "not an exposition: {text}");

    let bye_total = roundtrip_dynamic(
        &mut conn,
        b"POST /v1/admin/shutdown HTTP/1.1\r\nHost: x\r\nContent-Length: 0\r\n\r\n",
        &mut buf,
    );
    assert!(String::from_utf8_lossy(&buf[..bye_total]).starts_with("HTTP/1.1 200"));
    server_thread.join().expect("server thread").expect("server run");
    engine.shutdown();
}
