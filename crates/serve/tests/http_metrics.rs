//! HTTP-level pins for the observability endpoints.
//!
//! Two contracts:
//!
//! * **One vocabulary.**  `/v1/stats` and `GET /metrics` are generated
//!   from the same registry, so every flat stats key must appear in the
//!   exposition as `irs_<key>` (or `irs_<key>_info` for text
//!   annotations) — the drift the old hand-written serialiser allowed
//!   is now a test failure.
//! * **Valid exposition.**  `/metrics` is Prometheus text format 0.0.4:
//!   every family has exactly one `# HELP` and one `# TYPE` line,
//!   histogram series carry cumulative `_bucket` counts ending in a
//!   `+Inf` bucket that equals `_count`, and no family is emitted
//!   twice.

use std::collections::{BTreeMap, BTreeSet};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use irs_core::{InfluenceRecommender, NextQuery};
use irs_data::ItemId;
use irs_serve::{
    BatchPolicy, Engine, HttpServer, JsonValue, ModelSnapshot, ServerConfig, SnapshotRegistry,
};

/// Deterministic model: always proposes the objective.
struct EchoObjective;

impl InfluenceRecommender for EchoObjective {
    fn name(&self) -> String {
        "echo-objective".to_string()
    }

    fn next_item(
        &self,
        _user: usize,
        _history: &[ItemId],
        objective: ItemId,
        _path: &[ItemId],
    ) -> Option<ItemId> {
        Some(objective)
    }

    fn next_items_into(&self, queries: &[NextQuery<'_>], out: &mut Vec<Option<ItemId>>) {
        for q in queries {
            out.push(Some(q.objective));
        }
    }
}

/// One connection-per-request round trip; returns (status, headers+body
/// split at the blank line).
fn request(
    addr: std::net::SocketAddr,
    method: &str,
    path: &str,
    body: &str,
) -> (u16, String, String) {
    let mut conn = TcpStream::connect(addr).expect("connect");
    conn.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    write!(
        conn,
        "{method} {path} HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
    .expect("write request");
    let mut response = String::new();
    conn.read_to_string(&mut response).expect("read response");
    let status: u16 =
        response.split_whitespace().nth(1).and_then(|s| s.parse().ok()).expect("status line");
    let split = response.find("\r\n\r\n").expect("header/body split");
    let (head, payload) = response.split_at(split + 4);
    (status, head.to_string(), payload.to_string())
}

struct TestServer {
    addr: std::net::SocketAddr,
    engine: Arc<Engine>,
    thread: Option<std::thread::JoinHandle<std::io::Result<()>>>,
}

impl TestServer {
    fn boot() -> Self {
        let registry = Arc::new(SnapshotRegistry::new(ModelSnapshot::in_memory_with_catalogue(
            "metrics-test",
            Box::new(EchoObjective),
            16,
        )));
        let engine = Arc::new(Engine::start(
            registry,
            BatchPolicy {
                max_batch: 4,
                max_wait: Duration::from_micros(100),
                workers: 1,
                queue_capacity: 64,
            },
        ));
        let server = HttpServer::bind(
            "127.0.0.1:0",
            engine.clone(),
            None,
            ServerConfig { http_workers: 2, ..Default::default() },
        )
        .expect("bind");
        let addr = server.local_addr().unwrap();
        let thread = std::thread::spawn(move || server.run());
        TestServer { addr, engine, thread: Some(thread) }
    }

    /// Drive a few full sessions so counters, windows, stage histograms
    /// and latency series all have observations.
    fn drive_traffic(&self) {
        for user in 0..4usize {
            let (status, _, created) = request(
                self.addr,
                "POST",
                "/v1/session",
                &format!("{{\"user\": {user}, \"history\": [1, 2], \"objective\": 5}}"),
            );
            assert_eq!(status, 200, "create failed: {created}");
            let sid = JsonValue::parse(&created)
                .unwrap()
                .get("session_id")
                .and_then(JsonValue::as_usize)
                .expect("session id");
            let (status, _, next) =
                request(self.addr, "POST", &format!("/v1/session/{sid}/next"), "");
            assert_eq!(status, 200, "next failed: {next}");
            let item =
                JsonValue::parse(&next).unwrap().get("item").and_then(JsonValue::as_usize).unwrap();
            let (status, _, fb) = request(
                self.addr,
                "POST",
                &format!("/v1/session/{sid}/feedback"),
                &format!("{{\"item\": {item}, \"accepted\": true}}"),
            );
            assert_eq!(status, 200, "feedback failed: {fb}");
        }
    }

    fn shutdown(mut self) {
        let (status, _, _) = request(self.addr, "POST", "/v1/admin/shutdown", "");
        assert_eq!(status, 200);
        self.thread.take().unwrap().join().expect("server thread").expect("server run");
        self.engine.shutdown();
    }
}

/// Parse exposition text into family → (type, sample lines), asserting
/// line-level wellformedness along the way.
fn parse_exposition(text: &str) -> BTreeMap<String, (String, Vec<String>)> {
    let mut families: BTreeMap<String, (String, Vec<String>)> = BTreeMap::new();
    let mut helped: BTreeSet<String> = BTreeSet::new();
    for line in text.lines() {
        assert!(!line.is_empty(), "exposition must not contain blank lines");
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let name = rest.split_whitespace().next().expect("HELP family name").to_string();
            assert!(helped.insert(name.clone()), "duplicate HELP for {name}");
        } else if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let name = parts.next().expect("TYPE family name").to_string();
            let kind = parts.next().expect("TYPE kind").to_string();
            assert!(["counter", "gauge", "histogram"].contains(&kind.as_str()), "{line}");
            assert!(helped.contains(&name), "TYPE before HELP for {name}");
            let previous = families.insert(name.clone(), (kind, Vec::new()));
            assert!(previous.is_none(), "duplicate TYPE for {name}");
        } else {
            let metric = line.split([' ', '{']).next().expect("sample name");
            assert!(metric.starts_with("irs_"), "unprefixed sample {line:?}");
            let family = families
                .iter_mut()
                .rev()
                .find(|(name, _)| {
                    metric == name.as_str()
                        || ["_bucket", "_sum", "_count"]
                            .iter()
                            .any(|s| metric == format!("{name}{s}"))
                })
                .unwrap_or_else(|| panic!("sample {metric} has no TYPE header"));
            family.1 .1.push(line.to_string());
        }
    }
    families
}

#[test]
fn stats_and_metrics_share_one_vocabulary_and_the_exposition_is_wellformed() {
    let server = TestServer::boot();
    server.drive_traffic();

    let (status, _, stats_body) = request(server.addr, "GET", "/v1/stats", "");
    assert_eq!(status, 200);
    let (status, metrics_head, metrics_body) = request(server.addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    assert!(
        metrics_head.to_ascii_lowercase().contains("content-type: text/plain; version=0.0.4"),
        "exposition content type missing: {metrics_head}"
    );

    // --- vocabulary: every flat stats key is a registry family.
    let stats = JsonValue::parse(&stats_body).expect("stats JSON");
    let JsonValue::Obj(entries) = &stats else { panic!("stats must be an object") };
    let families = parse_exposition(&metrics_body);
    assert!(entries.len() >= 40, "suspiciously few stats keys: {}", entries.len());
    for (key, _) in entries {
        assert!(
            families.contains_key(&format!("irs_{key}"))
                || families.contains_key(&format!("irs_{key}_info")),
            "stats key {key:?} has no matching /metrics family"
        );
    }

    // --- the subsystems the issue names are all covered.
    for key in [
        "irs_requests",
        "irs_cache_hits",
        "irs_sessions",
        "irs_evicted_sessions",
        "irs_online_folds",
        "irs_online_trainer_panics",
        "irs_arm0_requests",
        "irs_arm0_window_requests",
        "irs_arm1_window_acceptance_rate",
        "irs_arm0_latency_us",
        "irs_stage_latency_us",
    ] {
        assert!(families.contains_key(key), "family {key} missing from /metrics");
    }

    // --- traffic actually registered: lifetime and windowed counters
    // agree while everything is recent.
    let flat: BTreeMap<&str, &JsonValue> = entries.iter().map(|(k, v)| (k.as_str(), v)).collect();
    let as_u64 = |k: &str| flat[k].as_f64().unwrap_or_else(|| panic!("{k} not numeric")) as u64;
    assert!(as_u64("requests") >= 4, "scheduler saw the traffic");
    let arm_requests = as_u64("arm0_requests") + as_u64("arm1_requests");
    let arm_window = as_u64("arm0_window_requests") + as_u64("arm1_window_requests");
    assert!(arm_requests >= 4, "per-arm lifetime counters counted the traffic");
    assert_eq!(arm_window, arm_requests, "fresh traffic must be fully inside the window");

    // --- histogram triples: cumulative buckets ending at +Inf == count.
    let mut histograms = 0;
    for (name, (kind, lines)) in &families {
        if kind != "histogram" {
            continue;
        }
        histograms += 1;
        // Group bucket lines by label set (one labeled family holds
        // several series).
        let mut by_series: BTreeMap<String, (Vec<u64>, Option<u64>)> = BTreeMap::new();
        for line in lines {
            let (metric_and_labels, value) = line.rsplit_once(' ').expect("sample value");
            let value: u64 = value.parse().unwrap_or_else(|_| panic!("non-integer {line}"));
            if let Some(rest) = metric_and_labels.strip_prefix(&format!("{name}_bucket{{")) {
                let labels = rest.rsplit_once("le=").expect("le label").0.to_string();
                let series = by_series.entry(labels).or_default();
                series.0.push(value);
                if rest.contains("le=\"+Inf\"") {
                    assert!(series.1.is_none(), "duplicate +Inf bucket in {name}");
                    series.1 = Some(value);
                }
            } else if let Some(rest) = metric_and_labels.strip_prefix(&format!("{name}_count")) {
                let labels = rest.trim_start_matches('{').trim_end_matches('}');
                // Bucket keys keep the trailing comma that preceded the
                // `le` label; rebuild the same shape here.
                let key = if labels.is_empty() { String::new() } else { format!("{labels},") };
                let series =
                    by_series.get(&key).unwrap_or_else(|| panic!("{name}_count without buckets"));
                assert_eq!(series.1, Some(value), "{name} +Inf bucket must equal _count");
            }
        }
        for (labels, (buckets, inf)) in by_series {
            assert!(inf.is_some(), "{name}{{{labels}}} has no +Inf bucket");
            assert!(
                buckets.windows(2).all(|w| w[0] <= w[1]),
                "{name}{{{labels}}} buckets are not cumulative"
            );
        }
    }
    assert!(histograms >= 3, "latency + stage histograms expected, saw {histograms}");

    // --- stage spans observed real requests end to end.
    let stage_count_total: u64 = families["irs_stage_latency_us"]
        .1
        .iter()
        .filter(|l| l.starts_with("irs_stage_latency_us_count"))
        .map(|l| l.rsplit_once(' ').unwrap().1.parse::<u64>().unwrap())
        .sum();
    assert!(stage_count_total >= 4 * 4, "every stage records per request: {stage_count_total}");
    for stage in ["queue", "assemble", "forward", "encode"] {
        let observed: u64 = families["irs_stage_latency_us"]
            .1
            .iter()
            .filter(|l| {
                l.starts_with("irs_stage_latency_us_count")
                    && l.contains(&format!("stage=\"{stage}\""))
            })
            .map(|l| l.rsplit_once(' ').unwrap().1.parse::<u64>().unwrap())
            .sum();
        assert!(observed >= 4, "stage {stage} never observed");
    }

    server.shutdown();
}
