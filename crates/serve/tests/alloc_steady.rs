//! Allocation-counter guard for the serving v2 request path.
//!
//! The contract: after warm-up, a keep-alive `next` (or `healthz`)
//! request touches **no allocator at all** on its way through
//! connection fill → in-place parse → route → JSON arena → scheduler
//! round-trip → direct-written response → flush.  Every buffer involved
//! (connection I/O, worker workspace, scheduler slot, engine batch) is
//! reset, not reallocated, between requests.
//!
//! The guard is a counting `#[global_allocator]` wrapped around the
//! system allocator.  This file holds exactly one test so nothing else
//! allocates concurrently in this process, and the client loop inside
//! the measurement window is itself allocation-free (prebuilt request
//! bytes, fixed read buffer, bytewise compare) — so the asserted delta
//! covers client *and* server, i.e. the whole process.

// A `GlobalAlloc` impl is necessarily unsafe; this is the one place in
// the workspace that needs it, and it only delegates to `System`.
#![allow(unsafe_code)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use irs_core::{InfluenceRecommender, NextQuery};
use irs_data::ItemId;
use irs_serve::{
    BatchPolicy, Engine, HttpServer, JsonValue, ModelSnapshot, ServerConfig, SnapshotRegistry,
};

// ------------------------------------------------ counting allocator

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

struct CountingAllocator;

// SAFETY: delegates directly to `System`; the counter is a side effect.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

// ------------------------------------------------------- stub model

/// Allocation-free deterministic model: always proposes the objective.
/// `next_items_into` is overridden because the trait's default
/// (`out.extend(self.next_items(..))`) allocates a fresh `Vec` per
/// batch — exactly what this test exists to catch.
struct EchoObjective;

impl InfluenceRecommender for EchoObjective {
    fn name(&self) -> String {
        "echo-objective".to_string()
    }

    fn next_item(
        &self,
        _user: usize,
        _history: &[ItemId],
        objective: ItemId,
        _path: &[ItemId],
    ) -> Option<ItemId> {
        Some(objective)
    }

    fn next_items_into(&self, queries: &[NextQuery<'_>], out: &mut Vec<Option<ItemId>>) {
        for q in queries {
            out.push(Some(q.objective));
        }
    }
}

// ------------------------------------------------------------- test

/// Send `req` and read exactly `expected.len()` response bytes into
/// `buf`, asserting they equal `expected`.  Touches no allocator.
fn roundtrip_exact(conn: &mut TcpStream, req: &[u8], expected: &[u8], buf: &mut [u8]) {
    conn.write_all(req).expect("write request");
    conn.read_exact(&mut buf[..expected.len()]).expect("read response");
    assert!(&buf[..expected.len()] == expected, "response changed between warm-up and measurement");
}

/// Send `req` once and return the full response bytes (allocates; used
/// outside measurement windows to learn the expected response).
fn roundtrip_learn(conn: &mut TcpStream, req: &[u8]) -> Vec<u8> {
    conn.write_all(req).expect("write request");
    let mut buf = vec![0u8; 4096];
    let mut len = 0usize;
    loop {
        let n = conn.read(&mut buf[len..]).expect("read response");
        assert!(n > 0, "connection closed");
        len += n;
        if let Some(pos) = buf[..len].windows(4).position(|w| w == b"\r\n\r\n") {
            let head = std::str::from_utf8(&buf[..pos + 4]).unwrap();
            let content_length: usize = head
                .lines()
                .find_map(|l| {
                    let (k, v) = l.split_once(':')?;
                    k.trim().eq_ignore_ascii_case("content-length").then(|| v.trim())
                })
                .and_then(|v| v.parse().ok())
                .expect("Content-Length");
            let total = pos + 4 + content_length;
            while len < total {
                let n = conn.read(&mut buf[len..]).expect("read body");
                assert!(n > 0, "connection closed mid-body");
                len += n;
            }
            assert_eq!(len, total, "unexpected trailing bytes");
            buf.truncate(total);
            return buf;
        }
    }
}

#[test]
fn steady_state_keepalive_requests_touch_no_allocator() {
    const WARMUP: usize = 100;
    const WINDOW: usize = 200;

    let registry = Arc::new(SnapshotRegistry::new(ModelSnapshot::in_memory_with_catalogue(
        "alloc",
        Box::new(EchoObjective),
        8,
    )));
    let engine = Arc::new(Engine::start(
        registry,
        BatchPolicy {
            max_batch: 4,
            max_wait: Duration::from_micros(100),
            workers: 1,
            queue_capacity: 64,
        },
    ));
    let server = HttpServer::bind(
        "127.0.0.1:0",
        engine.clone(),
        None,
        // A small fixed pool so the warm-up below visits every worker's
        // workspace enough times to size all its buffers.
        ServerConfig { http_workers: 2, ..Default::default() },
    )
    .expect("bind");
    let addr = server.local_addr().unwrap();
    let server_thread = std::thread::spawn(move || server.run());

    let mut conn = TcpStream::connect(addr).expect("connect");
    conn.set_nodelay(true).unwrap();
    conn.set_read_timeout(Some(Duration::from_secs(30))).unwrap();

    // One session; repeated `next` without feedback re-proposes the same
    // item, so its response bytes are identical every time.
    let body = r#"{"user": 1, "history": [2], "objective": 3}"#;
    let create = format!(
        "POST /v1/session HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n{}",
        body.len(),
        body
    )
    .into_bytes();
    let created = roundtrip_learn(&mut conn, &create);
    let created_text = String::from_utf8_lossy(&created);
    assert!(created_text.starts_with("HTTP/1.1 200"), "create failed: {created_text}");
    let body = &created_text[created_text.find("\r\n\r\n").unwrap() + 4..];
    let sid = JsonValue::parse(body)
        .unwrap()
        .get("session_id")
        .and_then(JsonValue::as_usize)
        .expect("session id");

    let next_req =
        format!("POST /v1/session/{sid}/next HTTP/1.1\r\nHost: x\r\nContent-Length: 0\r\n\r\n")
            .into_bytes();
    let healthz_req = b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n".to_vec();

    let next_expected = roundtrip_learn(&mut conn, &next_req);
    let healthz_expected = roundtrip_learn(&mut conn, &healthz_req);
    let mut buf = vec![0u8; 4096];

    // Warm-up: size every buffer on the path (both workers' workspaces,
    // connection buffers, scheduler queue/batch/answer buffers).
    for _ in 0..WARMUP {
        roundtrip_exact(&mut conn, &next_req, &next_expected, &mut buf);
        roundtrip_exact(&mut conn, &healthz_req, &healthz_expected, &mut buf);
    }

    // Measurement: the whole process must not allocate once per steady
    // request — the window allows zero allocations total.
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    for _ in 0..WINDOW {
        roundtrip_exact(&mut conn, &next_req, &next_expected, &mut buf);
    }
    let next_delta = ALLOCATIONS.load(Ordering::SeqCst) - before;

    let before = ALLOCATIONS.load(Ordering::SeqCst);
    for _ in 0..WINDOW {
        roundtrip_exact(&mut conn, &healthz_req, &healthz_expected, &mut buf);
    }
    let healthz_delta = ALLOCATIONS.load(Ordering::SeqCst) - before;

    assert_eq!(
        next_delta, 0,
        "steady-state keep-alive `next` path allocated {next_delta} times over {WINDOW} requests"
    );
    assert_eq!(
        healthz_delta, 0,
        "steady-state `healthz` path allocated {healthz_delta} times over {WINDOW} requests"
    );

    // Tear down (allocations are free again out here).
    let bye = roundtrip_learn(
        &mut conn,
        b"POST /v1/admin/shutdown HTTP/1.1\r\nHost: x\r\nContent-Length: 0\r\n\r\n",
    );
    assert!(String::from_utf8_lossy(&bye).starts_with("HTTP/1.1 200"));
    server_thread.join().expect("server thread").expect("server run");
    engine.shutdown();
}
