//! End-to-end online-learning canary flow over HTTP: boot the full
//! serving stack with a background trainer attached, split traffic
//! 50/50, feed the trainer real feedback, force a canary publish,
//! verify both arms serve their own snapshot versions with per-arm
//! counters, then promote the canary and watch the loser drain.
//!
//! A second test injects a panicking learner and proves the serving
//! path is isolated from trainer death: every route keeps answering
//! and the failure is visible in `/v1/stats`.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use irs_core::{Irn, IrnConfig, NeuralTrainConfig};
use irs_data::split::{split_dataset, SplitConfig};
use irs_data::synth::{generate, SynthConfig};
use irs_serve::{
    BatchPolicy, Engine, FeedbackEvent, FoldOutcome, HttpServer, IrnArchitecture, IrnOnlineLearner,
    JsonValue, ModelSnapshot, OnlineConfig, OnlineHandle, OnlineLearner, ServerConfig,
    SnapshotLoader, SnapshotRegistry,
};

/// One HTTP/1.1 request against `addr`; returns (status, parsed body).
fn request(addr: std::net::SocketAddr, method: &str, path: &str, body: &str) -> (u16, JsonValue) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(60))).unwrap();
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: localhost\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
    .expect("write request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let status: u16 = response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("malformed response: {response:?}"));
    let payload = response.split("\r\n\r\n").nth(1).unwrap_or("");
    let json =
        JsonValue::parse(payload).unwrap_or_else(|e| panic!("bad JSON body {payload:?}: {e}"));
    (status, json)
}

fn stat(stats: &JsonValue, key: &str) -> usize {
    stats
        .get(key)
        .and_then(JsonValue::as_usize)
        .unwrap_or_else(|| panic!("stats missing numeric key {key:?}: {stats}"))
}

#[test]
fn feedback_publish_weighted_routing_promote_end_to_end() {
    let dataset = generate(&SynthConfig::tiny(0x0a11ce)).dataset;
    let split = split_dataset(&dataset, &SplitConfig::small());
    let config = IrnConfig {
        dim: 8,
        user_dim: 4,
        layers: 1,
        heads: 2,
        max_len: 10,
        train: NeuralTrainConfig { epochs: 1, ..Default::default() },
        ..Default::default()
    };
    let model = Irn::fit(&split.train, &[], dataset.num_items, dataset.num_users, &config, None);
    let dir = std::env::temp_dir().join("irs_serve_http_online");
    std::fs::create_dir_all(&dir).unwrap();
    let snap_path = dir.join("model.irsp");
    model.save(std::fs::File::create(&snap_path).unwrap()).unwrap();

    let arch = IrnArchitecture {
        num_items: dataset.num_items,
        num_users: dataset.num_users,
        config: config.clone(),
    };
    let initial = arch.load_snapshot(snap_path.to_str().unwrap()).unwrap();
    let registry = Arc::new(SnapshotRegistry::new(initial));
    let engine = Arc::new(Engine::start(
        registry.clone(),
        BatchPolicy {
            max_batch: 8,
            max_wait: Duration::from_micros(200),
            workers: 2,
            queue_capacity: 64,
        },
    ));
    let loader: SnapshotLoader = {
        let arch = arch.clone();
        Arc::new(move |path: &str| arch.load_snapshot(path))
    };
    let server = HttpServer::bind(
        "127.0.0.1:0",
        engine.clone(),
        Some(loader),
        ServerConfig { max_len: 6, patience: 2, session_shards: 4, ..Default::default() },
    )
    .expect("bind");
    // Same wiring `irs serve --online-train` uses: the student boots
    // from the snapshot file on the trainer thread.  A long timed
    // period keeps publishes under this test's explicit control.
    let bytes = std::fs::read(&snap_path).unwrap();
    let (num_items, num_users) = (dataset.num_items, dataset.num_users);
    let student_cfg = config.clone();
    server.set_online(OnlineHandle::start(
        registry,
        OnlineConfig { publish_every: Duration::from_secs(3600), replay_cap: 1024 },
        move || {
            let student = Irn::load(&bytes[..], num_items, num_users, &student_cfg).unwrap();
            Box::new(IrnOnlineLearner::new(student)) as Box<dyn OnlineLearner>
        },
    ));
    let addr = server.local_addr().unwrap();
    let server_thread = std::thread::spawn(move || server.run());

    // Before any split the stable arm owns all traffic.
    let (status, stats) = request(addr, "GET", "/v1/stats", "");
    assert_eq!(status, 200);
    assert_eq!(stats.get("online_enabled").and_then(JsonValue::as_bool), Some(true));
    assert_eq!(stat(&stats, "arm0_version"), 1);
    assert_eq!(stat(&stats, "arm1_version"), 1);

    // Open the canary: 50/50 weighted split.
    let (status, split_resp) =
        request(addr, "POST", "/v1/admin/split", "{\"weights\": [0.5, 0.5]}");
    assert_eq!(status, 200, "split failed: {split_resp}");

    // Create sessions until both arms are populated; sticky assignment
    // happens at creation time and is reported in the response.
    let mut sessions: Vec<(usize, usize, usize)> = Vec::new(); // (sid, arm, user)
    let mut arm_seen = [0usize; 2];
    for tc in split.test.iter().cycle().take(64) {
        let history: Vec<String> = tc.history.iter().map(|i| i.to_string()).collect();
        let objective = (tc.history.last().unwrap() + 1) % dataset.num_items;
        let body = format!(
            "{{\"user\": {}, \"history\": [{}], \"objective\": {objective}}}",
            tc.user,
            history.join(",")
        );
        let (status, created) = request(addr, "POST", "/v1/session", &body);
        assert_eq!(status, 200, "create failed: {created}");
        let sid = created.get("session_id").and_then(JsonValue::as_usize).expect("session id");
        let arm = created.get("arm").and_then(JsonValue::as_usize).expect("arm in response");
        assert!(arm < 2, "arm {arm} out of range");
        arm_seen[arm] += 1;
        sessions.push((sid, arm, tc.user));
        if arm_seen[0] >= 4 && arm_seen[1] >= 4 && sessions.len() >= 16 {
            break;
        }
    }
    assert!(
        arm_seen[0] >= 4 && arm_seen[1] >= 4,
        "64 sessions under a 50/50 split must land on both arms (got {arm_seen:?})"
    );

    // Drive one next → accept round per session: this exercises both
    // arms' scoring paths and logs feedback for the trainer.
    let mut fed = 0usize;
    for &(sid, _, _) in &sessions {
        let (status, next) = request(addr, "POST", &format!("/v1/session/{sid}/next"), "");
        assert_eq!(status, 200, "next failed: {next}");
        if next.get("done").and_then(JsonValue::as_bool) == Some(true) {
            continue;
        }
        let item = next.get("item").and_then(JsonValue::as_usize).expect("item");
        let (status, fb) = request(
            addr,
            "POST",
            &format!("/v1/session/{sid}/feedback"),
            &format!("{{\"item\": {item}, \"accepted\": true}}"),
        );
        assert_eq!(status, 200, "feedback failed: {fb}");
        fed += 1;
    }
    assert!(fed >= 8, "expected most sessions to complete a feedback round, got {fed}");

    // Force a canary publish: the trainer folds the replay buffer into
    // the student and lands a new snapshot on arm 1 only.
    let (status, published) = request(addr, "POST", "/v1/admin/publish", "");
    assert_eq!(status, 200, "publish failed: {published}");
    assert_eq!(published.get("version").and_then(JsonValue::as_usize), Some(2));
    assert_eq!(published.get("arm").and_then(JsonValue::as_usize), Some(1));

    let (status, stats) = request(addr, "GET", "/v1/stats", "");
    assert_eq!(status, 200);
    assert_eq!(stat(&stats, "arm0_version"), 1, "stable arm must be untouched by a publish");
    assert_eq!(stat(&stats, "arm1_version"), 2);
    assert!(stat(&stats, "online_folds") >= 1);
    assert!(stat(&stats, "online_examples") >= 1, "accepted feedback must reach the trainer");
    assert_eq!(stat(&stats, "online_publishes"), 1);
    assert!(
        stats.get("arm1_snapshot").and_then(JsonValue::as_str).unwrap().starts_with("online-"),
        "canary snapshot label should mark its online origin: {stats}"
    );

    // Another scoring round now serves two different snapshot versions
    // side by side; per-arm request counters must both advance.
    for &(sid, _, _) in &sessions {
        let (status, _) = request(addr, "POST", &format!("/v1/session/{sid}/next"), "");
        assert_eq!(status, 200);
    }
    let (status, stats) = request(addr, "GET", "/v1/stats", "");
    assert_eq!(status, 200);
    assert!(stat(&stats, "arm0_requests") >= 4, "stable arm saw no traffic: {stats}");
    assert!(stat(&stats, "arm1_requests") >= 4, "canary arm saw no traffic: {stats}");
    assert!(stat(&stats, "arm0_sessions") >= 4);
    assert!(stat(&stats, "arm1_sessions") >= 4);

    // Promote: the stable arm adopts the canary snapshot and weights
    // collapse to 100/0 — the loser drains.
    let (status, promoted) = request(addr, "POST", "/v1/admin/promote", "");
    assert_eq!(status, 200, "promote failed: {promoted}");
    assert_eq!(promoted.get("promoted").and_then(JsonValue::as_bool), Some(true));
    assert_eq!(promoted.get("version").and_then(JsonValue::as_usize), Some(2));

    let (status, stats) = request(addr, "GET", "/v1/stats", "");
    assert_eq!(status, 200);
    assert_eq!(stat(&stats, "arm0_version"), 2, "promotion must flip the stable arm");
    assert!(stats.get("arm0_weight").and_then(JsonValue::as_f64).unwrap() > 0.999);
    assert!(stats.get("arm1_weight").and_then(JsonValue::as_f64).unwrap() < 0.001);

    // Every new session lands on the winner.
    for _ in 0..8 {
        let (status, created) = request(
            addr,
            "POST",
            "/v1/session",
            "{\"user\": 0, \"history\": [0], \"objective\": 1}",
        );
        assert_eq!(status, 200);
        assert_eq!(created.get("arm").and_then(JsonValue::as_usize), Some(0));
    }

    // Rollback is the mirror image: canary returns to the stable pair.
    let (status, rolled) = request(addr, "POST", "/v1/admin/rollback", "");
    assert_eq!(status, 200, "rollback failed: {rolled}");
    assert_eq!(rolled.get("rolled_back").and_then(JsonValue::as_bool), Some(true));
    let (status, stats) = request(addr, "GET", "/v1/stats", "");
    assert_eq!(status, 200);
    assert_eq!(stat(&stats, "arm1_version"), stat(&stats, "arm0_version"));

    let (status, _) = request(addr, "POST", "/v1/admin/shutdown", "");
    assert_eq!(status, 200);
    server_thread.join().expect("server thread").expect("server run");
    engine.shutdown();
}

/// A learner that dies on first contact with data.
struct PanickyLearner;

impl OnlineLearner for PanickyLearner {
    fn fold(&mut self, _events: &[FeedbackEvent]) -> FoldOutcome {
        panic!("injected trainer fault");
    }
    fn publish(&mut self) -> std::io::Result<ModelSnapshot> {
        unreachable!("fold panics first")
    }
}

#[test]
fn panicking_trainer_never_takes_down_serving() {
    let dataset = generate(&SynthConfig::tiny(0xdead)).dataset;
    let config = IrnConfig {
        dim: 8,
        user_dim: 4,
        layers: 1,
        heads: 2,
        max_len: 10,
        train: NeuralTrainConfig { epochs: 0, ..Default::default() },
        ..Default::default()
    };
    let model = Irn::fit(&[], &[], dataset.num_items, dataset.num_users, &config, None);
    let dir = std::env::temp_dir().join("irs_serve_http_online_panic");
    std::fs::create_dir_all(&dir).unwrap();
    let snap_path = dir.join("model.irsp");
    model.save(std::fs::File::create(&snap_path).unwrap()).unwrap();
    let arch =
        IrnArchitecture { num_items: dataset.num_items, num_users: dataset.num_users, config };
    let initial = arch.load_snapshot(snap_path.to_str().unwrap()).unwrap();
    let registry = Arc::new(SnapshotRegistry::new(initial));
    let engine = Arc::new(Engine::start(
        registry.clone(),
        BatchPolicy {
            max_batch: 4,
            max_wait: Duration::from_micros(200),
            workers: 1,
            queue_capacity: 16,
        },
    ));
    let server = HttpServer::bind(
        "127.0.0.1:0",
        engine.clone(),
        None,
        ServerConfig { max_len: 6, patience: 2, session_shards: 2, ..Default::default() },
    )
    .expect("bind");
    server.set_online(OnlineHandle::start(
        registry,
        OnlineConfig { publish_every: Duration::from_secs(3600), replay_cap: 64 },
        || Box::new(PanickyLearner) as Box<dyn OnlineLearner>,
    ));
    let addr = server.local_addr().unwrap();
    let server_thread = std::thread::spawn(move || server.run());

    // Log feedback, then force a tick: the learner panics on fold.
    let (status, created) =
        request(addr, "POST", "/v1/session", "{\"user\": 0, \"history\": [0], \"objective\": 1}");
    assert_eq!(status, 200);
    let sid = created.get("session_id").and_then(JsonValue::as_usize).unwrap();
    let (status, next) = request(addr, "POST", &format!("/v1/session/{sid}/next"), "");
    assert_eq!(status, 200, "next failed: {next}");
    if let Some(item) = next.get("item").and_then(JsonValue::as_usize) {
        let (status, _) = request(
            addr,
            "POST",
            &format!("/v1/session/{sid}/feedback"),
            &format!("{{\"item\": {item}, \"accepted\": true}}"),
        );
        assert_eq!(status, 200);
    }
    let (status, body) = request(addr, "POST", "/v1/admin/publish", "");
    assert_eq!(status, 503, "publish against a dead trainer must be 503: {body}");

    // The trainer is dead; serving is not.  Every route still answers.
    let (status, health) = request(addr, "GET", "/healthz", "");
    assert_eq!(status, 200);
    assert_eq!(health.get("ok").and_then(JsonValue::as_bool), Some(true));
    let (status, created) =
        request(addr, "POST", "/v1/session", "{\"user\": 1, \"history\": [1], \"objective\": 2}");
    assert_eq!(status, 200);
    let sid2 = created.get("session_id").and_then(JsonValue::as_usize).unwrap();
    let (status, next) = request(addr, "POST", &format!("/v1/session/{sid2}/next"), "");
    assert_eq!(status, 200, "scoring after trainer death failed: {next}");
    if let Some(item) = next.get("item").and_then(JsonValue::as_usize) {
        let (status, _) = request(
            addr,
            "POST",
            &format!("/v1/session/{sid2}/feedback"),
            &format!("{{\"item\": {item}, \"accepted\": false}}"),
        );
        assert_eq!(status, 200, "feedback must keep logging after trainer death");
    }

    // The failure is visible, not silent: panics counted, alive=false,
    // and no snapshot ever reached the canary arm.
    let (status, stats) = request(addr, "GET", "/v1/stats", "");
    assert_eq!(status, 200);
    assert_eq!(stats.get("online_enabled").and_then(JsonValue::as_bool), Some(true));
    assert_eq!(stats.get("online_trainer_alive").and_then(JsonValue::as_bool), Some(false));
    assert!(stat(&stats, "online_trainer_panics") >= 1);
    assert_eq!(stat(&stats, "online_publishes"), 0);
    assert_eq!(stat(&stats, "arm1_version"), 1);

    // A second publish fails fast (no 30 s timeout wait) and serving
    // still answers afterwards.
    let t0 = std::time::Instant::now();
    let (status, _) = request(addr, "POST", "/v1/admin/publish", "");
    assert_eq!(status, 503);
    assert!(t0.elapsed() < Duration::from_secs(10), "dead-trainer publish must fail fast");
    let (status, _) = request(addr, "GET", "/v1/stats", "");
    assert_eq!(status, 200);

    let (status, _) = request(addr, "POST", "/v1/admin/shutdown", "");
    assert_eq!(status, 200);
    server_thread.join().expect("server thread").expect("server run");
    engine.shutdown();
}
