//! Scheduler-layer batched≡scalar pins: for random session mixes and
//! arrival orders, micro-batched serving must return *bitwise-identical*
//! recommendations to per-session scalar `next_item` calls.
//!
//! This extends the PR 2 property tests (score_next_batch ≡ score_next,
//! next_items ≡ next_item) up through the serving stack: the dynamic
//! micro-batching scheduler regroups concurrent requests by arrival
//! timing, so batch *composition* is nondeterministic — these tests
//! assert that composition never leaks into the answers.  Item ids are
//! integers, so equality of recommendations is exactly bitwise equality
//! of the underlying argmax — any score divergence in the batched path
//! would flip an argmax somewhere in these mixes.

use std::sync::{Arc, OnceLock};
use std::time::Duration;

use irs_core::{
    run_interactive_session, InfluenceRecommender, InteractiveSession, Irn, IrnConfig,
    NeuralTrainConfig, UserModel,
};
use irs_data::split::{split_dataset, SplitConfig};
use irs_data::synth::{generate, SynthConfig};
use irs_data::ItemId;
use irs_serve::{BatchPolicy, Engine, ModelSnapshot, SnapshotRegistry};
use proptest::prelude::*;

struct World {
    registry: Arc<SnapshotRegistry>,
    /// A second handle to the same trained weights for scalar reference
    /// calls (the registry owns the served copy).
    reference: Irn,
    num_items: usize,
}

fn world() -> &'static World {
    static WORLD: OnceLock<World> = OnceLock::new();
    WORLD.get_or_init(|| {
        let dataset = generate(&SynthConfig::tiny(0x5e4e)).dataset;
        let split = split_dataset(&dataset, &SplitConfig::small());
        let train = NeuralTrainConfig { epochs: 1, ..Default::default() };
        let config = IrnConfig {
            dim: 8,
            user_dim: 4,
            layers: 1,
            heads: 2,
            max_len: 10,
            train,
            ..Default::default()
        };
        let model =
            Irn::fit(&split.train, &[], dataset.num_items, dataset.num_users, &config, None);
        // Serialise → reload to get an independent model with identical
        // weights: the served copy and the reference copy must not share
        // a PIM cache for the comparison to mean anything.
        let mut bytes = Vec::new();
        model.save(&mut bytes).unwrap();
        let reference =
            Irn::load(&bytes[..], dataset.num_items, dataset.num_users, &config).unwrap();
        let registry = Arc::new(SnapshotRegistry::new(ModelSnapshot::in_memory_with_catalogue(
            "prop",
            Box::new(model),
            dataset.num_items,
        )));
        World { registry, reference, num_items: dataset.num_items }
    })
}

/// Strategy: a mix of sessions (user, history, objective seed, path seed).
fn session_mix() -> impl Strategy<Value = Vec<(usize, Vec<usize>, usize)>> {
    proptest::collection::vec(
        (0usize..30, proptest::collection::vec(0usize..1000, 0..8), 0usize..1000),
        1..12,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Single proposals: random concurrent mixes answered through the
    /// scheduler equal scalar next_item calls, request by request.
    #[test]
    fn scheduler_answers_equal_scalar_next_item(
        mix in session_mix(),
        max_batch in 1usize..6,
        workers in 1usize..3,
    ) {
        let w = world();
        let engine = Arc::new(Engine::start(
            w.registry.clone(),
            BatchPolicy {
                max_batch,
                max_wait: Duration::from_micros(300),
                workers,
                queue_capacity: 64,
            },
        ));
        // Normalise ids into the catalogue and dedupe histories so the
        // no-repeat contract has room to answer.
        let queries: Vec<(usize, Vec<ItemId>, ItemId)> = mix
            .iter()
            .map(|(u, h, o)| {
                let mut hist: Vec<ItemId> = h.iter().map(|&i| i % w.num_items).collect();
                hist.dedup();
                (*u, hist, o % w.num_items)
            })
            .collect();
        // Arrival order = spawn order; the scheduler regroups at will.
        let batched: Vec<Option<ItemId>> = std::thread::scope(|scope| {
            let handles: Vec<_> = queries
                .iter()
                .map(|(u, h, o)| {
                    let engine = engine.clone();
                    scope.spawn(move || engine.next_item(*u, h.clone(), *o, Vec::new()))
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("request thread")).collect()
        });
        engine.shutdown();
        for ((u, h, o), got) in queries.iter().zip(&batched) {
            let want = w.reference.next_item(*u, h, *o, &[]);
            prop_assert_eq!(
                *got, want,
                "user {} objective {} history {:?}: scheduler {:?} vs scalar {:?}",
                u, o, h, got, want
            );
        }
    }

    /// Whole sessions: concurrent interactive sessions driven through the
    /// scheduler produce exactly the outcomes the scalar driver produces
    /// session by session (passive user, so outcomes are deterministic).
    #[test]
    fn concurrent_sessions_match_scalar_driver(
        mix in session_mix(),
        max_batch in 2usize..8,
    ) {
        let w = world();
        let engine = Arc::new(Engine::start(
            w.registry.clone(),
            BatchPolicy {
                max_batch,
                max_wait: Duration::from_micros(300),
                workers: 2,
                queue_capacity: 64,
            },
        ));
        let cases: Vec<(usize, Vec<ItemId>, ItemId)> = mix
            .iter()
            .map(|(u, h, o)| {
                let mut hist: Vec<ItemId> = h.iter().map(|&i| i % w.num_items).collect();
                hist.dedup();
                (*u, hist, o % w.num_items)
            })
            .collect();
        const MAX_LEN: usize = 4;
        const PATIENCE: usize = 2;
        let served: Vec<Vec<ItemId>> = std::thread::scope(|scope| {
            let handles: Vec<_> = cases
                .iter()
                .map(|(u, h, o)| {
                    let engine = engine.clone();
                    scope.spawn(move || {
                        let mut session = InteractiveSession::new(
                            *u,
                            h.clone(),
                            *o,
                            MAX_LEN,
                            PATIENCE,
                        );
                        while !session.is_done() {
                            match engine.propose(&session) {
                                Some(item) => session.record(item, true),
                                None => session.record_give_up(),
                            }
                        }
                        session.outcome().accepted
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("session thread")).collect()
        });
        engine.shutdown();
        // The served sessions accept every proposal; the scalar driver
        // must be run with the same passive user.
        struct Agreeable;
        impl UserModel for Agreeable {
            fn accepts(&mut self, _u: usize, _c: &[ItemId], _i: ItemId) -> bool {
                true
            }
        }
        for ((u, h, o), got) in cases.iter().zip(&served) {
            let scalar = run_interactive_session(
                &w.reference,
                &mut Agreeable,
                *u,
                h,
                *o,
                MAX_LEN,
                PATIENCE,
            );
            prop_assert_eq!(
                got.clone(), scalar.accepted,
                "user {} objective {}: served path diverged from scalar driver",
                u, o
            );
        }
    }
}
