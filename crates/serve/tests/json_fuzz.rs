//! Property/fuzz suite for `irs_serve`'s two JSON parsers.
//!
//! The serving crate carries a DOM parser ([`JsonValue::parse`], used by
//! clients and tests) and an arena parser ([`JsonSlab::parse`], the
//! allocation-free request path).  Both implement the same grammar, so
//! this suite pins them against each other three ways:
//!
//! * **round-trip** — random documents survive serialise → parse bitwise
//!   through both parsers;
//! * **direct writers** — `write_json_str` / `write_json_num` (the
//!   zero-allocation response serialisers) agree with the DOM's
//!   `Display` output;
//! * **mutation corpus** — truncations, byte flips, random splices,
//!   invalid UTF-8, pathological nesting and huge numbers must all
//!   return `Err` or a valid value, never panic, hang or over-read, and
//!   the two parsers must agree verdict-for-verdict on every UTF-8
//!   input.
//!
//! The generator is a seeded xorshift so every failure reproduces
//! exactly; no external fuzzing engine is involved.

use irs_serve::{write_json_num, write_json_str, JsonSlab, JsonValue, MAX_DEPTH};

/// Tiny deterministic RNG (xorshift64*) so the corpus is stable across
/// runs and failures replay from the seed alone.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.max(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }
}

/// Characters the string generator draws from: ASCII, JSON-significant
/// punctuation, control characters and multi-byte scalars.
const CHAR_POOL: &[char] = &[
    'a', 'Z', '0', ' ', '"', '\\', '/', '\n', '\t', '\r', '\u{8}', '\u{c}', '\u{1}', '\u{7f}', 'é',
    'ß', '漢', '🦀', '\u{fffd}', '{', '}', '[', ']', ',', ':',
];

fn gen_string(rng: &mut Rng) -> String {
    (0..rng.below(12)).map(|_| CHAR_POOL[rng.below(CHAR_POOL.len())]).collect()
}

fn gen_number(rng: &mut Rng) -> f64 {
    match rng.below(5) {
        0 => rng.below(1000) as f64,
        1 => -(rng.below(1000) as f64),
        // Integers near the i64-rendering boundary of the serialisers.
        2 => (rng.next() % 9_007_199_254_740_992) as f64,
        3 => rng.next() as f64 / u64::MAX as f64 * 2e3 - 1e3,
        // Random finite bit patterns, extremes included.
        _ => {
            let f = f64::from_bits(rng.next());
            if f.is_finite() {
                f
            } else {
                rng.below(7) as f64
            }
        }
    }
}

fn gen_value(rng: &mut Rng, depth: usize) -> JsonValue {
    let scalar_only = depth >= 4;
    match rng.below(if scalar_only { 4 } else { 6 }) {
        0 => JsonValue::Null,
        1 => JsonValue::Bool(rng.below(2) == 0),
        2 => JsonValue::Num(gen_number(rng)),
        3 => JsonValue::Str(gen_string(rng)),
        4 => JsonValue::Arr((0..rng.below(5)).map(|_| gen_value(rng, depth + 1)).collect()),
        _ => JsonValue::Obj(
            (0..rng.below(5)).map(|_| (gen_string(rng), gen_value(rng, depth + 1))).collect(),
        ),
    }
}

#[test]
fn random_documents_round_trip_through_both_parsers() {
    let mut rng = Rng::new(0xf022_51a7);
    let mut slab = JsonSlab::new();
    for case in 0..400 {
        let value = gen_value(&mut rng, 0);
        let text = value.to_string();
        let dom = JsonValue::parse(&text)
            .unwrap_or_else(|e| panic!("case {case}: DOM rejected own output {text:?}: {e}"));
        assert_eq!(dom, value, "case {case}: DOM round-trip changed {text:?}");
        let arena = slab
            .parse(text.as_bytes())
            .unwrap_or_else(|e| panic!("case {case}: slab rejected {text:?}: {e}"))
            .to_value();
        assert_eq!(arena, value, "case {case}: slab round-trip changed {text:?}");
    }
}

#[test]
fn direct_writers_agree_with_the_dom_serialiser() {
    let mut rng = Rng::new(0xd1ec_7a11);
    let mut out = Vec::new();
    for _ in 0..400 {
        out.clear();
        let s = gen_string(&mut rng);
        write_json_str(&mut out, &s);
        assert_eq!(
            String::from_utf8(out.clone()).unwrap(),
            JsonValue::Str(s.clone()).to_string(),
            "write_json_str diverged for {s:?}"
        );
        out.clear();
        let n = gen_number(&mut rng);
        write_json_num(&mut out, n);
        assert_eq!(
            String::from_utf8(out.clone()).unwrap(),
            JsonValue::Num(n).to_string(),
            "write_json_num diverged for {n:?}"
        );
    }
}

/// Parse `bytes` with both parsers and assert they agree: same Ok/Err
/// verdict and, on Ok, the same value.  The DOM parser only sees UTF-8
/// inputs (its signature takes `&str`); the slab must reject invalid
/// UTF-8 on its own.  Panics from either parser fail the test naturally.
fn assert_parsers_agree(bytes: &[u8], slab: &mut JsonSlab, context: &str) {
    let arena = slab.parse(bytes).map(|r| r.to_value());
    match std::str::from_utf8(bytes) {
        Ok(text) => {
            let dom = JsonValue::parse(text);
            match (&arena, &dom) {
                (Ok(a), Ok(d)) => assert_eq!(a, d, "{context}: values diverged for {text:?}"),
                (Err(_), Err(_)) => {}
                _ => panic!(
                    "{context}: verdicts diverged for {text:?}: slab {:?} vs dom {:?}",
                    arena.as_ref().map(|_| "Ok"),
                    dom.as_ref().map(|_| "Ok"),
                ),
            }
        }
        Err(_) => {
            // Invalid UTF-8 can only hide inside strings (every other
            // token is ASCII), where the slab validates and rejects it —
            // a non-UTF-8 document must never parse to a value.
            assert!(arena.is_err(), "{context}: slab accepted invalid UTF-8 {bytes:?}");
        }
    }
}

#[test]
fn mutated_documents_never_panic_and_parsers_agree() {
    let mut rng = Rng::new(0xbad5_eed5);
    let mut slab = JsonSlab::new();
    for case in 0..600 {
        let mut bytes = gen_value(&mut rng, 0).to_string().into_bytes();
        for _ in 0..1 + rng.below(3) {
            if bytes.is_empty() {
                break;
            }
            match rng.below(6) {
                // Truncation: drop a random tail.
                0 => bytes.truncate(rng.below(bytes.len() + 1)),
                // Flip one byte to a random value.
                1 => {
                    let at = rng.below(bytes.len());
                    bytes[at] = (rng.next() & 0xff) as u8;
                }
                // Insert a random byte (structural chars weighted in).
                2 => {
                    let at = rng.below(bytes.len() + 1);
                    let b = *[b'{', b'[', b'"', b'\\', b',', 0x00, 0xff, b'9']
                        .get(rng.below(8))
                        .unwrap();
                    bytes.insert(at, b);
                }
                // Duplicate a random slice (grows nesting/garbage).
                3 => {
                    let from = rng.below(bytes.len());
                    let to = from + rng.below(bytes.len() - from + 1);
                    let slice = bytes[from..to].to_vec();
                    let at = rng.below(bytes.len() + 1);
                    bytes.splice(at..at, slice);
                }
                // Splice an invalid UTF-8 sequence in.
                4 => {
                    let at = rng.below(bytes.len() + 1);
                    bytes.splice(at..at, [0xc0, 0xaf]);
                }
                // Splice a huge number in.
                _ => {
                    let at = rng.below(bytes.len() + 1);
                    bytes.splice(at..at, b"1e308999".iter().copied());
                }
            }
        }
        assert_parsers_agree(&bytes, &mut slab, &format!("mutation case {case}"));
    }
}

#[test]
fn handcrafted_adversarial_corpus_is_handled_without_panic() {
    let mut slab = JsonSlab::new();
    // Inputs that must be *rejected* (Err, not panic/hang/over-read).
    let must_reject: &[&[u8]] = &[
        b"",
        b" ",
        b"{",
        b"}",
        b"[",
        b"]",
        b"\"",
        b"\"abc",
        b"\"abc\\",
        b"\"\\q\"",
        b"\"\\u12\"",
        b"\"\\u123",
        b"\"\\uzzzz\"",
        b"tru",
        b"truex",
        b"nul",
        b"-",
        b"+1",
        b"1e",
        b".5e",
        b"--1",
        b"0x10",
        b"{\"a\"}",
        b"{\"a\":}",
        b"{:1}",
        b"{1:2}",
        b"{\"a\":1,}",
        b"[1,]",
        b"[,1]",
        b"[1 2]",
        b"[1]]",
        b"{\"a\":1}}",
        b"null null",
        b"\xff",
        b"\"\xff\"",
        b"\"a\xc0\xafb\"",
        b"{\"\xf0\x28\x8c\x28\":1}",
    ];
    for input in must_reject {
        assert!(slab.parse(input).is_err(), "slab accepted adversarial input {input:?}");
        if let Ok(text) = std::str::from_utf8(input) {
            assert!(JsonValue::parse(text).is_err(), "DOM accepted adversarial input {text:?}");
        }
    }
    // Nesting at the depth bound parses; one level beyond is rejected
    // (by the explicit bound — not a stack overflow).  The innermost
    // value sits at depth N-1 for N brackets and the guard trips at
    // depth > MAX_DEPTH, so MAX_DEPTH+1 brackets is the last accepted.
    let at_limit = format!("{}{}", "[".repeat(MAX_DEPTH + 1), "]".repeat(MAX_DEPTH + 1));
    assert!(slab.parse(at_limit.as_bytes()).is_ok());
    assert!(JsonValue::parse(&at_limit).is_ok());
    let beyond = format!("{}{}", "[".repeat(MAX_DEPTH + 2), "]".repeat(MAX_DEPTH + 2));
    assert!(slab.parse(beyond.as_bytes()).is_err());
    assert!(JsonValue::parse(&beyond).is_err());
    // Unclosed pathological nesting (the classic parser-killer) errors
    // out at the depth bound instead of recursing to a crash.
    let unclosed = "[".repeat(100_000);
    assert!(slab.parse(unclosed.as_bytes()).is_err());
    assert!(JsonValue::parse(&unclosed).is_err());
    let mixed = "{\"k\":[".repeat(50_000);
    assert!(slab.parse(mixed.as_bytes()).is_err());
    assert!(JsonValue::parse(&mixed).is_err());
    // Huge numbers saturate to f64 infinity (std's parse semantics) in
    // *both* parsers rather than erroring or hanging.
    for huge in ["1e309", "-1e309", &"9".repeat(400)] {
        let dom = JsonValue::parse(huge).unwrap();
        let arena = slab.parse(huge.as_bytes()).unwrap().to_value();
        assert_eq!(dom, arena, "huge-number verdicts diverged for {huge}");
    }
    // Lone surrogates decode to U+FFFD identically in both parsers.
    let surrogate = "\"\\ud800 and \\udfff\"";
    assert_eq!(
        JsonValue::parse(surrogate).unwrap(),
        slab.parse(surrogate.as_bytes()).unwrap().to_value()
    );
}
