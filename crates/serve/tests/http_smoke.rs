//! In-process HTTP smoke test: boot the full serving stack (engine +
//! registry + frontend) on an ephemeral port, drive a session through
//! create → next → feedback to completion, hot-swap the snapshot
//! mid-run, and shut down cleanly.  The CI workflow repeats this dance
//! against the release `irs serve` binary; this test keeps the protocol
//! pinned inside `cargo test`.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use irs_core::{Irn, IrnConfig, NeuralTrainConfig};
use irs_data::split::{split_dataset, SplitConfig};
use irs_data::synth::{generate, SynthConfig};
use irs_serve::{
    BatchPolicy, Engine, HttpServer, IrnArchitecture, JsonValue, ServerConfig, SnapshotLoader,
    SnapshotRegistry,
};

/// One HTTP/1.1 request against `addr`; returns (status, parsed body).
fn request(addr: std::net::SocketAddr, method: &str, path: &str, body: &str) -> (u16, JsonValue) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: localhost\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
    .expect("write request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let status: u16 = response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("malformed response: {response:?}"));
    let payload = response.split("\r\n\r\n").nth(1).unwrap_or("");
    let json =
        JsonValue::parse(payload).unwrap_or_else(|e| panic!("bad JSON body {payload:?}: {e}"));
    (status, json)
}

#[test]
fn full_protocol_with_mid_run_hot_swap() {
    // Tiny world + model.
    let dataset = generate(&SynthConfig::tiny(0x77ee)).dataset;
    let split = split_dataset(&dataset, &SplitConfig::small());
    let train = NeuralTrainConfig { epochs: 1, ..Default::default() };
    let config = IrnConfig {
        dim: 8,
        user_dim: 4,
        layers: 1,
        heads: 2,
        max_len: 10,
        train,
        ..Default::default()
    };
    let model = Irn::fit(&split.train, &[], dataset.num_items, dataset.num_users, &config, None);

    // Save a snapshot file for the hot-swap round.
    let dir = std::env::temp_dir().join("irs_serve_http_smoke");
    std::fs::create_dir_all(&dir).unwrap();
    let snap_path = dir.join("retrained.irsp");
    model.save(std::fs::File::create(&snap_path).unwrap()).unwrap();

    let arch = IrnArchitecture {
        num_items: dataset.num_items,
        num_users: dataset.num_users,
        config: config.clone(),
    };
    let initial = arch.load_snapshot(snap_path.to_str().unwrap()).unwrap();
    let registry = Arc::new(SnapshotRegistry::new(initial));
    let engine = Arc::new(Engine::start(
        registry.clone(),
        BatchPolicy {
            max_batch: 8,
            max_wait: Duration::from_micros(200),
            workers: 2,
            queue_capacity: 64,
        },
    ));
    let loader: SnapshotLoader = {
        let arch = arch.clone();
        Arc::new(move |path: &str| arch.load_snapshot(path))
    };
    let server = HttpServer::bind(
        "127.0.0.1:0",
        engine.clone(),
        Some(loader),
        ServerConfig { max_len: 6, patience: 2, session_shards: 4, ..Default::default() },
    )
    .expect("bind");
    let addr = server.local_addr().unwrap();
    let server_thread = std::thread::spawn(move || server.run());

    // Health.
    let (status, health) = request(addr, "GET", "/healthz", "");
    assert_eq!(status, 200);
    assert_eq!(health.get("ok").and_then(JsonValue::as_bool), Some(true));
    assert_eq!(health.get("version").and_then(JsonValue::as_usize), Some(1));

    // Create a session.
    let tc = &split.test[0];
    let history: Vec<String> = tc.history.iter().map(|i| i.to_string()).collect();
    let objective = (tc.history.last().unwrap() + 1) % dataset.num_items;
    let body = format!(
        "{{\"user\": {}, \"history\": [{}], \"objective\": {objective}}}",
        tc.user,
        history.join(",")
    );
    let (status, created) = request(addr, "POST", "/v1/session", &body);
    assert_eq!(status, 200, "create failed: {created}");
    let sid = created.get("session_id").and_then(JsonValue::as_usize).expect("session id");

    // Drive the session: next → accept, swapping the snapshot after the
    // first step.  The protocol must keep working across the swap.
    let mut accepted = 0usize;
    let mut done = false;
    let mut swapped = false;
    while !done {
        let (status, next) = request(addr, "POST", &format!("/v1/session/{sid}/next"), "");
        assert_eq!(status, 200, "next failed: {next}");
        if next.get("done").and_then(JsonValue::as_bool) == Some(true) {
            break;
        }
        let item = next.get("item").and_then(JsonValue::as_usize).expect("item");
        assert!(item < dataset.num_items, "item {item} outside catalogue");
        let (status, fb) = request(
            addr,
            "POST",
            &format!("/v1/session/{sid}/feedback"),
            &format!("{{\"item\": {item}, \"accepted\": true}}"),
        );
        assert_eq!(status, 200, "feedback failed: {fb}");
        accepted += 1;
        done = fb.get("done").and_then(JsonValue::as_bool).unwrap();
        if !swapped {
            // Mid-run hot-swap: version bumps, serving continues.
            let (status, swap) = request(
                addr,
                "POST",
                "/v1/admin/swap",
                &format!("{{\"path\": {}}}", JsonValue::from(snap_path.to_str().unwrap())),
            );
            assert_eq!(status, 200, "swap failed: {swap}");
            assert_eq!(swap.get("version").and_then(JsonValue::as_usize), Some(2));
            swapped = true;
        }
        assert!(accepted <= 6, "session exceeded its max_len budget");
    }
    assert!(accepted > 0, "session never accepted an item");
    assert!(swapped, "hot-swap round never ran");

    // Stats reflect the traffic and the swap.
    let (status, stats) = request(addr, "GET", "/v1/stats", "");
    assert_eq!(status, 200);
    assert!(stats.get("requests").and_then(JsonValue::as_usize).unwrap() >= accepted);
    assert_eq!(stats.get("snapshot_version").and_then(JsonValue::as_usize), Some(2));
    assert_eq!(stats.get("sessions").and_then(JsonValue::as_usize), Some(1));

    // Error paths: unknown session, malformed JSON, bad swap path.
    let (status, _) = request(addr, "POST", "/v1/session/99999/next", "");
    assert_eq!(status, 404);
    let (status, _) = request(addr, "POST", "/v1/session", "{not json");
    assert_eq!(status, 400);
    let (status, _) = request(addr, "POST", "/v1/admin/swap", "{\"path\": \"/no/such/file\"}");
    assert_eq!(status, 400);
    // Out-of-catalogue feedback is rejected at the door (it would
    // otherwise enter the virtual path and panic an embedding lookup on
    // the next proposal).
    let (status, _) = request(
        addr,
        "POST",
        &format!("/v1/session/{sid}/feedback"),
        &format!("{{\"item\": {}, \"accepted\": false}}", dataset.num_items + 3),
    );
    assert_eq!(status, 400);
    // Wrong verb on a known route is 405; a typo'd route is 404.
    let (status, _) = request(addr, "DELETE", "/healthz", "");
    assert_eq!(status, 405);
    let (status, _) = request(addr, "POST", "/v1/bogus", "");
    assert_eq!(status, 404);
    // Out-of-catalogue objective is rejected at the door.
    let (status, _) = request(
        addr,
        "POST",
        "/v1/session",
        &format!("{{\"user\": 0, \"history\": [], \"objective\": {}}}", dataset.num_items + 7),
    );
    assert_eq!(status, 400);

    // Delete the session and shut down cleanly.
    let (status, outcome) = request(addr, "DELETE", &format!("/v1/session/{sid}"), "");
    assert_eq!(status, 200);
    assert_eq!(
        outcome.get("accepted").and_then(JsonValue::as_arr).map(<[JsonValue]>::len),
        Some(accepted)
    );
    let (status, bye) = request(addr, "POST", "/v1/admin/shutdown", "");
    assert_eq!(status, 200);
    assert_eq!(bye.get("ok").and_then(JsonValue::as_bool), Some(true));
    server_thread.join().expect("server thread").expect("server run");
    engine.shutdown();
}

#[test]
fn idle_sessions_are_evicted_by_the_ttl_sweeper() {
    let dataset = generate(&SynthConfig::tiny(0x88ff)).dataset;
    let config = IrnConfig {
        dim: 8,
        user_dim: 4,
        layers: 1,
        heads: 2,
        max_len: 10,
        train: NeuralTrainConfig { epochs: 0, ..Default::default() },
        ..Default::default()
    };
    let model = Irn::fit(&[], &[], dataset.num_items, dataset.num_users, &config, None);
    let dir = std::env::temp_dir().join("irs_serve_ttl_test");
    std::fs::create_dir_all(&dir).unwrap();
    let snap_path = dir.join("model.irsp");
    model.save(std::fs::File::create(&snap_path).unwrap()).unwrap();
    let arch = IrnArchitecture {
        num_items: dataset.num_items,
        num_users: dataset.num_users,
        config: config.clone(),
    };
    let initial = arch.load_snapshot(snap_path.to_str().unwrap()).unwrap();
    let registry = Arc::new(SnapshotRegistry::new(initial));
    let engine = Arc::new(Engine::start(
        registry,
        BatchPolicy {
            max_batch: 4,
            max_wait: Duration::from_micros(200),
            workers: 1,
            queue_capacity: 16,
        },
    ));
    let server = HttpServer::bind(
        "127.0.0.1:0",
        engine.clone(),
        None,
        ServerConfig {
            // Generous TTL: the assert below (live before idling) must
            // not flake when this thread is descheduled on a busy 1-core
            // runner between session creation and the check.
            session_ttl: Some(Duration::from_secs(1)),
            session_shards: 2,
            ..Default::default()
        },
    )
    .expect("bind");
    let addr = server.local_addr().unwrap();
    let handle = server.handle().unwrap();
    let server_thread = std::thread::spawn(move || server.run());

    let (status, created) =
        request(addr, "POST", "/v1/session", "{\"user\": 0, \"history\": [0], \"objective\": 1}");
    assert_eq!(status, 200, "create failed: {created}");
    let sid = created.get("session_id").and_then(JsonValue::as_usize).expect("session id");
    assert_eq!(handle.live_sessions(), 1);

    // Abandon the session for several TTLs + sweeper intervals.
    std::thread::sleep(Duration::from_millis(3000));
    let (status, _) = request(addr, "GET", &format!("/v1/session/{sid}"), "");
    assert_eq!(status, 404, "abandoned session must be evicted");
    assert_eq!(handle.live_sessions(), 0);
    assert!(handle.evicted_sessions() >= 1);
    let (status, stats) = request(addr, "GET", "/v1/stats", "");
    assert_eq!(status, 200);
    assert!(stats.get("evicted_sessions").and_then(JsonValue::as_usize).unwrap() >= 1);

    let (status, _) = request(addr, "POST", "/v1/admin/shutdown", "");
    assert_eq!(status, 200);
    server_thread.join().expect("server thread").expect("server run");
    engine.shutdown();
}
