//! Allocation-counter guard for serving a real (non-IRN) recommender
//! family: `Vanilla<Pop>` — the popularity baseline behind the Vanilla
//! framework — served end to end through the keep-alive request path.
//!
//! `alloc_steady.rs` pins the transport/scheduler plumbing with a stub
//! model; this file pins the *model-side* contract for a trained family:
//! `Vanilla::next_items_into`'s single-query scratch path plus `Pop`'s
//! `score_into` must keep the steady-state request path off the
//! allocator entirely.  `Pop` has no incremental state, so this also
//! covers the cache-enabled server's no-cache branch (a session opted
//! into caching whose model answers `new_context_cache() == None` rides
//! the batched cold path with zero overhead).
//!
//! Same harness rules as `alloc_steady.rs`: one test per file (nothing
//! else may allocate in-process), prebuilt request bytes, fixed read
//! buffer, bytewise response compare.

// A `GlobalAlloc` impl is necessarily unsafe; it only delegates to
// `System`.
#![allow(unsafe_code)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use irs_baselines::Pop;
use irs_core::Vanilla;
use irs_serve::{
    BatchPolicy, Engine, HttpServer, JsonValue, ModelSnapshot, ServerConfig, SnapshotRegistry,
};

// ------------------------------------------------ counting allocator

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

struct CountingAllocator;

// SAFETY: delegates directly to `System`; the counter is a side effect.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

// ------------------------------------------------------------- test

/// Send `req` and read exactly `expected.len()` response bytes into
/// `buf`, asserting they equal `expected`.  Touches no allocator.
fn roundtrip_exact(conn: &mut TcpStream, req: &[u8], expected: &[u8], buf: &mut [u8]) {
    conn.write_all(req).expect("write request");
    conn.read_exact(&mut buf[..expected.len()]).expect("read response");
    assert!(&buf[..expected.len()] == expected, "response changed between warm-up and measurement");
}

/// Send `req` once and return the full response bytes (allocates; used
/// outside measurement windows to learn the expected response).
fn roundtrip_learn(conn: &mut TcpStream, req: &[u8]) -> Vec<u8> {
    conn.write_all(req).expect("write request");
    let mut buf = vec![0u8; 4096];
    let mut len = 0usize;
    loop {
        let n = conn.read(&mut buf[len..]).expect("read response");
        assert!(n > 0, "connection closed");
        len += n;
        if let Some(pos) = buf[..len].windows(4).position(|w| w == b"\r\n\r\n") {
            let head = std::str::from_utf8(&buf[..pos + 4]).unwrap();
            let content_length: usize = head
                .lines()
                .find_map(|l| {
                    let (k, v) = l.split_once(':')?;
                    k.trim().eq_ignore_ascii_case("content-length").then(|| v.trim())
                })
                .and_then(|v| v.parse().ok())
                .expect("Content-Length");
            let total = pos + 4 + content_length;
            while len < total {
                let n = conn.read(&mut buf[len..]).expect("read body");
                assert!(n > 0, "connection closed mid-body");
                len += n;
            }
            assert_eq!(len, total, "unexpected trailing bytes");
            buf.truncate(total);
            return buf;
        }
    }
}

#[test]
fn steady_state_vanilla_pop_requests_touch_no_allocator() {
    const WARMUP: usize = 100;
    const WINDOW: usize = 200;

    // Popularity counts over a tiny catalogue; `Vanilla` proposes the
    // top unseen item, so repeated `next` without feedback is stable.
    let model = Vanilla::new(Pop::from_counts(&[3, 9, 4, 1, 7, 2, 8, 5]));
    let registry = Arc::new(SnapshotRegistry::new(ModelSnapshot::in_memory_with_catalogue(
        "vanilla-pop",
        Box::new(model),
        8,
    )));
    let engine = Arc::new(Engine::start(
        registry,
        BatchPolicy {
            max_batch: 4,
            max_wait: Duration::from_micros(100),
            workers: 1,
            queue_capacity: 64,
        },
    ));
    let server = HttpServer::bind(
        "127.0.0.1:0",
        engine.clone(),
        None,
        ServerConfig { http_workers: 2, ..Default::default() },
    )
    .expect("bind");
    let addr = server.local_addr().unwrap();
    let server_thread = std::thread::spawn(move || server.run());

    let mut conn = TcpStream::connect(addr).expect("connect");
    conn.set_nodelay(true).unwrap();
    conn.set_read_timeout(Some(Duration::from_secs(30))).unwrap();

    let body = r#"{"user": 1, "history": [2], "objective": 3}"#;
    let create = format!(
        "POST /v1/session HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n{}",
        body.len(),
        body
    )
    .into_bytes();
    let created = roundtrip_learn(&mut conn, &create);
    let created_text = String::from_utf8_lossy(&created);
    assert!(created_text.starts_with("HTTP/1.1 200"), "create failed: {created_text}");
    let body = &created_text[created_text.find("\r\n\r\n").unwrap() + 4..];
    let sid = JsonValue::parse(body)
        .unwrap()
        .get("session_id")
        .and_then(JsonValue::as_usize)
        .expect("session id");

    let next_req =
        format!("POST /v1/session/{sid}/next HTTP/1.1\r\nHost: x\r\nContent-Length: 0\r\n\r\n")
            .into_bytes();
    let next_expected = roundtrip_learn(&mut conn, &next_req);
    // Item 1 is the most popular id outside history [2]; the proposal
    // must actually come from the popularity table, not a stub.
    assert!(
        String::from_utf8_lossy(&next_expected).contains("\"item\":1"),
        "Vanilla(Pop) must propose the top unseen item"
    );
    let mut buf = vec![0u8; 4096];

    for _ in 0..WARMUP {
        roundtrip_exact(&mut conn, &next_req, &next_expected, &mut buf);
    }

    let before = ALLOCATIONS.load(Ordering::SeqCst);
    for _ in 0..WINDOW {
        roundtrip_exact(&mut conn, &next_req, &next_expected, &mut buf);
    }
    let delta = ALLOCATIONS.load(Ordering::SeqCst) - before;
    assert_eq!(
        delta, 0,
        "steady-state Vanilla(Pop) `next` path allocated {delta} times over {WINDOW} requests"
    );

    let bye = roundtrip_learn(
        &mut conn,
        b"POST /v1/admin/shutdown HTTP/1.1\r\nHost: x\r\nContent-Length: 0\r\n\r\n",
    );
    assert!(String::from_utf8_lossy(&bye).starts_with("HTTP/1.1 200"));
    server_thread.join().expect("server thread").expect("server run");
    engine.shutdown();
}
