//! Concurrency stress tests for the serving-v2 connection layer.
//!
//! Four pins, in rough order of subtlety:
//!
//! * interleaved keep-alive clients get *bitwise-identical* session
//!   outcomes to the scalar single-threaded reference driver — arrival
//!   timing, micro-batch composition and connection multiplexing must
//!   never leak into the recommendations;
//! * a thousand open connections cost a thousand parked sockets, not a
//!   thousand threads: the process thread count stays at the pool size
//!   (Linux-gated via `/proc/self/status`);
//! * graceful shutdown drains: clients hammering the server through a
//!   shutdown see complete responses or a clean close at a response
//!   boundary, never a torn response, and `run()` returns `Ok`;
//! * the TTL sweeper never evicts a session whose request is in flight
//!   (the pin taken with the query read keeps the give-up record safe
//!   even when scoring outlasts several sweep intervals).

use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, OnceLock};
use std::thread::JoinHandle;
use std::time::Duration;

use irs_core::{
    run_interactive_session, InfluenceRecommender, Irn, IrnConfig, NeuralTrainConfig, UserModel,
};
use irs_data::split::{split_dataset, SplitConfig};
use irs_data::synth::{generate, SynthConfig};
use irs_data::ItemId;
use irs_serve::{
    BatchPolicy, Engine, HttpServer, JsonValue, ModelSnapshot, ServerConfig, ServerHandle,
    SnapshotRegistry,
};

// ---------------------------------------------------------------- helpers

struct TestServer {
    addr: SocketAddr,
    handle: ServerHandle,
    engine: Arc<Engine>,
    thread: JoinHandle<std::io::Result<()>>,
}

fn boot(
    model: Box<dyn InfluenceRecommender + Send + Sync>,
    num_items: usize,
    config: ServerConfig,
) -> TestServer {
    let registry = Arc::new(SnapshotRegistry::new(ModelSnapshot::in_memory_with_catalogue(
        "stress", model, num_items,
    )));
    let engine = Arc::new(Engine::start(
        registry,
        BatchPolicy {
            max_batch: 8,
            max_wait: Duration::from_micros(200),
            workers: 2,
            queue_capacity: 256,
        },
    ));
    let server = HttpServer::bind("127.0.0.1:0", engine.clone(), None, config).expect("bind");
    let addr = server.local_addr().unwrap();
    let handle = server.handle().unwrap();
    let thread = std::thread::spawn(move || server.run());
    TestServer { addr, handle, engine, thread }
}

fn connect(addr: SocketAddr) -> TcpStream {
    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    stream
}

/// Read one Content-Length-framed response; leftover pipelined bytes
/// stay in `carry`.  `Err(())` means the peer closed cleanly *at a
/// response boundary* before sending anything.
fn read_framed(stream: &mut TcpStream, carry: &mut Vec<u8>) -> Result<(u16, Vec<u8>), ()> {
    let mut chunk = [0u8; 2048];
    let head_end = loop {
        if let Some(pos) = carry.windows(4).position(|w| w == b"\r\n\r\n") {
            break pos + 4;
        }
        let n = match stream.read(&mut chunk) {
            Ok(n) => n,
            Err(e) if e.kind() == ErrorKind::ConnectionReset => 0,
            Err(e) => panic!("read error: {e}"),
        };
        if n == 0 {
            assert!(carry.is_empty(), "peer closed mid-response: {carry:?}");
            return Err(());
        }
        carry.extend_from_slice(&chunk[..n]);
    };
    let head = std::str::from_utf8(&carry[..head_end]).expect("ASCII head").to_string();
    let status: u16 =
        head.split_whitespace().nth(1).and_then(|s| s.parse().ok()).expect("status line");
    let content_length: usize = head
        .lines()
        .find_map(|line| {
            let (name, value) = line.split_once(':')?;
            name.trim().eq_ignore_ascii_case("content-length").then(|| value.trim())
        })
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("response without Content-Length: {head:?}"));
    while carry.len() < head_end + content_length {
        let n = stream.read(&mut chunk).expect("read body");
        assert!(n > 0, "peer closed mid-body");
        carry.extend_from_slice(&chunk[..n]);
    }
    let body = carry[head_end..head_end + content_length].to_vec();
    carry.drain(..head_end + content_length);
    Ok((status, body))
}

/// One keep-alive request; panics on close (for flows that own the
/// connection and expect it to live).
fn request(
    stream: &mut TcpStream,
    carry: &mut Vec<u8>,
    method: &str,
    path: &str,
    body: &str,
) -> (u16, JsonValue) {
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .expect("write request");
    let (status, body) = read_framed(stream, carry).expect("keep-alive connection closed");
    let json = JsonValue::parse(std::str::from_utf8(&body).expect("UTF-8 body"))
        .unwrap_or_else(|e| panic!("bad JSON body: {e}"));
    (status, json)
}

// ------------------------------------------- bitwise vs scalar reference

struct World {
    /// Serialised trained weights (each test reloads its own copy so
    /// served and reference models never share a PIM cache).
    weights: Vec<u8>,
    config: IrnConfig,
    reference: Irn,
    num_items: usize,
    num_users: usize,
    cases: Vec<(usize, Vec<ItemId>, ItemId)>,
}

fn world() -> &'static World {
    static WORLD: OnceLock<World> = OnceLock::new();
    WORLD.get_or_init(|| {
        let dataset = generate(&SynthConfig::tiny(0x57e5)).dataset;
        let split = split_dataset(&dataset, &SplitConfig::small());
        let config = IrnConfig {
            dim: 8,
            user_dim: 4,
            layers: 1,
            heads: 2,
            max_len: 10,
            train: NeuralTrainConfig { epochs: 1, ..Default::default() },
            ..Default::default()
        };
        let model =
            Irn::fit(&split.train, &[], dataset.num_items, dataset.num_users, &config, None);
        let mut weights = Vec::new();
        model.save(&mut weights).unwrap();
        let reference =
            Irn::load(&weights[..], dataset.num_items, dataset.num_users, &config).unwrap();
        let cases = split
            .test
            .iter()
            .take(6)
            .enumerate()
            .map(|(i, tc)| {
                let objective =
                    (tc.history.last().copied().unwrap_or(0) + 1 + i) % dataset.num_items;
                (tc.user, tc.history.clone(), objective)
            })
            .collect();
        World {
            weights,
            config,
            reference,
            num_items: dataset.num_items,
            num_users: dataset.num_users,
            cases,
        }
    })
}

/// Passive user for the scalar reference driver: accepts everything,
/// mirroring the HTTP clients below.
struct Agreeable;

impl UserModel for Agreeable {
    fn accepts(&mut self, _user: usize, _current: &[ItemId], _item: ItemId) -> bool {
        true
    }
}

#[test]
fn interleaved_keepalive_clients_match_the_scalar_reference_bitwise() {
    const MAX_LEN: usize = 5;
    const PATIENCE: usize = 2;
    const ROUNDS: usize = 3;
    let w = world();
    let served =
        Irn::load(&w.weights[..], w.num_items, w.num_users, &w.config).expect("reload weights");
    let server = boot(
        Box::new(served),
        w.num_items,
        ServerConfig { max_len: MAX_LEN, patience: PATIENCE, ..Default::default() },
    );

    // One keep-alive client thread per case, each driving ROUNDS full
    // sessions over its single connection, all interleaved.
    let served_paths: Vec<Vec<Vec<ItemId>>> = std::thread::scope(|scope| {
        let handles: Vec<_> = w
            .cases
            .iter()
            .map(|(user, history, objective)| {
                let addr = server.addr;
                scope.spawn(move || {
                    let mut conn = connect(addr);
                    let mut carry = Vec::new();
                    let mut rounds = Vec::new();
                    for _ in 0..ROUNDS {
                        let hist: Vec<String> = history.iter().map(ToString::to_string).collect();
                        let body = format!(
                            "{{\"user\": {user}, \"history\": [{}], \"objective\": {objective}}}",
                            hist.join(",")
                        );
                        let (status, created) =
                            request(&mut conn, &mut carry, "POST", "/v1/session", &body);
                        assert_eq!(status, 200, "create failed: {created}");
                        let sid = created
                            .get("session_id")
                            .and_then(JsonValue::as_usize)
                            .expect("session id");
                        loop {
                            let (status, next) = request(
                                &mut conn,
                                &mut carry,
                                "POST",
                                &format!("/v1/session/{sid}/next"),
                                "",
                            );
                            assert_eq!(status, 200, "next failed: {next}");
                            if next.get("done").and_then(JsonValue::as_bool) == Some(true) {
                                break;
                            }
                            let item =
                                next.get("item").and_then(JsonValue::as_usize).expect("item");
                            let (status, fb) = request(
                                &mut conn,
                                &mut carry,
                                "POST",
                                &format!("/v1/session/{sid}/feedback"),
                                &format!("{{\"item\": {item}, \"accepted\": true}}"),
                            );
                            assert_eq!(status, 200, "feedback failed: {fb}");
                            if fb.get("done").and_then(JsonValue::as_bool) == Some(true) {
                                break;
                            }
                        }
                        let (status, outcome) = request(
                            &mut conn,
                            &mut carry,
                            "DELETE",
                            &format!("/v1/session/{sid}"),
                            "",
                        );
                        assert_eq!(status, 200, "delete failed: {outcome}");
                        let accepted = outcome
                            .get("accepted")
                            .and_then(JsonValue::as_usize_arr)
                            .expect("accepted array");
                        rounds.push(accepted);
                    }
                    rounds
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client thread")).collect()
    });

    // Scalar reference: same sessions, single-threaded, no HTTP, no
    // batching.  Item ids are integers, so equality is bitwise.
    for ((user, history, objective), rounds) in w.cases.iter().zip(&served_paths) {
        let scalar = run_interactive_session(
            &w.reference,
            &mut Agreeable,
            *user,
            history,
            *objective,
            MAX_LEN,
            PATIENCE,
        );
        for (round, accepted) in rounds.iter().enumerate() {
            assert_eq!(
                accepted, &scalar.accepted,
                "user {user} round {round}: served path diverged from the scalar reference"
            );
        }
    }

    let (status, _) =
        request(&mut connect(server.addr), &mut Vec::new(), "POST", "/v1/admin/shutdown", "");
    assert_eq!(status, 200);
    server.thread.join().expect("server thread").expect("server run");
    server.engine.shutdown();
}

// ------------------------------------------------- bounded thread count

/// Cheap deterministic stub for the protocol-only stress tests.
struct StubModel;

impl InfluenceRecommender for StubModel {
    fn name(&self) -> String {
        "stub".to_string()
    }

    fn next_item(
        &self,
        _user: usize,
        _history: &[ItemId],
        objective: ItemId,
        _path: &[ItemId],
    ) -> Option<ItemId> {
        Some(objective)
    }
}

#[cfg(target_os = "linux")]
fn process_threads() -> usize {
    let status = std::fs::read_to_string("/proc/self/status").expect("/proc/self/status");
    status
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .and_then(|v| v.trim().parse().ok())
        .expect("Threads: line")
}

#[test]
fn a_thousand_open_connections_do_not_mean_a_thousand_threads() {
    let server = boot(Box::new(StubModel), 8, ServerConfig::default());
    // Warm one request so every lazily spawned server thread exists.
    let mut first = connect(server.addr);
    let mut carry = Vec::new();
    let (status, _) = request(&mut first, &mut carry, "GET", "/healthz", "");
    assert_eq!(status, 200);
    #[cfg(target_os = "linux")]
    let baseline = process_threads();

    // 1000 keep-alive connections, each held open after one answered
    // request; plus 1000 live sessions so the store is at scale too.
    let mut conns = Vec::with_capacity(1000);
    for i in 0..1000 {
        let mut conn = connect(server.addr);
        let mut carry = Vec::new();
        let (status, _) = request(
            &mut conn,
            &mut carry,
            "POST",
            "/v1/session",
            &format!("{{\"user\": {i}, \"history\": [], \"objective\": 1}}"),
        );
        assert_eq!(status, 200, "create #{i} failed");
        conns.push(conn);
    }
    assert!(
        server.handle.open_connections() >= 1000,
        "expected >=1000 open connections, saw {}",
        server.handle.open_connections()
    );
    assert_eq!(server.handle.live_sessions(), 1000);

    // The pool is the pool: no thread sprouted per connection.
    #[cfg(target_os = "linux")]
    {
        let now = process_threads();
        assert!(
            now <= baseline + 8,
            "thread count grew from {baseline} to {now} with 1000 open connections"
        );
        assert!(
            server.handle.http_workers() < 64,
            "worker pool unexpectedly large: {}",
            server.handle.http_workers()
        );
    }

    // The connections still work after the census.
    let mut carry = Vec::new();
    let (status, _) = request(&mut conns[500], &mut carry, "GET", "/healthz", "");
    assert_eq!(status, 200, "parked connection went stale");

    drop(conns);
    let (status, _) = request(&mut first, &mut carry, "POST", "/v1/admin/shutdown", "");
    assert_eq!(status, 200);
    server.thread.join().expect("server thread").expect("server run");
    server.engine.shutdown();
}

// --------------------------------------------------- graceful shutdown

#[test]
fn graceful_shutdown_never_tears_a_response() {
    let server = boot(Box::new(StubModel), 8, ServerConfig::default());
    let addr = server.addr;
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));

    let clients: Vec<_> = (0..6)
        .map(|_| {
            let stop = stop.clone();
            std::thread::spawn(move || {
                let mut served = 0usize;
                'reconnect: while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    let mut conn = connect(addr);
                    let mut carry = Vec::new();
                    loop {
                        if conn.write_all(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n").is_err() {
                            continue 'reconnect;
                        }
                        // read_framed panics on a *torn* response; a clean
                        // close at a boundary is Err(()) and ends the client.
                        match read_framed(&mut conn, &mut carry) {
                            Ok((status, _)) => {
                                assert_eq!(status, 200);
                                served += 1;
                            }
                            Err(()) => break 'reconnect,
                        }
                        if stop.load(std::sync::atomic::Ordering::Relaxed) {
                            break 'reconnect;
                        }
                    }
                }
                served
            })
        })
        .collect();

    std::thread::sleep(Duration::from_millis(150));
    let mut conn = connect(addr);
    let mut carry = Vec::new();
    let (status, _) = request(&mut conn, &mut carry, "POST", "/v1/admin/shutdown", "");
    assert_eq!(status, 200, "shutdown request must itself be answered");
    stop.store(true, std::sync::atomic::Ordering::Relaxed);

    let mut total = 0usize;
    for c in clients {
        total += c.join().expect("client must exit cleanly (no torn responses)");
    }
    assert!(total > 0, "clients never got a response before shutdown");
    server.thread.join().expect("server thread").expect("run() must return Ok after drain");
    server.engine.shutdown();
}

// ------------------------------------------- TTL sweeper vs in-flight

/// A model whose scoring outlasts many TTL sweep intervals, and which
/// always gives up — forcing the handler's post-round-trip
/// `record_give_up` write, the exact access the session pin protects.
struct SlowGiveUp;

impl InfluenceRecommender for SlowGiveUp {
    fn name(&self) -> String {
        "slow-give-up".to_string()
    }

    fn next_item(
        &self,
        _user: usize,
        _history: &[ItemId],
        _objective: ItemId,
        _path: &[ItemId],
    ) -> Option<ItemId> {
        std::thread::sleep(Duration::from_millis(1000));
        None
    }
}

#[test]
fn ttl_sweeper_never_evicts_a_session_with_a_request_in_flight() {
    // TTL 250 ms, sweeps every ~62 ms, scoring takes 1000 ms: without
    // the request pin the session would be swept several times over
    // while its own request is in flight, and the give-up record would
    // hit a missing session.
    let server = boot(
        Box::new(SlowGiveUp),
        8,
        ServerConfig { session_ttl: Some(Duration::from_millis(250)), ..Default::default() },
    );
    let mut conn = connect(server.addr);
    let mut carry = Vec::new();
    let (status, created) = request(
        &mut conn,
        &mut carry,
        "POST",
        "/v1/session",
        "{\"user\": 0, \"history\": [2], \"objective\": 1}",
    );
    assert_eq!(status, 200, "create failed: {created}");
    let sid = created.get("session_id").and_then(JsonValue::as_usize).expect("session id");

    let (status, next) =
        request(&mut conn, &mut carry, "POST", &format!("/v1/session/{sid}/next"), "");
    assert_eq!(status, 200, "in-flight request failed: {next}");
    assert_eq!(next.get("done").and_then(JsonValue::as_bool), Some(true));

    // The give-up landed in a session that was never evicted: it is
    // still readable (freshly touched by the record) and reports done.
    let (status, state) = request(&mut conn, &mut carry, "GET", &format!("/v1/session/{sid}"), "");
    assert_eq!(status, 200, "session was evicted while its request was in flight");
    assert_eq!(state.get("done").and_then(JsonValue::as_bool), Some(true));

    // Left alone, the same session *is* swept — the pin protects
    // in-flight requests, it does not disable the TTL.
    std::thread::sleep(Duration::from_millis(1200));
    let (status, _) = request(&mut conn, &mut carry, "GET", &format!("/v1/session/{sid}"), "");
    assert_eq!(status, 404, "abandoned session must still age out");

    let (status, _) = request(&mut conn, &mut carry, "POST", "/v1/admin/shutdown", "");
    assert_eq!(status, 200);
    server.thread.join().expect("server thread").expect("server run");
    server.engine.shutdown();
}
