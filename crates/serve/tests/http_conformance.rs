//! HTTP/1.1 protocol conformance tests against a live listener.
//!
//! `http_smoke.rs` proves the *API* works over well-formed, one-shot
//! connections; this suite attacks the *connection layer* rebuilt for
//! serving v2: pipelining, keep-alive semantics across HTTP versions and
//! `Connection` headers, requests trickled in byte-sized TCP writes,
//! oversized header/body rejection from the buffered prefix alone, the
//! always-present `Content-Length`, and the poller's idle timeout.
//!
//! A stub model stands in for the IRN — these tests exercise framing,
//! not scoring — so the whole suite boots servers in milliseconds.

use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use irs_core::InfluenceRecommender;
use irs_data::ItemId;
use irs_serve::{
    BatchPolicy, Engine, HttpServer, JsonValue, ModelSnapshot, ServerConfig, SnapshotRegistry,
};

const NUM_ITEMS: usize = 16;

/// Deterministic stand-in model: proposes items 1, 2, 3, … regardless of
/// the user, then the objective.
struct StubModel;

impl InfluenceRecommender for StubModel {
    fn name(&self) -> String {
        "stub".to_string()
    }

    fn next_item(
        &self,
        _user: usize,
        _history: &[ItemId],
        objective: ItemId,
        path: &[ItemId],
    ) -> Option<ItemId> {
        if path.len() + 1 < NUM_ITEMS {
            Some(path.len() + 1)
        } else {
            Some(objective)
        }
    }
}

struct TestServer {
    addr: SocketAddr,
    engine: Arc<Engine>,
    thread: JoinHandle<std::io::Result<()>>,
}

impl TestServer {
    fn boot(config: ServerConfig) -> TestServer {
        let registry = Arc::new(SnapshotRegistry::new(ModelSnapshot::in_memory_with_catalogue(
            "conformance",
            Box::new(StubModel),
            NUM_ITEMS,
        )));
        let engine = Arc::new(Engine::start(
            registry,
            BatchPolicy {
                max_batch: 4,
                max_wait: Duration::from_micros(100),
                workers: 1,
                queue_capacity: 64,
            },
        ));
        let server = HttpServer::bind("127.0.0.1:0", engine.clone(), None, config).expect("bind");
        let addr = server.local_addr().unwrap();
        let thread = std::thread::spawn(move || server.run());
        TestServer { addr, engine, thread }
    }

    fn connect(&self) -> TcpStream {
        let stream = TcpStream::connect(self.addr).expect("connect");
        stream.set_nodelay(true).unwrap();
        stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        stream
    }

    fn stop(self) {
        let mut conn = self.connect();
        conn.write_all(
            b"POST /v1/admin/shutdown HTTP/1.1\r\nContent-Length: 0\r\nConnection: close\r\n\r\n",
        )
        .expect("shutdown request");
        let (status, _, _) = read_response(&mut conn);
        assert_eq!(status, 200, "shutdown failed");
        self.thread.join().expect("server thread").expect("server run");
        self.engine.shutdown();
    }
}

/// Read exactly one response off a (possibly keep-alive, possibly
/// pipelined) socket: (status, raw head, body).  Asserts the mandatory
/// `Content-Length` is present and honoured — the framing every client
/// of this server depends on.  Bytes past the declared body (the next
/// pipelined response) stay in `carry` for the next call.
fn read_framed_response(stream: &mut TcpStream, carry: &mut Vec<u8>) -> (u16, String, Vec<u8>) {
    let mut chunk = [0u8; 2048];
    let head_end = loop {
        if let Some(pos) = carry.windows(4).position(|w| w == b"\r\n\r\n") {
            break pos + 4;
        }
        let n = stream.read(&mut chunk).expect("read response head");
        assert!(n > 0, "connection closed before a full response head; got {carry:?}");
        carry.extend_from_slice(&chunk[..n]);
    };
    let head = String::from_utf8(carry[..head_end].to_vec()).expect("ASCII head");
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("malformed status line in {head:?}"));
    let content_length: usize = head
        .lines()
        .find_map(|line| {
            let (name, value) = line.split_once(':')?;
            name.trim().eq_ignore_ascii_case("content-length").then(|| value.trim())
        })
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("response without Content-Length: {head:?}"));
    while carry.len() < head_end + content_length {
        let n = stream.read(&mut chunk).expect("read response body");
        assert!(n > 0, "connection closed mid-body");
        carry.extend_from_slice(&chunk[..n]);
    }
    let body = carry[head_end..head_end + content_length].to_vec();
    carry.drain(..head_end + content_length);
    (status, head, body)
}

/// One-shot wrapper for tests that read a single response per socket;
/// asserts nothing trails the declared body.
fn read_response(stream: &mut TcpStream) -> (u16, String, Vec<u8>) {
    let mut carry = Vec::new();
    let out = read_framed_response(stream, &mut carry);
    assert!(carry.is_empty(), "bytes past the declared body: {carry:?}");
    out
}

/// True if the peer has half/fully closed: a read returns 0 (or reset).
fn reads_eof(stream: &mut TcpStream) -> bool {
    let mut byte = [0u8; 1];
    match stream.read(&mut byte) {
        Ok(0) => true,
        Ok(_) => false,
        Err(e) if e.kind() == ErrorKind::ConnectionReset => true,
        Err(e) => panic!("unexpected read error while probing for EOF: {e}"),
    }
}

#[test]
fn pipelined_requests_are_answered_in_order_on_one_connection() {
    let server = TestServer::boot(ServerConfig::default());
    let mut conn = server.connect();
    // Three pipelined requests in a single TCP write; the middle one is
    // a 404 so ordering is observable in the statuses.
    conn.write_all(
        b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n\
          GET /v1/bogus HTTP/1.1\r\nHost: x\r\n\r\n\
          GET /v1/stats HTTP/1.1\r\nHost: x\r\n\r\n",
    )
    .expect("pipelined write");
    let mut carry = Vec::new();
    let (s1, _, b1) = read_framed_response(&mut conn, &mut carry);
    let (s2, _, _) = read_framed_response(&mut conn, &mut carry);
    let (s3, _, b3) = read_framed_response(&mut conn, &mut carry);
    assert_eq!((s1, s2, s3), (200, 404, 200), "pipelined responses out of order");
    assert!(JsonValue::parse(std::str::from_utf8(&b1).unwrap()).is_ok());
    assert!(JsonValue::parse(std::str::from_utf8(&b3).unwrap()).is_ok());
    assert!(carry.is_empty(), "bytes past the three declared bodies: {carry:?}");
    // The connection survived all three; a fourth request still works.
    conn.write_all(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
    let (s4, _, _) = read_framed_response(&mut conn, &mut carry);
    assert_eq!(s4, 200);
    server.stop();
}

#[test]
fn requests_trickled_byte_by_byte_still_parse() {
    let server = TestServer::boot(ServerConfig::default());
    let mut conn = server.connect();
    let body = "{\"user\": 3, \"history\": [1, 2], \"objective\": 5}";
    let request = format!(
        "POST /v1/session HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    // One byte per TCP segment, with pauses, so the server sees the
    // request in dozens of partial reads spanning parked/promoted turns.
    for byte in request.as_bytes() {
        conn.write_all(std::slice::from_ref(byte)).expect("trickle write");
        std::thread::sleep(Duration::from_micros(300));
    }
    let (status, _, body) = read_response(&mut conn);
    assert_eq!(status, 200, "trickled request failed: {:?}", String::from_utf8_lossy(&body));
    let parsed = JsonValue::parse(std::str::from_utf8(&body).unwrap()).unwrap();
    assert!(parsed.get("session_id").and_then(JsonValue::as_usize).is_some());
    server.stop();
}

#[test]
fn oversized_header_block_draws_431_without_unbounded_reads() {
    let server = TestServer::boot(ServerConfig::default());
    let mut conn = server.connect();
    // 20 KiB of header junk — past the 16 KiB cap, never completing the
    // head.  The server must answer from the buffered prefix alone.
    conn.write_all(b"GET /healthz HTTP/1.1\r\n").unwrap();
    let filler = format!("X-Filler: {}\r\n", "y".repeat(1000));
    for _ in 0..20 {
        if conn.write_all(filler.as_bytes()).is_err() {
            // The server may already have rejected and closed; fine.
            break;
        }
    }
    let (status, _, _) = read_response(&mut conn);
    assert_eq!(status, 431, "oversized header block not rejected");
    assert!(reads_eof(&mut conn), "connection must close after 431");
    server.stop();
}

#[test]
fn oversized_declared_body_draws_413_before_the_body_is_sent() {
    let server = TestServer::boot(ServerConfig::default());
    let mut conn = server.connect();
    // Declare a 2 MB body but send none of it: the 413 must come from
    // the Content-Length header, not from reading 2 MB.
    conn.write_all(b"POST /v1/session HTTP/1.1\r\nHost: x\r\nContent-Length: 2000000\r\n\r\n")
        .unwrap();
    let (status, _, _) = read_response(&mut conn);
    assert_eq!(status, 413, "oversized body declaration not rejected");
    assert!(reads_eof(&mut conn), "connection must close after 413");
    server.stop();
}

#[test]
fn connection_lifetime_follows_version_and_connection_header() {
    let server = TestServer::boot(ServerConfig::default());

    // HTTP/1.1 default: keep-alive — a second request on the same
    // socket answers.
    let mut conn = server.connect();
    conn.write_all(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
    let (status, _, _) = read_response(&mut conn);
    assert_eq!(status, 200);
    conn.write_all(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
    let (status, _, _) = read_response(&mut conn);
    assert_eq!(status, 200, "HTTP/1.1 connection closed without Connection: close");

    // HTTP/1.1 + `Connection: close`: EOF after the response.
    let mut conn = server.connect();
    conn.write_all(b"GET /healthz HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n").unwrap();
    let (status, _, _) = read_response(&mut conn);
    assert_eq!(status, 200);
    assert!(reads_eof(&mut conn), "Connection: close was not honoured");

    // HTTP/1.0 default: close.
    let mut conn = server.connect();
    conn.write_all(b"GET /healthz HTTP/1.0\r\nHost: x\r\n\r\n").unwrap();
    let (status, _, _) = read_response(&mut conn);
    assert_eq!(status, 200);
    assert!(reads_eof(&mut conn), "HTTP/1.0 must default to close");

    // HTTP/1.0 + `Connection: keep-alive`: stays open.
    let mut conn = server.connect();
    conn.write_all(b"GET /healthz HTTP/1.0\r\nHost: x\r\nConnection: keep-alive\r\n\r\n").unwrap();
    let (status, _, _) = read_response(&mut conn);
    assert_eq!(status, 200);
    conn.write_all(b"GET /healthz HTTP/1.0\r\nHost: x\r\nConnection: keep-alive\r\n\r\n").unwrap();
    let (status, _, _) = read_response(&mut conn);
    assert_eq!(status, 200, "HTTP/1.0 keep-alive was not honoured");

    // List-valued `Connection` header: `close` anywhere in it wins.
    let mut conn = server.connect();
    conn.write_all(b"GET /healthz HTTP/1.1\r\nHost: x\r\nConnection: foo, close\r\n\r\n").unwrap();
    let (status, _, _) = read_response(&mut conn);
    assert_eq!(status, 200);
    assert!(reads_eof(&mut conn), "list-valued Connection: close was not honoured");

    server.stop();
}

#[test]
fn every_status_path_carries_content_length() {
    let server = TestServer::boot(ServerConfig::default());
    // `read_response` itself asserts Content-Length presence and exact
    // framing; walk one request per interesting status code.
    let cases: &[(&str, u16)] = &[
        ("GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n", 200),
        ("POST /v1/session HTTP/1.1\r\nContent-Length: 9\r\n\r\n{not json", 400),
        ("GET /v1/bogus HTTP/1.1\r\nHost: x\r\n\r\n", 404),
        ("DELETE /healthz HTTP/1.1\r\nHost: x\r\n\r\n", 405),
        ("GET /healthz HTTP/2.0\r\nHost: x\r\n\r\n", 505),
        ("POST /v1/session HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n", 501),
        ("completely: garbled\r\n\r\n", 400),
    ];
    for (request, expected) in cases {
        let mut conn = server.connect();
        conn.write_all(request.as_bytes()).unwrap();
        let (status, head, body) = read_response(&mut conn);
        assert_eq!(
            status,
            *expected,
            "request {request:?} drew {status} ({head:?} {:?})",
            String::from_utf8_lossy(&body)
        );
        assert!(!body.is_empty(), "error responses carry a JSON body");
    }
    server.stop();
}

#[test]
fn a_stalled_partial_request_is_idle_timed_out_not_spun() {
    let server = TestServer::boot(ServerConfig {
        idle_timeout: Duration::from_millis(300),
        ..Default::default()
    });
    let mut conn = server.connect();
    // Half a request, then silence.  The server must park the
    // connection with the poller (not bounce it through the worker pool
    // at full CPU) and enforce the idle timeout on it.
    conn.write_all(b"POST /v1/session HTTP/1.1\r\nContent-Length: 40\r\n\r\n{\"user\"").unwrap();
    let mut byte = [0u8; 1];
    match conn.read(&mut byte) {
        Ok(0) => {}
        Ok(_) => panic!("unexpected bytes in reply to a partial request"),
        Err(e) if e.kind() == ErrorKind::ConnectionReset => {}
        Err(e) => panic!("expected idle-timeout close of the stalled connection, got {e}"),
    }
    // A spinning connection would also keep the ready queue non-empty
    // and wedge the phase-1 shutdown drain; stop() proves it drains.
    server.stop();
}

#[test]
fn idle_keepalive_connections_are_closed_after_the_timeout() {
    let server = TestServer::boot(ServerConfig {
        idle_timeout: Duration::from_millis(300),
        ..Default::default()
    });
    let mut conn = server.connect();
    conn.write_all(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
    let (status, _, _) = read_response(&mut conn);
    assert_eq!(status, 200);
    // Park idle past the timeout: the poller must close us.
    let mut byte = [0u8; 1];
    match conn.read(&mut byte) {
        Ok(0) => {}
        Ok(_) => panic!("unexpected bytes on an idle connection"),
        Err(e) if e.kind() == ErrorKind::ConnectionReset => {}
        Err(e) => panic!("expected idle-timeout close, got {e}"),
    }
    server.stop();
}
