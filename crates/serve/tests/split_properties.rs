//! Property pins for weighted traffic splitting.
//!
//! The split must be *deterministic* (a session id always draws the
//! same arm for a given seed and weights — restart-stable, no RNG
//! state), *sticky* (the session store remembers the draw; later
//! weight changes never migrate a live session), and *honest* (over
//! many ids the empirical arm shares track the configured weights).

use irs_core::InteractiveSession;
use irs_serve::{SessionStore, TrafficSplit, NUM_ARMS};
use proptest::prelude::*;

fn session(user: usize) -> InteractiveSession {
    InteractiveSession::new(user, vec![1, 2], 9, 10, 3)
}

proptest! {
    /// Same seed + same weights ⇒ the same id draws the same arm, even
    /// across freshly constructed splits (nothing hidden is mutated by
    /// assignment itself).
    #[test]
    fn assignment_is_a_pure_function_of_seed_and_weights(
        seed in 0u64..u64::MAX,
        w0 in 0.0f64..1.0,
        ids in proptest::collection::vec(0u64..u64::MAX, 1..64),
    ) {
        let a = TrafficSplit::new(seed);
        let b = TrafficSplit::new(seed);
        a.set_weights(&[w0, 1.0 - w0]).unwrap();
        b.set_weights(&[w0, 1.0 - w0]).unwrap();
        for &id in &ids {
            let arm = a.assign(id);
            prop_assert!(arm < NUM_ARMS);
            prop_assert_eq!(arm, b.assign(id), "id {} must draw identically", id);
            // Re-asking the same instance is also stable.
            prop_assert_eq!(arm, a.assign(id));
        }
    }

    /// Scaling both weights by a common factor changes nothing: only
    /// the normalised proportions matter.
    #[test]
    fn weights_are_scale_invariant(
        seed in 0u64..u64::MAX,
        w0 in 0.01f64..1.0,
        w1 in 0.01f64..1.0,
        scale in 0.01f64..100.0,
        ids in proptest::collection::vec(0u64..u64::MAX, 1..32),
    ) {
        let a = TrafficSplit::new(seed);
        let b = TrafficSplit::new(seed);
        a.set_weights(&[w0, w1]).unwrap();
        b.set_weights(&[w0 * scale, w1 * scale]).unwrap();
        for &id in &ids {
            prop_assert_eq!(a.assign(id), b.assign(id));
        }
    }

    /// Degenerate weights pin every draw to the open arm.
    #[test]
    fn all_weight_on_one_arm_routes_everything_there(
        seed in 0u64..u64::MAX,
        ids in proptest::collection::vec(0u64..u64::MAX, 1..64),
        winner in 0usize..NUM_ARMS,
    ) {
        let split = TrafficSplit::new(seed);
        let mut weights = [0.0; NUM_ARMS];
        weights[winner] = 1.0;
        split.set_weights(&weights).unwrap();
        for &id in &ids {
            prop_assert_eq!(split.assign(id), winner);
        }
    }

    /// Over a large id population the empirical shares track the
    /// configured weights.  4096 draws keep the binomial noise well
    /// under the ±5 % tolerance (σ ≤ 0.8 %).
    #[test]
    fn empirical_shares_track_the_weights(
        seed in 0u64..u64::MAX,
        w0 in 0.05f64..0.95,
    ) {
        let split = TrafficSplit::new(seed);
        split.set_weights(&[w0, 1.0 - w0]).unwrap();
        let n = 4096u64;
        let arm0 = (0..n).filter(|&id| split.assign(id) == 0).count() as f64;
        let share = arm0 / n as f64;
        prop_assert!(
            (share - w0).abs() < 0.05,
            "arm 0 share {:.3} strays from weight {:.3}", share, w0
        );
    }

    /// The session store pins the draw at creation: flipping the
    /// weights afterwards never migrates a live session, and the census
    /// agrees with what creation reported.
    #[test]
    fn store_assignment_is_sticky_under_weight_changes(
        seed in 0u64..u64::MAX,
        w0 in 0.0f64..1.0,
        users in proptest::collection::vec(0usize..100, 1..32),
    ) {
        let split = TrafficSplit::new(seed);
        split.set_weights(&[w0, 1.0 - w0]).unwrap();
        let store = SessionStore::new(4);
        let mut created = Vec::new();
        for &user in &users {
            let (id, arm) = store.insert_assigned(session(user), |id| split.assign(id));
            created.push((id, arm));
        }
        // The winner changes; existing sessions must not.
        split.set_weights(&[1.0 - w0, w0]).unwrap();
        let mut census = [0usize; NUM_ARMS];
        for &(id, arm) in &created {
            let pinned = store.with_arm(id, |_, a| a).expect("session live");
            prop_assert_eq!(pinned, arm, "session {} migrated arms", id);
            census[arm] += 1;
        }
        prop_assert_eq!(census, store.arm_census());
    }
}

#[test]
fn set_weights_rejects_garbage() {
    let split = TrafficSplit::new(7);
    assert!(split.set_weights(&[1.0]).is_err(), "wrong arity");
    assert!(split.set_weights(&[1.0, 2.0, 3.0]).is_err(), "wrong arity");
    assert!(split.set_weights(&[-1.0, 2.0]).is_err(), "negative weight");
    assert!(split.set_weights(&[f64::NAN, 1.0]).is_err(), "NaN weight");
    assert!(split.set_weights(&[f64::INFINITY, 1.0]).is_err(), "infinite weight");
    assert!(split.set_weights(&[0.0, 0.0]).is_err(), "zero-sum weights");
    // Rejection leaves the previous weights in place.
    assert_eq!(split.weights(), [1.0, 0.0]);
}
