//! Weighted multi-snapshot traffic splitting.
//!
//! Sessions are **sticky-assigned** to an arm of the
//! [`crate::snapshot::SnapshotRegistry`] when they are created: a seeded
//! hash of the session id drives one weighted draw, and the session
//! scores against that arm's snapshot for its whole life (re-splitting a
//! live session would tear its context cache and mix models inside one
//! persuasion path).  The draw is a pure function of `(seed, session
//! id, weights)` — reproducible across restarts and property-testable —
//! and honors the weights in expectation.
//!
//! Each arm keeps its own metric counters: requests served, feedback
//! outcomes (for the acceptance rate) and a log-bucketed latency
//! histogram (for p50/p95), all lock-free atomics on the hot path.
//! `/v1/stats` surfaces them per arm so an operator — or the CI canary
//! pipeline — can compare a candidate snapshot against production
//! traffic before promoting it to 100%.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use parking_lot::RwLock;

use crate::snapshot::NUM_ARMS;

/// `splitmix64` — tiny, well-mixed, seedable; the standard choice for
/// turning a counter-like id into uniform bits.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Log-bucketed latency histogram: bucket = bit width of the duration in
/// microseconds, so 64 buckets cover nanoseconds to ages.  Recording is
/// one atomic increment; quantiles are estimated at stats time as the
/// geometric midpoint of the covering bucket (≤ √2 relative error —
/// plenty for a p50/p95 canary comparison).
pub struct LatencyHistogram {
    buckets: [AtomicU64; 64],
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram { buckets: std::array::from_fn(|_| AtomicU64::new(0)) }
    }
}

impl LatencyHistogram {
    /// Record one observation (lock-free).
    pub fn record(&self, latency: Duration) {
        let us = latency.as_micros().min(u64::MAX as u128) as u64;
        let bucket = (64 - us.leading_zeros() as usize).min(63);
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
    }

    /// Total observations recorded.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// Estimated `q`-quantile in microseconds (0 when empty).
    pub fn quantile_us(&self, q: f64) -> f64 {
        let total = self.count();
        if total == 0 {
            return 0.0;
        }
        let rank = (q.clamp(0.0, 1.0) * total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (bucket, counter) in self.buckets.iter().enumerate() {
            seen += counter.load(Ordering::Relaxed);
            if seen >= rank {
                // Bucket b covers [2^(b-1), 2^b) µs (bucket 0 is "< 1 µs");
                // report the geometric midpoint.
                if bucket == 0 {
                    return 0.5;
                }
                let lo = (1u64 << (bucket - 1)) as f64;
                return lo * std::f64::consts::SQRT_2;
            }
        }
        0.0
    }
}

/// Per-arm monotonic serving counters.
#[derive(Default)]
pub struct ArmMetrics {
    requests: AtomicU64,
    accepted: AtomicU64,
    rejected: AtomicU64,
    latency: LatencyHistogram,
}

impl ArmMetrics {
    /// Record one scheduler round-trip and its latency.
    pub fn record_request(&self, latency: Duration) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        self.latency.record(latency);
    }

    /// Record one feedback outcome.
    pub fn record_feedback(&self, accepted: bool) {
        let counter = if accepted { &self.accepted } else { &self.rejected };
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Proposals served through this arm.
    pub fn requests(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    /// Accepted feedback events.
    pub fn accepted(&self) -> u64 {
        self.accepted.load(Ordering::Relaxed)
    }

    /// Rejected feedback events.
    pub fn rejected(&self) -> u64 {
        self.rejected.load(Ordering::Relaxed)
    }

    /// `accepted / (accepted + rejected)`, 0 before any feedback.
    pub fn acceptance_rate(&self) -> f64 {
        let a = self.accepted() as f64;
        let r = self.rejected() as f64;
        if a + r == 0.0 {
            0.0
        } else {
            a / (a + r)
        }
    }

    /// Estimated latency quantile in microseconds.
    pub fn latency_quantile_us(&self, q: f64) -> f64 {
        self.latency.quantile_us(q)
    }
}

/// Sticky weighted session→arm assignment plus per-arm metrics.
pub struct TrafficSplit {
    /// Normalised weights (sum 1).  An `RwLock` rather than atomics so a
    /// reader always sees one coherent weight vector; writes only happen
    /// on admin routes.
    weights: RwLock<[f64; NUM_ARMS]>,
    seed: u64,
    metrics: [ArmMetrics; NUM_ARMS],
}

impl TrafficSplit {
    /// All traffic to arm 0 (the stable snapshot) until an admin sets
    /// weights; `seed` fixes the assignment hash.
    pub fn new(seed: u64) -> Self {
        let mut weights = [0.0; NUM_ARMS];
        weights[0] = 1.0;
        TrafficSplit { weights: RwLock::new(weights), seed, metrics: Default::default() }
    }

    /// The arm a session id belongs to under the current weights: one
    /// seeded uniform draw in `[0, 1)` walked through the cumulative
    /// weights.  Deterministic per `(seed, id, weights)`.
    pub fn assign(&self, session_id: u64) -> usize {
        let bits = splitmix64(self.seed ^ session_id.wrapping_mul(0x2545_f491_4f6c_dd1d));
        // 53 high bits → uniform f64 in [0, 1).
        let u = (bits >> 11) as f64 / (1u64 << 53) as f64;
        let weights = self.weights.read();
        let mut acc = 0.0;
        for (arm, &w) in weights.iter().enumerate() {
            acc += w;
            if u < acc {
                return arm;
            }
        }
        // Floating-point shortfall (acc summed to < 1): last arm with
        // any weight.
        weights.iter().rposition(|&w| w > 0.0).unwrap_or(0)
    }

    /// Replace the weights.  Rejects negative/non-finite entries, a
    /// zero-sum vector, or a wrong-length one; accepted weights are
    /// normalised to sum 1 and returned.
    pub fn set_weights(&self, weights: &[f64]) -> Result<[f64; NUM_ARMS], String> {
        if weights.len() != NUM_ARMS {
            return Err(format!("expected {NUM_ARMS} weights, got {}", weights.len()));
        }
        if weights.iter().any(|w| !w.is_finite() || *w < 0.0) {
            return Err("weights must be finite and non-negative".into());
        }
        let sum: f64 = weights.iter().sum();
        if sum <= 0.0 {
            return Err("weights must not all be zero".into());
        }
        let mut normalised = [0.0; NUM_ARMS];
        for (slot, &w) in normalised.iter_mut().zip(weights) {
            *slot = w / sum;
        }
        *self.weights.write() = normalised;
        Ok(normalised)
    }

    /// Current normalised weights.
    pub fn weights(&self) -> [f64; NUM_ARMS] {
        *self.weights.read()
    }

    /// The metric counters for `arm` (clamped into range).
    pub fn metrics(&self, arm: usize) -> &ArmMetrics {
        &self.metrics[arm.min(NUM_ARMS - 1)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assignment_is_deterministic_and_sticky() {
        let a = TrafficSplit::new(42);
        let b = TrafficSplit::new(42);
        a.set_weights(&[0.5, 0.5]).unwrap();
        b.set_weights(&[0.5, 0.5]).unwrap();
        for id in 0..1000u64 {
            assert_eq!(a.assign(id), b.assign(id), "same seed must reproduce the draw");
            assert_eq!(a.assign(id), a.assign(id), "the draw must be stable per id");
        }
        let c = TrafficSplit::new(43);
        c.set_weights(&[0.5, 0.5]).unwrap();
        let diverges = (0..1000u64).any(|id| a.assign(id) != c.assign(id));
        assert!(diverges, "a different seed must shuffle assignments");
    }

    #[test]
    fn weights_are_honored_within_tolerance() {
        let split = TrafficSplit::new(7);
        for &(w0, w1) in &[(0.5, 0.5), (0.9, 0.1), (0.25, 0.75)] {
            split.set_weights(&[w0, w1]).unwrap();
            let n = 20_000u64;
            let to_canary = (0..n).filter(|&id| split.assign(id) == 1).count() as f64;
            let frac = to_canary / n as f64;
            assert!((frac - w1).abs() < 0.02, "weight {w1} drew fraction {frac} over {n} sessions");
        }
    }

    #[test]
    fn degenerate_weights_route_everything_one_way() {
        let split = TrafficSplit::new(1);
        assert!((0..500u64).all(|id| split.assign(id) == 0), "default is 100% stable");
        split.set_weights(&[0.0, 1.0]).unwrap();
        assert!((0..500u64).all(|id| split.assign(id) == 1));
        split.set_weights(&[1.0, 0.0]).unwrap();
        assert!((0..500u64).all(|id| split.assign(id) == 0));
    }

    #[test]
    fn set_weights_validates_and_normalises() {
        let split = TrafficSplit::new(0);
        assert!(split.set_weights(&[1.0]).is_err(), "wrong length");
        assert!(split.set_weights(&[-1.0, 2.0]).is_err(), "negative");
        assert!(split.set_weights(&[f64::NAN, 1.0]).is_err(), "non-finite");
        assert!(split.set_weights(&[0.0, 0.0]).is_err(), "zero sum");
        let w = split.set_weights(&[1.0, 3.0]).unwrap();
        assert!((w[0] - 0.25).abs() < 1e-12 && (w[1] - 0.75).abs() < 1e-12);
        assert_eq!(split.weights(), w);
    }

    #[test]
    fn metrics_accumulate_and_rate_is_defined() {
        let split = TrafficSplit::new(0);
        let m = split.metrics(1);
        assert_eq!(m.acceptance_rate(), 0.0, "no feedback yet");
        m.record_request(Duration::from_micros(100));
        m.record_request(Duration::from_micros(200));
        m.record_feedback(true);
        m.record_feedback(true);
        m.record_feedback(false);
        assert_eq!(m.requests(), 2);
        assert_eq!(m.accepted(), 2);
        assert_eq!(m.rejected(), 1);
        assert!((m.acceptance_rate() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(split.metrics(0).requests(), 0, "arms are independent");
    }

    #[test]
    fn histogram_quantiles_bracket_the_observations() {
        let h = LatencyHistogram::default();
        assert_eq!(h.quantile_us(0.5), 0.0, "empty histogram");
        for _ in 0..90 {
            h.record(Duration::from_micros(100));
        }
        for _ in 0..10 {
            h.record(Duration::from_micros(10_000));
        }
        assert_eq!(h.count(), 100);
        let p50 = h.quantile_us(0.5);
        let p95 = h.quantile_us(0.95);
        // Log buckets: estimates land within a factor of √2 of the
        // bucket boundaries around the true values.
        assert!((50.0..200.0).contains(&p50), "p50 estimate {p50}");
        assert!((5_000.0..20_000.0).contains(&p95), "p95 estimate {p95}");
        assert!(p95 > p50);
    }
}
