//! Weighted multi-snapshot traffic splitting.
//!
//! Sessions are **sticky-assigned** to an arm of the
//! [`crate::snapshot::SnapshotRegistry`] when they are created: a seeded
//! hash of the session id drives one weighted draw, and the session
//! scores against that arm's snapshot for its whole life (re-splitting a
//! live session would tear its context cache and mix models inside one
//! persuasion path).  The draw is a pure function of `(seed, session
//! id, weights)` — reproducible across restarts and property-testable —
//! and honors the weights in expectation.
//!
//! Each arm keeps its own metric counters: requests served, feedback
//! outcomes (for the acceptance rate) and a log-bucketed latency
//! histogram (for p50/p95), all lock-free on the hot path.  The handles
//! are [`irs_obs`] registry handles, so the same counters the hot path
//! bumps are the ones `/metrics` and `/v1/stats` render — no shadow
//! copies.  Alongside the lifetime totals every arm keeps
//! **sliding-window** variants ([`ARM_WINDOW_BUCKETS`] ring buckets of
//! [`ARM_WINDOW_BUCKET`] each): a young canary's last-minute rate is
//! comparable to a long-lived stable arm's, which lifetime totals
//! structurally are not.

use std::time::Duration;

use parking_lot::RwLock;

use irs_obs::{Counter, Histogram, WindowedCounter};

use crate::snapshot::NUM_ARMS;

/// Log-bucketed latency histogram (re-exported from the observability
/// crate; bucket = bit width of the duration in microseconds).
pub use irs_obs::Histogram as LatencyHistogram;

/// Ring length of the per-arm sliding windows.
pub const ARM_WINDOW_BUCKETS: usize = 12;
/// Width of one window bucket; the full window is
/// `ARM_WINDOW_BUCKETS × ARM_WINDOW_BUCKET` = 60 s.
pub const ARM_WINDOW_BUCKET: Duration = Duration::from_secs(5);

/// `splitmix64` — tiny, well-mixed, seedable; the standard choice for
/// turning a counter-like id into uniform bits.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Per-arm serving counters: lifetime totals plus sliding-window
/// variants.  Cloning shares the underlying atomics, so a clone handed
/// to the metrics registry observes the same traffic.
#[derive(Clone)]
pub struct ArmMetrics {
    requests: Counter,
    accepted: Counter,
    rejected: Counter,
    latency: Histogram,
    window_requests: WindowedCounter,
    window_accepted: WindowedCounter,
    window_rejected: WindowedCounter,
    window_latency_us: WindowedCounter,
}

impl Default for ArmMetrics {
    /// Detached handles (not registered anywhere) — for tests and
    /// standalone [`TrafficSplit`]s.
    fn default() -> Self {
        ArmMetrics::with_handles(
            Counter::default(),
            Counter::default(),
            Counter::default(),
            Histogram::default(),
        )
    }
}

impl ArmMetrics {
    /// Build around registry-owned lifetime handles; the sliding
    /// windows are created fresh (they are this struct's own state).
    pub fn with_handles(
        requests: Counter,
        accepted: Counter,
        rejected: Counter,
        latency: Histogram,
    ) -> Self {
        let window = || WindowedCounter::new(ARM_WINDOW_BUCKETS, ARM_WINDOW_BUCKET);
        ArmMetrics {
            requests,
            accepted,
            rejected,
            latency,
            window_requests: window(),
            window_accepted: window(),
            window_rejected: window(),
            window_latency_us: window(),
        }
    }

    /// Record one scheduler round-trip and its latency.
    pub fn record_request(&self, latency: Duration) {
        self.requests.inc();
        self.latency.record(latency);
        self.window_requests.add(1);
        self.window_latency_us.add(latency.as_micros().min(u64::MAX as u128) as u64);
    }

    /// Record one feedback outcome.
    pub fn record_feedback(&self, accepted: bool) {
        if accepted {
            self.accepted.inc();
            self.window_accepted.add(1);
        } else {
            self.rejected.inc();
            self.window_rejected.add(1);
        }
    }

    /// Proposals served through this arm (lifetime).
    pub fn requests(&self) -> u64 {
        self.requests.get()
    }

    /// Accepted feedback events (lifetime).
    pub fn accepted(&self) -> u64 {
        self.accepted.get()
    }

    /// Rejected feedback events (lifetime).
    pub fn rejected(&self) -> u64 {
        self.rejected.get()
    }

    /// `accepted / (accepted + rejected)`, 0 before any feedback.
    pub fn acceptance_rate(&self) -> f64 {
        let a = self.accepted() as f64;
        let r = self.rejected() as f64;
        if a + r == 0.0 {
            0.0
        } else {
            a / (a + r)
        }
    }

    /// Estimated latency quantile in microseconds (lifetime).
    pub fn latency_quantile_us(&self, q: f64) -> f64 {
        self.latency.quantile_us(q)
    }

    /// Proposals served inside the sliding window.
    pub fn window_requests(&self) -> u64 {
        self.window_requests.total()
    }

    /// Feedback accepted inside the sliding window.
    pub fn window_accepted(&self) -> u64 {
        self.window_accepted.total()
    }

    /// Feedback rejected inside the sliding window.
    pub fn window_rejected(&self) -> u64 {
        self.window_rejected.total()
    }

    /// Acceptance rate over the sliding window, 0 when it is empty.
    pub fn window_acceptance_rate(&self) -> f64 {
        let a = self.window_accepted() as f64;
        let r = self.window_rejected() as f64;
        if a + r == 0.0 {
            0.0
        } else {
            a / (a + r)
        }
    }

    /// Mean round-trip latency in microseconds over the sliding window,
    /// 0 when it is empty.
    pub fn window_mean_latency_us(&self) -> f64 {
        let n = self.window_requests();
        if n == 0 {
            0.0
        } else {
            self.window_latency_us.total() as f64 / n as f64
        }
    }

    /// Width of the sliding window in milliseconds.
    pub fn window_ms(&self) -> u64 {
        self.window_requests.window_ms()
    }
}

/// Sticky weighted session→arm assignment plus per-arm metrics.
pub struct TrafficSplit {
    /// Normalised weights (sum 1).  An `RwLock` rather than atomics so a
    /// reader always sees one coherent weight vector; writes only happen
    /// on admin routes.
    weights: RwLock<[f64; NUM_ARMS]>,
    seed: u64,
    metrics: [ArmMetrics; NUM_ARMS],
}

impl TrafficSplit {
    /// All traffic to arm 0 (the stable snapshot) until an admin sets
    /// weights; `seed` fixes the assignment hash.  Metrics are detached
    /// handles; servers that export them use
    /// [`TrafficSplit::with_metrics`].
    pub fn new(seed: u64) -> Self {
        TrafficSplit::with_metrics(seed, Default::default())
    }

    /// Like [`TrafficSplit::new`] but recording into caller-provided
    /// (typically registry-backed) per-arm metrics.
    pub fn with_metrics(seed: u64, metrics: [ArmMetrics; NUM_ARMS]) -> Self {
        let mut weights = [0.0; NUM_ARMS];
        weights[0] = 1.0;
        TrafficSplit { weights: RwLock::new(weights), seed, metrics }
    }

    /// The arm a session id belongs to under the current weights: one
    /// seeded uniform draw in `[0, 1)` walked through the cumulative
    /// weights.  Deterministic per `(seed, id, weights)`.
    pub fn assign(&self, session_id: u64) -> usize {
        let bits = splitmix64(self.seed ^ session_id.wrapping_mul(0x2545_f491_4f6c_dd1d));
        // 53 high bits → uniform f64 in [0, 1).
        let u = (bits >> 11) as f64 / (1u64 << 53) as f64;
        let weights = self.weights.read();
        let mut acc = 0.0;
        for (arm, &w) in weights.iter().enumerate() {
            acc += w;
            if u < acc {
                return arm;
            }
        }
        // Floating-point shortfall (acc summed to < 1): last arm with
        // any weight.
        weights.iter().rposition(|&w| w > 0.0).unwrap_or(0)
    }

    /// Replace the weights.  Rejects negative/non-finite entries, a
    /// zero-sum vector, or a wrong-length one; accepted weights are
    /// normalised to sum 1 and returned.
    pub fn set_weights(&self, weights: &[f64]) -> Result<[f64; NUM_ARMS], String> {
        if weights.len() != NUM_ARMS {
            return Err(format!("expected {NUM_ARMS} weights, got {}", weights.len()));
        }
        if weights.iter().any(|w| !w.is_finite() || *w < 0.0) {
            return Err("weights must be finite and non-negative".into());
        }
        let sum: f64 = weights.iter().sum();
        if sum <= 0.0 {
            return Err("weights must not all be zero".into());
        }
        let mut normalised = [0.0; NUM_ARMS];
        for (slot, &w) in normalised.iter_mut().zip(weights) {
            *slot = w / sum;
        }
        *self.weights.write() = normalised;
        Ok(normalised)
    }

    /// Current normalised weights.
    pub fn weights(&self) -> [f64; NUM_ARMS] {
        *self.weights.read()
    }

    /// The metric counters for `arm` (clamped into range).
    pub fn metrics(&self, arm: usize) -> &ArmMetrics {
        &self.metrics[arm.min(NUM_ARMS - 1)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assignment_is_deterministic_and_sticky() {
        let a = TrafficSplit::new(42);
        let b = TrafficSplit::new(42);
        a.set_weights(&[0.5, 0.5]).unwrap();
        b.set_weights(&[0.5, 0.5]).unwrap();
        for id in 0..1000u64 {
            assert_eq!(a.assign(id), b.assign(id), "same seed must reproduce the draw");
            assert_eq!(a.assign(id), a.assign(id), "the draw must be stable per id");
        }
        let c = TrafficSplit::new(43);
        c.set_weights(&[0.5, 0.5]).unwrap();
        let diverges = (0..1000u64).any(|id| a.assign(id) != c.assign(id));
        assert!(diverges, "a different seed must shuffle assignments");
    }

    #[test]
    fn weights_are_honored_within_tolerance() {
        let split = TrafficSplit::new(7);
        for &(w0, w1) in &[(0.5, 0.5), (0.9, 0.1), (0.25, 0.75)] {
            split.set_weights(&[w0, w1]).unwrap();
            let n = 20_000u64;
            let to_canary = (0..n).filter(|&id| split.assign(id) == 1).count() as f64;
            let frac = to_canary / n as f64;
            assert!((frac - w1).abs() < 0.02, "weight {w1} drew fraction {frac} over {n} sessions");
        }
    }

    #[test]
    fn degenerate_weights_route_everything_one_way() {
        let split = TrafficSplit::new(1);
        assert!((0..500u64).all(|id| split.assign(id) == 0), "default is 100% stable");
        split.set_weights(&[0.0, 1.0]).unwrap();
        assert!((0..500u64).all(|id| split.assign(id) == 1));
        split.set_weights(&[1.0, 0.0]).unwrap();
        assert!((0..500u64).all(|id| split.assign(id) == 0));
    }

    #[test]
    fn set_weights_validates_and_normalises() {
        let split = TrafficSplit::new(0);
        assert!(split.set_weights(&[1.0]).is_err(), "wrong length");
        assert!(split.set_weights(&[-1.0, 2.0]).is_err(), "negative");
        assert!(split.set_weights(&[f64::NAN, 1.0]).is_err(), "non-finite");
        assert!(split.set_weights(&[0.0, 0.0]).is_err(), "zero sum");
        let w = split.set_weights(&[1.0, 3.0]).unwrap();
        assert!((w[0] - 0.25).abs() < 1e-12 && (w[1] - 0.75).abs() < 1e-12);
        assert_eq!(split.weights(), w);
    }

    #[test]
    fn metrics_accumulate_and_rate_is_defined() {
        let split = TrafficSplit::new(0);
        let m = split.metrics(1);
        assert_eq!(m.acceptance_rate(), 0.0, "no feedback yet");
        m.record_request(Duration::from_micros(100));
        m.record_request(Duration::from_micros(200));
        m.record_feedback(true);
        m.record_feedback(true);
        m.record_feedback(false);
        assert_eq!(m.requests(), 2);
        assert_eq!(m.accepted(), 2);
        assert_eq!(m.rejected(), 1);
        assert!((m.acceptance_rate() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(split.metrics(0).requests(), 0, "arms are independent");
    }

    #[test]
    fn windowed_counters_track_fresh_traffic() {
        let m = ArmMetrics::default();
        m.record_request(Duration::from_micros(100));
        m.record_request(Duration::from_micros(300));
        m.record_feedback(true);
        m.record_feedback(false);
        // Just recorded, so everything is inside the 60 s window.
        assert_eq!(m.window_requests(), 2);
        assert_eq!(m.window_accepted(), 1);
        assert_eq!(m.window_rejected(), 1);
        assert!((m.window_acceptance_rate() - 0.5).abs() < 1e-12);
        assert!((m.window_mean_latency_us() - 200.0).abs() < 1e-12);
        assert_eq!(m.window_ms(), 60_000);
    }

    #[test]
    fn clones_share_the_underlying_counters() {
        let m = ArmMetrics::default();
        let clone = m.clone();
        m.record_request(Duration::from_micros(50));
        assert_eq!(clone.requests(), 1);
        assert_eq!(clone.window_requests(), 1);
    }
}
