//! Dynamic micro-batching scheduler.
//!
//! Concurrent `next_item` requests from different sessions land in one
//! bounded queue; worker threads drain it under a *max-batch-size /
//! max-wait* policy — a worker takes the first available request, then
//! keeps collecting until the batch is full or the wait budget since the
//! first pop is spent — and answer every request in the batch with a
//! single [`InfluenceRecommender::next_items`] call against the current
//! model snapshot.
//!
//! The policy trades latency for throughput explicitly: `max_wait` is the
//! most latency a request can pay to find co-travellers; `max_batch`
//! bounds the forward-pass size.  Under load the queue never drains
//! between pops, so batches fill instantly and the wait budget is never
//! charged; at low load a request waits at most `max_wait` before
//! travelling alone — `BatchPolicy { max_batch: 1, .. }` degenerates to
//! no batching (the baseline configuration `serve_load --compare`
//! measures against).
//!
//! Batch composition is unobservable in the answers (the batched≡scalar
//! bitwise contract), so regrouping requests by arrival timing is safe.
//!
//! [`InfluenceRecommender::next_items`]: irs_core::InfluenceRecommender::next_items

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use irs_core::NextQuery;
use irs_data::{ItemId, UserId};

use crate::snapshot::SnapshotRegistry;

/// Micro-batching knobs.
#[derive(Debug, Clone)]
pub struct BatchPolicy {
    /// Largest coalesced batch (1 disables batching).
    pub max_batch: usize,
    /// Longest a worker waits for co-travellers after the first request
    /// of a batch arrives.
    pub max_wait: Duration,
    /// Scheduler worker threads draining the queue.
    pub workers: usize,
    /// Bound on queued requests; producers block when it is reached
    /// (backpressure instead of unbounded memory growth).
    pub queue_capacity: usize,
}

impl Default for BatchPolicy {
    fn default() -> Self {
        BatchPolicy {
            max_batch: 16,
            max_wait: Duration::from_micros(500),
            workers: 2,
            queue_capacity: 1024,
        }
    }
}

/// One queued scoring request: the session state needed to build a
/// [`NextQuery`], plus the channel the answer travels back on.
struct ScoreRequest {
    user: UserId,
    history: Vec<ItemId>,
    objective: ItemId,
    path: Vec<ItemId>,
    reply: mpsc::Sender<Option<ItemId>>,
}

struct QueueInner {
    requests: VecDeque<ScoreRequest>,
    shutdown: bool,
}

struct SharedQueue {
    inner: Mutex<QueueInner>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
}

/// Aggregate serving counters (all monotonic).
#[derive(Default)]
struct Stats {
    requests: AtomicU64,
    batches: AtomicU64,
    gave_up: AtomicU64,
}

/// A point-in-time copy of the engine counters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StatsSnapshot {
    /// Requests answered.
    pub requests: u64,
    /// Batched forward passes issued.
    pub batches: u64,
    /// Requests the recommender could not extend a path for.
    pub gave_up: u64,
}

impl StatsSnapshot {
    /// Mean coalesced batch size.
    pub fn mean_batch(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.requests as f64 / self.batches as f64
        }
    }
}

/// The micro-batching engine: a bounded request queue plus worker threads
/// scoring coalesced batches against [`SnapshotRegistry::current`].
pub struct Engine {
    queue: Arc<SharedQueue>,
    registry: Arc<SnapshotRegistry>,
    stats: Arc<Stats>,
    policy: BatchPolicy,
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl Engine {
    /// Spawn the scheduler's worker threads.
    pub fn start(registry: Arc<SnapshotRegistry>, policy: BatchPolicy) -> Self {
        assert!(policy.max_batch >= 1, "max_batch must be at least 1");
        assert!(policy.workers >= 1, "at least one worker is required");
        assert!(policy.queue_capacity >= 1, "queue capacity must be at least 1");
        let queue = Arc::new(SharedQueue {
            inner: Mutex::new(QueueInner { requests: VecDeque::new(), shutdown: false }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity: policy.queue_capacity,
        });
        let stats = Arc::new(Stats::default());
        let workers = (0..policy.workers)
            .map(|_| {
                let queue = queue.clone();
                let registry = registry.clone();
                let stats = stats.clone();
                let policy = policy.clone();
                std::thread::spawn(move || worker_loop(&queue, &registry, &stats, &policy))
            })
            .collect();
        Engine { queue, registry, stats, policy, workers: Mutex::new(workers) }
    }

    /// The snapshot registry this engine scores against.
    pub fn registry(&self) -> &Arc<SnapshotRegistry> {
        &self.registry
    }

    /// The batching policy the engine runs under.
    pub fn policy(&self) -> &BatchPolicy {
        &self.policy
    }

    /// Submit one request and block until the scheduler answers it.
    /// Returns `None` when the recommender cannot extend the path or the
    /// engine is shutting down.
    pub fn next_item(
        &self,
        user: UserId,
        history: Vec<ItemId>,
        objective: ItemId,
        path: Vec<ItemId>,
    ) -> Option<ItemId> {
        let (reply, rx) = mpsc::channel();
        {
            let mut inner = self.queue.inner.lock().expect("serve queue poisoned");
            while inner.requests.len() >= self.queue.capacity && !inner.shutdown {
                inner = self.queue.not_full.wait(inner).expect("serve queue poisoned");
            }
            if inner.shutdown {
                return None;
            }
            inner.requests.push_back(ScoreRequest { user, history, objective, path, reply });
        }
        self.queue.not_empty.notify_one();
        // A dropped sender (shutdown racing the submit) answers `None`.
        rx.recv().unwrap_or(None)
    }

    /// One scheduling round-trip for a live session: clone its query
    /// state and block for the batched answer.  Feed the result back
    /// with [`InteractiveSession::record`] /
    /// [`InteractiveSession::record_give_up`] (the session stays with
    /// the caller — under a store lock, on a client thread, wherever).
    ///
    /// [`InteractiveSession::record`]: irs_core::InteractiveSession::record
    /// [`InteractiveSession::record_give_up`]: irs_core::InteractiveSession::record_give_up
    pub fn propose(&self, session: &irs_core::InteractiveSession) -> Option<ItemId> {
        let q = session.query();
        self.next_item(q.user, q.history.to_vec(), q.objective, q.path.to_vec())
    }

    /// Current counter values.
    pub fn stats(&self) -> StatsSnapshot {
        StatsSnapshot {
            requests: self.stats.requests.load(Ordering::Relaxed),
            batches: self.stats.batches.load(Ordering::Relaxed),
            gave_up: self.stats.gave_up.load(Ordering::Relaxed),
        }
    }

    /// Drain the queue, stop the workers and join them (idempotent).
    /// Queued requests are still answered; requests submitted after
    /// shutdown get `None`.
    pub fn shutdown(&self) {
        {
            let mut inner = self.queue.inner.lock().expect("serve queue poisoned");
            inner.shutdown = true;
        }
        self.queue.not_empty.notify_all();
        self.queue.not_full.notify_all();
        let handles: Vec<_> =
            self.workers.lock().expect("worker list poisoned").drain(..).collect();
        for handle in handles {
            let _ = handle.join();
        }
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Collect one micro-batch: block for the first request, then keep
/// taking until the batch is full or `max_wait` since the first pop has
/// elapsed.  Returns `None` when the engine shut down and the queue is
/// drained.
fn collect_batch(queue: &SharedQueue, policy: &BatchPolicy) -> Option<Vec<ScoreRequest>> {
    let mut inner = queue.inner.lock().expect("serve queue poisoned");
    loop {
        if let Some(first) = inner.requests.pop_front() {
            queue.not_full.notify_one();
            let mut batch = vec![first];
            let deadline = Instant::now() + policy.max_wait;
            while batch.len() < policy.max_batch {
                if let Some(req) = inner.requests.pop_front() {
                    queue.not_full.notify_one();
                    batch.push(req);
                    continue;
                }
                if inner.shutdown {
                    break; // don't charge the wait budget during drain
                }
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                let (guard, timeout) = queue
                    .not_empty
                    .wait_timeout(inner, deadline - now)
                    .expect("serve queue poisoned");
                inner = guard;
                if timeout.timed_out() && inner.requests.is_empty() {
                    break;
                }
            }
            return Some(batch);
        }
        if inner.shutdown {
            return None;
        }
        inner = queue.not_empty.wait(inner).expect("serve queue poisoned");
    }
}

fn worker_loop(
    queue: &SharedQueue,
    registry: &SnapshotRegistry,
    stats: &Stats,
    policy: &BatchPolicy,
) {
    while let Some(batch) = collect_batch(queue, policy) {
        // One snapshot per batch: every request in it is scored by the
        // same model even if a hot-swap lands mid-flight.
        let snapshot = registry.current();
        // Panic isolation: a model panic (bad input reaching an
        // embedding lookup, a future model bug) must not kill the worker
        // — one dead worker silently halves capacity and once all are
        // gone every submitter blocks forever.  The poisoned batch is
        // answered `None`; the worker lives on.
        let answers = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let queries: Vec<NextQuery<'_>> = batch
                .iter()
                .map(|r| NextQuery {
                    user: r.user,
                    history: &r.history,
                    objective: r.objective,
                    path: &r.path,
                })
                .collect();
            snapshot.model.next_items(&queries)
        }))
        .unwrap_or_else(|_| {
            eprintln!(
                "irs_serve: model panicked scoring a batch of {}; answering None",
                batch.len()
            );
            vec![None; batch.len()]
        });
        stats.requests.fetch_add(batch.len() as u64, Ordering::Relaxed);
        stats.batches.fetch_add(1, Ordering::Relaxed);
        stats
            .gave_up
            .fetch_add(answers.iter().filter(|a| a.is_none()).count() as u64, Ordering::Relaxed);
        for (req, answer) in batch.into_iter().zip(answers) {
            // A disconnected receiver (client gave up) is not an error.
            let _ = req.reply.send(answer);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::ModelSnapshot;
    use irs_core::InfluenceRecommender;

    /// Deterministic stand-in: answers `base + path.len()`, unless the
    /// objective is reachable.
    struct Walker {
        base: ItemId,
    }

    impl InfluenceRecommender for Walker {
        fn name(&self) -> String {
            "walker".into()
        }
        fn next_item(
            &self,
            _user: UserId,
            _history: &[ItemId],
            objective: ItemId,
            path: &[ItemId],
        ) -> Option<ItemId> {
            let next = self.base + path.len();
            (next <= objective).then_some(next)
        }
    }

    fn engine(policy: BatchPolicy) -> Engine {
        let registry = Arc::new(SnapshotRegistry::new(ModelSnapshot::in_memory(
            "walker",
            Box::new(Walker { base: 10 }),
        )));
        Engine::start(registry, policy)
    }

    #[test]
    fn answers_match_the_scalar_recommender() {
        let eng = engine(BatchPolicy::default());
        assert_eq!(eng.next_item(0, vec![1], 99, vec![]), Some(10));
        assert_eq!(eng.next_item(0, vec![1], 99, vec![10, 11]), Some(12));
        assert_eq!(eng.next_item(0, vec![1], 5, vec![]), None, "unreachable objective");
        let stats = eng.stats();
        assert_eq!(stats.requests, 3);
        assert_eq!(stats.gave_up, 1);
        eng.shutdown();
    }

    #[test]
    fn concurrent_requests_coalesce_into_batches() {
        let eng = Arc::new(engine(BatchPolicy {
            max_batch: 8,
            max_wait: Duration::from_millis(50),
            workers: 1,
            queue_capacity: 64,
        }));
        let mut handles = Vec::new();
        for t in 0..16usize {
            let eng = eng.clone();
            handles.push(std::thread::spawn(move || eng.next_item(t, vec![t], 99, vec![])));
        }
        for h in handles {
            assert_eq!(h.join().unwrap(), Some(10));
        }
        let stats = eng.stats();
        assert_eq!(stats.requests, 16);
        assert!(
            stats.batches < 16,
            "16 concurrent requests with a 50ms window must share batches (got {})",
            stats.batches
        );
        eng.shutdown();
    }

    #[test]
    fn batch_size_one_still_answers_everything() {
        let eng = Arc::new(engine(BatchPolicy {
            max_batch: 1,
            max_wait: Duration::ZERO,
            workers: 2,
            queue_capacity: 4, // force backpressure too
        }));
        let mut handles = Vec::new();
        for t in 0..12usize {
            let eng = eng.clone();
            handles.push(std::thread::spawn(move || eng.next_item(t, vec![], 99, vec![])));
        }
        for h in handles {
            assert_eq!(h.join().unwrap(), Some(10));
        }
        let stats = eng.stats();
        assert_eq!(stats.requests, 12);
        assert_eq!(stats.batches, 12, "max_batch 1 must never coalesce");
        eng.shutdown();
    }

    #[test]
    fn shutdown_answers_queued_requests_and_rejects_new_ones() {
        let eng = engine(BatchPolicy::default());
        assert_eq!(eng.next_item(0, vec![], 99, vec![]), Some(10));
        eng.shutdown();
        // A fresh engine whose queue is already shut down answers None.
        let eng = engine(BatchPolicy::default());
        {
            let mut inner = eng.queue.inner.lock().unwrap();
            inner.shutdown = true;
        }
        assert_eq!(eng.next_item(0, vec![], 99, vec![]), None);
        eng.shutdown();
    }

    #[test]
    fn mean_batch_reflects_coalescing() {
        let s = StatsSnapshot { requests: 12, batches: 3, gave_up: 0 };
        assert!((s.mean_batch() - 4.0).abs() < 1e-12);
        let empty = StatsSnapshot { requests: 0, batches: 0, gave_up: 0 };
        assert_eq!(empty.mean_batch(), 0.0);
    }
}
